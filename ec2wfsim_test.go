package ec2wfsim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/scenario"
	"ec2wfsim/internal/workflow"
)

func TestFacadeRunsScaledWorkflow(t *testing.T) {
	w, err := apps.Montage(apps.MontageConfig{Images: 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Workflow: w, Storage: "gluster-nufa", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSeconds <= 0 {
		t.Error("non-positive makespan")
	}
	if res.CostPerHour < res.CostPerSecond {
		t.Error("per-hour cost below per-second cost")
	}
	if res.ProvisionSeconds < 70 {
		t.Errorf("provisioning %.0f s below the EC2 boot window", res.ProvisionSeconds)
	}
}

func TestFacadeOutagesAndCheckpoints(t *testing.T) {
	w, err := apps.Montage(apps.MontageConfig{Images: 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Workflow: w, Storage: "gluster-nufa", Workers: 2},
		WithOutages(20, 60), WithCheckpointing(30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages == 0 {
		t.Error("aggressive outage rate produced no outages")
	}
	if res.Checkpoints > 0 && res.CheckpointBytes <= 0 {
		t.Error("checkpoints written but no checkpoint bytes reported")
	}
	if res.MakespanSeconds <= 0 {
		t.Error("non-positive makespan")
	}
	// The options must compose identically to the deprecated flat shim.
	shim, err := Run(Config{
		Workflow: mustMontage(t), Storage: "gluster-nufa", Workers: 2,
		OutageRate: 20, OutageDuration: 60, CheckpointInterval: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if shim.MakespanSeconds != res.MakespanSeconds || shim.OutageKills != res.OutageKills {
		t.Errorf("flat Config shim diverged from options: %+v vs %+v", shim, res)
	}
	clean, err := Run(Config{Workflow: mustMontage(t), Storage: "gluster-nufa", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Outages != 0 || clean.OutageKills != 0 || clean.Checkpoints != 0 {
		t.Errorf("outage-free run reports outage stats: %+v", clean)
	}
}

func mustMontage(t *testing.T) *workflow.Workflow {
	t.Helper()
	w, err := apps.Montage(apps.MontageConfig{Images: 20})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFacadeValidation(t *testing.T) {
	if _, err := Run(Config{Application: "nope", Storage: "local", Workers: 1}); err == nil {
		t.Error("expected error for unknown application")
	}
	if _, err := Run(Config{Application: "montage", Storage: "nope", Workers: 1}); err == nil {
		t.Error("expected error for unknown storage system")
	}
	if _, err := Run(Config{Application: "montage", Storage: "gluster-nufa", Workers: 1}); err == nil {
		t.Error("expected error for GlusterFS below its 2-node minimum")
	}
}

func TestFacadeCatalogs(t *testing.T) {
	if len(Systems()) < 8 {
		t.Errorf("Systems() = %v, want the full registry", Systems())
	}
	if len(Applications()) != 3 {
		t.Errorf("Applications() = %v, want the paper's three", Applications())
	}
	if len(WorkerTypes()) < 3 {
		t.Errorf("WorkerTypes() = %v, want the instance catalog", WorkerTypes())
	}
	if len(AxisFields()) < 10 {
		t.Errorf("AxisFields() = %v, want every scenario field", AxisFields())
	}
}

func TestFacadeOptionsInjectFailures(t *testing.T) {
	res, err := Run(Config{Workflow: mustMontage(t), Storage: "gluster-nufa", Workers: 2},
		WithFailures(0.3, 5), WithFailureSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Error("aggressive failure rate injected nothing")
	}
	if res.Retries < res.Failures {
		t.Errorf("Retries = %d below Failures = %d", res.Retries, res.Failures)
	}
	reseeded, err := Run(Config{Workflow: mustMontage(t), Storage: "gluster-nufa", Workers: 2},
		WithFailures(0.3, 5), WithFailureSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if reseeded.Failures == res.Failures && reseeded.MakespanSeconds == res.MakespanSeconds {
		t.Error("failure seed had no effect")
	}
}

func TestFacadeWorkerTypeOption(t *testing.T) {
	base, err := Run(Config{Workflow: mustMontage(t), Storage: "gluster-nufa", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(Config{Workflow: mustMontage(t), Storage: "gluster-nufa", Workers: 2},
		WithWorkerType("m1.large"))
	if err != nil {
		t.Fatal(err)
	}
	if small.MakespanSeconds <= base.MakespanSeconds {
		t.Errorf("2-core m1.large (%g s) not slower than 8-core c1.xlarge (%g s)",
			small.MakespanSeconds, base.MakespanSeconds)
	}
	var unknown *scenario.UnknownNameError
	if _, err := Run(Config{Workflow: mustMontage(t), Storage: "gluster-nufa", Workers: 2},
		WithWorkerType("t2.micro")); !errors.As(err, &unknown) {
		t.Errorf("unknown worker type error = %v, want *scenario.UnknownNameError", err)
	}
}

func TestFacadeTypedUnknownNameErrors(t *testing.T) {
	cases := []Config{
		{Application: "montag", Storage: "nfs", Workers: 2},
		{Application: "montage", Storage: "glusterfs", Workers: 2},
	}
	for _, cfg := range cases {
		var unknown *scenario.UnknownNameError
		_, err := Run(cfg)
		if !errors.As(err, &unknown) {
			t.Errorf("Run(%+v) err = %v, want *scenario.UnknownNameError", cfg, err)
			continue
		}
		if len(unknown.Valid) == 0 {
			t.Errorf("typed error for %+v lists no valid names", cfg)
		}
	}
}

func TestFacadeSweepStreams(t *testing.T) {
	e := Experiment{
		Base: Config{Workflow: mustMontage(t), Storage: "gluster-nufa", Workers: 2},
		Axes: []Axis{VaryStorage("gluster-nufa", "nfs", "s3")},
	}
	var updates []SweepUpdate
	rs, err := Sweep(context.Background(), e, SweepOptions{
		Parallel: 1,
		OnResult: func(u SweepUpdate) { updates = append(updates, u) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3", len(rs))
	}
	if len(updates) != 3 {
		t.Fatalf("streamed %d updates, want 3", len(updates))
	}
	for i, u := range updates {
		if u.Done != i+1 || u.Total != 3 {
			t.Errorf("update %d: Done=%d Total=%d", i, u.Done, u.Total)
		}
		if u.Err != nil || u.Result == nil {
			t.Errorf("update %d: err=%v result=%v", i, u.Err, u.Result)
		}
		if u.Key != "" {
			t.Errorf("update %d: custom-workflow cell has canonical key %q, want empty", i, u.Key)
		}
	}
	// Serial completion order is grid order; the axis varied storage.
	if updates[0].Storage != "gluster-nufa" || updates[1].Storage != "nfs" || updates[2].Storage != "s3" {
		t.Errorf("axis order lost: %s, %s, %s", updates[0].Storage, updates[1].Storage, updates[2].Storage)
	}
}

func TestFacadeSweepCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := Experiment{
		Base: Config{Workflow: mustMontage(t), Storage: "gluster-nufa", Workers: 2},
		Axes: []Axis{Vary("seed", 1, 2, 3, 4, 5, 6, 7, 8)},
	}
	var streamed int
	rs, err := Sweep(ctx, e, SweepOptions{
		Parallel: 1,
		OnResult: func(u SweepUpdate) {
			streamed++
			cancel() // cancel from inside the stream, mid-sweep
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rs != nil {
		t.Errorf("canceled sweep returned results: %v", rs)
	}
	if streamed == 0 {
		t.Error("no partial results streamed before cancellation")
	}
	if streamed >= 8 {
		t.Errorf("cancellation did not stop the sweep: %d of 8 cells ran", streamed)
	}
}

func TestFacadeSweepSeedsAggregates(t *testing.T) {
	e := Experiment{
		Base:  Config{Workflow: mustMontage(t), Storage: "nfs", Workers: 2},
		Axes:  []Axis{VaryWorkers(1, 2)},
		Seeds: 3,
	}
	reps, err := SweepSeeds(context.Background(), e, SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d cells, want 2", len(reps))
	}
	for _, rep := range reps {
		if len(rep.Runs) != 3 || rep.Makespan.N != 3 {
			t.Errorf("cell %s n=%d: %d runs, N=%d, want 3",
				rep.Storage, rep.Workers, len(rep.Runs), rep.Makespan.N)
		}
		if rep.Makespan.Min > rep.Makespan.Mean || rep.Makespan.Mean > rep.Makespan.Max {
			t.Errorf("summary out of order: %+v", rep.Makespan)
		}
	}
	if reps[0].Workers != 1 || reps[1].Workers != 2 {
		t.Errorf("axis order lost: %d, %d workers", reps[0].Workers, reps[1].Workers)
	}
}

func TestFacadeSpecRoundTrip(t *testing.T) {
	e := Experiment{
		Base:    Config{Application: "montage", Storage: "nfs", Workers: 2},
		Options: []Option{WithFailures(0.1, 5), WithWorkerType("m1.large")},
		Axes:    []Axis{VaryWorkers(2, 4), VaryOutageRates(0, 1)},
		Seeds:   4,
	}
	data, err := e.MarshalSpec()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.cells()
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.cells()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spec round trip changed the grid:\n got %+v\nwant %+v", got, want)
	}
	if back.Seeds != e.Seeds {
		t.Errorf("Seeds = %d, want %d", back.Seeds, e.Seeds)
	}
	// The parsed base is readable and overridable through Base: Config
	// fields must not be trapped inside the option.
	if back.Base.Application != "montage" || back.Base.Workers != 2 {
		t.Errorf("parsed Base not populated: %+v", back.Base)
	}
	back.Base.Application = "broadband"
	overridden, err := back.cells()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range overridden {
		if c.App != "broadband" {
			t.Fatalf("Base override ignored: %+v", c)
		}
		if c.WorkerType != "m1.large" || c.MaxRetries != 5 {
			t.Fatalf("option-carried fields lost: %+v", c)
		}
	}
	if _, err := (Experiment{Base: Config{Workflow: mustMontage(t), Storage: "nfs", Workers: 2}}).MarshalSpec(); err == nil {
		t.Error("custom-workflow experiment serialized")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() float64 {
		w, err := apps.Epigenome(apps.EpigenomeConfig{Lanes: 1, ChunksPerLane: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Workflow: w, Storage: "nfs", Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanSeconds
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical configs diverged: %g vs %g", a, b)
	}
}

func TestFacadeAmortize(t *testing.T) {
	w, err := apps.Epigenome(apps.EpigenomeConfig{Lanes: 1, ChunksPerLane: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Amortize(Config{Workflow: w, Storage: "gluster-nufa", Workers: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != 5 {
		t.Errorf("Runs = %d, want 5", a.Runs)
	}
	if a.SharedTotal > a.SeparateTotal {
		t.Error("sharing a cluster must never cost more than separate provisioning")
	}
	if a.PerSecondTotal > a.SharedTotal {
		t.Error("per-second baseline must be the floor")
	}
	if a.SavedFraction < 0 || a.SavedFraction >= 1 {
		t.Errorf("SavedFraction = %g out of range", a.SavedFraction)
	}
}
