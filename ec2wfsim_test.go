package ec2wfsim

import (
	"testing"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/workflow"
)

func TestFacadeRunsScaledWorkflow(t *testing.T) {
	w, err := apps.Montage(apps.MontageConfig{Images: 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Workflow: w, Storage: "gluster-nufa", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSeconds <= 0 {
		t.Error("non-positive makespan")
	}
	if res.CostPerHour < res.CostPerSecond {
		t.Error("per-hour cost below per-second cost")
	}
	if res.ProvisionSeconds < 70 {
		t.Errorf("provisioning %.0f s below the EC2 boot window", res.ProvisionSeconds)
	}
}

func TestFacadeOutagesAndCheckpoints(t *testing.T) {
	w, err := apps.Montage(apps.MontageConfig{Images: 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Workflow: w, Storage: "gluster-nufa", Workers: 2,
		OutageRate: 20, OutageDuration: 60, CheckpointInterval: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages == 0 {
		t.Error("aggressive outage rate produced no outages")
	}
	if res.MakespanSeconds <= 0 {
		t.Error("non-positive makespan")
	}
	clean, err := Run(Config{Workflow: mustMontage(t), Storage: "gluster-nufa", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Outages != 0 || clean.OutageKills != 0 || clean.Checkpoints != 0 {
		t.Errorf("outage-free run reports outage stats: %+v", clean)
	}
}

func mustMontage(t *testing.T) *workflow.Workflow {
	t.Helper()
	w, err := apps.Montage(apps.MontageConfig{Images: 20})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFacadeValidation(t *testing.T) {
	if _, err := Run(Config{Application: "nope", Storage: "local", Workers: 1}); err == nil {
		t.Error("expected error for unknown application")
	}
	if _, err := Run(Config{Application: "montage", Storage: "nope", Workers: 1}); err == nil {
		t.Error("expected error for unknown storage system")
	}
	if _, err := Run(Config{Application: "montage", Storage: "gluster-nufa", Workers: 1}); err == nil {
		t.Error("expected error for GlusterFS below its 2-node minimum")
	}
}

func TestFacadeCatalogs(t *testing.T) {
	if len(Systems()) < 8 {
		t.Errorf("Systems() = %v, want the full registry", Systems())
	}
	if len(Applications()) != 3 {
		t.Errorf("Applications() = %v, want the paper's three", Applications())
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() float64 {
		w, err := apps.Epigenome(apps.EpigenomeConfig{Lanes: 1, ChunksPerLane: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Workflow: w, Storage: "nfs", Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanSeconds
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical configs diverged: %g vs %g", a, b)
	}
}

func TestFacadeAmortize(t *testing.T) {
	w, err := apps.Epigenome(apps.EpigenomeConfig{Lanes: 1, ChunksPerLane: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Amortize(Config{Workflow: w, Storage: "gluster-nufa", Workers: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != 5 {
		t.Errorf("Runs = %d, want 5", a.Runs)
	}
	if a.SharedTotal > a.SeparateTotal {
		t.Error("sharing a cluster must never cost more than separate provisioning")
	}
	if a.PerSecondTotal > a.SharedTotal {
		t.Error("per-second baseline must be the floor")
	}
	if a.SavedFraction < 0 || a.SavedFraction >= 1 {
		t.Errorf("SavedFraction = %g out of range", a.SavedFraction)
	}
}
