package eventlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// maxRecordLen bounds one record's payload. The largest legitimate
// payload is an embedded workflow DAG in the header; 64 MiB is far
// beyond any real log and small enough to fail fast on a corrupted
// length prefix.
const maxRecordLen = 64 << 20

// Reader decodes a log: NewReader consumes and validates the header,
// Next yields events in order, and after Next returns io.EOF the
// trailer is available (already checked against the event count).
// Structural damage anywhere — bad framing, invalid JSON, unknown
// fields or kinds, a sequence gap, truncation, trailing garbage —
// surfaces as a *CorruptError naming the byte offset, never a panic.
type Reader struct {
	br      *bufio.Reader
	off     int64 // offset of the next unread record
	hdr     Header
	trailer Trailer
	n       uint64 // events decoded
	done    bool
}

// NewReader reads and validates the header.
func NewReader(r io.Reader) (*Reader, error) {
	lr := &Reader{br: bufio.NewReader(r)}
	typ, payload, err := lr.next()
	if err != nil {
		return nil, err
	}
	if typ != 'h' {
		return nil, corrupt(0, "log does not start with a header record (got %q)", typ)
	}
	if err := strictUnmarshal(payload, &lr.hdr); err != nil {
		return nil, corrupt(0, "header: %v", err)
	}
	if lr.hdr.Format != Magic {
		return nil, corrupt(0, "format %q is not %q", lr.hdr.Format, Magic)
	}
	if lr.hdr.Version != SchemaVersion {
		return nil, corrupt(0, "schema version %d (this reader speaks %d)", lr.hdr.Version, SchemaVersion)
	}
	if len(lr.hdr.Spec) == 0 || !json.Valid(lr.hdr.Spec) {
		return nil, corrupt(0, "header spec is missing or not valid JSON")
	}
	return lr, nil
}

// Header returns the validated header.
func (r *Reader) Header() Header { return r.hdr }

// Trailer returns the trailer; it is only meaningful after Next has
// returned io.EOF.
func (r *Reader) Trailer() Trailer { return r.trailer }

// Events returns the number of events decoded so far.
func (r *Reader) Events() uint64 { return r.n }

// Next returns the next event. It returns io.EOF after the trailer has
// been consumed and verified, and a *CorruptError on any structural
// problem.
func (r *Reader) Next() (Event, error) {
	if r.done {
		return Event{}, io.EOF
	}
	off := r.off
	typ, payload, err := r.next()
	if err != nil {
		return Event{}, err
	}
	switch typ {
	case 'e':
		var e Event
		if err := strictUnmarshal(payload, &e); err != nil {
			return Event{}, corrupt(off, "event %d: %v", r.n+1, err)
		}
		if !e.Kind.Valid() {
			return Event{}, corrupt(off, "event %d: uncatalogued kind %q", r.n+1, e.Kind)
		}
		if e.Seq != r.n+1 {
			return Event{}, corrupt(off, "event sequence gap: got seq %d, want %d", e.Seq, r.n+1)
		}
		r.n++
		return e, nil
	case 't':
		if err := strictUnmarshal(payload, &r.trailer); err != nil {
			return Event{}, corrupt(off, "trailer: %v", err)
		}
		if r.trailer.Events != r.n {
			return Event{}, corrupt(off, "trailer counts %d events, stream has %d", r.trailer.Events, r.n)
		}
		// The trailer must be the last byte of the log.
		if _, err := r.br.ReadByte(); err != io.EOF {
			return Event{}, corrupt(r.off, "data after the trailer")
		}
		r.done = true
		return Event{}, io.EOF
	case 'h':
		return Event{}, corrupt(off, "second header record")
	default:
		return Event{}, corrupt(off, "unknown record type %q", typ)
	}
}

// next reads one framed record: <type><len>:<payload>\n.
func (r *Reader) next() (byte, []byte, error) {
	off := r.off
	typ, err := r.br.ReadByte()
	if err == io.EOF {
		return 0, nil, corrupt(off, "truncated: no trailer record")
	}
	if err != nil {
		return 0, nil, err
	}
	r.off++
	// Decimal length up to ':'.
	length := 0
	digits := 0
	for {
		b, err := r.br.ReadByte()
		if err == io.EOF {
			return 0, nil, corrupt(off, "truncated inside a length prefix")
		}
		if err != nil {
			return 0, nil, err
		}
		r.off++
		if b == ':' {
			break
		}
		if b < '0' || b > '9' {
			return 0, nil, corrupt(off, "invalid byte %q in length prefix", b)
		}
		length = length*10 + int(b-'0')
		digits++
		if digits > 8 || length > maxRecordLen {
			return 0, nil, corrupt(off, "record length exceeds %d bytes", maxRecordLen)
		}
	}
	if digits == 0 {
		return 0, nil, corrupt(off, "empty length prefix")
	}
	payload := make([]byte, length+1) // +1 for the trailing newline
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return 0, nil, corrupt(off, "truncated inside a %d-byte record", length)
	}
	r.off += int64(length) + 1
	if payload[length] != '\n' {
		return 0, nil, corrupt(off, "record is not newline-terminated (framing drift)")
	}
	return typ, payload[:length], nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, so a bit flip
// inside a field name reads as corruption rather than silently dropping
// the value.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// One JSON value per payload: trailing tokens are framing damage.
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// Decode reads a whole in-memory log: header, every event, trailer.
func Decode(data []byte) (Header, []Event, Trailer, error) {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return Header{}, nil, Trailer{}, err
	}
	var events []Event
	for {
		e, err := r.Next()
		if err == io.EOF {
			return r.Header(), events, r.Trailer(), nil
		}
		if err != nil {
			return Header{}, nil, Trailer{}, err
		}
		events = append(events, e)
	}
}

// Encode is the inverse of Decode: it re-frames a decoded log. Encoding
// a decoded log reproduces the original bytes exactly (the round-trip
// stability FuzzEventLogRoundTrip pins), which is what lets replay
// verification compare logs byte-for-byte.
func Encode(w io.Writer, h Header, events []Event, tr Trailer) error {
	lw, err := NewWriter(w, h)
	if err != nil {
		return err
	}
	for _, e := range events {
		lw.Record(e)
	}
	return lw.Close(tr.SimEvents)
}
