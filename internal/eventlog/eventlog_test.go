package eventlog

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func testHeader() Header {
	return Header{
		CellKey:     "app=montage|storage=nfs-sync|workers=2",
		Spec:        RawJSON(`{"app":"montage","storage":"nfs-sync","workers":2}`),
		Seed:        0x5EED,
		FlowVersion: 2,
	}
}

func testEvents() []Event {
	return []Event{
		{T: 0, Kind: NodeUp, Node: "w0"},
		{T: 0, Kind: NodeUp, Node: "w1"},
		{T: 0.01, Kind: TaskStart, Task: "mProject-0", Node: "w0", Attempt: 1},
		{T: 0.41, Kind: TransferStart, Task: "mProject-0", Node: "w0", File: "in-0.fits", Phase: "input", Size: 2e6},
		{T: 0.55, Kind: CacheMiss, Node: "w0", File: "in-0.fits", Size: 2e6},
		{T: 0.97, Kind: TransferDrain, Task: "mProject-0", Node: "w0", File: "in-0.fits", Phase: "input", Size: 2e6, Dur: 0.56},
		{T: 0.97, Kind: TaskExec, Task: "mProject-0", Node: "w0", Attempt: 1},
		{T: 4.2, Kind: TaskFail, Task: "mProject-0", Node: "w0", Attempt: 1, Reason: "injected"},
		{T: 4.2, Kind: TaskRetry, Task: "mProject-0"},
		{T: 9.1, Kind: OutageBegin, Node: "w1", Dur: 120},
		{T: 9.1, Kind: NodeDown, Node: "w1"},
		{T: 9.1, Kind: OutageKill, Node: "w1", Task: "mProject-1"},
		{T: 60.2, Kind: CheckpointWrite, Task: "mProject-0", Node: "w0", File: "__ckpt__/mProject-0", Size: 64e6},
		{T: 129.1, Kind: NodeUp, Node: "w1"},
		{T: 129.1, Kind: OutageEnd, Node: "w1"},
		{T: 130, Kind: CheckpointRestore, Task: "mProject-1", Node: "w1", File: "__ckpt__/mProject-1", Size: 64e6},
		{T: 200.5, Kind: TaskFinish, Task: "mProject-0", Node: "w0", Attempt: 2},
	}
}

// encode writes a full log through the streaming Writer.
func encode(t *testing.T, h Header, events []Event, simEvents int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, e := range events {
		w.Record(e)
	}
	if err := w.Close(simEvents); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := encode(t, testHeader(), testEvents(), 4242)
	h, events, tr, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if h.Format != Magic || h.Version != SchemaVersion {
		t.Errorf("header format/version = %q/%d", h.Format, h.Version)
	}
	if h.CellKey != testHeader().CellKey || h.Seed != 0x5EED || h.FlowVersion != 2 {
		t.Errorf("header fields did not round-trip: %+v", h)
	}
	want := testEvents()
	if len(events) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(events), len(want))
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d", i, e.Seq)
		}
		e.Seq = 0
		if e != want[i] {
			t.Errorf("event %d: got %+v want %+v", i, e, want[i])
		}
	}
	if tr.Events != uint64(len(want)) || tr.SimEvents != 4242 {
		t.Errorf("trailer = %+v", tr)
	}

	// Re-encoding a decoded log reproduces the bytes exactly.
	var buf bytes.Buffer
	if err := Encode(&buf, h, events, tr); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Errorf("re-encoding is not byte-identical (got %d bytes, want %d)", buf.Len(), len(data))
	}
}

func TestEmptyLog(t *testing.T) {
	data := encode(t, testHeader(), nil, 0)
	_, events, tr, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(events) != 0 || tr.Events != 0 {
		t.Errorf("empty log decoded to %d events, trailer %+v", len(events), tr)
	}
}

// TestTruncationAlwaysDetected pins the headline corruption guarantee:
// every strict prefix of a valid log fails to decode with a typed
// *CorruptError — record-boundary truncation included, thanks to the
// trailer.
func TestTruncationAlwaysDetected(t *testing.T) {
	data := encode(t, testHeader(), testEvents(), 99)
	for n := 0; n < len(data); n++ {
		_, _, _, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(data))
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("prefix of %d bytes: error %v is not a *CorruptError", n, err)
		}
	}
}

func TestCorruptErrorNamesOffset(t *testing.T) {
	data := encode(t, testHeader(), testEvents(), 0)
	// Find the second record's offset (first event) and break its type
	// byte.
	idx := bytes.IndexByte(data, '\n') + 1
	bad := append([]byte(nil), data...)
	bad[idx] = 'x'
	_, _, _, err := Decode(bad)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CorruptError", err)
	}
	if ce.Offset != int64(idx) {
		t.Errorf("offset = %d, want %d", ce.Offset, idx)
	}
	if !strings.Contains(ce.Error(), "corrupt log at byte") {
		t.Errorf("message %q does not name the offset", ce.Error())
	}
}

func TestCorruptionVariants(t *testing.T) {
	valid := encode(t, testHeader(), testEvents(), 7)
	cases := map[string]func([]byte) []byte{
		"seq gap (drop an event record)": func(d []byte) []byte {
			// Remove the second event record entirely.
			first := bytes.IndexByte(d, '\n') + 1 // end of header
			second := first + bytes.IndexByte(d[first:], '\n') + 1
			third := second + bytes.IndexByte(d[second:], '\n') + 1
			return append(append([]byte(nil), d[:second]...), d[third:]...)
		},
		"flipped kind string": func(d []byte) []byte {
			return bytes.Replace(d, []byte(`"task-start"`), []byte(`"task-stxrt"`), 1)
		},
		"flipped field name": func(d []byte) []byte {
			return bytes.Replace(d, []byte(`"node":"w0"`), []byte(`"nodx":"w0"`), 1)
		},
		"length prefix off by one": func(d []byte) []byte {
			i := bytes.IndexByte(d, '\n') + 1 // first event record's type byte
			out := append([]byte(nil), d...)
			out[i+1]++ // bump the leading length digit
			return out
		},
		"trailing garbage": func(d []byte) []byte {
			return append(append([]byte(nil), d...), "junk"...)
		},
		"no trailer": func(d []byte) []byte {
			i := bytes.LastIndexByte(d[:len(d)-1], '\n')
			return d[:i+1]
		},
		"wrong magic": func(d []byte) []byte {
			return bytes.Replace(d, []byte(`"format":"wfevt"`), []byte(`"format":"wfevx"`), 1)
		},
		"future schema version": func(d []byte) []byte {
			return bytes.Replace(d, []byte(`"version":1`), []byte(`"version":9`), 1)
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			bad := mutate(append([]byte(nil), valid...))
			if bytes.Equal(bad, valid) {
				t.Fatal("mutation did not change the log")
			}
			_, _, _, err := Decode(bad)
			if err == nil {
				t.Fatal("corrupted log decoded cleanly")
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *CorruptError", err)
			}
		})
	}
}

func TestWriterRejectsInvalidHeader(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{}); err == nil {
		t.Error("NewWriter accepted a header without a spec")
	}
	if _, err := NewWriter(&buf, Header{Spec: RawJSON(`{"a":`)}); err == nil {
		t.Error("NewWriter accepted invalid spec JSON")
	}
	if _, err := NewWriter(&buf, Header{Spec: RawJSON(`{}`), Workflow: RawJSON(`[`)}); err == nil {
		t.Error("NewWriter accepted invalid workflow JSON")
	}
}

func TestWriterRejectsUncataloguedKind(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	w.Record(Event{Kind: "no-such-kind"})
	if w.Err() == nil {
		t.Error("Record accepted an uncatalogued kind")
	}
	if err := w.Close(0); err == nil {
		t.Error("Close did not surface the latched error")
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, io.ErrShortWrite
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriterErrorsAreSticky(t *testing.T) {
	w, err := NewWriter(&errWriter{n: 40}, testHeader())
	if err != nil {
		// The header alone may already overflow the sink; that is a
		// valid error surface too.
		return
	}
	for _, e := range testEvents() {
		w.Record(e)
	}
	if err := w.Close(0); err == nil {
		t.Error("Close reported no error after the sink failed")
	}
}

func TestRecordAfterCloseIsDropped(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(0); err != nil {
		t.Fatal(err)
	}
	before := buf.Len()
	w.Record(Event{Kind: TaskStart})
	if err := w.Close(0); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if buf.Len() != before {
		t.Error("Record after Close wrote bytes")
	}
}

func TestKindCatalog(t *testing.T) {
	ks := Kinds()
	if len(ks) == 0 {
		t.Fatal("empty catalog")
	}
	seen := map[Kind]bool{}
	for _, k := range ks {
		if !k.Valid() {
			t.Errorf("catalogued kind %q is not Valid", k)
		}
		if seen[k] {
			t.Errorf("duplicate kind %q", k)
		}
		seen[k] = true
	}
	if Kind("bogus").Valid() {
		t.Error("uncatalogued kind reported Valid")
	}
	// The returned catalog is a copy: mutating it must not poison the
	// package's validity checks.
	ks[0] = "mutated"
	if !Kinds()[0].Valid() {
		t.Error("Kinds exposed internal state")
	}
}
