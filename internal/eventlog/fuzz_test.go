package eventlog

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzEventLogRoundTrip drives the satellite contract: random event
// sequences encode to a log that decodes losslessly with stable bytes,
// and corrupting any byte of the encoding either still decodes (the
// mutation landed inside a value and produced a different valid log) or
// fails with a typed *CorruptError — never a panic, never a silent
// misread that re-encodes to the corrupted bytes.
func FuzzEventLogRoundTrip(f *testing.F) {
	f.Add([]byte{}, -1, byte(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 10, byte(0xFF))
	f.Add([]byte{200, 100, 50, 25, 12, 6, 3, 1, 0, 9}, 40, byte('}'))
	f.Add(bytes.Repeat([]byte{7, 3}, 60), 5, byte('\n'))
	f.Fuzz(func(t *testing.T, script []byte, corruptAt int, xor byte) {
		events := eventsFromScript(script)
		var buf bytes.Buffer
		w, err := NewWriter(&buf, testFuzzHeader(script))
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		for _, e := range events {
			w.Record(e)
		}
		if err := w.Close(int64(len(script))); err != nil {
			t.Fatalf("Close: %v", err)
		}
		data := buf.Bytes()

		// Lossless decode.
		h, got, tr, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode of a fresh log: %v", err)
		}
		if len(got) != len(events) {
			t.Fatalf("decoded %d events, wrote %d", len(got), len(events))
		}
		for i := range got {
			e := got[i]
			e.Seq = 0
			if e != events[i] {
				t.Fatalf("event %d: got %+v want %+v", i, e, events[i])
			}
		}

		// Stable bytes: re-encoding the decode reproduces the log.
		var again bytes.Buffer
		if err := Encode(&again, h, got, tr); err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(again.Bytes(), data) {
			t.Fatal("re-encoding is not byte-identical")
		}

		// Corruption arm: flip one byte; decoding must either fail with
		// a *CorruptError or succeed as a (different or identical) valid
		// log — and a successful decode must re-encode stably.
		if corruptAt >= 0 && len(data) > 0 && xor != 0 {
			bad := append([]byte(nil), data...)
			bad[corruptAt%len(bad)] ^= xor
			bh, bev, btr, err := Decode(bad)
			if err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("corrupted decode error %v is not a *CorruptError", err)
				}
				return
			}
			var re bytes.Buffer
			if err := Encode(&re, bh, bev, btr); err != nil {
				// The flip may have produced values that decode but do
				// not re-encode (e.g. an uncatalogued kind is caught at
				// decode, so anything decodable should encode; treat a
				// failure here as a real bug).
				t.Fatalf("decoded-but-unencodable mutation: %v", err)
			}
		}
	})
}

// testFuzzHeader derives a small valid header from the script.
func testFuzzHeader(script []byte) Header {
	h := Header{Spec: RawJSON(`{"app":"montage","storage":"nfs","workers":2}`)}
	if len(script) > 0 && script[0]%3 == 0 {
		h.Workflow = RawJSON(`{"name":"w","files":[],"tasks":[]}`)
		h.CellKey = "k"
		h.Seed = uint64(script[0])
		h.FlowVersion = int(script[0] % 3)
	}
	return h
}

// eventsFromScript deterministically expands fuzz bytes into an event
// sequence covering every kind and field shape.
func eventsFromScript(script []byte) []Event {
	var events []Event
	ks := Kinds()
	for i, b := range script {
		k := ks[int(b)%len(ks)]
		e := Event{
			T:    float64(i) * 0.25,
			Kind: k,
		}
		if b%2 == 0 {
			e.Task = "task-" + string(rune('a'+int(b)%26))
			e.Attempt = int(b%4) + 1
		}
		if b%3 == 0 {
			e.Node = "node-" + string(rune('a'+int(b)%26))
		}
		if b%5 == 0 {
			e.File = "f/" + string(rune('a'+int(b)%26))
			e.Size = float64(b) * 1024
		}
		switch k {
		case TransferStart, TransferDrain:
			e.Phase = []string{"input", "output", "ckpt", "restore"}[int(b)%4]
			if k == TransferDrain {
				e.Dur = float64(b) / 16
			}
		case TaskFail:
			e.Reason = []string{"injected", "outage"}[int(b)%2]
		case OutageBegin:
			e.Dur = float64(b)
		}
		events = append(events, e)
	}
	return events
}
