package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Writer streams a log to an underlying io.Writer: header first, then
// events as they are recorded, then a trailer on Close. It implements
// Recorder, assigning contiguous sequence numbers, so it plugs directly
// into the emission hooks.
//
// Errors are sticky: the first I/O or encoding failure is remembered,
// subsequent Records become no-ops, and Close (or Err) reports it. The
// emission hooks inside the simulation therefore never need an error
// path — a recorded run checks the writer once, at the end.
type Writer struct {
	bw     *bufio.Writer
	n      uint64 // events written
	err    error
	closed bool
}

// NewWriter writes the header and returns a streaming writer. The
// header's Format and Version are filled in; Spec must be valid JSON
// (it is carried verbatim and re-emitted byte-for-byte on replay).
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	lw := &Writer{bw: bufio.NewWriter(w)}
	h.Format = Magic
	h.Version = SchemaVersion
	if len(h.Spec) == 0 || !json.Valid(h.Spec) {
		return nil, fmt.Errorf("eventlog: header spec is not valid JSON")
	}
	if len(h.Workflow) > 0 && !json.Valid(h.Workflow) {
		return nil, fmt.Errorf("eventlog: header workflow is not valid JSON")
	}
	if err := lw.record('h', h); err != nil {
		return nil, err
	}
	return lw, nil
}

// record frames one payload as <type><len>:<json>\n.
func (w *Writer) record(typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("eventlog: encoding %c record: %w", typ, err)
	}
	if err := w.bw.WriteByte(typ); err != nil {
		return err
	}
	if _, err := w.bw.WriteString(strconv.Itoa(len(payload))); err != nil {
		return err
	}
	if err := w.bw.WriteByte(':'); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	return w.bw.WriteByte('\n')
}

// Record implements Recorder: it assigns the event's sequence number
// and appends it to the stream. Events recorded after Close, or after
// an earlier error, are dropped (the error is already latched).
func (w *Writer) Record(e Event) {
	if w.err != nil || w.closed {
		return
	}
	w.n++
	e.Seq = w.n
	if !e.Kind.Valid() {
		w.err = fmt.Errorf("eventlog: recording uncatalogued kind %q", e.Kind)
		return
	}
	w.err = w.record('e', e)
}

// Events returns the number of events recorded so far.
func (w *Writer) Events() uint64 { return w.n }

// Err returns the first error the writer hit, if any.
func (w *Writer) Err() error { return w.err }

// Close writes the trailer (recording the event count and the given
// engine-scheduled event total) and flushes. It returns the first error
// from the whole write, so a recorded run's error handling is exactly
// one Close check.
func (w *Writer) Close(simEvents int64) error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err == nil {
		w.err = w.record('t', Trailer{Events: w.n, SimEvents: simEvents})
	}
	if ferr := w.bw.Flush(); w.err == nil {
		w.err = ferr
	}
	return w.err
}
