// Package eventlog defines the run-artifact wire format: a typed,
// append-only, deterministic event stream describing everything that
// happened inside one simulation run — task attempts, storage transfers,
// node outages, checkpoints, cache behaviour — framed as length-prefixed
// JSON lines behind a schema-versioned header.
//
// The format is the simulator's audit trail. A log is written once,
// forward-only, while the run executes (the Writer implements Recorder,
// the zero-cost-when-nil hook the wms/storage layers emit through), and
// is consumed three ways: replay verification re-runs the spec in the
// header and asserts the fresh stream is byte-identical (the mechanical
// form of the determinism contract the wfvet lint reasons about
// statically), cross-scenario reports pair two logs and explain where
// the runs diverged, and the sweep fabric ships logs as a compact wire
// format richer than JSON summary rows.
//
// The package deliberately depends only on the standard library: it is
// imported by the sim-layer packages (wms, storage) that emit events,
// and by the harness/report layers that consume them.
//
// # Framing
//
// A log is a sequence of records, each one line:
//
//	<type><length>:<payload>\n
//
// where <type> is 'h' (header, exactly one, first), 'e' (event) or 't'
// (trailer, exactly one, last), <length> is the decimal byte length of
// <payload>, and <payload> is one JSON object. The length prefix makes
// mid-record truncation and splices detectable without parsing JSON;
// the trailer's event count makes record-boundary truncation
// detectable; event sequence numbers make reordering detectable. Any
// violation decodes to a *CorruptError naming the byte offset.
package eventlog

import (
	"encoding/json"
	"fmt"
)

// RawJSON is a pre-encoded JSON value carried verbatim (an alias of
// json.RawMessage, named for readers of the header schema).
type RawJSON = json.RawMessage

// Magic identifies the format in a header's "format" field.
const Magic = "wfevt"

// SchemaVersion is the current header/event schema. Readers reject
// other versions: the golden logs pin the schema, so bumping it is an
// explicit, reviewed act.
const SchemaVersion = 1

// Kind names an event type. Kinds are short stable strings (not ints)
// so logs stay greppable and self-describing.
type Kind string

// The event catalog. Every event the simulator emits is one of these.
const (
	// TaskStart: a worker slot picked the task attempt up (Task, Node,
	// Attempt). TaskExec: inputs staged, computation began. TaskFinish:
	// outputs published, task complete. TaskFail: the attempt aborted
	// (Reason "injected" or "outage"). TaskRetry: the failed task was
	// handed back to DAGMan for re-execution.
	TaskStart  Kind = "task-start"
	TaskExec   Kind = "task-exec"
	TaskFinish Kind = "task-finish"
	TaskFail   Kind = "task-fail"
	TaskRetry  Kind = "task-retry"

	// TransferStart/TransferDrain bracket one storage access issued on
	// behalf of a task (Task, Node, File, Size, Phase "input", "output",
	// "ckpt" or "restore"). The drain event carries the transfer's
	// duration in Dur.
	TransferStart Kind = "xfer-start"
	TransferDrain Kind = "xfer-drain"

	// OutageBegin/OutageEnd bracket one node outage window (Node, with
	// Dur on the begin event carrying the scheduled window length);
	// OutageKill records an in-flight attempt the outage killed (Node,
	// Task). NodeDown/NodeUp record the node state transitions — NodeUp
	// is also emitted once per node at provisioning time.
	OutageBegin Kind = "outage-begin"
	OutageEnd   Kind = "outage-end"
	OutageKill  Kind = "outage-kill"
	NodeUp      Kind = "node-up"
	NodeDown    Kind = "node-down"

	// CheckpointWrite: a task staged a checkpoint through the storage
	// system (Task, Node, File, Size). CheckpointRestore: a retried
	// attempt restored from its last checkpoint.
	CheckpointWrite   Kind = "ckpt-write"
	CheckpointRestore Kind = "ckpt-restore"

	// CacheHit/CacheMiss record client- or server-side cache decisions
	// inside a storage backend (Node, File, Size) — the S3 whole-file
	// client cache and the NFS server page cache emit them.
	CacheHit  Kind = "cache-hit"
	CacheMiss Kind = "cache-miss"
)

// kinds lists the catalog in emission-layer order. Kept as a slice, not
// a map: consumers iterate it for deterministic per-kind summaries.
var kinds = []Kind{
	TaskStart, TaskExec, TaskFinish, TaskFail, TaskRetry,
	TransferStart, TransferDrain,
	OutageBegin, OutageEnd, OutageKill, NodeUp, NodeDown,
	CheckpointWrite, CheckpointRestore,
	CacheHit, CacheMiss,
}

// Kinds returns the full event catalog in canonical order. The returned
// slice is a copy.
func Kinds() []Kind {
	out := make([]Kind, len(kinds))
	copy(out, kinds)
	return out
}

// Valid reports whether k is a catalogued kind. The reader rejects
// events with uncatalogued kinds: a bit flip inside a kind string must
// read as corruption, not as a new event type.
func (k Kind) Valid() bool {
	for _, v := range kinds {
		if k == v {
			return true
		}
	}
	return false
}

// Event is one record of the stream. Fields not meaningful for a kind
// stay zero and are omitted from the encoding; see the Kind catalog for
// which fields each kind carries.
type Event struct {
	// Seq is the 1-based position in the stream, assigned by the Writer.
	// Contiguity is a decode-time invariant.
	Seq uint64 `json:"seq"`
	// T is the simulated time in seconds.
	T float64 `json:"t"`
	// Kind is the event type.
	Kind Kind `json:"kind"`

	Task string `json:"task,omitempty"` // workflow task ID
	Node string `json:"node,omitempty"` // cluster node name
	File string `json:"file,omitempty"` // workflow file name

	// Phase labels a transfer's role in the task lifecycle: "input",
	// "output", "ckpt" or "restore".
	Phase string `json:"phase,omitempty"`
	// Size is the payload size in bytes (transfers, checkpoints, cache
	// decisions).
	Size float64 `json:"size,omitempty"`
	// Attempt is the task's 1-based attempt number (task lifecycle
	// events).
	Attempt int `json:"attempt,omitempty"`
	// Reason qualifies a task-fail: "injected" (failure injection) or
	// "outage" (node kill).
	Reason string `json:"reason,omitempty"`
	// Dur is a duration in seconds: the transfer time on xfer-drain, the
	// scheduled window length on outage-begin.
	Dur float64 `json:"dur,omitempty"`
}

// Recorder receives events as a run executes. Emitting layers hold a
// possibly-nil Recorder and skip the call when nil, so a run without
// recording pays one pointer test per would-be event and allocates
// nothing.
type Recorder interface {
	Record(Event)
}

// Header opens every log: enough to re-run the cell it records.
type Header struct {
	// Format is Magic; Version is SchemaVersion.
	Format  string `json:"format"`
	Version int    `json:"version"`
	// CellKey is the canonical memoization key of the recorded cell
	// (empty for runs of custom in-memory workflows, which have no key).
	CellKey string `json:"cell_key,omitempty"`
	// Spec is the serialized scenario spec (scenario.Spec canonical
	// JSON): application, storage, cluster shape, every seed, the flow
	// version. Replay rebuilds the run from it.
	Spec RawJSON `json:"spec"`
	// Seed is the effective provisioning-jitter seed (the spec's seed
	// with the fixed default applied), denormalized for greppability.
	Seed uint64 `json:"seed,omitempty"`
	// FlowVersion is the spec's flow-solver version, denormalized.
	FlowVersion int `json:"flow_version,omitempty"`
	// Workflow is the serialized DAG (workflow JSON) when the run used a
	// custom in-memory workflow rather than a catalog application; nil
	// when Spec's app/app_seed fully determine the DAG.
	Workflow RawJSON `json:"workflow,omitempty"`
}

// Trailer closes every log.
type Trailer struct {
	// Events is the number of event records between header and trailer;
	// a mismatch with the observed count reads as corruption.
	Events uint64 `json:"events"`
	// SimEvents is the total number of events the simulation engine
	// scheduled during the run — a cheap replay cross-check on the
	// engine's internal behaviour, beyond the emitted stream.
	SimEvents int64 `json:"sim_events,omitempty"`
}

// CorruptError reports a structurally invalid log: bad framing, invalid
// JSON, a sequence gap, a truncated stream, a count mismatch, trailing
// garbage. Offset is the byte position of the record where decoding
// failed.
type CorruptError struct {
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("eventlog: corrupt log at byte %d: %s", e.Offset, e.Reason)
}

// corrupt builds a *CorruptError.
func corrupt(off int64, format string, args ...any) error {
	return &CorruptError{Offset: off, Reason: fmt.Sprintf(format, args...)}
}
