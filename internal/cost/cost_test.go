package cost

import (
	"math"
	"testing"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/units"
)

func testCluster(t *testing.T, workers int, extra ...cluster.InstanceType) *cluster.Cluster {
	t.Helper()
	e := sim.NewEngine()
	c, err := cluster.New(e, flow.NewNet(e), rng.New(1), cluster.Config{
		Workers: workers, WorkerType: cluster.C1XLarge(), Extra: extra,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g", msg, got, want)
	}
}

func TestPerHourRoundsUp(t *testing.T) {
	c := testCluster(t, 2)
	// 30 minutes bills a full hour per node: 2 x $0.68.
	b := Compute(c, 1800, storage.Stats{}, PerHour)
	approx(t, b.ResourceCost, 1.36, 1e-9, "2 nodes, 30 min, hourly")
	if b.NodeHours != 2 {
		t.Errorf("NodeHours = %g, want 2", b.NodeHours)
	}
	// 61 minutes bills two hours per node.
	b = Compute(c, 3660, storage.Stats{}, PerHour)
	approx(t, b.ResourceCost, 2.72, 1e-9, "2 nodes, 61 min, hourly")
}

func TestPerSecondProRates(t *testing.T) {
	c := testCluster(t, 2)
	b := Compute(c, 1800, storage.Stats{}, PerSecond)
	approx(t, b.ResourceCost, 0.68, 1e-9, "2 nodes, 30 min, per-second")
}

// "Per second charges are what the experiments would cost if Amazon
// charged per second" — never more than the hourly bill.
func TestPerSecondNeverExceedsPerHour(t *testing.T) {
	c := testCluster(t, 4, cluster.M1XLarge())
	for _, mk := range []float64{1, 600, 3599, 3600, 3601, 7300, 86400} {
		ph := Compute(c, mk, storage.Stats{}, PerHour).Total()
		ps := Compute(c, mk, storage.Stats{}, PerSecond).Total()
		if ps > ph+1e-9 {
			t.Errorf("makespan %.0f: per-second %.4f > per-hour %.4f", mk, ps, ph)
		}
	}
}

// The paper: the dedicated NFS node "results in an extra cost of $0.68
// per workflow for all applications" (sub-hour runs).
func TestNFSExtraNodeCostsSixtyEightCents(t *testing.T) {
	plain := testCluster(t, 2)
	nfs := testCluster(t, 2, cluster.M1XLarge())
	mk := 2500.0 // sub-hour
	diff := Compute(nfs, mk, storage.Stats{}, PerHour).Total() - Compute(plain, mk, storage.Stats{}, PerHour).Total()
	approx(t, diff, 0.68, 1e-9, "NFS dedicated-node surcharge")
}

// The paper: S3 request fees add $0.28 for Montage-scale request counts
// and ~$0.01-0.02 for the others.
func TestS3RequestFees(t *testing.T) {
	c := testCluster(t, 1)
	// Montage-like: ~24k PUTs, ~40k GETs -> 24k/1000*.01 + 40k/10000*.01
	st := storage.Stats{Puts: 24000, Gets: 40000}
	b := Compute(c, 1000, st, PerHour)
	approx(t, b.RequestCost, 0.28, 1e-9, "Montage-scale S3 request fees")
	// Epigenome-like: ~700 PUTs, ~1500 GETs -> about a cent.
	st = storage.Stats{Puts: 700, Gets: 1500}
	b = Compute(c, 1000, st, PerHour)
	if b.RequestCost < 0.005 || b.RequestCost > 0.02 {
		t.Errorf("Epigenome-scale request fees = %.4f, want ~$0.01", b.RequestCost)
	}
}

// "the storage cost is insignificant for the applications tested (<< $0.01)"
func TestS3StorageCostNegligible(t *testing.T) {
	c := testCluster(t, 1)
	st := storage.Stats{BytesUploaded: 8 * units.GB}
	b := Compute(c, units.Hour, st, PerHour)
	if b.StorageCost >= 0.01 {
		t.Errorf("storage cost = %.4f, want << $0.01", b.StorageCost)
	}
}

func TestZeroMakespanZeroCost(t *testing.T) {
	c := testCluster(t, 1)
	b := Compute(c, 0, storage.Stats{}, PerHour)
	if b.Total() != 0 {
		t.Errorf("zero-makespan cost = %g, want 0", b.Total())
	}
}

func TestBillingString(t *testing.T) {
	if PerHour.String() != "per-hour" || PerSecond.String() != "per-second" {
		t.Error("Billing.String() labels wrong")
	}
}
