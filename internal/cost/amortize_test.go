package cost

import (
	"math"
	"testing"

	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/units"
)

func TestAmortizeSharedNeverCostsMore(t *testing.T) {
	c := testCluster(t, 2)
	for _, mk := range []float64{600, 1800, 3599, 3601, 5400, 9000} {
		for _, k := range []int{1, 2, 5, 10} {
			a := Amortize(c, mk, storage.Stats{}, k)
			if a.SharedTotal > a.SeparateTotal+1e-9 {
				t.Errorf("mk=%.0f k=%d: shared $%.2f > separate $%.2f", mk, k, a.SharedTotal, a.SeparateTotal)
			}
			if a.PerSecondTotal > a.SharedTotal+1e-9 {
				t.Errorf("mk=%.0f k=%d: per-second $%.2f > shared $%.2f (granularity can only add cost)",
					mk, k, a.PerSecondTotal, a.SharedTotal)
			}
		}
	}
}

// The paper's example case: a sub-hour workflow wastes most of its billed
// hour; five in a row waste it once.
func TestAmortizeSubHourWorkflows(t *testing.T) {
	c := testCluster(t, 2) // 2 x $0.68/h
	a := Amortize(c, 1200, storage.Stats{}, 5)
	// Separate: 5 runs x 1h x 2 nodes = $6.80. Shared: 5x1200s = 100 min
	// -> 2 h x 2 nodes = $2.72.
	if math.Abs(a.SeparateTotal-6.80) > 1e-9 {
		t.Errorf("separate = $%.2f, want $6.80", a.SeparateTotal)
	}
	if math.Abs(a.SharedTotal-2.72) > 1e-9 {
		t.Errorf("shared = $%.2f, want $2.72", a.SharedTotal)
	}
	if s := a.Savings(); s < 0.59 || s > 0.61 {
		t.Errorf("savings = %.2f, want 0.60", s)
	}
}

func TestAmortizeRequestFeesAccruePerRun(t *testing.T) {
	c := testCluster(t, 1)
	st := storage.Stats{Puts: 1000} // $0.01 per run
	a := Amortize(c, 1200, st, 10)
	base := Amortize(c, 1200, storage.Stats{}, 10)
	if got := a.SharedTotal - base.SharedTotal; math.Abs(got-0.10) > 1e-9 {
		t.Errorf("10 runs of request fees = $%.4f, want $0.10", got)
	}
}

func TestAmortizeOneRunDegenerates(t *testing.T) {
	c := testCluster(t, 4)
	a := Amortize(c, 2000, storage.Stats{}, 1)
	single := Compute(c, 2000, storage.Stats{}, PerHour).Total()
	if math.Abs(a.SeparateTotal-single) > 1e-9 || math.Abs(a.SharedTotal-single) > 1e-9 {
		t.Errorf("k=1: separate $%.2f / shared $%.2f, want both $%.2f", a.SeparateTotal, a.SharedTotal, single)
	}
	if a.Savings() != 0 {
		t.Errorf("k=1 savings = %g, want 0", a.Savings())
	}
}

func TestAmortizeHourMultipleNoSavings(t *testing.T) {
	c := testCluster(t, 2)
	// Exactly 1-hour workflows leave nothing to amortize.
	a := Amortize(c, units.Hour, storage.Stats{}, 4)
	if a.Savings() > 1e-9 {
		t.Errorf("hour-aligned workflows saved %.2f%%, want 0", a.Savings()*100)
	}
}
