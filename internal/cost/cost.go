// Package cost implements the paper's Section VI cost model: EC2 resource
// charges under the real per-hour billing (partial hours rounded up) and
// the hypothetical per-second billing the paper uses for comparison, plus
// Amazon's S3 request and storage fees.
//
// 2010 price book (stated in or implied by the paper):
//
//	c1.xlarge   $0.68/hour
//	m1.xlarge   $0.68/hour  (the "extra cost of $0.68 per workflow" NFS node)
//	m2.4xlarge  $2.40/hour
//	S3 PUT      $0.01 per 1,000 requests
//	S3 GET      $0.01 per 10,000 requests
//	S3 storage  $0.15 per GB-month (negligible for these runs: << $0.01)
package cost

import (
	"math"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/units"
)

// S3 fee schedule.
const (
	S3PutPer1000    = 0.01
	S3GetPer10000   = 0.01
	S3GBMonth       = 0.15
	secondsPerMonth = 30 * 24 * units.Hour
)

// Billing selects how resource-hours convert to dollars.
type Billing int

// The paper compares Amazon's actual hourly billing (rounded up) against
// hypothetical per-second charging.
const (
	PerHour Billing = iota
	PerSecond
)

func (b Billing) String() string {
	if b == PerHour {
		return "per-hour"
	}
	return "per-second"
}

// Breakdown itemizes a workflow's cost.
type Breakdown struct {
	Billing  Billing
	Makespan float64 // seconds billed

	ResourceCost float64 // worker + service node charges
	RequestCost  float64 // S3 PUT/GET fees
	StorageCost  float64 // S3 GB-month fees over the run

	NodeHours float64 // billed instance-hours
}

// Total returns the all-in cost.
func (b Breakdown) Total() float64 {
	return b.ResourceCost + b.RequestCost + b.StorageCost
}

// Compute prices one workflow execution: every cluster node (workers plus
// any dedicated service node, which is how NFS picks up its $0.68
// disadvantage) is billed for the makespan, and S3 request counters from
// the storage stats convert to fees.
func Compute(c *cluster.Cluster, makespan float64, st storage.Stats, billing Billing) Breakdown {
	b := Breakdown{Billing: billing, Makespan: makespan}
	for _, n := range c.AllNodes() {
		var hours float64
		switch billing {
		case PerHour:
			hours = math.Ceil(makespan / units.Hour)
			if makespan > 0 && hours == 0 {
				hours = 1
			}
		case PerSecond:
			hours = makespan / units.Hour
		}
		b.NodeHours += hours
		b.ResourceCost += hours * n.Type.PricePerHour
	}
	b.RequestCost = float64(st.Puts)/1000*S3PutPer1000 + float64(st.Gets)/10000*S3GetPer10000
	// Data resident in S3 for the duration of the run (uploads dominate;
	// the paper notes this is far below a cent).
	gbMonths := st.BytesUploaded / units.GB * (makespan / secondsPerMonth)
	b.StorageCost = gbMonths * S3GBMonth
	return b
}
