package cost

import (
	"math"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/units"
)

// Amortized prices k identical workflows run back to back on one
// provisioned virtual cluster, versus provisioning a fresh cluster per
// workflow — the paper's Section VI recommendation: "a cost-effective
// strategy would be to provision a virtual cluster and use it to run many
// workflows, rather than provisioning a virtual cluster for each
// workflow."
//
// Under per-hour billing the shared cluster rounds the *total* occupancy
// up once instead of rounding every run up separately; request fees (S3)
// accrue per run either way. Under per-second billing the two strategies
// cost the same, which the function also exposes — the advice only
// matters because of billing granularity.
type Amortized struct {
	Runs int

	// SeparateTotal is k independently provisioned runs.
	SeparateTotal float64
	// SharedTotal is one cluster running k workflows in succession.
	SharedTotal float64
	// PerSecondTotal is the granularity-free baseline (identical for both
	// strategies).
	PerSecondTotal float64
}

// Savings is the fraction saved by sharing, in [0, 1).
func (a Amortized) Savings() float64 {
	if a.SeparateTotal <= 0 {
		return 0
	}
	return 1 - a.SharedTotal/a.SeparateTotal
}

// Amortize computes the comparison for k runs with the given per-run
// makespan on cluster c (including any dedicated service nodes).
func Amortize(c *cluster.Cluster, makespan float64, st storage.Stats, k int) Amortized {
	if k < 1 {
		k = 1
	}
	a := Amortized{Runs: k}
	perRun := Compute(c, makespan, st, PerHour)
	a.SeparateTotal = float64(k) * perRun.Total()

	hourly := 0.0
	for _, n := range c.AllNodes() {
		hourly += n.Type.PricePerHour
	}
	total := float64(k) * makespan
	a.SharedTotal = math.Ceil(total/units.Hour)*hourly +
		float64(k)*(perRun.RequestCost+perRun.StorageCost)

	perSec := Compute(c, makespan, st, PerSecond)
	a.PerSecondTotal = float64(k) * perSec.Total()
	return a
}
