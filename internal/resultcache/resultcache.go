// Package resultcache is the persistent cross-run memo store: a
// content-addressed on-disk cache that makes repeated experiment cells
// free across process invocations, CI runs and concurrent users sharing
// one store directory.
//
// Each entry holds one replicate's canonical JSON result row, keyed by
// (schema version, canonical cell key, effective replicate seed, flow
// solver version). The key material is hashed to the entry's file name,
// so the store is a flat directory of self-describing files: no index
// to corrupt, no lock to take for reads, and concurrent writers of the
// same key converge on identical content.
//
// Trust model: the store accelerates, it never decides. Every read
// re-verifies the entry — schema version, embedded key fields and a
// SHA-256 over the payload — and any mismatch surfaces as a typed error
// (*CorruptError, *SchemaError) the caller treats exactly like a miss:
// recompute, overwrite, move on. A tampered or torn entry can cost a
// recomputation; it can never produce a wrong result. Writes go through
// a temp file and an atomic rename, so readers — including other
// processes — never observe a partial entry.
package resultcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// SchemaVersion names the entry format. It participates in the key
// hash, so bumping it orphans every older entry (they are never read
// again — Prune removes them) rather than risking a misparse.
const SchemaVersion = 1

// Key identifies one replicate result.
type Key struct {
	// Cell is the canonical scenario key (scenario.Key) of the
	// effective, fully reseeded spec.
	Cell string
	// Seed is the effective replicate seed (the cell's own seed for
	// replicate 0, the derived seed otherwise).
	Seed uint64
	// Flow is the flow-solver version, normalized so 0 and 1 — both the
	// default solver — share entries.
	Flow int
}

// normFlow maps the two spellings of the default solver to one.
func normFlow(v int) int {
	if v == 0 {
		return 1
	}
	return v
}

// material renders the canonical key material the entry file name is
// hashed from.
func (k Key) material() string {
	return fmt.Sprintf("s%d|%s|seed=%d|flow=%d", SchemaVersion, k.Cell, k.Seed, normFlow(k.Flow))
}

// id is the content address: the hex SHA-256 of the key material.
func (k Key) id() string {
	sum := sha256.Sum256([]byte(k.material()))
	return hex.EncodeToString(sum[:])
}

// entry is the on-disk envelope around one result row.
type entry struct {
	Schema int             `json:"schema"`
	Cell   string          `json:"cell"`
	Seed   uint64          `json:"seed"`
	Flow   int             `json:"flow"`
	Sum    string          `json:"sha256"` // hex SHA-256 of Row
	Row    json.RawMessage `json:"row"`
}

// ErrMiss reports that no entry exists for the key. It is the only
// Get error that does not imply a damaged store.
var ErrMiss = errors.New("resultcache: miss")

// CorruptError reports an entry that exists but failed verification:
// unparseable JSON, a checksum mismatch, or key fields that disagree
// with the requested key. Callers recompute and overwrite.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("resultcache: corrupt entry %s: %s", e.Path, e.Reason)
}

// SchemaError reports an entry written under a different schema
// version. Under the hashed-key scheme this only happens when a file
// was renamed or planted; either way the entry is unusable and callers
// recompute.
type SchemaError struct {
	Path      string
	Got, Want int
}

func (e *SchemaError) Error() string {
	return fmt.Sprintf("resultcache: entry %s has schema %d, want %d", e.Path, e.Got, e.Want)
}

// Store is one cache directory. Methods are safe for concurrent use
// within a process, and the on-disk format is safe across processes.
type Store struct {
	dir    string
	hits   atomic.Int64
	misses atomic.Int64
}

// Open returns the store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.id()+".json")
}

// Get returns the stored row bytes for k. A missing entry returns
// ErrMiss; a damaged one returns *CorruptError or *SchemaError. Every
// hit is re-verified: schema version, embedded key fields and the
// payload checksum must all agree before a byte is returned.
func (s *Store) Get(k Key) ([]byte, error) {
	path := s.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		if os.IsNotExist(err) {
			return nil, ErrMiss
		}
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	row, err := verify(path, data, &k)
	if err != nil {
		s.misses.Add(1)
		return nil, err
	}
	s.hits.Add(1)
	return row, nil
}

// verify decodes and checks one entry. want, when non-nil, pins the
// embedded key fields to the requested key.
func verify(path string, data []byte, want *Key) (json.RawMessage, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var e entry
	if err := dec.Decode(&e); err != nil {
		return nil, &CorruptError{Path: path, Reason: "undecodable: " + err.Error()}
	}
	if e.Schema != SchemaVersion {
		return nil, &SchemaError{Path: path, Got: e.Schema, Want: SchemaVersion}
	}
	if want != nil && (e.Cell != want.Cell || e.Seed != want.Seed || e.Flow != normFlow(want.Flow)) {
		return nil, &CorruptError{Path: path, Reason: "entry key does not match requested key"}
	}
	sum := sha256.Sum256(e.Row)
	if hex.EncodeToString(sum[:]) != e.Sum {
		return nil, &CorruptError{Path: path, Reason: "payload checksum mismatch"}
	}
	return e.Row, nil
}

// Put stores row under k, overwriting any existing entry. The write is
// atomic (temp file + rename), so concurrent readers and writers —
// including other processes sharing the store — never see a torn entry.
func (s *Store) Put(k Key, row []byte) error {
	sum := sha256.Sum256(row)
	e := entry{
		Schema: SchemaVersion,
		Cell:   k.Cell,
		Seed:   k.Seed,
		Flow:   normFlow(k.Flow),
		Sum:    hex.EncodeToString(sum[:]),
		Row:    json.RawMessage(row),
	}
	data, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	return nil
}

// Keys lists every readable entry's key in sorted file-name order —
// iteration order is a pure function of the store's contents, never of
// directory-read or map order. Entries that fail verification are
// skipped and reported via the returned error (the first one found);
// the key list is still valid for the readable remainder.
func (s *Store) Keys() ([]Key, error) {
	names, err := s.entryNames()
	if err != nil {
		return nil, err
	}
	var keys []Key
	var firstErr error
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("resultcache: %w", err)
			}
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var e entry
		if err := dec.Decode(&e); err != nil {
			if firstErr == nil {
				firstErr = &CorruptError{Path: path, Reason: "undecodable: " + err.Error()}
			}
			continue
		}
		if e.Schema != SchemaVersion {
			if firstErr == nil {
				firstErr = &SchemaError{Path: path, Got: e.Schema, Want: SchemaVersion}
			}
			continue
		}
		keys = append(keys, Key{Cell: e.Cell, Seed: e.Seed, Flow: e.Flow})
	}
	return keys, firstErr
}

// Len counts the store's entries (readable or not; temp files are
// excluded).
func (s *Store) Len() (int, error) {
	names, err := s.entryNames()
	if err != nil {
		return 0, err
	}
	return len(names), nil
}

// Prune removes entries that are unreadable or were written under a
// different schema version, returning how many were removed. A shared
// store accretes these after a schema bump (old entries are orphaned by
// the key hash) or a tampering incident.
func (s *Store) Prune() (int, error) {
	names, err := s.entryNames()
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if _, verr := verify(path, data, nil); verr != nil {
			if rerr := os.Remove(path); rerr == nil {
				removed++
			}
		}
	}
	return removed, nil
}

// entryNames lists the store's entry file names in sorted order.
func (s *Store) entryNames() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	var names []string
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		names = append(names, ent.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Stats reports the store's hit and miss counters for this process
// (misses include corrupt and schema-mismatched entries, which cost a
// recomputation exactly like a miss).
func (s *Store) Stats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}
