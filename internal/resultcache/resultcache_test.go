package resultcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	t.Parallel()
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded, want error")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	k := Key{Cell: "app=montage|storage=s3fs|workers=8", Seed: 0x5EED, Flow: 2}
	row := []byte(`{"makespan_s":123.5}`)
	if err := s.Put(k, row); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(row) {
		t.Errorf("Get = %s, want %s", got, row)
	}
	if hits, misses := s.Stats(); hits != 1 || misses != 0 {
		t.Errorf("stats = %d/%d, want 1 hit, 0 misses", hits, misses)
	}
}

func TestGetMiss(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	if _, err := s.Get(Key{Cell: "nope", Seed: 1, Flow: 1}); !errors.Is(err, ErrMiss) {
		t.Fatalf("err = %v, want ErrMiss", err)
	}
	if hits, misses := s.Stats(); hits != 0 || misses != 1 {
		t.Errorf("stats = %d/%d, want 0 hits, 1 miss", hits, misses)
	}
}

func TestDistinctKeysDistinctEntries(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	base := Key{Cell: "cell", Seed: 7, Flow: 1}
	variants := []Key{
		base,
		{Cell: "cell2", Seed: 7, Flow: 1},
		{Cell: "cell", Seed: 8, Flow: 1},
		{Cell: "cell", Seed: 7, Flow: 2},
	}
	for i, k := range variants {
		if err := s.Put(k, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range variants {
		got, err := s.Get(k)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if want := fmt.Sprintf(`{"i":%d}`, i); string(got) != want {
			t.Errorf("variant %d: got %s, want %s", i, got, want)
		}
	}
	if n, err := s.Len(); err != nil || n != len(variants) {
		t.Errorf("Len = %d, %v; want %d entries", n, err, len(variants))
	}
}

func TestFlowZeroAndOneShareEntries(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	if err := s.Put(Key{Cell: "c", Seed: 1, Flow: 0}, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(Key{Cell: "c", Seed: 1, Flow: 1})
	if err != nil {
		t.Fatalf("flow 1 lookup after flow 0 put: %v", err)
	}
	if string(got) != `{"v":1}` {
		t.Errorf("got %s", got)
	}
}

func TestPutOverwrites(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	k := Key{Cell: "c", Seed: 1, Flow: 1}
	for _, row := range []string{`{"v":1}`, `{"v":2}`} {
		if err := s.Put(k, []byte(row)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"v":2}` {
		t.Errorf("got %s, want the overwritten row", got)
	}
	if n, _ := s.Len(); n != 1 {
		t.Errorf("Len = %d, want 1 (overwrite, not accumulate)", n)
	}
}

// entryPath finds the single entry file for a key's id.
func entryPath(t *testing.T, s *Store, k Key) string {
	t.Helper()
	path := filepath.Join(s.Dir(), k.id()+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBitFlipIsCorruptError(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	k := Key{Cell: "c", Seed: 1, Flow: 1}
	if err := s.Put(k, []byte(`{"makespan_s":123.5}`)); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, s, k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the payload digits: the JSON still parses, so
	// only the checksum can catch it.
	i := strings.Index(string(data), "123.5")
	if i < 0 {
		t.Fatal("payload not found in entry")
	}
	data[i+1] ^= 0x01 // '2' -> '3': still a digit, still valid JSON
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get(k)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CorruptError", err, err)
	}
	if !strings.Contains(ce.Reason, "checksum") {
		t.Errorf("reason %q, want a checksum mismatch", ce.Reason)
	}
	if hits, misses := s.Stats(); hits != 0 || misses != 1 {
		t.Errorf("stats = %d/%d: a corrupt entry must count as a miss", hits, misses)
	}
}

func TestTruncatedEntryIsCorruptError(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	k := Key{Cell: "c", Seed: 1, Flow: 1}
	if err := s.Put(k, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, s, k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := s.Get(k); !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError for a torn entry", err)
	}
}

func TestSchemaMismatchIsSchemaError(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	k := Key{Cell: "c", Seed: 1, Flow: 1}
	if err := s.Put(k, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, s, k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the entry under a future schema version, simulating a file
	// planted (or renamed) from a newer store.
	var e map[string]any
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e["schema"] = SchemaVersion + 1
	data, err = json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var se *SchemaError
	if _, err := s.Get(k); !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SchemaError", err)
	}
	if se.Got != SchemaVersion+1 || se.Want != SchemaVersion {
		t.Errorf("SchemaError got=%d want=%d", se.Got, se.Want)
	}
}

func TestKeyFieldMismatchIsCorruptError(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	a := Key{Cell: "a", Seed: 1, Flow: 1}
	b := Key{Cell: "b", Seed: 1, Flow: 1}
	if err := s.Put(a, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	// Plant a's entry under b's address: the embedded key fields disagree
	// with the requested key, so the read must refuse.
	data, err := os.ReadFile(entryPath(t, s, a))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), b.id()+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := s.Get(b); !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError for planted entry", err)
	}
}

func TestKeysSortedAndStable(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	var want []Key
	for i := 0; i < 8; i++ {
		k := Key{Cell: fmt.Sprintf("cell-%d", i), Seed: uint64(i), Flow: 1 + i%2}
		if err := s.Put(k, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		want = append(want, k)
	}
	first, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("two Keys calls over an unchanged store disagree")
	}
	// Same key set, and in the file-name order the store promises.
	byMaterial := func(ks []Key) []string {
		ms := make([]string, len(ks))
		for i, k := range ks {
			ms[i] = k.material()
		}
		sort.Strings(ms)
		return ms
	}
	if !reflect.DeepEqual(byMaterial(first), byMaterial(want)) {
		t.Errorf("Keys returned %v, want the 8 stored keys", first)
	}
	ids := make([]string, len(first))
	for i, k := range first {
		ids[i] = k.id()
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("Keys not in sorted file-name order: %v", ids)
	}
}

func TestKeysReportsCorruptEntriesButReturnsRemainder(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	good := Key{Cell: "good", Seed: 1, Flow: 1}
	bad := Key{Cell: "bad", Seed: 2, Flow: 1}
	for _, k := range []Key{good, bad} {
		if err := s.Put(k, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(entryPath(t, s, bad), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError reporting the damaged entry", err)
	}
	if len(keys) != 1 || keys[0] != good {
		t.Errorf("keys = %v, want just the readable entry", keys)
	}
}

func TestPruneRemovesDamagedEntriesOnly(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	good := Key{Cell: "good", Seed: 1, Flow: 1}
	bad := Key{Cell: "bad", Seed: 2, Flow: 1}
	for _, k := range []Key{good, bad} {
		if err := s.Put(k, []byte(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(entryPath(t, s, bad), []byte("damaged"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := s.Prune()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("Prune removed %d, want 1", removed)
	}
	if _, err := s.Get(good); err != nil {
		t.Errorf("good entry gone after Prune: %v", err)
	}
	if n, _ := s.Len(); n != 1 {
		t.Errorf("Len = %d after Prune, want 1", n)
	}
}

func TestTempFilesInvisible(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	if err := s.Put(Key{Cell: "c", Seed: 1, Flow: 1}, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	// A stranded temp file (a crashed writer) must not show up as an
	// entry anywhere.
	if err := os.WriteFile(filepath.Join(s.Dir(), "put-123.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1 (temp files excluded)", n, err)
	}
	if keys, err := s.Keys(); err != nil || len(keys) != 1 {
		t.Errorf("Keys = %v, %v; want the single real entry", keys, err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	t.Parallel()
	s := testStore(t)
	k := Key{Cell: "c", Seed: 1, Flow: 1}
	row := []byte(`{"v":42}`)
	done := make(chan error, 16)
	for i := 0; i < 8; i++ {
		go func() { done <- s.Put(k, row) }()
		go func() {
			_, err := s.Get(k)
			if errors.Is(err, ErrMiss) {
				err = nil // racing ahead of the first Put is fine
			}
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(row) {
		t.Errorf("after concurrent writes: got %s, want %s", got, row)
	}
}
