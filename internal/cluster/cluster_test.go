package cluster

import (
	"math"
	"testing"

	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
)

func newTestCluster(t *testing.T, workers int, extra ...InstanceType) *Cluster {
	t.Helper()
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := New(e, net, rng.New(42), Config{
		Workers:    workers,
		WorkerType: C1XLarge(),
		Extra:      extra,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCatalogMatchesPaper(t *testing.T) {
	c1 := C1XLarge()
	if c1.Cores != 8 {
		t.Errorf("c1.xlarge cores = %d, want 8", c1.Cores)
	}
	if c1.Memory != 7*units.GiB {
		t.Errorf("c1.xlarge memory = %s, want 7 GiB", units.Bytes(c1.Memory))
	}
	if c1.PricePerHour != 0.68 {
		t.Errorf("c1.xlarge price = $%.2f/h, want $0.68 (2010 list)", c1.PricePerHour)
	}
	if got := c1.DiskProfile.Capacity; math.Abs(got-1690*units.GB) > units.GB {
		t.Errorf("c1.xlarge local storage = %s, want 1690 GB", units.Bytes(got))
	}
	m1 := M1XLarge()
	if m1.Memory != 16*units.GiB {
		t.Errorf("m1.xlarge memory = %s, want 16 GiB (paper's figure)", units.Bytes(m1.Memory))
	}
	if m1.PricePerHour != 0.68 {
		t.Errorf("m1.xlarge price = $%.2f/h, want $0.68 (paper: extra NFS node costs $0.68/workflow)", m1.PricePerHour)
	}
	m2 := M24XLarge()
	if m2.Memory != 64*units.GiB || m2.Cores != 8 {
		t.Errorf("m2.4xlarge = %d cores %s, want 8 cores 64 GiB", m2.Cores, units.Bytes(m2.Memory))
	}
}

func TestClusterShape(t *testing.T) {
	c := newTestCluster(t, 4, M1XLarge())
	if len(c.Workers) != 4 {
		t.Fatalf("workers = %d, want 4", len(c.Workers))
	}
	if len(c.Extra) != 1 {
		t.Fatalf("extra nodes = %d, want 1", len(c.Extra))
	}
	if got := c.TotalCores(); got != 32 {
		t.Errorf("TotalCores = %d, want 32", got)
	}
	if got := len(c.AllNodes()); got != 5 {
		t.Errorf("AllNodes = %d, want 5", got)
	}
}

func TestProvisionTimeInBootWindow(t *testing.T) {
	c := newTestCluster(t, 8)
	// Slowest boot in [70,90] plus 10 s contextualization.
	if c.ProvisionTime < 80 || c.ProvisionTime > 100 {
		t.Errorf("ProvisionTime = %.1f s, want within [80,100]", c.ProvisionTime)
	}
	for _, n := range c.Workers {
		if n.BootDelay < 70 || n.BootDelay > 90 {
			t.Errorf("node %s boot delay %.1f outside [70,90]", n.Name, n.BootDelay)
		}
	}
}

func TestProvisionDeterministic(t *testing.T) {
	a := newTestCluster(t, 8)
	b := newTestCluster(t, 8)
	if a.ProvisionTime != b.ProvisionTime {
		t.Errorf("same seed gave different provision times: %g vs %g", a.ProvisionTime, b.ProvisionTime)
	}
}

func TestNodeResources(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Workers[0]
	if n.Cores.Capacity() != 8 {
		t.Errorf("core slots = %d, want 8", n.Cores.Capacity())
	}
	wantMB := MemoryMB(7 * units.GiB)
	if n.Memory.Capacity() != wantMB {
		t.Errorf("memory capacity = %d MB, want %d", n.Memory.Capacity(), wantMB)
	}
	if n.NICIn.Capacity() != units.MBps(120) || n.NICOut.Capacity() != units.MBps(120) {
		t.Error("NIC capacities not 120 MB/s each direction")
	}
	if n.Disk.Initialized() {
		t.Error("fresh node's disk should carry the first-write penalty")
	}
}

func TestInitializeDisksRemovesPenaltyAndExtendsProvisioning(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := New(e, net, rng.New(1), Config{
		Workers:         2,
		WorkerType:      C1XLarge(),
		InitializeDisks: true,
		InitializeBytes: 50 * units.GB,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Workers {
		if !n.Disk.Initialized() {
			t.Errorf("node %s disk not initialized", n.Name)
		}
	}
	// 50 GB at the RAID0 first-write rate of 80 MB/s = 625 s extra.
	zeroTime := 50 * units.GB / (80 * units.MB)
	if c.ProvisionTime < zeroTime {
		t.Errorf("ProvisionTime %.0f s does not include %.0f s zero-fill", c.ProvisionTime, zeroTime)
	}
}

func TestMemoryMBCeiling(t *testing.T) {
	if got := MemoryMB(units.MB); got != 1 {
		t.Errorf("MemoryMB(1MB) = %d, want 1", got)
	}
	if got := MemoryMB(1.5 * units.MB); got != 2 {
		t.Errorf("MemoryMB(1.5MB) = %d, want 2 (ceiling)", got)
	}
	if got := MemoryMB(0); got != 0 {
		t.Errorf("MemoryMB(0) = %d, want 0", got)
	}
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	if _, err := New(e, net, rng.New(1), Config{Workers: 0, WorkerType: C1XLarge()}); err == nil {
		t.Error("expected error for 0 workers")
	}
	if _, err := New(e, net, rng.New(1), Config{Workers: 1}); err == nil {
		t.Error("expected error for zero-value worker type")
	}
}
