// Package cluster models EC2 virtual clusters: instance types, nodes with
// cores/memory/NIC/disk resources, and Nimbus-Context-Broker-style
// provisioning (boot plus contextualization).
//
// The catalog encodes the three instance types the paper uses, with 2010
// list prices and the paper's stated hardware: c1.xlarge workers (8 cores,
// 7 GB, 4 ephemeral disks in RAID0), an m1.xlarge NFS server (16 GB — the
// paper's figure — chosen for its page cache), and an m2.4xlarge used in
// the Broadband NFS ablation (64 GB, 8 cores).
package cluster

import (
	"fmt"

	"ec2wfsim/internal/disk"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
)

// InstanceType describes an EC2 resource configuration.
type InstanceType struct {
	Name         string
	Cores        int
	CPUFactor    float64 // per-core speed relative to a c1.xlarge core
	Memory       float64 // bytes of RAM
	NICBandwidth float64 // bytes/sec, each direction
	DiskProfile  disk.Profile
	PricePerHour float64 // USD, 2010 list price
}

// C1XLarge is the worker type used for all experiments: two quad-core
// 2.33-2.66 GHz Xeons, 7 GB RAM, 1690 GB across 4 ephemeral disks.
func C1XLarge() InstanceType {
	return InstanceType{
		Name:         "c1.xlarge",
		Cores:        8,
		CPUFactor:    1.0,
		Memory:       7 * units.GiB,
		NICBandwidth: units.MBps(120), // "high" I/O performance, ~GigE
		DiskProfile:  disk.RAID0(disk.EphemeralSingle(), 4),
		PricePerHour: 0.68,
	}
}

// M1XLarge is the dedicated NFS server type (best NFS performance in the
// paper's benchmarks thanks to its 16 GB of cache-friendly memory).
func M1XLarge() InstanceType {
	return InstanceType{
		Name:         "m1.xlarge",
		Cores:        4,
		CPUFactor:    0.8, // 2 ECU/core vs ~2.5 for c1.xlarge
		Memory:       16 * units.GiB,
		NICBandwidth: units.MBps(120),
		DiskProfile:  disk.RAID0(disk.EphemeralSingle(), 4),
		PricePerHour: 0.68,
	}
}

// M24XLarge is the large-memory NFS server used in the Broadband ablation
// (64 GB memory, 8 cores).
func M24XLarge() InstanceType {
	return InstanceType{
		Name:      "m2.4xlarge",
		Cores:     8,
		CPUFactor: 1.1,
		Memory:    64 * units.GiB,
		// The largest instances receive a bigger share of the host NIC;
		// this is what makes the paper's big-server NFS ablation pay off
		// (4368 s vs 5363 s for Broadband at 4 nodes).
		NICBandwidth: units.MBps(150),
		DiskProfile:  disk.RAID0(disk.EphemeralSingle(), 2),
		PricePerHour: 2.40,
	}
}

// M1Large is a mid-range alternative worker (4 GB won't even hold one
// Broadband lowFreq comfortably; included for worker-type sweeps).
func M1Large() InstanceType {
	return InstanceType{
		Name:         "m1.large",
		Cores:        2,
		CPUFactor:    0.8,
		Memory:       7.5 * units.GiB,
		NICBandwidth: units.MBps(80),
		DiskProfile:  disk.RAID0(disk.EphemeralSingle(), 2),
		PricePerHour: 0.34,
	}
}

// typeCatalog is the single name->constructor table behind TypeNames
// and TypeByName, so the advertised names can never drift from the
// resolvable ones. First entry is the default for the empty name.
var typeCatalog = []struct {
	name  string
	build func() InstanceType
}{
	{"c1.xlarge", C1XLarge},
	{"m1.xlarge", M1XLarge},
	{"m1.large", M1Large},
	{"m2.4xlarge", M24XLarge},
}

// TypeNames lists the catalog's instance-type names (empty selects the
// c1.xlarge default).
func TypeNames() []string {
	names := make([]string, len(typeCatalog))
	for i, t := range typeCatalog {
		names[i] = t.name
	}
	return names
}

// TypeByName resolves a worker instance type by its EC2 name.
func TypeByName(name string) (InstanceType, error) {
	if name == "" {
		return typeCatalog[0].build(), nil
	}
	for _, t := range typeCatalog {
		if t.name == name {
			return t.build(), nil
		}
	}
	return InstanceType{}, fmt.Errorf("cluster: unknown instance type %q", name)
}

// Node is a provisioned virtual machine instance.
type Node struct {
	Name   string
	Index  int // position within its cluster role
	Type   InstanceType
	Cores  *sim.Semaphore // task slots, one per core
	Memory *sim.Semaphore // MB-granularity RAM admission
	NICIn  *flow.Resource
	NICOut *flow.Resource
	Disk   *disk.Disk

	BootDelay float64 // seconds from provision request to usable

	// Outage state (correlated node failures): while down, the node's
	// slots stop requesting jobs, in-flight attempts are killed, and
	// storage traffic that needs this node blocks in WaitUp until
	// recovery. The memory epoch counts outages so RAM-backed caches
	// (page caches) can detect that their contents were lost; disk
	// contents survive (the node comes back like a rebooted instance).
	down      bool
	memEpoch  int64
	upWaiters []*sim.Proc
}

// Down reports whether the node is currently offline.
func (n *Node) Down() bool { return n.down }

// SetDown takes the node offline. RAM contents are lost (the memory
// epoch advances); disk contents survive. Idempotent while down.
func (n *Node) SetDown() {
	if n.down {
		return
	}
	n.down = true
	n.memEpoch++
}

// SetUp brings the node back online, waking every process blocked in
// WaitUp (in arrival order, through the event queue, so recovery is
// deterministic).
func (n *Node) SetUp() {
	if !n.down {
		return
	}
	n.down = false
	waiters := n.upWaiters
	n.upWaiters = nil
	for _, p := range waiters {
		p.Resume()
	}
}

// WaitUp blocks p until the node is online. It returns immediately —
// without yielding — when the node is already up, so outage-free runs
// are untouched by these checks.
func (n *Node) WaitUp(p *sim.Proc) {
	for n.down {
		n.upWaiters = append(n.upWaiters, p)
		p.Suspend()
	}
}

// MemEpoch returns the node's memory epoch: it advances on every outage,
// signalling RAM-backed caches that their contents are gone.
func (n *Node) MemEpoch() int64 { return n.memEpoch }

// MemoryMB converts a byte figure to the semaphore's MB units (ceiling).
func MemoryMB(bytes float64) int {
	mb := int(bytes / units.MB)
	if float64(mb)*units.MB < bytes {
		mb++
	}
	return mb
}

// NewNode builds a node of the given type, registering its resources.
func NewNode(e *sim.Engine, net *flow.Net, name string, index int, t InstanceType) *Node {
	return &Node{
		Name:   name,
		Index:  index,
		Type:   t,
		Cores:  sim.NewSemaphore(e, name+"/cores", t.Cores),
		Memory: sim.NewSemaphore(e, name+"/mem", MemoryMB(t.Memory)),
		NICIn:  flow.NewResource(name+"/nic-in", t.NICBandwidth),
		NICOut: flow.NewResource(name+"/nic-out", t.NICBandwidth),
		Disk:   disk.New(net, name+"/disk", t.DiskProfile),
	}
}

// Config describes a virtual cluster to provision.
type Config struct {
	Workers    int
	WorkerType InstanceType
	// Extra service nodes (e.g. a dedicated NFS server), provisioned
	// alongside the workers and billed like them.
	Extra []InstanceType
	// InitializeDisks zero-fills every ephemeral volume during
	// provisioning, trading boot time for steady-state write rates. The
	// paper argues this is rarely economical; it defaults to off.
	InitializeDisks bool
	// InitializeBytes bounds the zero-fill per node when InitializeDisks
	// is set (0 means the workflow's working-set estimate is unknown and
	// the full volume is filled).
	InitializeBytes float64
}

// Cluster is a provisioned virtual cluster.
type Cluster struct {
	Engine  *sim.Engine
	Net     *flow.Net
	Workers []*Node
	Extra   []*Node

	// ProvisionTime is the wall-clock seconds from request to a fully
	// contextualized cluster (excluded from workflow makespans, as in the
	// paper, but reported separately).
	ProvisionTime float64
}

// boot-time window observed by the paper (via CloudStatus): 70-90 s.
const (
	bootMin = 70.0
	bootMax = 90.0
	// Contextualization: generating configuration files and starting
	// services via the context broker agent.
	contextualize = 10.0
)

// New provisions a cluster. Node boot delays are drawn deterministically
// from r; the cluster is usable after the slowest node has booted and been
// contextualized. New must be called at simulation time zero (provisioning
// happens "before" the workflow clock in the paper's methodology).
func New(e *sim.Engine, net *flow.Net, r *rng.RNG, cfg Config) (*Cluster, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 worker, got %d", cfg.Workers)
	}
	if cfg.WorkerType.Cores == 0 {
		return nil, fmt.Errorf("cluster: worker type has no cores (zero InstanceType?)")
	}
	c := &Cluster{Engine: e, Net: net}
	slowest := 0.0
	for i := 0; i < cfg.Workers; i++ {
		n := NewNode(e, net, fmt.Sprintf("worker%d", i), i, cfg.WorkerType)
		n.BootDelay = bootMin + (bootMax-bootMin)*r.Float64()
		if n.BootDelay > slowest {
			slowest = n.BootDelay
		}
		c.Workers = append(c.Workers, n)
	}
	for i, t := range cfg.Extra {
		n := NewNode(e, net, fmt.Sprintf("%s-svc%d", t.Name, i), i, t)
		n.BootDelay = bootMin + (bootMax-bootMin)*r.Float64()
		if n.BootDelay > slowest {
			slowest = n.BootDelay
		}
		c.Extra = append(c.Extra, n)
	}
	c.ProvisionTime = slowest + contextualize
	if cfg.InitializeDisks {
		c.ProvisionTime += c.initializeDisks(cfg.InitializeBytes)
	}
	return c, nil
}

// initializeDisks zero-fills volumes on all nodes in parallel, returning
// the added provisioning seconds, and leaves every disk at steady-state
// write rates.
func (c *Cluster) initializeDisks(bytes float64) float64 {
	worst := 0.0
	for _, n := range c.AllNodes() {
		size := bytes
		if size <= 0 || size > n.Disk.Profile().Capacity {
			size = n.Disk.Profile().Capacity
		}
		// All nodes zero in parallel; each is alone on its own disk, so
		// the time is simply size/firstWriteRate — no need to simulate.
		t := size / n.Disk.Profile().FirstWrite
		if t > worst {
			worst = t
		}
		n.Disk.MarkInitialized()
	}
	return worst
}

// AllNodes returns workers followed by extra service nodes.
func (c *Cluster) AllNodes() []*Node {
	all := make([]*Node, 0, len(c.Workers)+len(c.Extra))
	all = append(all, c.Workers...)
	all = append(all, c.Extra...)
	return all
}

// TotalCores returns the worker-core count (service nodes run no tasks).
func (c *Cluster) TotalCores() int {
	total := 0
	for _, n := range c.Workers {
		total += n.Type.Cores
	}
	return total
}
