// Package wms models the workflow management stack the paper runs:
// Pegasus plans the workflow, DAGMan releases tasks as their dependencies
// complete, and Condor matches released jobs to idle worker slots. The
// scheduler is locality-blind FIFO, as the paper notes ("the scheduler ...
// does not consider data locality or parent-child affinity"); a
// data-aware variant is provided for the paper's future-work ablation.
package wms

import (
	"fmt"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/eventlog"
	"ec2wfsim/internal/outage"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// Default overheads for the Condor/DAGMan stack, calibrated to the
// per-job costs observed with Condor 7.x glide-ins: a submit throttle in
// DAGMan and a match/claim/activate delay before the job's executable
// starts on the slot.
const (
	DefaultSubmitDelay  = 0.010
	DefaultStartLatency = 0.40

	// DefaultMaxRetries is DAGMan's RETRY default, applied when
	// Options.MaxRetries is zero and failures are injected.
	DefaultMaxRetries = 3
	// DefaultFailureSeed seeds the injection RNG when Options.FailureSeed
	// is zero, keeping failure runs deterministic by default.
	DefaultFailureSeed = 0xFA11

	// DefaultOutageDuration is the mean outage length (seconds) when
	// Options.OutageRate is set without a duration: roughly an EC2
	// instance reboot-and-recontextualize cycle.
	DefaultOutageDuration = 120.0
	// DefaultOutageSeed seeds the outage schedule when Options.OutageSeed
	// is zero, keeping outage runs deterministic by default.
	DefaultOutageSeed = 0xDEAD

	// defaultCheckpointBytes sizes a checkpoint when the task declares no
	// peak memory (a checkpoint dumps the task's resident state).
	defaultCheckpointBytes = 64 * units.MB
)

// Options configures one workflow execution.
type Options struct {
	Cluster *cluster.Cluster
	Storage storage.System

	// DataAware enables the locality-aware scheduler ablation (A-2):
	// idle slots prefer ready jobs whose inputs live on their node.
	DataAware bool

	// EnforceMemory gates task start on resident-memory availability,
	// the mechanism that makes Broadband memory-limited. On by default
	// via Run; set SkipMemoryLimit to disable (ablation).
	SkipMemoryLimit bool

	// SubmitDelay and StartLatency override the stack overheads when
	// non-zero.
	SubmitDelay  float64
	StartLatency float64

	// FailureRate injects transient task failures with the given
	// per-attempt probability (spot hiccups, OOM kills, flaky NFS
	// mounts). A failed attempt burns a random fraction of the task's
	// runtime, then DAGMan re-queues it, exactly as Condor/DAGMan retry
	// semantics work. Zero (the default, and the paper's setting)
	// disables injection.
	FailureRate float64
	// MaxRetries bounds re-executions per task when FailureRate > 0
	// (DAGMan's RETRY). Zero means the DAGMan default of 3.
	MaxRetries int
	// FailureSeed makes injection deterministic; zero uses a fixed seed.
	FailureSeed uint64

	// OutageRate injects correlated node outages at the given expected
	// rate per node per hour: the whole node drops offline (spot
	// reclamation, hardware retirement), its in-flight attempts are
	// killed and re-queued, its slots stop requesting work, and data it
	// owns is unreadable until it recovers. Zero disables outages.
	OutageRate float64
	// OutageDuration is the mean outage length in seconds; zero means
	// DefaultOutageDuration. Only meaningful when OutageRate > 0.
	OutageDuration float64
	// OutageSeed makes the outage schedule deterministic; zero uses a
	// fixed seed.
	OutageSeed uint64

	// CheckpointInterval makes tasks write a checkpoint (sized by their
	// peak memory) through the storage system every interval seconds of
	// computation, and lets a re-queued attempt resume from its last
	// checkpoint instead of from zero. Checkpoint traffic competes for
	// the same storage bandwidth the workflow's own I/O uses. Zero (the
	// paper's setting) disables checkpointing.
	CheckpointInterval float64

	// Recorder, when non-nil, receives the run's structured event stream
	// (task attempts, transfers, outages, checkpoints, node state) as it
	// executes. Nil — the default — disables recording: every emission
	// site is behind one pointer test, so unrecorded runs stay on the
	// zero-cost path and bit-identical to pre-eventlog builds.
	Recorder eventlog.Recorder
}

// Span records one task attempt for traces and utilization analysis.
// Failed attempts are recorded too (the slot was occupied either way);
// WriteEnd is then the abort time and Failed is set, so Gantt charts and
// trace exports show retried work instead of silently dropping it.
type Span struct {
	Task     *workflow.Task
	Node     string
	Start    float64 // slot picked the job up
	Exec     float64 // inputs staged, computation began
	WriteEnd float64 // outputs published (task complete), or abort time
	Failed   bool    // attempt was killed by failure injection or an outage
}

// Result summarizes one workflow execution.
type Result struct {
	Makespan     float64
	Spans        []Span
	StorageStats storage.Stats
	// BusySeconds sums slot-occupied time across all cores; divide by
	// makespan*cores for utilization.
	BusySeconds float64
	// PeakMemoryWait counts jobs that had to wait for memory admission.
	MemoryWaits int64
	// Failures counts injected task failures that were retried.
	Failures int64
	// Retries counts re-executions (injected failures plus outage kills).
	Retries int64

	// Outages counts node outages that began before the workflow
	// completed; OutageKills counts task attempts they killed.
	Outages     int64
	OutageKills int64
	// LostWorkSeconds sums slot time burned by failed attempts that no
	// checkpoint preserved (occupied-slot seconds minus durable progress).
	LostWorkSeconds float64
	// Checkpoints and CheckpointBytes count checkpoint writes and their
	// staged bytes (restore reads are not included in the byte count).
	Checkpoints     int64
	CheckpointBytes float64
}

// Completed counts successful task executions (spans not flagged
// Failed); it equals the task count for any run that finished.
func (r *Result) Completed() int {
	n := 0
	for _, s := range r.Spans {
		if !s.Failed {
			n++
		}
	}
	return n
}

// Utilization returns mean worker-core utilization over the makespan.
func (r *Result) Utilization(c *cluster.Cluster) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.BusySeconds / (r.Makespan * float64(c.TotalCores()))
}

// job is one schedulable unit.
type job struct {
	task *workflow.Task
}

// Run plans and executes the workflow on the cluster using the given
// storage system. The storage system must already be Init-ed against the
// cluster; input files are pre-staged (free, per the paper's methodology)
// and the simulated clock runs from first submission to last task
// completion.
func Run(e *sim.Engine, opts Options, w *workflow.Workflow) (*Result, error) {
	if !w.Finalized() {
		return nil, fmt.Errorf("wms: workflow %s is not finalized", w.Name)
	}
	if opts.Cluster == nil || opts.Storage == nil {
		return nil, fmt.Errorf("wms: options need both a cluster and a storage system")
	}
	if opts.SubmitDelay == 0 {
		opts.SubmitDelay = DefaultSubmitDelay
	}
	if opts.StartLatency == 0 {
		opts.StartLatency = DefaultStartLatency
	}
	if opts.CheckpointInterval < 0 {
		return nil, fmt.Errorf("wms: negative checkpoint interval %g", opts.CheckpointInterval)
	}
	if opts.OutageRate < 0 {
		return nil, fmt.Errorf("wms: negative outage rate %g", opts.OutageRate)
	}
	// Check every task can ever run: memory demand must fit some node.
	if !opts.SkipMemoryLimit {
		for _, t := range w.Tasks {
			need := cluster.MemoryMB(t.PeakMemory)
			fits := false
			for _, n := range opts.Cluster.Workers {
				if need <= n.Memory.Capacity() {
					fits = true
					break
				}
			}
			if !fits {
				return nil, fmt.Errorf("wms: task %s needs %d MB, larger than any worker", t.ID, need)
			}
		}
	}

	opts.Storage.PreStage(w.Inputs())

	run := &execution{
		e:      e,
		opts:   opts,
		w:      w,
		remain: make(map[*workflow.Task]int, len(w.Tasks)),
		done:   sim.NewWaitGroup(e),
		result: &Result{},
	}
	if opts.Recorder != nil {
		run.rec = opts.Recorder
		run.tries = make(map[*workflow.Task]int, len(w.Tasks))
	}
	if opts.FailureRate > 0 {
		if opts.FailureRate >= 1 {
			return nil, fmt.Errorf("wms: failure rate %g leaves no chance of progress", opts.FailureRate)
		}
		seed := opts.FailureSeed
		if seed == 0 {
			seed = DefaultFailureSeed
		}
		run.failRand = rng.New(seed)
		run.maxRetries = opts.MaxRetries
		if run.maxRetries == 0 {
			run.maxRetries = DefaultMaxRetries
		}
		run.attempts = make(map[*workflow.Task]int)
	}
	if opts.OutageRate > 0 {
		dur := opts.OutageDuration
		if dur == 0 {
			dur = DefaultOutageDuration
		}
		seed := opts.OutageSeed
		if seed == 0 {
			seed = DefaultOutageSeed
		}
		sched, err := outage.New(outage.Config{Rate: opts.OutageRate, Duration: dur, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("wms: %w", err)
		}
		run.outages = sched
		run.running = make(map[*cluster.Node][]*attempt)
	}
	if opts.CheckpointInterval > 0 || run.outages != nil {
		run.progress = make(map[*workflow.Task]float64)
		run.ckptFiles = make(map[*workflow.Task]*workflow.File)
	}
	if opts.DataAware {
		run.disp = newDataAwareDispatcher(e, opts.Storage)
	} else {
		run.disp = newFIFODispatcher(e)
	}
	run.execute()
	run.result.StorageStats = opts.Storage.Stats()
	return run.result, nil
}

// execution carries the run's mutable state.
type execution struct {
	e      *sim.Engine
	opts   Options
	w      *workflow.Workflow
	disp   dispatcher
	remain map[*workflow.Task]int
	ready  *sim.Mailbox[*workflow.Task]
	done   *sim.WaitGroup
	result *Result

	// Failure injection (nil failRand disables it). Failures are
	// transient: once a task has exhausted maxRetries failed attempts it
	// runs clean, so workflows always complete.
	failRand   *rng.RNG
	maxRetries int
	attempts   map[*workflow.Task]int

	// Correlated outages (nil outages disables them). Per-node daemons
	// walk the deterministic schedule; running tracks in-flight attempts
	// per node (slice, not map: kill order must be deterministic) so an
	// outage can kill them.
	outages *outage.Schedule
	running map[*cluster.Node][]*attempt
	stopped bool

	// Checkpoint/restart (nil maps disable it; allocated whenever
	// checkpointing or outages are on, since both need restart
	// bookkeeping). progress is the durable fraction of each task's
	// computation; ckptFiles interns one synthetic checkpoint file per
	// task, overwritten in place by successive checkpoints.
	progress  map[*workflow.Task]float64
	ckptFiles map[*workflow.Task]*workflow.File

	// Event recording (nil rec disables it — the zero-cost default).
	// tries numbers each task's attempts from 1 for the event stream.
	rec   eventlog.Recorder
	tries map[*workflow.Task]int
}

// attempt is the kill handle for one in-flight task attempt: an outage
// on its node sets killed, and interrupts the attempt immediately when
// it is inside an interruptible compute sleep (timer armed). Attempts
// suspended elsewhere (mid-transfer, in admission queues) notice the
// flag cooperatively at their next phase boundary.
type attempt struct {
	p      *sim.Proc
	task   *workflow.Task
	killed bool
	timer  *sim.Timer // non-nil while inside sleepAttempt
}

// execute wires up DAGMan and the slots, then drives the engine to
// completion.
func (x *execution) execute() {
	x.ready = sim.NewMailbox[*workflow.Task](x.e)
	x.done.Add(len(x.w.Tasks))

	for _, t := range x.w.Tasks {
		x.remain[t] = len(t.Parents())
		if x.remain[t] == 0 {
			x.ready.Put(t)
		}
	}

	// DAGMan: submits ready tasks to the scheduler, throttled.
	x.e.GoDaemon("dagman", func(p *sim.Proc) {
		for {
			t, ok := x.ready.Get(p)
			if !ok {
				return
			}
			p.Sleep(x.opts.SubmitDelay)
			x.disp.submit(&job{task: t})
		}
	})

	// Slots: one process per worker core, pulling jobs from the
	// dispatcher (Condor startds with one slot per core).
	for _, node := range x.opts.Cluster.Workers {
		for s := 0; s < node.Type.Cores; s++ {
			node := node
			x.e.GoDaemon(fmt.Sprintf("%s/slot%d", node.Name, s), func(p *sim.Proc) {
				for {
					j := x.disp.request(p, node)
					if j == nil {
						return
					}
					if x.outages != nil && node.Down() {
						// A dead startd matches no jobs: hand the job back
						// for a live node and wait out the outage.
						x.disp.submit(j)
						node.WaitUp(p)
						continue
					}
					x.runJob(p, node, j)
					if x.outages != nil && node.Down() {
						// The attempt was killed mid-run; don't request
						// more work until the node recovers.
						node.WaitUp(p)
					}
				}
			})
		}
	}

	// Outage daemons: one per worker node, walking the node's
	// deterministic outage stream. They stop re-arming once the workflow
	// completes, so the event queue drains.
	if x.outages != nil {
		for i, node := range x.opts.Cluster.Workers {
			i, node := i, node
			x.e.GoDaemon(fmt.Sprintf("%s/outage", node.Name), func(p *sim.Proc) {
				st := x.outages.Node(i)
				for {
					w := st.Next()
					p.Sleep(w.Start - p.Now())
					if x.stopped {
						return
					}
					x.takeDown(node, w.Duration())
					p.Sleep(w.End - p.Now())
					node.SetUp()
					if x.rec != nil {
						x.rec.Record(eventlog.Event{T: p.Now(), Kind: eventlog.NodeUp, Node: node.Name})
						x.rec.Record(eventlog.Event{T: p.Now(), Kind: eventlog.OutageEnd, Node: node.Name})
					}
					if x.stopped {
						return
					}
				}
			})
		}
	}

	// Completion watcher: once every task is done, close the pipeline so
	// the daemons drain.
	x.e.Go("completion", func(p *sim.Proc) {
		x.done.Wait(p)
		x.result.Makespan = p.Now()
		x.stopped = true
		x.ready.Close()
		x.disp.close()
	})

	x.e.Run()
}

// takeDown starts an outage on node: kill every in-flight attempt and
// mark the node offline so its slots idle and its data is unreadable.
// dur is the scheduled outage length, carried on the outage-begin event.
func (x *execution) takeDown(node *cluster.Node, dur float64) {
	node.SetDown()
	x.result.Outages++
	if x.rec != nil {
		now := x.e.Now()
		x.rec.Record(eventlog.Event{T: now, Kind: eventlog.OutageBegin, Node: node.Name, Dur: dur})
		x.rec.Record(eventlog.Event{T: now, Kind: eventlog.NodeDown, Node: node.Name})
	}
	for _, att := range x.running[node] {
		att.killed = true
		if x.rec != nil {
			x.rec.Record(eventlog.Event{
				T: x.e.Now(), Kind: eventlog.OutageKill, Task: att.task.ID, Node: node.Name,
				Attempt: x.tries[att.task],
			})
		}
		if att.timer != nil {
			// Interrupt the compute sleep right now; attempts blocked in
			// transfers or queues notice the flag at their next boundary.
			att.timer.Stop()
			att.timer = nil
			att.p.Resume()
		}
	}
}

// register adds a kill handle for an attempt starting on node (nil when
// outages are disabled — the zero-overhead default path).
func (x *execution) register(p *sim.Proc, node *cluster.Node, t *workflow.Task) *attempt {
	if x.outages == nil {
		return nil
	}
	att := &attempt{p: p, task: t}
	x.running[node] = append(x.running[node], att)
	return att
}

// unregister removes the attempt's kill handle.
func (x *execution) unregister(node *cluster.Node, att *attempt) {
	if att == nil {
		return
	}
	list := x.running[node]
	for i, a := range list {
		if a == att {
			x.running[node] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// sleepAttempt advances the attempt by d seconds of computation,
// returning false when an outage killed it (the sleep ends at the kill
// instant). With outages disabled it is exactly Proc.Sleep, keeping
// outage-free runs bit-identical.
func (x *execution) sleepAttempt(p *sim.Proc, att *attempt, d float64) bool {
	if att == nil {
		p.Sleep(d)
		return true
	}
	if att.killed {
		return false
	}
	finished := false
	att.timer = x.e.After(d, func() {
		finished = true
		att.timer = nil
		p.Resume()
	})
	p.Suspend()
	att.timer = nil
	return finished && !att.killed
}

// ckptFile interns the synthetic checkpoint file for t: one file per
// task, overwritten by each successive checkpoint, sized by the task's
// resident memory (what a checkpoint actually dumps).
func (x *execution) ckptFile(t *workflow.Task) *workflow.File {
	if f, ok := x.ckptFiles[t]; ok {
		return f
	}
	size := t.PeakMemory
	if size <= 0 {
		size = defaultCheckpointBytes
	}
	f := &workflow.File{Name: "__ckpt__/" + t.ID, Size: size}
	x.ckptFiles[t] = f
	return f
}

// stage charges one storage access (an input read, checkpoint transfer,
// or output write) on behalf of a task, bracketing it with
// transfer-start/transfer-drain events when recording is on. With no
// recorder it is exactly the direct Storage call.
func (x *execution) stage(p *sim.Proc, node *cluster.Node, t *workflow.Task, f *workflow.File, phase string, write bool) {
	if x.rec != nil {
		x.rec.Record(eventlog.Event{
			T: p.Now(), Kind: eventlog.TransferStart,
			Task: t.ID, Node: node.Name, File: f.Name, Phase: phase, Size: f.Size,
		})
	}
	start := p.Now()
	if write {
		x.opts.Storage.Write(p, node, f)
	} else {
		x.opts.Storage.Read(p, node, f)
	}
	if x.rec != nil {
		x.rec.Record(eventlog.Event{
			T: p.Now(), Kind: eventlog.TransferDrain,
			Task: t.ID, Node: node.Name, File: f.Name, Phase: phase, Size: f.Size,
			Dur: p.Now() - start,
		})
	}
}

// runJob executes one task on a slot: memory admission, input staging,
// computation, output publication, then dependency release.
func (x *execution) runJob(p *sim.Proc, node *cluster.Node, j *job) {
	t := j.task
	span := Span{Task: t, Node: node.Name, Start: p.Now()}
	att := x.register(p, node, t)

	attemptNo := 0
	if x.rec != nil {
		x.tries[t]++
		attemptNo = x.tries[t]
		x.rec.Record(eventlog.Event{
			T: span.Start, Kind: eventlog.TaskStart, Task: t.ID, Node: node.Name, Attempt: attemptNo,
		})
	}

	memMB := 0
	if !x.opts.SkipMemoryLimit && t.PeakMemory > 0 {
		memMB = cluster.MemoryMB(t.PeakMemory)
		if node.Memory.Available() < memMB {
			x.result.MemoryWaits++
		}
		node.Memory.Acquire(p, memMB)
	}

	// abort records a failed attempt (injected failure or outage kill),
	// frees the slot's memory and hands the task back to DAGMan. durable
	// is the compute-seconds this attempt preserved via checkpoints;
	// everything else the slot spent is lost work.
	abort := func(durable float64) {
		if memMB > 0 {
			node.Memory.Release(memMB)
		}
		if att != nil && att.killed {
			x.result.OutageKills++
		}
		span.WriteEnd = p.Now()
		if span.Exec == 0 {
			// Killed before computation began: the whole occupied window
			// was staging (keeps trace phase accounting non-negative).
			span.Exec = span.WriteEnd
		}
		span.Failed = true
		x.result.Spans = append(x.result.Spans, span)
		x.result.BusySeconds += span.WriteEnd - span.Start
		x.result.LostWorkSeconds += (span.WriteEnd - span.Start) - durable
		x.result.Retries++
		x.unregister(node, att)
		if x.rec != nil {
			reason := "injected"
			if att != nil && att.killed {
				reason = "outage"
			}
			x.rec.Record(eventlog.Event{
				T: p.Now(), Kind: eventlog.TaskFail, Task: t.ID, Node: node.Name,
				Attempt: attemptNo, Reason: reason,
			})
			x.rec.Record(eventlog.Event{
				T: p.Now(), Kind: eventlog.TaskRetry, Task: t.ID, Attempt: attemptNo,
			})
		}
		x.ready.Put(t)
	}
	killed := func() bool { return att != nil && att.killed }
	if killed() {
		// The node died while this attempt was queued for memory
		// admission; nothing ran, nothing is lost.
		abort(0)
		return
	}

	p.Sleep(x.opts.StartLatency)
	if killed() {
		// The node died during slot activation: abort before staging so a
		// dead node issues no storage traffic.
		abort(0)
		return
	}
	for _, f := range t.Inputs {
		x.stage(p, node, t, f, "input", false)
		if killed() {
			abort(0)
			return
		}
	}
	full := t.Runtime / node.Type.CPUFactor
	resume := 0.0
	if x.progress != nil {
		if frac := x.progress[t]; frac > 0 {
			// Restore the last checkpoint before resuming: real staging
			// traffic through the storage backend, like any input read.
			ck := x.ckptFile(t)
			x.stage(p, node, t, ck, "restore", false)
			resume = frac * full
			if x.rec != nil {
				x.rec.Record(eventlog.Event{
					T: p.Now(), Kind: eventlog.CheckpointRestore,
					Task: t.ID, Node: node.Name, File: ck.Name, Size: ck.Size, Attempt: attemptNo,
				})
			}
			if killed() {
				abort(0)
				return
			}
		}
	}
	span.Exec = p.Now()
	if x.rec != nil {
		x.rec.Record(eventlog.Event{
			T: span.Exec, Kind: eventlog.TaskExec, Task: t.ID, Node: node.Name, Attempt: attemptNo,
		})
	}

	cpu := full - resume
	failAt := -1.0
	if x.failRand != nil && x.attempts[t] < x.maxRetries &&
		x.failRand.Float64() < x.opts.FailureRate {
		// Transient failure: the attempt dies a random fraction into its
		// (remaining) computation, the slot is freed, and DAGMan
		// re-queues the job. The aborted attempt still occupied the
		// slot, so it is recorded as a failed span and charged to
		// BusySeconds.
		failAt = cpu * x.failRand.Float64()
	}
	ran := 0.0
	durable := 0.0 // compute-seconds preserved by checkpoints this attempt
	for {
		chunk := cpu
		if x.opts.CheckpointInterval > 0 && ran+x.opts.CheckpointInterval < cpu {
			chunk = ran + x.opts.CheckpointInterval
		}
		if failAt >= 0 && failAt <= chunk {
			if !x.sleepAttempt(p, att, failAt-ran) {
				abort(durable)
				return
			}
			x.attempts[t]++
			x.result.Failures++
			abort(durable)
			return
		}
		if !x.sleepAttempt(p, att, chunk-ran) {
			abort(durable)
			return
		}
		ran = chunk
		if ran >= cpu {
			break
		}
		// Durable checkpoint: staged through the storage system, so the
		// overhead competes with the workflow's own I/O. Progress is
		// credited as soon as the write completes — even if the attempt
		// was killed while writing, the bytes landed, so the retry may
		// resume from them (otherwise lost work would double-count paid
		// checkpoint overhead).
		ck := x.ckptFile(t)
		x.stage(p, node, t, ck, "ckpt", true)
		x.result.Checkpoints++
		x.result.CheckpointBytes += ck.Size
		x.progress[t] = (resume + ran) / full
		durable = ran
		if x.rec != nil {
			x.rec.Record(eventlog.Event{
				T: p.Now(), Kind: eventlog.CheckpointWrite,
				Task: t.ID, Node: node.Name, File: ck.Name, Size: ck.Size, Attempt: attemptNo,
			})
		}
		if killed() {
			abort(durable)
			return
		}
	}

	for _, f := range t.Outputs {
		x.stage(p, node, t, f, "output", true)
		if killed() {
			abort(durable)
			return
		}
	}
	span.WriteEnd = p.Now()
	if x.rec != nil {
		x.rec.Record(eventlog.Event{
			T: span.WriteEnd, Kind: eventlog.TaskFinish, Task: t.ID, Node: node.Name,
			Attempt: attemptNo, Dur: span.WriteEnd - span.Start,
		})
	}

	if memMB > 0 {
		node.Memory.Release(memMB)
	}

	x.result.Spans = append(x.result.Spans, span)
	x.result.BusySeconds += span.WriteEnd - span.Start
	x.unregister(node, att)

	// DAGMan dependency release.
	for _, c := range t.Children() {
		x.remain[c]--
		if x.remain[c] == 0 {
			x.ready.Put(c)
		}
	}
	x.done.Done()
}
