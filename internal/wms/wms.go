// Package wms models the workflow management stack the paper runs:
// Pegasus plans the workflow, DAGMan releases tasks as their dependencies
// complete, and Condor matches released jobs to idle worker slots. The
// scheduler is locality-blind FIFO, as the paper notes ("the scheduler ...
// does not consider data locality or parent-child affinity"); a
// data-aware variant is provided for the paper's future-work ablation.
package wms

import (
	"fmt"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/workflow"
)

// Default overheads for the Condor/DAGMan stack, calibrated to the
// per-job costs observed with Condor 7.x glide-ins: a submit throttle in
// DAGMan and a match/claim/activate delay before the job's executable
// starts on the slot.
const (
	DefaultSubmitDelay  = 0.010
	DefaultStartLatency = 0.40

	// DefaultMaxRetries is DAGMan's RETRY default, applied when
	// Options.MaxRetries is zero and failures are injected.
	DefaultMaxRetries = 3
	// DefaultFailureSeed seeds the injection RNG when Options.FailureSeed
	// is zero, keeping failure runs deterministic by default.
	DefaultFailureSeed = 0xFA11
)

// Options configures one workflow execution.
type Options struct {
	Cluster *cluster.Cluster
	Storage storage.System

	// DataAware enables the locality-aware scheduler ablation (A-2):
	// idle slots prefer ready jobs whose inputs live on their node.
	DataAware bool

	// EnforceMemory gates task start on resident-memory availability,
	// the mechanism that makes Broadband memory-limited. On by default
	// via Run; set SkipMemoryLimit to disable (ablation).
	SkipMemoryLimit bool

	// SubmitDelay and StartLatency override the stack overheads when
	// non-zero.
	SubmitDelay  float64
	StartLatency float64

	// FailureRate injects transient task failures with the given
	// per-attempt probability (spot hiccups, OOM kills, flaky NFS
	// mounts). A failed attempt burns a random fraction of the task's
	// runtime, then DAGMan re-queues it, exactly as Condor/DAGMan retry
	// semantics work. Zero (the default, and the paper's setting)
	// disables injection.
	FailureRate float64
	// MaxRetries bounds re-executions per task when FailureRate > 0
	// (DAGMan's RETRY). Zero means the DAGMan default of 3.
	MaxRetries int
	// FailureSeed makes injection deterministic; zero uses a fixed seed.
	FailureSeed uint64
}

// Span records one task attempt for traces and utilization analysis.
// Failed attempts are recorded too (the slot was occupied either way);
// WriteEnd is then the abort time and Failed is set, so Gantt charts and
// trace exports show retried work instead of silently dropping it.
type Span struct {
	Task     *workflow.Task
	Node     string
	Start    float64 // slot picked the job up
	Exec     float64 // inputs staged, computation began
	WriteEnd float64 // outputs published (task complete), or abort time
	Failed   bool    // attempt was killed by failure injection
}

// Result summarizes one workflow execution.
type Result struct {
	Makespan     float64
	Spans        []Span
	StorageStats storage.Stats
	// BusySeconds sums slot-occupied time across all cores; divide by
	// makespan*cores for utilization.
	BusySeconds float64
	// PeakMemoryWait counts jobs that had to wait for memory admission.
	MemoryWaits int64
	// Failures counts injected task failures that were retried.
	Failures int64
	// Retries counts re-executions (equals Failures when all retries
	// succeed).
	Retries int64
}

// Completed counts successful task executions (spans not flagged
// Failed); it equals the task count for any run that finished.
func (r *Result) Completed() int {
	n := 0
	for _, s := range r.Spans {
		if !s.Failed {
			n++
		}
	}
	return n
}

// Utilization returns mean worker-core utilization over the makespan.
func (r *Result) Utilization(c *cluster.Cluster) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.BusySeconds / (r.Makespan * float64(c.TotalCores()))
}

// job is one schedulable unit.
type job struct {
	task *workflow.Task
}

// Run plans and executes the workflow on the cluster using the given
// storage system. The storage system must already be Init-ed against the
// cluster; input files are pre-staged (free, per the paper's methodology)
// and the simulated clock runs from first submission to last task
// completion.
func Run(e *sim.Engine, opts Options, w *workflow.Workflow) (*Result, error) {
	if !w.Finalized() {
		return nil, fmt.Errorf("wms: workflow %s is not finalized", w.Name)
	}
	if opts.Cluster == nil || opts.Storage == nil {
		return nil, fmt.Errorf("wms: options need both a cluster and a storage system")
	}
	if opts.SubmitDelay == 0 {
		opts.SubmitDelay = DefaultSubmitDelay
	}
	if opts.StartLatency == 0 {
		opts.StartLatency = DefaultStartLatency
	}
	// Check every task can ever run: memory demand must fit some node.
	if !opts.SkipMemoryLimit {
		for _, t := range w.Tasks {
			need := cluster.MemoryMB(t.PeakMemory)
			fits := false
			for _, n := range opts.Cluster.Workers {
				if need <= n.Memory.Capacity() {
					fits = true
					break
				}
			}
			if !fits {
				return nil, fmt.Errorf("wms: task %s needs %d MB, larger than any worker", t.ID, need)
			}
		}
	}

	opts.Storage.PreStage(w.Inputs())

	run := &execution{
		e:      e,
		opts:   opts,
		w:      w,
		remain: make(map[*workflow.Task]int, len(w.Tasks)),
		done:   sim.NewWaitGroup(e),
		result: &Result{},
	}
	if opts.FailureRate > 0 {
		if opts.FailureRate >= 1 {
			return nil, fmt.Errorf("wms: failure rate %g leaves no chance of progress", opts.FailureRate)
		}
		seed := opts.FailureSeed
		if seed == 0 {
			seed = DefaultFailureSeed
		}
		run.failRand = rng.New(seed)
		run.maxRetries = opts.MaxRetries
		if run.maxRetries == 0 {
			run.maxRetries = DefaultMaxRetries
		}
		run.attempts = make(map[*workflow.Task]int)
	}
	if opts.DataAware {
		run.disp = newDataAwareDispatcher(e, opts.Storage)
	} else {
		run.disp = newFIFODispatcher(e)
	}
	run.execute()
	run.result.StorageStats = opts.Storage.Stats()
	return run.result, nil
}

// execution carries the run's mutable state.
type execution struct {
	e      *sim.Engine
	opts   Options
	w      *workflow.Workflow
	disp   dispatcher
	remain map[*workflow.Task]int
	ready  *sim.Mailbox[*workflow.Task]
	done   *sim.WaitGroup
	result *Result

	// Failure injection (nil failRand disables it). Failures are
	// transient: once a task has exhausted maxRetries failed attempts it
	// runs clean, so workflows always complete.
	failRand   *rng.RNG
	maxRetries int
	attempts   map[*workflow.Task]int
}

// execute wires up DAGMan and the slots, then drives the engine to
// completion.
func (x *execution) execute() {
	x.ready = sim.NewMailbox[*workflow.Task](x.e)
	x.done.Add(len(x.w.Tasks))

	for _, t := range x.w.Tasks {
		x.remain[t] = len(t.Parents())
		if x.remain[t] == 0 {
			x.ready.Put(t)
		}
	}

	// DAGMan: submits ready tasks to the scheduler, throttled.
	x.e.GoDaemon("dagman", func(p *sim.Proc) {
		for {
			t, ok := x.ready.Get(p)
			if !ok {
				return
			}
			p.Sleep(x.opts.SubmitDelay)
			x.disp.submit(&job{task: t})
		}
	})

	// Slots: one process per worker core, pulling jobs from the
	// dispatcher (Condor startds with one slot per core).
	for _, node := range x.opts.Cluster.Workers {
		for s := 0; s < node.Type.Cores; s++ {
			node := node
			x.e.GoDaemon(fmt.Sprintf("%s/slot%d", node.Name, s), func(p *sim.Proc) {
				for {
					j := x.disp.request(p, node)
					if j == nil {
						return
					}
					x.runJob(p, node, j)
				}
			})
		}
	}

	// Completion watcher: once every task is done, close the pipeline so
	// the daemons drain.
	x.e.Go("completion", func(p *sim.Proc) {
		x.done.Wait(p)
		x.result.Makespan = p.Now()
		x.ready.Close()
		x.disp.close()
	})

	x.e.Run()
}

// runJob executes one task on a slot: memory admission, input staging,
// computation, output publication, then dependency release.
func (x *execution) runJob(p *sim.Proc, node *cluster.Node, j *job) {
	t := j.task
	span := Span{Task: t, Node: node.Name, Start: p.Now()}

	memMB := 0
	if !x.opts.SkipMemoryLimit && t.PeakMemory > 0 {
		memMB = cluster.MemoryMB(t.PeakMemory)
		if node.Memory.Available() < memMB {
			x.result.MemoryWaits++
		}
		node.Memory.Acquire(p, memMB)
	}

	p.Sleep(x.opts.StartLatency)
	for _, f := range t.Inputs {
		x.opts.Storage.Read(p, node, f)
	}
	span.Exec = p.Now()

	cpu := t.Runtime / node.Type.CPUFactor
	if x.failRand != nil && x.attempts[t] < x.maxRetries &&
		x.failRand.Float64() < x.opts.FailureRate {
		// Transient failure: the attempt burns a random fraction of the
		// computation, the slot is freed, and DAGMan re-queues the job.
		// The aborted attempt still occupied the slot, so it is recorded
		// as a failed span and charged to BusySeconds.
		x.attempts[t]++
		x.result.Failures++
		x.result.Retries++
		p.Sleep(cpu * x.failRand.Float64())
		if memMB > 0 {
			node.Memory.Release(memMB)
		}
		span.WriteEnd = p.Now()
		span.Failed = true
		x.result.Spans = append(x.result.Spans, span)
		x.result.BusySeconds += span.WriteEnd - span.Start
		x.ready.Put(t)
		return
	}
	p.Sleep(cpu)

	for _, f := range t.Outputs {
		x.opts.Storage.Write(p, node, f)
	}
	span.WriteEnd = p.Now()

	if memMB > 0 {
		node.Memory.Release(memMB)
	}

	x.result.Spans = append(x.result.Spans, span)
	x.result.BusySeconds += span.WriteEnd - span.Start

	// DAGMan dependency release.
	for _, c := range t.Children() {
		x.remain[c]--
		if x.remain[c] == 0 {
			x.ready.Put(c)
		}
	}
	x.done.Done()
}
