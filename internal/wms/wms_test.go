package wms

import (
	"fmt"
	"testing"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// deploy builds an engine, cluster and storage system ready to run.
func deploy(t *testing.T, sysName string, workers int) (*sim.Engine, *cluster.Cluster, storage.System) {
	t.Helper()
	sys, err := storage.ByName(sysName)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := cluster.New(e, net, rng.New(3), cluster.Config{
		Workers:    workers,
		WorkerType: cluster.C1XLarge(),
		Extra:      sys.ExtraNodeTypes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	env := &storage.Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(5)}
	if err := sys.Init(env); err != nil {
		t.Fatal(err)
	}
	return e, c, sys
}

// chainWorkflow builds a linear chain of n compute-only tasks.
func chainWorkflow(t *testing.T, n int, runtime float64) *workflow.Workflow {
	t.Helper()
	w := workflow.New("chain")
	var prev *workflow.File
	for i := 0; i < n; i++ {
		task := &workflow.Task{
			ID:             fmt.Sprintf("t%d", i),
			Transformation: "step",
			Runtime:        runtime,
			Outputs:        []*workflow.File{w.File(fmt.Sprintf("f%d", i), units.MB)},
		}
		if prev != nil {
			task.Inputs = []*workflow.File{prev}
		}
		prev = task.Outputs[0]
		w.AddTask(task)
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	return w
}

// fanWorkflow builds n independent tasks.
func fanWorkflow(t *testing.T, n int, runtime, memBytes float64) *workflow.Workflow {
	t.Helper()
	w := workflow.New("fan")
	for i := 0; i < n; i++ {
		w.AddTask(&workflow.Task{
			ID:             fmt.Sprintf("t%d", i),
			Transformation: "work",
			Runtime:        runtime,
			PeakMemory:     memBytes,
			Outputs:        []*workflow.File{w.File(fmt.Sprintf("o%d", i), units.MB)},
		})
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestChainRunsSequentially(t *testing.T) {
	e, c, sys := deploy(t, "local", 1)
	w := chainWorkflow(t, 10, 5)
	res, err := Run(e, Options{Cluster: c, Storage: sys}, w)
	if err != nil {
		t.Fatal(err)
	}
	// 10 tasks x (5 s compute + overheads); a chain cannot parallelize.
	if res.Makespan < 50 {
		t.Errorf("makespan %.1f < serial compute 50", res.Makespan)
	}
	if res.Makespan > 60 {
		t.Errorf("makespan %.1f; overheads too large for 10 tasks", res.Makespan)
	}
	if len(res.Spans) != 10 {
		t.Errorf("spans = %d, want 10", len(res.Spans))
	}
}

func TestFanUsesAllCores(t *testing.T) {
	e, c, sys := deploy(t, "local", 1)
	w := fanWorkflow(t, 16, 10, 100*units.MB)
	res, err := Run(e, Options{Cluster: c, Storage: sys}, w)
	if err != nil {
		t.Fatal(err)
	}
	// 16 tasks of 10 s on 8 cores: two waves, ~20 s + overheads.
	if res.Makespan < 20 || res.Makespan > 25 {
		t.Errorf("makespan = %.1f, want ~20-25 (two waves on 8 cores)", res.Makespan)
	}
	if u := res.Utilization(c); u < 0.75 {
		t.Errorf("utilization = %.2f, want high for an embarrassingly parallel fan", u)
	}
}

func TestMemoryLimitingThrottlesConcurrency(t *testing.T) {
	// 8 tasks of 4.2 GiB each on a 7 GiB node: only one runs at a time
	// even though 8 cores are free.
	e, c, sys := deploy(t, "local", 1)
	w := fanWorkflow(t, 8, 10, 4.2*units.GiB)
	res, err := Run(e, Options{Cluster: c, Storage: sys}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 80 {
		t.Errorf("makespan = %.1f, want >= 80 (memory serializes 8x10s tasks)", res.Makespan)
	}
	if res.MemoryWaits == 0 {
		t.Error("no memory waits recorded despite oversubscription")
	}
	// Same fan without the limit: 10s, one wave.
	e2, c2, sys2 := deploy(t, "local", 1)
	w2 := fanWorkflow(t, 8, 10, 4.2*units.GiB)
	res2, err := Run(e2, Options{Cluster: c2, Storage: sys2, SkipMemoryLimit: true}, w2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Makespan > 15 {
		t.Errorf("unlimited makespan = %.1f, want ~10-12", res2.Makespan)
	}
}

func TestTaskLargerThanAnyNodeRejected(t *testing.T) {
	e, c, sys := deploy(t, "local", 1)
	w := fanWorkflow(t, 1, 1, 16*units.GiB)
	if _, err := Run(e, Options{Cluster: c, Storage: sys}, w); err == nil {
		t.Error("expected error for task larger than node memory")
	}
}

func TestMultiNodeScalesFan(t *testing.T) {
	mk := func(workers int) float64 {
		e, c, sys := deploy(t, "gluster-nufa", workers)
		w := fanWorkflow(t, 64, 10, 100*units.MB)
		res, err := Run(e, Options{Cluster: c, Storage: sys}, w)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	two, eight := mk(2), mk(8)
	if ratio := two / eight; ratio < 3 {
		t.Errorf("2->8 node speedup = %.1fx, want ~4x for a compute fan", ratio)
	}
}

func TestRunValidation(t *testing.T) {
	e, c, sys := deploy(t, "local", 1)
	w := workflow.New("unfinalized")
	w.AddTask(&workflow.Task{ID: "x"})
	if _, err := Run(e, Options{Cluster: c, Storage: sys}, w); err == nil {
		t.Error("expected error for unfinalized workflow")
	}
	fin := chainWorkflow(t, 1, 1)
	if _, err := Run(e, Options{Storage: sys}, fin); err == nil {
		t.Error("expected error for missing cluster")
	}
	if _, err := Run(e, Options{Cluster: c}, fin); err == nil {
		t.Error("expected error for missing storage")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() float64 {
		e, c, sys := deploy(t, "nfs", 2)
		w, err := apps.Montage(apps.MontageConfig{Images: 30})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(e, Options{Cluster: c, Storage: sys}, w)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("same configuration gave different makespans: %g vs %g", a, b)
	}
}

// Smoke test: every registered storage system can run a scaled-down
// version of every application without deadlock, and all tasks complete.
func TestAllSystemsRunAllApps(t *testing.T) {
	for _, sysName := range storage.Names() {
		for _, appName := range apps.Names() {
			sysName, appName := sysName, appName
			t.Run(sysName+"/"+appName, func(t *testing.T) {
				var w *workflow.Workflow
				var err error
				switch appName {
				case "montage":
					w, err = apps.Montage(apps.MontageConfig{Images: 24})
				case "broadband":
					w, err = apps.Broadband(apps.BroadbandConfig{Sources: 2, Sites: 2})
				case "epigenome":
					w, err = apps.Epigenome(apps.EpigenomeConfig{Lanes: 1, ChunksPerLane: 6})
				}
				if err != nil {
					t.Fatal(err)
				}
				workers := 2
				if sysName == "local" {
					workers = 1
				}
				e, c, sys := deploy(t, sysName, workers)
				res, err := Run(e, Options{Cluster: c, Storage: sys}, w)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Spans) != len(w.Tasks) {
					t.Errorf("completed %d of %d tasks", len(res.Spans), len(w.Tasks))
				}
				if res.Makespan <= 0 {
					t.Error("non-positive makespan")
				}
			})
		}
	}
}

func TestDataAwareSchedulerReducesTraffic(t *testing.T) {
	traffic := func(aware bool) float64 {
		e, c, sys := deploy(t, "gluster-nufa", 4)
		w, err := apps.Broadband(apps.BroadbandConfig{Sources: 2, Sites: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(e, Options{Cluster: c, Storage: sys, DataAware: aware}, w)
		if err != nil {
			t.Fatal(err)
		}
		return res.StorageStats.NetworkBytes
	}
	blind, aware := traffic(false), traffic(true)
	if aware >= blind {
		t.Errorf("data-aware traffic %.2e >= blind %.2e; locality scheduling not helping",
			aware, blind)
	}
}
