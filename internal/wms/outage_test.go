package wms

import (
	"testing"

	"ec2wfsim/internal/units"
)

// TestOutageKillsAndRecovers injects aggressive outages into a fan of
// long tasks: attempts must be killed as Failed spans, every task must
// still complete after recoveries, and the makespan must inflate over
// the outage-free run.
func TestOutageKillsAndRecovers(t *testing.T) {
	run := func(rate float64) *Result {
		e, c, sys := deploy(t, "gluster-nufa", 2)
		w := fanWorkflow(t, 32, 60, 100*units.MB)
		res, err := Run(e, Options{
			Cluster: c, Storage: sys,
			OutageRate: rate, OutageDuration: 90, OutageSeed: 7,
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(0)
	broken := run(40) // ~one outage per node every 90 s
	if broken.Outages == 0 {
		t.Fatal("aggressive outage rate produced no outages")
	}
	if broken.OutageKills == 0 {
		t.Error("outages killed no in-flight attempts")
	}
	if broken.Completed() != 32 {
		t.Errorf("completed %d of 32 tasks", broken.Completed())
	}
	failed := 0
	for _, s := range broken.Spans {
		if s.Failed {
			failed++
		}
		// Every span — killed ones included — must keep its phases
		// ordered, or trace staging/execution accounting goes negative.
		if s.Exec < s.Start || s.WriteEnd < s.Exec {
			t.Errorf("span %s on %s has disordered phases: start=%g exec=%g end=%g",
				s.Task.ID, s.Node, s.Start, s.Exec, s.WriteEnd)
		}
	}
	if int64(failed) != broken.OutageKills {
		t.Errorf("failed spans = %d, outage kills = %d", failed, broken.OutageKills)
	}
	if broken.Makespan <= clean.Makespan {
		t.Errorf("outage makespan %.1f not slower than clean %.1f", broken.Makespan, clean.Makespan)
	}
	if broken.LostWorkSeconds <= 0 {
		t.Error("kills recorded but no lost work")
	}
	if clean.Outages != 0 || clean.OutageKills != 0 || clean.LostWorkSeconds != 0 {
		t.Errorf("outage-free run reports outage stats: %+v", clean)
	}
}

// TestOutageDeterministic pins outage-run reproducibility: a fixed
// OutageSeed replays the same kills and makespan; a different seed
// produces a different schedule.
func TestOutageDeterministic(t *testing.T) {
	run := func(seed uint64) *Result {
		e, c, sys := deploy(t, "pvfs", 2)
		w := fanWorkflow(t, 24, 45, 50*units.MB)
		res, err := Run(e, Options{
			Cluster: c, Storage: sys,
			OutageRate: 30, OutageDuration: 60, OutageSeed: seed,
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	if a.Makespan != b.Makespan || a.OutageKills != b.OutageKills || a.Outages != b.Outages {
		t.Errorf("fixed OutageSeed did not replay: (%g, %d, %d) vs (%g, %d, %d)",
			a.Makespan, a.Outages, a.OutageKills, b.Makespan, b.Outages, b.OutageKills)
	}
	c := run(43)
	if c.Makespan == a.Makespan && c.OutageKills == a.OutageKills {
		t.Error("changing OutageSeed changed nothing")
	}
}

// TestCheckpointRestartPreservesProgress compares a failure-heavy run
// with and without checkpointing: checkpoints must be written and
// staged as real bytes, and the checkpointed run must lose less work
// (restarts resume instead of recomputing).
func TestCheckpointRestartPreservesProgress(t *testing.T) {
	run := func(interval float64) *Result {
		e, c, sys := deploy(t, "gluster-nufa", 2)
		// Long tasks so a mid-task kill without checkpoints wastes a lot.
		w := fanWorkflow(t, 16, 120, 256*units.MB)
		res, err := Run(e, Options{
			Cluster: c, Storage: sys,
			FailureRate: 0.4, FailureSeed: 11, MaxRetries: 3,
			CheckpointInterval: interval,
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(0)
	ckpt := run(20)
	if plain.Failures == 0 || ckpt.Failures == 0 {
		t.Fatal("failure injection produced nothing to restart")
	}
	if ckpt.Checkpoints == 0 || ckpt.CheckpointBytes == 0 {
		t.Errorf("no checkpoints recorded: %d writes, %.0f bytes", ckpt.Checkpoints, ckpt.CheckpointBytes)
	}
	if plain.Checkpoints != 0 || plain.CheckpointBytes != 0 {
		t.Error("checkpoint-free run recorded checkpoints")
	}
	if ckpt.LostWorkSeconds >= plain.LostWorkSeconds {
		t.Errorf("checkpointing did not reduce lost work: %.1f s vs %.1f s",
			ckpt.LostWorkSeconds, plain.LostWorkSeconds)
	}
	if ckpt.Completed() != 16 || plain.Completed() != 16 {
		t.Errorf("completions: ckpt %d, plain %d, want 16", ckpt.Completed(), plain.Completed())
	}
}

// TestCheckpointOverheadWithoutFailures: checkpointing alone (no
// failures, no outages) must slow the run down — the checkpoint writes
// are real storage traffic — while still completing everything.
func TestCheckpointOverheadWithoutFailures(t *testing.T) {
	run := func(interval float64) *Result {
		e, c, sys := deploy(t, "nfs", 2)
		w := fanWorkflow(t, 16, 90, 512*units.MB)
		res, err := Run(e, Options{Cluster: c, Storage: sys, CheckpointInterval: interval}, w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(0)
	ckpt := run(30)
	if ckpt.Checkpoints == 0 {
		t.Fatal("no checkpoints written")
	}
	if ckpt.Makespan <= plain.Makespan {
		t.Errorf("checkpoint overhead invisible: %.1f s vs %.1f s", ckpt.Makespan, plain.Makespan)
	}
	if ckpt.LostWorkSeconds != 0 {
		t.Errorf("failure-free run lost %.1f s of work", ckpt.LostWorkSeconds)
	}
}

// TestOutageValidation pins option validation at the Run boundary.
func TestOutageValidation(t *testing.T) {
	e, c, sys := deploy(t, "local", 1)
	w := chainWorkflow(t, 1, 1)
	if _, err := Run(e, Options{Cluster: c, Storage: sys, OutageRate: -1}, w); err == nil {
		t.Error("negative outage rate accepted")
	}
	e2, c2, sys2 := deploy(t, "local", 1)
	if _, err := Run(e2, Options{Cluster: c2, Storage: sys2, CheckpointInterval: -5}, w); err == nil {
		t.Error("negative checkpoint interval accepted")
	}
}
