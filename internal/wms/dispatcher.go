package wms

import (
	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/workflow"
)

// dispatcher matches submitted jobs to requesting slots.
type dispatcher interface {
	// submit enqueues a job for execution.
	submit(j *job)
	// request blocks until a job is available for a slot on node, or
	// returns nil once the dispatcher is closed and drained.
	request(p *sim.Proc, node *cluster.Node) *job
	// close drains and releases all blocked slots.
	close()
}

// fifoDispatcher is the paper's Condor configuration: first come, first
// served, blind to where a job's data lives.
type fifoDispatcher struct {
	queue *sim.Mailbox[*job]
}

func newFIFODispatcher(e *sim.Engine) *fifoDispatcher {
	return &fifoDispatcher{queue: sim.NewMailbox[*job](e)}
}

func (d *fifoDispatcher) submit(j *job) { d.queue.Put(j) }

func (d *fifoDispatcher) request(p *sim.Proc, node *cluster.Node) *job {
	j, ok := d.queue.Get(p)
	if !ok {
		return nil
	}
	return j
}

func (d *fifoDispatcher) close() { d.queue.Close() }

// Locator is implemented by storage systems that can report where a file
// physically lives (GlusterFS) so the data-aware scheduler can score
// placements.
type Locator interface {
	Owner(f *workflow.File) *cluster.Node
}

// NodeCacher is implemented by systems with per-node client caches (S3)
// so the data-aware scheduler can score cache affinity.
type NodeCacher interface {
	CachedOn(node *cluster.Node, f *workflow.File) bool
}

// dataAwareDispatcher implements the paper's suggested improvement: "a
// more data-aware scheduler could potentially improve workflow
// performance by increasing cache hits and further reducing transfers."
// An idle slot prefers the ready job with the most input bytes already
// resident on its node.
type dataAwareDispatcher struct {
	e       *sim.Engine
	sys     storage.System
	ready   []*job
	waiters []*slotWaiter
	closed  bool
}

type slotWaiter struct {
	p    *sim.Proc
	node *cluster.Node
	got  *job
	done bool
}

func newDataAwareDispatcher(e *sim.Engine, sys storage.System) *dataAwareDispatcher {
	return &dataAwareDispatcher{e: e, sys: sys}
}

// localBytes scores how many input bytes of j are already on node.
func (d *dataAwareDispatcher) localBytes(node *cluster.Node, j *job) float64 {
	loc, hasLoc := d.sys.(Locator)
	nc, hasNC := d.sys.(NodeCacher)
	if !hasLoc && !hasNC {
		return 0
	}
	total := 0.0
	for _, f := range j.task.Inputs {
		if hasLoc && loc.Owner(f) == node {
			total += f.Size
		} else if hasNC && nc.CachedOn(node, f) {
			total += f.Size
		}
	}
	return total
}

func (d *dataAwareDispatcher) submit(j *job) {
	if len(d.waiters) > 0 {
		// Give the job to the waiting slot that values it most.
		best, bestScore := 0, -1.0
		for i, w := range d.waiters {
			if s := d.localBytes(w.node, j); s > bestScore {
				best, bestScore = i, s
			}
		}
		w := d.waiters[best]
		d.waiters = append(d.waiters[:best], d.waiters[best+1:]...)
		w.got, w.done = j, true
		w.p.Resume()
		return
	}
	d.ready = append(d.ready, j)
}

func (d *dataAwareDispatcher) request(p *sim.Proc, node *cluster.Node) *job {
	for {
		if len(d.ready) > 0 {
			best, bestScore := 0, -1.0
			for i, j := range d.ready {
				if s := d.localBytes(node, j); s > bestScore {
					best, bestScore = i, s
				}
			}
			j := d.ready[best]
			d.ready = append(d.ready[:best], d.ready[best+1:]...)
			return j
		}
		if d.closed {
			return nil
		}
		w := &slotWaiter{p: p, node: node}
		d.waiters = append(d.waiters, w)
		p.Suspend()
		if w.done {
			return w.got
		}
		// Woken by close: loop to drain any stragglers.
	}
}

func (d *dataAwareDispatcher) close() {
	d.closed = true
	for _, w := range d.waiters {
		w.p.Resume()
	}
	d.waiters = nil
}
