package wms

import (
	"testing"

	"ec2wfsim/internal/units"
)

func TestFailureInjectionRetriesAndCompletes(t *testing.T) {
	e, c, sys := deploy(t, "local", 1)
	w := fanWorkflow(t, 64, 5, 100*units.MB)
	res, err := Run(e, Options{
		Cluster:     c,
		Storage:     sys,
		FailureRate: 0.2,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Completed(); got != 64 {
		t.Errorf("completed %d of 64 tasks despite retries", got)
	}
	if res.Failures == 0 {
		t.Error("20% failure rate over 64 tasks injected nothing")
	}
	if res.Retries != res.Failures {
		t.Errorf("retries %d != failures %d (transient failures always retry)", res.Retries, res.Failures)
	}
	// Failed attempts are visible in the trace, flagged, and well-formed.
	failed := int64(0)
	for _, s := range res.Spans {
		if !s.Failed {
			continue
		}
		failed++
		if !(s.Start <= s.Exec && s.Exec <= s.WriteEnd) {
			t.Errorf("failed span of %s is not ordered: %+v", s.Task.ID, s)
		}
	}
	if failed != res.Failures {
		t.Errorf("trace records %d failed spans, result counts %d failures", failed, res.Failures)
	}
	// BusySeconds must equal the sum over every recorded attempt,
	// successful or aborted — slots were occupied either way.
	total := 0.0
	for _, s := range res.Spans {
		total += s.WriteEnd - s.Start
	}
	if diff := total - res.BusySeconds; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("BusySeconds %.6f != span-sum %.6f", res.BusySeconds, total)
	}
}

func TestFailuresLengthenMakespan(t *testing.T) {
	run := func(rate float64) float64 {
		e, c, sys := deploy(t, "local", 1)
		w := fanWorkflow(t, 64, 5, 100*units.MB)
		res, err := Run(e, Options{Cluster: c, Storage: sys, FailureRate: rate}, w)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	clean, flaky := run(0), run(0.3)
	if flaky <= clean {
		t.Errorf("failures did not lengthen makespan (%.1f vs %.1f)", flaky, clean)
	}
}

func TestFailureInjectionDeterministic(t *testing.T) {
	run := func() (float64, int64) {
		e, c, sys := deploy(t, "local", 1)
		w := fanWorkflow(t, 32, 5, 100*units.MB)
		res, err := Run(e, Options{Cluster: c, Storage: sys, FailureRate: 0.25, FailureSeed: 99}, w)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan, res.Failures
	}
	m1, f1 := run()
	m2, f2 := run()
	if m1 != m2 || f1 != f2 {
		t.Errorf("failure injection not deterministic: (%g,%d) vs (%g,%d)", m1, f1, m2, f2)
	}
}

func TestMaxRetriesBoundsAttempts(t *testing.T) {
	// Even at a brutal failure rate, each task fails at most MaxRetries
	// times and the workflow completes.
	e, c, sys := deploy(t, "local", 1)
	w := fanWorkflow(t, 16, 2, 100*units.MB)
	res, err := Run(e, Options{
		Cluster:     c,
		Storage:     sys,
		FailureRate: 0.95,
		MaxRetries:  2,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures > 16*2 {
		t.Errorf("failures = %d exceed tasks x MaxRetries = 32", res.Failures)
	}
	if got := res.Completed(); got != 16 {
		t.Errorf("completed %d of 16 tasks", got)
	}
	if want := 16 + int(res.Failures); len(res.Spans) != want {
		t.Errorf("spans = %d, want %d (16 completions + %d aborted attempts)",
			len(res.Spans), want, res.Failures)
	}
}

func TestCertainFailureRejected(t *testing.T) {
	e, c, sys := deploy(t, "local", 1)
	w := fanWorkflow(t, 1, 1, 0)
	if _, err := Run(e, Options{Cluster: c, Storage: sys, FailureRate: 1.0}, w); err == nil {
		t.Error("FailureRate = 1.0 should be rejected")
	}
}

func TestFailureReleasesMemory(t *testing.T) {
	// Memory-heavy tasks with failures must not leak the memory
	// semaphore: the run completing at all proves release; also check the
	// semaphore drained.
	e, c, sys := deploy(t, "local", 1)
	w := fanWorkflow(t, 12, 3, 4*units.GiB)
	res, err := Run(e, Options{Cluster: c, Storage: sys, FailureRate: 0.4}, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Completed(); got != 12 {
		t.Fatalf("completed %d of 12", got)
	}
	n := c.Workers[0]
	if n.Memory.InUse() != 0 {
		t.Errorf("memory leaked: %d MB still held", n.Memory.InUse())
	}
}
