package wms

import (
	"fmt"
	"testing"
	"testing/quick"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// spanByTask indexes a result's successful spans (failed attempts are
// also recorded, but precedence is defined by completions).
func spanByTask(res *Result) map[*workflow.Task]Span {
	m := make(map[*workflow.Task]Span, len(res.Spans))
	for _, s := range res.Spans {
		if !s.Failed {
			m[s.Task] = s
		}
	}
	return m
}

// checkPrecedence verifies the fundamental scheduling invariant: no task
// starts before every parent has published its outputs.
func checkPrecedence(t *testing.T, w *workflow.Workflow, res *Result) {
	t.Helper()
	spans := spanByTask(res)
	violations := 0
	for _, task := range w.Tasks {
		child, ok := spans[task]
		if !ok {
			t.Fatalf("task %s never ran", task.ID)
		}
		for _, parent := range task.Parents() {
			p, ok := spans[parent]
			if !ok {
				t.Fatalf("parent %s of %s never ran", parent.ID, task.ID)
			}
			if child.Start < p.WriteEnd-1e-9 {
				violations++
				if violations <= 3 {
					t.Errorf("precedence violated: %s started at %.3f before parent %s finished at %.3f",
						task.ID, child.Start, parent.ID, p.WriteEnd)
				}
			}
		}
	}
	if violations > 3 {
		t.Errorf("... and %d more precedence violations", violations-3)
	}
}

// checkMakespanBounds verifies makespan >= critical path (compute only)
// and >= total-work / total-cores, and that every span fits inside the
// makespan.
func checkMakespanBounds(t *testing.T, w *workflow.Workflow, res *Result, cores int) {
	t.Helper()
	if cp := w.CriticalPathTime(); res.Makespan < cp-1e-6 {
		t.Errorf("makespan %.1f below compute critical path %.1f", res.Makespan, cp)
	}
	total := 0.0
	for _, task := range w.Tasks {
		total += task.Runtime
	}
	if lb := total / float64(cores); res.Makespan < lb-1e-6 {
		t.Errorf("makespan %.1f below work bound %.1f", res.Makespan, lb)
	}
	for _, s := range res.Spans {
		if s.WriteEnd > res.Makespan+1e-9 {
			t.Errorf("span of %s ends at %.3f after makespan %.3f", s.Task.ID, s.WriteEnd, res.Makespan)
		}
		if !(s.Start <= s.Exec && s.Exec <= s.WriteEnd) {
			t.Errorf("span of %s is not ordered: %v", s.Task.ID, s)
		}
	}
}

// Every storage system must preserve precedence and makespan bounds on a
// mid-size Montage instance.
func TestInvariantsAcrossStorageSystems(t *testing.T) {
	for _, sysName := range []string{"local", "nfs", "gluster-nufa", "gluster-dist", "pvfs", "s3", "xtreemfs"} {
		sysName := sysName
		t.Run(sysName, func(t *testing.T) {
			workers := 2
			if sysName == "local" {
				workers = 1
			}
			e, c, sys := deploy(t, sysName, workers)
			w, err := apps.Montage(apps.MontageConfig{Images: 60})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(e, Options{Cluster: c, Storage: sys}, w)
			if err != nil {
				t.Fatal(err)
			}
			checkPrecedence(t, w, res)
			checkMakespanBounds(t, w, res, c.TotalCores())
		})
	}
}

// Invariants must also hold with failure injection and the data-aware
// scheduler — the code paths that reorder execution most aggressively.
func TestInvariantsUnderFailuresAndLocality(t *testing.T) {
	e, c, sys := deploy(t, "gluster-nufa", 4)
	w, err := apps.Broadband(apps.BroadbandConfig{Sources: 2, Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, Options{
		Cluster:     c,
		Storage:     sys,
		DataAware:   true,
		FailureRate: 0.15,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	checkPrecedence(t, w, res)
	checkMakespanBounds(t, w, res, c.TotalCores())
}

// Property: random DAGs of compute-only tasks always satisfy precedence
// and bounds on a 2-node gluster deployment.
func TestPropertyRandomDAGInvariants(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		nTasks := int(n%40) + 2
		w := randomWorkflow(seed, nTasks)
		e, c, sys := deployRaw(seed, "gluster-nufa", 2)
		res, err := Run(e, Options{Cluster: c, Storage: sys}, w)
		if err != nil {
			return false
		}
		spans := spanByTask(res)
		for _, task := range w.Tasks {
			child := spans[task]
			for _, parent := range task.Parents() {
				if child.Start < spans[parent].WriteEnd-1e-9 {
					return false
				}
			}
		}
		return res.Makespan >= w.CriticalPathTime()-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// randomWorkflow builds a random layered DAG with small files and short
// runtimes (test helper for the property checks).
func randomWorkflow(seed uint64, nTasks int) *workflow.Workflow {
	r := rng.New(seed)
	w := workflow.New("random")
	var produced []*workflow.File
	for i := 0; i < nTasks; i++ {
		task := &workflow.Task{
			ID:             fmt.Sprintf("t%d", i),
			Transformation: "t",
			Runtime:        float64(r.Intn(20) + 1),
			PeakMemory:     float64(r.Intn(512)+64) * units.MB,
		}
		for k := 0; k < 2 && len(produced) > 0; k++ {
			task.Inputs = append(task.Inputs, produced[r.Intn(len(produced))])
		}
		out := w.File(fmt.Sprintf("f%d", i), float64(r.Intn(20)+1)*units.MB)
		task.Outputs = []*workflow.File{out}
		produced = append(produced, out)
		w.AddTask(task)
	}
	if err := w.Finalize(); err != nil {
		panic(err)
	}
	return w
}

// deployRaw is deploy without a testing.T, for quick.Check properties.
func deployRaw(seed uint64, sysName string, workers int) (*sim.Engine, *cluster.Cluster, storage.System) {
	sys, err := storage.ByName(sysName)
	if err != nil {
		panic(err)
	}
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := cluster.New(e, net, rng.New(seed+1), cluster.Config{
		Workers:    workers,
		WorkerType: cluster.C1XLarge(),
		Extra:      sys.ExtraNodeTypes(),
	})
	if err != nil {
		panic(err)
	}
	env := &storage.Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(seed + 2)}
	if err := sys.Init(env); err != nil {
		panic(err)
	}
	return e, c, sys
}

// checkNetQuiescent pins the flow-graph invariant the incremental solver
// relies on between workflows: once a run completes, the transfer graph
// is drained — no active transfers, and every cluster resource reports
// zero committed load. A stale load or a leaked membership would poison
// the dirty-set solve of whatever runs on the network next.
func checkNetQuiescent(t *testing.T, net *flow.Net, c *cluster.Cluster) {
	t.Helper()
	if n := net.Active(); n != 0 {
		t.Errorf("net still has %d active transfers after the run", n)
	}
	nodes := append(append([]*cluster.Node{}, c.Workers...), c.Extra...)
	for _, node := range nodes {
		for _, r := range []*flow.Resource{
			node.NICIn, node.NICOut,
			node.Disk.ReadResource(), node.Disk.WriteResource(),
		} {
			if r.Load() != 0 {
				t.Errorf("%s: residual load %g after the run, want 0", r.Name(), r.Load())
			}
		}
	}
}

// TestNetworkQuiescentAfterRun runs a workflow on every storage system
// (their transfer registration paths differ: plain transfers, capped
// connections, batched PVFS fan-outs) under both flow-solver versions
// and asserts the flow graph drains. For v2 this is the end-to-end
// check that deferred coalesced flushes leave nothing behind: a stale
// load from a skipped flush or a leaked ETA entry would surface here as
// residual load or a live transfer.
func TestNetworkQuiescentAfterRun(t *testing.T) {
	for _, version := range []int{1, 2} {
		for _, sysName := range []string{"local", "nfs", "gluster-nufa", "gluster-dist", "pvfs", "s3", "xtreemfs"} {
			version, sysName := version, sysName
			t.Run(fmt.Sprintf("flow-v%d/%s", version, sysName), func(t *testing.T) {
				t.Parallel()
				sys, err := storage.ByName(sysName)
				if err != nil {
					t.Fatal(err)
				}
				workers := 2
				if sysName == "local" {
					workers = 1
				}
				e := sim.NewEngine()
				net := flow.NewNetVersion(e, version)
				c, err := cluster.New(e, net, rng.New(7), cluster.Config{
					Workers:    workers,
					WorkerType: cluster.C1XLarge(),
					Extra:      sys.ExtraNodeTypes(),
				})
				if err != nil {
					t.Fatal(err)
				}
				env := &storage.Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(8)}
				if err := sys.Init(env); err != nil {
					t.Fatal(err)
				}
				w, err := apps.Montage(apps.MontageConfig{Images: 30})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := Run(e, Options{Cluster: c, Storage: sys}, w); err != nil {
					t.Fatal(err)
				}
				checkNetQuiescent(t, net, c)
				if net.TotalTransfers == 0 {
					t.Error("workflow moved no data through the flow network")
				}
			})
		}
	}
}
