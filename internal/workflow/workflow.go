// Package workflow models scientific workflows as DAGs of tasks that
// communicate through files, mirroring the abstract-workflow (DAX) model
// used by Pegasus: each task names a transformation, consumes input files
// and produces output files, and data dependencies are implied by
// producer/consumer relationships (with optional explicit control edges).
package workflow

import (
	"fmt"
	"sort"
)

// File is a logical workflow file. Files are write-once: exactly one task
// (or the pre-staged input set) produces each file, which is the property
// the paper's S3 client cache relies on.
type File struct {
	Name string
	Size float64 // bytes
	// Keep marks a produced file as a deliverable even when downstream
	// tasks also consume it (e.g. Montage's background-corrected images,
	// which feed mAdd but are part of the "7.9 GB of output data").
	// Terminal files (produced, never consumed) are deliverables
	// regardless of Keep.
	Keep bool
}

// Task is one executable step of a workflow.
type Task struct {
	ID             string
	Transformation string  // executable name, e.g. "mProject"
	Runtime        float64 // pure-computation seconds on a c1.xlarge core
	PeakMemory     float64 // bytes of resident memory while running
	Inputs         []*File
	Outputs        []*File

	// parents/children are derived by Finalize from file relationships
	// plus explicit control edges.
	parents  []*Task
	children []*Task
}

// Parents returns the tasks this task depends on.
func (t *Task) Parents() []*Task { return t.parents }

// Children returns the tasks that depend on this task.
func (t *Task) Children() []*Task { return t.children }

// TotalInputBytes sums the task's input file sizes.
func (t *Task) TotalInputBytes() float64 {
	s := 0.0
	for _, f := range t.Inputs {
		s += f.Size
	}
	return s
}

// TotalOutputBytes sums the task's output file sizes.
func (t *Task) TotalOutputBytes() float64 {
	s := 0.0
	for _, f := range t.Outputs {
		s += f.Size
	}
	return s
}

// Workflow is a finalized DAG.
type Workflow struct {
	Name  string
	Tasks []*Task

	files     map[string]*File
	producers map[*File]*Task
	consumers map[*File][]*Task
	inputs    []*File // files consumed but never produced (pre-staged)
	outputs   []*File // files produced but never consumed (final results)
	extraDeps map[*Task][]*Task
	finalized bool
}

// New returns an empty workflow under construction.
func New(name string) *Workflow {
	return &Workflow{
		Name:      name,
		files:     make(map[string]*File),
		producers: make(map[*File]*Task),
		consumers: make(map[*File][]*Task),
		extraDeps: make(map[*Task][]*Task),
	}
}

// File interns a file by name, creating it with the given size on first
// use. Re-declaring an existing file with a different size is an error
// caught at Finalize; before that the first size wins.
func (w *Workflow) File(name string, size float64) *File {
	if f, ok := w.files[name]; ok {
		return f
	}
	f := &File{Name: name, Size: size}
	w.files[name] = f
	return f
}

// AddTask appends a task to the workflow.
func (w *Workflow) AddTask(t *Task) *Task {
	if w.finalized {
		panic("workflow: AddTask after Finalize")
	}
	w.Tasks = append(w.Tasks, t)
	return t
}

// AddDependency records an explicit control edge from parent to child,
// used when ordering matters without a data file (e.g. directory-creation
// jobs).
func (w *Workflow) AddDependency(parent, child *Task) {
	if w.finalized {
		panic("workflow: AddDependency after Finalize")
	}
	w.extraDeps[child] = append(w.extraDeps[child], parent)
}

// Finalize derives the dependency graph and validates the workflow:
// unique task IDs, single producer per file, acyclicity. It must be called
// exactly once, after all tasks are added.
func (w *Workflow) Finalize() error {
	if w.finalized {
		return fmt.Errorf("workflow %s: already finalized", w.Name)
	}
	ids := make(map[string]bool, len(w.Tasks))
	for _, t := range w.Tasks {
		if t.ID == "" {
			return fmt.Errorf("workflow %s: task with empty ID", w.Name)
		}
		if ids[t.ID] {
			return fmt.Errorf("workflow %s: duplicate task ID %q", w.Name, t.ID)
		}
		ids[t.ID] = true
		if t.Runtime < 0 {
			return fmt.Errorf("workflow %s: task %s has negative runtime", w.Name, t.ID)
		}
	}
	// Producer/consumer maps.
	for _, t := range w.Tasks {
		for _, f := range t.Outputs {
			if prev, ok := w.producers[f]; ok {
				return fmt.Errorf("workflow %s: file %q produced by both %s and %s (write-once violated)",
					w.Name, f.Name, prev.ID, t.ID)
			}
			w.producers[f] = t
		}
	}
	for _, t := range w.Tasks {
		for _, f := range t.Inputs {
			w.consumers[f] = append(w.consumers[f], t)
		}
	}
	// Derive edges.
	for _, t := range w.Tasks {
		seen := make(map[*Task]bool)
		addParent := func(p *Task) {
			if p != nil && p != t && !seen[p] {
				seen[p] = true
				t.parents = append(t.parents, p)
				p.children = append(p.children, t)
			}
		}
		for _, f := range t.Inputs {
			addParent(w.producers[f])
		}
		for _, p := range w.extraDeps[t] {
			addParent(p)
		}
	}
	// Classify workflow-level inputs and outputs.
	names := make([]string, 0, len(w.files))
	for name := range w.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := w.files[name]
		if w.producers[f] == nil && len(w.consumers[f]) > 0 {
			w.inputs = append(w.inputs, f)
		}
		if w.producers[f] != nil && (len(w.consumers[f]) == 0 || f.Keep) {
			w.outputs = append(w.outputs, f)
		}
	}
	if err := w.checkAcyclic(); err != nil {
		return err
	}
	w.finalized = true
	return nil
}

// checkAcyclic verifies the DAG via Kahn's algorithm.
func (w *Workflow) checkAcyclic() error {
	indeg := make(map[*Task]int, len(w.Tasks))
	for _, t := range w.Tasks {
		indeg[t] = len(t.parents)
	}
	var queue []*Task
	for _, t := range w.Tasks {
		if indeg[t] == 0 {
			queue = append(queue, t)
		}
	}
	visited := 0
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		visited++
		for _, c := range t.children {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if visited != len(w.Tasks) {
		return fmt.Errorf("workflow %s: dependency cycle detected (%d of %d tasks reachable)",
			w.Name, visited, len(w.Tasks))
	}
	return nil
}

// Finalized reports whether Finalize has completed successfully.
func (w *Workflow) Finalized() bool { return w.finalized }

// Producer returns the task producing f, or nil for pre-staged inputs.
func (w *Workflow) Producer(f *File) *Task { return w.producers[f] }

// Consumers returns the tasks reading f.
func (w *Workflow) Consumers(f *File) []*Task { return w.consumers[f] }

// Inputs returns the pre-staged input files in name order.
func (w *Workflow) Inputs() []*File { return w.inputs }

// Outputs returns the deliverable files in name order: terminal outputs
// plus produced files explicitly marked Keep.
func (w *Workflow) Outputs() []*File { return w.outputs }

// Files returns all files in name order.
func (w *Workflow) Files() []*File {
	names := make([]string, 0, len(w.files))
	for name := range w.files {
		names = append(names, name)
	}
	sort.Strings(names)
	fs := make([]*File, len(names))
	for i, name := range names {
		fs[i] = w.files[name]
	}
	return fs
}

// Roots returns tasks with no parents.
func (w *Workflow) Roots() []*Task {
	var rs []*Task
	for _, t := range w.Tasks {
		if len(t.parents) == 0 {
			rs = append(rs, t)
		}
	}
	return rs
}

// TopoOrder returns the tasks in a deterministic topological order
// (Kahn's algorithm with FIFO tie-breaking by insertion order).
func (w *Workflow) TopoOrder() []*Task {
	indeg := make(map[*Task]int, len(w.Tasks))
	for _, t := range w.Tasks {
		indeg[t] = len(t.parents)
	}
	var queue, order []*Task
	for _, t := range w.Tasks {
		if indeg[t] == 0 {
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, c := range t.children {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	return order
}

// CriticalPathTime returns the longest chain of task runtimes (computation
// only; storage time depends on the deployment), a lower bound on any
// makespan.
func (w *Workflow) CriticalPathTime() float64 {
	finish := make(map[*Task]float64, len(w.Tasks))
	longest := 0.0
	for _, t := range w.TopoOrder() {
		start := 0.0
		for _, p := range t.parents {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[t] = start + t.Runtime
		if finish[t] > longest {
			longest = finish[t]
		}
	}
	return longest
}
