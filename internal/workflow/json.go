package workflow

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonWorkflow is the on-disk representation, a JSON analogue of Pegasus's
// DAX format: files and tasks by name, with data dependencies implied and
// control edges explicit.
type jsonWorkflow struct {
	Name  string     `json:"name"`
	Files []jsonFile `json:"files"`
	Tasks []jsonTask `json:"tasks"`
	Deps  []jsonDep  `json:"controlDeps,omitempty"`
}

type jsonFile struct {
	Name string  `json:"name"`
	Size float64 `json:"size"`
	Keep bool    `json:"keep,omitempty"`
}

type jsonTask struct {
	ID             string   `json:"id"`
	Transformation string   `json:"transformation"`
	Runtime        float64  `json:"runtime"`
	PeakMemory     float64  `json:"peakMemory,omitempty"`
	Inputs         []string `json:"inputs,omitempty"`
	Outputs        []string `json:"outputs,omitempty"`
}

type jsonDep struct {
	Parent string `json:"parent"`
	Child  string `json:"child"`
}

// WriteJSON serializes the workflow (finalized or not).
func (w *Workflow) WriteJSON(out io.Writer) error {
	jw := jsonWorkflow{Name: w.Name}
	for _, f := range w.Files() {
		jw.Files = append(jw.Files, jsonFile{Name: f.Name, Size: f.Size, Keep: f.Keep})
	}
	byTask := make(map[*Task]string, len(w.Tasks))
	for _, t := range w.Tasks {
		jt := jsonTask{
			ID:             t.ID,
			Transformation: t.Transformation,
			Runtime:        t.Runtime,
			PeakMemory:     t.PeakMemory,
		}
		for _, f := range t.Inputs {
			jt.Inputs = append(jt.Inputs, f.Name)
		}
		for _, f := range t.Outputs {
			jt.Outputs = append(jt.Outputs, f.Name)
		}
		jw.Tasks = append(jw.Tasks, jt)
		byTask[t] = t.ID
	}
	// Emit extra dependencies in task declaration order, not map
	// iteration order: the serialized form must be byte-identical
	// across runs (wfvet:maporder), and this matches how Finalize
	// consumes extraDeps.
	for _, child := range w.Tasks {
		for _, p := range w.extraDeps[child] {
			jw.Deps = append(jw.Deps, jsonDep{Parent: byTask[p], Child: byTask[child]})
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(jw)
}

// ReadJSON parses a workflow and finalizes it.
func ReadJSON(in io.Reader) (*Workflow, error) {
	var jw jsonWorkflow
	if err := json.NewDecoder(in).Decode(&jw); err != nil {
		return nil, fmt.Errorf("workflow: decoding JSON: %w", err)
	}
	w := New(jw.Name)
	for _, jf := range jw.Files {
		f := w.File(jf.Name, jf.Size)
		f.Keep = jf.Keep
	}
	byID := make(map[string]*Task, len(jw.Tasks))
	for _, jt := range jw.Tasks {
		t := &Task{
			ID:             jt.ID,
			Transformation: jt.Transformation,
			Runtime:        jt.Runtime,
			PeakMemory:     jt.PeakMemory,
		}
		for _, name := range jt.Inputs {
			f, ok := w.files[name]
			if !ok {
				return nil, fmt.Errorf("workflow: task %s reads undeclared file %q", jt.ID, name)
			}
			t.Inputs = append(t.Inputs, f)
		}
		for _, name := range jt.Outputs {
			f, ok := w.files[name]
			if !ok {
				return nil, fmt.Errorf("workflow: task %s writes undeclared file %q", jt.ID, name)
			}
			t.Outputs = append(t.Outputs, f)
		}
		w.AddTask(t)
		byID[jt.ID] = t
	}
	for _, d := range jw.Deps {
		p, ok := byID[d.Parent]
		if !ok {
			return nil, fmt.Errorf("workflow: control dep references unknown parent %q", d.Parent)
		}
		c, ok := byID[d.Child]
		if !ok {
			return nil, fmt.Errorf("workflow: control dep references unknown child %q", d.Child)
		}
		w.AddDependency(p, c)
	}
	if err := w.Finalize(); err != nil {
		return nil, err
	}
	return w, nil
}
