package workflow

import "sort"

// Stats summarizes a workflow the way the paper's Section II does: task
// counts, data volumes, file-size regime and per-transformation breakdown.
type Stats struct {
	Name              string
	TaskCount         int
	InputBytes        float64 // pre-staged input data ("reads 4.2 GB of input data")
	OutputBytes       float64 // terminal outputs ("produces 7.9 GB of output data")
	IntermediateBytes float64
	FileCount         int
	FileAccesses      int // task-file incidences (the paper's "~29,000 files" for Montage)
	TotalReadBytes    float64
	TotalWriteBytes   float64
	TotalRuntime      float64 // sequential computation seconds
	MeanFileSize      float64
	MaxPeakMemory     float64
	ByTransformation  []TransformationStats
}

// TransformationStats aggregates per-executable figures.
type TransformationStats struct {
	Name       string
	Count      int
	Runtime    float64 // total computation seconds
	ReadBytes  float64
	WriteBytes float64
	PeakMemory float64 // max across tasks
}

// ComputeStats derives summary statistics from a finalized workflow.
func (w *Workflow) ComputeStats() Stats {
	s := Stats{Name: w.Name, TaskCount: len(w.Tasks)}
	for _, f := range w.Inputs() {
		s.InputBytes += f.Size
	}
	for _, f := range w.Outputs() {
		s.OutputBytes += f.Size
	}
	total := 0.0
	for _, f := range w.Files() {
		total += f.Size
		s.FileCount++
	}
	s.IntermediateBytes = total - s.InputBytes - s.OutputBytes

	byT := make(map[string]*TransformationStats)
	for _, t := range w.Tasks {
		ts := byT[t.Transformation]
		if ts == nil {
			ts = &TransformationStats{Name: t.Transformation}
			byT[t.Transformation] = ts
		}
		ts.Count++
		ts.Runtime += t.Runtime
		s.TotalRuntime += t.Runtime
		if t.PeakMemory > ts.PeakMemory {
			ts.PeakMemory = t.PeakMemory
		}
		if t.PeakMemory > s.MaxPeakMemory {
			s.MaxPeakMemory = t.PeakMemory
		}
		for _, f := range t.Inputs {
			ts.ReadBytes += f.Size
			s.TotalReadBytes += f.Size
			s.FileAccesses++
		}
		for _, f := range t.Outputs {
			ts.WriteBytes += f.Size
			s.TotalWriteBytes += f.Size
			s.FileAccesses++
		}
	}
	if s.FileCount > 0 {
		s.MeanFileSize = total / float64(s.FileCount)
	}
	names := make([]string, 0, len(byT))
	for n := range byT {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.ByTransformation = append(s.ByTransformation, *byT[n])
	}
	return s
}
