package workflow

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"ec2wfsim/internal/rng"
)

// diamond builds the classic 4-task diamond:
//
//	a -> b, a -> c, b -> d, c -> d
//
// linked purely through files.
func diamond(t *testing.T) *Workflow {
	t.Helper()
	w := New("diamond")
	in := w.File("in.dat", 100)
	fb := w.File("b.dat", 10)
	fc := w.File("c.dat", 20)
	out := w.File("out.dat", 5)
	w.AddTask(&Task{ID: "a", Transformation: "split", Runtime: 1, Inputs: []*File{in}, Outputs: []*File{fb, fc}})
	w.AddTask(&Task{ID: "b", Transformation: "work", Runtime: 2, Inputs: []*File{fb}, Outputs: []*File{w.File("b2.dat", 7)}})
	w.AddTask(&Task{ID: "c", Transformation: "work", Runtime: 3, Inputs: []*File{fc}, Outputs: []*File{w.File("c2.dat", 8)}})
	w.AddTask(&Task{ID: "d", Transformation: "merge", Runtime: 4,
		Inputs:  []*File{w.File("b2.dat", 7), w.File("c2.dat", 8)},
		Outputs: []*File{out}})
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDiamondDependencies(t *testing.T) {
	w := diamond(t)
	byID := map[string]*Task{}
	for _, task := range w.Tasks {
		byID[task.ID] = task
	}
	if len(byID["a"].Parents()) != 0 {
		t.Error("a should have no parents")
	}
	if len(byID["a"].Children()) != 2 {
		t.Errorf("a children = %d, want 2", len(byID["a"].Children()))
	}
	if len(byID["d"].Parents()) != 2 {
		t.Errorf("d parents = %d, want 2", len(byID["d"].Parents()))
	}
	if got := len(w.Roots()); got != 1 {
		t.Errorf("roots = %d, want 1", got)
	}
}

func TestInputsOutputsClassification(t *testing.T) {
	w := diamond(t)
	ins := w.Inputs()
	if len(ins) != 1 || ins[0].Name != "in.dat" {
		t.Errorf("Inputs = %v, want [in.dat]", ins)
	}
	outs := w.Outputs()
	if len(outs) != 1 || outs[0].Name != "out.dat" {
		t.Errorf("Outputs = %v, want [out.dat]", outs)
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	w := diamond(t)
	order := w.TopoOrder()
	if len(order) != 4 {
		t.Fatalf("topo order has %d tasks, want 4", len(order))
	}
	pos := map[string]int{}
	for i, task := range order {
		pos[task.ID] = i
	}
	if pos["a"] > pos["b"] || pos["a"] > pos["c"] || pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Errorf("topo order violates dependencies: %v", pos)
	}
}

func TestCriticalPath(t *testing.T) {
	w := diamond(t)
	// a(1) -> c(3) -> d(4) = 8.
	if got := w.CriticalPathTime(); got != 8 {
		t.Errorf("CriticalPathTime = %g, want 8", got)
	}
}

func TestCycleDetection(t *testing.T) {
	w := New("cyclic")
	f1 := w.File("f1", 1)
	f2 := w.File("f2", 1)
	w.AddTask(&Task{ID: "x", Inputs: []*File{f1}, Outputs: []*File{f2}})
	w.AddTask(&Task{ID: "y", Inputs: []*File{f2}, Outputs: []*File{f1}})
	if err := w.Finalize(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("Finalize = %v, want cycle error", err)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	w := New("dup")
	w.AddTask(&Task{ID: "x"})
	w.AddTask(&Task{ID: "x"})
	if err := w.Finalize(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("Finalize = %v, want duplicate-ID error", err)
	}
}

func TestWriteOnceViolationRejected(t *testing.T) {
	w := New("ww")
	f := w.File("f", 1)
	w.AddTask(&Task{ID: "x", Outputs: []*File{f}})
	w.AddTask(&Task{ID: "y", Outputs: []*File{f}})
	if err := w.Finalize(); err == nil || !strings.Contains(err.Error(), "write-once") {
		t.Errorf("Finalize = %v, want write-once error", err)
	}
}

func TestExplicitControlDependency(t *testing.T) {
	w := New("ctl")
	a := w.AddTask(&Task{ID: "mkdir", Runtime: 1})
	b := w.AddTask(&Task{ID: "job", Runtime: 1})
	w.AddDependency(a, b)
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	if len(b.Parents()) != 1 || b.Parents()[0] != a {
		t.Error("control dependency not derived")
	}
}

func TestFileInterning(t *testing.T) {
	w := New("intern")
	f1 := w.File("same", 10)
	f2 := w.File("same", 999) // second size ignored
	if f1 != f2 {
		t.Error("File did not intern by name")
	}
	if f1.Size != 10 {
		t.Errorf("size = %g, want first-wins 10", f1.Size)
	}
}

func TestStats(t *testing.T) {
	w := diamond(t)
	s := w.ComputeStats()
	if s.TaskCount != 4 {
		t.Errorf("TaskCount = %d, want 4", s.TaskCount)
	}
	if s.InputBytes != 100 {
		t.Errorf("InputBytes = %g, want 100", s.InputBytes)
	}
	if s.OutputBytes != 5 {
		t.Errorf("OutputBytes = %g, want 5", s.OutputBytes)
	}
	if s.TotalRuntime != 10 {
		t.Errorf("TotalRuntime = %g, want 10", s.TotalRuntime)
	}
	// accesses: a(1+2) + b(1+1) + c(1+1) + d(2+1) = 10
	if s.FileAccesses != 10 {
		t.Errorf("FileAccesses = %d, want 10", s.FileAccesses)
	}
	if len(s.ByTransformation) != 3 {
		t.Errorf("transformations = %d, want 3", len(s.ByTransformation))
	}
	// ByTransformation is sorted by name: merge, split, work.
	if s.ByTransformation[0].Name != "merge" || s.ByTransformation[2].Count != 2 {
		t.Errorf("ByTransformation wrong: %+v", s.ByTransformation)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := diamond(t)
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Tasks) != len(w.Tasks) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(w2.Tasks), len(w.Tasks))
	}
	s1, s2 := w.ComputeStats(), w2.ComputeStats()
	if s1.InputBytes != s2.InputBytes || s1.TotalRuntime != s2.TotalRuntime ||
		s1.FileAccesses != s2.FileAccesses {
		t.Errorf("stats differ after round trip: %+v vs %+v", s1, s2)
	}
	if w2.CriticalPathTime() != w.CriticalPathTime() {
		t.Error("critical path changed after round trip")
	}
}

func TestJSONRejectsUndeclaredFiles(t *testing.T) {
	bad := `{"name":"x","files":[],"tasks":[{"id":"t","transformation":"f","runtime":1,"inputs":["ghost"]}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("expected error for undeclared input file")
	}
}

// randomDAG builds a random layered DAG; used by the property tests.
func randomDAG(seed uint64, nTasks int) *Workflow {
	r := rng.New(seed)
	w := New("random")
	var prev []*File
	for i := 0; i < nTasks; i++ {
		t := &Task{ID: string(rune('A'+i%26)) + string(rune('0'+i/26)), Transformation: "t", Runtime: float64(r.Intn(10) + 1)}
		// Consume up to 2 files from earlier layers.
		for k := 0; k < 2 && len(prev) > 0; k++ {
			t.Inputs = append(t.Inputs, prev[r.Intn(len(prev))])
		}
		out := w.File(t.ID+".out", float64(r.Intn(100)+1))
		t.Outputs = []*File{out}
		w.AddTask(t)
		prev = append(prev, out)
	}
	if err := w.Finalize(); err != nil {
		panic(err)
	}
	return w
}

// Property: topological order always contains every task exactly once and
// never places a child before a parent.
func TestPropertyTopoOrderValid(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		nTasks := int(n%50) + 1
		w := randomDAG(seed, nTasks)
		order := w.TopoOrder()
		if len(order) != nTasks {
			return false
		}
		pos := make(map[*Task]int, len(order))
		for i, task := range order {
			pos[task] = i
		}
		for _, task := range order {
			for _, p := range task.Parents() {
				if pos[p] >= pos[task] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: critical path time is at most the serial runtime and at least
// the longest single task.
func TestPropertyCriticalPathBounds(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		w := randomDAG(seed, int(n%50)+1)
		cp := w.CriticalPathTime()
		serial, longest := 0.0, 0.0
		for _, task := range w.Tasks {
			serial += task.Runtime
			if task.Runtime > longest {
				longest = task.Runtime
			}
		}
		return cp >= longest && cp <= serial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip preserves the task count and edge count for
// arbitrary random DAGs.
func TestPropertyJSONRoundTripPreservesShape(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		w := randomDAG(seed, int(n%30)+1)
		var buf bytes.Buffer
		if err := w.WriteJSON(&buf); err != nil {
			return false
		}
		w2, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		edges := func(wf *Workflow) int {
			total := 0
			for _, task := range wf.Tasks {
				total += len(task.Parents())
			}
			return total
		}
		return len(w2.Tasks) == len(w.Tasks) && edges(w2) == edges(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestWriteJSONDepsDeterministic pins the serialization order of extra
// (control) dependencies. WriteJSON used to iterate the extraDeps map
// directly, so the "deps" array came out in random map order — two runs
// of the same program could serialize the same workflow to different
// bytes, breaking any golden or content-addressed artifact built on the
// JSON form. Deps must now appear in task declaration order regardless
// of AddDependency call order.
func TestWriteJSONDepsDeterministic(t *testing.T) {
	build := func(order []int) *Workflow {
		w := New("deps")
		tasks := make([]*Task, 8)
		for i := range tasks {
			tasks[i] = w.AddTask(&Task{ID: fmt.Sprintf("t%d", i), Runtime: 1})
		}
		// Register child deps in the caller's order; many distinct map
		// keys makes iteration-order leakage all but certain to show.
		for _, i := range order {
			if i > 0 {
				w.AddDependency(tasks[i-1], tasks[i])
			}
		}
		return w
	}
	forward := make([]int, 8)
	backward := make([]int, 8)
	for i := range forward {
		forward[i] = i
		backward[i] = len(backward) - 1 - i
	}
	var a, b bytes.Buffer
	if err := build(forward).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build(backward).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("WriteJSON depends on AddDependency order:\n%s\nvs\n%s", a.String(), b.String())
	}
	// And the order is the declared task order, not just *an* order.
	var jw struct {
		Deps []struct{ Parent, Child string } `json:"controlDeps"`
	}
	if err := json.Unmarshal(a.Bytes(), &jw); err != nil {
		t.Fatal(err)
	}
	if len(jw.Deps) != 7 {
		t.Fatalf("got %d deps, want 7", len(jw.Deps))
	}
	for i, d := range jw.Deps {
		if want := fmt.Sprintf("t%d", i+1); d.Child != want {
			t.Errorf("deps[%d].Child = %q, want %q (task declaration order)", i, d.Child, want)
		}
	}
}
