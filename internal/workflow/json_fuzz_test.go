package workflow

import (
	"bytes"
	"testing"
)

// FuzzReadJSON throws arbitrary bytes at the workflow parser. Invalid
// documents must be rejected with an error (never a panic), and any
// document that parses must round-trip: WriteJSON then ReadJSON yields a
// workflow with the same shape.
func FuzzReadJSON(f *testing.F) {
	// A valid diamond workflow, via our own serializer.
	diamond := New("diamond")
	in := diamond.File("in.dat", 100)
	mid1 := diamond.File("mid1.dat", 50)
	mid2 := diamond.File("mid2.dat", 60)
	out := diamond.File("out.dat", 10)
	a := diamond.AddTask(&Task{ID: "a", Transformation: "split", Runtime: 1,
		Inputs: []*File{in}, Outputs: []*File{mid1, mid2}})
	b := diamond.AddTask(&Task{ID: "b", Transformation: "work", Runtime: 2,
		Inputs: []*File{mid1}, Outputs: []*File{out}})
	diamond.AddDependency(a, b)
	var valid bytes.Buffer
	if err := diamond.WriteJSON(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())

	// Near-valid and broken documents steering the parser's error paths.
	for _, s := range []string{
		`{}`,
		`not json at all`,
		`{"name":"x","files":[{"name":"f","size":1}],"tasks":[]}`,
		`{"name":"x","tasks":[{"id":"t","inputs":["missing"]}]}`,
		`{"name":"x","tasks":[{"id":"t","outputs":["missing"]}]}`,
		`{"name":"x","files":[{"name":"f","size":-5}],"tasks":[{"id":"t","inputs":["f"]}]}`,
		`{"name":"x","files":[{"name":"f","size":1}],"tasks":[{"id":"t","outputs":["f"]},{"id":"u","inputs":["f"],"outputs":[]}],"controlDeps":[{"parent":"u","child":"t"}]}`,
		`{"name":"x","controlDeps":[{"parent":"p","child":"c"}]}`,
		`{"name":"dup","files":[{"name":"f","size":1},{"name":"f","size":2}],"tasks":[{"id":"t","outputs":["f"]}]}`,
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected without panic: fine
		}
		// Accepted documents must round-trip through our serializer.
		var buf bytes.Buffer
		if err := w.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON failed on accepted workflow: %v", err)
		}
		w2, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip rejected our own output: %v\noutput:\n%s", err, buf.Bytes())
		}
		if len(w2.Tasks) != len(w.Tasks) {
			t.Fatalf("round-trip changed task count: %d -> %d", len(w.Tasks), len(w2.Tasks))
		}
		if got, want := len(w2.Files()), len(w.Files()); got != want {
			t.Fatalf("round-trip changed file count: %d -> %d", want, got)
		}
		if w2.Name != w.Name {
			t.Fatalf("round-trip changed name: %q -> %q", w.Name, w2.Name)
		}
	})
}
