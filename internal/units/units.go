// Package units provides byte, rate and duration helpers shared by the
// simulator. All simulated time is expressed in float64 seconds and all
// data sizes in float64 bytes; this package centralizes the constants and
// formatting so the rest of the code can stay unit-honest.
package units

import "fmt"

// Data size constants, in bytes. The paper quotes decimal units (a
// "4.2 GB" input set), so these are SI powers of 1000, not powers of 1024.
const (
	B  = 1.0
	KB = 1e3
	MB = 1e6
	GB = 1e9
	TB = 1e12
)

// Binary (IEC) sizes, used for memory capacities which vendors quote in
// binary units (a 7 GB instance has 7*GiB of RAM).
const (
	KiB = 1024.0
	MiB = 1024.0 * 1024.0
	GiB = 1024.0 * 1024.0 * 1024.0
)

// Time constants, in seconds.
const (
	Second = 1.0
	Minute = 60.0
	Hour   = 3600.0
)

// MBps converts a rate expressed in megabytes per second to bytes per
// second, the unit used by all resource capacities.
func MBps(v float64) float64 { return v * MB }

// GBps converts gigabytes per second to bytes per second.
func GBps(v float64) float64 { return v * GB }

// Bytes formats a byte count using the largest SI unit that keeps the
// mantissa >= 1, e.g. "4.20 GB".
func Bytes(v float64) string {
	switch {
	case v >= TB:
		return fmt.Sprintf("%.2f TB", v/TB)
	case v >= GB:
		return fmt.Sprintf("%.2f GB", v/GB)
	case v >= MB:
		return fmt.Sprintf("%.2f MB", v/MB)
	case v >= KB:
		return fmt.Sprintf("%.2f KB", v/KB)
	}
	return fmt.Sprintf("%.0f B", v)
}

// Rate formats a bandwidth in bytes/second, e.g. "310.0 MB/s".
func Rate(v float64) string {
	switch {
	case v >= GB:
		return fmt.Sprintf("%.2f GB/s", v/GB)
	case v >= MB:
		return fmt.Sprintf("%.1f MB/s", v/MB)
	case v >= KB:
		return fmt.Sprintf("%.1f KB/s", v/KB)
	}
	return fmt.Sprintf("%.0f B/s", v)
}

// Duration formats simulated seconds as "1h02m03s", "4m05s" or "12.3s".
func Duration(sec float64) string {
	switch {
	case sec >= Hour:
		h := int(sec / Hour)
		m := int(sec/Minute) % 60
		s := int(sec) % 60
		return fmt.Sprintf("%dh%02dm%02ds", h, m, s)
	case sec >= Minute:
		m := int(sec / Minute)
		s := sec - float64(m)*Minute
		return fmt.Sprintf("%dm%04.1fs", m, s)
	}
	return fmt.Sprintf("%.1fs", sec)
}

// USD formats a dollar amount with the precision the paper's cost figures
// use (cents, with sub-cent amounts kept to 4 decimals).
func USD(v float64) string {
	if v != 0 && v < 0.01 && v > -0.01 {
		return fmt.Sprintf("$%.4f", v)
	}
	return fmt.Sprintf("$%.2f", v)
}
