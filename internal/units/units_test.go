package units

import (
	"testing"
	"testing/quick"
)

func TestByteFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{1.5 * KB, "1.50 KB"},
		{4.2 * GB, "4.20 GB"},
		{303 * MB, "303.00 MB"},
		{1.69 * TB, "1.69 TB"},
	}
	for _, c := range cases {
		if got := Bytes(c.v); got != c.want {
			t.Errorf("Bytes(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestRateFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{MBps(20), "20.0 MB/s"},
		{MBps(310), "310.0 MB/s"},
		{GBps(1.2), "1.20 GB/s"},
		{500, "500 B/s"},
		{2 * KB, "2.0 KB/s"},
	}
	for _, c := range cases {
		if got := Rate(c.v); got != c.want {
			t.Errorf("Rate(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestDurationFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{12.34, "12.3s"},
		{75, "1m15.0s"},
		{3600, "1h00m00s"},
		{5363, "1h29m23s"},
		{2500, "41m40.0s"},
	}
	for _, c := range cases {
		if got := Duration(c.v); got != c.want {
			t.Errorf("Duration(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestUSDFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "$0.00"},
		{0.68, "$0.68"},
		{0.0042, "$0.0042"},
		{12.5, "$12.50"},
	}
	for _, c := range cases {
		if got := USD(c.v); got != c.want {
			t.Errorf("USD(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestUnitRelationships(t *testing.T) {
	if GB != 1000*MB || MB != 1000*KB || KB != 1000*B {
		t.Error("SI units are not powers of 1000")
	}
	if GiB != 1024*MiB || MiB != 1024*KiB {
		t.Error("IEC units are not powers of 1024")
	}
	if Hour != 60*Minute || Minute != 60*Second {
		t.Error("time units inconsistent")
	}
	if MBps(1) != MB {
		t.Error("MBps(1) != 1 MB/s in bytes")
	}
}

// Property: formatting never panics and always returns something non-empty
// for non-negative finite values.
func TestPropertyFormattersTotal(t *testing.T) {
	f := func(raw uint32) bool {
		v := float64(raw)
		return Bytes(v) != "" && Rate(v+1) != "" && Duration(v) != "" && USD(v) != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
