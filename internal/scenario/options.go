package scenario

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/wms"
)

// A group is one self-describing block of scenario options. Each group
// declares every projection of its fields in one place:
//
//   - key: its segment of the canonical cell key (Key), with defaults
//     normalized so equivalent configurations memoize together;
//   - pairKey: its contribution to the seed-pairing hash (ReplicateSeed),
//     or none — knob groups are excluded so a knob cell's replicates
//     share jitter seeds with its baseline and overheads stay paired;
//   - reseed: how a derived replicate seed lands in its seed fields;
//   - flags: the CLI flags it registers (RegisterFlags);
//   - axes: the sweep axes it exposes, keyed by Spec JSON field name.
//
// Adding a scenario knob means adding one group (or one entry to an
// existing group) — memoization, replication, CLI parity and grid axes
// all follow from this table.
type group struct {
	name     string
	identity bool // names the cell (vs tunes a knob); identity flags are wfsim-only
	key      func(s *Spec) string
	pairKey  func(s *Spec) (string, bool)
	reseed   func(s *Spec, derived uint64)
	flags    func(fs *flag.FlagSet, s *Spec)
	axes     map[string]func(s *Spec, v any) error
}

// Replicate-seed salts decorrelate a replicate's failure-injection and
// outage streams from the provisioning stream that shares its derived
// seed.
const (
	failureSeedSalt uint64 = 0xFA11AB1E
	outageSeedSalt  uint64 = 0x0D07A6E5
)

// groups is the ordered option table. The order is load-bearing: the
// canonical key and the pairing hash are the "|"-joins of the group
// segments, and both must stay byte-identical to the pre-scenario
// hand-maintained encodings (see TestCellKeyMatchesOracle in harness).
var groups = []group{
	{
		name:     "cell",
		identity: true,
		key: func(s *Spec) string {
			return fmt.Sprintf("%s|%s|n=%d", s.App, s.Storage, s.Workers)
		},
		pairKey: func(s *Spec) (string, bool) {
			return fmt.Sprintf("%s|%s|%d", s.App, s.Storage, s.Workers), true
		},
		flags: func(fs *flag.FlagSet, s *Spec) {
			fs.StringVar(&s.App, "app", s.App, "application: "+strings.Join(apps.Names(), ", "))
			fs.StringVar(&s.Storage, "storage", s.Storage, "storage system: "+strings.Join(storage.Names(), ", "))
			fs.IntVar(&s.Workers, "nodes", s.Workers, "number of worker nodes")
		},
		axes: map[string]func(s *Spec, v any) error{
			"app":     func(s *Spec, v any) error { return setString(&s.App, "app", v) },
			"storage": func(s *Spec, v any) error { return setString(&s.Storage, "storage", v) },
			"workers": func(s *Spec, v any) error { return setInt(&s.Workers, "workers", v) },
		},
	},
	{
		name:     "workertype",
		identity: true,
		key: func(s *Spec) string {
			if s.WorkerType == "" {
				return "c1.xlarge"
			}
			return s.WorkerType
		},
		// The pairing hash keeps the raw (unnormalized) name — an
		// explicit c1.xlarge derives different replicate seeds than the
		// default, exactly as the pre-scenario hash did.
		pairKey: func(s *Spec) (string, bool) { return s.WorkerType, true },
		flags: func(fs *flag.FlagSet, s *Spec) {
			fs.StringVar(&s.WorkerType, "worker-type", s.WorkerType,
				"worker instance type: "+strings.Join(cluster.TypeNames(), ", ")+"; empty = c1.xlarge")
		},
		axes: map[string]func(s *Spec, v any) error{
			"worker_type": func(s *Spec, v any) error { return setString(&s.WorkerType, "worker_type", v) },
		},
	},
	{
		name:     "seed",
		identity: true,
		key: func(s *Spec) string {
			seed := s.Seed
			if seed == 0 {
				seed = DefaultSeed
			}
			return fmt.Sprintf("seed=%d", seed)
		},
		reseed: func(s *Spec, derived uint64) { s.Seed = derived },
		flags: func(fs *flag.FlagSet, s *Spec) {
			fs.Uint64Var(&s.Seed, "seed", s.Seed, "provisioning jitter seed (0 = the fixed default)")
		},
		axes: map[string]func(s *Spec, v any) error{
			"seed": func(s *Spec, v any) error { return setUint64(&s.Seed, "seed", v) },
		},
	},
	{
		name:   "appseed",
		key:    func(s *Spec) string { return fmt.Sprintf("appseed=%d", s.AppSeed) },
		reseed: func(s *Spec, derived uint64) { s.AppSeed = derived },
		axes: map[string]func(s *Spec, v any) error{
			"app_seed": func(s *Spec, v any) error { return setUint64(&s.AppSeed, "app_seed", v) },
		},
	},
	{
		name:     "scheduler",
		identity: true,
		key:      func(s *Spec) string { return fmt.Sprintf("aware=%t", s.DataAware) },
		pairKey:  func(s *Spec) (string, bool) { return fmt.Sprintf("%t", s.DataAware), true },
		flags: func(fs *flag.FlagSet, s *Spec) {
			fs.BoolVar(&s.DataAware, "data-aware", s.DataAware, "use the locality-aware scheduler (paper future work)")
		},
		axes: map[string]func(s *Spec, v any) error{
			"data_aware": func(s *Spec, v any) error { return setBool(&s.DataAware, "data_aware", v) },
		},
	},
	{
		name: "diskinit",
		key: func(s *Spec) string {
			return fmt.Sprintf("init=%t:%g", s.InitializeDisks, s.InitializeBytes)
		},
		// Only the on/off bit pairs replicate seeds; the byte count
		// never did (kept for hash compatibility).
		pairKey: func(s *Spec) (string, bool) { return fmt.Sprintf("%t", s.InitializeDisks), true },
		axes: map[string]func(s *Spec, v any) error{
			"initialize_disks": func(s *Spec, v any) error { return setBool(&s.InitializeDisks, "initialize_disks", v) },
			"initialize_bytes": func(s *Spec, v any) error { return setFloat(&s.InitializeBytes, "initialize_bytes", v) },
		},
	},
	{
		name: "failures",
		key: func(s *Spec) string {
			var retries int
			var failSeed uint64
			if s.FailureRate > 0 {
				retries = s.MaxRetries
				if retries == 0 {
					retries = wms.DefaultMaxRetries
				}
				failSeed = s.FailureSeed
				if failSeed == 0 {
					failSeed = wms.DefaultFailureSeed
				}
			}
			return fmt.Sprintf("fail=%g:%d:%d", s.FailureRate, retries, failSeed)
		},
		reseed: func(s *Spec, derived uint64) {
			if s.FailureRate > 0 {
				s.FailureSeed = derived ^ failureSeedSalt
			}
		},
		flags: func(fs *flag.FlagSet, s *Spec) {
			fs.Float64Var(&s.FailureRate, "failure-rate", s.FailureRate,
				"inject transient task failures with this per-attempt probability (0 = paper's failure-free setting)")
			fs.IntVar(&s.MaxRetries, "max-retries", s.MaxRetries,
				"failed attempts allowed per task; 0 = DAGMan's default of 3")
			fs.Uint64Var(&s.FailureSeed, "failure-seed", s.FailureSeed,
				"failure-injection RNG seed; 0 = fixed default")
		},
		axes: map[string]func(s *Spec, v any) error{
			"failure_rate": func(s *Spec, v any) error { return setFloat(&s.FailureRate, "failure_rate", v) },
			"max_retries":  func(s *Spec, v any) error { return setInt(&s.MaxRetries, "max_retries", v) },
			"failure_seed": func(s *Spec, v any) error { return setUint64(&s.FailureSeed, "failure_seed", v) },
		},
	},
	{
		name: "outages",
		key: func(s *Spec) string {
			var outDur float64
			var outSeed uint64
			if s.OutageRate > 0 {
				outDur = s.OutageDuration
				if outDur == 0 {
					outDur = wms.DefaultOutageDuration
				}
				outSeed = s.OutageSeed
				if outSeed == 0 {
					outSeed = wms.DefaultOutageSeed
				}
			}
			return fmt.Sprintf("out=%g:%g:%d", s.OutageRate, outDur, outSeed)
		},
		reseed: func(s *Spec, derived uint64) {
			if s.OutageRate > 0 {
				s.OutageSeed = derived ^ outageSeedSalt
			}
		},
		flags: func(fs *flag.FlagSet, s *Spec) {
			fs.Float64Var(&s.OutageRate, "outage-rate", s.OutageRate,
				"inject correlated node outages at this rate per node-hour (0 = paper's outage-free setting)")
			fs.Float64Var(&s.OutageDuration, "outage-duration", s.OutageDuration,
				"mean outage length in seconds; 0 = the default of 120")
			fs.Uint64Var(&s.OutageSeed, "outage-seed", s.OutageSeed,
				"outage-schedule RNG seed; 0 = fixed default")
		},
		axes: map[string]func(s *Spec, v any) error{
			"outage_rate":     func(s *Spec, v any) error { return setFloat(&s.OutageRate, "outage_rate", v) },
			"outage_duration": func(s *Spec, v any) error { return setFloat(&s.OutageDuration, "outage_duration", v) },
			"outage_seed":     func(s *Spec, v any) error { return setUint64(&s.OutageSeed, "outage_seed", v) },
		},
	},
	{
		name: "checkpointing",
		key:  func(s *Spec) string { return fmt.Sprintf("ckpt=%g", s.CheckpointInterval) },
		flags: func(fs *flag.FlagSet, s *Spec) {
			fs.Float64Var(&s.CheckpointInterval, "checkpoint-interval", s.CheckpointInterval,
				"write a checkpoint every this many seconds of computation and resume killed tasks from it (0 = no checkpointing)")
		},
		axes: map[string]func(s *Spec, v any) error{
			"checkpoint_interval": func(s *Spec, v any) error { return setFloat(&s.CheckpointInterval, "checkpoint_interval", v) },
		},
	},
	{
		name: "flowversion",
		// The segment is empty at the default (0 and the explicit 1 both
		// select the incremental solver), so every pre-existing key stays
		// byte-identical; only a v2 run names a distinct cell. No pairKey:
		// the solver version must not change replicate seeds — a v2 cell's
		// replicates stay paired with its v1 baseline.
		key: func(s *Spec) string {
			if s.FlowVersion <= 1 {
				return ""
			}
			return fmt.Sprintf("flow=%d", s.FlowVersion)
		},
		flags: func(fs *flag.FlagSet, s *Spec) {
			fs.IntVar(&s.FlowVersion, "flow-version", s.FlowVersion,
				"flow solver version: 0/1 = incremental (default), 2 = coalescing bottleneck-heap solver")
		},
		axes: map[string]func(s *Spec, v any) error{
			"flow_version": func(s *Spec, v any) error { return setInt(&s.FlowVersion, "flow_version", v) },
		},
	},
}

// Key renders the canonical memoization key: the "|"-join of every
// group's non-empty normalized segment. Equivalent configurations (an
// explicit c1.xlarge or seed 0x5EED versus the zero value; failure or
// outage knobs set while their rate is 0) render identical keys. A
// group whose segment is empty at its default (flowversion) drops out
// entirely, which keeps every key minted before the group existed
// byte-identical.
func Key(s *Spec) string {
	segs := make([]string, 0, len(groups))
	for _, g := range groups {
		if seg := g.key(s); seg != "" {
			segs = append(segs, seg)
		}
	}
	return strings.Join(segs, "|")
}

// PairKey renders the seed-pairing hash input: the "|"-join of the
// segments from groups that participate in replicate-seed derivation.
// Knob groups (failures, outages, checkpointing) and the seed fields
// themselves are excluded, so replicate r of a knob cell derives the
// same jitter seeds as replicate r of its knob-free baseline — paired
// overhead comparisons instead of confounded ones.
func PairKey(s *Spec) string {
	var segs []string
	for _, g := range groups {
		if g.pairKey == nil {
			continue
		}
		if seg, ok := g.pairKey(s); ok {
			segs = append(segs, seg)
		}
	}
	return strings.Join(segs, "|")
}

// ReplicateSeed derives the jitter seed for one replicate of a spec.
// Replicate 0 is the spec's own seed (the paper's fixed default when
// unset); higher replicates hash the pairing key so each cell's seed
// sequence depends only on its configuration, never on scheduling or
// batch position.
func ReplicateSeed(s *Spec, replicate int) uint64 {
	base := s.Seed
	if base == 0 {
		base = DefaultSeed
	}
	if replicate == 0 {
		return base
	}
	r := rng.New((rng.HashString(PairKey(s)) ^ base) + uint64(replicate))
	v := r.Uint64()
	if v == 0 { // zero means "default" downstream; avoid colliding with it
		v = 1
	}
	return v
}

// Reseed lands one derived replicate seed in every seed field the
// spec's active options declare: provisioning and app jitter always,
// the failure and outage streams (salted) only when their rates are
// non-zero.
func Reseed(s *Spec, derived uint64) {
	for _, g := range groups {
		if g.reseed != nil {
			g.reseed(s, derived)
		}
	}
}

// RegisterFlags registers every group's CLI flags on fs, bound to s;
// current field values become the flag defaults. Identity flags (-app,
// -storage, -nodes, -worker-type, -seed, -data-aware) are registered
// only when identity is true — wfbench sweeps those axes itself and
// registers knob flags alone, wfsim registers everything.
func RegisterFlags(fs *flag.FlagSet, s *Spec, identity bool) {
	for _, g := range groups {
		if g.flags == nil || (g.identity && !identity) {
			continue
		}
		g.flags(fs, s)
	}
}

// FlagNames lists the flag names RegisterFlags(..., identity) would
// register — CLIs use it to reject scenario flags combined with -spec.
func FlagNames(identity bool) []string {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	var scratch Spec
	RegisterFlags(fs, &scratch, identity)
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	sort.Strings(names)
	return names
}

// SetField assigns one axis value to a spec field by its JSON name.
// Values may come from JSON (float64/string/bool) or from typed Go
// callers (int/uint64/float64/string/bool).
func SetField(s *Spec, field string, v any) error {
	for _, g := range groups {
		if set, ok := g.axes[field]; ok {
			return set(s, v)
		}
	}
	return fmt.Errorf("scenario: unknown axis field %q (valid: %s)",
		field, strings.Join(AxisFields(), ", "))
}

// AxisFields lists every sweepable field name, sorted.
func AxisFields() []string {
	var out []string
	for _, g := range groups {
		for name := range g.axes {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Axis-value coercions. JSON decodes every number as float64, so the
// integer setters accept integral floats; typed Go callers pass native
// ints and uint64s through unchanged.

func setString(dst *string, field string, v any) error {
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("scenario: axis %s wants a string, got %T", field, v)
	}
	*dst = s
	return nil
}

func setBool(dst *bool, field string, v any) error {
	b, ok := v.(bool)
	if !ok {
		return fmt.Errorf("scenario: axis %s wants a bool, got %T", field, v)
	}
	*dst = b
	return nil
}

func setFloat(dst *float64, field string, v any) error {
	switch x := v.(type) {
	case float64:
		*dst = x
	case int:
		*dst = float64(x)
	case int64:
		*dst = float64(x)
	default:
		return fmt.Errorf("scenario: axis %s wants a number, got %T", field, v)
	}
	return nil
}

func setInt(dst *int, field string, v any) error {
	switch x := v.(type) {
	case int:
		*dst = x
	case int64:
		*dst = int(x)
	case float64:
		if x != float64(int(x)) {
			return fmt.Errorf("scenario: axis %s wants an integer, got %g", field, x)
		}
		*dst = int(x)
	default:
		return fmt.Errorf("scenario: axis %s wants an integer, got %T", field, v)
	}
	return nil
}

func setUint64(dst *uint64, field string, v any) error {
	switch x := v.(type) {
	case uint64:
		*dst = x
	case int:
		if x < 0 {
			return fmt.Errorf("scenario: axis %s wants a non-negative seed, got %d", field, x)
		}
		*dst = uint64(x)
	case int64:
		if x < 0 {
			return fmt.Errorf("scenario: axis %s wants a non-negative seed, got %d", field, x)
		}
		*dst = uint64(x)
	case float64:
		if x < 0 || x != float64(uint64(x)) {
			return fmt.Errorf("scenario: axis %s wants a non-negative integer seed, got %g", field, x)
		}
		*dst = uint64(x)
	default:
		return fmt.Errorf("scenario: axis %s wants a seed, got %T", field, v)
	}
	return nil
}
