package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Axis varies one spec field (by its JSON name) across a list of
// values. Values are held as `any` so the same Axis round-trips
// through JSON (numbers decode as float64) and accepts typed Go values
// from API callers; SetField coerces both.
type Axis struct {
	Field  string `json:"field"`
	Values []any  `json:"values"`
}

// Experiment is a whole serializable experiment: a base spec, the grid
// axes crossed over it, and an optional replicate count. One
// Experiment file is the entire input of a `wfbench -spec` run.
type Experiment struct {
	Base Spec   `json:"base"`
	Axes []Axis `json:"axes,omitempty"`
	// Seeds replicates every cell with deterministic per-cell seed
	// derivation (ReplicateSeed); <= 1 means single-measurement.
	Seeds int `json:"seeds,omitempty"`
}

// Cells expands the experiment into its grid: the base spec crossed
// with every axis in declaration order (the last axis varies fastest),
// each cell validated so a typo fails before any simulation starts.
func (e Experiment) Cells() ([]Spec, error) {
	cells := []Spec{e.Base}
	for _, ax := range e.Axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("scenario: axis %q has no values", ax.Field)
		}
		next := make([]Spec, 0, len(cells)*len(ax.Values))
		for _, c := range cells {
			for _, v := range ax.Values {
				s := c
				if err := SetField(&s, ax.Field, v); err != nil {
					return nil, err
				}
				next = append(next, s)
			}
		}
		cells = next
	}
	for i := range cells {
		if err := cells[i].Validate(); err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// Write serializes the experiment as indented JSON.
func (e Experiment) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// Read parses an experiment spec. Both shapes are accepted: a full
// Experiment ({"base": {...}, "axes": [...]}) or a bare Spec ({...}),
// which reads as a single-cell experiment. Unknown fields are
// rejected, so a misspelled knob fails instead of silently running the
// default.
func Read(r io.Reader) (Experiment, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Experiment{}, err
	}
	var probe struct {
		Base *Spec `json:"base"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return Experiment{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if probe.Base != nil {
		var e Experiment
		if err := strictUnmarshal(data, &e); err != nil {
			return Experiment{}, fmt.Errorf("scenario: parsing experiment spec: %w", err)
		}
		return e, nil
	}
	var s Spec
	if err := strictUnmarshal(data, &s); err != nil {
		return Experiment{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	return Experiment{Base: s}, nil
}

// ReadFile loads an experiment spec from a JSON file.
func ReadFile(path string) (Experiment, error) {
	f, err := os.Open(path)
	if err != nil {
		return Experiment{}, err
	}
	defer f.Close()
	e, err := Read(f)
	if err != nil {
		return Experiment{}, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
