package scenario

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestKeyNormalizesDefaults(t *testing.T) {
	base := &Spec{App: "montage", Storage: "nfs", Workers: 2}
	explicit := &Spec{App: "montage", Storage: "nfs", Workers: 2,
		WorkerType: "c1.xlarge", Seed: DefaultSeed}
	if Key(base) != Key(explicit) {
		t.Errorf("explicit defaults split the key:\n%q\nvs\n%q", Key(base), Key(explicit))
	}
	ignored := &Spec{App: "montage", Storage: "nfs", Workers: 2,
		MaxRetries: 5, FailureSeed: 9, OutageDuration: 60, OutageSeed: 11}
	if Key(base) != Key(ignored) {
		t.Errorf("inactive knob fields split the key:\n%q\nvs\n%q", Key(base), Key(ignored))
	}
	failing := &Spec{App: "montage", Storage: "nfs", Workers: 2, FailureRate: 0.1}
	if Key(base) == Key(failing) {
		t.Error("failure rate did not change the key")
	}
}

// TestKeyFlowVersion pins the flowversion group's key contract: the
// default (0) and an explicit v1 drop out of the key entirely — so keys
// minted before the group existed stay byte-identical — while v2 names
// a distinct cell. The pairing hash must ignore the version either way:
// a v2 cell's replicates stay seed-paired with its v1 baseline.
func TestKeyFlowVersion(t *testing.T) {
	base := &Spec{App: "montage", Storage: "nfs", Workers: 2}
	v1 := &Spec{App: "montage", Storage: "nfs", Workers: 2, FlowVersion: 1}
	v2 := &Spec{App: "montage", Storage: "nfs", Workers: 2, FlowVersion: 2}
	if Key(base) != Key(v1) {
		t.Errorf("explicit v1 split the key:\n%q\nvs\n%q", Key(base), Key(v1))
	}
	if strings.Contains(Key(base), "flow") {
		t.Errorf("default key mentions the flow version: %q", Key(base))
	}
	if Key(base) == Key(v2) {
		t.Error("flow version 2 did not change the key")
	}
	if !strings.Contains(Key(v2), "flow=2") {
		t.Errorf("v2 key missing flow segment: %q", Key(v2))
	}
	if PairKey(base) != PairKey(v2) {
		t.Errorf("flow version changed the pairing hash:\n%q\nvs\n%q", PairKey(base), PairKey(v2))
	}
	if err := v2.Validate(); err != nil {
		t.Errorf("flow version 2 failed validation: %v", err)
	}
	bad := &Spec{App: "montage", Storage: "nfs", Workers: 2, FlowVersion: 3}
	if err := bad.Validate(); err == nil {
		t.Error("flow version 3 passed validation")
	}
}

func TestPairKeyExcludesKnobs(t *testing.T) {
	base := &Spec{App: "montage", Storage: "nfs", Workers: 2}
	knobbed := &Spec{App: "montage", Storage: "nfs", Workers: 2,
		Seed: 7, AppSeed: 3, FailureRate: 0.1, OutageRate: 1, CheckpointInterval: 60}
	if PairKey(base) != PairKey(knobbed) {
		t.Errorf("knobs changed the pairing hash:\n%q\nvs\n%q", PairKey(base), PairKey(knobbed))
	}
	for rep := 1; rep < 4; rep++ {
		// Same pairing key but different base seeds must still derive
		// different replicate seeds.
		if ReplicateSeed(base, rep) == ReplicateSeed(knobbed, rep) {
			t.Errorf("replicate %d ignored the base seed", rep)
		}
	}
}

func TestReseedOnlyActiveStreams(t *testing.T) {
	s := &Spec{App: "montage", Storage: "nfs", Workers: 2}
	Reseed(s, 42)
	if s.Seed != 42 || s.AppSeed != 42 {
		t.Errorf("jitter seeds not reseeded: %+v", s)
	}
	if s.FailureSeed != 0 || s.OutageSeed != 0 {
		t.Errorf("inactive streams reseeded: %+v", s)
	}
	f := &Spec{App: "montage", Storage: "nfs", Workers: 2, FailureRate: 0.1, OutageRate: 1}
	Reseed(f, 42)
	if f.FailureSeed == 0 || f.OutageSeed == 0 {
		t.Errorf("active streams not reseeded: %+v", f)
	}
	if f.FailureSeed == f.OutageSeed || f.FailureSeed == 42 || f.OutageSeed == 42 {
		t.Errorf("streams not decorrelated: %+v", f)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		spec Spec
		kind string
	}{
		{Spec{App: "montag", Storage: "nfs", Workers: 2}, "application"},
		{Spec{App: "montage", Storage: "glusterfs", Workers: 2}, "storage system"},
		{Spec{App: "montage", Storage: "nfs", Workers: 2, WorkerType: "t2.micro"}, "worker type"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		var unknown *UnknownNameError
		if !errors.As(err, &unknown) {
			t.Fatalf("Validate(%+v) = %v, want *UnknownNameError", c.spec, err)
		}
		if unknown.Kind != c.kind {
			t.Errorf("Kind = %q, want %q", unknown.Kind, c.kind)
		}
		if len(unknown.Valid) == 0 || !strings.Contains(err.Error(), unknown.Valid[0]) {
			t.Errorf("error %q does not list the valid names %v", err, unknown.Valid)
		}
	}
	ok := Spec{App: "montage", Storage: "nfs", Workers: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestExperimentCells(t *testing.T) {
	e := Experiment{
		Base: Spec{App: "montage", Storage: "nfs", Workers: 1},
		Axes: []Axis{
			{Field: "storage", Values: []any{"nfs", "s3"}},
			{Field: "workers", Values: []any{2.0, 4}}, // float from JSON, int from Go
		},
	}
	cells, err := e.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	want := []Spec{
		{App: "montage", Storage: "nfs", Workers: 2},
		{App: "montage", Storage: "nfs", Workers: 4},
		{App: "montage", Storage: "s3", Workers: 2},
		{App: "montage", Storage: "s3", Workers: 4},
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("cell %d = %+v, want %+v", i, cells[i], want[i])
		}
	}
}

func TestExperimentCellsRejectsBadAxis(t *testing.T) {
	e := Experiment{
		Base: Spec{App: "montage", Storage: "nfs", Workers: 2},
		Axes: []Axis{{Field: "nodes", Values: []any{1}}},
	}
	if _, err := e.Cells(); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Errorf("unknown axis error %v should list valid fields", err)
	}
	typo := Experiment{
		Base: Spec{App: "montage", Storage: "nfs", Workers: 2},
		Axes: []Axis{{Field: "storage", Values: []any{"glusterfs"}}},
	}
	var unknown *UnknownNameError
	if _, err := typo.Cells(); !errors.As(err, &unknown) {
		t.Errorf("axis typo error = %v, want *UnknownNameError", err)
	}
}

func TestExperimentReadBothShapes(t *testing.T) {
	full := `{"base": {"app": "montage", "storage": "nfs", "workers": 2}, "seeds": 3}`
	e, err := Read(strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if e.Base.App != "montage" || e.Seeds != 3 {
		t.Errorf("experiment form misparsed: %+v", e)
	}
	bare := `{"app": "broadband", "storage": "s3", "workers": 4, "outage_rate": 1.5}`
	e, err = Read(strings.NewReader(bare))
	if err != nil {
		t.Fatal(err)
	}
	if e.Base.Storage != "s3" || e.Base.OutageRate != 1.5 || e.Seeds != 0 {
		t.Errorf("bare-spec form misparsed: %+v", e)
	}
	if _, err := Read(strings.NewReader(`{"app": "montage", "strage": "nfs"}`)); err == nil {
		t.Error("misspelled field accepted")
	}
}

func TestExperimentWriteReadRoundTrip(t *testing.T) {
	e := Experiment{
		Base:  Spec{App: "epigenome", Storage: "pvfs", Workers: 4, FailureRate: 0.1, MaxRetries: 5},
		Axes:  []Axis{{Field: "outage_rate", Values: []any{0.5, 1.0}}},
		Seeds: 5,
	}
	var b strings.Builder
	if err := e.Write(&b); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := e.Cells()
	if err != nil {
		t.Fatal(err)
	}
	backCells, err := back.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, backCells) || back.Seeds != e.Seeds {
		t.Errorf("round trip changed the experiment:\n got %+v\nwant %+v", back, e)
	}
}

// FuzzSpecRoundTrip asserts the two invariants every spec must hold:
// JSON round-trips are lossless, and the canonical key is stable across
// them (the serialized form memoizes identically to the original).
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add("montage", "nfs", 2, "c1.xlarge", false, uint64(0), uint64(0), 0.0, 0, uint64(0), 0.0, 0.0, uint64(0), 0.0)
	f.Add("broadband", "s3", 8, "", true, uint64(7), uint64(3), 0.1, 5, uint64(9), 1.5, 90.0, uint64(11), 60.5)
	f.Add("a|b", "c:d", -1, "weird\"type", false, ^uint64(0), uint64(1)<<63, -0.5, -3, uint64(1), 1e300, -1e-9, ^uint64(0)>>1, 0.0)
	f.Fuzz(func(t *testing.T, app, storage string, workers int, wt string, aware bool,
		seed, appSeed uint64, failRate float64, retries int, failSeed uint64,
		outRate, outDur float64, outSeed uint64, ckpt float64) {
		for _, name := range []string{app, storage, wt} {
			if !utf8.ValidString(name) {
				t.Skip() // JSON cannot represent invalid UTF-8 losslessly
			}
		}
		s := Spec{
			App: app, Storage: storage, Workers: workers, WorkerType: wt,
			DataAware: aware, Seed: seed, AppSeed: appSeed,
			FailureRate: failRate, MaxRetries: retries, FailureSeed: failSeed,
			OutageRate: outRate, OutageDuration: outDur, OutageSeed: outSeed,
			CheckpointInterval: ckpt,
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Skip() // NaN/Inf floats are unrepresentable in JSON
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal(%s): %v", data, err)
		}
		if back != s {
			t.Fatalf("round trip lost fields:\n got %+v\nwant %+v", back, s)
		}
		if Key(&back) != Key(&s) {
			t.Fatalf("round trip changed the canonical key:\n got %q\nwant %q", Key(&back), Key(&s))
		}
		if PairKey(&back) != PairKey(&s) {
			t.Fatalf("round trip changed the pairing key")
		}
	})
}
