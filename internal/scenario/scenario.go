// Package scenario is the composable experiment-description layer: one
// serializable Spec names everything a single simulation run can vary
// (application, storage, cluster shape, seeds, failure injection, node
// outages, checkpointing), and a registry of self-describing option
// groups declares — once, per group — how those fields appear in the
// canonical memoization key, which of them participate in the
// seed-pairing hash, how replicates reseed them, which CLI flags they
// register, and which sweep axes they expose.
//
// The harness, the public facade and both CLIs are all thin views over
// this package: harness.CellKey/CellSeed/SweepSeeds delegate to
// Key/ReplicateSeed/Reseed, the facade's functional options mutate a
// Spec, and wfbench/wfsim register their scenario flags from the same
// group table, so a new scenario knob added here is automatically
// memoized, replicated, flag-exposed and serializable everywhere.
package scenario

import (
	"encoding/json"
	"fmt"
	"strings"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/storage"
)

// DefaultSeed is the fixed provisioning-jitter seed used when a Spec
// leaves Seed zero — the paper's single-measurement setting.
const DefaultSeed uint64 = 0x5EED

// Spec is one serializable experiment configuration: every scenario
// field a run can vary, with zero values meaning "the paper's default".
// It deliberately excludes the in-memory Workflow override — a Spec is
// exactly the part of a configuration that can live in a JSON file.
type Spec struct {
	// App is "montage", "broadband" or "epigenome".
	App string `json:"app,omitempty"`
	// Storage is a storage.Names() entry.
	Storage string `json:"storage,omitempty"`
	// Workers is the worker-node count.
	Workers int `json:"workers,omitempty"`
	// WorkerType selects the worker instance type by EC2 name; empty
	// means the paper's c1.xlarge.
	WorkerType string `json:"worker_type,omitempty"`
	// DataAware switches to the locality-aware scheduler.
	DataAware bool `json:"data_aware,omitempty"`
	// Seed varies provisioning jitter; 0 means the fixed default.
	Seed uint64 `json:"seed,omitempty"`
	// AppSeed varies the generated application's task-runtime jitter;
	// 0 keeps the app's fixed paper seed.
	AppSeed uint64 `json:"app_seed,omitempty"`
	// InitializeDisks zero-fills ephemeral volumes first (ablation A-6).
	InitializeDisks bool    `json:"initialize_disks,omitempty"`
	InitializeBytes float64 `json:"initialize_bytes,omitempty"`

	// FailureRate injects i.i.d. transient task failures with this
	// per-attempt probability; MaxRetries and FailureSeed are ignored
	// at rate 0.
	FailureRate float64 `json:"failure_rate,omitempty"`
	MaxRetries  int     `json:"max_retries,omitempty"`
	FailureSeed uint64  `json:"failure_seed,omitempty"`

	// OutageRate injects correlated node outages per node per hour;
	// OutageDuration and OutageSeed are ignored at rate 0.
	OutageRate     float64 `json:"outage_rate,omitempty"`
	OutageDuration float64 `json:"outage_duration,omitempty"`
	OutageSeed     uint64  `json:"outage_seed,omitempty"`

	// CheckpointInterval makes tasks checkpoint every interval seconds
	// of computation; 0 disables checkpointing.
	CheckpointInterval float64 `json:"checkpoint_interval,omitempty"`

	// FlowVersion selects the flow-solver implementation: 0 or 1 is the
	// default incremental solver (bit-identical to the original
	// from-scratch solve), 2 the coalescing bottleneck-heap solver
	// (identical totals, timestamps within float tolerance; see
	// internal/flow).
	FlowVersion int `json:"flow_version,omitempty"`
}

// CanonicalJSON renders the spec as compact JSON with the struct's
// fixed field order and zero-valued fields omitted. The encoding is a
// pure function of the spec's field values, so artifacts embedding a
// spec — event-log headers, memo keys derived from them — are
// byte-stable across runs and processes.
func (s *Spec) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s)
}

// UnknownNameError reports a name that does not resolve in one of the
// scenario catalogs (application, storage system, worker type). It is
// a typed error so spec-file loaders and API callers can detect a typo
// programmatically; its message always lists the valid names.
type UnknownNameError struct {
	Kind  string   // "application", "storage system" or "worker type"
	Name  string   // the unresolvable name
	Valid []string // the catalog it was checked against
}

func (e *UnknownNameError) Error() string {
	return fmt.Sprintf("scenario: unknown %s %q (valid: %s)",
		e.Kind, e.Name, strings.Join(e.Valid, ", "))
}

// ValidateApp resolves an application name, returning an
// *UnknownNameError naming the valid applications on failure.
func ValidateApp(name string) error {
	for _, n := range apps.Names() {
		if n == name {
			return nil
		}
	}
	return &UnknownNameError{Kind: "application", Name: name, Valid: apps.Names()}
}

// ValidateStorage resolves a storage-system name, returning an
// *UnknownNameError naming the valid systems on failure.
func ValidateStorage(name string) error {
	for _, n := range storage.Names() {
		if n == name {
			return nil
		}
	}
	return &UnknownNameError{Kind: "storage system", Name: name, Valid: storage.Names()}
}

// ValidateWorkerType resolves a worker instance type; empty selects the
// default and is always valid.
func ValidateWorkerType(name string) error {
	if _, err := cluster.TypeByName(name); err != nil {
		return &UnknownNameError{Kind: "worker type", Name: name, Valid: cluster.TypeNames()}
	}
	return nil
}

// Validate checks every catalog-typed field of the spec, so a typo in a
// spec file fails with the valid names before any simulation starts.
// An empty App passes here — it means "the caller supplies a workflow",
// and the harness rejects it with the same typed error when none is —
// but a non-empty App must resolve.
func (s *Spec) Validate() error {
	if s.App != "" {
		if err := ValidateApp(s.App); err != nil {
			return err
		}
	}
	if err := ValidateStorage(s.Storage); err != nil {
		return err
	}
	if err := ValidateWorkerType(s.WorkerType); err != nil {
		return err
	}
	if s.Workers <= 0 {
		return fmt.Errorf("scenario: workers must be positive (got %d)", s.Workers)
	}
	if s.FailureRate < 0 || s.OutageRate < 0 || s.OutageDuration < 0 || s.CheckpointInterval < 0 {
		return fmt.Errorf("scenario: rates, durations and intervals must be non-negative")
	}
	if s.FlowVersion < 0 || s.FlowVersion > 2 {
		return fmt.Errorf("scenario: flow_version must be 0 (default), 1 or 2 (got %d)", s.FlowVersion)
	}
	return nil
}
