// Package wfprof reimplements the workflow profiler the paper uses to
// build Table I (http://pegasus.isi.edu/wfprof): it measures each
// application's I/O, memory and CPU demands by aggregating over every task
// — the simulated analogue of tracing all tasks with ptrace — and
// classifies the application as Low/Medium/High in each category:
//
//	Application  I/O     Memory  CPU
//	Montage      High    Low     Low
//	Broadband    Medium  High    Medium
//	Epigenome    Low     Medium  High
package wfprof

import (
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// Class is a Table I resource-usage category.
type Class int

// Classes in increasing order.
const (
	Low Class = iota
	Medium
	High
)

func (c Class) String() string {
	switch c {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	}
	return "High"
}

// Classification thresholds, calibrated so the three paper applications
// land in their Table I cells with comfortable margins between classes.
//
// I/O intensity is the unique data footprint per CPU-second: repeated
// reads of a file hit the page cache on real systems, so they do not make
// an application I/O-bound. Memory is the runtime-weighted mean of task
// peak RSS (one brief large task does not make a workflow memory-hungry;
// Broadband's hours of multi-GB simulations do). CPU intensity is the
// inverse of I/O intensity: core-seconds spent per MB of data produced or
// consumed.
const (
	ioHigh   = 0.60 * units.MB // bytes per CPU-second
	ioMedium = 0.34 * units.MB

	memHigh   = 1.0 * units.GB // runtime-weighted mean peak RSS
	memMedium = 0.45 * units.GB

	cpuHigh   = 3.0 / units.MB // CPU-seconds per byte
	cpuMedium = 1.8 / units.MB
)

// Profile is the profiler's output for one application.
type Profile struct {
	Name  string
	Stats workflow.Stats

	// UniqueBytes is the application's data footprint: every file it
	// touches counted once.
	UniqueBytes float64
	// CPUSeconds is the total task computation time.
	CPUSeconds float64
	// IOIntensity = UniqueBytes / CPUSeconds.
	IOIntensity float64
	// WeightedPeakMemory is the runtime-weighted mean of task peak RSS.
	WeightedPeakMemory float64
	// MaxPeakMemory is the single largest task RSS.
	MaxPeakMemory float64
	// CPUPerByte = CPUSeconds / UniqueBytes.
	CPUPerByte float64

	IOClass     Class
	MemoryClass Class
	CPUClass    Class
}

// Analyze profiles a finalized workflow.
func Analyze(w *workflow.Workflow) Profile {
	s := w.ComputeStats()
	p := Profile{Name: w.Name, Stats: s}
	p.UniqueBytes = s.InputBytes + s.OutputBytes + s.IntermediateBytes
	p.CPUSeconds = s.TotalRuntime
	p.MaxPeakMemory = s.MaxPeakMemory

	var memWeighted float64
	for _, t := range w.Tasks {
		memWeighted += t.Runtime * t.PeakMemory
	}
	if p.CPUSeconds > 0 {
		p.WeightedPeakMemory = memWeighted / p.CPUSeconds
		p.IOIntensity = p.UniqueBytes / p.CPUSeconds
	}
	if p.UniqueBytes > 0 {
		p.CPUPerByte = p.CPUSeconds / p.UniqueBytes
	}

	p.IOClass = classify(p.IOIntensity, ioHigh, ioMedium)
	p.MemoryClass = classify(p.WeightedPeakMemory, memHigh, memMedium)
	p.CPUClass = classify(p.CPUPerByte, cpuHigh, cpuMedium)
	return p
}

func classify(v, high, medium float64) Class {
	switch {
	case v >= high:
		return High
	case v >= medium:
		return Medium
	}
	return Low
}
