package wfprof

import (
	"testing"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

func analyze(t *testing.T, name string) Profile {
	t.Helper()
	w, err := apps.PaperScale(name)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(w)
}

// The headline: reproduce Table I exactly.
func TestTableIClassification(t *testing.T) {
	want := map[string][3]Class{
		"montage":   {High, Low, Low}, // I/O, Memory, CPU
		"broadband": {Medium, High, Medium},
		"epigenome": {Low, Medium, High},
	}
	for name, classes := range want {
		p := analyze(t, name)
		if p.IOClass != classes[0] {
			t.Errorf("%s I/O = %s, want %s", name, p.IOClass, classes[0])
		}
		if p.MemoryClass != classes[1] {
			t.Errorf("%s Memory = %s, want %s", name, p.MemoryClass, classes[1])
		}
		if p.CPUClass != classes[2] {
			t.Errorf("%s CPU = %s, want %s", name, p.CPUClass, classes[2])
		}
	}
}

func TestProfileInternalConsistency(t *testing.T) {
	for _, name := range apps.Names() {
		p := analyze(t, name)
		if p.UniqueBytes <= 0 || p.CPUSeconds <= 0 {
			t.Errorf("%s: non-positive footprint/CPU", name)
		}
		if got := p.IOIntensity * p.CPUPerByte; got < 0.999 || got > 1.001 {
			t.Errorf("%s: IOIntensity and CPUPerByte not inverse (product %g)", name, got)
		}
		if p.WeightedPeakMemory > p.MaxPeakMemory {
			t.Errorf("%s: weighted mean memory %s exceeds max %s", name,
				units.Bytes(p.WeightedPeakMemory), units.Bytes(p.MaxPeakMemory))
		}
	}
}

func TestClassOrderingAndStrings(t *testing.T) {
	if !(Low < Medium && Medium < High) {
		t.Error("class ordering broken")
	}
	if Low.String() != "Low" || Medium.String() != "Medium" || High.String() != "High" {
		t.Error("class labels wrong")
	}
}

func TestClassifyBoundaries(t *testing.T) {
	if classify(10, 10, 5) != High {
		t.Error("value at high threshold should be High")
	}
	if classify(7, 10, 5) != Medium {
		t.Error("value between thresholds should be Medium")
	}
	if classify(1, 10, 5) != Low {
		t.Error("value below medium threshold should be Low")
	}
}

func TestAnalyzeEmptyWorkflow(t *testing.T) {
	w := workflow.New("empty")
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := Analyze(w)
	if p.IOClass != Low || p.MemoryClass != Low || p.CPUClass != Low {
		t.Error("empty workflow should classify Low everywhere")
	}
}

// The weighted-memory metric must separate Broadband (long-running
// multi-GB tasks) from Montage (a single large mAdd amid thousands of
// small tasks) — max-RSS alone would not.
func TestWeightedMemorySeparatesApplications(t *testing.T) {
	m := analyze(t, "montage")
	b := analyze(t, "broadband")
	if m.WeightedPeakMemory >= b.WeightedPeakMemory/5 {
		t.Errorf("montage weighted memory %s not well below broadband %s",
			units.Bytes(m.WeightedPeakMemory), units.Bytes(b.WeightedPeakMemory))
	}
	if m.MaxPeakMemory < 1*units.GB {
		t.Error("montage max RSS should exceed 1 GB (mAdd) — the reason max alone cannot classify")
	}
}
