// Package staging models moving workflow data between the submit host and
// the cloud over the wide-area network — the paper's third cost category
// ("transfer cost includes charges for moving input data, output data and
// log files between the submit host and EC2").
//
// The paper deliberately excludes these transfers from its measured window
// (inputs are pre-staged, outputs retained in the cloud) and defers the
// measurements to the authors' earlier e-Science 2009 study; this package
// implements that excluded piece so deployments can be costed end to end:
// a WAN link model between the submit host and the EC2 region, and the
// 2010 AWS data-transfer price book.
package staging

import (
	"fmt"

	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// 2010 AWS data-transfer prices (USD per GB). Transfers within the region
// (e.g. EC2 <-> S3) are free, which the paper notes.
const (
	PriceInPerGB  = 0.10
	PriceOutPerGB = 0.15
	// Log files shipped back to the submit host per task, the third item
	// in the paper's transfer list.
	LogBytesPerTask = 50 * units.KB
)

// Link is the WAN path between the submit host and the cloud region.
type Link struct {
	// Up and Down are the submit host's achievable rates toward and from
	// EC2. University campus uplinks of the era sustained tens of Mbit/s
	// to AWS; the defaults are 50 Mbit/s each way.
	Up   *flow.Resource
	Down *flow.Resource
	net  *flow.Net
}

// DefaultRate is the default WAN rate in bytes/second (50 Mbit/s).
const DefaultRate = 50e6 / 8

// NewLink creates a WAN link with the given rates (bytes/second); zero
// values use DefaultRate.
func NewLink(net *flow.Net, up, down float64) *Link {
	if up <= 0 {
		up = DefaultRate
	}
	if down <= 0 {
		down = DefaultRate
	}
	return &Link{
		Up:   flow.NewResource("wan-up", up),
		Down: flow.NewResource("wan-down", down),
		net:  net,
	}
}

// Plan describes one workflow's staging traffic.
type Plan struct {
	InputBytes  float64 // submit host -> cloud, before the run
	OutputBytes float64 // cloud -> submit host, after the run
	LogBytes    float64 // cloud -> submit host, after the run
}

// PlanFor derives the staging plan from a finalized workflow: all
// workflow-level inputs go up; all deliverables plus per-task logs come
// back.
func PlanFor(w *workflow.Workflow) Plan {
	p := Plan{LogBytes: float64(len(w.Tasks)) * LogBytesPerTask}
	for _, f := range w.Inputs() {
		p.InputBytes += f.Size
	}
	for _, f := range w.Outputs() {
		p.OutputBytes += f.Size
	}
	return p
}

// Cost returns the AWS transfer charges for the plan.
func (p Plan) Cost() float64 {
	return p.InputBytes/units.GB*PriceInPerGB +
		(p.OutputBytes+p.LogBytes)/units.GB*PriceOutPerGB
}

// StageIn simulates uploading the inputs, blocking prc for the WAN time.
func (l *Link) StageIn(prc *sim.Proc, p Plan) {
	l.net.Transfer(prc, p.InputBytes, l.Up)
}

// StageOut simulates retrieving outputs and logs.
func (l *Link) StageOut(prc *sim.Proc, p Plan) {
	l.net.Transfer(prc, p.OutputBytes+p.LogBytes, l.Down)
}

// Estimate returns the staging seconds without running a simulation
// (single-flow transfers are deterministic: bytes / rate).
func (l *Link) Estimate(p Plan) (inSeconds, outSeconds float64) {
	return p.InputBytes / l.Up.Capacity(), (p.OutputBytes + p.LogBytes) / l.Down.Capacity()
}

// Describe renders the plan for reports.
func (p Plan) Describe() string {
	return fmt.Sprintf("in %s, out %s (+%s logs), transfer fees %s",
		units.Bytes(p.InputBytes), units.Bytes(p.OutputBytes),
		units.Bytes(p.LogBytes), units.USD(p.Cost()))
}
