package staging

import (
	"math"
	"strings"
	"testing"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
)

func TestPlanForMontage(t *testing.T) {
	w, err := apps.PaperScale("montage")
	if err != nil {
		t.Fatal(err)
	}
	p := PlanFor(w)
	if p.InputBytes < 4.1*units.GB || p.InputBytes > 4.3*units.GB {
		t.Errorf("input plan = %s, want ~4.2 GB", units.Bytes(p.InputBytes))
	}
	if p.OutputBytes < 7.7*units.GB || p.OutputBytes > 8.1*units.GB {
		t.Errorf("output plan = %s, want ~7.9 GB", units.Bytes(p.OutputBytes))
	}
	if p.LogBytes != 10429*LogBytesPerTask {
		t.Errorf("log plan = %s, want one log per task", units.Bytes(p.LogBytes))
	}
}

func TestTransferCost(t *testing.T) {
	p := Plan{InputBytes: 10 * units.GB, OutputBytes: 20 * units.GB}
	want := 10*PriceInPerGB + 20*PriceOutPerGB
	if got := p.Cost(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Cost = %g, want %g", got, want)
	}
}

func TestStageTimesMatchLinkRate(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	l := NewLink(net, 0, 0) // defaults: 50 Mbit/s
	p := Plan{InputBytes: DefaultRate * 120, OutputBytes: DefaultRate * 60}
	var tIn, tOut float64
	e.Go("stage", func(prc *sim.Proc) {
		start := prc.Now()
		l.StageIn(prc, p)
		tIn = prc.Now() - start
		start = prc.Now()
		l.StageOut(prc, p)
		tOut = prc.Now() - start
	})
	e.Run()
	if math.Abs(tIn-120) > 1e-6 {
		t.Errorf("stage-in took %.1f s, want 120", tIn)
	}
	if math.Abs(tOut-60) > 1e-6 {
		t.Errorf("stage-out took %.1f s, want 60", tOut)
	}
	estIn, estOut := l.Estimate(p)
	if math.Abs(estIn-tIn) > 1e-6 || math.Abs(estOut-tOut) > 1e-6 {
		t.Error("Estimate disagrees with simulation for single flows")
	}
}

func TestConcurrentStagingShares(t *testing.T) {
	// Two workflows staging in at once halve each other's rate.
	e := sim.NewEngine()
	net := flow.NewNet(e)
	l := NewLink(net, 1000, 1000)
	var done [2]float64
	for i := 0; i < 2; i++ {
		i := i
		e.Go("stage", func(prc *sim.Proc) {
			l.StageIn(prc, Plan{InputBytes: 1000})
			done[i] = prc.Now()
		})
	}
	e.Run()
	for _, d := range done {
		if math.Abs(d-2) > 1e-6 {
			t.Errorf("concurrent stage finished at %.2f, want 2.0 (fair share)", d)
		}
	}
}

func TestDescribe(t *testing.T) {
	p := Plan{InputBytes: units.GB, OutputBytes: units.GB, LogBytes: units.MB}
	s := p.Describe()
	for _, want := range []string{"1.00 GB", "logs", "$"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe missing %q: %s", want, s)
		}
	}
}

// The paper's methodological note holds in the model too: for these
// applications the staging fees are small next to resource charges.
func TestTransferFeesSmallForPaperApps(t *testing.T) {
	for _, name := range apps.Names() {
		w, err := apps.PaperScale(name)
		if err != nil {
			t.Fatal(err)
		}
		fee := PlanFor(w).Cost()
		if fee > 3.0 {
			t.Errorf("%s transfer fees = %s, unexpectedly large", name, units.USD(fee))
		}
		if fee <= 0 {
			t.Errorf("%s transfer fees zero", name)
		}
	}
}
