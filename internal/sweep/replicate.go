package sweep

import "context"

// MapReplicates is the two-level scheduler: every cell fans `seeds`
// replicate units onto the engine's worker pool as independent work
// items, so a single cell with many seeds saturates the pool exactly
// like many cells with one seed each — there is one shared queue of
// (cell, replicate) units, not a per-cell inner loop.
//
// derive builds the configuration for one replicate of a cell;
// derive(cell, 0) conventionally returns the cell unchanged. Results
// are placed by (cell, replicate) index, so the returned matrix — and
// any reduction over it — is in seed-index order regardless of which
// worker finished first: determinism is by construction, not by
// scheduling.
//
// reduce, if non-nil, streams per-cell reductions while the sweep runs:
// it is called once per cell whose replicates all succeeded, in cell
// order (an out-of-order cell completion is buffered until every
// earlier cell has been reduced), with that cell's runs in seed-index
// order. Calls are serialized; reduce must not call back into the
// engine. Cells with a failed replicate are skipped, and the first
// error — by flattened (cell, replicate) index, so error reporting is
// as deterministic as the results — is returned alongside the matrix.
func (e *Engine[C, R]) MapReplicates(ctx context.Context, cells []C, seeds int,
	derive func(cell C, rep int) C, reduce func(cell int, runs []R)) ([][]R, error) {
	if seeds <= 0 {
		seeds = 1
	}
	flat := make([]C, 0, len(cells)*seeds)
	for _, cell := range cells {
		for rep := 0; rep < seeds; rep++ {
			flat = append(flat, derive(cell, rep))
		}
	}

	byCell := make([][]R, len(cells))
	for i := range byCell {
		byCell[i] = make([]R, seeds)
	}
	failed := make([]bool, len(cells))
	remaining := make([]int, len(cells))
	for i := range remaining {
		remaining[i] = seeds
	}

	// Stream reductions in cell order: a completed cell enters the
	// ordered emitter, which buffers it until every earlier cell is out.
	var ord *Ordered[int]
	if reduce != nil {
		ord = NewOrdered[int](func(cell int, _ int) {
			if !failed[cell] {
				reduce(cell, byCell[cell])
			}
		})
	}

	// Shadow the engine so the caller's Progress still sees every
	// replicate completion (flattened index) while this layer tracks
	// per-cell completion counts. eng shares Run/Key/Memo/Parallel.
	eng := *e
	prev := e.Progress
	eng.Progress = func(u Update[C, R]) {
		if prev != nil {
			prev(u)
		}
		cell := u.Index / seeds
		rep := u.Index % seeds
		// Progress calls are serialized by MapCtx, so the per-cell
		// bookkeeping needs no further locking.
		if u.Err != nil {
			failed[cell] = true
		} else {
			byCell[cell][rep] = u.Result
		}
		remaining[cell]--
		if remaining[cell] == 0 && ord != nil {
			ord.Add(cell, cell)
		}
	}

	results, err := eng.MapCtx(ctx, flat)
	// MapCtx has delivered everything (canceled units never reach
	// Progress); one final pass pins the matrix to the authoritative
	// flat results.
	for i, r := range results {
		cell, rep := i/seeds, i%seeds
		byCell[cell][rep] = r
	}
	return byCell, err
}
