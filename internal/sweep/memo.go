package sweep

import "sync"

// Memo caches results by key with exactly-once execution: when several
// goroutines ask for the same key concurrently, one runs the function
// and the rest wait for its result (the classic singleflight shape,
// built on sync.Once so completed entries are lock-free to reuse).
//
// Cached values are shared between callers. If results are mutable,
// callers must copy before modifying — the harness layer does this for
// experiment cells.
type Memo[R any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[R]
}

type memoEntry[R any] struct {
	once sync.Once
	val  R
	err  error
}

// NewMemo returns an empty cache.
func NewMemo[R any]() *Memo[R] {
	return &Memo[R]{m: make(map[string]*memoEntry[R])}
}

// Do returns the cached result for key, running fn to fill it on first
// use. cached reports whether an entry already existed when Do was
// called (a concurrent first caller may still be running it; Do waits).
func (m *Memo[R]) Do(key string, fn func() (R, error)) (val R, err error, cached bool) {
	m.mu.Lock()
	e, ok := m.m[key]
	if !ok {
		e = &memoEntry[R]{}
		m.m[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err, ok
}

// Len reports the number of distinct keys ever requested.
func (m *Memo[R]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
