package sweep

import "sync"

// Ordered re-sequences out-of-order completions into input order, so a
// concurrent sweep can stream rows to a CSV or JSON-lines file that is
// byte-identical to a serial run's. Feed it from an Engine's Progress
// callback; emit is called with a contiguous prefix of indices, in
// order, as soon as each becomes available.
type Ordered[T any] struct {
	mu   sync.Mutex
	next int
	buf  map[int]T
	emit func(index int, v T)
}

// NewOrdered returns an emitter that forwards values to emit in index
// order starting at 0.
func NewOrdered[T any](emit func(index int, v T)) *Ordered[T] {
	return &Ordered[T]{buf: make(map[int]T), emit: emit}
}

// Add accepts the value for index, buffering it until all lower indices
// have been emitted. Each index must be added exactly once.
func (o *Ordered[T]) Add(index int, v T) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.buf[index] = v
	for {
		next, ok := o.buf[o.next]
		if !ok {
			return
		}
		delete(o.buf, o.next)
		o.emit(o.next, next)
		o.next++
	}
}
