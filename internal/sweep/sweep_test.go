package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

// square is a deterministic runner for engine tests.
func square(x int) (int, error) { return x * x, nil }

func TestMapReturnsResultsInInputOrder(t *testing.T) {
	t.Parallel()
	cfgs := make([]int, 100)
	for i := range cfgs {
		cfgs[i] = i
	}
	for _, parallel := range []int{1, 4, 16} {
		e := &Engine[int, int]{Run: square, Parallel: parallel}
		got, err := e.Map(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("parallel=%d: result[%d] = %d, want %d", parallel, i, r, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	cfgs := []int{7, 3, 3, 9, 1, 7, 0, 12}
	run := func(p int) []int {
		e := &Engine[int, int]{Run: square, Parallel: p}
		got, err := e.Map(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	serial := run(1)
	concurrent := run(8)
	if !reflect.DeepEqual(serial, concurrent) {
		t.Errorf("parallel 1 vs 8 differ: %v vs %v", serial, concurrent)
	}
}

func TestMemoRunsEachKeyOnce(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	e := &Engine[int, int]{
		Run: func(x int) (int, error) {
			calls.Add(1)
			return x * x, nil
		},
		Key:      func(x int) string { return fmt.Sprint(x) },
		Memo:     NewMemo[int](),
		Parallel: 8,
	}
	cfgs := []int{5, 5, 5, 2, 2, 5, 2, 9}
	got, err := e.Map(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range cfgs {
		if got[i] != x*x {
			t.Errorf("result[%d] = %d, want %d", i, got[i], x*x)
		}
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("runner called %d times for 3 distinct keys", n)
	}
	// A second Map over the same memo runs nothing new.
	if _, err := e.Map([]int{5, 9}); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("runner re-ran cached keys: %d calls", n)
	}
	if e.Memo.Len() != 3 {
		t.Errorf("memo has %d keys, want 3", e.Memo.Len())
	}
}

func TestEmptyKeyDisablesMemo(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	e := &Engine[int, int]{
		Run: func(x int) (int, error) {
			calls.Add(1)
			return x, nil
		},
		Key:  func(int) string { return "" },
		Memo: NewMemo[int](),
	}
	if _, err := e.Map([]int{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("empty key should bypass the memo; got %d calls, want 3", n)
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	t.Parallel()
	boom := func(i int) error { return fmt.Errorf("cell %d failed", i) }
	e := &Engine[int, int]{
		Run: func(x int) (int, error) {
			if x%2 == 1 {
				return 0, boom(x)
			}
			return x, nil
		},
		Parallel: 8,
	}
	cfgs := []int{0, 2, 5, 4, 3, 7}
	_, err := e.Map(cfgs)
	if err == nil || err.Error() != "cell 5 failed" {
		t.Errorf("err = %v, want the lowest-index failure (cell 5)", err)
	}
}

func TestMemoCachesErrors(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	m := NewMemo[int]()
	fail := func() (int, error) {
		calls.Add(1)
		return 0, errors.New("nope")
	}
	if _, err, cached := m.Do("k", fail); err == nil || cached {
		t.Fatalf("first Do: err=%v cached=%v", err, cached)
	}
	if _, err, cached := m.Do("k", fail); err == nil || !cached {
		t.Fatalf("second Do: err=%v cached=%v", err, cached)
	}
	if calls.Load() != 1 {
		t.Errorf("failing fn ran %d times, want 1", calls.Load())
	}
}

func TestProgressCountsEveryCell(t *testing.T) {
	t.Parallel()
	var seen []Update[int, int]
	e := &Engine[int, int]{
		Run:      square,
		Parallel: 4,
		Progress: func(u Update[int, int]) { seen = append(seen, u) },
	}
	cfgs := []int{1, 2, 3, 4, 5}
	if _, err := e.Map(cfgs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(cfgs) {
		t.Fatalf("progress fired %d times, want %d", len(seen), len(cfgs))
	}
	for i, u := range seen {
		if u.Done != i+1 || u.Total != len(cfgs) {
			t.Errorf("update %d: Done=%d Total=%d", i, u.Done, u.Total)
		}
		if u.Result != u.Config*u.Config {
			t.Errorf("update %d: result %d for config %d", i, u.Result, u.Config)
		}
	}
}

func TestMapCtxCanceledUpFront(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	e := &Engine[int, int]{
		Run: func(x int) (int, error) {
			calls.Add(1)
			return x, nil
		},
		Parallel: 4,
	}
	_, err := e.MapCtx(ctx, []int{1, 2, 3, 4, 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n > 4 {
		t.Errorf("canceled sweep still ran %d cells", n)
	}
}

func TestMapCtxStopsDispatchingMidSweep(t *testing.T) {
	t.Parallel()
	for _, parallel := range []int{1, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		var progressed atomic.Int64
		e := &Engine[int, int]{
			Run: func(x int) (int, error) {
				if calls.Add(1) == 2 {
					// Cancel from inside the sweep: everything not yet
					// dispatched must be skipped.
					cancel()
				}
				return x * x, nil
			},
			Parallel: parallel,
			Progress: func(u Update[int, int]) { progressed.Add(1) },
		}
		cfgs := make([]int, 64)
		for i := range cfgs {
			cfgs[i] = i
		}
		results, err := e.MapCtx(ctx, cfgs)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%d: err = %v, want context.Canceled", parallel, err)
		}
		ran := calls.Load()
		if ran >= int64(len(cfgs)) {
			t.Errorf("parallel=%d: cancellation did not stop dispatch (%d cells ran)", parallel, ran)
		}
		if progressed.Load() != ran {
			t.Errorf("parallel=%d: %d progress updates for %d completed cells", parallel, progressed.Load(), ran)
		}
		// Completed cells still returned their results.
		if results[0] != 0 && results[1] != 1 && parallel == 1 {
			t.Errorf("parallel=1: early results lost: %v", results[:2])
		}
		cancel()
	}
}

func TestOrderedEmitsContiguousPrefix(t *testing.T) {
	t.Parallel()
	var got []int
	o := NewOrdered[int](func(i, v int) {
		if i != len(got) {
			t.Errorf("emitted index %d out of order", i)
		}
		got = append(got, v)
	})
	// Deliver completions out of order.
	for _, i := range []int{3, 1, 0, 4, 2} {
		o.Add(i, i*10)
	}
	want := []int{0, 10, 20, 30, 40}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("emitted %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Stddev-want) > 1e-12 {
		t.Errorf("stddev = %g, want %g", s.Stddev, want)
	}
	if one := Summarize([]float64{3}); one.Stddev != 0 || one.Mean != 3 {
		t.Errorf("single sample: %+v", one)
	}
	if zero := Summarize(nil); zero.N != 0 || zero.Min != 0 || zero.Max != 0 {
		t.Errorf("empty: %+v", zero)
	}
}
