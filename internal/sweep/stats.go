package sweep

import "math"

// Summary aggregates one metric over replicate runs: the mean and
// sample standard deviation give the confidence band a single paper-seed
// run cannot (the paper reports single measurements; multi-seed sweeps
// quantify the provisioning-jitter spread around them).
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"` // sample stddev; 0 when N < 2
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize reduces replicate measurements to a Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	// Summation rounding can push the mean an ULP past the range; clamp
	// so Min <= Mean <= Max always holds.
	s.Mean = math.Max(s.Min, math.Min(s.Max, s.Mean))
	if s.N >= 2 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}
