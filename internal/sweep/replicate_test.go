package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// repUnit is the derived configuration for one (cell, replicate) pair in
// these tests: enough structure to verify placement and derivation.
type repUnit struct {
	Cell int
	Rep  int
}

func deriveUnit(cell repUnit, rep int) repUnit {
	return repUnit{Cell: cell.Cell, Rep: rep}
}

// runUnit is a deterministic runner whose result encodes its unit.
func runUnit(u repUnit) (int, error) {
	return u.Cell*100 + u.Rep, nil
}

func repCells(n int) []repUnit {
	cells := make([]repUnit, n)
	for i := range cells {
		cells[i] = repUnit{Cell: i}
	}
	return cells
}

func TestMapReplicatesPlacesBySeedIndex(t *testing.T) {
	t.Parallel()
	cells := repCells(6)
	for _, parallel := range []int{1, 4, 16} {
		e := &Engine[repUnit, int]{Run: runUnit, Parallel: parallel}
		got, err := e.MapReplicates(context.Background(), cells, 5, deriveUnit, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(cells) {
			t.Fatalf("parallel=%d: %d cells, want %d", parallel, len(got), len(cells))
		}
		for cell, runs := range got {
			if len(runs) != 5 {
				t.Fatalf("parallel=%d: cell %d has %d runs, want 5", parallel, cell, len(runs))
			}
			for rep, r := range runs {
				if r != cell*100+rep {
					t.Errorf("parallel=%d: [%d][%d] = %d, want %d", parallel, cell, rep, r, cell*100+rep)
				}
			}
		}
	}
}

func TestMapReplicatesDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	cells := repCells(8)
	run := func(p int) [][]int {
		e := &Engine[repUnit, int]{Run: runUnit, Parallel: p}
		got, err := e.MapReplicates(context.Background(), cells, 4, deriveUnit, nil)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if serial, concurrent := run(1), run(8); !reflect.DeepEqual(serial, concurrent) {
		t.Errorf("parallel 1 vs 8 differ:\n%v\n%v", serial, concurrent)
	}
}

func TestMapReplicatesReduceStreamsInCellOrder(t *testing.T) {
	t.Parallel()
	cells := repCells(10)
	// A blocking runner releases units in an adversarial order: the last
	// flattened unit first, then backwards. The reduction order must
	// still be cell 0, 1, 2, ... — buffered, not completion-driven.
	const seeds = 3
	total := len(cells) * seeds
	release := make([]chan struct{}, total)
	for i := range release {
		release[i] = make(chan struct{})
	}
	started := make(chan int, total)
	e := &Engine[repUnit, int]{
		Run: func(u repUnit) (int, error) {
			i := u.Cell*seeds + u.Rep
			started <- i
			<-release[i]
			return u.Cell*100 + u.Rep, nil
		},
		Parallel: total,
	}
	go func() {
		seen := make(map[int]bool)
		for i := range started {
			seen[i] = true
			if len(seen) == total {
				break
			}
		}
		for i := total - 1; i >= 0; i-- {
			close(release[i])
		}
	}()
	var order []int
	var rows [][]int
	_, err := e.MapReplicates(context.Background(), cells, seeds, deriveUnit,
		func(cell int, runs []int) {
			order = append(order, cell)
			rows = append(rows, append([]int(nil), runs...))
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range order {
		if cell != i {
			t.Fatalf("reduce order %v: position %d got cell %d", order, i, cell)
		}
	}
	if len(order) != len(cells) {
		t.Fatalf("reduce ran for %d cells, want %d", len(order), len(cells))
	}
	for cell, runs := range rows {
		for rep, r := range runs {
			if r != cell*100+rep {
				t.Errorf("reduce cell %d rep %d = %d, want %d", cell, rep, r, cell*100+rep)
			}
		}
	}
}

func TestMapReplicatesFailedCellSkipsReduce(t *testing.T) {
	t.Parallel()
	cells := repCells(5)
	boom := errors.New("replicate 2 of cell 3 failed")
	e := &Engine[repUnit, int]{
		Run: func(u repUnit) (int, error) {
			if u.Cell == 3 && u.Rep == 2 {
				return 0, boom
			}
			return runUnit(u)
		},
		Parallel: 4,
	}
	var reduced []int
	_, err := e.MapReplicates(context.Background(), cells, 4, deriveUnit,
		func(cell int, _ []int) { reduced = append(reduced, cell) })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	want := []int{0, 1, 2, 4}
	if !reflect.DeepEqual(reduced, want) {
		t.Errorf("reduced cells %v, want %v (failed cell skipped, later cells still reduced)", reduced, want)
	}
}

func TestMapReplicatesErrorIsLowestFlattenedIndex(t *testing.T) {
	t.Parallel()
	cells := repCells(4)
	e := &Engine[repUnit, int]{
		Run: func(u repUnit) (int, error) {
			if u.Rep == 1 {
				return 0, fmt.Errorf("cell %d rep %d", u.Cell, u.Rep)
			}
			return runUnit(u)
		},
		Parallel: 8,
	}
	_, err := e.MapReplicates(context.Background(), cells, 3, deriveUnit, nil)
	if err == nil || err.Error() != "cell 0 rep 1" {
		t.Fatalf("err = %v, want the lowest flattened failure (cell 0 rep 1)", err)
	}
}

func TestMapReplicatesForwardsProgress(t *testing.T) {
	t.Parallel()
	cells := repCells(3)
	var updates atomic.Int64
	e := &Engine[repUnit, int]{
		Run:      runUnit,
		Parallel: 2,
		Progress: func(u Update[repUnit, int]) { updates.Add(1) },
	}
	if _, err := e.MapReplicates(context.Background(), cells, 4, deriveUnit, nil); err != nil {
		t.Fatal(err)
	}
	if got := updates.Load(); got != int64(len(cells)*4) {
		t.Errorf("caller Progress saw %d updates, want %d (one per replicate unit)", got, len(cells)*4)
	}
}

func TestMapReplicatesCanceledContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := &Engine[repUnit, int]{Run: runUnit, Parallel: 2}
	reduces := 0
	_, err := e.MapReplicates(ctx, repCells(4), 3, deriveUnit,
		func(int, []int) { reduces++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if reduces != 0 {
		t.Errorf("reduce ran %d times on a pre-canceled sweep, want 0", reduces)
	}
}

func TestMapReplicatesSeedsDefaultToOne(t *testing.T) {
	t.Parallel()
	e := &Engine[repUnit, int]{Run: runUnit, Parallel: 1}
	got, err := e.MapReplicates(context.Background(), repCells(3), 0, deriveUnit, nil)
	if err != nil {
		t.Fatal(err)
	}
	for cell, runs := range got {
		if len(runs) != 1 || runs[0] != cell*100 {
			t.Errorf("cell %d runs = %v, want the single replicate-0 result", cell, runs)
		}
	}
}
