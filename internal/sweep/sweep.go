// Package sweep runs experiment matrices concurrently. It is the
// engine behind the harness's figure grids and ablations and the
// wfbench/wfsim CLIs: a worker pool that maps a list of configurations
// through a runner function, returning results in input order no matter
// how the cells were scheduled.
//
// The engine is generic so that anything shaped like "many independent
// cells, one result each" can use it — experiment cells, application
// profiles, replicate seeds. Determinism is by construction: the runner
// must be a pure function of its configuration (each simulation builds
// its own engine and RNG from the config), so results are bit-for-bit
// identical at any parallelism. Duplicate cells are memoized: a Key
// function names each configuration, and a shared Memo guarantees every
// distinct key runs exactly once even when requested concurrently.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Engine maps configurations to results with a bounded worker pool.
type Engine[C, R any] struct {
	// Run executes one cell. It must be safe for concurrent use and
	// deterministic in its configuration. Required.
	Run func(C) (R, error)

	// Key names a configuration for memoization. A nil Key, a nil Memo,
	// or an empty key string disables caching for that cell.
	Key func(C) string

	// Parallel bounds concurrent Run calls; <= 0 means GOMAXPROCS.
	Parallel int

	// Memo caches results by key across Map calls (and across Engines
	// sharing the Memo). Duplicate keys in one batch run only once.
	Memo *Memo[R]

	// Progress, if set, is called once per completed cell in completion
	// order. Calls are serialized; the callback must not call back into
	// the engine.
	Progress func(Update[C, R])
}

// Update reports one completed cell to a Progress callback.
type Update[C, R any] struct {
	Index  int // position in the Map input
	Done   int // cells completed so far, including this one
	Total  int // cells in this Map call
	Config C
	Result R
	Err    error
	Cached bool // result came from the memo without running
}

// Map runs every configuration and returns the results in input order.
// All cells are attempted even when some fail; the returned error is the
// one from the lowest-index failing cell, so error reporting is as
// deterministic as the results themselves.
func (e *Engine[C, R]) Map(cfgs []C) ([]R, error) {
	return e.MapCtx(context.Background(), cfgs)
}

// MapCtx is Map with cancellation: once ctx is done no further cell
// starts. Cells already running finish (a simulation is not
// interruptible mid-run), their results are delivered to Progress as
// usual, and every unstarted cell fails with ctx's error — which Map's
// lowest-index rule then reports, so a canceled sweep returns promptly
// with ctx.Err() unless an earlier cell failed on its own.
func (e *Engine[C, R]) MapCtx(ctx context.Context, cfgs []C) ([]R, error) {
	if e.Run == nil {
		return nil, fmt.Errorf("sweep: Engine.Run is nil")
	}
	workers := e.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]R, len(cfgs))
	errs := make([]error, len(cfgs))

	var mu sync.Mutex // serializes Progress and the done counter
	done := 0
	report := func(i int, r R, err error, cached bool) {
		if e.Progress == nil {
			return
		}
		mu.Lock()
		done++
		e.Progress(Update[C, R]{
			Index: i, Done: done, Total: len(cfgs),
			Config: cfgs[i], Result: r, Err: err, Cached: cached,
		})
		mu.Unlock()
	}

	runOne := func(i int) {
		cfg := cfgs[i]
		var key string
		if e.Key != nil && e.Memo != nil {
			key = e.Key(cfg)
		}
		var (
			r      R
			err    error
			cached bool
		)
		if key != "" {
			r, err, cached = e.Memo.Do(key, func() (R, error) { return e.Run(cfg) })
		} else {
			r, err = e.Run(cfg)
		}
		results[i], errs[i] = r, err
		report(i, r, err, cached)
	}

	if workers <= 1 {
		for i := range cfgs {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			runOne(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					runOne(i)
				}
			}()
		}
	feed:
		for i := range cfgs {
			// Checked before the select: when a worker is free AND ctx is
			// done, select would pick a case at random and could keep
			// dispatching cells after cancellation.
			if err := ctx.Err(); err != nil {
				for j := i; j < len(cfgs); j++ {
					errs[j] = err
				}
				break feed
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
				for j := i; j < len(cfgs); j++ {
					errs[j] = ctx.Err()
				}
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
