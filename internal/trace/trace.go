// Package trace post-processes task execution spans into the artifacts a
// performance study needs: per-node Gantt charts, utilization timelines
// and phase summaries. It consumes the spans the workflow engine records.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"ec2wfsim/internal/units"
	"ec2wfsim/internal/wms"
)

// Trace wraps a run's spans with derived views.
type Trace struct {
	Spans    []wms.Span
	Makespan float64
}

// New builds a trace from engine output.
func New(spans []wms.Span, makespan float64) *Trace {
	return &Trace{Spans: spans, Makespan: makespan}
}

// NodeNames returns the distinct node names in first-seen order.
func (t *Trace) NodeNames() []string {
	seen := make(map[string]bool)
	var names []string
	for _, s := range t.Spans {
		if !seen[s.Node] {
			seen[s.Node] = true
			names = append(names, s.Node)
		}
	}
	sort.Strings(names)
	return names
}

// BusySeconds returns per-node slot-occupied seconds.
func (t *Trace) BusySeconds() map[string]float64 {
	busy := make(map[string]float64)
	for _, s := range t.Spans {
		busy[s.Node] += s.WriteEnd - s.Start
	}
	return busy
}

// StageSeconds splits each task's span into staging (input reads +
// startup) and execution (compute + output writes), summed per
// transformation. It quantifies where a storage system hurts.
func (t *Trace) StageSeconds() (staging, execution map[string]float64) {
	staging = make(map[string]float64)
	execution = make(map[string]float64)
	for _, s := range t.Spans {
		name := s.Task.Transformation
		staging[name] += s.Exec - s.Start
		execution[name] += s.WriteEnd - s.Exec
	}
	return staging, execution
}

// Utilization returns the fraction of the makespan each node's slots were
// busy, assuming slots = cores used by this trace's scheduler (the caller
// supplies coresPerNode).
func (t *Trace) Utilization(coresPerNode int) map[string]float64 {
	util := make(map[string]float64)
	if t.Makespan <= 0 || coresPerNode <= 0 {
		return util
	}
	for node, busy := range t.BusySeconds() {
		util[node] = busy / (t.Makespan * float64(coresPerNode))
	}
	return util
}

// Gantt renders a coarse per-node occupancy chart: one row per node, time
// bucketed into width columns, each cell showing how many tasks were
// running (0-9, '+' for more).
func (t *Trace) Gantt(width int) string {
	if width <= 0 {
		width = 80
	}
	nodes := t.NodeNames()
	var b strings.Builder
	fmt.Fprintf(&b, "Gantt (one column = %s)\n", units.Duration(t.Makespan/float64(width)))
	for _, node := range nodes {
		counts := make([]int, width)
		for _, s := range t.Spans {
			if s.Node != node {
				continue
			}
			lo := int(s.Start / t.Makespan * float64(width))
			hi := int(s.WriteEnd / t.Makespan * float64(width))
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				counts[i]++
			}
		}
		row := make([]byte, width)
		for i, c := range counts {
			switch {
			case c == 0:
				row[i] = '.'
			case c > 9:
				row[i] = '+'
			default:
				row[i] = byte('0' + c)
			}
		}
		fmt.Fprintf(&b, "%-10s %s\n", node, row)
	}
	return b.String()
}

// Summary renders a one-paragraph digest of the run.
func (t *Trace) Summary(coresPerNode int) string {
	var b strings.Builder
	completed, failed := 0, 0
	for _, s := range t.Spans {
		if s.Failed {
			failed++
		} else {
			completed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(&b, "tasks=%d (+%d failed attempts) makespan=%s\n",
			completed, failed, units.Duration(t.Makespan))
	} else {
		fmt.Fprintf(&b, "tasks=%d makespan=%s\n", completed, units.Duration(t.Makespan))
	}
	staging, execution := t.StageSeconds()
	names := make([]string, 0, len(staging))
	for n := range staging {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-14s staging %8s   execution %8s\n",
			n, units.Duration(staging[n]), units.Duration(execution[n]))
	}
	util := t.Utilization(coresPerNode)
	for _, node := range t.NodeNames() {
		fmt.Fprintf(&b, "  %-10s utilization %.0f%%\n", node, util[node]*100)
	}
	return b.String()
}
