package trace

import (
	"strings"
	"testing"

	"ec2wfsim/internal/wms"
	"ec2wfsim/internal/workflow"
)

func sampleSpans() []wms.Span {
	t1 := &workflow.Task{ID: "a", Transformation: "proj"}
	t2 := &workflow.Task{ID: "b", Transformation: "proj"}
	t3 := &workflow.Task{ID: "c", Transformation: "add"}
	return []wms.Span{
		{Task: t1, Node: "worker0", Start: 0, Exec: 2, WriteEnd: 10},
		{Task: t2, Node: "worker1", Start: 0, Exec: 1, WriteEnd: 8},
		{Task: t3, Node: "worker0", Start: 10, Exec: 12, WriteEnd: 20},
	}
}

func TestBusyAndUtilization(t *testing.T) {
	tr := New(sampleSpans(), 20)
	busy := tr.BusySeconds()
	if busy["worker0"] != 20 {
		t.Errorf("worker0 busy = %g, want 20", busy["worker0"])
	}
	if busy["worker1"] != 8 {
		t.Errorf("worker1 busy = %g, want 8", busy["worker1"])
	}
	util := tr.Utilization(1)
	if util["worker0"] != 1.0 {
		t.Errorf("worker0 utilization = %g, want 1.0", util["worker0"])
	}
	if util["worker1"] != 0.4 {
		t.Errorf("worker1 utilization = %g, want 0.4", util["worker1"])
	}
}

func TestStageSeconds(t *testing.T) {
	tr := New(sampleSpans(), 20)
	staging, execution := tr.StageSeconds()
	if staging["proj"] != 3 { // 2 + 1
		t.Errorf("proj staging = %g, want 3", staging["proj"])
	}
	if execution["proj"] != 15 { // 8 + 7
		t.Errorf("proj execution = %g, want 15", execution["proj"])
	}
	if staging["add"] != 2 || execution["add"] != 8 {
		t.Errorf("add split = %g/%g, want 2/8", staging["add"], execution["add"])
	}
}

func TestNodeNamesSorted(t *testing.T) {
	tr := New(sampleSpans(), 20)
	names := tr.NodeNames()
	if len(names) != 2 || names[0] != "worker0" || names[1] != "worker1" {
		t.Errorf("NodeNames = %v", names)
	}
}

func TestGanttRendersEveryNode(t *testing.T) {
	tr := New(sampleSpans(), 20)
	g := tr.Gantt(40)
	if !strings.Contains(g, "worker0") || !strings.Contains(g, "worker1") {
		t.Errorf("gantt missing nodes:\n%s", g)
	}
	// worker1 is idle for the second half: its row must contain dots.
	for _, line := range strings.Split(g, "\n") {
		if strings.HasPrefix(line, "worker1") && !strings.Contains(line, ".") {
			t.Errorf("worker1 row shows no idle time: %s", line)
		}
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	tr := New(sampleSpans(), 20)
	s := tr.Summary(1)
	for _, want := range []string{"tasks=3", "proj", "add", "utilization"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := New(nil, 0)
	if len(tr.NodeNames()) != 0 {
		t.Error("empty trace has nodes")
	}
	if u := tr.Utilization(8); len(u) != 0 {
		t.Error("empty trace has utilization entries")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New(sampleSpans(), 20)
	var buf strings.Builder
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 spans
		t.Fatalf("CSV lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "task,transformation,node,start") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "a,proj,worker0,0.000,2.000,10.000,2.000,8.000,0") {
		t.Errorf("first row = %q", lines[1])
	}
	if !strings.Contains(lines[0], "failed") {
		t.Errorf("header missing failed column: %q", lines[0])
	}
}

func TestWriteCSVFlagsFailedAttempts(t *testing.T) {
	spans := sampleSpans()
	spans[1].Failed = true
	var buf strings.Builder
	if err := New(spans, 20).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if !strings.HasSuffix(lines[2], ",1") {
		t.Errorf("failed attempt not flagged: %q", lines[2])
	}
	if !strings.HasSuffix(lines[1], ",0") {
		t.Errorf("successful attempt misflagged: %q", lines[1])
	}
}
