package trace

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV exports the trace as CSV (one row per task attempt) for
// external plotting: task id, transformation, node, start, exec-start and
// end timestamps, the derived staging and execution durations, and
// whether the attempt was killed by failure injection (failed attempts
// occupy slots too, so they are real rows, not noise).
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"task", "transformation", "node", "start", "exec", "end", "staging_s", "execution_s", "failed"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	for _, s := range t.Spans {
		failed := "0"
		if s.Failed {
			failed = "1"
		}
		row := []string{
			s.Task.ID,
			s.Task.Transformation,
			s.Node,
			fmt.Sprintf("%.3f", s.Start),
			fmt.Sprintf("%.3f", s.Exec),
			fmt.Sprintf("%.3f", s.WriteEnd),
			fmt.Sprintf("%.3f", s.Exec-s.Start),
			fmt.Sprintf("%.3f", s.WriteEnd-s.Exec),
			failed,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing CSV row for %s: %w", s.Task.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
