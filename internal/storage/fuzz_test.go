package storage

import (
	"fmt"
	"testing"
	"testing/quick"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// checkArbitraryWorkload asserts that a storage system survives an
// arbitrary write-once/read-many operation sequence from concurrent
// clients without deadlock, that the simulation clock only moves
// forward, and that the op counters add up. It is shared by the
// testing/quick property below and the native fuzz target.
func checkArbitraryWorkload(sysName string, seed uint64, opsRaw []uint16) error {
	if len(opsRaw) > 60 {
		opsRaw = opsRaw[:60]
	}
	sys, err := ByName(sysName)
	if err != nil {
		return err
	}
	workers := sys.MinWorkers()
	if sysName != "local" && workers < 2 {
		workers = 2
	}
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := cluster.New(e, net, rng.New(seed), cluster.Config{
		Workers:    workers,
		WorkerType: cluster.C1XLarge(),
		Extra:      sys.ExtraNodeTypes(),
	})
	if err != nil {
		return err
	}
	env := &Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(seed + 1)}
	if err := sys.Init(env); err != nil {
		return err
	}

	// Pre-stage a pool of inputs; generated ops write new files and read
	// files guaranteed to exist: the staged pool plus the same client's
	// earlier writes (write-once semantics with no cross-client
	// read-before-write races).
	r := rng.New(seed + 2)
	var staged []*workflow.File
	for i := 0; i < 4; i++ {
		staged = append(staged, &workflow.File{
			Name: fmt.Sprintf("in-%d", i),
			Size: float64(r.Intn(50)+1) * units.MB,
		})
	}
	sys.PreStage(staged)

	var wantReads, wantWrites int64
	nextID := 0
	// Spread the ops across the workers as concurrent client processes.
	perWorker := make([][]uint16, workers)
	for i, op := range opsRaw {
		perWorker[i%workers] = append(perWorker[i%workers], op)
	}
	for wi, ops := range perWorker {
		node := c.Workers[wi]
		// Precompute the op plan so expected counters are known
		// deterministically before the simulation runs.
		type plannedOp struct {
			read bool
			f    *workflow.File
		}
		readable := append([]*workflow.File{}, staged...)
		var plan []plannedOp
		for _, op := range ops {
			if op%2 == 0 {
				f := &workflow.File{Name: fmt.Sprintf("out-%d", nextID), Size: float64(op%2048+1) * units.KB}
				nextID++
				readable = append(readable, f)
				plan = append(plan, plannedOp{read: false, f: f})
				wantWrites++
			} else {
				plan = append(plan, plannedOp{read: true, f: readable[int(op)%len(readable)]})
				wantReads++
			}
		}
		e.Go("client", func(p *sim.Proc) {
			last := p.Now()
			for _, po := range plan {
				if po.read {
					sys.Read(p, node, po.f)
				} else {
					sys.Write(p, node, po.f)
				}
				if p.Now() < last {
					panic("time went backwards")
				}
				last = p.Now()
			}
		})
	}
	e.Run()
	st := sys.Stats()
	if st.Reads != wantReads || st.Writes != wantWrites {
		return fmt.Errorf("%s: counters reads=%d writes=%d, want reads=%d writes=%d",
			sysName, st.Reads, st.Writes, wantReads, wantWrites)
	}
	return nil
}

// Property: every storage system handles arbitrary workloads (see
// checkArbitraryWorkload).
func TestPropertyStorageSystemsHandleArbitraryWorkloads(t *testing.T) {
	for _, sysName := range Names() {
		sysName := sysName
		t.Run(sysName, func(t *testing.T) {
			f := func(seed uint64, opsRaw []uint16) bool {
				return checkArbitraryWorkload(sysName, seed, opsRaw) == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Error(err)
			}
		})
	}
}

// FuzzStorageOps is the native-fuzzing face of the same property, with a
// seed corpus that steers coverage into the striped and hash-placed
// paths: GlusterFS NUFA (local-first placement), GlusterFS distribute
// (hash placement), and PVFS (64 KB stripes over every node — reads of
// odd sizes exercise partial final stripes). Each ops byte pair becomes
// one client operation: even ops write a fresh file whose size the op
// also picks, odd ops re-read a random existing file.
func FuzzStorageOps(f *testing.F) {
	systems := Names()
	sysIndex := func(name string) uint8 {
		for i, n := range systems {
			if n == name {
				return uint8(i)
			}
		}
		f.Fatalf("unknown seed system %q", name)
		return 0
	}
	// Mixed read/write bursts per target system. 0x?1/odd bytes read,
	// even write; sizes up to 2 MB via op%2048 KB.
	corpus := []struct {
		sys  string
		seed uint64
		ops  []byte
	}{
		{"gluster-nufa", 1, []byte{0x00, 0x02, 0x01, 0x01, 0x07, 0xff, 0x10, 0x00}},
		{"gluster-nufa", 42, []byte{0x7f, 0xfe, 0x00, 0x01, 0x03, 0x03, 0x00, 0x00, 0x01, 0x0f}},
		{"gluster-dist", 7, []byte{0x00, 0x02, 0x01, 0x01, 0x07, 0xff, 0x10, 0x00}},
		{"gluster-dist", 99, []byte{0x04, 0x00, 0x05, 0x01, 0x06, 0x02, 0x07, 0x03, 0x01, 0x01}},
		{"pvfs", 3, []byte{0x00, 0x40, 0x01, 0x01, 0x3f, 0xff, 0x00, 0x41}},
		{"pvfs", 11, []byte{0x07, 0xfe, 0x00, 0x01, 0x00, 0x03, 0x01, 0x0b, 0x02, 0x00}},
		{"nfs", 5, []byte{0x00, 0x02, 0x01, 0x01}},
		{"s3", 5, []byte{0x00, 0x02, 0x01, 0x01, 0x01, 0x03}},
		{"local", 5, []byte{0x00, 0x02, 0x01, 0x01}},
		{"xtreemfs", 5, []byte{0x00, 0x02, 0x01, 0x01}},
	}
	for _, c := range corpus {
		f.Add(sysIndex(c.sys), c.seed, c.ops)
	}
	f.Fuzz(func(t *testing.T, sysIdx uint8, seed uint64, opsBytes []byte) {
		sysName := systems[int(sysIdx)%len(systems)]
		ops := make([]uint16, 0, len(opsBytes)/2)
		for i := 0; i+1 < len(opsBytes); i += 2 {
			ops = append(ops, uint16(opsBytes[i])<<8|uint16(opsBytes[i+1]))
		}
		if err := checkArbitraryWorkload(sysName, seed, ops); err != nil {
			t.Fatal(err)
		}
	})
}

// Property: for POSIX systems with page caches, re-reading the same file
// on the same node is never slower than the first read.
func TestPropertyRereadNeverSlower(t *testing.T) {
	for _, sysName := range []string{"local", "nfs", "gluster-nufa", "gluster-dist", "s3"} {
		sysName := sysName
		t.Run(sysName, func(t *testing.T) {
			f := func(sizeRaw uint16) bool {
				sys, _ := ByName(sysName)
				workers := 2
				if sysName == "local" {
					workers = 1
				}
				e := sim.NewEngine()
				net := flow.NewNet(e)
				c, err := cluster.New(e, net, rng.New(3), cluster.Config{
					Workers:    workers,
					WorkerType: cluster.C1XLarge(),
					Extra:      sys.ExtraNodeTypes(),
				})
				if err != nil {
					return false
				}
				env := &Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(4)}
				if err := sys.Init(env); err != nil {
					return false
				}
				file := &workflow.File{Name: "data", Size: float64(sizeRaw%2000+1) * units.MB}
				sys.PreStage([]*workflow.File{file})
				ok := true
				e.Go("reader", func(p *sim.Proc) {
					start := p.Now()
					sys.Read(p, c.Workers[0], file)
					firstRead := p.Now() - start
					start = p.Now()
					sys.Read(p, c.Workers[0], file)
					if p.Now()-start > firstRead+1e-9 {
						ok = false
					}
				})
				e.Run()
				return ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Error(err)
			}
		})
	}
}
