package storage

import (
	"fmt"
	"testing"
	"testing/quick"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// Property: every storage system survives arbitrary write-once/read-many
// operation sequences from concurrent clients without deadlock, the
// simulation clock only moves forward, and the op counters add up.
func TestPropertyStorageSystemsHandleArbitraryWorkloads(t *testing.T) {
	for _, sysName := range Names() {
		sysName := sysName
		t.Run(sysName, func(t *testing.T) {
			f := func(seed uint64, opsRaw []uint16) bool {
				if len(opsRaw) > 60 {
					opsRaw = opsRaw[:60]
				}
				sys, err := ByName(sysName)
				if err != nil {
					return false
				}
				workers := sys.MinWorkers()
				if sysName != "local" && workers < 2 {
					workers = 2
				}
				e := sim.NewEngine()
				net := flow.NewNet(e)
				c, err := cluster.New(e, net, rng.New(seed), cluster.Config{
					Workers:    workers,
					WorkerType: cluster.C1XLarge(),
					Extra:      sys.ExtraNodeTypes(),
				})
				if err != nil {
					return false
				}
				env := &Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(seed + 1)}
				if err := sys.Init(env); err != nil {
					return false
				}

				// Pre-stage a pool of inputs; generated ops write new files
				// and read files guaranteed to exist: the staged pool plus
				// the same client's earlier writes (write-once semantics
				// with no cross-client read-before-write races).
				r := rng.New(seed + 2)
				var staged []*workflow.File
				for i := 0; i < 4; i++ {
					staged = append(staged, &workflow.File{
						Name: fmt.Sprintf("in-%d", i),
						Size: float64(r.Intn(50)+1) * units.MB,
					})
				}
				sys.PreStage(staged)

				var wantReads, wantWrites int64
				nextID := 0
				// Spread the ops across the workers as concurrent client
				// processes.
				perWorker := make([][]uint16, workers)
				for i, op := range opsRaw {
					perWorker[i%workers] = append(perWorker[i%workers], op)
				}
				for wi, ops := range perWorker {
					node := c.Workers[wi]
					ops := ops
					// Precompute the op plan so expected counters are known
					// deterministically before the simulation runs.
					type plannedOp struct {
						read bool
						f    *workflow.File
					}
					readable := append([]*workflow.File{}, staged...)
					var plan []plannedOp
					for _, op := range ops {
						if op%2 == 0 {
							f := &workflow.File{Name: fmt.Sprintf("out-%d", nextID), Size: float64(op%2048+1) * units.KB}
							nextID++
							readable = append(readable, f)
							plan = append(plan, plannedOp{read: false, f: f})
							wantWrites++
						} else {
							plan = append(plan, plannedOp{read: true, f: readable[int(op)%len(readable)]})
							wantReads++
						}
					}
					e.Go("client", func(p *sim.Proc) {
						last := p.Now()
						for _, po := range plan {
							if po.read {
								sys.Read(p, node, po.f)
							} else {
								sys.Write(p, node, po.f)
							}
							if p.Now() < last {
								panic("time went backwards")
							}
							last = p.Now()
						}
					})
				}
				e.Run()
				st := sys.Stats()
				return st.Reads == wantReads && st.Writes == wantWrites
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: for POSIX systems with page caches, re-reading the same file
// on the same node is never slower than the first read.
func TestPropertyRereadNeverSlower(t *testing.T) {
	for _, sysName := range []string{"local", "nfs", "gluster-nufa", "gluster-dist", "s3"} {
		sysName := sysName
		t.Run(sysName, func(t *testing.T) {
			f := func(sizeRaw uint16) bool {
				sys, _ := ByName(sysName)
				workers := 2
				if sysName == "local" {
					workers = 1
				}
				e := sim.NewEngine()
				net := flow.NewNet(e)
				c, err := cluster.New(e, net, rng.New(3), cluster.Config{
					Workers:    workers,
					WorkerType: cluster.C1XLarge(),
					Extra:      sys.ExtraNodeTypes(),
				})
				if err != nil {
					return false
				}
				env := &Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(4)}
				if err := sys.Init(env); err != nil {
					return false
				}
				file := &workflow.File{Name: "data", Size: float64(sizeRaw%2000+1) * units.MB}
				sys.PreStage([]*workflow.File{file})
				ok := true
				e.Go("reader", func(p *sim.Proc) {
					start := p.Now()
					sys.Read(p, c.Workers[0], file)
					firstRead := p.Now() - start
					start = p.Now()
					sys.Read(p, c.Workers[0], file)
					if p.Now()-start > firstRead+1e-9 {
						ok = false
					}
				})
				e.Run()
				return ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Error(err)
			}
		})
	}
}
