package storage

import (
	"fmt"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/workflow"
)

// GlusterFS lookup costs: the translator stack resolves file locations by
// querying peers, so metadata latency grows mildly with the volume's node
// count.
const (
	glusterBaseLatency    = 0.0008
	glusterPerNodeLatency = 0.0002
)

// GlusterMode selects the translator configuration.
type GlusterMode int

// The two configurations the paper deploys: in both, every node is client
// and server over its local RAID0 volume.
const (
	// NUFA (non-uniform file access) writes new files to the local disk;
	// reads go wherever the file was created.
	NUFA GlusterMode = iota
	// Distribute places files by filename hash across all nodes.
	Distribute
)

// Gluster models a GlusterFS volume spanning the workers' local disks.
type Gluster struct {
	Mode GlusterMode

	env    *Env
	loc    map[*workflow.File]*cluster.Node
	caches map[*cluster.Node]*PageCache
	stats  Stats
}

// NewGluster returns a GlusterFS system in the given mode.
func NewGluster(mode GlusterMode) *Gluster { return &Gluster{Mode: mode} }

// Name implements System.
func (g *Gluster) Name() string {
	if g.Mode == NUFA {
		return "gluster-nufa"
	}
	return "gluster-dist"
}

// Description implements System.
func (g *Gluster) Description() string {
	if g.Mode == NUFA {
		return "GlusterFS NUFA: writes land on the local disk, reads follow the file"
	}
	return "GlusterFS distribute: files placed by filename hash across all nodes"
}

// MinWorkers implements System: "the GlusterFS and PVFS configurations
// used require at least two nodes to construct a valid file system".
func (g *Gluster) MinWorkers() int { return 2 }

// ExtraNodeTypes implements System: GlusterFS runs on the workers.
func (g *Gluster) ExtraNodeTypes() []cluster.InstanceType { return nil }

// Init implements System.
func (g *Gluster) Init(env *Env) error {
	if err := checkInit(g, env); err != nil {
		return err
	}
	g.env = env
	g.loc = make(map[*workflow.File]*cluster.Node)
	g.caches = make(map[*cluster.Node]*PageCache, len(env.Workers))
	for _, w := range env.Workers {
		g.caches[w] = NewPageCache(w)
	}
	return nil
}

// hashOwner picks the distribute-mode placement for a file.
func (g *Gluster) hashOwner(f *workflow.File) *cluster.Node {
	h := rng.HashString(f.Name)
	return g.env.Workers[int(h%uint64(len(g.env.Workers)))]
}

// PreStage implements System. Inputs are spread round-robin in NUFA mode
// (they were copied onto the volume node by node) and by hash in
// distribute mode.
func (g *Gluster) PreStage(files []*workflow.File) {
	for i, f := range files {
		if g.Mode == Distribute {
			g.loc[f] = g.hashOwner(f)
		} else {
			g.loc[f] = g.env.Workers[i%len(g.env.Workers)]
		}
	}
}

// lookupLatency is the metadata cost of one operation.
func (g *Gluster) lookupLatency() float64 {
	return glusterBaseLatency + glusterPerNodeLatency*float64(len(g.env.Workers))
}

// Read implements System.
func (g *Gluster) Read(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	g.stats.Reads++
	p.Sleep(g.lookupLatency())
	if g.caches[node].Lookup(f) {
		g.stats.CacheHits++
		return
	}
	g.stats.CacheMisses++
	owner, ok := g.loc[f]
	if !ok {
		panic(fmt.Sprintf("gluster: read of file %q that was never written or staged", f.Name))
	}
	if owner != node {
		g.stats.NetworkBytes += f.Size
	}
	readRemote(p, owner, node, f.Size)
	g.caches[node].Insert(f)
}

// Write implements System.
func (g *Gluster) Write(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	g.stats.Writes++
	p.Sleep(g.lookupLatency())
	owner := node
	if g.Mode == Distribute {
		owner = g.hashOwner(f)
	}
	if owner != node {
		g.stats.NetworkBytes += f.Size
	}
	writeRemote(p, node, owner, f.Size)
	g.loc[f] = owner
	g.caches[node].Insert(f)
}

// Stats implements System.
func (g *Gluster) Stats() Stats { return g.stats }

// Owner reports which node holds f (nil if unknown), letting a data-aware
// scheduler exploit NUFA locality.
func (g *Gluster) Owner(f *workflow.File) *cluster.Node { return g.loc[f] }
