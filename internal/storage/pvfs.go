package storage

import (
	"fmt"
	"math"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// PVFS 2.6.3 parameters. The paper had to run this old release (2.8.x
// crashed on EC2), which lacks the small-file optimizations added later:
// creates and opens take several metadata round trips across the striped
// metadata servers, so MB-scale files pay a stiff fixed cost.
const (
	pvfsStripeSize    = 64 * units.KB
	pvfsCreateLatency = 0.110 // create + layout allocation across nodes
	pvfsOpenLatency   = 0.045 // lookup + layout fetch
	// pvfsClientStreamRate caps a single file descriptor's throughput:
	// the 2.6.3 kernel client moves data through a small request window
	// per open file, so one reader cannot saturate the stripe set even
	// when the servers have headroom. Combined with the absent client
	// cache this is what makes PVFS "relatively poor" for Broadband's
	// repeated 1.2 GB velocity-model reads.
	pvfsClientStreamRate = 25 * units.MB
)

// PVFS models the parallel file system striped across the workers' local
// volumes, with distributed metadata (the paper's configuration: every
// node is both client and I/O server).
//
// Unlike the POSIX network file systems, the PVFS kernel client performs
// no client-side data caching (by design, to avoid coherence protocols),
// so every read fetches its stripes again. Combined with the missing
// small-file optimizations, this is why the paper finds PVFS poor for
// Montage and Broadband, whose files are re-read heavily.
type PVFS struct {
	env   *Env
	start map[*workflow.File]int // first stripe server index
	stats Stats
	// res is the per-shard resource scratch reused across stripedIO
	// calls; safe because Batch.Add copies it into the shard record
	// before the process can park.
	res []*flow.Resource
}

// NewPVFS returns the PVFS system.
func NewPVFS() *PVFS { return &PVFS{} }

// Name implements System.
func (v *PVFS) Name() string { return "pvfs" }

// Description implements System.
func (v *PVFS) Description() string {
	return "PVFS 2.6.3 striped over all workers (64 KB stripes, distributed metadata)"
}

// MinWorkers implements System.
func (v *PVFS) MinWorkers() int { return 2 }

// ExtraNodeTypes implements System.
func (v *PVFS) ExtraNodeTypes() []cluster.InstanceType { return nil }

// Init implements System.
func (v *PVFS) Init(env *Env) error {
	if err := checkInit(v, env); err != nil {
		return err
	}
	v.env = env
	v.start = make(map[*workflow.File]int)
	return nil
}

// PreStage implements System.
func (v *PVFS) PreStage(files []*workflow.File) {
	for _, f := range files {
		v.start[f] = int(rng.HashString(f.Name) % uint64(len(v.env.Workers)))
	}
}

// stripeWidth returns how many servers a file of the given size spans: a
// file smaller than one stripe lives on a single server; larger files
// round-robin until they cover the whole volume.
func (v *PVFS) stripeWidth(size float64) int {
	width := int(math.Ceil(size / pvfsStripeSize))
	if max := len(v.env.Workers); width > max {
		return max
	}
	if width < 1 {
		return 1
	}
	return width
}

// servers yields the stripe servers for f in placement order.
func (v *PVFS) servers(f *workflow.File) []*cluster.Node {
	startIdx, ok := v.start[f]
	if !ok {
		panic(fmt.Sprintf("pvfs: access to file %q that was never created", f.Name))
	}
	width := v.stripeWidth(f.Size)
	out := make([]*cluster.Node, width)
	for i := range out {
		out[i] = v.env.Workers[(startIdx+i)%len(v.env.Workers)]
	}
	return out
}

// stripedIO fans the file out over its stripe servers in parallel, each
// shard crossing the server's disk (and the NICs when remote).
func (v *PVFS) stripedIO(p *sim.Proc, node *cluster.Node, f *workflow.File, write bool) {
	servers := v.servers(f)
	// A striped file is unavailable while ANY of its stripe servers is
	// down — the whole-file fan-out below needs every shard. This is what
	// makes node outages disproportionately expensive for PVFS. Rescan
	// after every blocking wait: an earlier server may have gone down
	// again while we waited on a later one (overlapping outages).
	for again := true; again; {
		again = false
		for _, s := range servers {
			if s.Down() {
				s.WaitUp(p)
				again = true
			}
		}
	}
	share := f.Size / float64(len(servers))
	// All shards of one logical file move through the client's request
	// window, modelled as a pooled rate cap shared by the shard
	// transfers. The shards register through a Batch: one reallocation
	// for the whole fan-out instead of one per stripe server.
	window := v.env.Net.AcquireCap("pvfs-client-window", pvfsClientStreamRate)
	b := v.env.Net.NewBatch()
	for _, s := range servers {
		res := append(v.res[:0], window)
		if write {
			res = append(res, s.Disk.WriteResource())
			if s != node {
				res = append(res, node.NICOut, s.NICIn)
			}
		} else {
			res = append(res, s.Disk.ReadResource())
			if s != node {
				res = append(res, s.NICOut, node.NICIn)
			}
		}
		if s != node {
			v.stats.NetworkBytes += share
		}
		b.Add(share, res...)
		v.res = res
	}
	b.Run(p)
	v.env.Net.ReleaseCap(window)
}

// Read implements System. Every read is a cache miss by construction: the
// PVFS client does not cache data.
func (v *PVFS) Read(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	v.stats.Reads++
	v.stats.CacheMisses++
	p.Sleep(pvfsOpenLatency)
	v.stripedIO(p, node, f, false)
}

// Write implements System.
func (v *PVFS) Write(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	v.stats.Writes++
	p.Sleep(pvfsCreateLatency)
	if _, ok := v.start[f]; !ok {
		v.start[f] = int(rng.HashString(f.Name) % uint64(len(v.env.Workers)))
	}
	v.stripedIO(p, node, f, true)
}

// Stats implements System.
func (v *PVFS) Stats() Stats { return v.stats }
