package storage

import (
	"container/list"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// osReserve is RAM the kernel and daemons keep away from the page cache.
const osReserve = 512 * units.MiB

// PageCache models a node's Linux page cache over workflow files: reads
// and writes populate it, and its usable capacity shrinks as running tasks
// claim anonymous memory. This dynamic capacity is what differentiates the
// applications: Montage's small tasks leave gigabytes of cache (so
// re-reads within a node are free on every file system), while Broadband's
// multi-GB tasks squeeze the cache to nothing — which is exactly why the
// paper finds that only S3's disk-backed client cache helps Broadband.
type PageCache struct {
	node    *cluster.Node
	entries map[*workflow.File]*list.Element
	lru     *list.List // front = most recently used
	size    float64
	// epoch mirrors the node's memory epoch: when an outage reboots the
	// node, its RAM — and therefore this cache — is lost.
	epoch int64

	Hits   int64
	Misses int64
}

// syncEpoch drops the cache when the node rebooted since the last
// access (page caches live in RAM; outages erase them).
func (c *PageCache) syncEpoch() {
	if c.epoch == c.node.MemEpoch() {
		return
	}
	c.epoch = c.node.MemEpoch()
	c.entries = make(map[*workflow.File]*list.Element)
	c.lru.Init()
	c.size = 0
}

// NewPageCache returns an empty cache bound to node's memory.
func NewPageCache(node *cluster.Node) *PageCache {
	return &PageCache{
		node:    node,
		entries: make(map[*workflow.File]*list.Element),
		lru:     list.New(),
	}
}

// Capacity returns the bytes currently available to the cache: total RAM
// minus the OS reserve and the resident memory of running tasks.
func (c *PageCache) Capacity() float64 {
	cap := c.node.Type.Memory - osReserve - float64(c.node.Memory.InUse())*units.MB
	if cap < 0 {
		return 0
	}
	return cap
}

// Size returns the bytes currently cached.
func (c *PageCache) Size() float64 { return c.size }

// trim evicts least-recently-used files until the cache fits the current
// capacity (memory pressure from tasks evicts cached data, as in Linux).
func (c *PageCache) trim() {
	cap := c.Capacity()
	for c.size > cap {
		back := c.lru.Back()
		if back == nil {
			break
		}
		f := back.Value.(*workflow.File)
		c.lru.Remove(back)
		delete(c.entries, f)
		c.size -= f.Size
	}
}

// Lookup reports whether f is fully cached, counting a hit or miss and
// refreshing recency. Memory pressure is applied first, so a file cached
// before a large task started may have been evicted by it.
func (c *PageCache) Lookup(f *workflow.File) bool {
	c.syncEpoch()
	c.trim()
	if el, ok := c.entries[f]; ok {
		c.lru.MoveToFront(el)
		c.Hits++
		return true
	}
	c.Misses++
	return false
}

// Insert adds f to the cache, evicting older entries to make room. Files
// larger than the current capacity are not cached (they would evict
// everything for nothing).
func (c *PageCache) Insert(f *workflow.File) {
	c.syncEpoch()
	if _, ok := c.entries[f]; ok {
		c.lru.MoveToFront(c.entries[f])
		return
	}
	cap := c.Capacity()
	if f.Size > cap {
		return
	}
	c.size += f.Size
	c.entries[f] = c.lru.PushFront(f)
	c.trim()
}
