package storage

import (
	"container/list"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// NFS client/server tuning, matching the paper's configuration: the async
// export option (server acknowledges writes once they reach its memory)
// and atime updates disabled (so reads cost one RPC, not a write-back).
const (
	nfsRPCLatency = 0.0012 // per-operation round trip inside EC2
	// flushChunk is the granularity at which the server's flusher daemon
	// drains dirty pages to disk.
	nfsFlushChunk = 64 * units.MB
	// nfsIncast is the per-additional-client efficiency loss at the
	// server: with many clients issuing concurrent requests the server's
	// effective throughput collapses below NIC line rate (request
	// scheduling, TCP incast). This is the mechanism behind the paper's
	// most surprising data point — Broadband on NFS getting *slower*
	// from 2 to 4 nodes, "consistent across repeated experiments".
	nfsIncast = 0.30
)

// NFS models a dedicated central file server. Every read and write crosses
// the server's NIC, which is the scalability cliff the paper observes:
// fine with few clients or low I/O, collapsing for Broadband at 4+ nodes.
type NFS struct {
	// ServerType is the instance type for the dedicated server:
	// m1.xlarge by default (the paper's best pick), m2.4xlarge in the
	// Broadband ablation.
	ServerType cluster.InstanceType
	// Async mirrors the paper's "async" export option. When false, every
	// write waits for the server's disk (first-write penalty included).
	Async bool
	// label distinguishes variants in reports.
	label string

	env          *Env
	server       *cluster.Node
	srvIn        *flow.Resource // server ingest path (incast-degraded)
	srvOut       *flow.Resource // server egress path (incast-degraded)
	clientCaches map[*cluster.Node]*PageCache

	// Server page cache: LRU over whole files.
	serverCache   map[*workflow.File]*list.Element
	serverLRU     *list.List
	serverSize    float64
	serverCap     float64
	dirty         float64
	dirtyLimit    float64
	flusherNotify *sim.Mailbox[struct{}]

	stats Stats
}

// NewNFS returns the paper's default NFS deployment: dedicated m1.xlarge
// server, async exports, atime off.
func NewNFS() *NFS {
	return &NFS{ServerType: cluster.M1XLarge(), Async: true, label: "nfs"}
}

// NewNFSBigServer returns the m2.4xlarge variant from the Broadband
// ablation (Section V.C).
func NewNFSBigServer() *NFS {
	return &NFS{ServerType: cluster.M24XLarge(), Async: true, label: "nfs-m2.4xlarge"}
}

// NewNFSSync returns a synchronous-export variant (ablation A-4).
func NewNFSSync() *NFS {
	return &NFS{ServerType: cluster.M1XLarge(), Async: false, label: "nfs-sync"}
}

// Name implements System.
func (n *NFS) Name() string { return n.label }

// Description implements System.
func (n *NFS) Description() string {
	mode := "async"
	if !n.Async {
		mode = "sync"
	}
	return "central NFS server on a dedicated " + n.ServerType.Name + " (" + mode + ", noatime)"
}

// MinWorkers implements System.
func (n *NFS) MinWorkers() int { return 1 }

// ExtraNodeTypes implements System.
func (n *NFS) ExtraNodeTypes() []cluster.InstanceType {
	return []cluster.InstanceType{n.ServerType}
}

// Init implements System.
func (n *NFS) Init(env *Env) error {
	if err := checkInit(n, env); err != nil {
		return err
	}
	n.env = env
	n.server = env.Extra[0]
	eff := n.server.Type.NICBandwidth / (1 + nfsIncast*float64(len(env.Workers)-1))
	n.srvIn = flow.NewResource("nfs-srv-in", eff)
	n.srvOut = flow.NewResource("nfs-srv-out", eff)
	n.clientCaches = make(map[*cluster.Node]*PageCache, len(env.Workers))
	for _, w := range env.Workers {
		n.clientCaches[w] = NewPageCache(w)
	}
	n.serverCache = make(map[*workflow.File]*list.Element)
	n.serverLRU = list.New()
	n.serverCap = n.server.Type.Memory - 1*units.GiB
	n.dirtyLimit = 0.4 * n.server.Type.Memory
	n.flusherNotify = sim.NewMailbox[struct{}](env.E)
	env.E.GoDaemon("nfs-flusher", n.flusher)
	return nil
}

// flusher is the server's write-back daemon: it drains dirty bytes to the
// server disk, competing with any synchronous traffic for the disk's write
// channel. It runs for the life of the simulation.
func (n *NFS) flusher(p *sim.Proc) {
	for {
		if n.dirty <= 0 {
			if _, ok := n.flusherNotify.Get(p); !ok {
				return
			}
			continue
		}
		chunk := n.dirty
		if chunk > nfsFlushChunk {
			chunk = nfsFlushChunk
		}
		n.server.Disk.Write(p, chunk)
		n.dirty -= chunk
	}
}

// serverLookup checks the server page cache, refreshing recency.
func (n *NFS) serverLookup(f *workflow.File) bool {
	if el, ok := n.serverCache[f]; ok {
		n.serverLRU.MoveToFront(el)
		n.stats.ServerCacheHits++
		return true
	}
	n.stats.ServerCacheMisses++
	return false
}

// serverInsert caches f on the server, evicting LRU files beyond capacity.
func (n *NFS) serverInsert(f *workflow.File) {
	if _, ok := n.serverCache[f]; ok {
		return
	}
	if f.Size > n.serverCap {
		return
	}
	n.serverSize += f.Size
	n.serverCache[f] = n.serverLRU.PushFront(f)
	for n.serverSize > n.serverCap {
		back := n.serverLRU.Back()
		old := back.Value.(*workflow.File)
		n.serverLRU.Remove(back)
		delete(n.serverCache, old)
		n.serverSize -= old.Size
	}
}

// PreStage implements System: inputs land on the server's disk (and warm
// its cache, as copying them through the server would).
func (n *NFS) PreStage(files []*workflow.File) {
	for _, f := range files {
		n.serverInsert(f)
	}
}

// Read implements System.
func (n *NFS) Read(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	n.stats.Reads++
	p.Sleep(nfsRPCLatency)
	if n.clientCaches[node].Lookup(f) {
		n.stats.CacheHits++
		n.env.recordCache(p, true, "client", node, f)
		return
	}
	n.stats.CacheMisses++
	n.env.recordCache(p, false, "client", node, f)
	n.stats.NetworkBytes += f.Size
	if hit := n.serverLookup(f); hit {
		// Served from server memory: network path only.
		n.env.recordCache(p, true, "server", node, f)
		n.env.Net.Transfer(p, f.Size, n.srvOut, node.NICIn)
	} else {
		n.env.recordCache(p, false, "server", node, f)
		n.server.Disk.Read(p, f.Size, n.srvOut, node.NICIn)
		n.serverInsert(f)
	}
	n.clientCaches[node].Insert(f)
}

// Write implements System.
func (n *NFS) Write(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	n.stats.Writes++
	p.Sleep(nfsRPCLatency)
	n.stats.NetworkBytes += f.Size
	switch {
	case !n.Async:
		// Synchronous export: the write is bounded by the server disk.
		n.server.Disk.Write(p, f.Size, node.NICOut, n.srvIn)
	case n.dirty > n.dirtyLimit:
		// Dirty buffer full: async degrades to disk speed (the client
		// write is throttled behind the flusher).
		n.server.Disk.Write(p, f.Size, node.NICOut, n.srvIn)
	default:
		// Async: acknowledged once in server memory.
		n.env.Net.Transfer(p, f.Size, node.NICOut, n.srvIn)
		n.dirty += f.Size
		if n.flusherNotify.Len() == 0 {
			n.flusherNotify.Put(struct{}{})
		}
	}
	n.serverInsert(f)
	n.clientCaches[node].Insert(f)
}

// Stats implements System.
func (n *NFS) Stats() Stats { return n.stats }
