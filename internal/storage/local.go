package storage

import (
	"fmt"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/workflow"
)

// localOpLatency is the per-file open/close overhead on a local ext3
// volume — essentially free next to any network system.
const localOpLatency = 0.0002

// Local is the single-node baseline: all files live on the node's RAID0
// ephemeral volume. The paper reports it as a single point in each figure.
type Local struct {
	env   *Env
	node  *cluster.Node
	cache *PageCache
	stats Stats
}

// NewLocal returns the local-disk system.
func NewLocal() *Local { return &Local{} }

// Name implements System.
func (l *Local) Name() string { return "local" }

// Description implements System.
func (l *Local) Description() string {
	return "single-node RAID0 ephemeral disk (no sharing)"
}

// MinWorkers implements System.
func (l *Local) MinWorkers() int { return 1 }

// ExtraNodeTypes implements System.
func (l *Local) ExtraNodeTypes() []cluster.InstanceType { return nil }

// Init implements System. Local storage cannot share data, so it refuses
// multi-node clusters.
func (l *Local) Init(env *Env) error {
	if err := checkInit(l, env); err != nil {
		return err
	}
	if len(env.Workers) != 1 {
		return fmt.Errorf("storage: local disk cannot share files across %d nodes", len(env.Workers))
	}
	l.env = env
	l.node = env.Workers[0]
	l.cache = NewPageCache(l.node)
	return nil
}

// PreStage implements System: inputs already sit on the local volume.
func (l *Local) PreStage(files []*workflow.File) {}

// Read implements System.
func (l *Local) Read(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	l.stats.Reads++
	p.Sleep(localOpLatency)
	if l.cache.Lookup(f) {
		l.stats.CacheHits++
		return
	}
	l.stats.CacheMisses++
	node.Disk.Read(p, f.Size)
	l.cache.Insert(f)
}

// Write implements System.
func (l *Local) Write(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	l.stats.Writes++
	p.Sleep(localOpLatency)
	node.Disk.Write(p, f.Size)
	l.cache.Insert(f)
}

// Stats implements System.
func (l *Local) Stats() Stats { return l.stats }
