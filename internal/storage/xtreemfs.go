package storage

import (
	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// XtreemFS is designed for wide-area deployments: object-based with
// strong consistency coordination, its per-operation costs inside a
// single EC2 availability zone dwarf the cluster file systems'. The paper
// started experiments with it but terminated them after workflows ran
// more than twice as long as on the other systems; we model it so the
// harness can reproduce that observation (experiment E-X1).
const (
	xtreemOpLatency   = 0.28           // MRC metadata round trips per open/create
	xtreemPerConnRate = 10 * units.MB  // striped OSD streaming, WAN-tuned
	xtreemServiceRate = 150 * units.MB // shared MRC/OSD frontend capacity
)

// XtreemFS models the wide-area file system option.
type XtreemFS struct {
	env     *Env
	service *flow.Resource
	caches  map[*cluster.Node]*PageCache
	staged  map[*workflow.File]bool
	stats   Stats
}

// NewXtreemFS returns the XtreemFS system.
func NewXtreemFS() *XtreemFS { return &XtreemFS{} }

// Name implements System.
func (x *XtreemFS) Name() string { return "xtreemfs" }

// Description implements System.
func (x *XtreemFS) Description() string {
	return "XtreemFS wide-area file system (high per-op latency; abandoned by the paper)"
}

// MinWorkers implements System.
func (x *XtreemFS) MinWorkers() int { return 1 }

// ExtraNodeTypes implements System: directory/metadata services modelled
// as an external endpoint rather than a billed node.
func (x *XtreemFS) ExtraNodeTypes() []cluster.InstanceType { return nil }

// Init implements System.
func (x *XtreemFS) Init(env *Env) error {
	if err := checkInit(x, env); err != nil {
		return err
	}
	x.env = env
	x.service = flow.NewResource("xtreemfs-service", xtreemServiceRate)
	x.caches = make(map[*cluster.Node]*PageCache, len(env.Workers))
	for _, w := range env.Workers {
		x.caches[w] = NewPageCache(w)
	}
	x.staged = make(map[*workflow.File]bool)
	return nil
}

// PreStage implements System.
func (x *XtreemFS) PreStage(files []*workflow.File) {
	for _, f := range files {
		x.staged[f] = true
	}
}

// Read implements System.
func (x *XtreemFS) Read(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	x.stats.Reads++
	p.Sleep(xtreemOpLatency)
	if x.caches[node].Lookup(f) {
		x.stats.CacheHits++
		return
	}
	x.stats.CacheMisses++
	x.stats.NetworkBytes += f.Size
	conn := x.env.Net.AcquireCap("xtreemfs-conn", xtreemPerConnRate)
	x.env.Net.Transfer(p, f.Size, conn, x.service, node.NICIn)
	x.env.Net.ReleaseCap(conn)
	x.caches[node].Insert(f)
}

// Write implements System.
func (x *XtreemFS) Write(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	x.stats.Writes++
	p.Sleep(xtreemOpLatency)
	x.stats.NetworkBytes += f.Size
	conn := x.env.Net.AcquireCap("xtreemfs-conn", xtreemPerConnRate)
	x.env.Net.Transfer(p, f.Size, conn, x.service, node.NICOut)
	x.env.Net.ReleaseCap(conn)
	x.staged[f] = true
	x.caches[node].Insert(f)
}

// Stats implements System.
func (x *XtreemFS) Stats() Stats { return x.stats }
