package storage

import (
	"math"
	"testing"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// deployOutage builds a 2-worker cluster on the given storage system for
// the outage-degradation tests below.
func deployOutage(t *testing.T, sysName string) (*sim.Engine, *cluster.Cluster, System) {
	t.Helper()
	sys, err := ByName(sysName)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := cluster.New(e, net, rng.New(3), cluster.Config{
		Workers:    2,
		WorkerType: cluster.C1XLarge(),
		Extra:      sys.ExtraNodeTypes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(5)}
	if err := sys.Init(env); err != nil {
		t.Fatal(err)
	}
	return e, c, sys
}

// TestReadBlocksWhileOwnerDown: a GlusterFS read whose owner node is
// offline must wait for the node to recover before the data moves.
func TestReadBlocksWhileOwnerDown(t *testing.T) {
	e, c, sys := deployOutage(t, "gluster-nufa")
	f := &workflow.File{Name: "data", Size: 10 * units.MB}
	sys.PreStage([]*workflow.File{f}) // round-robin: lands on worker 0
	owner, reader := c.Workers[0], c.Workers[1]
	owner.SetDown()
	e.At(50, func() { owner.SetUp() })
	var done float64
	e.Go("reader", func(p *sim.Proc) {
		sys.Read(p, reader, f)
		done = p.Now()
	})
	e.Run()
	if done < 50 {
		t.Errorf("read of down-owner data finished at %.1f, before recovery at 50", done)
	}
}

// TestPVFSStripedReadBlocksOnAnyServer: PVFS fans every read over all
// stripe servers, so one down node stalls the whole file.
func TestPVFSStripedReadBlocksOnAnyServer(t *testing.T) {
	e, c, sys := deployOutage(t, "pvfs")
	f := &workflow.File{Name: "striped", Size: 10 * units.MB} // spans both workers
	sys.PreStage([]*workflow.File{f})
	c.Workers[1].SetDown()
	e.At(30, func() { c.Workers[1].SetUp() })
	var done float64
	e.Go("reader", func(p *sim.Proc) {
		sys.Read(p, c.Workers[0], f)
		done = p.Now()
	})
	e.Run()
	if done < 30 {
		t.Errorf("striped read finished at %.1f with a stripe server down until 30", done)
	}
}

// TestPageCacheLostOnOutage: an outage reboots the node, so its RAM page
// cache must come back empty (a re-read pays the full cost again) while
// S3's disk-backed whole-file cache survives.
func TestPageCacheLostOnOutage(t *testing.T) {
	e, c, sys := deployOutage(t, "gluster-nufa")
	f := &workflow.File{Name: "hot", Size: 50 * units.MB}
	sys.PreStage([]*workflow.File{f})
	node := c.Workers[0]
	var warm, cold float64
	e.Go("reader", func(p *sim.Proc) {
		sys.Read(p, node, f) // populate
		start := p.Now()
		sys.Read(p, node, f) // cached: near-free
		warm = p.Now() - start
		node.SetDown()
		node.SetUp() // reboot: RAM gone, disk intact
		start = p.Now()
		sys.Read(p, node, f)
		cold = p.Now() - start
	})
	e.Run()
	if cold <= warm {
		t.Errorf("post-outage re-read took %.4f s, cached read %.4f s; page cache survived the reboot", cold, warm)
	}
}

// rig bundles a small simulated deployment for storage tests.
type rig struct {
	e   *sim.Engine
	net *flow.Net
	c   *cluster.Cluster
	sys System
}

// newRig provisions `workers` c1.xlarge nodes plus whatever service nodes
// the system requests, and initializes the system.
func newRig(t *testing.T, sys System, workers int) *rig {
	t.Helper()
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := cluster.New(e, net, rng.New(7), cluster.Config{
		Workers:    workers,
		WorkerType: cluster.C1XLarge(),
		Extra:      sys.ExtraNodeTypes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(11)}
	if err := sys.Init(env); err != nil {
		t.Fatal(err)
	}
	return &rig{e: e, net: net, c: c, sys: sys}
}

// timed runs fn in a process and returns the simulated seconds it took.
func (r *rig) timed(fn func(p *sim.Proc)) float64 {
	var took float64
	r.e.Go("op", func(p *sim.Proc) {
		start := p.Now()
		fn(p)
		took = p.Now() - start
	})
	r.e.Run()
	return took
}

func wf(name string, size float64) *workflow.File {
	return &workflow.File{Name: name, Size: size}
}

func TestLocalReadWriteTiming(t *testing.T) {
	r := newRig(t, NewLocal(), 1)
	n := r.c.Workers[0]
	f := wf("data", 800*units.MB)
	took := r.timed(func(p *sim.Proc) {
		r.sys.Write(p, n, f) // first write at 80 MB/s -> 10 s
	})
	if math.Abs(took-10) > 0.1 {
		t.Errorf("local first write of 800 MB took %.2f s, want ~10 (80 MB/s RAID0)", took)
	}
	// The file is in the page cache; a re-read is nearly free.
	took = r.timed(func(p *sim.Proc) { r.sys.Read(p, n, f) })
	if took > 0.01 {
		t.Errorf("cached re-read took %.3f s, want ~0", took)
	}
	if r.sys.Stats().CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", r.sys.Stats().CacheHits)
	}
}

func TestLocalRejectsMultiNode(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := cluster.New(e, net, rng.New(7), cluster.Config{Workers: 2, WorkerType: cluster.C1XLarge()})
	if err != nil {
		t.Fatal(err)
	}
	sys := NewLocal()
	env := &Env{E: e, Net: net, Workers: c.Workers, R: rng.New(1)}
	if err := sys.Init(env); err == nil {
		t.Error("local system accepted a 2-node cluster")
	}
}

func TestPageCacheMemoryPressure(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := cluster.New(e, net, rng.New(7), cluster.Config{Workers: 1, WorkerType: cluster.C1XLarge()})
	if err != nil {
		t.Fatal(err)
	}
	node := c.Workers[0]
	pc := NewPageCache(node)
	big := wf("velocity-model", 2*units.GB)
	pc.Insert(big)
	if !pc.Lookup(big) {
		t.Fatal("file not cached with idle memory")
	}
	// A Broadband-style task claims 6 GB of the 7 GiB node: capacity
	// drops below the cached file's size and pressure evicts it.
	node.Memory.TryAcquire(cluster.MemoryMB(6 * units.GiB))
	if pc.Lookup(big) {
		t.Error("page cache survived memory pressure; Broadband would not be memory-limited")
	}
	node.Memory.Release(cluster.MemoryMB(6 * units.GiB))
}

func TestPageCacheSkipsOversizedFiles(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, _ := cluster.New(e, net, rng.New(7), cluster.Config{Workers: 1, WorkerType: cluster.C1XLarge()})
	pc := NewPageCache(c.Workers[0])
	huge := wf("huge", 100*units.GB)
	pc.Insert(huge)
	if pc.Size() != 0 {
		t.Error("oversized file was cached")
	}
}

func TestNFSReadCrossesServerNIC(t *testing.T) {
	r := newRig(t, NewNFS(), 2)
	f := wf("input", 1.2*units.GB)
	r.sys.PreStage([]*workflow.File{f})
	took := r.timed(func(p *sim.Proc) {
		r.sys.Read(p, r.c.Workers[0], f)
	})
	// Pre-staged files are warm in the 16 GB server cache, so the read
	// moves at the server's effective rate: 120 MB/s degraded by the
	// 2-client incast factor (1.30) -> 1.2 GB / 92.3 MB/s = 13 s.
	want := 1.2 * units.GB / (120 * units.MB / 1.30)
	if math.Abs(took-want) > 0.5 {
		t.Errorf("NFS cached read took %.2f s, want ~%.1f (server-path bound)", took, want)
	}
	if r.sys.Stats().ServerCacheHits != 1 {
		t.Errorf("server cache hits = %d, want 1", r.sys.Stats().ServerCacheHits)
	}
}

func TestNFSAsyncWriteFasterThanSync(t *testing.T) {
	asyncRig := newRig(t, NewNFS(), 1)
	f1 := wf("out", 600*units.MB)
	asyncTook := asyncRig.timed(func(p *sim.Proc) {
		asyncRig.sys.Write(p, asyncRig.c.Workers[0], f1)
	})
	syncRig := newRig(t, NewNFSSync(), 1)
	f2 := wf("out", 600*units.MB)
	syncTook := syncRig.timed(func(p *sim.Proc) {
		syncRig.sys.Write(p, syncRig.c.Workers[0], f2)
	})
	// Async lands in server memory at NIC speed (5 s); sync waits for the
	// server's uninitialized disk (80 MB/s -> 7.5 s, gated by NIC too).
	if asyncTook >= syncTook {
		t.Errorf("async write (%.2f s) not faster than sync (%.2f s)", asyncTook, syncTook)
	}
	if math.Abs(asyncTook-5) > 0.5 {
		t.Errorf("async write took %.2f s, want ~5 (NIC-bound)", asyncTook)
	}
}

func TestNFSManyClientsContendOnServer(t *testing.T) {
	makespan := func(workers int) float64 {
		r := newRig(t, NewNFS(), workers)
		files := make([]*workflow.File, workers)
		for i := range files {
			files[i] = wf(fileName(i), 600*units.MB)
		}
		r.sys.PreStage(files)
		for i, n := range r.c.Workers {
			i, n := i, n
			r.e.Go("reader", func(p *sim.Proc) { r.sys.Read(p, n, files[i]) })
		}
		r.e.Run()
		return r.e.Now()
	}
	one, four := makespan(1), makespan(4)
	// 4x the data through one server plus the incast degradation
	// (1.9/1.0): super-linear collapse, the paper's Broadband-on-NFS
	// story in miniature.
	if ratio := four / one; ratio < 4.5 || ratio > 9 {
		t.Errorf("4-client/1-client NFS read makespan ratio = %.2f, want ~7.6 (incast collapse)", ratio)
	}
}

func fileName(i int) string { return "f" + string(rune('a'+i)) }

func TestGlusterNUFAWritesLocally(t *testing.T) {
	r := newRig(t, NewGluster(NUFA), 2)
	f := wf("out", 800*units.MB)
	took := r.timed(func(p *sim.Proc) {
		r.sys.Write(p, r.c.Workers[0], f)
	})
	// Local RAID0 first write at 80 MB/s: no NIC involvement.
	if math.Abs(took-10) > 0.1 {
		t.Errorf("NUFA write took %.2f s, want ~10 (local disk only)", took)
	}
	if r.sys.Stats().NetworkBytes != 0 {
		t.Errorf("NUFA write moved %.0f network bytes, want 0", r.sys.Stats().NetworkBytes)
	}
}

func TestGlusterNUFARemoteReadCrossesNetwork(t *testing.T) {
	r := newRig(t, NewGluster(NUFA), 2)
	f := wf("out", 1.2*units.GB)
	r.e.Go("writer", func(p *sim.Proc) {
		r.sys.Write(p, r.c.Workers[0], f)
		// Reader on the other node: owner disk read + both NICs.
		r.sys.Read(p, r.c.Workers[1], f)
	})
	r.e.Run()
	st := r.sys.Stats()
	if st.NetworkBytes != 1.2*units.GB {
		t.Errorf("remote read network bytes = %s, want 1.2 GB", units.Bytes(st.NetworkBytes))
	}
}

func TestGlusterDistributePlacementByHash(t *testing.T) {
	r := newRig(t, NewGluster(Distribute), 4)
	g := r.sys.(*Gluster)
	// Hash placement must be stable and spread across nodes.
	counts := make(map[*cluster.Node]int)
	r.e.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			f := wf("file-"+string(rune('a'+i%26))+string(rune('0'+i/26)), units.MB)
			r.sys.Write(p, r.c.Workers[0], f)
			counts[g.loc[f]]++
		}
	})
	r.e.Run()
	if len(counts) < 3 {
		t.Errorf("hash placement used only %d of 4 nodes", len(counts))
	}
	if st := r.sys.Stats(); st.NetworkBytes == 0 {
		t.Error("distribute-mode writes from one node moved no network bytes; placement not remote")
	}
}

func TestGlusterRequiresTwoNodes(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, _ := cluster.New(e, net, rng.New(7), cluster.Config{Workers: 1, WorkerType: cluster.C1XLarge()})
	sys := NewGluster(NUFA)
	if err := sys.Init(&Env{E: e, Net: net, Workers: c.Workers, R: rng.New(1)}); err == nil {
		t.Error("GlusterFS accepted a 1-node cluster; the paper needs >=2")
	}
}

func TestGlusterReadUnknownFilePanics(t *testing.T) {
	r := newRig(t, NewGluster(NUFA), 2)
	r.e.Go("reader", func(p *sim.Proc) {
		r.sys.Read(p, r.c.Workers[0], wf("ghost", units.MB))
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading a never-written file")
		}
	}()
	r.e.Run()
}

func TestPVFSSingleReaderCappedByClientWindow(t *testing.T) {
	r := newRig(t, NewPVFS(), 4)
	f := wf("big", 2*units.GB)
	r.sys.PreStage([]*workflow.File{f})
	took := r.timed(func(p *sim.Proc) {
		r.sys.Read(p, r.c.Workers[0], f)
	})
	// One descriptor moves at the client window rate: 2 GB / 25 MB/s.
	want := 2 * units.GB / (25 * units.MB)
	if math.Abs(took-want) > 2 {
		t.Errorf("striped 2 GB read took %.1f s, want ~%.1f (client window bound)", took, want)
	}
}

func TestPVFSConcurrentReadersScaleAcrossServers(t *testing.T) {
	// Different clients have independent windows, and stripes spread the
	// load over every server: four concurrent 2 GB reads finish together
	// in roughly the single-read time, not 4x it.
	r := newRig(t, NewPVFS(), 4)
	files := make([]*workflow.File, 4)
	for i := range files {
		files[i] = wf(fileName(i), 2*units.GB)
	}
	r.sys.PreStage(files)
	for i, n := range r.c.Workers {
		i, n := i, n
		r.e.Go("reader", func(p *sim.Proc) { r.sys.Read(p, n, files[i]) })
	}
	r.e.Run()
	single := 2 * units.GB / (25 * units.MB)
	if r.e.Now() > single*1.6 {
		t.Errorf("4 concurrent striped reads took %.1f s, want ~%.1f (server-side parallelism)",
			r.e.Now(), single)
	}
}

func TestPVFSSmallFilePenaltyDominates(t *testing.T) {
	r := newRig(t, NewPVFS(), 2)
	small := wf("small", 100*units.KB)
	took := r.timed(func(p *sim.Proc) {
		r.sys.Write(p, r.c.Workers[0], small)
		r.sys.Read(p, r.c.Workers[1], small)
	})
	// Almost all of the time must be the fixed metadata latencies, not
	// the 100 KB payload.
	if took < pvfsCreateLatency+pvfsOpenLatency {
		t.Errorf("small-file ops took %.3f s, less than metadata floor", took)
	}
	if took > 3*(pvfsCreateLatency+pvfsOpenLatency) {
		t.Errorf("small-file ops took %.3f s; payload should be negligible", took)
	}
}

func TestS3CachePreventsRepeatGETs(t *testing.T) {
	r := newRig(t, NewS3(), 2)
	f := wf("input", 10*units.MB)
	r.sys.PreStage([]*workflow.File{f})
	n0 := r.c.Workers[0]
	r.e.Go("reader", func(p *sim.Proc) {
		r.sys.Read(p, n0, f)
		r.sys.Read(p, n0, f)             // same node: served from the client cache
		r.sys.Read(p, r.c.Workers[1], f) // different node: one more GET
	})
	r.e.Run()
	st := r.sys.Stats()
	if st.Gets != 2 {
		t.Errorf("GETs = %d, want 2 (once per node)", st.Gets)
	}
	if st.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", st.CacheHits)
	}
}

func TestS3NoCacheRepeatsGETs(t *testing.T) {
	r := newRig(t, NewS3NoCache(), 1)
	f := wf("input", 10*units.MB)
	r.sys.PreStage([]*workflow.File{f})
	r.e.Go("reader", func(p *sim.Proc) {
		r.sys.Read(p, r.c.Workers[0], f)
		r.sys.Read(p, r.c.Workers[0], f)
	})
	r.e.Run()
	if st := r.sys.Stats(); st.Gets != 2 {
		t.Errorf("GETs = %d, want 2 without the client cache", st.Gets)
	}
}

func TestS3WriteUploadsAndCounts(t *testing.T) {
	r := newRig(t, NewS3(), 1)
	f := wf("out", 50*units.MB)
	took := r.timed(func(p *sim.Proc) {
		r.sys.Write(p, r.c.Workers[0], f)
	})
	st := r.sys.Stats()
	if st.Puts != 1 {
		t.Errorf("PUTs = %d, want 1", st.Puts)
	}
	if st.BytesUploaded != 50*units.MB {
		t.Errorf("uploaded = %s, want 50 MB", units.Bytes(st.BytesUploaded))
	}
	// Disk write (50/80 = 0.625 s) + upload at the 25 MB/s connection cap
	// (2 s) + PUT latency.
	want := 0.625 + 2 + s3PutLatency
	if math.Abs(took-want) > 0.2 {
		t.Errorf("S3 write took %.2f s, want ~%.2f (double write + capped upload)", took, want)
	}
}

func TestS3ReadOfUnstagedObjectPanics(t *testing.T) {
	r := newRig(t, NewS3(), 1)
	r.e.Go("reader", func(p *sim.Proc) {
		r.sys.Read(p, r.c.Workers[0], wf("ghost", units.MB))
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for GET of missing object")
		}
	}()
	r.e.Run()
}

func TestXtreemFSMuchSlowerPerOp(t *testing.T) {
	x := newRig(t, NewXtreemFS(), 2)
	g := newRig(t, NewGluster(NUFA), 2)
	small := wf("s", units.MB)
	xt := x.timed(func(p *sim.Proc) { x.sys.Write(p, x.c.Workers[0], small) })
	small2 := wf("s", units.MB)
	gt := g.timed(func(p *sim.Proc) { g.sys.Write(p, g.c.Workers[0], small2) })
	if xt < 5*gt {
		t.Errorf("XtreemFS small write (%.3f s) not >5x GlusterFS (%.3f s)", xt, gt)
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range Names() {
		sys, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
			continue
		}
		if sys.Name() != name {
			t.Errorf("ByName(%s).Name() = %s", name, sys.Name())
		}
		if sys.Description() == "" {
			t.Errorf("%s has no description", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("expected error for unknown system")
	}
	if len(PaperSystems()) != 5 {
		t.Errorf("PaperSystems = %d entries, want the paper's 5", len(PaperSystems()))
	}
}

func TestFreshSystemsPerRun(t *testing.T) {
	a, _ := ByName("s3")
	b, _ := ByName("s3")
	if a == b {
		t.Error("ByName returned a shared instance; state would leak across runs")
	}
}
