package storage

import (
	"fmt"
	"sort"
)

// factories maps system names to constructors. Construct a fresh System
// per experiment: systems hold per-run state (locations, caches, stats).
var factories = map[string]func() System{
	"local":          func() System { return NewLocal() },
	"nfs":            func() System { return NewNFS() },
	"nfs-m2.4xlarge": func() System { return NewNFSBigServer() },
	"nfs-sync":       func() System { return NewNFSSync() },
	"gluster-nufa":   func() System { return NewGluster(NUFA) },
	"gluster-dist":   func() System { return NewGluster(Distribute) },
	"pvfs":           func() System { return NewPVFS() },
	"s3":             func() System { return NewS3() },
	"s3-nocache":     func() System { return NewS3NoCache() },
	"xtreemfs":       func() System { return NewXtreemFS() },
}

// ByName constructs a storage system by its short name.
func ByName(name string) (System, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown system %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered system names, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PaperSystems lists the five systems compared in Figures 2-7, in the
// paper's legend order, excluding the local-disk baseline.
func PaperSystems() []string {
	return []string{"s3", "nfs", "gluster-nufa", "gluster-dist", "pvfs"}
}
