// Package storage models the five data-sharing options the paper compares
// on EC2 — Amazon S3 (with a whole-file client cache), NFS, GlusterFS in
// NUFA and distribute modes, and PVFS — plus the single-node local-disk
// baseline and XtreemFS (which the paper tried and abandoned).
//
// Every system implements the same System interface: the workflow engine
// calls Read before a task uses an input file on a node and Write after
// the task produces an output. Each implementation translates those calls
// into transfers over the shared resource fabric (node disks and NICs, a
// dedicated file-server node, or an S3 service), so contention between
// concurrent tasks — the effect the paper is actually measuring — emerges
// from the max-min fair flow network rather than from closed-form
// formulas.
package storage

import (
	"fmt"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/eventlog"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/workflow"
)

// Env wires a storage system to a provisioned cluster.
type Env struct {
	E       *sim.Engine
	Net     *flow.Net
	Workers []*cluster.Node
	// Extra holds the service nodes the system requested via
	// ExtraNodeTypes, in the same order.
	Extra []*cluster.Node
	R     *rng.RNG
	// Rec receives cache-decision events (cache-hit/cache-miss) from
	// backends that model one; nil — the default — disables recording
	// at the cost of one pointer test per decision.
	Rec eventlog.Recorder
}

// recordCache emits a cache-hit or cache-miss event through the env's
// recorder, if any. layer is "client" or "server" (carried in the
// event's Phase field).
func (env *Env) recordCache(p *sim.Proc, hit bool, layer string, node *cluster.Node, f *workflow.File) {
	if env.Rec == nil {
		return
	}
	kind := eventlog.CacheMiss
	if hit {
		kind = eventlog.CacheHit
	}
	env.Rec.Record(eventlog.Event{
		T: p.Now(), Kind: kind, Node: node.Name, File: f.Name, Phase: layer, Size: f.Size,
	})
}

// System is a data-sharing option for workflow files.
type System interface {
	// Name is the short identifier used in figures ("gluster-nufa").
	Name() string
	// Description is a one-line summary for reports.
	Description() string
	// MinWorkers is the smallest worker count the system supports
	// (GlusterFS and PVFS need two nodes to form a valid file system).
	MinWorkers() int
	// ExtraNodeTypes lists service nodes to provision alongside the
	// workers (e.g. NFS's dedicated m1.xlarge file server).
	ExtraNodeTypes() []cluster.InstanceType
	// Init binds the system to the cluster. It may start background
	// service processes on the engine.
	Init(env *Env) error
	// PreStage places the workflow's input files into the shared store.
	// Per the paper's methodology this consumes no simulated time (inputs
	// are staged before the measured window).
	PreStage(files []*workflow.File)
	// Read makes f's contents available to a task on node, charging the
	// simulated time the access costs.
	Read(p *sim.Proc, node *cluster.Node, f *workflow.File)
	// Write publishes f, produced by a task on node.
	Write(p *sim.Proc, node *cluster.Node, f *workflow.File)
	// Stats reports cumulative counters for cost accounting and reports.
	Stats() Stats
}

// Stats aggregates the counters every system maintains. Fields not
// relevant to a given system stay zero.
type Stats struct {
	Reads  int64
	Writes int64

	// Bytes that crossed the network (inter-node or to/from S3).
	NetworkBytes float64

	// Client-side cache behaviour (page cache or S3 whole-file cache).
	CacheHits   int64
	CacheMisses int64

	// NFS server page-cache behaviour.
	ServerCacheHits   int64
	ServerCacheMisses int64

	// S3 request counters (drive the cost model's request fees).
	Gets            int64
	Puts            int64
	BytesDownloaded float64
	BytesUploaded   float64
}

// checkInit validates the Env handed to Init.
func checkInit(s System, env *Env) error {
	if len(env.Workers) < s.MinWorkers() {
		return fmt.Errorf("storage: %s requires at least %d workers, got %d",
			s.Name(), s.MinWorkers(), len(env.Workers))
	}
	if want, got := len(s.ExtraNodeTypes()), len(env.Extra); want != got {
		return fmt.Errorf("storage: %s needs %d service node(s), cluster has %d",
			s.Name(), want, got)
	}
	return nil
}

// readRemote charges a read of size bytes from owner's disk into reader,
// skipping the NICs when both are the same node. A down owner makes the
// data unavailable: the read blocks until the node recovers (its disk
// contents survive the outage), which is how correlated outages degrade
// systems that place data on worker nodes.
func readRemote(p *sim.Proc, owner, reader *cluster.Node, size float64) {
	owner.WaitUp(p)
	if owner == reader {
		owner.Disk.Read(p, size)
		return
	}
	owner.Disk.Read(p, size, owner.NICOut, reader.NICIn)
}

// writeRemote charges a write of size bytes from writer onto owner's
// disk, blocking while the owner is down (as readRemote does for reads).
func writeRemote(p *sim.Proc, writer, owner *cluster.Node, size float64) {
	owner.WaitUp(p)
	if owner == writer {
		owner.Disk.Write(p, size)
		return
	}
	owner.Disk.Write(p, size, writer.NICOut, owner.NICIn)
}
