package storage

import (
	"fmt"
	"testing"
	"testing/quick"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

func newCache(t testing.TB) (*PageCache, *cluster.Node) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := cluster.New(e, net, rng.New(7), cluster.Config{Workers: 1, WorkerType: cluster.C1XLarge()})
	if err != nil {
		t.Fatal(err)
	}
	return NewPageCache(c.Workers[0]), c.Workers[0]
}

func TestPageCacheLRUEviction(t *testing.T) {
	pc, _ := newCache(t)
	// c1.xlarge idle capacity: 7 GiB - 512 MiB reserve ~= 6.98 GB.
	a := wf("a", 3*units.GB)
	b := wf("b", 3*units.GB)
	c := wf("c", 3*units.GB)
	pc.Insert(a)
	pc.Insert(b)
	// Touch a so b becomes least recently used.
	if !pc.Lookup(a) {
		t.Fatal("a evicted prematurely")
	}
	pc.Insert(c) // must evict b, not a
	if !pc.Lookup(a) {
		t.Error("LRU evicted the recently used file")
	}
	if pc.Lookup(b) {
		t.Error("LRU kept the least recently used file")
	}
	if !pc.Lookup(c) {
		t.Error("newly inserted file missing")
	}
}

func TestPageCacheReinsertIsIdempotent(t *testing.T) {
	pc, _ := newCache(t)
	f := wf("f", units.GB)
	pc.Insert(f)
	pc.Insert(f)
	if pc.Size() != units.GB {
		t.Errorf("Size = %s after double insert, want 1 GB", units.Bytes(pc.Size()))
	}
}

func TestPageCacheCapacityTracksMemoryUse(t *testing.T) {
	pc, node := newCache(t)
	idle := pc.Capacity()
	node.Memory.TryAcquire(cluster.MemoryMB(2 * units.GiB))
	under := pc.Capacity()
	if idle-under < 1.9*units.GiB {
		t.Errorf("capacity only fell %s under 2 GiB of task memory", units.Bytes(idle-under))
	}
	node.Memory.Release(cluster.MemoryMB(2 * units.GiB))
	if pc.Capacity() != idle {
		t.Error("capacity did not recover after memory release")
	}
}

func TestPageCacheHitMissCounters(t *testing.T) {
	pc, _ := newCache(t)
	f := wf("f", units.MB)
	pc.Lookup(f) // miss
	pc.Insert(f)
	pc.Lookup(f) // hit
	if pc.Hits != 1 || pc.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", pc.Hits, pc.Misses)
	}
}

// Property: the cache never holds more bytes than its capacity at the
// moment of the last operation, for arbitrary insert/lookup/pressure
// sequences.
func TestPropertyPageCacheNeverOverCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		pc, node := newCache(t)
		files := make([]*workflow.File, 16)
		for i := range files {
			files[i] = wf(fmt.Sprintf("f%d", i), float64(i+1)*300*units.MB)
		}
		held := 0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				pc.Insert(files[op%16])
			case 1:
				pc.Lookup(files[op%16])
			case 2:
				mb := cluster.MemoryMB(float64(op%5) * units.GiB)
				if node.Memory.TryAcquire(mb) {
					held += mb
				}
			case 3:
				if held > 0 {
					node.Memory.Release(held)
					held = 0
				}
			}
			// trim is applied on Lookup/Insert; force one via Lookup.
			pc.Lookup(files[0])
			if pc.Size() > pc.Capacity()+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNFSDirtyThrottleDegradesToDiskSpeed(t *testing.T) {
	// Flood the server with async writes far beyond its dirty limit: the
	// later writes must slow from NIC speed toward disk speed.
	r := newRig(t, NewNFS(), 1)
	var first, worst float64
	r.e.Go("writer", func(p *sim.Proc) {
		start := p.Now()
		r.sys.Write(p, r.c.Workers[0], wf("w0", units.GB))
		first = p.Now() - start
		// The m1.xlarge dirty limit is 0.4*16 GiB ~= 6.9 GB and the
		// flusher drains at the disk's 80 MB/s against the 120 MB/s NIC
		// fill, so a sustained flood crosses the limit and the buffer then
		// self-regulates: over-limit writes divert to the disk-bound path
		// (which adds no dirty data) until the flusher catches up. The
		// observable symptom is occasional writes far slower than NIC
		// speed.
		for i := 1; i <= 40; i++ {
			start := p.Now()
			r.sys.Write(p, r.c.Workers[0], wf(fmt.Sprintf("w%d", i), units.GB))
			if took := p.Now() - start; took > worst {
				worst = took
			}
		}
	})
	r.e.Run()
	if worst <= first*1.5 {
		t.Errorf("no write was throttled during the flood: worst %.2f s vs async %.2f s", worst, first)
	}
}

func TestNFSPreStageWarmsServerCache(t *testing.T) {
	r := newRig(t, NewNFS(), 1)
	f := wf("input", 100*units.MB)
	r.sys.PreStage([]*workflow.File{f})
	r.e.Go("reader", func(p *sim.Proc) {
		r.sys.Read(p, r.c.Workers[0], f)
	})
	r.e.Run()
	st := r.sys.Stats()
	if st.ServerCacheHits != 1 || st.ServerCacheMisses != 0 {
		t.Errorf("server cache hits/misses = %d/%d, want 1/0 after pre-staging",
			st.ServerCacheHits, st.ServerCacheMisses)
	}
}
