package storage

import (
	"fmt"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// S3 service characteristics inside the EC2 region (2010): generous
// aggregate throughput, but a noticeable per-request setup cost and a
// modest per-connection streaming rate — which is why "a large number of
// small files" is S3's worst case in the paper.
const (
	s3GetLatency    = 0.070 // REST GET first-byte latency
	s3PutLatency    = 0.140 // REST PUT including commit acknowledgement
	s3PerConnRate   = 25 * units.MB
	s3AggregateRate = 10 * units.GB // regional service capacity (not a bottleneck)
)

// S3 models the paper's object-store option. Tasks cannot read S3
// directly (no POSIX interface), so the workflow management system wraps
// every job with GETs and PUTs: each input is downloaded to the node's
// local disk before the job and each output is uploaded after it. A
// whole-file client cache — possible because the workflows are strictly
// write-once — ensures each file is downloaded to a node at most once and
// lets outputs produced on a node be reused there without a round trip.
type S3 struct {
	// CacheEnabled toggles the client cache (ablation A-1). The paper's
	// implementation always caches.
	CacheEnabled bool
	label        string

	env        *Env
	service    *flow.Resource
	objects    map[*workflow.File]bool                   // objects stored in S3
	nodeCached map[*cluster.Node]map[*workflow.File]bool // whole-file disk caches
	pageCaches map[*cluster.Node]*PageCache
	stats      Stats
}

// NewS3 returns the paper's S3 client with whole-file caching.
func NewS3() *S3 { return &S3{CacheEnabled: true, label: "s3"} }

// NewS3NoCache returns the cache-less variant for the ablation.
func NewS3NoCache() *S3 { return &S3{CacheEnabled: false, label: "s3-nocache"} }

// Name implements System.
func (s *S3) Name() string { return s.label }

// Description implements System.
func (s *S3) Description() string {
	if s.CacheEnabled {
		return "Amazon S3 with per-node whole-file client cache"
	}
	return "Amazon S3, no client cache (every access is a GET/PUT)"
}

// MinWorkers implements System.
func (s *S3) MinWorkers() int { return 1 }

// ExtraNodeTypes implements System: S3 is a hosted service, no nodes.
func (s *S3) ExtraNodeTypes() []cluster.InstanceType { return nil }

// Init implements System.
func (s *S3) Init(env *Env) error {
	if err := checkInit(s, env); err != nil {
		return err
	}
	s.env = env
	s.service = flow.NewResource("s3-service", s3AggregateRate)
	s.objects = make(map[*workflow.File]bool)
	s.nodeCached = make(map[*cluster.Node]map[*workflow.File]bool, len(env.Workers))
	s.pageCaches = make(map[*cluster.Node]*PageCache, len(env.Workers))
	for _, w := range env.Workers {
		s.nodeCached[w] = make(map[*workflow.File]bool)
		s.pageCaches[w] = NewPageCache(w)
	}
	return nil
}

// PreStage implements System: inputs are uploaded to the bucket before the
// measured window.
func (s *S3) PreStage(files []*workflow.File) {
	for _, f := range files {
		s.objects[f] = true
	}
}

// get downloads f from S3 to node's local disk.
func (s *S3) get(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	if !s.objects[f] {
		panic(fmt.Sprintf("s3: GET of object %q that was never PUT", f.Name))
	}
	s.stats.Gets++
	s.stats.BytesDownloaded += f.Size
	s.stats.NetworkBytes += f.Size
	p.Sleep(s3GetLatency)
	// Stream from the service through the NIC onto the local disk: the
	// first of the paper's "each file must be written twice" writes. The
	// per-connection ceiling is a pooled cap from the flow graph.
	conn := s.env.Net.AcquireCap("s3-conn", s3PerConnRate)
	node.Disk.Write(p, f.Size, conn, s.service, node.NICIn)
	s.env.Net.ReleaseCap(conn)
	s.pageCaches[node].Insert(f)
}

// put uploads f from node's local disk to S3.
func (s *S3) put(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	s.stats.Puts++
	s.stats.BytesUploaded += f.Size
	s.stats.NetworkBytes += f.Size
	p.Sleep(s3PutLatency)
	conn := s.env.Net.AcquireCap("s3-conn", s3PerConnRate)
	if s.pageCaches[node].Lookup(f) {
		// Freshly written data is still in the page cache: upload
		// straight from memory.
		s.env.Net.Transfer(p, f.Size, conn, s.service, node.NICOut)
	} else {
		node.Disk.Read(p, f.Size, conn, s.service, node.NICOut)
	}
	s.env.Net.ReleaseCap(conn)
	s.objects[f] = true
}

// Read implements System: ensure a local copy (GET on cache miss), then
// the task reads it from local disk.
func (s *S3) Read(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	s.stats.Reads++
	if s.CacheEnabled && s.nodeCached[node][f] {
		s.stats.CacheHits++
		s.env.recordCache(p, true, "client", node, f)
	} else {
		s.stats.CacheMisses++
		s.env.recordCache(p, false, "client", node, f)
		s.get(p, node, f)
		if s.CacheEnabled {
			s.nodeCached[node][f] = true
		}
	}
	// Local read of the staged copy (second of the paper's "read twice").
	if s.pageCaches[node].Lookup(f) {
		return
	}
	node.Disk.Read(p, f.Size)
	s.pageCaches[node].Insert(f)
}

// Write implements System: the job writes to local disk, then the wrapper
// uploads the output and remembers it in the node cache so later jobs on
// this node can reuse it without a GET.
func (s *S3) Write(p *sim.Proc, node *cluster.Node, f *workflow.File) {
	s.stats.Writes++
	node.Disk.Write(p, f.Size)
	s.pageCaches[node].Insert(f)
	s.put(p, node, f)
	if s.CacheEnabled {
		s.nodeCached[node][f] = true
	}
}

// Stats implements System.
func (s *S3) Stats() Stats { return s.stats }

// CachedOn reports whether node already holds a local copy of f, letting
// a data-aware scheduler raise the client cache's hit rate.
func (s *S3) CachedOn(node *cluster.Node, f *workflow.File) bool {
	return s.CacheEnabled && s.nodeCached[node][f]
}
