package cross

import (
	"bytes"
	"strings"
	"testing"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/harness"
)

// recordPair runs the known-divergent pair — the same scaled-down
// Montage on nfs-sync and on pvfs — through the recorded sweep at the
// given parallelism and returns the two logs.
func recordPair(t *testing.T, parallel int) (a, b []byte) {
	t.Helper()
	w, err := apps.Montage(apps.MontageConfig{Images: 10})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := harness.SweepRecorded([]harness.RunConfig{
		{App: "montage", Storage: "nfs-sync", Workers: 2, Workflow: w},
		{App: "montage", Storage: "pvfs", Workers: 2, Workflow: w},
	}, parallel)
	if err != nil {
		t.Fatal(err)
	}
	return cells[0].Log, cells[1].Log
}

// TestCrossReportDivergentPair compares nfs-sync against pvfs on the
// same workflow: the report must match every task, find a first
// divergent transfer, and render deterministically.
func TestCrossReportDivergentPair(t *testing.T) {
	t.Parallel()
	a, b := recordPair(t, 1)
	r, err := Compare(a, b, Options{ALabel: "nfs-sync", BLabel: "pvfs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tasks) == 0 {
		t.Fatal("no tasks matched")
	}
	if r.AOnlyTasks != 0 || r.BOnlyTasks != 0 {
		t.Errorf("same workflow, but %d/%d unmatched tasks", r.AOnlyTasks, r.BOnlyTasks)
	}
	if len(r.Transfers) == 0 {
		t.Fatal("no transfers matched")
	}
	if r.FirstDivergent == nil {
		t.Fatal("nfs-sync vs pvfs produced no divergent transfer")
	}
	out := r.String()
	for _, want := range []string{"first divergent transfer", "Per-task deltas", "Per-transfer deltas", "Task Δdur"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestCrossReportParallelDeterminism is the satellite acceptance test:
// the first-divergent-transfer drilldown (and the whole rendered
// report) is identical whether the pair was recorded at -parallel 1 or
// -parallel 8.
func TestCrossReportParallelDeterminism(t *testing.T) {
	t.Parallel()
	a1, b1 := recordPair(t, 1)
	a8, b8 := recordPair(t, 8)
	if !bytes.Equal(a1, a8) || !bytes.Equal(b1, b8) {
		t.Fatal("recorded logs differ between -parallel 1 and -parallel 8")
	}
	opt := Options{ALabel: "nfs-sync", BLabel: "pvfs"}
	r1, err := Compare(a1, b1, opt)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Compare(a8, b8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.FirstDivergent == nil || r8.FirstDivergent == nil {
		t.Fatal("no first divergent transfer found")
	}
	if *r1.FirstDivergent != *r8.FirstDivergent {
		t.Errorf("first divergent transfer differs:\n p1: %+v\n p8: %+v",
			*r1.FirstDivergent, *r8.FirstDivergent)
	}
	if out1, out8 := r1.String(), r8.String(); out1 != out8 {
		t.Errorf("rendered reports differ:\n%s\nvs\n%s", out1, out8)
	}
}

// TestCrossReportSelfCompare compares a log against itself: zero
// deltas, no divergence.
func TestCrossReportSelfCompare(t *testing.T) {
	t.Parallel()
	a, _ := recordPair(t, 1)
	r, err := Compare(a, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.FirstDivergent != nil {
		t.Errorf("self-comparison diverged: %+v", *r.FirstDivergent)
	}
	for _, d := range r.Tasks {
		if d.DStart() != 0 || d.DDur() != 0 {
			t.Fatalf("self-comparison has nonzero task delta: %+v", d)
		}
	}
	if !strings.Contains(r.Summary(), "no divergent transfers") {
		t.Errorf("summary missing clean verdict:\n%s", r.Summary())
	}
}

// TestCrossReportRetryOccurrences pins occurrence matching: a run with
// injected retries re-stages inputs, and those repeats either pair with
// the other run's repeats or are counted unmatched — never misaligned.
func TestCrossReportRetryOccurrences(t *testing.T) {
	t.Parallel()
	w, err := apps.Montage(apps.MontageConfig{Images: 10})
	if err != nil {
		t.Fatal(err)
	}
	record := func(rate float64) []byte {
		var buf bytes.Buffer
		_, err := harness.RunRecorded(harness.RunConfig{
			App: "montage", Storage: "nfs", Workers: 2, Workflow: w,
			FailureRate: rate,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	clean, faulty := record(0), record(0.3)
	r, err := Compare(clean, faulty, Options{ALabel: "clean", BLabel: "faulty"})
	if err != nil {
		t.Fatal(err)
	}
	if r.BOnlyTransfers == 0 {
		t.Fatal("test premise broken: faulty run produced no extra transfers")
	}
	if r.AOnlyTransfers != 0 {
		t.Errorf("clean run has %d transfers the faulty run lacks", r.AOnlyTransfers)
	}
	if len(r.Tasks) == 0 {
		t.Fatal("no tasks matched")
	}
}

// TestCrossReportCorruptLog asserts decode errors surface as errors.
func TestCrossReportCorruptLog(t *testing.T) {
	t.Parallel()
	a, b := recordPair(t, 1)
	bad := append([]byte{}, b...)
	bad = bad[:len(bad)-3]
	_, err := Compare(a, bad, Options{})
	if err == nil {
		t.Fatal("truncated log compared without error")
	}
	if !strings.Contains(err.Error(), "log B") {
		t.Errorf("error does not name the bad side: %v", err)
	}
}
