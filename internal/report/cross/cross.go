// Package cross builds paired cross-scenario reports from two recorded
// event logs: per-task and per-transfer timing deltas, rendered as
// aligned tables and delta charts, plus a drilldown to the exact
// transfer where the two runs first diverged. Because recorded logs are
// deterministic, every comparison is a pure function of the two byte
// streams — the same pair of logs yields byte-identical reports at any
// sweep parallelism.
//
// The typical pairings: two storage backends on the same workflow (the
// paper's core question — *why* is PVFS faster than NFS here, not just
// *that* it is), the same scenario under two flow-solver versions
// (where the first divergent transfer localizes a numeric difference),
// or a baseline against a failure/outage ablation.
package cross

import (
	"fmt"
	"sort"

	"ec2wfsim/internal/eventlog"
	"ec2wfsim/internal/report"
)

// Options configure a comparison.
type Options struct {
	// ALabel and BLabel name the two sides in rendered output; empty
	// defaults to "A" and "B".
	ALabel, BLabel string
	// Tol is the timing tolerance (seconds) below which a start or
	// duration difference does not count as a divergence. Zero — the
	// default — demands exact equality, the right bar for comparing
	// runs that claim bit-identity (e.g. flow-solver versions).
	Tol float64
}

// TaskDelta pairs one task's timing across the two runs. Start is the
// task's first pickup (its first task-start event); Dur is the
// successful attempt's start-to-publish duration (the task-finish
// event's dur field).
type TaskDelta struct {
	Task           string
	AStart, BStart float64
	ADur, BDur     float64
}

// DStart and DDur are the B-minus-A deltas.
func (d TaskDelta) DStart() float64 { return d.BStart - d.AStart }
func (d TaskDelta) DDur() float64   { return d.BDur - d.ADur }

// TransferDelta pairs one transfer across the two runs. Transfers are
// matched by (task, phase, file, occurrence): occurrence numbers
// repeated transfers of the same file by the same task from 0 in
// stream order, so a retried attempt's re-staged inputs pair with the
// other run's same repeat rather than off-by-one shifting every later
// match.
type TransferDelta struct {
	Task, Phase, File string
	Occurrence        int
	Size              float64
	AStart, BStart    float64
	ADur, BDur        float64
}

// DStart and DDur are the B-minus-A deltas.
func (d TransferDelta) DStart() float64 { return d.BStart - d.AStart }
func (d TransferDelta) DDur() float64   { return d.BDur - d.ADur }

// Key renders the match key for drilldown messages.
func (d TransferDelta) Key() string {
	if d.Occurrence == 0 {
		return fmt.Sprintf("%s %s %s", d.Task, d.Phase, d.File)
	}
	return fmt.Sprintf("%s %s %s (repeat %d)", d.Task, d.Phase, d.File, d.Occurrence)
}

// Report is one paired comparison of two recorded runs.
type Report struct {
	ALabel, BLabel   string
	AHeader, BHeader eventlog.Header
	// Tasks holds the per-task deltas for every task that finished in
	// both runs, in A start order.
	Tasks []TaskDelta
	// Transfers holds the per-transfer deltas for every matched
	// transfer, in A start order.
	Transfers []TransferDelta
	// AOnlyTasks/BOnlyTasks count tasks that finished in only one run;
	// AOnlyTransfers/BOnlyTransfers count unmatched transfers (a retry
	// in one run re-stages inputs the other run staged once).
	AOnlyTasks, BOnlyTasks         int
	AOnlyTransfers, BOnlyTransfers int
	// FirstDivergent is the first matched transfer — in A start order —
	// whose start or duration differs by more than Tol; nil when every
	// matched transfer agrees within Tol.
	FirstDivergent *TransferDelta
	Tol            float64
}

// transferKey matches transfers across runs.
type transferKey struct {
	task, phase, file string
	occurrence        int
}

// runView is one log reduced to the pieces a comparison needs.
type runView struct {
	header    eventlog.Header
	taskStart map[string]float64 // first task-start per task
	taskDur   map[string]float64 // task-finish dur per task
	taskOrder []string           // tasks in first-start order
	transfers map[transferKey]*transferTimes
	transfOrd []transferKey // matched keys in start order
}

type transferTimes struct {
	start, dur, size float64
}

// viewOf reduces a decoded stream. Transfer timing is taken from the
// drain event (which carries the duration); its start is drain minus
// dur, identical to the paired transfer-start's timestamp.
func viewOf(h eventlog.Header, events []eventlog.Event) *runView {
	v := &runView{
		header:    h,
		taskStart: make(map[string]float64),
		taskDur:   make(map[string]float64),
		transfers: make(map[transferKey]*transferTimes),
	}
	occ := make(map[transferKey]int)
	for _, e := range events {
		switch e.Kind {
		case eventlog.TaskStart:
			if _, ok := v.taskStart[e.Task]; !ok {
				v.taskStart[e.Task] = e.T
				v.taskOrder = append(v.taskOrder, e.Task)
			}
		case eventlog.TaskFinish:
			if _, ok := v.taskDur[e.Task]; !ok {
				v.taskDur[e.Task] = e.Dur
			}
		case eventlog.TransferDrain:
			base := transferKey{task: e.Task, phase: e.Phase, file: e.File}
			k := base
			k.occurrence = occ[base]
			occ[base]++
			v.transfers[k] = &transferTimes{start: e.T - e.Dur, dur: e.Dur, size: e.Size}
			v.transfOrd = append(v.transfOrd, k)
		}
	}
	return v
}

// Compare decodes two recorded logs and pairs them. Either log failing
// to decode — corruption, truncation — is an error, not a divergence.
func Compare(aData, bData []byte, opt Options) (*Report, error) {
	ah, aev, _, err := eventlog.Decode(aData)
	if err != nil {
		return nil, fmt.Errorf("cross: log A: %w", err)
	}
	bh, bev, _, err := eventlog.Decode(bData)
	if err != nil {
		return nil, fmt.Errorf("cross: log B: %w", err)
	}
	a, b := viewOf(ah, aev), viewOf(bh, bev)

	r := &Report{
		ALabel: opt.ALabel, BLabel: opt.BLabel,
		AHeader: ah, BHeader: bh,
		Tol: opt.Tol,
	}
	if r.ALabel == "" {
		r.ALabel = "A"
	}
	if r.BLabel == "" {
		r.BLabel = "B"
	}

	for _, task := range a.taskOrder {
		aDur, aOK := a.taskDur[task]
		bDur, bOK := b.taskDur[task]
		if !aOK {
			continue // started but never finished in A (shouldn't happen in complete logs)
		}
		if !bOK {
			r.AOnlyTasks++
			continue
		}
		r.Tasks = append(r.Tasks, TaskDelta{
			Task:   task,
			AStart: a.taskStart[task], BStart: b.taskStart[task],
			ADur: aDur, BDur: bDur,
		})
	}
	r.BOnlyTasks = len(b.taskDur) - len(r.Tasks)

	matchedB := make(map[transferKey]bool, len(b.transfers))
	for _, k := range a.transfOrd {
		at := a.transfers[k]
		bt, ok := b.transfers[k]
		if !ok {
			r.AOnlyTransfers++
			continue
		}
		matchedB[k] = true
		d := TransferDelta{
			Task: k.task, Phase: k.phase, File: k.file, Occurrence: k.occurrence,
			Size:   at.size,
			AStart: at.start, BStart: bt.start,
			ADur: at.dur, BDur: bt.dur,
		}
		r.Transfers = append(r.Transfers, d)
		if r.FirstDivergent == nil && (abs(d.DStart()) > opt.Tol || abs(d.DDur()) > opt.Tol) {
			dd := d
			r.FirstDivergent = &dd
		}
	}
	r.BOnlyTransfers = len(b.transfers) - len(matchedB)
	return r, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// topBy returns the indices of the n largest elements by |mag|, ties
// broken by original (A start) order so rendering is deterministic.
func topBy(count, n int, mag func(int) float64) []int {
	idx := make([]int, count)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return abs(mag(idx[i])) > abs(mag(idx[j]))
	})
	if n > 0 && n < len(idx) {
		idx = idx[:n]
	}
	return idx
}

// TaskTable renders the n largest per-task duration deltas (0 = all).
func (r *Report) TaskTable(n int) *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Per-task deltas (%s vs %s), largest |Δdur| first", r.BLabel, r.ALabel),
		Header: []string{"task", r.ALabel + " start", r.BLabel + " start", "Δstart", r.ALabel + " dur", r.BLabel + " dur", "Δdur"},
	}
	for _, i := range topBy(len(r.Tasks), n, func(i int) float64 { return r.Tasks[i].DDur() }) {
		d := r.Tasks[i]
		t.AddRow(d.Task,
			fmt.Sprintf("%.3f", d.AStart), fmt.Sprintf("%.3f", d.BStart),
			fmt.Sprintf("%+.3f", d.DStart()),
			fmt.Sprintf("%.3f", d.ADur), fmt.Sprintf("%.3f", d.BDur),
			fmt.Sprintf("%+.3f", d.DDur()))
	}
	return t
}

// TransferTable renders the n largest per-transfer duration deltas
// (0 = all).
func (r *Report) TransferTable(n int) *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Per-transfer deltas (%s vs %s), largest |Δdur| first", r.BLabel, r.ALabel),
		Header: []string{"task", "phase", "file", r.ALabel + " dur", r.BLabel + " dur", "Δdur", "Δstart"},
	}
	for _, i := range topBy(len(r.Transfers), n, func(i int) float64 { return r.Transfers[i].DDur() }) {
		d := r.Transfers[i]
		file := d.File
		if d.Occurrence > 0 {
			file = fmt.Sprintf("%s#%d", d.File, d.Occurrence)
		}
		t.AddRow(d.Task, d.Phase, file,
			fmt.Sprintf("%.3f", d.ADur), fmt.Sprintf("%.3f", d.BDur),
			fmt.Sprintf("%+.3f", d.DDur()), fmt.Sprintf("%+.3f", d.DStart()))
	}
	return t
}

// DeltaChart renders the n largest per-task duration deltas as a bar
// chart (0 = all) — the visual answer to "which tasks got slower".
func (r *Report) DeltaChart(n int) *report.BarChart {
	c := &report.BarChart{
		Title: fmt.Sprintf("Task Δdur, %s minus %s", r.BLabel, r.ALabel),
		Unit:  "s",
	}
	for _, i := range topBy(len(r.Tasks), n, func(i int) float64 { return r.Tasks[i].DDur() }) {
		c.Add(r.Tasks[i].Task, r.Tasks[i].DDur())
	}
	return c
}

// Summary renders the headline comparison: match counts and the first
// divergent transfer, if any.
func (r *Report) Summary() string {
	s := fmt.Sprintf("%d tasks and %d transfers matched", len(r.Tasks), len(r.Transfers))
	if n := r.AOnlyTasks + r.BOnlyTasks; n > 0 {
		s += fmt.Sprintf("; %d tasks unmatched (%d only in %s, %d only in %s)",
			n, r.AOnlyTasks, r.ALabel, r.BOnlyTasks, r.BLabel)
	}
	if n := r.AOnlyTransfers + r.BOnlyTransfers; n > 0 {
		s += fmt.Sprintf("; %d transfers unmatched (%d only in %s, %d only in %s)",
			n, r.AOnlyTransfers, r.ALabel, r.BOnlyTransfers, r.BLabel)
	}
	s += "\n"
	if d := r.FirstDivergent; d != nil {
		s += fmt.Sprintf("first divergent transfer (by %s start order): %s\n", r.ALabel, d.Key())
		s += fmt.Sprintf("  %s: start %.6f dur %.6f\n", r.ALabel, d.AStart, d.ADur)
		s += fmt.Sprintf("  %s: start %.6f dur %.6f (Δstart %+.6f, Δdur %+.6f)\n",
			r.BLabel, d.BStart, d.BDur, d.DStart(), d.DDur())
	} else {
		s += fmt.Sprintf("no divergent transfers (tolerance %g s)\n", r.Tol)
	}
	return s
}

// String renders the full report: summary, top task and transfer
// tables, and the delta chart.
func (r *Report) String() string {
	const top = 15
	return r.Summary() + "\n" +
		r.TaskTable(top).String() + "\n" +
		r.TransferTable(top).String() + "\n" +
		r.DeltaChart(top).String()
}
