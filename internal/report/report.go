// Package report renders the harness's tables and figures as text: aligned
// tables for Table-I-style data and ASCII bar charts standing in for the
// paper's runtime and cost figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// BarChart renders grouped horizontal bars, one group per series label —
// the text analogue of the paper's grouped bar figures.
type BarChart struct {
	Title string
	Unit  string // e.g. "s" or "$"
	Bars  []Bar
	// Width is the maximum bar length in characters (default 50).
	Width int
}

// Bar is one labelled value.
type Bar struct {
	Label string
	Value float64
}

// Add appends a bar.
func (c *BarChart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// String renders the chart with bars scaled to the maximum value.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	max := 0.0
	labelW := 0
	for _, b := range c.Bars {
		if b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var out strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&out, "%s\n", c.Title)
	}
	for _, b := range c.Bars {
		n := 0
		if max > 0 {
			n = int(b.Value / max * float64(width))
		}
		if n == 0 && b.Value > 0 {
			n = 1
		}
		fmt.Fprintf(&out, "%-*s | %s %.*f%s\n", labelW, b.Label,
			strings.Repeat("#", n), precision(b.Value), b.Value, c.Unit)
	}
	return out.String()
}

// precision picks decimals so costs show cents and makespans show whole
// seconds.
func precision(v float64) int {
	if v < 100 {
		return 2
	}
	return 0
}
