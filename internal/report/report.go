// Package report renders the harness's tables and figures as text: aligned
// tables for Table-I-style data and ASCII bar charts standing in for the
// paper's runtime and cost figures.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Ragged rows: cells beyond the header carry no column width
			// (mirroring the i < len(widths) guard above); render them
			// unpadded instead of panicking.
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// BarChart renders grouped horizontal bars, one group per series label —
// the text analogue of the paper's grouped bar figures.
type BarChart struct {
	Title string
	Unit  string // e.g. "s" or "$"
	Bars  []Bar
	// Width is the maximum bar length in characters (default 50).
	Width int
}

// Bar is one labelled value, optionally with a symmetric error (e.g. the
// stddev over replicate seeds) rendered as a ± band and a whisker.
type Bar struct {
	Label string
	Value float64
	Err   float64
}

// Add appends a bar.
func (c *BarChart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// AddErr appends a bar with a ± error band.
func (c *BarChart) AddErr(label string, value, err float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value, Err: err})
}

// String renders the chart with bars scaled to the maximum magnitude
// (value plus error, so whiskers always fit the width). Negative values
// — delta charts plot overheads that can dip below zero — render as
// empty bars rather than panicking strings.Repeat.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	max := 0.0
	labelW := 0
	for _, b := range c.Bars {
		if m := math.Abs(b.Value) + math.Abs(b.Err); m > max {
			max = m
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	// scale maps a value to a character count, clamped to [0, width] so
	// negative, NaN or infinite inputs cannot produce an invalid repeat
	// count or overlong row.
	scale := func(v float64) int {
		if max <= 0 || math.IsInf(max, 0) {
			return 0
		}
		n := int(v / max * float64(width))
		if n < 0 { // negative values, and int(NaN)'s usual minint result
			return 0
		}
		if n > width {
			return width
		}
		return n
	}
	var out strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&out, "%s\n", c.Title)
	}
	for _, b := range c.Bars {
		n := scale(b.Value)
		if n == 0 && b.Value > 0 {
			n = 1
		}
		bar := strings.Repeat("#", n)
		if err := math.Abs(b.Err); err > 0 && !math.IsNaN(err) {
			// Whisker: dashes from the bar tip to value+err, capped with
			// '|' — the upper half of the ± band (the lower half lies
			// under the bar itself). A negative value has no bar to
			// anchor the glyph, so only the textual ± band is shown.
			if hi := scale(b.Value + err); hi > n && b.Value >= 0 {
				bar += strings.Repeat("-", hi-n-1) + "|"
			}
			fmt.Fprintf(&out, "%-*s | %s %.*f ± %.*f%s\n", labelW, b.Label,
				bar, precision(b.Value), b.Value, precision(err), err, c.Unit)
			continue
		}
		fmt.Fprintf(&out, "%-*s | %s %.*f%s\n", labelW, b.Label,
			bar, precision(b.Value), b.Value, c.Unit)
	}
	return out.String()
}

// precision picks decimals so costs show cents and makespans show whole
// seconds.
func precision(v float64) int {
	if v < 100 {
		return 2
	}
	return 0
}
