package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Header: []string{"Application", "I/O"},
	}
	tb.AddRow("Montage", "High")
	tb.AddRow("Epigenome", "Low")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	// The I/O column must start at the same offset in every data line.
	idx := strings.Index(lines[1], "I/O")
	for _, row := range lines[3:] {
		if len(row) <= idx {
			t.Fatalf("row shorter than header: %q", row)
		}
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator missing: %q", lines[2])
	}
}

func TestTableWideCellsGrowColumns(t *testing.T) {
	tb := &Table{Header: []string{"a"}}
	tb.AddRow("a-very-long-cell")
	out := tb.String()
	if !strings.Contains(out, "a-very-long-cell") {
		t.Error("cell truncated")
	}
	sep := strings.Split(out, "\n")[1]
	if len(sep) < len("a-very-long-cell") {
		t.Errorf("separator %q shorter than widest cell", sep)
	}
}

func TestBarChartScaling(t *testing.T) {
	c := &BarChart{Title: "runtimes", Unit: "s", Width: 20}
	c.Add("fast", 10)
	c.Add("slow", 100)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), out)
	}
	fast := strings.Count(lines[1], "#")
	slow := strings.Count(lines[2], "#")
	if slow != 20 {
		t.Errorf("max bar = %d chars, want full width 20", slow)
	}
	if fast != 2 {
		t.Errorf("fast bar = %d chars, want 2 (10%% of 20)", fast)
	}
}

func TestBarChartTinyNonZeroStillVisible(t *testing.T) {
	c := &BarChart{Width: 10}
	c.Add("tiny", 0.001)
	c.Add("huge", 1000)
	out := c.String()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "tiny") && !strings.Contains(line, "#") {
			t.Error("non-zero bar rendered invisible")
		}
	}
}

func TestBarChartPrecision(t *testing.T) {
	c := &BarChart{Unit: "$"}
	c.Add("cheap", 0.68)
	c.Add("slow", 5363)
	out := c.String()
	if !strings.Contains(out, "0.68$") {
		t.Errorf("cents lost:\n%s", out)
	}
	if !strings.Contains(out, "5363$") {
		t.Errorf("large value should drop decimals:\n%s", out)
	}
}

func TestTableRaggedRowsDoNotPanic(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("1")                    // short row
	tb.AddRow("1", "2", "3", "extra") // more cells than the header
	out := tb.String()
	for _, want := range []string{"1", "2", "3", "extra"} {
		if !strings.Contains(out, want) {
			t.Errorf("ragged table lost cell %q:\n%s", want, out)
		}
	}
}

func TestBarChartNegativeValuesClamp(t *testing.T) {
	// Delta charts (overhead vs a baseline) can dip below zero; a
	// negative value must render an empty bar, not panic strings.Repeat.
	c := &BarChart{Width: 10, Unit: "s"}
	c.Add("regression", -5)
	c.Add("overhead", 10)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Contains(lines[0], "#") {
		t.Errorf("negative bar rendered hashes: %q", lines[0])
	}
	if !strings.Contains(lines[0], "-5") {
		t.Errorf("negative value lost: %q", lines[0])
	}
	// Scaling is against max(|value|): 10 fills the width.
	if got := strings.Count(lines[1], "#"); got != 10 {
		t.Errorf("positive bar = %d chars, want 10", got)
	}
}

func TestBarChartErrorBars(t *testing.T) {
	c := &BarChart{Width: 20, Unit: "s"}
	c.AddErr("cell", 50, 50) // value+err = 100 spans the full width
	c.AddErr("sure", 100, 0)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "±") {
		t.Errorf("error bar missing ± band: %q", lines[0])
	}
	// The first "|" is the label separator; a whisker adds a second cap
	// after the dashes.
	if strings.Count(lines[0], "|") != 2 || !strings.Contains(lines[0], "-") {
		t.Errorf("error bar missing whisker glyph: %q", lines[0])
	}
	// value 50 of max 100 over width 20 → 10 hashes; whisker to 20 chars.
	if got := strings.Count(lines[0], "#"); got != 10 {
		t.Errorf("bar = %d chars, want 10", got)
	}
	// Zero error renders exactly like Add (no ± band, no whisker cap).
	if strings.Contains(lines[1], "±") || strings.Count(lines[1], "|") != 1 {
		t.Errorf("zero-error bar grew a band: %q", lines[1])
	}
}

func TestBarChartErrZeroMatchesAdd(t *testing.T) {
	a := &BarChart{Width: 20, Unit: "s"}
	a.Add("x", 42)
	b := &BarChart{Width: 20, Unit: "s"}
	b.AddErr("x", 42, 0)
	if a.String() != b.String() {
		t.Errorf("AddErr with zero error diverges from Add:\n%q\nvs\n%q", a.String(), b.String())
	}
}

func TestEmptyChartAndTable(t *testing.T) {
	if out := (&BarChart{Title: "empty"}).String(); !strings.Contains(out, "empty") {
		t.Error("empty chart lost its title")
	}
	tb := &Table{Header: []string{"x"}}
	if out := tb.String(); !strings.Contains(out, "x") {
		t.Error("empty table lost its header")
	}
}

// TestEmissionOrderIsInsertionOrder pins the package's determinism
// contract: Table and BarChart emit rows/bars in exactly the order the
// caller supplied them — no internal sorting, no map involved — so the
// rendered bytes are a pure function of the insertion sequence.
// Callers that aggregate into a map must sort keys before Add/AddRow
// (the wfvet maporder rule enforces that side of the bargain).
func TestEmissionOrderIsInsertionOrder(t *testing.T) {
	build := func(order []string) string {
		tb := &Table{Header: []string{"app", "val"}}
		ch := &BarChart{Width: 10}
		for i, k := range order {
			tb.AddRow(k, "1")
			ch.Add(k, float64(i+1))
		}
		return tb.String() + ch.String()
	}
	keys := []string{"montage", "broadband", "epigenome"}
	first := build(keys)
	// Byte-stable across repeated renders of the same insertion order.
	for i := 0; i < 3; i++ {
		if got := build(keys); got != first {
			t.Fatalf("render %d diverged from first render:\n%q\nvs\n%q", i, got, first)
		}
	}
	// Insertion order is preserved verbatim: labels appear in the
	// rendered output in the order supplied, not alphabetized.
	idx := make([]int, len(keys))
	for i, k := range keys {
		idx[i] = strings.Index(first, k)
		if idx[i] < 0 {
			t.Fatalf("label %q missing from output:\n%s", k, first)
		}
	}
	if !(idx[0] < idx[1] && idx[1] < idx[2]) {
		t.Errorf("labels not emitted in insertion order (offsets %v):\n%s", idx, first)
	}
	// A different insertion order yields a correspondingly different
	// emission order — the renderer does not reorder behind the
	// caller's back.
	reversed := build([]string{"epigenome", "broadband", "montage"})
	if strings.Index(reversed, "epigenome") > strings.Index(reversed, "montage") {
		t.Errorf("reversed insertion did not reverse emission:\n%s", reversed)
	}
}
