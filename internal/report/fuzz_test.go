package report

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzBarChart hammers the renderer with adversarial values — negative,
// NaN, infinite, huge — and asserts it never panics (strings.Repeat with
// a negative count was a real crash) and never exceeds the row budget.
func FuzzBarChart(f *testing.F) {
	f.Add("montage n=4", 3621.0, 0.0, 50)
	f.Add("delta", -42.5, 3.0, 20)
	f.Add("tiny", 1e-12, 1e-13, 10)
	f.Add("nan", math.NaN(), math.NaN(), 30)
	f.Add("inf", math.Inf(1), 1.0, 40)
	f.Add("", 0.0, -1.0, 0)
	f.Fuzz(func(t *testing.T, label string, value, err float64, width int) {
		// Arbitrary labels: must never panic or emit invalid UTF-8.
		c := &BarChart{Title: "fuzz", Unit: "s", Width: width % 500}
		c.AddErr(label, value, err)
		c.Add(label, -value)
		if out := c.String(); !utf8.ValidString(out) && utf8.ValidString(label) {
			t.Errorf("invalid UTF-8 from valid input: %q", out)
		}
		// Width bound, checked with a separator-free label: an arbitrary
		// label (or a whisker-only bar) can embed " | " and make line
		// parsing ambiguous, so the glyph run is only identifiable when
		// the label is known to be clean.
		c2 := &BarChart{Width: width % 500}
		c2.AddErr("L", value, err)
		c2.Add("L", -value)
		w := c2.Width
		if w <= 0 {
			w = 50
		}
		for _, line := range strings.Split(c2.String(), "\n") {
			_, rest, ok := strings.Cut(line, " | ")
			if !ok {
				continue
			}
			bar, _, _ := strings.Cut(rest, " ")
			if len(bar) > w {
				t.Errorf("bar %d chars overflows width %d: %q", len(bar), w, line)
			}
		}
	})
}

// FuzzTable asserts rendering tolerates ragged rows: any mix of row
// lengths versus the header must render without panicking (indexing
// widths[i] out of range was a real crash) and keep every cell.
func FuzzTable(f *testing.F) {
	f.Add("h1\x00h2", "a", "b\x00c\x00d", "e")
	f.Add("only", "", "x\x00y", "")
	f.Add("", "lone", "", "wide\x00wider\x00widest")
	f.Fuzz(func(t *testing.T, header, r1, r2, r3 string) {
		split := func(s string) []string {
			if s == "" {
				return nil
			}
			return strings.Split(s, "\x00")
		}
		tb := &Table{Title: "fuzz", Header: split(header)}
		for _, r := range [][]string{split(r1), split(r2), split(r3)} {
			tb.AddRow(r...)
		}
		out := tb.String()
		for _, row := range tb.Rows {
			for _, cell := range row {
				if !strings.Contains(out, cell) {
					t.Errorf("cell %q dropped from rendering", cell)
				}
			}
		}
	})
}
