package disk

import (
	"math"
	"testing"

	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
)

func approx(t *testing.T, got, want, relTol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > relTol*want {
		t.Errorf("%s: got %g, want %g (rel tol %g)", msg, got, want, relTol)
	}
}

// The paper's Section III.C observations, encoded as assertions on the
// calibrated profiles.
func TestRAID0ProfileMatchesPaperObservations(t *testing.T) {
	raid := RAID0(EphemeralSingle(), 4)
	if raid.FirstWrite < units.MBps(80) || raid.FirstWrite > units.MBps(100) {
		t.Errorf("RAID0 first write = %s, want 80-100 MB/s", units.Rate(raid.FirstWrite))
	}
	if raid.SteadyWrite < units.MBps(350) || raid.SteadyWrite > units.MBps(400) {
		t.Errorf("RAID0 steady write = %s, want 350-400 MB/s", units.Rate(raid.SteadyWrite))
	}
	if raid.Read < units.MBps(290) || raid.Read > units.MBps(330) {
		t.Errorf("RAID0 read = %s, want ~310 MB/s", units.Rate(raid.Read))
	}
	single := EphemeralSingle()
	if single.FirstWrite != units.MBps(20) {
		t.Errorf("single first write = %s, want 20 MB/s", units.Rate(single.FirstWrite))
	}
	if single.Read != units.MBps(110) {
		t.Errorf("single read = %s, want 110 MB/s", units.Rate(single.Read))
	}
}

func TestRAID0SingleDeviceIdentity(t *testing.T) {
	dev := EphemeralSingle()
	if got := RAID0(dev, 1); got != dev {
		t.Errorf("RAID0(dev, 1) = %+v, want identity", got)
	}
}

func TestRAID0CapacityScales(t *testing.T) {
	raid := RAID0(EphemeralSingle(), 4)
	approx(t, raid.Capacity, 1690*units.GB, 0.01, "c1.xlarge total local storage")
}

// Zeroing 50 GB on a single uninitialized ephemeral disk takes ~42 minutes
// (the paper's Montage argument against pre-initialization).
func TestZeroInitialize50GBTakes42Minutes(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	d := New(net, "eph", EphemeralSingle())
	var done float64
	e.Go("init", func(p *sim.Proc) {
		d.ZeroInitialize(p, 50*units.GB)
		done = p.Now()
	})
	e.Run()
	approx(t, done/units.Minute, 41.7, 0.02, "50 GB zero-init minutes")
	if !d.Initialized() {
		t.Error("disk not marked initialized")
	}
}

func TestFirstWriteThenSteadyRate(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	d := New(net, "raid", RAID0(EphemeralSingle(), 4))
	var tFirst, tSecond float64
	e.Go("writer", func(p *sim.Proc) {
		start := p.Now()
		d.Write(p, 8*units.GB)
		tFirst = p.Now() - start
		d.MarkInitialized()
		start = p.Now()
		d.Write(p, 8*units.GB)
		tSecond = p.Now() - start
	})
	e.Run()
	// 8 GB at 80 MB/s = 100 s; at 375 MB/s = ~21.3 s.
	approx(t, tFirst, 100, 0.01, "first write 8 GB")
	approx(t, tSecond, 8e9/(375e6), 0.01, "steady write 8 GB")
	if ratio := tFirst / tSecond; ratio < 4 || ratio > 5 {
		t.Errorf("first/steady write ratio = %.2f, want 4-5x penalty", ratio)
	}
}

func TestConcurrentWritersShareDisk(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	d := New(net, "raid", RAID0(EphemeralSingle(), 4))
	finish := make([]float64, 4)
	for i := 0; i < 4; i++ {
		i := i
		e.Go("w", func(p *sim.Proc) {
			d.Write(p, 1*units.GB)
			finish[i] = p.Now()
		})
	}
	e.Run()
	// 4 GB total through an 80 MB/s channel: 50 s makespan, all equal.
	for i, f := range finish {
		approx(t, f, 50, 0.01, "concurrent writer makespan")
		if i > 0 && math.Abs(f-finish[0]) > 1e-6 {
			t.Errorf("unequal finish times: %v", finish)
		}
	}
}

func TestReadsAndWritesIndependentChannels(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	d := New(net, "raid", RAID0(EphemeralSingle(), 4))
	var tR, tW float64
	e.Go("r", func(p *sim.Proc) {
		d.Read(p, 3.08*units.GB)
		tR = p.Now()
	})
	e.Go("w", func(p *sim.Proc) {
		d.Write(p, 0.8*units.GB)
		tW = p.Now()
	})
	e.Run()
	// Read: 3.08 GB / 308 MB/s = 10 s; write: 0.8 GB / 80 MB/s = 10 s; the
	// channels do not contend with each other.
	approx(t, tR, 10, 0.01, "read channel")
	approx(t, tW, 10, 0.01, "write channel")
}

func TestRemoteReadBottleneckedByNIC(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	d := New(net, "raid", RAID0(EphemeralSingle(), 4))
	nic := flow.NewResource("nic", units.MBps(100))
	var done float64
	e.Go("r", func(p *sim.Proc) {
		d.Read(p, 1*units.GB, nic)
		done = p.Now()
	})
	e.Run()
	approx(t, done, 10, 0.01, "NIC-bound remote read")
}

func TestStatsAndUsage(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	d := New(net, "eph", EphemeralSingle())
	e.Go("io", func(p *sim.Proc) {
		d.Write(p, 100*units.MB)
		d.Write(p, 50*units.MB)
		d.Read(p, 70*units.MB)
	})
	e.Run()
	approx(t, d.BytesWritten, 150*units.MB, 1e-9, "BytesWritten")
	approx(t, d.BytesRead, 70*units.MB, 1e-9, "BytesRead")
	approx(t, d.Used(), 150*units.MB, 1e-9, "Used")
}

func TestZeroSizeIONoTime(t *testing.T) {
	e := sim.NewEngine()
	net := flow.NewNet(e)
	d := New(net, "eph", EphemeralSingle())
	e.Go("io", func(p *sim.Proc) {
		d.Write(p, 0)
		d.Read(p, 0)
		if p.Now() != 0 {
			t.Errorf("zero-size IO advanced time to %g", p.Now())
		}
	})
	e.Run()
}

func TestRAID0RequiresDevices(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for RAID0 with 0 devices")
		}
	}()
	RAID0(EphemeralSingle(), 0)
}
