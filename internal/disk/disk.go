// Package disk models Amazon EC2 ephemeral-disk storage as observed by the
// paper (Section III.C), including the severe first-write penalty and its
// partial mitigation with Linux software RAID0.
//
// The paper's measurements on c1.xlarge:
//
//	single ephemeral disk:  ~20 MB/s first write, ~100 MB/s rewrite,
//	                        ~110 MB/s read
//	4-disk RAID0 array:     80-100 MB/s first write, 350-400 MB/s rewrite,
//	                        ~310 MB/s read
//
// Because the workflows studied are strictly write-once, every application
// write is a first write; a Disk therefore exposes its write channel at the
// first-write rate until it has been initialized (zero-filled), after which
// the steady-state rate applies. ZeroInitialize reproduces the paper's
// "42 minutes to initialize 50 GB" arithmetic exactly.
package disk

import (
	"fmt"

	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
)

// Profile describes the performance of an assembled storage volume
// (either a bare ephemeral device or a RAID0 array). Rates are bytes/sec.
type Profile struct {
	Name        string
	FirstWrite  float64 // sequential write to untouched blocks
	SteadyWrite float64 // write to previously written blocks
	Read        float64 // sequential read
	Capacity    float64 // usable bytes
}

// EphemeralSingle is one bare c1.xlarge ephemeral device (422.5 GB of the
// instance's 1690 GB across 4 disks).
func EphemeralSingle() Profile {
	return Profile{
		Name:        "ephemeral",
		FirstWrite:  units.MBps(20),
		SteadyWrite: units.MBps(100),
		Read:        units.MBps(110),
		Capacity:    422.5 * units.GB,
	}
}

// RAID0 assembles n ephemeral devices into a software-RAID0 array.
// First writes scale linearly (each stripe still pays the per-device
// penalty); steady writes scale with a small software-RAID overhead; reads
// scale sub-linearly, calibrated so a 4-disk array lands on the paper's
// observed ~310 MB/s (a 0.70 efficiency).
func RAID0(dev Profile, n int) Profile {
	if n < 1 {
		panic("disk: RAID0 needs at least one device")
	}
	if n == 1 {
		return dev
	}
	f := float64(n)
	return Profile{
		Name:        fmt.Sprintf("raid0x%d(%s)", n, dev.Name),
		FirstWrite:  dev.FirstWrite * f,
		SteadyWrite: dev.SteadyWrite * f * 0.9375,
		Read:        dev.Read * f * 0.70,
		Capacity:    dev.Capacity * f,
	}
}

// Disk is a mounted volume with separate read and write bandwidth channels
// shared (max-min fairly) among concurrent accessors.
type Disk struct {
	net         *flow.Net
	profile     Profile
	read        *flow.Resource
	write       *flow.Resource
	initialized bool
	// scratch is the resource-list buffer reused across Read/Write
	// calls; safe because the flow network copies it into the transfer
	// record before the calling process can park.
	scratch []*flow.Resource

	// Stats.
	BytesRead    float64
	BytesWritten float64
	used         float64
}

// New creates a disk from a profile, registering its channels with the
// flow network.
func New(net *flow.Net, name string, p Profile) *Disk {
	return &Disk{
		net:     net,
		profile: p,
		read:    flow.NewResource(name+"/read", p.Read),
		write:   flow.NewResource(name+"/write", p.FirstWrite),
	}
}

// Profile returns the disk's performance profile.
func (d *Disk) Profile() Profile { return d.profile }

// ReadResource exposes the read bandwidth channel so storage systems can
// compose it into multi-resource transfers.
func (d *Disk) ReadResource() *flow.Resource { return d.read }

// WriteResource exposes the write bandwidth channel.
func (d *Disk) WriteResource() *flow.Resource { return d.write }

// Initialized reports whether the first-write penalty has been eliminated.
func (d *Disk) Initialized() bool { return d.initialized }

// Used returns the bytes written so far (capacity accounting).
func (d *Disk) Used() float64 { return d.used }

// Read performs a sequential read of size bytes, additionally constrained
// by any extra resources (e.g. a NIC for remote reads).
func (d *Disk) Read(p *sim.Proc, size float64, extra ...*flow.Resource) {
	if size <= 0 {
		return
	}
	d.BytesRead += size
	d.scratch = append(append(d.scratch[:0], d.read), extra...)
	d.net.Transfer(p, size, d.scratch...)
}

// Write performs a sequential write of size bytes at the current write
// rate (first-write unless initialized).
func (d *Disk) Write(p *sim.Proc, size float64, extra ...*flow.Resource) {
	if size <= 0 {
		return
	}
	d.BytesWritten += size
	d.used += size
	d.scratch = append(append(d.scratch[:0], d.write), extra...)
	d.net.Transfer(p, size, d.scratch...)
}

// MarkInitialized removes the first-write penalty without simulating the
// zero-fill (used by experiments that assume pre-initialized volumes).
func (d *Disk) MarkInitialized() {
	if d.initialized {
		return
	}
	d.initialized = true
	d.net.SetResourceCapacity(d.write, d.profile.SteadyWrite)
}

// ZeroInitialize fills size bytes with zeros at the first-write rate, then
// removes the penalty. Amazon's suggested mitigation; the paper notes that
// zeroing 50 GB takes ~42 minutes, which this reproduces:
// 50e9 B / 20e6 B/s = 2500 s ≈ 41.7 min.
func (d *Disk) ZeroInitialize(p *sim.Proc, size float64) {
	if size > 0 {
		d.net.Transfer(p, size, d.write)
	}
	d.MarkInitialized()
}
