package apps

import (
	"testing"

	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

func stats(t *testing.T, w *workflow.Workflow, err error) workflow.Stats {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	return w.ComputeStats()
}

// Paper Section II: "The resulting workflow contains 10,429 tasks, reads
// 4.2 GB of input data, and produces 7.9 GB of output data."
func TestMontagePaperScale(t *testing.T) {
	w, err := Montage(MontageConfig{})
	s := stats(t, w, err)
	if s.TaskCount != 10429 {
		t.Errorf("Montage tasks = %d, want 10429", s.TaskCount)
	}
	if s.InputBytes < 4.1*units.GB || s.InputBytes > 4.3*units.GB {
		t.Errorf("Montage input = %s, want ~4.2 GB", units.Bytes(s.InputBytes))
	}
	if s.OutputBytes < 7.7*units.GB || s.OutputBytes > 8.1*units.GB {
		t.Errorf("Montage output = %s, want ~7.9 GB", units.Bytes(s.OutputBytes))
	}
	// "a large number (~29,000) of relatively small (a few MB) files"
	if s.FileAccesses < 25000 {
		t.Errorf("Montage file accesses = %d, want tens of thousands", s.FileAccesses)
	}
	if s.FileCount < 10000 {
		t.Errorf("Montage distinct files = %d, want >10k", s.FileCount)
	}
	if s.MeanFileSize > 10*units.MB {
		t.Errorf("Montage mean file size = %s, want a few MB", units.Bytes(s.MeanFileSize))
	}
	// I/O-bound: low memory, modest CPU. No task needs more than ~1.5 GB.
	if s.MaxPeakMemory > 1.5*units.GiB {
		t.Errorf("Montage peak memory = %s, want low", units.Bytes(s.MaxPeakMemory))
	}
}

// "we used 6 sources and 8 sites to generate a workflow containing 768
// tasks that reads 6 GB of input data and writes 303 MB of output data"
func TestBroadbandPaperScale(t *testing.T) {
	w, err := Broadband(BroadbandConfig{})
	s := stats(t, w, err)
	if s.TaskCount != 768 {
		t.Errorf("Broadband tasks = %d, want 768", s.TaskCount)
	}
	if s.InputBytes < 5.8*units.GB || s.InputBytes > 6.2*units.GB {
		t.Errorf("Broadband input = %s, want ~6 GB", units.Bytes(s.InputBytes))
	}
	if s.OutputBytes < 290*units.MB || s.OutputBytes > 315*units.MB {
		t.Errorf("Broadband output = %s, want ~303 MB", units.Bytes(s.OutputBytes))
	}
}

// "more than 75% of its runtime is consumed by tasks requiring more than
// 1 GB of physical memory"
func TestBroadbandMemoryLimited(t *testing.T) {
	w, err := Broadband(BroadbandConfig{})
	if err != nil {
		t.Fatal(err)
	}
	total, big := 0.0, 0.0
	for _, task := range w.Tasks {
		total += task.Runtime
		if task.PeakMemory > 1*units.GB {
			big += task.Runtime
		}
	}
	if frac := big / total; frac < 0.75 || frac > 0.85 {
		t.Errorf("runtime fraction in >1GB tasks = %.2f, want just above 0.75", frac)
	}
	// Memory must bind before cores on a c1.xlarge: the node's RAM holds
	// far fewer copies of the heavy tasks than it has cores, which is
	// what makes Broadband memory-limited.
	var maxMem float64
	for _, task := range w.Tasks {
		if task.PeakMemory > maxMem {
			maxMem = task.PeakMemory
		}
	}
	nodeRAM := 7 * units.GiB
	if copies := nodeRAM / maxMem; copies >= 4 {
		t.Errorf("largest task (%s) fits %.1f times in 7 GiB; memory would not throttle an 8-core node",
			units.Bytes(maxMem), copies)
	}
}

// "The workflow contains 529 tasks, reads 1.9 GB of input data, and
// produces 300 MB of output data."
func TestEpigenomePaperScale(t *testing.T) {
	w, err := Epigenome(EpigenomeConfig{})
	s := stats(t, w, err)
	if s.TaskCount != 529 {
		t.Errorf("Epigenome tasks = %d, want 529", s.TaskCount)
	}
	if s.InputBytes < 1.8*units.GB || s.InputBytes > 2.0*units.GB {
		t.Errorf("Epigenome input = %s, want ~1.9 GB", units.Bytes(s.InputBytes))
	}
	if s.OutputBytes < 285*units.MB || s.OutputBytes > 315*units.MB {
		t.Errorf("Epigenome output = %s, want ~300 MB", units.Bytes(s.OutputBytes))
	}
}

// Relative I/O intensity must match Table I: Montage >> Broadband >>
// Epigenome. The metric is the unique data footprint (every file touched,
// counted once) per CPU-second: repeated reads of the same file — like
// Broadband's 192 reads of its velocity models — hit the page cache on
// real systems and do not make an application "I/O-bound".
func TestRelativeIOIntensity(t *testing.T) {
	ratio := func(w *workflow.Workflow, err error) float64 {
		if err != nil {
			t.Fatal(err)
		}
		s := w.ComputeStats()
		unique := s.InputBytes + s.OutputBytes + s.IntermediateBytes
		return unique / s.TotalRuntime
	}
	m := ratio(Montage(MontageConfig{}))
	b := ratio(Broadband(BroadbandConfig{}))
	e := ratio(Epigenome(EpigenomeConfig{}))
	if !(m > b && b > e) {
		t.Errorf("I/O intensity order wrong: montage=%.2g broadband=%.2g epigenome=%.2g (want m>b>e)",
			m, b, e)
	}
	if m/e < 3 {
		t.Errorf("montage/epigenome I/O intensity ratio = %.1f, want a wide spread", m/e)
	}
}

// Memory ordering must match Table I: Broadband High, Epigenome Medium,
// Montage Low.
func TestRelativeMemoryUsage(t *testing.T) {
	peak := func(w *workflow.Workflow, err error) float64 {
		if err != nil {
			t.Fatal(err)
		}
		return w.ComputeStats().MaxPeakMemory
	}
	m := peak(Montage(MontageConfig{}))
	b := peak(Broadband(BroadbandConfig{}))
	e := peak(Epigenome(EpigenomeConfig{}))
	if !(b > e && e >= m*0.5) {
		t.Errorf("memory order: montage=%s broadband=%s epigenome=%s",
			units.Bytes(m), units.Bytes(b), units.Bytes(e))
	}
	if b < 2*units.GB {
		t.Errorf("Broadband peak = %s, want multi-GB (the lowFreq synthesis)", units.Bytes(b))
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, err := Montage(MontageConfig{Images: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Montage(MontageConfig{Images: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("task counts differ across identical builds")
	}
	for i := range a.Tasks {
		if a.Tasks[i].Runtime != b.Tasks[i].Runtime {
			t.Fatalf("task %d runtime differs: %g vs %g (jitter not deterministic)",
				i, a.Tasks[i].Runtime, b.Tasks[i].Runtime)
		}
	}
}

func TestScaledDownInstances(t *testing.T) {
	m, err := Montage(MontageConfig{Images: 20})
	if err != nil {
		t.Fatal(err)
	}
	// 20 + 60 + 1 + 1 + 20 + 1 + 1
	if len(m.Tasks) != 104 {
		t.Errorf("scaled Montage = %d tasks, want 104", len(m.Tasks))
	}
	b, err := Broadband(BroadbandConfig{Sources: 1, Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Tasks) != 32 {
		t.Errorf("scaled Broadband = %d tasks, want 32", len(b.Tasks))
	}
	e, err := Epigenome(EpigenomeConfig{Lanes: 1, ChunksPerLane: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 1 split + 4*4 chunks + 1 lane merge + global + index + pileup + density + qc
	if len(e.Tasks) != 23 {
		t.Errorf("scaled Epigenome = %d tasks, want 23", len(e.Tasks))
	}
}

func TestPaperScaleDispatch(t *testing.T) {
	for _, name := range Names() {
		w, err := PaperScale(name)
		if err != nil {
			t.Errorf("PaperScale(%s): %v", name, err)
			continue
		}
		if !w.Finalized() {
			t.Errorf("PaperScale(%s) not finalized", name)
		}
	}
	if _, err := PaperScale("nope"); err == nil {
		t.Error("expected error for unknown application")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Montage(MontageConfig{Images: 1}); err == nil {
		t.Error("Montage with 1 image should fail")
	}
	if _, err := Broadband(BroadbandConfig{Sources: -1, Sites: 1}); err == nil {
		t.Error("Broadband with negative sources should fail")
	}
	if _, err := Epigenome(EpigenomeConfig{Lanes: -1, ChunksPerLane: 1}); err == nil {
		t.Error("Epigenome with negative lanes should fail")
	}
}

// Every generated workflow must be a valid DAG whose tasks all carry
// positive runtimes and whose files all have positive sizes.
func TestGeneratedWorkflowsWellFormed(t *testing.T) {
	for _, name := range Names() {
		w, err := PaperScale(name)
		if err != nil {
			t.Fatal(err)
		}
		order := w.TopoOrder()
		if len(order) != len(w.Tasks) {
			t.Errorf("%s: topo order incomplete (%d of %d)", name, len(order), len(w.Tasks))
		}
		for _, task := range w.Tasks {
			if task.Runtime <= 0 {
				t.Errorf("%s: task %s has runtime %g", name, task.ID, task.Runtime)
			}
			if task.PeakMemory < 0 {
				t.Errorf("%s: task %s has negative memory", name, task.ID)
			}
		}
		for _, f := range w.Files() {
			if f.Size <= 0 {
				t.Errorf("%s: file %s has size %g", name, f.Name, f.Size)
			}
		}
	}
}

// "The size of a Montage workflow depends upon the area of the sky
// covered by the output mosaic": the Degrees knob must reproduce the
// paper's 8-degree instance and scale quadratically.
func TestMontageDegreeScaling(t *testing.T) {
	eight, err := Montage(MontageConfig{Degrees: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(eight.Tasks) != 10429 {
		t.Errorf("8-degree mosaic = %d tasks, want the paper's 10429", len(eight.Tasks))
	}
	four, err := Montage(MontageConfig{Degrees: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Area scales with degrees squared: a 4-degree mosaic has ~1/4 the
	// images of the 8-degree one.
	ratio := float64(len(eight.Tasks)) / float64(len(four.Tasks))
	if ratio < 3.6 || ratio > 4.4 {
		t.Errorf("8-deg/4-deg task ratio = %.2f, want ~4 (quadratic in degrees)", ratio)
	}
	one, err := Montage(MontageConfig{Degrees: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Tasks) >= len(four.Tasks) {
		t.Error("1-degree mosaic not smaller than 4-degree")
	}
	// Explicit Images overrides Degrees.
	o, err := Montage(MontageConfig{Degrees: 8, Images: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Tasks) != 10*5+4 {
		t.Errorf("Images override produced %d tasks", len(o.Tasks))
	}
}
