package apps

import (
	"fmt"

	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// BroadbandConfig parameterizes the Broadband seismology workflow. The
// zero value is the paper's configuration: 6 sources x 8 sites = 48
// sub-pipelines of 16 tasks each (768 tasks), 6 GB of input, 303 MB of
// output.
type BroadbandConfig struct {
	Sources int
	Sites   int
	Seed    uint64
}

func (c *BroadbandConfig) defaults() {
	if c.Sources == 0 {
		c.Sources = 6
	}
	if c.Sites == 0 {
		c.Sites = 8
	}
	if c.Seed == 0 {
		c.Seed = 0xB40ADB
	}
}

// Broadband builds the seismogram-generation workflow. For every
// (source, site) combination it runs a 16-task sub-pipeline:
//
//	rupGen          rupture variation generator        (reads the shared
//	                                                    source rupture)
//	lowFreq         low-frequency synthesis, 2.2 GiB RSS (the memory hog)
//	hfSim x 4       high-frequency simulation, 1.6 GiB RSS
//	siteResp x 4    site response correction
//	mergeHF         merge the high-frequency bands
//	combine         combine low+high into a broadband seismogram
//	peakCalc x 3    intensity measures (PGA, PGV, SA)
//	summarize       bundle seismograms + intensities    (6.3 MB, kept)
//
// Two properties matter for the paper's results. First, the velocity
// models (and each source's rupture description) are shared across
// pipelines, so Broadband re-reads input files heavily — this is what
// makes the S3 client cache effective. Second, >75% of the compute time
// sits in tasks needing more than 1 GB of memory, so a 7 GB / 8-core node
// cannot fill its cores — Broadband is memory-limited.
func Broadband(cfg BroadbandConfig) (*workflow.Workflow, error) {
	cfg.defaults()
	if cfg.Sources < 1 || cfg.Sites < 1 {
		return nil, fmt.Errorf("broadband: need >=1 sources and sites, got %d x %d", cfg.Sources, cfg.Sites)
	}
	r := rng.New(cfg.Seed)
	w := workflow.New("broadband")

	// Shared inputs: velocity models for the low- and high-frequency
	// codes plus a site-model database. Total with ruptures: 6 GB.
	velLF := w.File("la-basin-lf.vel", 1.2*units.GB)
	velHF := w.File("la-basin-hf.vel", 1.2*units.GB)
	sites := w.File("site-models.db", 42*units.MB)

	ruptures := make([]*workflow.File, cfg.Sources)
	for s := range ruptures {
		ruptures[s] = w.File(fmt.Sprintf("rupture-src%d.src", s), 593*units.MB)
	}

	for s := 0; s < cfg.Sources; s++ {
		for t := 0; t < cfg.Sites; t++ {
			id := fmt.Sprintf("s%dt%d", s, t)

			rupVar := w.File("rupvar-"+id+".dat", 10*units.MB)
			w.AddTask(&workflow.Task{
				ID:             "rupGen-" + id,
				Transformation: "rupGen",
				Runtime:        41 * r.Jitter(0.2),
				PeakMemory:     1.2 * units.GiB,
				Inputs:         []*workflow.File{ruptures[s]},
				Outputs:        []*workflow.File{rupVar},
			})

			lfSeis := w.File("lf-"+id+".grm", 8*units.MB)
			w.AddTask(&workflow.Task{
				ID:             "lowFreq-" + id,
				Transformation: "lowFreq",
				Runtime:        146 * r.Jitter(0.2),
				PeakMemory:     2.2 * units.GiB,
				Inputs:         []*workflow.File{rupVar, velLF},
				Outputs:        []*workflow.File{lfSeis},
			})

			var hfCorr []*workflow.File
			for b := 0; b < 4; b++ {
				hf := w.File(fmt.Sprintf("hf-%s-b%d.grm", id, b), 4*units.MB)
				w.AddTask(&workflow.Task{
					ID:             fmt.Sprintf("hfSim-%s-b%d", id, b),
					Transformation: "hfSim",
					Runtime:        56 * r.Jitter(0.2),
					PeakMemory:     1.6 * units.GiB,
					Inputs:         []*workflow.File{rupVar, velHF},
					Outputs:        []*workflow.File{hf},
				})
				hc := w.File(fmt.Sprintf("hfc-%s-b%d.grm", id, b), 4*units.MB)
				w.AddTask(&workflow.Task{
					ID:             fmt.Sprintf("siteResp-%s-b%d", id, b),
					Transformation: "siteResp",
					Runtime:        15 * r.Jitter(0.2),
					PeakMemory:     0.4 * units.GiB,
					Inputs:         []*workflow.File{hf, sites},
					Outputs:        []*workflow.File{hc},
				})
				hfCorr = append(hfCorr, hc)
			}

			hfMerged := w.File("hfm-"+id+".grm", 6*units.MB)
			w.AddTask(&workflow.Task{
				ID:             "mergeHF-" + id,
				Transformation: "mergeHF",
				Runtime:        11 * r.Jitter(0.2),
				PeakMemory:     0.5 * units.GiB,
				Inputs:         hfCorr,
				Outputs:        []*workflow.File{hfMerged},
			})

			bbSeis := w.File("bb-"+id+".grm", 6*units.MB)
			w.AddTask(&workflow.Task{
				ID:             "combine-" + id,
				Transformation: "combine",
				Runtime:        15 * r.Jitter(0.2),
				PeakMemory:     0.5 * units.GiB,
				Inputs:         []*workflow.File{lfSeis, hfMerged},
				Outputs:        []*workflow.File{bbSeis},
			})

			var peaks []*workflow.File
			for _, m := range []string{"pga", "pgv", "sa"} {
				pk := w.File(fmt.Sprintf("peak-%s-%s.txt", id, m), 200*units.KB)
				w.AddTask(&workflow.Task{
					ID:             fmt.Sprintf("peakCalc-%s-%s", id, m),
					Transformation: "peakCalc",
					Runtime:        7.5 * r.Jitter(0.2),
					PeakMemory:     0.3 * units.GiB,
					Inputs:         []*workflow.File{bbSeis},
					Outputs:        []*workflow.File{pk},
				})
				peaks = append(peaks, pk)
			}

			summary := w.File("summary-"+id+".tar", 6.3*units.MB)
			w.AddTask(&workflow.Task{
				ID:             "summarize-" + id,
				Transformation: "summarize",
				Runtime:        4 * r.Jitter(0.2),
				PeakMemory:     0.2 * units.GiB,
				Inputs:         append([]*workflow.File{bbSeis}, peaks...),
				Outputs:        []*workflow.File{summary},
			})
		}
	}

	if err := w.Finalize(); err != nil {
		return nil, err
	}
	return w, nil
}
