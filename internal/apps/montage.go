package apps

import (
	"fmt"

	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// MontageConfig parameterizes the Montage mosaic workflow. The zero value
// is the paper's 8-degree-square configuration: 10,429 tasks, 4.2 GB in,
// 7.9 GB out, ~29,000 small-file accesses.
type MontageConfig struct {
	// Degrees is the square mosaic's edge in degrees of sky. "The size of
	// a Montage workflow depends upon the area of the sky covered by the
	// output mosaic": the input image count scales with the area, and the
	// paper's 8-degree mosaic projects 2,085 2MASS images (~32.6 images
	// per square degree). Ignored when Images is set explicitly.
	Degrees float64
	// Images is the number of input images (mProject count), overriding
	// Degrees.
	Images int
	// OverlapsPerImage is the number of overlap pairs fitted per image
	// (mDiffFit count = Images * OverlapsPerImage).
	OverlapsPerImage int
	// Seed drives runtime jitter.
	Seed uint64
}

// imagesPerSquareDegree is the 2MASS tile density that puts the 8-degree
// mosaic at the paper's 2,085 images.
const imagesPerSquareDegree = 2085.0 / 64.0

func (c *MontageConfig) defaults() {
	if c.Images == 0 {
		if c.Degrees > 0 {
			c.Images = int(c.Degrees*c.Degrees*imagesPerSquareDegree + 0.5)
		} else {
			c.Images = 2085
		}
	}
	if c.OverlapsPerImage == 0 {
		c.OverlapsPerImage = 3
	}
	if c.Seed == 0 {
		c.Seed = 0xA57C0
	}
}

// Montage builds the astronomy mosaicking workflow:
//
//	mProject x N    reproject each input image        (2.0 MB -> 4.2+0.8 MB)
//	mDiffFit x 3N   fit overlap differences           (2 proj -> 50 KB)
//	mConcatFit x 1  concatenate all fits
//	mBgModel x 1    solve the background model
//	mBackground x N apply corrections                 (proj -> 3.1 MB, kept)
//	mImgtbl x 1     build the image table
//	mAdd x 1        co-add into the final mosaic      (all corrected -> 1.4 GB)
//
// With the default N=2085 this is 10,429 tasks. Montage is I/O-bound: the
// per-task computation is small relative to the file traffic, and the
// workflow touches tens of thousands of MB-scale files, the regime the
// paper identifies as hard on S3 and PVFS.
func Montage(cfg MontageConfig) (*workflow.Workflow, error) {
	cfg.defaults()
	if cfg.Images < 2 {
		return nil, fmt.Errorf("montage: need at least 2 images, got %d", cfg.Images)
	}
	r := rng.New(cfg.Seed)
	w := workflow.New("montage")
	n := cfg.Images

	hdr := w.File("region.hdr", 1*units.KB)

	// mProject: one per input image.
	projTasks := make([]*workflow.Task, n)
	proj := make([]*workflow.File, n)
	area := make([]*workflow.File, n)
	for i := 0; i < n; i++ {
		raw := w.File(fmt.Sprintf("2mass-%04d.fits", i), 2.0*units.MB)
		proj[i] = w.File(fmt.Sprintf("p-%04d.fits", i), 4.2*units.MB)
		area[i] = w.File(fmt.Sprintf("p-%04d-area.fits", i), 0.8*units.MB)
		projTasks[i] = w.AddTask(&workflow.Task{
			ID:             fmt.Sprintf("mProject-%04d", i),
			Transformation: "mProject",
			Runtime:        5.6 * r.Jitter(0.2),
			PeakMemory:     160 * units.MB,
			Inputs:         []*workflow.File{raw, hdr},
			Outputs:        []*workflow.File{proj[i], area[i]},
		})
	}

	// mDiffFit: one per overlapping pair (ring topology with k-nearest
	// neighbours, matching the plane-sweep overlap structure).
	var fits []*workflow.File
	for i := 0; i < n; i++ {
		for k := 1; k <= cfg.OverlapsPerImage; k++ {
			j := (i + k) % n
			fit := w.File(fmt.Sprintf("fit-%04d-%04d.txt", i, j), 50*units.KB)
			fits = append(fits, fit)
			w.AddTask(&workflow.Task{
				ID:             fmt.Sprintf("mDiffFit-%04d-%04d", i, j),
				Transformation: "mDiffFit",
				Runtime:        1.4 * r.Jitter(0.2),
				PeakMemory:     120 * units.MB,
				Inputs:         []*workflow.File{proj[i], proj[j]},
				Outputs:        []*workflow.File{fit},
			})
		}
	}

	// mConcatFit: gather every fit into one table.
	statfit := w.File("statfit.tbl", 4*units.MB)
	w.AddTask(&workflow.Task{
		ID:             "mConcatFit",
		Transformation: "mConcatFit",
		Runtime:        72 * r.Jitter(0.1),
		PeakMemory:     300 * units.MB,
		Inputs:         fits,
		Outputs:        []*workflow.File{statfit},
	})

	// mBgModel: solve for per-image background corrections.
	corrections := w.File("corrections.tbl", 1*units.MB)
	w.AddTask(&workflow.Task{
		ID:             "mBgModel",
		Transformation: "mBgModel",
		Runtime:        88 * r.Jitter(0.1),
		PeakMemory:     400 * units.MB,
		Inputs:         []*workflow.File{statfit},
		Outputs:        []*workflow.File{corrections},
	})

	// mBackground: apply the correction to each projected image. The
	// corrected images are deliverables (part of the 7.9 GB output) even
	// though mAdd also consumes them.
	corr := make([]*workflow.File, n)
	bgTasks := make([]*workflow.Task, n)
	for i := 0; i < n; i++ {
		corr[i] = w.File(fmt.Sprintf("c-%04d.fits", i), 3.1*units.MB)
		corr[i].Keep = true
		bgTasks[i] = w.AddTask(&workflow.Task{
			ID:             fmt.Sprintf("mBackground-%04d", i),
			Transformation: "mBackground",
			Runtime:        1.2 * r.Jitter(0.2),
			PeakMemory:     120 * units.MB,
			Inputs:         []*workflow.File{proj[i], area[i], corrections},
			Outputs:        []*workflow.File{corr[i]},
		})
	}

	// mImgtbl: scan the corrected images' headers (metadata only, so no
	// data inputs; ordering is enforced with control edges).
	newtbl := w.File("images.tbl", 1*units.MB)
	imgtbl := w.AddTask(&workflow.Task{
		ID:             "mImgtbl",
		Transformation: "mImgtbl",
		Runtime:        24 * r.Jitter(0.1),
		PeakMemory:     150 * units.MB,
		Outputs:        []*workflow.File{newtbl},
	})
	for _, bt := range bgTasks {
		w.AddDependency(bt, imgtbl)
	}

	// mAdd: co-add every corrected image into the mosaic.
	mosaic := w.File("mosaic.fits", 1.1*units.GB)
	mosaicArea := w.File("mosaic-area.fits", 0.3*units.GB)
	addInputs := append([]*workflow.File{newtbl, hdr}, corr...)
	w.AddTask(&workflow.Task{
		ID:             "mAdd",
		Transformation: "mAdd",
		Runtime:        260 * r.Jitter(0.1),
		PeakMemory:     1.2 * units.GiB,
		Inputs:         addInputs,
		Outputs:        []*workflow.File{mosaic, mosaicArea},
	})

	if err := w.Finalize(); err != nil {
		return nil, err
	}
	return w, nil
}
