package apps

import (
	"fmt"

	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// EpigenomeConfig parameterizes the Epigenome DNA-mapping workflow. The
// zero value is the paper's chromosome-21 configuration: 529 tasks,
// 1.9 GB of input, ~300 MB of output.
type EpigenomeConfig struct {
	Lanes         int // sequencer lanes (input FASTQ files)
	ChunksPerLane int // parallel chunks each lane is split into
	Seed          uint64
}

func (c *EpigenomeConfig) defaults() {
	if c.Lanes == 0 {
		c.Lanes = 2
	}
	if c.ChunksPerLane == 0 {
		c.ChunksPerLane = 65
	}
	if c.Seed == 0 {
		c.Seed = 0xE16E
	}
}

// Epigenome builds the MAQ-based DNA methylation mapping pipeline:
//
//	fastqSplit x L       split each lane's reads into chunks
//	filterContams x LC   remove contaminating reads
//	sol2sanger x LC      convert Solexa to Sanger FASTQ
//	fastq2bfq x LC       binary-encode the reads
//	map x LC             MAQ alignment against the chr21 reference
//	                     (the CPU furnace: ~180 s per chunk)
//	mapMerge x (L+1)     per-lane then global merge -> chr21.map (kept)
//	maqIndex x 1         index the merged map
//	pileup x 1           per-position pileup (kept)
//	density x 1          sequence density per locus (kept)
//	qcReport x 1         mapping-quality report (kept)
//
// With L=2 lanes and C=65 chunks this is 529 tasks. Epigenome is
// CPU-bound: 99% of its time is computation, so the paper finds the
// storage system barely matters for it.
func Epigenome(cfg EpigenomeConfig) (*workflow.Workflow, error) {
	cfg.defaults()
	if cfg.Lanes < 1 || cfg.ChunksPerLane < 1 {
		return nil, fmt.Errorf("epigenome: need >=1 lanes and chunks, got %d x %d", cfg.Lanes, cfg.ChunksPerLane)
	}
	r := rng.New(cfg.Seed)
	w := workflow.New("epigenome")

	// MAQ's binary FASTA of human chromosome 21 (~47 Mbp) is small; the
	// bulk of the input is the two lanes of reads.
	ref := w.File("chr21.bfa", 15*units.MB)

	var laneMaps []*workflow.File
	for l := 0; l < cfg.Lanes; l++ {
		lane := w.File(fmt.Sprintf("lane%d.fastq", l), 940*units.MB)
		split := w.AddTask(&workflow.Task{
			ID:             fmt.Sprintf("fastqSplit-%d", l),
			Transformation: "fastqSplit",
			Runtime:        21 * r.Jitter(0.1),
			PeakMemory:     0.3 * units.GiB,
			Inputs:         []*workflow.File{lane},
		})
		var chunkMaps []*workflow.File
		for c := 0; c < cfg.ChunksPerLane; c++ {
			id := fmt.Sprintf("l%dc%02d", l, c)
			chunk := w.File("chunk-"+id+".fastq", 12*units.MB)
			split.Outputs = append(split.Outputs, chunk)

			filtered := w.File("filt-"+id+".fastq", 11*units.MB)
			w.AddTask(&workflow.Task{
				ID:             "filterContams-" + id,
				Transformation: "filterContams",
				Runtime:        20 * r.Jitter(0.2),
				PeakMemory:     0.3 * units.GiB,
				Inputs:         []*workflow.File{chunk},
				Outputs:        []*workflow.File{filtered},
			})

			sanger := w.File("sanger-"+id+".fastq", 11*units.MB)
			w.AddTask(&workflow.Task{
				ID:             "sol2sanger-" + id,
				Transformation: "sol2sanger",
				Runtime:        12 * r.Jitter(0.2),
				PeakMemory:     0.2 * units.GiB,
				Inputs:         []*workflow.File{filtered},
				Outputs:        []*workflow.File{sanger},
			})

			bfq := w.File("bfq-"+id+".bfq", 5*units.MB)
			w.AddTask(&workflow.Task{
				ID:             "fastq2bfq-" + id,
				Transformation: "fastq2bfq",
				Runtime:        8 * r.Jitter(0.2),
				PeakMemory:     0.2 * units.GiB,
				Inputs:         []*workflow.File{sanger},
				Outputs:        []*workflow.File{bfq},
			})

			mapped := w.File("map-"+id+".map", 3*units.MB)
			w.AddTask(&workflow.Task{
				ID:             "map-" + id,
				Transformation: "map",
				Runtime:        153 * r.Jitter(0.25),
				PeakMemory:     0.85 * units.GiB,
				Inputs:         []*workflow.File{bfq, ref},
				Outputs:        []*workflow.File{mapped},
			})
			chunkMaps = append(chunkMaps, mapped)
		}
		laneMap := w.File(fmt.Sprintf("lane%d.map", l), 120*units.MB)
		w.AddTask(&workflow.Task{
			ID:             fmt.Sprintf("mapMerge-lane%d", l),
			Transformation: "mapMerge",
			Runtime:        24 * r.Jitter(0.1),
			PeakMemory:     0.6 * units.GiB,
			Inputs:         chunkMaps,
			Outputs:        []*workflow.File{laneMap},
		})
		laneMaps = append(laneMaps, laneMap)
	}

	merged := w.File("chr21.map", 238*units.MB)
	merged.Keep = true
	w.AddTask(&workflow.Task{
		ID:             "mapMerge-global",
		Transformation: "mapMerge",
		Runtime:        34 * r.Jitter(0.1),
		PeakMemory:     0.9 * units.GiB,
		Inputs:         laneMaps,
		Outputs:        []*workflow.File{merged},
	})

	index := w.File("chr21.map.idx", 40*units.MB)
	w.AddTask(&workflow.Task{
		ID:             "maqIndex",
		Transformation: "maqIndex",
		Runtime:        17 * r.Jitter(0.1),
		PeakMemory:     0.8 * units.GiB,
		Inputs:         []*workflow.File{merged},
		Outputs:        []*workflow.File{index},
	})

	pileup := w.File("chr21.pileup", 52*units.MB)
	pileup.Keep = true
	w.AddTask(&workflow.Task{
		ID:             "pileup",
		Transformation: "pileup",
		Runtime:        47 * r.Jitter(0.1),
		PeakMemory:     1.0 * units.GiB,
		Inputs:         []*workflow.File{merged, index},
		Outputs:        []*workflow.File{pileup},
	})

	density := w.File("chr21.density", 6*units.MB)
	w.AddTask(&workflow.Task{
		ID:             "density",
		Transformation: "density",
		Runtime:        24 * r.Jitter(0.1),
		PeakMemory:     0.5 * units.GiB,
		Inputs:         []*workflow.File{pileup},
		Outputs:        []*workflow.File{density},
	})

	report := w.File("chr21.qc.html", 2*units.MB)
	w.AddTask(&workflow.Task{
		ID:             "qcReport",
		Transformation: "qcReport",
		Runtime:        8.5 * r.Jitter(0.1),
		PeakMemory:     0.3 * units.GiB,
		Inputs:         []*workflow.File{pileup},
		Outputs:        []*workflow.File{report},
	})

	if err := w.Finalize(); err != nil {
		return nil, err
	}
	return w, nil
}
