// Package apps generates the three workflow applications the paper
// evaluates — Montage (astronomy, I/O-bound), Broadband (seismology,
// memory-limited) and Epigenome (bioinformatics, CPU-bound) — as synthetic
// DAGs constrained to the paper's published characteristics:
//
//	Application  Tasks   Input    Output   Character
//	Montage      10,429  4.2 GB   7.9 GB   >95% time in I/O; ~29k small files
//	Broadband    768     6 GB     303 MB   >75% runtime in tasks needing >1 GB RAM
//	Epigenome    529     1.9 GB   300 MB   99% of runtime in the CPU
//
// Each generator is parameterized (so tests and benchmarks can build
// scaled-down instances) and deterministic for a given seed. Task runtimes
// are calibrated compute-only seconds on a c1.xlarge core; all I/O time
// emerges from the storage-system simulation.
package apps

import (
	"fmt"

	"ec2wfsim/internal/workflow"
)

// PaperScale selects the exact configuration used in the paper's
// experiments for the named application.
func PaperScale(name string) (*workflow.Workflow, error) {
	return PaperScaleSeeded(name, 0)
}

// PaperScaleSeeded is PaperScale with an explicit runtime-jitter seed
// for multi-seed replication studies; seed 0 keeps each application's
// fixed default (the paper's single-measurement setting).
func PaperScaleSeeded(name string, seed uint64) (*workflow.Workflow, error) {
	switch name {
	case "montage":
		return Montage(MontageConfig{Seed: seed})
	case "broadband":
		return Broadband(BroadbandConfig{Seed: seed})
	case "epigenome":
		return Epigenome(EpigenomeConfig{Seed: seed})
	default:
		return nil, fmt.Errorf("apps: unknown application %q (want montage, broadband or epigenome)", name)
	}
}

// Names lists the supported applications in the paper's presentation order.
func Names() []string { return []string{"montage", "epigenome", "broadband"} }
