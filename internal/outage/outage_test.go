package outage

import (
	"testing"
)

func TestScheduleDeterministic(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Rate: 2, Duration: 120, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 4; node++ {
		a := s.Windows(node, 100000)
		b := s.Windows(node, 100000)
		if len(a) == 0 {
			t.Fatalf("node %d: no windows at rate 2/h over ~28h", node)
		}
		if len(a) != len(b) {
			t.Fatalf("node %d: %d vs %d windows on re-generation", node, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d window %d differs: %+v vs %+v", node, i, a[i], b[i])
			}
		}
	}
}

func TestWindowsNonOverlapping(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Rate: 60, Duration: 300, Seed: 7}) // brutal: 1/min, 5 min long
	if err != nil {
		t.Fatal(err)
	}
	ws := s.Windows(0, 50000)
	if len(ws) < 10 {
		t.Fatalf("expected many windows, got %d", len(ws))
	}
	prevEnd := 0.0
	for i, w := range ws {
		if w.Start <= prevEnd && i > 0 {
			t.Fatalf("window %d starts at %g, before previous end %g", i, w.Start, prevEnd)
		}
		if w.End <= w.Start {
			t.Fatalf("window %d is empty or inverted: %+v", i, w)
		}
		prevEnd = w.End
	}
}

func TestNodesDecorrelated(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Rate: 2, Duration: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Windows(0, 100000), s.Windows(1, 100000)
	if len(a) > 0 && len(b) > 0 && a[0] == b[0] {
		t.Errorf("nodes 0 and 1 share their first window %+v", a[0])
	}
}

func TestZeroRateYieldsNothing(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Rate: 0, Duration: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ws := s.Windows(0, 1e9); ws != nil {
		t.Errorf("zero-rate schedule produced windows: %v", ws)
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(Config{Rate: 1, Duration: 0}); err == nil {
		t.Error("positive rate with zero duration accepted")
	}
	if _, err := New(Config{Rate: -1, Duration: 60}); err == nil {
		t.Error("negative rate accepted")
	}
}

// FuzzOutageSchedule is the CI fuzz target for the schedule generator:
// for arbitrary configs and node indices, windows must be strictly
// ordered, non-overlapping, non-empty, and bit-identical across
// re-generation from the same seed.
func FuzzOutageSchedule(f *testing.F) {
	f.Add(uint64(1), uint16(10), uint16(120), uint8(0))
	f.Add(uint64(42), uint16(600), uint16(30), uint8(3))
	f.Add(uint64(0xDEAD), uint16(1), uint16(1), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, rateRaw, durRaw uint16, node uint8) {
		rate := float64(rateRaw%1000) + 0.1 // outages per node-hour
		dur := float64(durRaw%3600) + 0.1   // seconds
		s, err := New(Config{Rate: rate, Duration: dur, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		idx := int(node % 32)
		a := s.Windows(idx, 20000)
		b := s.Windows(idx, 20000)
		if len(a) != len(b) {
			t.Fatalf("non-deterministic window count: %d vs %d", len(a), len(b))
		}
		prevEnd := -1.0
		for i, w := range a {
			if w != b[i] {
				t.Fatalf("window %d differs across generations: %+v vs %+v", i, w, b[i])
			}
			if w.End <= w.Start {
				t.Fatalf("window %d empty or inverted: %+v", i, w)
			}
			if w.Start <= prevEnd {
				t.Fatalf("window %d overlaps previous (start %g <= prev end %g)", i, w.Start, prevEnd)
			}
			prevEnd = w.End
		}
	})
}
