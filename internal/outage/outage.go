// Package outage generates deterministic node-outage schedules for
// correlated failure injection: whole nodes dropping offline mid-run
// (spot reclamation, hardware retirement, host maintenance), as opposed
// to the i.i.d. per-task failures the workflow engine also supports.
//
// A Schedule is a pure function of its Config: for every node index it
// yields the same strictly-ordered, non-overlapping sequence of outage
// windows on every run, at any sweep parallelism. Inter-outage gaps are
// exponentially distributed around the configured rate (a Poisson
// reclamation process, the standard model for spot interruptions) and
// outage durations are uniform in [0.5, 1.5] x Duration, so repeated
// outages of one node never collide.
package outage

import (
	"fmt"
	"math"

	"ec2wfsim/internal/rng"
)

// perNodeSeedStride decorrelates the per-node RNG streams: consecutive
// node indices land far apart in seed space (the splitmix64 increment).
const perNodeSeedStride uint64 = 0x9e3779b97f4a7c15

// Config parameterizes a schedule.
type Config struct {
	// Rate is the expected number of outages per node per hour. Zero or
	// negative disables outages (streams yield no windows).
	Rate float64
	// Duration is the mean outage length in seconds. Actual durations are
	// uniform in [0.5, 1.5] x Duration. Must be positive when Rate > 0.
	Duration float64
	// Seed drives the schedule; the same seed reproduces the same windows.
	Seed uint64
}

// Window is one outage: the node is offline in [Start, End).
type Window struct {
	Start float64
	End   float64
}

// Duration returns the window's length in seconds. Event-log
// outage-begin records carry it so reports can show scheduled outage
// lengths without pairing begin/end events first.
func (w Window) Duration() float64 { return w.End - w.Start }

// Schedule derives per-node outage streams from one Config.
type Schedule struct {
	cfg Config
}

// New validates the config and returns a schedule.
func New(cfg Config) (*Schedule, error) {
	if cfg.Rate > 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("outage: rate %g needs a positive duration, got %g", cfg.Rate, cfg.Duration)
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("outage: negative rate %g", cfg.Rate)
	}
	return &Schedule{cfg: cfg}, nil
}

// Config returns the schedule's configuration.
func (s *Schedule) Config() Config { return s.cfg }

// Node returns the outage stream for the node at the given index. Streams
// for the same (Config, index) are identical; streams for different
// indices are decorrelated.
func (s *Schedule) Node(index int) *Stream {
	return &Stream{
		cfg: s.cfg,
		r:   rng.New(s.cfg.Seed + perNodeSeedStride*uint64(index+1)),
	}
}

// Stream yields one node's outage windows in increasing order.
type Stream struct {
	cfg Config
	r   *rng.RNG
	at  float64 // end of the previous window
}

// Next returns the node's next outage window. Windows are strictly
// increasing and never overlap: each starts after the previous one ends.
// It panics when the schedule's rate is zero (callers gate on Rate > 0).
func (st *Stream) Next() Window {
	if st.cfg.Rate <= 0 {
		panic("outage: Next on a zero-rate stream")
	}
	meanGap := 3600.0 / st.cfg.Rate
	// Exponential inter-arrival; 1-u is in (0, 1] so the log is finite,
	// and the epsilon floor keeps windows strictly ordered even for
	// astronomically unlucky draws.
	gap := -meanGap * math.Log(1-st.r.Float64())
	if gap < 1e-9 {
		gap = 1e-9
	}
	dur := st.cfg.Duration * (0.5 + st.r.Float64())
	w := Window{Start: st.at + gap, End: st.at + gap + dur}
	st.at = w.End
	return w
}

// Windows returns every window of one node's stream that starts before
// horizon. It is the pure-function view of the stream, used by tests and
// fuzzing to check the no-overlap and determinism invariants.
func (s *Schedule) Windows(index int, horizon float64) []Window {
	if s.cfg.Rate <= 0 {
		return nil
	}
	st := s.Node(index)
	var out []Window
	for {
		w := st.Next()
		if w.Start >= horizon {
			return out
		}
		out = append(out, w)
	}
}
