// Package flow implements max-min fair sharing of capacity resources
// among concurrent bulk transfers, integrated with the sim engine.
//
// A Transfer moves a number of bytes across a set of Resources (for
// example: source disk read, source NIC out, destination NIC in,
// destination disk write). At any instant each active transfer receives a
// rate determined by progressive filling (water-filling): the most
// contended resource is saturated first, its flows are fixed at their fair
// share, and the algorithm recurses on the remaining capacity. This is the
// standard fluid approximation for TCP fair share and for disk bandwidth
// sharing, and it is what makes "N clients hammering one NFS server" come
// out N times slower, automatically.
//
// The network recomputes the allocation whenever a transfer starts or
// finishes, so rates are piecewise constant and completions are exact.
package flow

import (
	"fmt"

	"ec2wfsim/internal/sim"
)

// completionEps is the residual byte count below which a transfer is
// considered complete. It absorbs float64 rounding in rate integration:
// for a terabyte-scale transfer the residue of remaining - rate*dt is on
// the order of 1e-4 bytes, so half a byte is both physically meaningless
// and numerically safe. (A smaller epsilon can livelock: the rescheduled
// completion delta underflows the clock's ULP and time stops advancing.)
const completionEps = 0.5

// Resource is a capacity (bytes/second) shared by transfers. Resources are
// created once (per NIC, per disk channel, ...) and passed to Transfer.
type Resource struct {
	name     string
	capacity float64

	// scratch state used during reallocation
	epoch    int64
	residual float64
	count    int
	// flows lists the transfers crossing this resource, rebuilt (in
	// active order) each reallocation so a bottleneck round visits only
	// its own flows instead of scanning every unfixed transfer.
	flows []*transfer

	// current committed allocation, for utilization queries
	load float64
}

// NewResource returns a resource with the given capacity in bytes/second.
// Capacity must be positive: a zero-capacity resource would block forever.
func NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("flow: resource %q with non-positive capacity %g", name, capacity))
	}
	return &Resource{name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity in bytes/second.
func (r *Resource) Capacity() float64 { return r.capacity }

// Load returns the rate currently allocated across this resource.
func (r *Resource) Load() float64 { return r.load }

// Utilization returns Load/Capacity in [0,1].
func (r *Resource) Utilization() float64 { return r.load / r.capacity }

// transfer is one in-flight bulk movement.
type transfer struct {
	pending   *Pending
	remaining float64
	rate      float64
	resources []*Resource
	fixed     bool
	id        int64
}

// Pending is a handle to an asynchronous transfer started with
// StartTransfer. Multiple processes may Wait on it; they all resume when
// the transfer completes.
type Pending struct {
	e       *sim.Engine
	done    bool
	waiters []*sim.Proc
}

// Done reports whether the transfer has completed.
func (pd *Pending) Done() bool { return pd.done }

// Wait blocks p until the transfer completes.
func (pd *Pending) Wait(p *sim.Proc) {
	if pd.done {
		return
	}
	pd.waiters = append(pd.waiters, p)
	p.Suspend()
}

func (pd *Pending) complete() {
	pd.done = true
	for _, p := range pd.waiters {
		p.Resume()
	}
	pd.waiters = nil
}

// Net manages the set of active transfers over a shared resource pool.
type Net struct {
	e          *sim.Engine
	active     []*transfer
	timer      *sim.Timer
	lastUpdate float64
	epoch      int64
	nextID     int64

	// Reusable scratch for reallocate, to keep the hot path free of
	// per-event allocations.
	scratchRes []*Resource

	// Stats.
	TotalBytes     float64
	TotalTransfers int64
}

// NewNet returns an empty transfer network bound to the engine.
func NewNet(e *sim.Engine) *Net {
	return &Net{e: e}
}

// Active returns the number of in-flight transfers.
func (n *Net) Active() int { return len(n.active) }

// SetResourceCapacity changes a resource's capacity and immediately
// reallocates rates. It is used to model disk initialization (the
// first-write penalty disappearing) mid-simulation.
func (n *Net) SetResourceCapacity(r *Resource, capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("flow: setting non-positive capacity %g on %q", capacity, r.name))
	}
	n.advance()
	r.capacity = capacity
	if !n.uses(r) {
		// An idle resource is skipped by reallocate (which only visits
		// resources of active flows), so a load left over from earlier
		// traffic would survive the capacity change and Utilization()
		// could report nonsense (> 1) on a drained resource.
		r.load = 0
	}
	n.reallocate()
	n.scheduleNext()
}

// uses reports whether any active transfer crosses r.
func (n *Net) uses(r *Resource) bool {
	for _, t := range n.active {
		for _, tr := range t.resources {
			if tr == r {
				return true
			}
		}
	}
	return false
}

// Transfer moves size bytes across the given resources, blocking p until
// the transfer completes. A transfer of zero (or negative) size returns
// immediately. At least one resource is required.
func (n *Net) Transfer(p *sim.Proc, size float64, resources ...*Resource) {
	if size <= 0 {
		return
	}
	n.StartTransfer(size, resources...).Wait(p)
}

// StartTransfer begins moving size bytes across the given resources
// without blocking, returning a handle the caller (or several callers) can
// Wait on. It is the building block for striped I/O, where one logical
// read fans out over every server in parallel.
func (n *Net) StartTransfer(size float64, resources ...*Resource) *Pending {
	pd := &Pending{e: n.e}
	if size <= 0 {
		pd.done = true
		return pd
	}
	if len(resources) == 0 {
		panic("flow: transfer with no resources")
	}
	// Deduplicate resources so a transfer that lists the same resource
	// twice does not double-count itself during water-filling.
	uniq := resources[:0:0]
	for _, r := range resources {
		if r == nil {
			panic("flow: nil resource in transfer")
		}
		seen := false
		for _, u := range uniq {
			if u == r {
				seen = true
				break
			}
		}
		if !seen {
			uniq = append(uniq, r)
		}
	}
	n.nextID++
	t := &transfer{pending: pd, remaining: size, resources: uniq, id: n.nextID}
	n.TotalBytes += size
	n.TotalTransfers++

	n.advance()
	n.active = append(n.active, t)
	n.reallocate()
	n.scheduleNext()
	return pd
}

// TransferCapped is Transfer with a per-flow rate ceiling, modeled as a
// private resource (e.g. a single S3 connection cannot exceed ~25 MB/s
// regardless of NIC headroom).
func (n *Net) TransferCapped(p *sim.Proc, size, maxRate float64, resources ...*Resource) {
	if size <= 0 {
		return
	}
	if maxRate <= 0 {
		// Validate here rather than letting NewResource panic with an
		// opaque internal "flowcap" message: the bug is in the caller's
		// rate, so name it.
		panic(fmt.Sprintf("flow: TransferCapped with non-positive max rate %g", maxRate))
	}
	cap := NewResource("flowcap", maxRate)
	n.Transfer(p, size, append([]*Resource{cap}, resources...)...)
}

// advance integrates progress up to the current time.
func (n *Net) advance() {
	now := n.e.Now()
	dt := now - n.lastUpdate
	n.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, t := range n.active {
		t.remaining -= t.rate * dt
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
}

// reallocate recomputes the max-min fair rate for every active transfer.
//
// The working sets shrink as water-filling progresses: each round walks
// only the bottleneck resource's own flow list (skipping already-fixed
// flows) instead of rescanning every active transfer, and resources
// with no unfixed flows left are compacted out. Per-resource flow lists
// are built in active order, so flows are fixed in exactly the order
// the naive full rescan would fix them — the arithmetic, and therefore
// every simulated timestamp, is bit-identical. This turns the per-event
// cost from rounds x active into roughly the number of flow-resource
// incidences, which is what makes wide fan-out systems like PVFS (every
// read striped over all nodes) affordable at 8 nodes.
func (n *Net) reallocate() {
	n.epoch++
	// Collect the resource set touched by active flows, resetting scratch
	// state lazily via the epoch counter.
	resources := n.scratchRes[:0]
	for _, t := range n.active {
		t.fixed = false
		t.rate = 0
		for _, r := range t.resources {
			if r.epoch != n.epoch {
				r.epoch = n.epoch
				r.residual = r.capacity
				r.count = 0
				r.load = 0
				r.flows = r.flows[:0]
				resources = append(resources, r)
			}
			r.count++
			r.flows = append(r.flows, t)
		}
	}
	unfixed := len(n.active)
	for unfixed > 0 {
		// Find the bottleneck resource: minimum fair share among resources
		// still serving unfixed flows.
		var bottleneck *Resource
		bestShare := 0.0
		liveRes := resources[:0]
		for _, r := range resources {
			if r.count <= 0 {
				continue
			}
			liveRes = append(liveRes, r)
			share := r.residual / float64(r.count)
			if bottleneck == nil || share < bestShare {
				bottleneck = r
				bestShare = share
			}
		}
		resources = liveRes
		if bottleneck == nil {
			panic("flow: unfixed transfers with no remaining resources")
		}
		if bestShare < 0 {
			bestShare = 0
		}
		// Fix every unfixed flow crossing the bottleneck at the fair share.
		for _, t := range bottleneck.flows {
			if t.fixed {
				continue
			}
			t.rate = bestShare
			t.fixed = true
			unfixed--
			for _, r := range t.resources {
				r.residual -= bestShare
				if r.residual < 0 {
					r.residual = 0
				}
				r.count--
				r.load += bestShare
			}
		}
	}
	n.scratchRes = resources[:0]
}

// scheduleNext arms the timer for the earliest completion.
func (n *Net) scheduleNext() {
	if n.timer != nil {
		n.timer.Stop()
		n.timer = nil
	}
	if len(n.active) == 0 {
		return
	}
	next := -1.0
	for _, t := range n.active {
		if t.remaining <= completionEps {
			next = 0
			break
		}
		if t.rate <= 0 {
			// Starved flow: another completion will free capacity; if none
			// exists the simulation will deadlock-panic, which is correct
			// (it means resources were overcommitted by construction).
			continue
		}
		eta := t.remaining / t.rate
		if next < 0 || eta < next {
			next = eta
		}
	}
	if next < 0 {
		panic("flow: all active transfers starved")
	}
	n.timer = n.e.After(next, n.onTimer)
}

// onTimer completes finished transfers and re-plans.
func (n *Net) onTimer() {
	n.timer = nil
	n.advance()
	remaining := n.active[:0]
	var done []*transfer
	for _, t := range n.active {
		if t.remaining <= completionEps {
			done = append(done, t)
		} else {
			remaining = append(remaining, t)
		}
	}
	n.active = remaining
	// Clear the completed transfers' committed loads before re-planning:
	// reallocate only visits resources of still-active flows, so a
	// resource whose flows all just finished would otherwise keep its
	// stale allocation forever — Load()/Utilization() reporting traffic
	// on a drained resource. (Resources shared with surviving flows are
	// recomputed from scratch by the reallocate below.)
	for _, t := range done {
		for _, r := range t.resources {
			r.load = 0
		}
	}
	for _, t := range done {
		t.pending.complete()
	}
	if len(n.active) > 0 {
		n.reallocate()
		n.scheduleNext()
	}
}
