// Package flow implements max-min fair sharing of capacity resources
// among concurrent bulk transfers, integrated with the sim engine.
//
// A Transfer moves a number of bytes across a set of Resources (for
// example: source disk read, source NIC out, destination NIC in,
// destination disk write). At any instant each active transfer receives a
// rate determined by progressive filling (water-filling): the most
// contended resource is saturated first, its flows are fixed at their fair
// share, and the algorithm recurses on the remaining capacity. This is the
// standard fluid approximation for TCP fair share and for disk bandwidth
// sharing, and it is what makes "N clients hammering one NFS server" come
// out N times slower, automatically.
//
// Rates are recomputed whenever a transfer starts or finishes or a
// capacity changes, so rates are piecewise constant and completions are
// exact. The recomputation is incremental: the network maintains an
// explicit transfer↔resource graph (see solver) and re-solves only the
// connected component touched by an event, which keeps the per-event cost
// proportional to the contended neighbourhood instead of the whole active
// set. Transfer and Pending records, private rate-cap resources
// (AcquireCap) and the per-event scratch all recycle through free lists,
// so steady-state transfer churn performs no allocations.
//
// Fan-out I/O (one logical operation striping over many servers) should
// register its shards through a Batch: all shards join the graph under a
// single reallocation and complete through one shared handle, instead of
// paying one full solve per shard.
package flow

import (
	"ec2wfsim/internal/sim"
)

// completionEps is the residual byte count below which a transfer is
// considered complete. It absorbs float64 rounding in rate integration:
// for a terabyte-scale transfer the residue of remaining - rate*dt is on
// the order of 1e-4 bytes, so half a byte is both physically meaningless
// and numerically safe. (A smaller epsilon can livelock: the rescheduled
// completion delta underflows the clock's ULP and time stops advancing.)
const completionEps = 0.5

// Resource is a capacity (bytes/second) shared by transfers. Resources are
// created once (per NIC, per disk channel, ...) and passed to Transfer.
type Resource struct {
	name     string
	capacity float64

	// Solver scratch (epoch-guarded, see solver.solve) and the current
	// committed allocation. Kept adjacent to capacity so the whole set
	// the water-filling inner loop touches shares a cache line.
	residual float64
	count    int
	load     float64 // committed allocation, for utilization queries
	visit    int64
	dirty    bool

	// pooledCap marks resources minted by AcquireCap; pooled reports
	// one currently sitting in the free list. ReleaseCap uses them to
	// reject shared infrastructure resources and double releases, which
	// would otherwise silently corrupt the cap pool.
	pooledCap bool
	pooled    bool

	// members lists the active transfers crossing this resource, in
	// start order — one side of the solver's bipartite graph. It is
	// maintained incrementally by attach/detach.
	members []*transfer
}

// NewResource returns a resource with the given capacity in bytes/second.
// Capacity must be positive: a zero-capacity resource would block forever.
func NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(badArg("NewResource", "capacity", "resource %q with non-positive capacity %g", name, capacity))
	}
	// Membership lists churn constantly on hot resources; starting with
	// room for a few members skips the first rounds of regrowth.
	return &Resource{name: name, capacity: capacity, members: make([]*transfer, 0, 8)}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity in bytes/second.
func (r *Resource) Capacity() float64 { return r.capacity }

// Load returns the rate currently allocated across this resource.
func (r *Resource) Load() float64 { return r.load }

// Utilization returns Load/Capacity in [0,1].
func (r *Resource) Utilization() float64 { return r.load / r.capacity }

// transfer is one in-flight bulk movement — a node of the solver's graph.
// Records are recycled through the network's free list once complete.
type transfer struct {
	pending   *Pending
	remaining float64
	rate      float64
	resources []*Resource // deduplicated, in caller order; owned, reused
	fixed     bool
	visit     int64
	id        int64

	// v2 state: lazy-integration timestamp, the rate of the previous
	// solve (to skip re-keying ETAs that are still exact), position in
	// the ETA heap (-1 when absent) and in the active list (for
	// swap-removal). v1 leaves all four untouched.
	last      float64
	prevRate  float64
	etaPos    int
	activeIdx int
}

// Pending is a handle to one or more asynchronous transfers started with
// StartTransfer or a Batch. Multiple processes may Wait on it; they all
// resume when every attached transfer completes.
type Pending struct {
	refs    int // attached transfers still in flight
	done    bool
	waiters []*sim.Proc
}

// Done reports whether every attached transfer has completed.
func (pd *Pending) Done() bool { return pd.done }

// Wait blocks p until the transfer completes.
func (pd *Pending) Wait(p *sim.Proc) {
	if pd.done {
		return
	}
	pd.waiters = append(pd.waiters, p)
	p.Suspend()
}

// complete records one attached transfer finishing; the handle resolves
// (and its waiters resume) when the last one does.
func (pd *Pending) complete() {
	pd.refs--
	if pd.refs > 0 {
		return
	}
	pd.done = true
	for i, p := range pd.waiters {
		p.Resume()
		pd.waiters[i] = nil
	}
	pd.waiters = pd.waiters[:0]
}

// Net manages the set of active transfers over a shared resource pool.
type Net struct {
	e          *sim.Engine
	active     []*transfer // in start order (the v1 solver relies on this)
	timer      *sim.ReTimer
	lastUpdate float64
	nextID     int64
	sol        solver

	// Solver version gate (see flow_v2.go): 1 solves eagerly per event,
	// 2 coalesces all events on a timestamp into one deferred solve.
	version    int
	flushTimer *sim.ReTimer
	flushArmed bool
	etaHeap    []etaEntry
	timerArmed bool    // completion timer is pending
	timerAt    float64 // ... for this instant, when timerArmed

	// Free lists: steady-state churn recycles transfer and Pending
	// records, batches, private rate caps and the onTimer scratch, so
	// the hot path performs no allocations.
	freeTransfers []*transfer
	tBlock        []transfer // bump region; getTransfer carves when the free list is dry
	freePendings  []*Pending
	freeBatches   []*Batch
	freeCaps      []*Resource
	doneScratch   []*transfer
	capScratch    []*Resource

	// Stats.
	TotalBytes     float64
	TotalTransfers int64
}

// NewNet returns an empty transfer network bound to the engine, running
// the default (v1) solver. Use NewNetVersion to opt into solver v2.
func NewNet(e *sim.Engine) *Net {
	n := &Net{e: e, version: 1}
	n.timer = e.NewReTimer(n.onTimer)
	return n
}

// Active returns the number of in-flight transfers.
func (n *Net) Active() int { return len(n.active) }

// SetResourceCapacity changes a resource's capacity and immediately
// reallocates rates. It is used to model disk initialization (the
// first-write penalty disappearing) mid-simulation.
func (n *Net) SetResourceCapacity(r *Resource, capacity float64) {
	if capacity <= 0 {
		panic(badArg("SetResourceCapacity", "capacity", "setting non-positive capacity %g on %q", capacity, r.name))
	}
	if n.version >= 2 {
		r.capacity = capacity
		if len(r.members) == 0 {
			r.load = 0
		}
		n.sol.markDirty(r)
		n.requestFlush()
		return
	}
	n.advance()
	r.capacity = capacity
	if len(r.members) == 0 {
		// An idle resource is skipped by the solver (which only visits
		// resources of active flows), so a load left over from earlier
		// traffic would survive the capacity change and Utilization()
		// could report nonsense (> 1) on a drained resource.
		r.load = 0
	}
	n.sol.markDirty(r)
	n.sol.solve(n.active)
	n.scheduleNext()
}

// Transfer moves size bytes across the given resources, blocking p until
// the transfer completes. A transfer of zero size returns immediately; a
// negative size or an empty resource list panics with *ArgumentError.
func (n *Net) Transfer(p *sim.Proc, size float64, resources ...*Resource) {
	if size == 0 {
		return
	}
	validateTransferArgs("Transfer", size, resources)
	pd := n.start(size, resources)
	pd.Wait(p)
	n.releasePending(pd)
}

// StartTransfer begins moving size bytes across the given resources
// without blocking, returning a handle the caller (or several callers) can
// Wait on. For fan-out I/O that starts many shards at once, prefer a
// Batch: it registers every shard under a single reallocation.
func (n *Net) StartTransfer(size float64, resources ...*Resource) *Pending {
	if size == 0 {
		pd := n.getPending()
		pd.done = true
		return pd
	}
	validateTransferArgs("StartTransfer", size, resources)
	return n.start(size, resources)
}

// start registers one validated transfer and re-solves its component
// (v1) or marks it for the coalesced solve at this timestamp (v2).
func (n *Net) start(size float64, resources []*Resource) *Pending {
	pd := n.getPending()
	t := n.stage(pd, size, resources)
	if n.version >= 2 {
		n.attach(t)
		n.requestFlush()
		return pd
	}
	n.advance()
	n.attach(t)
	n.sol.solve(n.active)
	n.scheduleNext()
	return pd
}

// stage builds a transfer record (deduplicating its resource list so a
// transfer that lists the same resource twice does not double-count
// itself during water-filling) and accounts it, without touching the
// graph yet.
func (n *Net) stage(pd *Pending, size float64, resources []*Resource) *transfer {
	t := n.getTransfer()
	for _, r := range resources {
		seen := false
		for _, u := range t.resources {
			if u == r {
				seen = true
				break
			}
		}
		if !seen {
			t.resources = append(t.resources, r)
		}
	}
	n.nextID++
	t.id = n.nextID
	t.pending = pd
	t.remaining = size
	t.last = n.e.Now()
	pd.refs++
	n.TotalBytes += size
	n.TotalTransfers++
	return t
}

// attach inserts t into the graph: the active list and every crossed
// resource's membership list (both in start order), marking the touched
// resources dirty for the next solve.
func (n *Net) attach(t *transfer) {
	n.active = append(n.active, t)
	t.activeIdx = len(n.active) - 1
	for _, r := range t.resources {
		r.members = append(r.members, t)
		n.sol.markDirty(r)
	}
}

// detach removes a completed transfer from the graph, preserving member
// order, clearing the committed loads of the resources it crossed (the
// solver recomputes the ones that still carry traffic) and marking them
// dirty.
func (n *Net) detach(t *transfer) {
	for _, r := range t.resources {
		for i, m := range r.members {
			if m == t {
				copy(r.members[i:], r.members[i+1:])
				r.members[len(r.members)-1] = nil
				r.members = r.members[:len(r.members)-1]
				break
			}
		}
		r.load = 0
		n.sol.markDirty(r)
	}
}

// TransferCapped is Transfer with a per-flow rate ceiling, modeled as a
// pooled private resource (e.g. a single S3 connection cannot exceed
// ~25 MB/s regardless of NIC headroom).
func (n *Net) TransferCapped(p *sim.Proc, size, maxRate float64, resources ...*Resource) {
	if size == 0 {
		return
	}
	if size < 0 {
		panic(badArg("TransferCapped", "size", "negative transfer size %g", size))
	}
	if maxRate <= 0 {
		// Validate here rather than at cap construction: the bug is in
		// the caller's rate, so name the caller.
		panic(badArg("TransferCapped", "maxRate", "non-positive max rate %g", maxRate))
	}
	cap := n.AcquireCap("flowcap", maxRate)
	// The scratch is only live until start() copies it into the transfer
	// record, before p parks, so concurrent TransferCapped calls from
	// other processes cannot clobber an in-use view.
	n.capScratch = append(n.capScratch[:0], cap)
	n.capScratch = append(n.capScratch, resources...)
	n.Transfer(p, size, n.capScratch...)
	n.ReleaseCap(cap)
}

// AcquireCap returns a private rate-limit resource from the network's
// pool — the graph-API way to model per-connection or per-request-window
// ceilings (one S3 connection, a PVFS client's request window) without
// allocating a Resource per operation. Return it with ReleaseCap once the
// transfers crossing it have completed.
func (n *Net) AcquireCap(name string, rate float64) *Resource {
	if rate <= 0 {
		panic(badArg("AcquireCap", "rate", "non-positive cap rate %g", rate))
	}
	if k := len(n.freeCaps); k > 0 {
		r := n.freeCaps[k-1]
		n.freeCaps[k-1] = nil
		n.freeCaps = n.freeCaps[:k-1]
		r.name = name
		r.capacity = rate
		r.pooled = false
		return r
	}
	r := NewResource(name, rate)
	r.pooledCap = true
	return r
}

// ReleaseCap returns an AcquireCap resource to the pool. The cap must be
// idle (all transfers crossing it completed) and must not be used again.
func (n *Net) ReleaseCap(r *Resource) {
	if !r.pooledCap {
		panic("flow: ReleaseCap of resource " + r.name + " that AcquireCap did not mint")
	}
	if r.pooled {
		panic("flow: double ReleaseCap of resource " + r.name)
	}
	if len(r.members) > 0 {
		panic("flow: ReleaseCap of resource " + r.name + " with active transfers")
	}
	r.pooled = true
	n.freeCaps = append(n.freeCaps, r)
}

// advance integrates progress up to the current time.
func (n *Net) advance() {
	now := n.e.Now()
	dt := now - n.lastUpdate
	n.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, t := range n.active {
		t.remaining -= t.rate * dt
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
}

// scheduleNext arms the timer for the earliest completion.
func (n *Net) scheduleNext() {
	n.timer.Stop()
	if len(n.active) == 0 {
		return
	}
	next := -1.0
	for _, t := range n.active {
		if t.remaining <= completionEps {
			next = 0
			break
		}
		if t.rate <= 0 {
			// Starved flow: another completion will free capacity; if none
			// exists the simulation will deadlock-panic, which is correct
			// (it means resources were overcommitted by construction).
			continue
		}
		eta := t.remaining / t.rate
		if next < 0 || eta < next {
			next = eta
		}
	}
	if next < 0 {
		panic("flow: all active transfers starved")
	}
	n.timer.Arm(next)
}

// onTimer completes finished transfers and re-plans.
func (n *Net) onTimer() {
	n.advance()
	remaining := n.active[:0]
	done := n.doneScratch[:0]
	for _, t := range n.active {
		if t.remaining <= completionEps {
			done = append(done, t)
		} else {
			remaining = append(remaining, t)
		}
	}
	n.active = remaining
	for _, t := range done {
		n.detach(t)
	}
	for _, t := range done {
		t.pending.complete()
	}
	n.sol.solve(n.active)
	n.scheduleNext()
	for _, t := range done {
		n.recycleTransfer(t)
	}
	n.doneScratch = done[:0]
}

// Free-list plumbing. Records are zeroed on recycle, not on reuse, so a
// freshly popped record is always clean.

func (n *Net) getTransfer() *transfer {
	if k := len(n.freeTransfers); k > 0 {
		t := n.freeTransfers[k-1]
		n.freeTransfers[k-1] = nil
		n.freeTransfers = n.freeTransfers[:k-1]
		return t
	}
	// Carve fresh records from a block so concurrently active transfers
	// sit contiguously (the solver walks them constantly) and each comes
	// with a pre-carved resource slice sized for the common fan-in.
	if len(n.tBlock) == 0 {
		block := make([]transfer, 32)
		res := make([]*Resource, 32*4)
		for i := range block {
			block[i].etaPos = -1
			block[i].resources = res[i*4 : i*4 : (i+1)*4]
		}
		n.tBlock = block
	}
	t := &n.tBlock[0]
	n.tBlock = n.tBlock[1:]
	return t
}

func (n *Net) recycleTransfer(t *transfer) {
	t.pending = nil
	t.remaining = 0
	t.rate = 0
	t.fixed = false
	t.last = 0
	t.prevRate = 0
	t.etaPos = -1 // v2 removes the heap entry before recycling
	t.activeIdx = 0
	for i := range t.resources {
		t.resources[i] = nil
	}
	t.resources = t.resources[:0]
	n.freeTransfers = append(n.freeTransfers, t)
}

func (n *Net) getPending() *Pending {
	if k := len(n.freePendings); k > 0 {
		pd := n.freePendings[k-1]
		n.freePendings[k-1] = nil
		n.freePendings = n.freePendings[:k-1]
		return pd
	}
	return &Pending{}
}

// releasePending recycles a resolved handle. Only call sites that own the
// handle exclusively (Transfer, Batch.Run) release; handles escaping via
// StartTransfer are left to the garbage collector, so an external holder
// can never observe a recycled Pending.
func (n *Net) releasePending(pd *Pending) {
	if !pd.done {
		panic("flow: releasing incomplete Pending")
	}
	pd.done = false
	pd.refs = 0
	n.freePendings = append(n.freePendings, pd)
}
