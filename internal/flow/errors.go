package flow

import "fmt"

// ArgumentError reports an invalid argument passed to a flow API entry
// point (Transfer, StartTransfer, Batch.Add, TransferCapped, NewResource,
// SetResourceCapacity). The flow API is used from inside simulation
// processes where there is no error-return channel, so boundary
// validation panics with a typed *ArgumentError naming the call and the
// offending argument — callers that want to translate it (tests, fuzzers)
// can recover and type-assert.
type ArgumentError struct {
	Call string // the API entry point, e.g. "StartTransfer"
	Arg  string // the argument at fault, e.g. "size"
	Msg  string // description including the offending value
}

// Error implements error.
func (e *ArgumentError) Error() string {
	return fmt.Sprintf("flow: %s: invalid %s: %s", e.Call, e.Arg, e.Msg)
}

// badArg builds the panic value for a rejected argument.
func badArg(call, arg, format string, args ...interface{}) *ArgumentError {
	return &ArgumentError{Call: call, Arg: arg, Msg: fmt.Sprintf(format, args...)}
}

// validateTransferArgs applies the shared boundary checks for every
// transfer-registering entry point: a negative size and an empty or nil
// resource list are caller bugs and are rejected before they can reach
// the solver (a zero size is a documented no-op and is handled by the
// callers before validation).
func validateTransferArgs(call string, size float64, resources []*Resource) {
	if size < 0 {
		panic(badArg(call, "size", "negative transfer size %g", size))
	}
	if len(resources) == 0 {
		panic(badArg(call, "resources", "transfer with no resources"))
	}
	for _, r := range resources {
		if r == nil {
			panic(badArg(call, "resources", "nil resource in transfer"))
		}
	}
}
