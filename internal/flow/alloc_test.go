package flow

import (
	"fmt"
	"testing"

	"ec2wfsim/internal/sim"
)

// Steady-state transfer churn — blocking transfers and batched fan-outs
// starting and completing continuously — must not allocate under either
// solver version: transfer and Pending records, batches, window caps,
// solver scratch, ETA-heap entries and sim event records all recycle
// through free lists. This is the allocation regression rail for both
// solvers' hot paths. Kept serial: AllocsPerRun counts are polluted by
// concurrent tests allocating on the same heap.
func TestSteadyStateChurnAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	for _, version := range []int{1, 2} {
		t.Run(fmt.Sprintf("v%d", version), func(t *testing.T) {
			e := sim.NewEngine()
			n := NewNetVersion(e, version)
			server := NewResource("server", 100)
			disks := []*Resource{NewResource("d0", 80), NewResource("d1", 120)}
			// Blocking-transfer clients contending on a shared server resource.
			for i := 0; i < 3; i++ {
				nic := NewResource("nic", 300)
				e.GoDaemon("client", func(p *sim.Proc) {
					rs := []*Resource{server, nic}
					for {
						n.Transfer(p, 1500, rs...)
					}
				})
			}
			// A capped transfer client (pooled private cap per call).
			e.GoDaemon("capped", func(p *sim.Proc) {
				for {
					n.TransferCapped(p, 900, 45, server)
				}
			})
			// A striped fan-out client (batch + pooled window cap per call).
			e.GoDaemon("striper", func(p *sim.Proc) {
				for {
					win := n.AcquireCap("win", 60)
					b := n.NewBatch()
					b.Add(400, win, disks[0])
					b.Add(400, win, disks[1])
					b.Run(p)
					n.ReleaseCap(win)
				}
			})
			// Warm the free lists and slice capacities to their steady state.
			e.RunUntil(5000)
			allocs := testing.AllocsPerRun(50, func() {
				e.RunUntil(e.Now() + 200)
			})
			if allocs > 0 {
				t.Errorf("v%d steady-state churn allocated %.2f objects per 200s window, want 0",
					version, allocs)
			}
		})
	}
}
