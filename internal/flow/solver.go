package flow

// solver owns the bipartite transfer↔resource graph and re-solves max-min
// fair rates incrementally. Each Resource keeps a persistent membership
// list of the active transfers crossing it; events (transfer start/finish,
// capacity change, timer drain) mark the resources they touch dirty, and
// solve recomputes only the connected component(s) of the graph reachable
// from the dirty set. Transfers outside that component keep their rates.
//
// Correctness of the restriction: water-filling decomposes over connected
// components — fixing a flow changes only the residuals and counts of the
// resources that flow crosses, so components evolve independently, and the
// rate of every flow in an untouched component is reproduced bit-for-bit
// by its previous solve (same members, same capacities, same order, same
// float operations). The component solve below performs exactly the
// arithmetic the historical from-scratch pass (kept as the oracle in the
// test tree) performs for that component: flows are visited in active
// (start) order, resources in first-seen order, bottleneck ties break to
// the earlier resource, and loads accumulate in fix order — so every
// simulated timestamp is bit-identical to a full recompute.
//
// All scratch (BFS queue, component flow/resource lists, dirty set) lives
// on the solver and is reused across events; visit marks are epoch
// counters on the graph nodes, so nothing is cleared or allocated in the
// steady state.
type solver struct {
	// epoch is the visit-mark generation; it advances twice per solve
	// (once for the BFS, once for the component reset) and never wraps
	// in practice (int64 at two bumps per simulation event).
	epoch int64

	// dirty lists resources touched since the last solve (deduplicated
	// via Resource.dirty).
	dirty []*Resource

	// Reusable scratch: BFS queue, component flows in active order,
	// component resources in first-seen order.
	queue []*Resource
	flows []*transfer
	res   []*Resource

	// bn is solveV2's bottleneck-heap scratch (unused by v1).
	bn []bnEntry
}

// markDirty adds r to the dirty set for the next solve.
func (s *solver) markDirty(r *Resource) {
	if !r.dirty {
		r.dirty = true
		s.dirty = append(s.dirty, r)
	}
}

// solve recomputes max-min fair rates for every transfer connected to a
// dirty resource, leaving all other transfers (and their resources'
// committed loads) untouched. active must be the full active list in
// start order; it is scanned once to keep component flows in exactly the
// order the from-scratch pass would visit them.
func (s *solver) solve(active []*transfer) {
	if len(s.dirty) == 0 {
		return
	}
	// Phase 1: BFS over the bipartite graph from the dirty resources to
	// find the affected component(s).
	s.epoch++
	ep := s.epoch
	queue := s.queue[:0]
	for _, r := range s.dirty {
		r.dirty = false
		if r.visit != ep {
			r.visit = ep
			queue = append(queue, r)
		}
	}
	s.dirty = s.dirty[:0]
	touched := 0
	for i := 0; i < len(queue); i++ {
		for _, t := range queue[i].members {
			if t.visit == ep {
				continue
			}
			t.visit = ep
			touched++
			for _, r := range t.resources {
				if r.visit != ep {
					r.visit = ep
					queue = append(queue, r)
				}
			}
		}
	}
	s.queue = queue[:0]
	if touched == 0 {
		// Dirty resources with no active flows (a drained resource's
		// capacity change, a finished transfer's last resource): loads
		// were already cleared by the caller; nothing to solve.
		return
	}
	// Phase 2: collect the component's flows in active order — the order
	// the from-scratch pass fixes them in.
	flows := s.flows[:0]
	if touched == len(active) {
		flows = append(flows, active...)
	} else {
		for _, t := range active {
			if t.visit == ep {
				flows = append(flows, t)
			}
		}
	}
	// Phase 3: reset the component's resources in first-seen order and
	// count their member flows. A resource's members are all inside the
	// component (components are closed over membership), so count is
	// simply accumulated per incidence, as the from-scratch pass does.
	s.epoch++
	ep = s.epoch
	res := s.res[:0]
	for _, t := range flows {
		t.fixed = false
		t.rate = 0
		for _, r := range t.resources {
			if r.visit != ep {
				r.visit = ep
				r.residual = r.capacity
				r.count = 0
				r.load = 0
				res = append(res, r)
			}
			r.count++
		}
	}
	// Phase 4: progressive filling, arithmetic identical to the
	// from-scratch pass restricted to this component. Each round walks
	// only the bottleneck's own membership list, and resources with no
	// unfixed flows left are compacted out.
	unfixed := len(flows)
	resources := res
	for unfixed > 0 {
		var bottleneck *Resource
		bestShare := 0.0
		liveRes := resources[:0]
		for _, r := range resources {
			if r.count <= 0 {
				continue
			}
			liveRes = append(liveRes, r)
			share := r.residual / float64(r.count)
			if bottleneck == nil || share < bestShare {
				bottleneck = r
				bestShare = share
			}
		}
		resources = liveRes
		if bottleneck == nil {
			panic("flow: unfixed transfers with no remaining resources")
		}
		if bestShare < 0 {
			bestShare = 0
		}
		for _, t := range bottleneck.members {
			if t.fixed {
				continue
			}
			t.rate = bestShare
			t.fixed = true
			unfixed--
			for _, r := range t.resources {
				r.residual -= bestShare
				if r.residual < 0 {
					r.residual = 0
				}
				r.count--
				r.load += bestShare
			}
		}
	}
	s.flows = flows[:0]
	s.res = res[:0]
}
