package flow

import "ec2wfsim/internal/sim"

// A Batch registers several transfers as one atomic graph update: Add
// stages shard transfers, Run inserts them all and re-solves their
// component once, then blocks until every shard completes. This is the
// entry point for striped fan-out I/O (one logical read spread over every
// PVFS server): N shards cost one reallocation instead of N, and all
// bookkeeping (the batch itself, the shared completion handle, the shard
// records) recycles through the network's free lists.
//
// A batch must be staged and run within a single process turn (no parks
// between NewBatch and Run) so its shards join the active set
// contiguously, and must not be reused after Run returns.
type Batch struct {
	n  *Net
	pd *Pending
	ts []*transfer
}

// NewBatch opens an empty batch.
func (n *Net) NewBatch() *Batch {
	var b *Batch
	if k := len(n.freeBatches); k > 0 {
		b = n.freeBatches[k-1]
		n.freeBatches[k-1] = nil
		n.freeBatches = n.freeBatches[:k-1]
	} else {
		b = &Batch{n: n, ts: make([]*transfer, 0, 8)}
	}
	b.pd = n.getPending()
	return b
}

// Add stages one shard transfer of size bytes across the given resources.
// A zero size is a no-op shard; a negative size or an empty resource list
// panics with *ArgumentError.
func (b *Batch) Add(size float64, resources ...*Resource) {
	if size == 0 {
		return
	}
	validateTransferArgs("Batch.Add", size, resources)
	b.ts = append(b.ts, b.n.stage(b.pd, size, resources))
}

// Run registers every staged shard under a single reallocation and blocks
// p until all of them complete. The batch is recycled; do not use it (or
// keep references to it) afterwards.
func (b *Batch) Run(p *sim.Proc) {
	n := b.n
	if len(b.ts) == 0 {
		b.pd.done = true
	} else if n.version >= 2 {
		for _, t := range b.ts {
			n.attach(t)
		}
		n.requestFlush()
	} else {
		n.advance()
		for _, t := range b.ts {
			n.attach(t)
		}
		n.sol.solve(n.active)
		n.scheduleNext()
	}
	b.pd.Wait(p)
	n.releasePending(b.pd)
	b.pd = nil
	for i := range b.ts {
		b.ts[i] = nil
	}
	b.ts = b.ts[:0]
	n.freeBatches = append(n.freeBatches, b)
}
