//go:build race

package flow

const raceEnabled = true
