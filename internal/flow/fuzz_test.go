package flow

import (
	"fmt"
	"testing"

	"ec2wfsim/internal/sim"
)

// FuzzReallocate is the solvers' correctness rail: it decodes a random
// event script (blocking transfers, batched fan-outs with pooled window
// caps, capacity changes, load probes, all at fuzzed times over a fuzzed
// resource set) and drives it through the from-scratch oracle preserved
// in oracle_test.go and both versioned solvers. The comparison is
// three-way with two distinct contracts:
//
//   - oracle ≡ v1, bit for bit: every completion timestamp, every probed
//     load, the final clock and the byte totals — the same discipline the
//     golden file enforces at paper scale.
//
//   - oracle ≈ v2, within a stated per-timestamp tolerance: v2's
//     coalesced solves and heap tie-breaks reorder float arithmetic, and
//     its per-component completion checks can resolve a transfer that is
//     within completionEps of done up to "the time the fair share moves
//     half a byte" away from where v1's global sweep resolves it (see
//     script.timeSlack). Conservation is still exact: identical byte and
//     transfer totals, every op completes on both sides, and every
//     resource drains to exactly zero residual load.

// script is one decoded fuzz scenario.
type script struct {
	caps []float64 // initial resource capacities
	ops  []scriptOp
}

type scriptOp struct {
	at   float64
	kind byte // 0 blocking transfer, 1 fan-out batch, 2 set capacity, 3 probe

	size   float64 // transfer: total size; fan-out: per-shard size
	res    []int   // transfer: resource indices
	shards [][]int // fan-out: per-shard resource indices
	capRt  float64 // fan-out: window cap rate (0 = none)

	capIdx int     // set capacity: resource index
	capVal float64 // set capacity: new capacity
}

// decodeScript turns fuzz bytes into a bounded, always-valid scenario.
func decodeScript(data []byte) *script {
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return int(b)
	}
	nRes := next()%5 + 1
	s := &script{}
	for i := 0; i < nRes; i++ {
		s.caps = append(s.caps, float64(next()%500+1))
	}
	subset := func() []int {
		mask := next() % (1 << nRes)
		if mask == 0 {
			mask = 1
		}
		var idxs []int
		for i := 0; i < nRes; i++ {
			if mask&(1<<i) != 0 {
				idxs = append(idxs, i)
			}
		}
		return idxs
	}
	nOps := next()%32 + 1
	at := 0.0
	for i := 0; i < nOps; i++ {
		at += float64(next()%64) / 8 // gaps of 0..7.875s; 0 keeps same-time races
		op := scriptOp{at: at, kind: byte(next() % 4)}
		switch op.kind {
		case 0:
			// Sizes reach down to 0.25 bytes — below completionEps — to
			// exercise the instant-completion path on both sides.
			op.size = float64(next()%4000)/4 + 0.25
			op.res = subset()
		case 1:
			op.size = float64(next()%2000)/4 + 0.25
			shards := next()%4 + 1
			for j := 0; j < shards; j++ {
				op.shards = append(op.shards, subset())
			}
			if next()%2 == 0 {
				op.capRt = float64(next()%200 + 1)
			}
		case 2:
			op.capIdx = next() % nRes
			op.capVal = float64(next()%500 + 1)
		}
		s.ops = append(s.ops, op)
	}
	return s
}

// expectedTotals computes the byte and transfer totals the script must
// produce from the script alone (sizes are exact binary quarters, so the
// sum is exact): the oracle-free conservation anchor for v2.
func (s *script) expectedTotals() (bytes float64, count int64) {
	for _, op := range s.ops {
		switch op.kind {
		case 0:
			bytes += op.size
			count++
		case 1:
			bytes += op.size * float64(len(op.shards))
			count += int64(len(op.shards))
		}
	}
	return bytes, count
}

// timeSlack bounds how far a v2 completion timestamp may drift from the
// oracle's. Both modes complete a transfer somewhere inside the window
// where under completionEps bytes remain; v1 resolves it at the first
// global timer event in that window, v2 at the first event touching its
// component. The window lasts at most completionEps divided by the
// slowest possible fair share (every transfer contending on the smallest
// capacity in the script), and a drifted departure perturbs its
// neighbours' rates for at most that long again — hence the small
// constant headroom on top of the single-window bound.
func (s *script) timeSlack() float64 {
	minCap := s.caps[0]
	for _, c := range s.caps {
		if c < minCap {
			minCap = c
		}
	}
	n := 0
	for _, op := range s.ops {
		switch op.kind {
		case 0:
			n++
		case 1:
			n += len(op.shards)
			if op.capRt > 0 && op.capRt < minCap {
				minCap = op.capRt
			}
		case 2:
			if op.capVal < minCap {
				minCap = op.capVal
			}
		}
	}
	if n == 0 {
		return 1
	}
	return 4 * completionEps * float64(n) / minCap
}

// trace is everything a run observes; same-version runs compare traces
// bit-exactly, cross-version runs per the contracts above.
type trace struct {
	completions []float64 // per transfer/fan-out op, completion time
	probes      []float64 // per probe op, active count then per-resource loads
	finalLoads  []float64 // per resource, committed load after the run drains
	end         float64
	totalBytes  float64
	totalCount  int64
}

// flowDriver abstracts the two implementations behind one script runner.
type flowDriver interface {
	transfer(p *sim.Proc, size float64, res []int)
	fanout(p *sim.Proc, size float64, shards [][]int, capRate float64)
	setCapacity(idx int, c float64)
	load(idx int) float64
	activeCount() int
	totals() (float64, int64)
}

type realDriver struct {
	n  *Net
	rs []*Resource

	// pickBuf is reused across ops: Transfer and Batch.Add copy the
	// resource list into the transfer record before returning, so the
	// scratch is dead by the time the next op runs.
	pickBuf []*Resource
}

func newRealDriver(e *sim.Engine, caps []float64) *realDriver {
	return newRealDriverV(e, caps, 1)
}

// resNames is precomputed so the benchmark shapes do not charge a
// Sprintf per resource per iteration to both drivers' setup (a constant
// added to each mode's ns/op that dilutes their ratio). Sized for the
// largest shape (scale1000: 3000 resources); read-only after init, so
// parallel subtests share it safely.
var resNames = func() []string {
	ns := make([]string, 3072)
	for i := range ns {
		ns[i] = fmt.Sprintf("r%d", i)
	}
	return ns
}()

func resName(i int) string {
	if i < len(resNames) {
		return resNames[i]
	}
	return fmt.Sprintf("r%d", i)
}

func newRealDriverV(e *sim.Engine, caps []float64, version int) *realDriver {
	d := &realDriver{n: NewNetVersion(e, version), rs: make([]*Resource, 0, len(caps))}
	for i, c := range caps {
		d.rs = append(d.rs, NewResource(resName(i), c))
	}
	return d
}

func (d *realDriver) pick(base []*Resource, idxs []int) []*Resource {
	for _, idx := range idxs {
		base = append(base, d.rs[idx])
	}
	return base
}

func (d *realDriver) transfer(p *sim.Proc, size float64, res []int) {
	d.pickBuf = d.pick(d.pickBuf[:0], res)
	d.n.Transfer(p, size, d.pickBuf...)
}

func (d *realDriver) fanout(p *sim.Proc, size float64, shards [][]int, capRate float64) {
	var cap *Resource
	if capRate > 0 {
		cap = d.n.AcquireCap("win", capRate)
	}
	b := d.n.NewBatch()
	for _, sh := range shards {
		rs := d.pickBuf[:0]
		if cap != nil {
			rs = append(rs, cap)
		}
		rs = d.pick(rs, sh)
		d.pickBuf = rs
		b.Add(size, rs...)
	}
	b.Run(p)
	if cap != nil {
		d.n.ReleaseCap(cap)
	}
}

func (d *realDriver) setCapacity(idx int, c float64) { d.n.SetResourceCapacity(d.rs[idx], c) }

// load and activeCount Sync first so probes observe the rates in effect
// at the probe's own timestamp under v2's deferred solves (a no-op on v1).
func (d *realDriver) load(idx int) float64     { d.n.Sync(); return d.rs[idx].Load() }
func (d *realDriver) activeCount() int         { d.n.Sync(); return d.n.Active() }
func (d *realDriver) totals() (float64, int64) { return d.n.TotalBytes, d.n.TotalTransfers }

type oracleDriver struct {
	n  *oracleNet
	rs []*oracleResource
}

func newOracleDriver(e *sim.Engine, caps []float64) *oracleDriver {
	d := &oracleDriver{n: newOracleNet(e), rs: make([]*oracleResource, 0, len(caps))}
	for i, c := range caps {
		d.rs = append(d.rs, newOracleResource(resName(i), c))
	}
	return d
}

func (d *oracleDriver) pick(idxs []int) []*oracleResource {
	rs := make([]*oracleResource, len(idxs))
	for i, idx := range idxs {
		rs[i] = d.rs[idx]
	}
	return rs
}

func (d *oracleDriver) transfer(p *sim.Proc, size float64, res []int) {
	d.n.Transfer(p, size, d.pick(res)...)
}

// fanout reproduces the historical fan-out idiom: one StartTransfer per
// shard (each paying a full reallocation), a private window-cap resource,
// then waiting the shard handles in order.
func (d *oracleDriver) fanout(p *sim.Proc, size float64, shards [][]int, capRate float64) {
	var cap *oracleResource
	if capRate > 0 {
		cap = newOracleResource("win", capRate)
	}
	var pds []*oraclePending
	for _, sh := range shards {
		var rs []*oracleResource
		if cap != nil {
			rs = append(rs, cap)
		}
		rs = append(rs, d.pick(sh)...)
		pds = append(pds, d.n.StartTransfer(size, rs...))
	}
	for _, pd := range pds {
		pd.Wait(p)
	}
}

func (d *oracleDriver) setCapacity(idx int, c float64) { d.n.SetResourceCapacity(d.rs[idx], c) }
func (d *oracleDriver) load(idx int) float64           { return d.rs[idx].Load() }
func (d *oracleDriver) activeCount() int               { return d.n.Active() }
func (d *oracleDriver) totals() (float64, int64)       { return d.n.TotalBytes, d.n.TotalTransfers }

// runScript schedules the whole scenario up front (so both runs assign
// identical event sequence numbers to the script skeleton) and executes
// it to completion.
func runScript(s *script, build func(e *sim.Engine, caps []float64) flowDriver) *trace {
	e := sim.NewEngine()
	d := build(e, s.caps)
	tr := &trace{completions: make([]float64, len(s.ops))}
	for i := range tr.completions {
		tr.completions[i] = -1
	}
	for i, op := range s.ops {
		i, op := i, op
		switch op.kind {
		case 0:
			e.At(op.at, func() {
				e.Go("t", func(p *sim.Proc) {
					d.transfer(p, op.size, op.res)
					tr.completions[i] = p.Now()
				})
			})
		case 1:
			e.At(op.at, func() {
				e.Go("f", func(p *sim.Proc) {
					d.fanout(p, op.size, op.shards, op.capRt)
					tr.completions[i] = p.Now()
				})
			})
		case 2:
			e.At(op.at, func() { d.setCapacity(op.capIdx, op.capVal) })
		case 3:
			e.At(op.at, func() {
				tr.probes = append(tr.probes, float64(d.activeCount()))
				for idx := range s.caps {
					tr.probes = append(tr.probes, d.load(idx))
				}
			})
		}
	}
	e.Run()
	tr.end = e.Now()
	tr.totalBytes, tr.totalCount = d.totals()
	for idx := range s.caps {
		tr.finalLoads = append(tr.finalLoads, d.load(idx))
	}
	return tr
}

func FuzzReallocate(f *testing.F) {
	f.Add([]byte{3, 10, 200, 50, 8, 0, 0, 1, 3, 0, 1, 2, 7, 100, 4, 2, 0, 40, 0, 3})
	f.Add([]byte{2, 90, 90, 6, 0, 1, 80, 3, 3, 3, 1, 0, 2, 1, 7, 0, 3})
	f.Add([]byte{5, 5, 255, 120, 60, 30, 12, 8, 1, 200, 2, 31, 31, 1, 99, 0, 0, 1, 3, 3, 2, 4, 250})
	f.Add([]byte{1, 1, 4, 0, 0, 1, 0, 0, 1, 0, 0, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := decodeScript(data)
		want := runScript(s, func(e *sim.Engine, caps []float64) flowDriver { return newOracleDriver(e, caps) })
		v1 := runScript(s, func(e *sim.Engine, caps []float64) flowDriver { return newRealDriverV(e, caps, 1) })
		compareExact(t, "incremental", v1, want, s)
		v2 := runScript(s, func(e *sim.Engine, caps []float64) flowDriver { return newRealDriverV(e, caps, 2) })
		compareV2(t, v2, want, s)
	})
}

// compareExact is the v1 contract: bit-identical to the oracle.
func compareExact(t *testing.T, label string, got, want *trace, s *script) {
	t.Helper()
	if got.end != want.end {
		t.Fatalf("makespan diverged: %s %v, oracle %v", label, got.end, want.end)
	}
	if got.totalBytes != want.totalBytes || got.totalCount != want.totalCount {
		t.Fatalf("totals diverged: %s (%v, %d), oracle (%v, %d)",
			label, got.totalBytes, got.totalCount, want.totalBytes, want.totalCount)
	}
	for i := range got.completions {
		if got.completions[i] != want.completions[i] {
			t.Fatalf("op %d completion diverged: %s %v, oracle %v (script %+v)",
				i, label, got.completions[i], want.completions[i], s.ops[i])
		}
	}
	if len(got.probes) != len(want.probes) {
		t.Fatalf("probe count diverged: %d vs %d", len(got.probes), len(want.probes))
	}
	for i := range got.probes {
		if got.probes[i] != want.probes[i] {
			t.Fatalf("probe %d diverged: %s %v, oracle %v", i, label, got.probes[i], want.probes[i])
		}
	}
	for i := range got.finalLoads {
		if got.finalLoads[i] != want.finalLoads[i] {
			t.Fatalf("final load of r%d diverged: %s %v, oracle %v", i, label, got.finalLoads[i], want.finalLoads[i])
		}
	}
}

// timeClose is the v2 per-timestamp tolerance: float-noise relative error
// from reordered arithmetic, plus the script's completion-window slack.
func timeClose(a, b, slack float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= slack+1e-9*(1+scale)
}

// compareV2 is the v2 contract: timestamps within tolerance, exact
// conservation (totals, completion coverage, drained final loads).
func compareV2(t *testing.T, got, want *trace, s *script) {
	t.Helper()
	slack := s.timeSlack()
	if !timeClose(got.end, want.end, slack) {
		t.Fatalf("makespan diverged beyond slack %g: v2 %v, oracle %v", slack, got.end, want.end)
	}
	if got.totalBytes != want.totalBytes || got.totalCount != want.totalCount {
		t.Fatalf("totals diverged: v2 (%v, %d), oracle (%v, %d)",
			got.totalBytes, got.totalCount, want.totalBytes, want.totalCount)
	}
	for i := range got.completions {
		a, b := got.completions[i], want.completions[i]
		if (a < 0) != (b < 0) {
			t.Fatalf("op %d completed on one side only: v2 %v, oracle %v", i, a, b)
		}
		if a >= 0 && !timeClose(a, b, slack) {
			t.Fatalf("op %d completion diverged beyond slack %g: v2 %v, oracle %v (script %+v)",
				i, slack, a, b, s.ops[i])
		}
	}
	if len(got.probes) != len(want.probes) {
		t.Fatalf("probe count diverged: %d vs %d", len(got.probes), len(want.probes))
	}
	// Probed loads are only comparable when both sides carry the same
	// transfer population: a near-completionEps transfer can be resolved
	// on one side and still draining on the other at the probe's
	// timestamp, which shifts every rate in its component.
	stride := 1 + len(s.caps)
	for p := 0; p+stride <= len(got.probes); p += stride {
		if got.probes[p] != want.probes[p] {
			continue
		}
		for k := 1; k < stride; k++ {
			if !timeClose(got.probes[p+k], want.probes[p+k], 0) {
				t.Fatalf("probe %d load r%d diverged: v2 %v, oracle %v",
					p/stride, k-1, got.probes[p+k], want.probes[p+k])
			}
		}
	}
	for i, ld := range got.finalLoads {
		if ld != 0 {
			t.Fatalf("v2 left residual load %g on r%d after the run drained, want exactly 0", ld, i)
		}
	}
}

// FuzzV2Invariants is the oracle-free v2 rail, cheap enough for a CI
// smoke: the same script space, run only on v2, checking what must hold
// without reference to any other implementation — byte/transfer totals
// computed from the script, every transfer op completing no earlier than
// it started, a fully drained graph, and bit-identical determinism
// across two runs.
func FuzzV2Invariants(f *testing.F) {
	f.Add([]byte{3, 10, 200, 50, 8, 0, 0, 1, 3, 0, 1, 2, 7, 100, 4, 2, 0, 40, 0, 3})
	f.Add([]byte{2, 90, 90, 6, 0, 1, 80, 3, 3, 3, 1, 0, 2, 1, 7, 0, 3})
	f.Add([]byte{5, 5, 255, 120, 60, 30, 12, 8, 1, 200, 2, 31, 31, 1, 99, 0, 0, 1, 3, 3, 2, 4, 250})
	f.Add([]byte{1, 1, 4, 0, 0, 1, 0, 0, 1, 0, 0, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := decodeScript(data)
		build := func(e *sim.Engine, caps []float64) flowDriver { return newRealDriverV(e, caps, 2) }
		got := runScript(s, build)
		again := runScript(s, build)
		compareExact(t, "re-run", again, got, s)
		wantBytes, wantCount := s.expectedTotals()
		if got.totalBytes != wantBytes || got.totalCount != wantCount {
			t.Fatalf("totals diverged from script: v2 (%v, %d), script (%v, %d)",
				got.totalBytes, got.totalCount, wantBytes, wantCount)
		}
		for i, op := range s.ops {
			if op.kind > 1 {
				continue
			}
			if got.completions[i] < op.at {
				t.Fatalf("op %d (start %v) completed at %v", i, op.at, got.completions[i])
			}
		}
		for i, ld := range got.finalLoads {
			if ld != 0 {
				t.Fatalf("residual load %g on r%d after the run drained", ld, i)
			}
		}
	})
}
