package flow

import (
	"fmt"
	"testing"

	"ec2wfsim/internal/sim"
)

// FuzzReallocate is the incremental solver's correctness rail: it decodes
// a random event script (blocking transfers, batched fan-outs with pooled
// window caps, capacity changes, load probes, all at fuzzed times over a
// fuzzed resource set) and drives it through both the real Net and the
// from-scratch oracle preserved in oracle_test.go. Every completion
// timestamp, every probed load, the final clock and the byte totals must
// match bit for bit — the same discipline the golden file enforces at
// paper scale, exercised here over shapes the applications never form.

// script is one decoded fuzz scenario.
type script struct {
	caps []float64 // initial resource capacities
	ops  []scriptOp
}

type scriptOp struct {
	at   float64
	kind byte // 0 blocking transfer, 1 fan-out batch, 2 set capacity, 3 probe

	size   float64 // transfer: total size; fan-out: per-shard size
	res    []int   // transfer: resource indices
	shards [][]int // fan-out: per-shard resource indices
	capRt  float64 // fan-out: window cap rate (0 = none)

	capIdx int     // set capacity: resource index
	capVal float64 // set capacity: new capacity
}

// decodeScript turns fuzz bytes into a bounded, always-valid scenario.
func decodeScript(data []byte) *script {
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return int(b)
	}
	nRes := next()%5 + 1
	s := &script{}
	for i := 0; i < nRes; i++ {
		s.caps = append(s.caps, float64(next()%500+1))
	}
	subset := func() []int {
		mask := next() % (1 << nRes)
		if mask == 0 {
			mask = 1
		}
		var idxs []int
		for i := 0; i < nRes; i++ {
			if mask&(1<<i) != 0 {
				idxs = append(idxs, i)
			}
		}
		return idxs
	}
	nOps := next()%32 + 1
	at := 0.0
	for i := 0; i < nOps; i++ {
		at += float64(next()%64) / 8 // gaps of 0..7.875s; 0 keeps same-time races
		op := scriptOp{at: at, kind: byte(next() % 4)}
		switch op.kind {
		case 0:
			// Sizes reach down to 0.25 bytes — below completionEps — to
			// exercise the instant-completion path on both sides.
			op.size = float64(next()%4000)/4 + 0.25
			op.res = subset()
		case 1:
			op.size = float64(next()%2000)/4 + 0.25
			shards := next()%4 + 1
			for j := 0; j < shards; j++ {
				op.shards = append(op.shards, subset())
			}
			if next()%2 == 0 {
				op.capRt = float64(next()%200 + 1)
			}
		case 2:
			op.capIdx = next() % nRes
			op.capVal = float64(next()%500 + 1)
		}
		s.ops = append(s.ops, op)
	}
	return s
}

// trace is everything a run observes; two runs compare traces bit-exactly.
type trace struct {
	completions []float64 // per transfer/fan-out op, completion time
	probes      []float64 // per probe op, active count then per-resource loads
	end         float64
	totalBytes  float64
	totalCount  int64
}

// flowDriver abstracts the two implementations behind one script runner.
type flowDriver interface {
	transfer(p *sim.Proc, size float64, res []int)
	fanout(p *sim.Proc, size float64, shards [][]int, capRate float64)
	setCapacity(idx int, c float64)
	load(idx int) float64
	activeCount() int
	totals() (float64, int64)
}

type realDriver struct {
	n  *Net
	rs []*Resource
}

func newRealDriver(e *sim.Engine, caps []float64) *realDriver {
	d := &realDriver{n: NewNet(e)}
	for i, c := range caps {
		d.rs = append(d.rs, NewResource(fmt.Sprintf("r%d", i), c))
	}
	return d
}

func (d *realDriver) pick(idxs []int) []*Resource {
	rs := make([]*Resource, len(idxs))
	for i, idx := range idxs {
		rs[i] = d.rs[idx]
	}
	return rs
}

func (d *realDriver) transfer(p *sim.Proc, size float64, res []int) {
	d.n.Transfer(p, size, d.pick(res)...)
}

func (d *realDriver) fanout(p *sim.Proc, size float64, shards [][]int, capRate float64) {
	var cap *Resource
	if capRate > 0 {
		cap = d.n.AcquireCap("win", capRate)
	}
	b := d.n.NewBatch()
	for _, sh := range shards {
		var rs []*Resource
		if cap != nil {
			rs = append(rs, cap)
		}
		rs = append(rs, d.pick(sh)...)
		b.Add(size, rs...)
	}
	b.Run(p)
	if cap != nil {
		d.n.ReleaseCap(cap)
	}
}

func (d *realDriver) setCapacity(idx int, c float64) { d.n.SetResourceCapacity(d.rs[idx], c) }
func (d *realDriver) load(idx int) float64           { return d.rs[idx].Load() }
func (d *realDriver) activeCount() int               { return d.n.Active() }
func (d *realDriver) totals() (float64, int64)       { return d.n.TotalBytes, d.n.TotalTransfers }

type oracleDriver struct {
	n  *oracleNet
	rs []*oracleResource
}

func newOracleDriver(e *sim.Engine, caps []float64) *oracleDriver {
	d := &oracleDriver{n: newOracleNet(e)}
	for i, c := range caps {
		d.rs = append(d.rs, newOracleResource(fmt.Sprintf("r%d", i), c))
	}
	return d
}

func (d *oracleDriver) pick(idxs []int) []*oracleResource {
	rs := make([]*oracleResource, len(idxs))
	for i, idx := range idxs {
		rs[i] = d.rs[idx]
	}
	return rs
}

func (d *oracleDriver) transfer(p *sim.Proc, size float64, res []int) {
	d.n.Transfer(p, size, d.pick(res)...)
}

// fanout reproduces the historical fan-out idiom: one StartTransfer per
// shard (each paying a full reallocation), a private window-cap resource,
// then waiting the shard handles in order.
func (d *oracleDriver) fanout(p *sim.Proc, size float64, shards [][]int, capRate float64) {
	var cap *oracleResource
	if capRate > 0 {
		cap = newOracleResource("win", capRate)
	}
	var pds []*oraclePending
	for _, sh := range shards {
		var rs []*oracleResource
		if cap != nil {
			rs = append(rs, cap)
		}
		rs = append(rs, d.pick(sh)...)
		pds = append(pds, d.n.StartTransfer(size, rs...))
	}
	for _, pd := range pds {
		pd.Wait(p)
	}
}

func (d *oracleDriver) setCapacity(idx int, c float64) { d.n.SetResourceCapacity(d.rs[idx], c) }
func (d *oracleDriver) load(idx int) float64           { return d.rs[idx].Load() }
func (d *oracleDriver) activeCount() int               { return d.n.Active() }
func (d *oracleDriver) totals() (float64, int64)       { return d.n.TotalBytes, d.n.TotalTransfers }

// runScript schedules the whole scenario up front (so both runs assign
// identical event sequence numbers to the script skeleton) and executes
// it to completion.
func runScript(s *script, build func(e *sim.Engine, caps []float64) flowDriver) *trace {
	e := sim.NewEngine()
	d := build(e, s.caps)
	tr := &trace{completions: make([]float64, len(s.ops))}
	for i := range tr.completions {
		tr.completions[i] = -1
	}
	for i, op := range s.ops {
		i, op := i, op
		switch op.kind {
		case 0:
			e.At(op.at, func() {
				e.Go("t", func(p *sim.Proc) {
					d.transfer(p, op.size, op.res)
					tr.completions[i] = p.Now()
				})
			})
		case 1:
			e.At(op.at, func() {
				e.Go("f", func(p *sim.Proc) {
					d.fanout(p, op.size, op.shards, op.capRt)
					tr.completions[i] = p.Now()
				})
			})
		case 2:
			e.At(op.at, func() { d.setCapacity(op.capIdx, op.capVal) })
		case 3:
			e.At(op.at, func() {
				tr.probes = append(tr.probes, float64(d.activeCount()))
				for idx := range s.caps {
					tr.probes = append(tr.probes, d.load(idx))
				}
			})
		}
	}
	e.Run()
	tr.end = e.Now()
	tr.totalBytes, tr.totalCount = d.totals()
	return tr
}

func FuzzReallocate(f *testing.F) {
	f.Add([]byte{3, 10, 200, 50, 8, 0, 0, 1, 3, 0, 1, 2, 7, 100, 4, 2, 0, 40, 0, 3})
	f.Add([]byte{2, 90, 90, 6, 0, 1, 80, 3, 3, 3, 1, 0, 2, 1, 7, 0, 3})
	f.Add([]byte{5, 5, 255, 120, 60, 30, 12, 8, 1, 200, 2, 31, 31, 1, 99, 0, 0, 1, 3, 3, 2, 4, 250})
	f.Add([]byte{1, 1, 4, 0, 0, 1, 0, 0, 1, 0, 0, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := decodeScript(data)
		got := runScript(s, func(e *sim.Engine, caps []float64) flowDriver { return newRealDriver(e, caps) })
		want := runScript(s, func(e *sim.Engine, caps []float64) flowDriver { return newOracleDriver(e, caps) })
		if got.end != want.end {
			t.Fatalf("makespan diverged: incremental %v, oracle %v", got.end, want.end)
		}
		if got.totalBytes != want.totalBytes || got.totalCount != want.totalCount {
			t.Fatalf("totals diverged: incremental (%v, %d), oracle (%v, %d)",
				got.totalBytes, got.totalCount, want.totalBytes, want.totalCount)
		}
		for i := range got.completions {
			if got.completions[i] != want.completions[i] {
				t.Fatalf("op %d completion diverged: incremental %v, oracle %v (script %+v)",
					i, got.completions[i], want.completions[i], s.ops[i])
			}
		}
		if len(got.probes) != len(want.probes) {
			t.Fatalf("probe count diverged: %d vs %d", len(got.probes), len(want.probes))
		}
		for i := range got.probes {
			if got.probes[i] != want.probes[i] {
				t.Fatalf("probe %d diverged: incremental %v, oracle %v", i, got.probes[i], want.probes[i])
			}
		}
	})
}
