package flow

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ec2wfsim/internal/sim"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestSingleTransferExactTime(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("link", 100) // 100 B/s
	var done float64
	e.Go("t", func(p *sim.Proc) {
		n.Transfer(p, 1000, r)
		done = p.Now()
	})
	e.Run()
	approx(t, done, 10, 1e-9, "1000 B over 100 B/s")
}

func TestZeroSizeTransferInstant(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("link", 100)
	var done float64 = -1
	e.Go("t", func(p *sim.Proc) {
		n.Transfer(p, 0, r)
		done = p.Now()
	})
	e.Run()
	if done != 0 {
		t.Errorf("zero-size transfer completed at %g, want 0", done)
	}
}

func TestTwoFlowsShareEqually(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("link", 100)
	var t1, t2 float64
	e.Go("a", func(p *sim.Proc) {
		n.Transfer(p, 1000, r)
		t1 = p.Now()
	})
	e.Go("b", func(p *sim.Proc) {
		n.Transfer(p, 1000, r)
		t2 = p.Now()
	})
	e.Run()
	// Both share 50 B/s throughout: each takes 20s.
	approx(t, t1, 20, 1e-9, "flow a")
	approx(t, t2, 20, 1e-9, "flow b")
}

func TestShortFlowReleasesCapacity(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("link", 100)
	var tShort, tLong float64
	e.Go("long", func(p *sim.Proc) {
		n.Transfer(p, 1500, r)
		tLong = p.Now()
	})
	e.Go("short", func(p *sim.Proc) {
		n.Transfer(p, 500, r)
		tShort = p.Now()
	})
	e.Run()
	// Shared 50/50 until short finishes at t=10 (500B at 50 B/s); long then
	// has 1000B left at 100 B/s: finishes at t=20.
	approx(t, tShort, 10, 1e-9, "short flow")
	approx(t, tLong, 20, 1e-9, "long flow")
}

func TestLateArrivalPreemptsFairShare(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("link", 100)
	var tA, tB float64
	e.Go("a", func(p *sim.Proc) {
		n.Transfer(p, 1000, r) // alone for 5s: 500 done; then shares
		tA = p.Now()
	})
	e.Go("b", func(p *sim.Proc) {
		p.Sleep(5)
		n.Transfer(p, 1000, r)
		tB = p.Now()
	})
	e.Run()
	// t=5: a has 500 left. Share 50/50: a finishes at 5+10=15. b then has
	// 500 left at full rate: 15+5=20.
	approx(t, tA, 15, 1e-9, "flow a")
	approx(t, tB, 20, 1e-9, "flow b")
}

func TestMultiResourceBottleneck(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	fast := NewResource("nic", 1000)
	slow := NewResource("disk", 10)
	var done float64
	e.Go("t", func(p *sim.Proc) {
		n.Transfer(p, 100, fast, slow)
		done = p.Now()
	})
	e.Run()
	approx(t, done, 10, 1e-9, "bottlenecked by slow resource")
}

func TestWaterFillingUnevenDemands(t *testing.T) {
	// Two flows cross a shared backbone of 100; flow A additionally
	// crosses a private link of 30. Max-min: A gets 30, B gets 70.
	e := sim.NewEngine()
	n := NewNet(e)
	backbone := NewResource("backbone", 100)
	private := NewResource("private", 30)
	var tA, tB float64
	e.Go("a", func(p *sim.Proc) {
		n.Transfer(p, 300, backbone, private)
		tA = p.Now()
	})
	e.Go("b", func(p *sim.Proc) {
		n.Transfer(p, 700, backbone)
		tB = p.Now()
	})
	e.Run()
	// A: 300/30 = 10s. B: 700/70 = 10s. Both end exactly at 10.
	approx(t, tA, 10, 1e-9, "capped flow")
	approx(t, tB, 10, 1e-9, "wide flow")
}

func TestTransferCapped(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("nic", 1000)
	var done float64
	e.Go("t", func(p *sim.Proc) {
		n.TransferCapped(p, 100, 10, r)
		done = p.Now()
	})
	e.Run()
	approx(t, done, 10, 1e-9, "per-flow cap honored")
}

func TestDuplicateResourceNotDoubleCounted(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("link", 100)
	var done float64
	e.Go("t", func(p *sim.Proc) {
		n.Transfer(p, 1000, r, r) // same resource listed twice
		done = p.Now()
	})
	e.Run()
	approx(t, done, 10, 1e-9, "dedup keeps full rate")
}

func TestSetResourceCapacityMidFlight(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("disk", 10) // first-write rate
	var done float64
	e.Go("t", func(p *sim.Proc) {
		n.Transfer(p, 200, r)
		done = p.Now()
	})
	e.At(10, func() { n.SetResourceCapacity(r, 30) }) // disk "initialized"
	e.Run()
	// 100 B in the first 10 s, remaining 100 B at 30 B/s = 3.33s more.
	approx(t, done, 10+100.0/30, 1e-9, "capacity change mid-flight")
}

func TestNClientsOneServerScalesLinearly(t *testing.T) {
	// The core contention effect behind the paper's NFS results: n clients
	// each pulling S bytes through one server NIC take n*S/C total.
	for _, clients := range []int{1, 2, 4, 8} {
		e := sim.NewEngine()
		n := NewNet(e)
		server := NewResource("server-nic", 100)
		var last float64
		for i := 0; i < clients; i++ {
			nic := NewResource("client-nic", 1000)
			e.Go("c", func(p *sim.Proc) {
				n.Transfer(p, 1000, server, nic)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		e.Run()
		want := float64(clients) * 10
		approx(t, last, want, 1e-6, "server-bound makespan")
	}
}

func TestStatsAccumulate(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("link", 100)
	for i := 0; i < 3; i++ {
		e.Go("t", func(p *sim.Proc) { n.Transfer(p, 50, r) })
	}
	e.Run()
	if n.TotalTransfers != 3 {
		t.Errorf("TotalTransfers = %d, want 3", n.TotalTransfers)
	}
	approx(t, n.TotalBytes, 150, 1e-9, "TotalBytes")
	if n.Active() != 0 {
		t.Errorf("Active() = %d, want 0 after drain", n.Active())
	}
}

// Regression: after the last transfer completes, every resource it
// crossed must report zero load (the drain path used to run an empty
// reallocation that never touched the stale allocations).
func TestDrainedNetworkLoadZero(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r1 := NewResource("link1", 100)
	r2 := NewResource("link2", 200)
	e.Go("t", func(p *sim.Proc) { n.Transfer(p, 1000, r1, r2) })
	e.Run()
	if n.Active() != 0 {
		t.Fatalf("Active() = %d after drain", n.Active())
	}
	for _, r := range []*Resource{r1, r2} {
		if r.Load() != 0 {
			t.Errorf("%s: Load() = %g on drained network, want 0", r.Name(), r.Load())
		}
		if r.Utilization() != 0 {
			t.Errorf("%s: Utilization() = %g on drained network, want 0", r.Name(), r.Utilization())
		}
	}
}

// Regression: a resource whose flows all finish while OTHER transfers
// stay active must also drop to zero load — reallocate only visits the
// surviving flows' resources, so the completion path has to clear it.
func TestPartiallyDrainedResourceLoadZero(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	shortRes := NewResource("short-link", 100)
	longRes := NewResource("long-link", 100)
	var loadAtCheck float64 = -1
	e.Go("short", func(p *sim.Proc) { n.Transfer(p, 500, shortRes) }) // done at t=5
	e.Go("long", func(p *sim.Proc) { n.Transfer(p, 2000, longRes) })  // done at t=20
	e.At(10, func() { loadAtCheck = shortRes.Load() })
	e.Run()
	if loadAtCheck != 0 {
		t.Errorf("short-link Load() = %g while long transfer still active, want 0", loadAtCheck)
	}
}

// Regression: shrinking the capacity of an idle resource must not leave
// Utilization() above 1 (stale load with fresh capacity).
func TestSetResourceCapacityIdleResource(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("disk", 100)
	e.Go("t", func(p *sim.Proc) { n.Transfer(p, 1000, r) }) // drains at t=10
	e.At(15, func() { n.SetResourceCapacity(r, 5) })
	e.Run()
	if r.Load() != 0 {
		t.Errorf("idle resource Load() = %g after capacity change, want 0", r.Load())
	}
	if u := r.Utilization(); u != 0 {
		t.Errorf("idle resource Utilization() = %g after capacity shrink, want 0", u)
	}
}

func TestTransferCappedNonPositiveRatePanics(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("nic", 1000)
	e.Go("t", func(p *sim.Proc) {
		defer func() {
			v := recover()
			if v == nil {
				t.Error("expected panic for non-positive max rate")
				return
			}
			msg := fmt.Sprint(v)
			if !strings.Contains(msg, "TransferCapped") || !strings.Contains(msg, "-3") {
				t.Errorf("panic %q does not name the caller's rate", msg)
			}
		}()
		n.TransferCapped(p, 100, -3, r)
	})
	func() {
		// The sim engine re-panics process panics from Run; swallow the
		// wrapped copy, the assertion above already ran.
		defer func() { recover() }()
		e.Run()
	}()
}

func TestZeroCapacityResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-capacity resource")
		}
	}()
	NewResource("bad", 0)
}

// Property: work conservation — with F identical flows over one resource of
// capacity C, total bytes B each, the makespan is exactly F*B/C and no flow
// finishes before B*F/C (they all share equally the whole time).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(nf uint8, sz uint16, c uint16) bool {
		flows := int(nf%8) + 1
		size := float64(sz%1000) + 1
		capacity := float64(c%500) + 1
		e := sim.NewEngine()
		n := NewNet(e)
		r := NewResource("link", capacity)
		ok := true
		for i := 0; i < flows; i++ {
			e.Go("t", func(p *sim.Proc) {
				n.Transfer(p, size, r)
				want := float64(flows) * size / capacity
				if math.Abs(p.Now()-want) > 1e-6*want+1e-9 {
					ok = false
				}
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: makespan is never shorter than the most loaded resource's
// total demand divided by its capacity (a lower bound that max-min
// fairness must respect), and never longer than the sum of serialized
// transfers.
func TestPropertyMakespanBounds(t *testing.T) {
	f := func(sizes []uint16, pick []uint8) bool {
		if len(sizes) == 0 || len(pick) < len(sizes) {
			return true
		}
		nFlows := len(sizes)
		if nFlows > 20 {
			nFlows = 20
		}
		e := sim.NewEngine()
		n := NewNet(e)
		res := []*Resource{
			NewResource("r0", 50),
			NewResource("r1", 80),
			NewResource("r2", 120),
		}
		demand := make([]float64, len(res))
		serial := 0.0
		for i := 0; i < nFlows; i++ {
			size := float64(sizes[i]%2000) + 1
			r := res[int(pick[i])%len(res)]
			for j, rr := range res {
				if rr == r {
					demand[j] += size
				}
			}
			serial += size / r.Capacity()
			e.Go("t", func(p *sim.Proc) { n.Transfer(p, size, r) })
		}
		e.Run()
		lower := 0.0
		for j, d := range demand {
			if lb := d / res[j].Capacity(); lb > lower {
				lower = lb
			}
		}
		makespan := e.Now()
		// Each transfer may finish up to completionEps (0.5 bytes) early;
		// with tiny flows over slow resources that slack is visible, so
		// relax the lower bound by the aggregate epsilon.
		epsSlack := float64(nFlows) * 0.5 / res[0].Capacity()
		return makespan >= lower-epsSlack-1e-6 && makespan <= serial+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// A batched fan-out must behave exactly like starting each shard
// separately: two shards over separate disks, both limited by a shared
// window cap.
func TestBatchFanOutSharesWindowCap(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	d0 := NewResource("d0", 1000)
	d1 := NewResource("d1", 1000)
	var done float64
	e.Go("striper", func(p *sim.Proc) {
		win := n.AcquireCap("win", 50)
		b := n.NewBatch()
		b.Add(500, win, d0)
		b.Add(500, win, d1)
		b.Run(p)
		n.ReleaseCap(win)
		done = p.Now()
	})
	e.Run()
	// The 50 B/s window is the bottleneck: each shard gets 25 B/s,
	// 500 B each -> 20 s.
	approx(t, done, 20, 1e-9, "window-capped fan-out")
	if n.TotalTransfers != 2 || n.TotalBytes != 1000 {
		t.Errorf("stats = (%d, %g), want (2, 1000)", n.TotalTransfers, n.TotalBytes)
	}
}

// An empty batch (or one whose shards are all zero-size) completes
// instantly.
func TestBatchEmptyInstant(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("link", 100)
	var done float64 = -1
	e.Go("t", func(p *sim.Proc) {
		b := n.NewBatch()
		b.Add(0, r)
		b.Run(p)
		done = p.Now()
	})
	e.Run()
	if done != 0 {
		t.Errorf("empty batch completed at %g, want 0", done)
	}
}

// Boundary validation: negative sizes and empty resource lists are
// rejected with a typed *ArgumentError naming the call and argument.
func TestTransferArgumentErrors(t *testing.T) {
	cases := []struct {
		name     string
		call     func(n *Net, p *sim.Proc, r *Resource)
		wantCall string
		wantArg  string
	}{
		{"negative size", func(n *Net, p *sim.Proc, r *Resource) { n.Transfer(p, -5, r) }, "Transfer", "size"},
		{"no resources", func(n *Net, p *sim.Proc, r *Resource) { n.Transfer(p, 10) }, "Transfer", "resources"},
		{"nil resource", func(n *Net, p *sim.Proc, r *Resource) { n.Transfer(p, 10, nil) }, "Transfer", "resources"},
		{"start negative", func(n *Net, p *sim.Proc, r *Resource) { n.StartTransfer(-1, r) }, "StartTransfer", "size"},
		{"start no resources", func(n *Net, p *sim.Proc, r *Resource) { n.StartTransfer(10) }, "StartTransfer", "resources"},
		{"batch negative", func(n *Net, p *sim.Proc, r *Resource) { n.NewBatch().Add(-2, r) }, "Batch.Add", "size"},
		{"capped negative size", func(n *Net, p *sim.Proc, r *Resource) { n.TransferCapped(p, -1, 10, r) }, "TransferCapped", "size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := sim.NewEngine()
			n := NewNet(e)
			r := NewResource("link", 100)
			e.Go("t", func(p *sim.Proc) {
				defer func() {
					ae, ok := recover().(*ArgumentError)
					if !ok {
						t.Errorf("want *ArgumentError panic, got %v", ae)
						return
					}
					if ae.Call != tc.wantCall || ae.Arg != tc.wantArg {
						t.Errorf("got (%q, %q), want (%q, %q)", ae.Call, ae.Arg, tc.wantCall, tc.wantArg)
					}
				}()
				tc.call(n, p, r)
			})
			func() {
				defer func() { recover() }() // swallow the engine's re-panic
				e.Run()
			}()
		})
	}
}

// Zero-size transfers remain a documented no-op (an empty file staged
// through a storage backend), not an error.
func TestZeroSizeNoResourcesStillInstant(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	var done float64 = -1
	e.Go("t", func(p *sim.Proc) {
		n.Transfer(p, 0)
		done = p.Now()
	})
	e.Run()
	if done != 0 {
		t.Errorf("zero-size transfer completed at %g, want 0", done)
	}
}

// AcquireCap recycles released cap resources instead of allocating.
func TestAcquireCapRecycles(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	r := NewResource("link", 100)
	e.Go("t", func(p *sim.Proc) {
		c1 := n.AcquireCap("conn", 10)
		n.Transfer(p, 100, c1, r)
		n.ReleaseCap(c1)
		c2 := n.AcquireCap("conn2", 20)
		if c2 != c1 {
			t.Error("released cap was not recycled")
		}
		if c2.Capacity() != 20 || c2.Name() != "conn2" {
			t.Errorf("recycled cap = (%q, %g), want (conn2, 20)", c2.Name(), c2.Capacity())
		}
		if c2.Load() != 0 {
			t.Errorf("recycled cap load = %g, want 0", c2.Load())
		}
		n.ReleaseCap(c2)
	})
	e.Run()
}

// Incremental rail: an event in one component must not disturb the rates
// of transfers in a disjoint component (their completion times stay
// exact), and a capacity change re-solves only its component.
func TestDisjointComponentsSolveIndependently(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	a := NewResource("a", 100)
	b := NewResource("b", 50)
	var tA, tB float64
	e.Go("a", func(p *sim.Proc) {
		n.Transfer(p, 1000, a)
		tA = p.Now()
	})
	e.Go("b", func(p *sim.Proc) {
		p.Sleep(2)
		n.Transfer(p, 500, b) // starts mid-flight of a, disjoint component
		tB = p.Now()
	})
	e.At(4, func() { n.SetResourceCapacity(b, 100) })
	e.Run()
	approx(t, tA, 10, 1e-9, "component a undisturbed")
	// b: 2s idle, 2s at 50 B/s (100 B), then 400 B at 100 B/s -> t=8.
	approx(t, tB, 8, 1e-9, "component b re-solved on capacity change")
}

// ReleaseCap misuse fails loudly rather than corrupting the cap pool.
func TestReleaseCapMisusePanics(t *testing.T) {
	e := sim.NewEngine()
	n := NewNet(e)
	shared := NewResource("nic", 100)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("foreign resource", func() { n.ReleaseCap(shared) })
	c := n.AcquireCap("conn", 10)
	n.ReleaseCap(c)
	mustPanic("double release", func() { n.ReleaseCap(c) })
}
