package flow

import (
	"fmt"

	"ec2wfsim/internal/sim"
)

// This file preserves the pre-refactor from-scratch water-filling solver
// as a self-contained oracle: a Net that recomputes the max-min fair rate
// of every active transfer on every event (transfer start, finish,
// capacity change), exactly as the shipping implementation did before the
// incremental dirty-set solver replaced it. The differential fuzzer
// (FuzzReallocate) and BenchmarkReallocate drive identical event
// sequences through this oracle and the real Net and require bit-equal
// timestamps and loads.
//
// The code is the historical implementation verbatim apart from renames
// (oracle* prefixes) and the removal of the stats the comparison does not
// need. Do not "improve" it: its value is that it stays the old
// arithmetic.

type oracleResource struct {
	name     string
	capacity float64

	// scratch state used during reallocation
	epoch    int64
	residual float64
	count    int
	flows    []*oracleTransfer

	load float64
}

func newOracleResource(name string, capacity float64) *oracleResource {
	if capacity <= 0 {
		panic(fmt.Sprintf("oracle: resource %q with non-positive capacity %g", name, capacity))
	}
	return &oracleResource{name: name, capacity: capacity}
}

func (r *oracleResource) Load() float64 { return r.load }

type oracleTransfer struct {
	pending   *oraclePending
	remaining float64
	rate      float64
	resources []*oracleResource
	fixed     bool
	id        int64
}

type oraclePending struct {
	done    bool
	waiters []*sim.Proc
}

func (pd *oraclePending) Wait(p *sim.Proc) {
	if pd.done {
		return
	}
	pd.waiters = append(pd.waiters, p)
	p.Suspend()
}

func (pd *oraclePending) complete() {
	pd.done = true
	for _, p := range pd.waiters {
		p.Resume()
	}
	pd.waiters = nil
}

type oracleNet struct {
	e          *sim.Engine
	active     []*oracleTransfer
	timer      *sim.Timer
	lastUpdate float64
	epoch      int64
	nextID     int64

	scratchRes []*oracleResource

	TotalBytes     float64
	TotalTransfers int64
}

func newOracleNet(e *sim.Engine) *oracleNet {
	return &oracleNet{e: e}
}

func (n *oracleNet) Active() int { return len(n.active) }

func (n *oracleNet) SetResourceCapacity(r *oracleResource, capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("oracle: setting non-positive capacity %g on %q", capacity, r.name))
	}
	n.advance()
	r.capacity = capacity
	if !n.uses(r) {
		r.load = 0
	}
	n.reallocate()
	n.scheduleNext()
}

func (n *oracleNet) uses(r *oracleResource) bool {
	for _, t := range n.active {
		for _, tr := range t.resources {
			if tr == r {
				return true
			}
		}
	}
	return false
}

func (n *oracleNet) Transfer(p *sim.Proc, size float64, resources ...*oracleResource) {
	if size <= 0 {
		return
	}
	n.StartTransfer(size, resources...).Wait(p)
}

func (n *oracleNet) StartTransfer(size float64, resources ...*oracleResource) *oraclePending {
	pd := &oraclePending{}
	if size <= 0 {
		pd.done = true
		return pd
	}
	if len(resources) == 0 {
		panic("oracle: transfer with no resources")
	}
	uniq := resources[:0:0]
	for _, r := range resources {
		if r == nil {
			panic("oracle: nil resource in transfer")
		}
		seen := false
		for _, u := range uniq {
			if u == r {
				seen = true
				break
			}
		}
		if !seen {
			uniq = append(uniq, r)
		}
	}
	n.nextID++
	t := &oracleTransfer{pending: pd, remaining: size, resources: uniq, id: n.nextID}
	n.TotalBytes += size
	n.TotalTransfers++

	n.advance()
	n.active = append(n.active, t)
	n.reallocate()
	n.scheduleNext()
	return pd
}

func (n *oracleNet) advance() {
	now := n.e.Now()
	dt := now - n.lastUpdate
	n.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, t := range n.active {
		t.remaining -= t.rate * dt
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
}

func (n *oracleNet) reallocate() {
	n.epoch++
	resources := n.scratchRes[:0]
	for _, t := range n.active {
		t.fixed = false
		t.rate = 0
		for _, r := range t.resources {
			if r.epoch != n.epoch {
				r.epoch = n.epoch
				r.residual = r.capacity
				r.count = 0
				r.load = 0
				r.flows = r.flows[:0]
				resources = append(resources, r)
			}
			r.count++
			r.flows = append(r.flows, t)
		}
	}
	unfixed := len(n.active)
	for unfixed > 0 {
		var bottleneck *oracleResource
		bestShare := 0.0
		liveRes := resources[:0]
		for _, r := range resources {
			if r.count <= 0 {
				continue
			}
			liveRes = append(liveRes, r)
			share := r.residual / float64(r.count)
			if bottleneck == nil || share < bestShare {
				bottleneck = r
				bestShare = share
			}
		}
		resources = liveRes
		if bottleneck == nil {
			panic("oracle: unfixed transfers with no remaining resources")
		}
		if bestShare < 0 {
			bestShare = 0
		}
		for _, t := range bottleneck.flows {
			if t.fixed {
				continue
			}
			t.rate = bestShare
			t.fixed = true
			unfixed--
			for _, r := range t.resources {
				r.residual -= bestShare
				if r.residual < 0 {
					r.residual = 0
				}
				r.count--
				r.load += bestShare
			}
		}
	}
	n.scratchRes = resources[:0]
}

func (n *oracleNet) scheduleNext() {
	if n.timer != nil {
		n.timer.Stop()
		n.timer = nil
	}
	if len(n.active) == 0 {
		return
	}
	next := -1.0
	for _, t := range n.active {
		if t.remaining <= completionEps {
			next = 0
			break
		}
		if t.rate <= 0 {
			continue
		}
		eta := t.remaining / t.rate
		if next < 0 || eta < next {
			next = eta
		}
	}
	if next < 0 {
		panic("oracle: all active transfers starved")
	}
	n.timer = n.e.After(next, n.onTimer)
}

func (n *oracleNet) onTimer() {
	n.timer = nil
	n.advance()
	remaining := n.active[:0]
	var done []*oracleTransfer
	for _, t := range n.active {
		if t.remaining <= completionEps {
			done = append(done, t)
		} else {
			remaining = append(remaining, t)
		}
	}
	n.active = remaining
	for _, t := range done {
		for _, r := range t.resources {
			r.load = 0
		}
	}
	for _, t := range done {
		t.pending.complete()
	}
	if len(n.active) > 0 {
		n.reallocate()
		n.scheduleNext()
	}
}
