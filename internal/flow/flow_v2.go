package flow

import "ec2wfsim/internal/sim"

// Solver v2 — the opt-in fast mode behind NewNetVersion(e, 2).
//
// v2 keeps the same max-min fair model as v1 but changes the event
// mechanics in three ways, each of which perturbs tie-break and float
// accumulation order (which is why it is a versioned mode rather than a
// drop-in replacement; see README "Solver versions" for the contract):
//
//   - Deferred, coalesced reallocation. Events (start, batch, capacity
//     change, completion drain) only mark resources dirty and arm a
//     zero-delay flush timer; all events landing on one simulated
//     timestamp are solved once, instead of paying one component solve
//     per event. Probes that need committed state call Sync first.
//
//   - Lazy advance. Each transfer carries its own integration timestamp
//     (transfer.last); progress is integrated only when the transfer is
//     rediscovered by a component solve or checked for completion, so an
//     event never walks active transfers outside its own component.
//
//   - Heaps instead of scans. Progressive filling pops the bottleneck
//     resource from a lazy min-heap keyed by residual/count rather than
//     rescanning every component resource per round, and the next
//     completion comes from an indexed min-heap of per-transfer ETAs
//     (transfer.etaPos) rather than a scan of the whole active set.
//
// The ETA heap exploits that a transfer's completion instant is
// invariant under solves that leave its rate untouched: progress is
// linear, so now + remaining/rate is the same instant the previous
// solve computed (the arithmetic is bit-identical inputs → bit-identical
// shares, so the comparison is exact, not a tolerance). After a
// component solve only the flows whose rate actually changed re-key
// their heap entry — on the symmetric striped shapes that dominate the
// benchmarks, that is a handful out of hundreds.
//
// The bottleneck heap is lazy in the standard sense: during progressive
// filling a resource's fair share residual/count only rises as flows are
// fixed (fixing at share s <= residual/count implies the new share
// (residual-s)/(count-1) >= residual/count), so a stale heap entry is
// always stale-low. Popping the minimum entry and recomputing its
// current share is therefore sound: if the share rose, requeue it; if
// it is unchanged, every other entry's current share is at least its
// stored key — so this resource is a true bottleneck and its unfixed
// members are fixed at that share.
type etaEntry struct {
	at float64
	t  *transfer
}

type bnEntry struct {
	share float64
	r     *Resource
}

// NewNetVersion returns a transfer network running the requested solver
// version. Version 0 and 1 both select v1, the default bit-identical
// incremental solver; version 2 selects the coalescing heap solver.
// Any other version panics with *ArgumentError.
func NewNetVersion(e *sim.Engine, version int) *Net {
	switch version {
	case 0, 1:
		return NewNet(e)
	case 2:
		n := &Net{e: e, version: 2}
		n.timer = e.NewReTimer(n.onTimerV2)
		n.flushTimer = e.NewReTimer(n.onFlush)
		// Seed the hot-path slices with room for a mid-sized component.
		// Growing them organically costs a log-series of allocations per
		// Net, and on short-lived networks (one per swept cell) that
		// regrowth dominates the allocation profile.
		n.active = make([]*transfer, 0, 64)
		n.etaHeap = make([]etaEntry, 0, 64)
		n.freeTransfers = make([]*transfer, 0, 64)
		n.doneScratch = make([]*transfer, 0, 32)
		n.sol.dirty = make([]*Resource, 0, 64)
		n.sol.queue = make([]*Resource, 0, 64)
		n.sol.flows = make([]*transfer, 0, 64)
		n.sol.bn = make([]bnEntry, 0, 64)
		return n
	}
	panic(badArg("NewNetVersion", "version", "unknown flow solver version %d", version))
}

// Version reports which solver version this network runs (1 or 2).
func (n *Net) Version() int { return n.version }

// Sync forces any reallocation deferred by v2's same-timestamp
// coalescing to run now, so that Load and Utilization report the rates
// in effect at the current simulated time. It is a no-op on v1 (which
// solves eagerly) and when nothing is pending.
func (n *Net) Sync() {
	if n.version < 2 || !n.flushArmed {
		return
	}
	n.flushTimer.Stop()
	n.flushArmed = false
	n.flushV2()
}

// requestFlush arms the zero-delay flush timer (once per timestamp).
// Every v2 mutation path marks resources dirty and calls this, so a
// pending dirty set always implies an armed flush.
func (n *Net) requestFlush() {
	if !n.flushArmed {
		n.flushArmed = true
		n.flushTimer.Arm(0)
	}
}

func (n *Net) onFlush() {
	n.flushArmed = false
	n.flushV2()
}

// flushV2 re-solves the component(s) reachable from the dirty set and
// re-keys the completion ETA of every flow whose rate changed.
func (n *Net) flushV2() {
	now := n.e.Now()
	for _, t := range n.sol.solveV2(now, n.active) {
		if t.rate == t.prevRate && t.etaPos >= 0 {
			// Same rate, linear progress: the completion instant this
			// entry already holds is still exact.
			continue
		}
		n.rescheduleETA(t, now)
	}
	n.armNextV2()
}

// rescheduleETA places t's single heap entry at its completion instant:
// due now if within completionEps of done, at the rate-projected instant
// otherwise, and absent while starved (a starved flow gets a new ETA
// when a later event re-solves its component).
func (n *Net) rescheduleETA(t *transfer, now float64) {
	switch {
	case t.remaining <= completionEps:
		n.etaSet(t, now)
	case t.rate > 0:
		n.etaSet(t, now+t.remaining/t.rate)
	default:
		n.etaRemove(t)
	}
}

// armNextV2 arms the completion timer for the earliest ETA, skipping the
// engine round-trip when a pending timer already points at that instant.
// With active transfers, no ETA and no pending flush, every transfer is
// starved — the same overcommitment condition v1 panics on.
func (n *Net) armNextV2() {
	if len(n.etaHeap) == 0 {
		if n.timerArmed {
			n.timerArmed = false
			n.timer.Stop()
		}
		if len(n.active) > 0 && !n.flushArmed {
			panic("flow: all active transfers starved")
		}
		return
	}
	at := n.etaHeap[0].at
	if n.timerArmed && n.timerAt == at {
		return
	}
	n.timer.Stop()
	d := at - n.e.Now()
	if d < 0 {
		d = 0
	}
	n.timerArmed = true
	n.timerAt = at
	n.timer.Arm(d)
}

// onTimerV2 drains every ETA due at the current time: completed
// transfers leave the graph and resolve their handles, near-misses (the
// entry was placed under a since-lowered remaining estimate) re-key to
// their true instant. Departures dirty their resources, so a flush
// follows at this same timestamp — coalesced with whatever the resumed
// waiters start next.
func (n *Net) onTimerV2() {
	n.timerArmed = false // it just fired
	now := n.e.Now()
	done := n.doneScratch[:0]
	for len(n.etaHeap) > 0 && n.etaHeap[0].at <= now {
		t := n.etaHeap[0].t
		n.integrate(t, now)
		switch {
		case t.remaining <= completionEps:
			n.etaRemove(t)
			n.detachV2(t)
			n.removeActive(t)
			done = append(done, t)
		case t.rate > 0:
			n.etaSet(t, now+t.remaining/t.rate)
		default:
			n.etaRemove(t)
		}
	}
	for _, t := range done {
		t.pending.complete()
	}
	if len(n.sol.dirty) > 0 {
		n.requestFlush()
	}
	n.armNextV2()
	for _, t := range done {
		n.recycleTransfer(t)
	}
	n.doneScratch = done[:0]
}

// integrate applies t's current rate over the window since its last
// integration. Rates are piecewise constant between solves of t's
// component, so integrating lazily at the next touch is exact.
func (n *Net) integrate(t *transfer, now float64) {
	if dt := now - t.last; dt > 0 {
		t.remaining -= t.rate * dt
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
	t.last = now
}

// detachV2 removes a completed transfer from its resources' membership
// lists. Unlike v1's detach it swap-removes: v2 collects component flows
// in BFS discovery order, so member order carries no meaning.
func (n *Net) detachV2(t *transfer) {
	for _, r := range t.resources {
		ms := r.members
		for i, m := range ms {
			if m == t {
				last := len(ms) - 1
				ms[i] = ms[last]
				ms[last] = nil
				r.members = ms[:last]
				break
			}
		}
		r.load = 0
		n.sol.markDirty(r)
	}
}

// removeActive swap-removes t from the active list via its stored index.
func (n *Net) removeActive(t *transfer) {
	i := t.activeIdx
	last := len(n.active) - 1
	n.active[i] = n.active[last]
	n.active[i].activeIdx = i
	n.active[last] = nil
	n.active = n.active[:last]
}

// Indexed ETA min-heap (keyed by at): at most one entry per transfer,
// whose position lives on the record (transfer.etaPos, -1 when absent),
// so a rate change re-keys in place instead of abandoning stale entries.
// Hand-rolled to keep the hot path free of interface boxing.

// etaSet inserts or re-keys t's entry at time at.
func (n *Net) etaSet(t *transfer, at float64) {
	if t.etaPos < 0 {
		t.etaPos = len(n.etaHeap)
		n.etaHeap = append(n.etaHeap, etaEntry{at: at, t: t})
		n.etaUp(t.etaPos)
		return
	}
	n.etaHeap[t.etaPos].at = at
	n.etaDown(n.etaUp(t.etaPos))
}

// etaRemove deletes t's entry, if any.
func (n *Net) etaRemove(t *transfer) {
	i := t.etaPos
	if i < 0 {
		return
	}
	t.etaPos = -1
	h := n.etaHeap
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		h[i].t.etaPos = i
	}
	h[last] = etaEntry{}
	n.etaHeap = h[:last]
	if i != last {
		n.etaDown(n.etaUp(i))
	}
}

// etaUp sifts the entry at i toward the root, returning its final index.
func (n *Net) etaUp(i int) int {
	h := n.etaHeap
	for i > 0 {
		p := (i - 1) / 2
		if h[p].at <= h[i].at {
			break
		}
		h[p], h[i] = h[i], h[p]
		h[p].t.etaPos = p
		h[i].t.etaPos = i
		i = p
	}
	return i
}

// etaDown sifts the entry at i toward the leaves.
func (n *Net) etaDown(i int) {
	h := n.etaHeap
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r].at < h[l].at {
			m = r
		}
		if h[i].at <= h[m].at {
			return
		}
		h[i], h[m] = h[m], h[i]
		h[i].t.etaPos = i
		h[m].t.etaPos = m
		i = m
	}
}

// Bottleneck min-heap (keyed by share), lazy: a resource may appear
// more than once, with stale-low keys resolved at pop time.

func bnPush(h []bnEntry, e bnEntry) []bnEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].share <= h[i].share {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func bnPop(h []bnEntry) []bnEntry {
	last := len(h) - 1
	h[0] = h[last]
	h[last] = bnEntry{}
	h = h[:last]
	bnDown(h, 0)
	return h
}

func bnDown(h []bnEntry, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r].share < h[l].share {
			m = r
		}
		if h[i].share <= h[m].share {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// solveV2 is the v2 component solve, followed by heap-driven
// progressive filling. Flows are collected in a single pass that
// discovers, integrates and resets the affected subgraph (v1 spends
// three passes and a scan of the full active list): a sparse dirty set
// is chased by BFS over member lists, while a dense one — the usual
// case when a striped fan-out completes and its successor starts in the
// same instant — takes one contiguous sweep of the active list instead.
// Sweeping flows whose component is actually clean is harmless:
// progressive filling never mixes arithmetic across components (every
// share derives from a resource's own residual and count), so clean
// components re-solve to their previous rates bit-for-bit and the ETA
// re-key skip drops them untouched. It returns the affected flows so
// the caller can re-key their ETAs; the slice is solver scratch, valid
// only until the next solve.
func (s *solver) solveV2(now float64, active []*transfer) []*transfer {
	if len(s.dirty) == 0 {
		return nil
	}
	s.epoch++
	ep := s.epoch
	queue := s.queue[:0]
	flows := s.flows[:0]
	h := s.bn[:0]
	// Reset every dirty resource. The unfixed count starts at the full
	// membership — members holds exactly the active transfers crossing
	// the resource, all of them in the affected subgraph by definition —
	// so incidences need not be counted during the walk, and the fill
	// key residual/count is already final here: resources join the
	// bottleneck heap at discovery.
	m := 0
	for _, r := range s.dirty {
		r.dirty = false
		if r.visit != ep {
			r.visit = ep
			r.residual = r.capacity
			r.count = len(r.members)
			r.load = 0
			m += r.count
			queue = append(queue, r)
			if r.count > 0 {
				h = append(h, bnEntry{share: r.residual / float64(r.count), r: r})
			}
		}
	}
	s.dirty = s.dirty[:0]
	if m >= len(active) {
		// Dense sweep. No visit-marking of transfers: the active list
		// holds each exactly once.
		for _, t := range active {
			// Integrate under the outgoing rate before it is replaced.
			if dt := now - t.last; dt > 0 {
				t.remaining -= t.rate * dt
				if t.remaining < 0 {
					t.remaining = 0
				}
			}
			t.last = now
			t.fixed = false
			t.prevRate = t.rate
			flows = append(flows, t)
			for _, r := range t.resources {
				if r.visit != ep {
					r.visit = ep
					r.residual = r.capacity
					r.count = len(r.members)
					r.load = 0
					h = append(h, bnEntry{share: r.residual / float64(r.count), r: r})
				}
			}
		}
	} else {
		for i := 0; i < len(queue); i++ {
			for _, t := range queue[i].members {
				if t.visit == ep {
					continue
				}
				t.visit = ep
				// Integrate under the outgoing rate before it is replaced.
				if dt := now - t.last; dt > 0 {
					t.remaining -= t.rate * dt
					if t.remaining < 0 {
						t.remaining = 0
					}
				}
				t.last = now
				t.fixed = false
				t.prevRate = t.rate
				flows = append(flows, t)
				for _, r := range t.resources {
					if r.visit != ep {
						r.visit = ep
						r.residual = r.capacity
						r.count = len(r.members)
						r.load = 0
						queue = append(queue, r)
						h = append(h, bnEntry{share: r.residual / float64(r.count), r: r})
					}
				}
			}
		}
	}
	unfixed := len(flows)
	if unfixed == 1 && len(h) > 0 {
		// Low-fan-out gate: a single-flow component — an isolated write,
		// a staggered first arrival — needs no bottleneck heap. The heap
		// would heapify every entry, pop the minimum and fix the flow at
		// cur = residual/count recomputed from untouched values, i.e. at
		// exactly the minimum share key; a direct min scan performs the
		// same division on the same operands, so the rate is bit-identical
		// (on ties the popped entry could differ, the share value cannot).
		t := flows[0]
		cur := h[0].share
		for _, e := range h[1:] {
			if e.share < cur {
				cur = e.share
			}
		}
		if cur < 0 {
			cur = 0
		}
		t.rate = cur
		t.fixed = true
		for _, rr := range t.resources {
			rr.residual -= cur
			if rr.residual < 0 {
				rr.residual = 0
			}
			rr.count--
			rr.load += cur
		}
		s.bn = h[:0]
		s.queue = queue[:0]
		s.flows = flows
		return flows
	}
	// Entries were appended unordered; Floyd-heapify bottom-up in O(n).
	for i := len(h)/2 - 1; i >= 0; i-- {
		bnDown(h, i)
	}
	for unfixed > 0 {
		if len(h) == 0 {
			panic("flow: unfixed transfers with no remaining resources")
		}
		e := h[0]
		h = bnPop(h)
		r := e.r
		if r.count <= 0 {
			continue
		}
		cur := r.residual / float64(r.count)
		if cur > e.share {
			// Stale-low entry: shares only rise as flows are fixed.
			h = bnPush(h, bnEntry{share: cur, r: r})
			continue
		}
		if cur < 0 {
			cur = 0
		}
		for _, t := range r.members {
			if t.fixed {
				continue
			}
			t.rate = cur
			t.fixed = true
			unfixed--
			for _, rr := range t.resources {
				rr.residual -= cur
				if rr.residual < 0 {
					rr.residual = 0
				}
				rr.count--
				rr.load += cur
			}
		}
	}
	s.bn = h[:0]
	s.queue = queue[:0]
	s.flows = flows
	return flows
}
