package flow

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"ec2wfsim/internal/sim"
)

// BenchmarkReallocate measures the incremental solver against the
// preserved from-scratch oracle on the two transfer-graph shapes that
// dominate the paper's experiments:
//
//   - pvfs: every logical read fans out over all servers' disks and NICs
//     under a shared client window — one densely connected component,
//     where the win comes from batching the fan-out (one solve per read
//     instead of one per shard) and from the pooled records.
//   - montage: many clients hammering one NFS server interleaved with
//     node-local disk I/O — the local transfers form singleton components
//     the dirty-set solver re-solves without touching the server clique.
//
// TestEmitFlowBench (-flowbench-out) records the comparison in
// BENCH_flow.json so the performance trajectory has data points.

// pvfsShape runs C clients each performing K sequential reads striped
// over N servers (shards cross the shared window cap, the server disk,
// the server NIC and the client NIC).
const (
	pvfsServers = 8
	pvfsClients = 12
)

// pvfsTopo is the static pvfs topology — capacities plus each client's
// stripe index lists — built once at init so every benchmark iteration
// charges the drivers for solving, not for rebuilding topology (which
// would add the same constant to every mode's ns/op and dilute their
// ratios). Read-only after init; parallel subtests share it safely.
var pvfsTopo = func() (t struct {
	caps   []float64
	shards [][][]int
}) {
	for i := 0; i < pvfsServers; i++ {
		t.caps = append(t.caps, 110e6) // server disk read channel
	}
	for i := 0; i < pvfsServers; i++ {
		t.caps = append(t.caps, 1000e6) // server NIC out
	}
	for i := 0; i < pvfsClients; i++ {
		t.caps = append(t.caps, 1000e6) // client NIC in
	}
	t.shards = make([][][]int, pvfsClients)
	for c := 0; c < pvfsClients; c++ {
		t.shards[c] = make([][]int, pvfsServers)
		for j := 0; j < pvfsServers; j++ {
			t.shards[c][j] = []int{j, pvfsServers + j, 2*pvfsServers + c}
		}
	}
	return t
}()

// pvfsShape runs C clients each performing K sequential reads striped
// over N servers (shards cross the shared window cap, the server disk,
// the server NIC and the client NIC).
func pvfsShape(build func(e *sim.Engine, caps []float64) flowDriver) float64 {
	const (
		nReads   = 5
		fileSize = 64e6
		winRate  = 25e6
	)
	e := sim.NewEngine()
	d := build(e, pvfsTopo.caps)
	for c := 0; c < pvfsClients; c++ {
		c := c
		e.Go("client", func(p *sim.Proc) {
			p.Sleep(0.05 * float64(c)) // stagger arrivals
			for k := 0; k < nReads; k++ {
				d.fanout(p, fileSize/pvfsServers, pvfsTopo.shards[c], winRate)
			}
		})
	}
	e.Run()
	return e.Now()
}

// montageShape runs C clients alternating NFS-server reads (one shared
// server egress resource) with node-local disk writes (per-client
// singleton components).
func montageShape(build func(e *sim.Engine, caps []float64) flowDriver) float64 {
	const (
		nClients = 12
		nOps     = 10
		readSize = 4e6
		locSize  = 2e6
	)
	var caps []float64
	caps = append(caps, 130e6) // NFS server egress
	for i := 0; i < nClients; i++ {
		caps = append(caps, 1000e6) // client NIC in
	}
	for i := 0; i < nClients; i++ {
		caps = append(caps, 80e6) // client local disk write channel
	}
	e := sim.NewEngine()
	d := build(e, caps)
	for c := 0; c < nClients; c++ {
		c := c
		e.Go("client", func(p *sim.Proc) {
			p.Sleep(0.02 * float64(c))
			for k := 0; k < nOps; k++ {
				d.transfer(p, readSize, []int{0, 1 + c})
				d.transfer(p, locSize, []int{1 + nClients + c})
			}
		})
	}
	e.Run()
	return e.Now()
}

// scale1000Shape is the 1000-node single-cell scale smoke: a cluster of
// 1000 colocated client/server nodes where each client performs striped
// reads over a 16-server stripe set (stride 61 is coprime to 1000, so
// the 16 servers of one read are distinct and neighbouring clients'
// stripe sets interlock into one large component). Arrivals stagger so
// roughly a thousand transfers are concurrently active — the regime
// STUDY_scale.md could not afford under v1, so only v2 runs it.
func scale1000Shape(build func(e *sim.Engine, caps []float64) flowDriver) float64 {
	const (
		nNodes   = 1000
		nStripe  = 16
		nReads   = 2
		fileSize = 64e6
		winRate  = 25e6
	)
	var caps []float64
	for i := 0; i < nNodes; i++ {
		caps = append(caps, 110e6) // server disk read channel
	}
	for i := 0; i < nNodes; i++ {
		caps = append(caps, 1000e6) // server NIC out
	}
	for i := 0; i < nNodes; i++ {
		caps = append(caps, 1000e6) // client NIC in
	}
	e := sim.NewEngine()
	d := build(e, caps)
	for c := 0; c < nNodes; c++ {
		c := c
		e.Go("client", func(p *sim.Proc) {
			p.Sleep(0.05 * float64(c))
			shards := make([][]int, nStripe)
			for k := 0; k < nReads; k++ {
				for j := 0; j < nStripe; j++ {
					s := (c*17 + j*61) % nNodes
					shards[j] = []int{s, nNodes + s, 2*nNodes + c}
				}
				d.fanout(p, fileSize/nStripe, shards, winRate)
			}
		})
	}
	e.Run()
	return e.Now()
}

var flowShapes = []struct {
	name string
	run  func(build func(e *sim.Engine, caps []float64) flowDriver) float64
}{
	{"pvfs", pvfsShape},
	{"montage", montageShape},
}

func buildIncremental(e *sim.Engine, caps []float64) flowDriver { return newRealDriver(e, caps) }
func buildV2(e *sim.Engine, caps []float64) flowDriver          { return newRealDriverV(e, caps, 2) }
func buildOracle(e *sim.Engine, caps []float64) flowDriver      { return newOracleDriver(e, caps) }

// TestShapesAgree pins the implementations to the same makespans on the
// benchmark shapes, so the speedup comparison is apples to apples: v1
// bit-identical to the oracle, v2 within its documented fp tolerance.
func TestShapesAgree(t *testing.T) {
	t.Parallel()
	for _, shape := range flowShapes {
		inc := shape.run(buildIncremental)
		orc := shape.run(buildOracle)
		if inc != orc {
			t.Errorf("%s: makespan diverged: incremental %v, oracle %v", shape.name, inc, orc)
		}
		v2 := shape.run(buildV2)
		if !timeClose(v2, orc, 0) {
			t.Errorf("%s: makespan diverged beyond tolerance: v2 %v, oracle %v", shape.name, v2, orc)
		}
	}
}

// TestScale1000Smoke pins the 1000-node shape to a plausible, reproducible
// makespan under v2 (the only mode that runs it).
func TestScale1000Smoke(t *testing.T) {
	t.Parallel()
	got := scale1000Shape(buildV2)
	if again := scale1000Shape(buildV2); again != got {
		t.Fatalf("1000-node makespan not deterministic: %v vs %v", got, again)
	}
	// The last client arrives at 49.95s and its reads need over 5s of
	// transfer time even uncontended; anything below that means work
	// was dropped.
	if got < 55 || got > 1e5 {
		t.Fatalf("1000-node makespan %v outside plausible range", got)
	}
}

func BenchmarkReallocate(b *testing.B) {
	for _, shape := range flowShapes {
		b.Run(shape.name+"/incremental", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shape.run(buildIncremental)
			}
		})
		b.Run(shape.name+"/v2", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shape.run(buildV2)
			}
		})
		b.Run(shape.name+"/oracle", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shape.run(buildOracle)
			}
		})
	}
	b.Run("scale1000/v2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scale1000Shape(buildV2)
		}
	})
}

var flowBenchOut = flag.String("flowbench-out", "",
	"write BenchmarkReallocate incremental-vs-oracle results to this JSON file")

// flowBenchRow is one shape's comparison in BENCH_flow.json. The scale1000
// row is v2-only (the oracle cannot afford the shape), so its oracle and
// speedup fields stay zero.
type flowBenchRow struct {
	Shape              string  `json:"shape"`
	IncrementalNsOp    int64   `json:"incremental_ns_op,omitempty"`
	V2NsOp             int64   `json:"v2_ns_op"`
	OracleNsOp         int64   `json:"oracle_ns_op,omitempty"`
	Speedup            float64 `json:"speedup,omitempty"`
	V2Speedup          float64 `json:"v2_speedup,omitempty"`
	IncrementalAllocs  int64   `json:"incremental_allocs_op,omitempty"`
	V2Allocs           int64   `json:"v2_allocs_op"`
	OracleAllocs       int64   `json:"oracle_allocs_op,omitempty"`
	IncrementalBytesOp int64   `json:"incremental_bytes_op,omitempty"`
	V2BytesOp          int64   `json:"v2_bytes_op"`
	OracleBytesOp      int64   `json:"oracle_bytes_op,omitempty"`
}

// benchMedian runs each measurement function five times in interleaved
// rounds (f0 f1 f2, f0 f1 f2, ...) and returns, per function, the run
// with the median ns/op. Interleaving makes slow clock drift on a busy
// host land on every driver equally instead of biasing the ratios, and
// the median discards the rounds a neighbour stole the core.
func benchMedian(fs ...func(b *testing.B)) []testing.BenchmarkResult {
	const rounds = 5
	rs := make([][]testing.BenchmarkResult, len(fs))
	for round := 0; round < rounds; round++ {
		for i, f := range fs {
			// Settle the heap target between measurements so one
			// driver's garbage is not charged to the next driver's run.
			runtime.GC()
			rs[i] = append(rs[i], testing.Benchmark(f))
		}
	}
	med := make([]testing.BenchmarkResult, len(fs))
	for i, runs := range rs {
		sortedIdx := make([]int, rounds)
		for j := range sortedIdx {
			sortedIdx[j] = j
		}
		for a := 0; a < len(sortedIdx); a++ {
			for b := a + 1; b < len(sortedIdx); b++ {
				if runs[sortedIdx[b]].NsPerOp() < runs[sortedIdx[a]].NsPerOp() {
					sortedIdx[a], sortedIdx[b] = sortedIdx[b], sortedIdx[a]
				}
			}
		}
		med[i] = runs[sortedIdx[rounds/2]]
	}
	return med
}

// TestEmitFlowBench runs the reallocation benchmarks and records the
// comparison. It only runs when -flowbench-out is set:
//
//	go test -run TestEmitFlowBench -flowbench-out ../../BENCH_flow.json ./internal/flow
func TestEmitFlowBench(t *testing.T) {
	if *flowBenchOut == "" {
		t.Skip("-flowbench-out not set")
	}
	out := struct {
		Benchmark string         `json:"benchmark"`
		Note      string         `json:"note"`
		Rows      []flowBenchRow `json:"rows"`
	}{
		Benchmark: "BenchmarkReallocate",
		Note: "v1 dirty-set solver and v2 coalescing heap solver vs preserved from-scratch oracle; " +
			"median of 5 interleaved runs per mode; see internal/flow/flowbench_test.go. " +
			"montage outcome: a bit-identical single-flow gate in solveV2 (isolated writes and " +
			"staggered arrivals skip the bottleneck heap) narrowed v2's deficit on this low-fan-out " +
			"shape, but its dominant cost — re-solving one small shared component per completion, " +
			"plus the coalescing flush timer — is structural: v1 stays ahead there and remains the " +
			"default; v2's wins are the large striped components (pvfs, scale1000).",
	}
	for _, shape := range flowShapes {
		med := benchMedian(
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					shape.run(buildIncremental)
				}
			},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					shape.run(buildV2)
				}
			},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					shape.run(buildOracle)
				}
			},
		)
		inc, v2, orc := med[0], med[1], med[2]
		row := flowBenchRow{
			Shape:              shape.name,
			IncrementalNsOp:    inc.NsPerOp(),
			V2NsOp:             v2.NsPerOp(),
			OracleNsOp:         orc.NsPerOp(),
			Speedup:            float64(orc.NsPerOp()) / float64(inc.NsPerOp()),
			V2Speedup:          float64(orc.NsPerOp()) / float64(v2.NsPerOp()),
			IncrementalAllocs:  inc.AllocsPerOp(),
			V2Allocs:           v2.AllocsPerOp(),
			OracleAllocs:       orc.AllocsPerOp(),
			IncrementalBytesOp: inc.AllocedBytesPerOp(),
			V2BytesOp:          v2.AllocedBytesPerOp(),
			OracleBytesOp:      orc.AllocedBytesPerOp(),
		}
		out.Rows = append(out.Rows, row)
		t.Logf("%s: v1 %d ns/op (%.2fx), v2 %d ns/op (%.2fx), oracle %d ns/op",
			row.Shape, row.IncrementalNsOp, row.Speedup, row.V2NsOp, row.V2Speedup, row.OracleNsOp)
	}
	s1000 := benchMedian(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scale1000Shape(buildV2)
		}
	})[0]
	out.Rows = append(out.Rows, flowBenchRow{
		Shape:     "scale1000",
		V2NsOp:    s1000.NsPerOp(),
		V2Allocs:  s1000.AllocsPerOp(),
		V2BytesOp: s1000.AllocedBytesPerOp(),
	})
	t.Logf("scale1000: v2 %d ns/op (%d allocs)", s1000.NsPerOp(), s1000.AllocsPerOp())
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*flowBenchOut, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *flowBenchOut)
}
