package flow

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"ec2wfsim/internal/sim"
)

// BenchmarkReallocate measures the incremental solver against the
// preserved from-scratch oracle on the two transfer-graph shapes that
// dominate the paper's experiments:
//
//   - pvfs: every logical read fans out over all servers' disks and NICs
//     under a shared client window — one densely connected component,
//     where the win comes from batching the fan-out (one solve per read
//     instead of one per shard) and from the pooled records.
//   - montage: many clients hammering one NFS server interleaved with
//     node-local disk I/O — the local transfers form singleton components
//     the dirty-set solver re-solves without touching the server clique.
//
// TestEmitFlowBench (-flowbench-out) records the comparison in
// BENCH_flow.json so the performance trajectory has data points.

// pvfsShape runs C clients each performing K sequential reads striped
// over N servers (shards cross the shared window cap, the server disk,
// the server NIC and the client NIC).
func pvfsShape(build func(e *sim.Engine, caps []float64) flowDriver) float64 {
	const (
		nServers = 8
		nClients = 12
		nReads   = 5
		fileSize = 64e6
		winRate  = 25e6
	)
	var caps []float64
	for i := 0; i < nServers; i++ {
		caps = append(caps, 110e6) // server disk read channel
	}
	for i := 0; i < nServers; i++ {
		caps = append(caps, 1000e6) // server NIC out
	}
	for i := 0; i < nClients; i++ {
		caps = append(caps, 1000e6) // client NIC in
	}
	e := sim.NewEngine()
	d := build(e, caps)
	shards := make([][]int, nServers)
	for c := 0; c < nClients; c++ {
		c := c
		e.Go("client", func(p *sim.Proc) {
			p.Sleep(0.05 * float64(c)) // stagger arrivals
			for k := 0; k < nReads; k++ {
				for j := 0; j < nServers; j++ {
					shards[j] = []int{j, nServers + j, 2*nServers + c}
				}
				d.fanout(p, fileSize/nServers, shards, winRate)
			}
		})
	}
	e.Run()
	return e.Now()
}

// montageShape runs C clients alternating NFS-server reads (one shared
// server egress resource) with node-local disk writes (per-client
// singleton components).
func montageShape(build func(e *sim.Engine, caps []float64) flowDriver) float64 {
	const (
		nClients = 12
		nOps     = 10
		readSize = 4e6
		locSize  = 2e6
	)
	var caps []float64
	caps = append(caps, 130e6) // NFS server egress
	for i := 0; i < nClients; i++ {
		caps = append(caps, 1000e6) // client NIC in
	}
	for i := 0; i < nClients; i++ {
		caps = append(caps, 80e6) // client local disk write channel
	}
	e := sim.NewEngine()
	d := build(e, caps)
	for c := 0; c < nClients; c++ {
		c := c
		e.Go("client", func(p *sim.Proc) {
			p.Sleep(0.02 * float64(c))
			for k := 0; k < nOps; k++ {
				d.transfer(p, readSize, []int{0, 1 + c})
				d.transfer(p, locSize, []int{1 + nClients + c})
			}
		})
	}
	e.Run()
	return e.Now()
}

var flowShapes = []struct {
	name string
	run  func(build func(e *sim.Engine, caps []float64) flowDriver) float64
}{
	{"pvfs", pvfsShape},
	{"montage", montageShape},
}

func buildIncremental(e *sim.Engine, caps []float64) flowDriver { return newRealDriver(e, caps) }
func buildOracle(e *sim.Engine, caps []float64) flowDriver      { return newOracleDriver(e, caps) }

// TestShapesAgree pins the two implementations to the same makespans on
// the benchmark shapes, so the speedup comparison is apples to apples.
func TestShapesAgree(t *testing.T) {
	for _, shape := range flowShapes {
		inc := shape.run(buildIncremental)
		orc := shape.run(buildOracle)
		if inc != orc {
			t.Errorf("%s: makespan diverged: incremental %v, oracle %v", shape.name, inc, orc)
		}
	}
}

func BenchmarkReallocate(b *testing.B) {
	for _, shape := range flowShapes {
		b.Run(shape.name+"/incremental", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shape.run(buildIncremental)
			}
		})
		b.Run(shape.name+"/oracle", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shape.run(buildOracle)
			}
		})
	}
}

var flowBenchOut = flag.String("flowbench-out", "",
	"write BenchmarkReallocate incremental-vs-oracle results to this JSON file")

// flowBenchRow is one shape's comparison in BENCH_flow.json.
type flowBenchRow struct {
	Shape              string  `json:"shape"`
	IncrementalNsOp    int64   `json:"incremental_ns_op"`
	OracleNsOp         int64   `json:"oracle_ns_op"`
	Speedup            float64 `json:"speedup"`
	IncrementalAllocs  int64   `json:"incremental_allocs_op"`
	OracleAllocs       int64   `json:"oracle_allocs_op"`
	IncrementalBytesOp int64   `json:"incremental_bytes_op"`
	OracleBytesOp      int64   `json:"oracle_bytes_op"`
}

// TestEmitFlowBench runs the reallocation benchmarks and records the
// comparison. It only runs when -flowbench-out is set:
//
//	go test -run TestEmitFlowBench -flowbench-out ../../BENCH_flow.json ./internal/flow
func TestEmitFlowBench(t *testing.T) {
	if *flowBenchOut == "" {
		t.Skip("-flowbench-out not set")
	}
	out := struct {
		Benchmark string         `json:"benchmark"`
		Note      string         `json:"note"`
		Rows      []flowBenchRow `json:"rows"`
	}{
		Benchmark: "BenchmarkReallocate",
		Note:      "incremental dirty-set solver vs preserved from-scratch oracle; see internal/flow/flowbench_test.go",
	}
	for _, shape := range flowShapes {
		inc := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shape.run(buildIncremental)
			}
		})
		orc := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shape.run(buildOracle)
			}
		})
		row := flowBenchRow{
			Shape:              shape.name,
			IncrementalNsOp:    inc.NsPerOp(),
			OracleNsOp:         orc.NsPerOp(),
			Speedup:            float64(orc.NsPerOp()) / float64(inc.NsPerOp()),
			IncrementalAllocs:  inc.AllocsPerOp(),
			OracleAllocs:       orc.AllocsPerOp(),
			IncrementalBytesOp: inc.AllocedBytesPerOp(),
			OracleBytesOp:      orc.AllocedBytesPerOp(),
		}
		out.Rows = append(out.Rows, row)
		t.Logf("%s: incremental %d ns/op (%d allocs), oracle %d ns/op (%d allocs), speedup %.2fx",
			row.Shape, row.IncrementalNsOp, row.IncrementalAllocs, row.OracleNsOp, row.OracleAllocs, row.Speedup)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*flowBenchOut, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *flowBenchOut)
}
