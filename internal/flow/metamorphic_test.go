package flow

import (
	"fmt"
	"testing"

	"ec2wfsim/internal/sim"
)

// Metamorphic properties of the solvers: transformations of a scenario
// that must not change what it computes. Unlike the differential fuzzer
// (which compares implementations on one input), these compare one
// implementation against itself on equivalent inputs — they hold even
// where no oracle run exists.
//
//   - Registration-order permutation: max-min fair shares are a function
//     of the transfer graph, not of the order transfers or resources were
//     registered. Permuting registration reorders the fill arithmetic, so
//     timestamps agree within float tolerance; conserved quantities
//     (totals, drained final loads) agree exactly.
//   - Capacity-change splitting: setting a resource's capacity through an
//     intermediate value and then to its final value within one process
//     turn is indistinguishable from setting the final value once — no
//     simulated time passes in between, so no bytes flow under the
//     intermediate rate. This must hold bit-for-bit on both solvers: v2
//     coalesces the two updates into one flush, and v1's interleaved
//     solve integrates over a zero-length interval.

// permResult is the observable outcome of one permuted run.
type permResult struct {
	end        float64
	totalBytes float64
	totalCount int64
	finalLoads []float64
}

// runPermuted runs a fixed striped-read workload with both the resource
// registration order and each batch's shard order permuted by perm.
// perm[i] gives the registration slot of logical resource i; shard k of
// each read is staged k'th where perm rotates the batch order. The
// logical topology — which transfers cross which resources — is
// identical for every perm.
func runPermuted(version int, perm []int) permResult {
	const (
		nServers = 4
		nClients = 3
		nReads   = 2
		fileSize = 48e6
		winRate  = 30e6
	)
	nRes := 2*nServers + nClients
	logicalCaps := make([]float64, nRes)
	for i := 0; i < nServers; i++ {
		logicalCaps[i] = 110e6          // server disk
		logicalCaps[nServers+i] = 400e6 // server NIC
	}
	for c := 0; c < nClients; c++ {
		logicalCaps[2*nServers+c] = 400e6 // client NIC
	}
	// Register resources in permuted order; slot[i] is logical resource
	// i's position in the driver's table.
	slot := make([]int, nRes)
	caps := make([]float64, nRes)
	for logical, s := range perm {
		slot[logical] = s
		caps[s] = logicalCaps[logical]
	}
	e := sim.NewEngine()
	d := newRealDriverV(e, caps, version)
	for c := 0; c < nClients; c++ {
		c := c
		shards := make([][]int, nServers)
		for j := 0; j < nServers; j++ {
			// Rotate shard staging order by the permutation's first
			// element so batches also join in a different order.
			jj := (j + perm[0]) % nServers
			shards[j] = []int{slot[jj], slot[nServers+jj], slot[2*nServers+c]}
		}
		e.Go("client", func(p *sim.Proc) {
			p.Sleep(0.03 * float64(c))
			for k := 0; k < nReads; k++ {
				d.fanout(p, fileSize/nServers, shards, winRate)
			}
		})
	}
	e.Run()
	res := permResult{end: e.Now()}
	res.totalBytes, res.totalCount = d.totals()
	res.finalLoads = make([]float64, nRes)
	for logical := 0; logical < nRes; logical++ {
		res.finalLoads[logical] = d.rs[slot[logical]].Load()
	}
	return res
}

// TestPermutationInvariance checks that permuting registration order
// changes nothing observable beyond float noise, on both solver
// versions.
func TestPermutationInvariance(t *testing.T) {
	t.Parallel()
	const nRes = 2*4 + 3
	identity := make([]int, nRes)
	reversed := make([]int, nRes)
	rotated := make([]int, nRes)
	for i := 0; i < nRes; i++ {
		identity[i] = i
		reversed[i] = nRes - 1 - i
		rotated[i] = (i + 5) % nRes
	}
	// Slack mirrors the fuzzer's per-script completion-window bound:
	// each completion can land completionEps of bytes early, and those
	// bytes drain at no less than the slowest capacity in the graph.
	const slack = 4 * completionEps * (3 * 2 * 4) / 30e6
	for _, version := range []int{1, 2} {
		version := version
		t.Run(fmt.Sprintf("v%d", version), func(t *testing.T) {
			t.Parallel()
			base := runPermuted(version, identity)
			for name, perm := range map[string][]int{"reversed": reversed, "rotated": rotated} {
				got := runPermuted(version, perm)
				if !timeClose(got.end, base.end, slack) {
					t.Errorf("%s: makespan diverged beyond tolerance: %v vs identity %v", name, got.end, base.end)
				}
				if got.totalBytes != base.totalBytes || got.totalCount != base.totalCount {
					t.Errorf("%s: totals diverged: (%v, %d) vs identity (%v, %d)",
						name, got.totalBytes, got.totalCount, base.totalBytes, base.totalCount)
				}
				for i, ld := range got.finalLoads {
					if ld != 0 {
						t.Errorf("%s: residual load %g on logical resource %d after drain", name, ld, i)
					}
				}
			}
		})
	}
}

// runSplitCapacity runs two long transfers through a shared link whose
// capacity is changed at t=1: in one step when mids is empty, or through
// the given intermediate values first — all within the same process
// turn, so no simulated time separates the steps.
func runSplitCapacity(version int, mids []float64) *trace {
	e := sim.NewEngine()
	d := newRealDriverV(e, []float64{100e6, 80e6, 80e6}, version)
	tr := &trace{completions: make([]float64, 2)}
	for i := 0; i < 2; i++ {
		i := i
		e.Go("t", func(p *sim.Proc) {
			d.transfer(p, 300e6, []int{0, 1 + i})
			tr.completions[i] = p.Now()
		})
	}
	e.At(1, func() {
		for _, m := range mids {
			d.setCapacity(0, m)
		}
		d.setCapacity(0, 40e6)
	})
	e.Run()
	tr.end = e.Now()
	tr.totalBytes, tr.totalCount = d.totals()
	for idx := 0; idx < 3; idx++ {
		tr.finalLoads = append(tr.finalLoads, d.load(idx))
	}
	return tr
}

// TestCapacityChangeSplittingInvariance checks, on both solver versions,
// that splitting a same-instant capacity change through intermediate
// values is bit-identical to applying the final value directly.
func TestCapacityChangeSplittingInvariance(t *testing.T) {
	t.Parallel()
	for _, version := range []int{1, 2} {
		version := version
		t.Run(fmt.Sprintf("v%d", version), func(t *testing.T) {
			t.Parallel()
			direct := runSplitCapacity(version, nil)
			split := runSplitCapacity(version, []float64{90e6, 10e6})
			compareExact(t, "split", split, direct, &script{ops: make([]scriptOp, 2)})
		})
	}
}
