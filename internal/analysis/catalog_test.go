package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/analysistest"
)

// TestRuleCatalogComplete enforces the contract for registering an
// analyzer: every rule in the catalog must carry documentation, ship a
// hit fixture (with // want annotations and a demonstrated suppression
// path), a clean fixture, and a _test.go exercising both.
func TestRuleCatalogComplete(t *testing.T) {
	rules := analysis.Rules()
	if len(rules) == 0 {
		t.Fatal("empty rule catalog")
	}
	seen := map[string]bool{}
	for _, a := range rules {
		if a.Name == "" {
			t.Fatal("analyzer with empty name registered")
		}
		if seen[a.Name] {
			t.Errorf("%s: registered twice", a.Name)
		}
		seen[a.Name] = true

		if a.Doc == "" {
			t.Errorf("%s: missing Doc", a.Name)
		}
		if a.Why == "" {
			t.Errorf("%s: missing Why (the determinism rationale shown by wfvet -rules)", a.Name)
		}
		if a.Run == nil {
			t.Errorf("%s: nil Run", a.Name)
		}

		if !analysistest.FixtureExists(a.Name) {
			t.Errorf("%s: no hit fixture at testdata/src/%s", a.Name, a.Name)
		} else {
			if wants, err := analysistest.FixtureHasWants(a.Name); err != nil {
				t.Errorf("%s: reading hit fixture: %v", a.Name, err)
			} else if !wants {
				t.Errorf("%s: hit fixture has no // want annotations", a.Name)
			}
			if !fixtureHasSuppression(t, a.Name) {
				t.Errorf("%s: hit fixture does not demonstrate a //wfvet:ignore suppression path", a.Name)
			}
		}
		clean := a.Name + "_clean"
		if !analysistest.FixtureExists(clean) {
			t.Errorf("%s: no clean fixture at testdata/src/%s", a.Name, clean)
		} else if wants, err := analysistest.FixtureHasWants(clean); err != nil {
			t.Errorf("%s: reading clean fixture: %v", a.Name, err)
		} else if wants {
			t.Errorf("%s: clean fixture unexpectedly has // want annotations", a.Name)
		}

		if _, err := os.Stat(a.Name + "_test.go"); err != nil {
			t.Errorf("%s: no %s_test.go in internal/analysis", a.Name, a.Name)
		}
	}
}

// fixtureHasSuppression reports whether the fixture contains a
// wfvet:ignore directive naming its own analyzer — i.e. the fixture
// proves the rule can be locally silenced with a reason.
func fixtureHasSuppression(t *testing.T, name string) bool {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "src", name, "*.go"))
	if err != nil || len(files) == 0 {
		return false
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(b), "\n") {
			rest, ok := strings.CutPrefix(strings.TrimSpace(line), "//wfvet:ignore ")
			if !ok {
				if i := strings.Index(line, "//wfvet:ignore "); i >= 0 {
					rest = line[i+len("//wfvet:ignore "):]
				} else {
					continue
				}
			}
			fields := strings.Fields(rest)
			// wfdirective's own fixture tests broken directives; any
			// directive with the right name and a reason counts.
			if len(fields) >= 2 && fields[0] == name {
				return true
			}
		}
	}
	return false
}

// TestRuleNamesStable pins the catalog so adding or renaming a rule is
// a conscious, reviewed act (README and CI docs list these names).
func TestRuleNamesStable(t *testing.T) {
	want := []string{
		"norawrand", "maporder", "floataccum", "seedflow", "simgoroutine", "wfdirective",
		"ordertaint", "seedtaint", "walltime",
	}
	got := analysis.RuleNames()
	if len(got) != len(want) {
		t.Fatalf("RuleNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RuleNames() = %v, want %v", got, want)
		}
	}
}
