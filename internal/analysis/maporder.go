package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags order-sensitive work performed while ranging over a
// map: Go randomizes map iteration order per run, so any loop whose
// body appends to an escaping slice, accumulates a running total from
// the elements, writes output, or schedules simulator events produces
// run-dependent results — the classic golden-file breaker.
//
// The sanctioned idiom is collect-keys-then-sort: a loop that only
// appends the keys/values to a slice which is subsequently passed to a
// sort.* / slices.Sort* call in the same block is accepted.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive operations inside range-over-map loops",
	Why: "map iteration order is randomized per process: slices, emitted output and " +
		"scheduled events built in map order differ between otherwise identical runs, " +
		"breaking golden grids and paired baselines. Collect the keys, sort them, then iterate.",
	Run: runMapOrder,
}

// sortCalls are the package-level functions accepted as establishing a
// deterministic order for a slice built from map iteration.
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// printCalls are package-level functions that emit output directly.
var printCalls = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
	},
}

// writerMethods are method names treated as writing output when invoked
// on a value that outlives the loop body (strings.Builder, bytes.Buffer,
// io.Writer, csv.Writer, json.Encoder, ...).
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprintf": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				mapOrderWalk(pass, fn.Body, fn.Body)
			}
		}
	}
}

// mapOrderWalk visits n looking for range-over-map statements,
// tracking the innermost enclosing function body (fnBody) so the
// collect-then-sort escape can look past intervening loops and blocks.
func mapOrderWalk(pass *Pass, n ast.Node, fnBody *ast.BlockStmt) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			if st.Body != nil {
				mapOrderWalk(pass, st.Body, st.Body)
			}
			return false
		case *ast.RangeStmt:
			if isMapType(pass.Info, st.X) {
				checkMapRange(pass, st, fnBody)
			}
		}
		return true
	})
}

// checkMapRange inspects the body of one range-over-map statement.
// fnBody is the innermost enclosing function body, scanned for a
// subsequent sort of any slice the loop appends to.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	lo, hi := rs.Pos(), rs.End()
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // handled by mapOrderWalk with its own scope
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, st, fnBody, lo, hi)
		case *ast.CallExpr:
			checkMapRangeCall(pass, st, lo, hi)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, st *ast.AssignStmt, fnBody *ast.BlockStmt, lo, hi token.Pos) {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			if i >= len(st.Lhs) || !isBuiltinAppend(pass.Info, rhs) {
				continue
			}
			obj := rootObj(pass.Info, st.Lhs[i])
			if !declaredOutside(obj, lo, hi) {
				continue
			}
			if sortedAfter(pass.Info, fnBody, obj, hi) {
				continue
			}
			pass.Reportf(st.Pos(),
				"append to %s inside range over map: element order varies per run; collect keys, sort, then iterate (or sort %s before use)",
				obj.Name(), obj.Name())
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		obj := rootObj(pass.Info, st.Lhs[0])
		if !declaredOutside(obj, lo, hi) {
			return
		}
		kind := basicKind(pass.Info, st.Lhs[0])
		switch {
		case kind == types.String:
			pass.Reportf(st.Pos(),
				"string concatenation into %s inside range over map: concatenation order varies per run; iterate sorted keys", obj.Name())
		case isInteger(kind) && usesRangeVars(pass.Info, rs, st.Rhs[0]):
			pass.Reportf(st.Pos(),
				"integer total %s accumulated from map elements in iteration order: pair with maporder-clean shape — iterate sorted keys so intermediate states (and any break/rounding) are reproducible", obj.Name())
		}
	}
}

func checkMapRangeCall(pass *Pass, call *ast.CallExpr, lo, hi token.Pos) {
	if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv == nil {
			if names := printCalls[fn.Pkg().Path()]; names[fn.Name()] {
				pass.Reportf(call.Pos(),
					"%s.%s inside range over map: output is emitted in random map order; iterate sorted keys", fn.Pkg().Name(), fn.Name())
			}
			return
		}
	}
	pkg, method := methodRecvPkg(pass.Info, call)
	if pkg == "" {
		return
	}
	if pkg == ModulePath+"/internal/sim" {
		pass.Reportf(call.Pos(),
			"sim.%s called inside range over map: events are scheduled in random map order, perturbing the event queue; iterate sorted keys", method)
		return
	}
	if writerMethods[method] {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if obj := rootObj(pass.Info, sel.X); declaredOutside(obj, lo, hi) {
			pass.Reportf(call.Pos(),
				"%s.%s inside range over map: output is emitted in random map order; iterate sorted keys", obj.Name(), method)
		}
	}
}

// usesRangeVars reports whether e references the loop's key or value
// variable (an accumulation independent of them — e.g. counting — is a
// deterministic function of len(m) and exempt).
func usesRangeVars(info *types.Info, rs *ast.RangeStmt, e ast.Expr) bool {
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := v.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj, _ := info.Defs[id].(*types.Var)
		if obj == nil {
			obj, _ = info.Uses[id].(*types.Var)
		}
		if obj != nil && exprUsesObj(info, e, obj) {
			return true
		}
	}
	return false
}

func isBuiltinAppend(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// sortedAfter reports whether, somewhere in the enclosing function
// after position after, obj is passed to a recognized sorting function —
// the collect-then-sort idiom (the sort may sit past intervening outer
// loops, so the whole function body is scanned, not just the block tail).
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, obj *types.Var, after token.Pos) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if names := sortCalls[fn.Pkg().Path()]; !names[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if exprUsesObj(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
