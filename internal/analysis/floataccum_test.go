package analysis_test

import (
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/analysistest"
)

func TestFloatAccum(t *testing.T) {
	analysistest.Run(t, analysis.FloatAccum, "floataccum", "ec2wfsim/internal/harness/fx")
}

func TestFloatAccumClean(t *testing.T) {
	analysistest.Run(t, analysis.FloatAccum, "floataccum_clean", "ec2wfsim/internal/harness/fx")
}
