package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FuncSummary records the determinism-relevant effects of one function,
// flattened over everything it (statically) calls. Summaries are the
// currency of the interprocedural rules: the callgraph package computes
// them bottom-up to a fixpoint, the driver carries them across package
// boundaries (in memory in standalone mode, serialized through vetx
// facts files in `go vet -vettool` mode), and ordertaint / seedtaint /
// walltime consult them at call sites.
//
// Every effect field doubles as its own explanation: an empty string or
// missing map entry means "clean", anything else is the human-readable
// chain ("stamp → time.Now") shown in diagnostics. Because callee
// effects are folded into the caller's summary at computation time, a
// consumer only ever needs the summaries of functions it can name
// directly — transitive information is already flattened in.
type FuncSummary struct {
	// Sym is the canonical symbol, types.Func.FullName form:
	// "pkg/path.Func" or "(*pkg/path.Recv).Method".
	Sym string `json:"sym"`

	// WallClock is non-empty when calling the function can read the
	// wall clock (time.Now/Since/Until), directly or transitively.
	// The value is the call chain that reaches the read.
	WallClock string `json:"wall_clock,omitempty"`

	// EnvRead is non-empty when the function can read the process
	// environment (os.Getenv and friends), directly or transitively.
	EnvRead string `json:"env_read,omitempty"`

	// SeedParams maps parameter indices (0-based, receiver excluded)
	// that flow into a seed sink — rng.New's seed argument, a
	// *Seed-suffixed field of a simulation-package struct, or a
	// callee's seed parameter — to the chain describing the sink.
	SeedParams map[int]string `json:"seed_params,omitempty"`

	// OrderedResults maps result indices to the origin chain when the
	// corresponding return value carries map-iteration order (a slice
	// built by ranging a map without a subsequent sort, possibly
	// through intermediate calls).
	OrderedResults map[int]string `json:"ordered_results,omitempty"`

	// OrderedParams maps parameter indices of pointer parameters the
	// function fills in map-iteration order (out-parameter writes).
	OrderedParams map[int]string `json:"ordered_params,omitempty"`

	// SinkParams maps parameter indices whose contents' order reaches
	// a determinism-sensitive sink (output writer, printed output,
	// simulator event scheduling) inside the function.
	SinkParams map[int]string `json:"sink_params,omitempty"`
}

// Clean reports whether the summary records no effects at all.
func (s *FuncSummary) Clean() bool {
	return s.WallClock == "" && s.EnvRead == "" &&
		len(s.SeedParams) == 0 && len(s.OrderedResults) == 0 &&
		len(s.OrderedParams) == 0 && len(s.SinkParams) == 0
}

// equal reports whether two summaries record identical effects (used by
// the fixpoint loop to detect convergence).
func (s *FuncSummary) equal(o *FuncSummary) bool {
	return s.WallClock == o.WallClock && s.EnvRead == o.EnvRead &&
		intMapEqual(s.SeedParams, o.SeedParams) &&
		intMapEqual(s.OrderedResults, o.OrderedResults) &&
		intMapEqual(s.OrderedParams, o.OrderedParams) &&
		intMapEqual(s.SinkParams, o.SinkParams)
}

func intMapEqual(a, b map[int]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// SummaryTable maps canonical function symbols to their summaries. The
// zero value (nil) behaves as an empty table for lookups.
type SummaryTable map[string]*FuncSummary

// Lookup resolves fn against the table, falling back to the built-in
// extern summaries (time.Now, os.Getenv, rng.New, ...) for functions
// outside the analyzed view. It returns nil for unknown functions,
// which consumers must treat as effect-free.
func (t SummaryTable) Lookup(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	if s, ok := t[FuncSym(fn)]; ok {
		// A from-source scan can come up clean for a function whose
		// effect is curated knowledge: rng.New's seed parameter is not
		// derivable from its body. The curated entry still applies.
		if !s.Clean() {
			return s
		}
		if e := externSummary(fn); e != nil {
			return e
		}
		return s
	}
	return externSummary(fn)
}

// FuncSym returns the canonical symbol for fn, used as the SummaryTable
// key: types.Func.FullName form, stable across loads.
func FuncSym(fn *types.Func) string { return fn.FullName() }

// externSummary hands out built-in summaries for functions outside the
// analyzed source view (the standard library, mainly). The analyzed
// module only ever reaches nondeterminism through these roots, so the
// table is deliberately small; unknown externs are treated as clean.
func externSummary(fn *types.Func) *FuncSummary {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil // no extern method carries effects we track
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return &FuncSummary{Sym: FuncSym(fn), WallClock: "time." + fn.Name()}
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ", "Hostname":
			return &FuncSummary{Sym: FuncSym(fn), EnvRead: "os." + fn.Name()}
		}
	case ModulePath + "/internal/rng":
		if fn.Name() == "New" {
			return &FuncSummary{Sym: FuncSym(fn), SeedParams: map[int]string{0: "the rng.New seed"}}
		}
	}
	return nil
}

// ScanFunc computes fn's summary from its body, resolving callee
// effects through table (which the callgraph fixpoint grows until
// scanning is stable). The scan is flow-insensitive and excludes the
// bodies of function literals: a literal's effects belong to the
// literal, and reach the enclosing function's callers only if it is
// invoked — which the walltime handler check and the callgraph's
// function-value edges cover separately.
func ScanFunc(pkg *Package, fn *ast.FuncDecl, table SummaryTable) *FuncSummary {
	obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
	if obj == nil || fn.Body == nil {
		return nil
	}
	sum := &FuncSummary{Sym: FuncSym(obj)}
	sig := obj.Type().(*types.Signature)

	params := make(map[types.Object]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		params[sig.Params().At(i)] = i
	}
	results := make(map[types.Object]int, sig.Results().Len())
	for i := 0; i < sig.Results().Len(); i++ {
		if v := sig.Results().At(i); v.Name() != "" {
			results[v] = i
		}
	}

	taint := localTaint(pkg, fn.Body, table)

	inspectSkippingFuncLits(fn.Body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.CallExpr:
			scanCallEffects(pkg, st, table, sum, params)
		case *ast.AssignStmt:
			scanSeedFieldWrites(pkg, st, sum, params)
		case *ast.CompositeLit:
			scanSeedFieldLit(pkg, st, sum, params)
		case *ast.ReturnStmt:
			for i, res := range st.Results {
				if why := taintOf(pkg, res, taint, table); why != "" {
					setEffect(&sum.OrderedResults, i, why)
				}
			}
		case *ast.RangeStmt:
			// Ranging a parameter's contents with an order-sensitive
			// body makes the parameter itself a sink.
			if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
				if i, ok := params[pkg.Info.Uses[id]]; ok && !isMapType(pkg.Info, st.X) {
					if desc, found := orderSensitiveBody(pkg, st, table); found {
						setEffect(&sum.SinkParams, i, desc)
					}
				}
			}
		}
	})

	// Named results assigned a tainted value carry the taint out even
	// through a bare return.
	for obj, i := range results {
		if why, ok := taint[obj]; ok {
			setEffect(&sum.OrderedResults, i, why)
		}
	}

	// Pointer out-parameters filled in map order.
	scanOrderedParamWrites(pkg, fn.Body, taint, params, sum)

	return sum
}

// scanCallEffects folds one call site into the summary: wall-clock and
// env taint from the callee, plus seed/sink parameter propagation when
// an argument expression uses one of fn's own parameters.
func scanCallEffects(pkg *Package, call *ast.CallExpr, table SummaryTable, sum *FuncSummary, params map[types.Object]int) {
	callee := calleeFunc(pkg.Info, call)
	cs := table.Lookup(callee)
	if cs == nil {
		// Even without a callee summary the call can be an intrinsic
		// order sink for parameter propagation (writer methods are
		// matched by name, not symbol).
		propagateSinkParams(pkg, call, table, sum, params)
		return
	}
	if cs.WallClock != "" && sum.WallClock == "" {
		sum.WallClock = chain(callee, cs.WallClock)
	}
	if cs.EnvRead != "" && sum.EnvRead == "" {
		sum.EnvRead = chain(callee, cs.EnvRead)
	}
	// Seed-sink parameters: passing one of our params into a callee's
	// seed parameter makes ours a seed parameter too. The chain stops
	// at the scenario layer (the sanctioned laundering point for raw
	// seed material) and only integer parameters propagate — a struct
	// whose field feeds a seed must not taint everything its callers
	// build the struct from. rng.New is deliberately NOT a stopping
	// point: a helper forwarding its argument there is exactly the
	// laundering seedtaint exists to see through.
	if !isSeedDeriver(pkgPathOf(callee)) {
		for j, why := range cs.SeedParams {
			if j >= len(call.Args) {
				continue
			}
			for obj, i := range params {
				v := obj.(*types.Var)
				if !isIntegerType(v.Type()) {
					continue
				}
				if exprUsesObj(pkg.Info, call.Args[j], v) {
					setEffect(&sum.SeedParams, i, chain(callee, why))
				}
			}
		}
	}
	for j, why := range cs.SinkParams {
		if j >= len(call.Args) {
			continue
		}
		for obj, i := range params {
			if exprUsesObj(pkg.Info, call.Args[j], obj.(*types.Var)) {
				setEffect(&sum.SinkParams, i, chain(callee, why))
			}
		}
	}
	propagateSinkParams(pkg, call, table, sum, params)
}

// propagateSinkParams marks parameters used in an intrinsic order-sink
// position (print calls, writer methods, sim scheduling) of call.
func propagateSinkParams(pkg *Package, call *ast.CallExpr, table SummaryTable, sum *FuncSummary, params map[types.Object]int) {
	desc, ok := orderSinkCall(pkg.Info, call)
	if !ok {
		return
	}
	for _, arg := range call.Args {
		for obj, i := range params {
			if exprUsesObj(pkg.Info, arg, obj.(*types.Var)) {
				setEffect(&sum.SinkParams, i, desc)
			}
		}
	}
}

// scanSeedFieldWrites marks parameters assigned to a *Seed field of a
// simulation-package struct ("x.FailureSeed = seed"): such fields carry
// raw seed material into the simulator, so the parameter is a seed sink.
func scanSeedFieldWrites(pkg *Package, st *ast.AssignStmt, sum *FuncSummary, params map[types.Object]int) {
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		field, ok := seedFieldSel(pkg.Info, lhs)
		if !ok {
			continue
		}
		for obj, pi := range params {
			v := obj.(*types.Var)
			if isIntegerType(v.Type()) && exprUsesObj(pkg.Info, st.Rhs[i], v) {
				setEffect(&sum.SeedParams, pi, "the "+field+" field")
			}
		}
	}
}

// scanSeedFieldLit does the same for composite literals:
// wms.Options{FailureSeed: seed}.
func scanSeedFieldLit(pkg *Package, lit *ast.CompositeLit, sum *FuncSummary, params map[types.Object]int) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		field, ok := seedFieldKey(pkg.Info, lit, kv)
		if !ok {
			continue
		}
		for obj, pi := range params {
			v := obj.(*types.Var)
			if isIntegerType(v.Type()) && exprUsesObj(pkg.Info, kv.Value, v) {
				setEffect(&sum.SeedParams, pi, "the "+field+" field")
			}
		}
	}
}

// isIntegerType reports whether t is (or is named over) a basic integer
// type — the only shape raw seed material takes.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && isInteger(b.Kind())
}

// scanOrderedParamWrites records pointer parameters assigned or
// append-extended with map-ordered contents (*out = append(*out, k)
// under a map range, or *out = tainted).
func scanOrderedParamWrites(pkg *Package, body *ast.BlockStmt, taint map[types.Object]string, params map[types.Object]int, sum *FuncSummary) {
	inspectSkippingFuncLits(body, func(n ast.Node) {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, lhs := range st.Lhs {
			if i >= len(st.Rhs) {
				break
			}
			star, ok := ast.Unparen(lhs).(*ast.StarExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(star.X).(*ast.Ident)
			if !ok {
				continue
			}
			pi, isParam := params[pkg.Info.Uses[id]]
			if !isParam {
				continue
			}
			if why := taintOf(pkg, st.Rhs[i], taint, nil); why != "" {
				setEffect(&sum.OrderedParams, pi, why)
			} else if enclosingMapRange(pkg, body, st.Pos()) && isBuiltinAppend(pkg.Info, st.Rhs[i]) {
				setEffect(&sum.OrderedParams, pi, "filled in map-iteration order")
			}
		}
	})
}

// localTaint computes the set of local variables carrying map-iteration
// order in fn's body: slices appended to while ranging a map, values
// returned by callees whose results are map-ordered, and strings
// serialized from either. Variables that are passed to a sort.* /
// slices.Sort* call anywhere in the body are considered neutralized and
// never tainted (the collect-then-sort idiom, matching maporder). The
// map value is the origin chain used in diagnostics.
func localTaint(pkg *Package, body *ast.BlockStmt, table SummaryTable) map[types.Object]string {
	taint := make(map[types.Object]string)
	for changed := true; changed; {
		changed = false
		inspectSkippingFuncLits(body, func(n ast.Node) {
			switch st := n.(type) {
			case *ast.RangeStmt:
				if !isMapType(pkg.Info, st.X) {
					return
				}
				lo, hi := st.Pos(), st.End()
				inspectSkippingFuncLits(st.Body, func(n ast.Node) {
					as, ok := n.(*ast.AssignStmt)
					if !ok {
						return
					}
					for i, rhs := range as.Rhs {
						if i >= len(as.Lhs) || !isBuiltinAppend(pkg.Info, rhs) {
							continue
						}
						obj := rootObj(pkg.Info, as.Lhs[i])
						if obj == nil || !declaredOutside(obj, lo, hi) {
							continue
						}
						pos := pkg.Fset.Position(st.Pos())
						if setTaint(taint, obj, fmt.Sprintf("built while ranging a map at line %d", pos.Line)) {
							changed = true
						}
					}
				})
			case *ast.AssignStmt:
				changed = taintAssign(pkg, st, taint, table) || changed
			}
		})
	}
	// Sorting anywhere in the body neutralizes the variable.
	for obj := range taint {
		if v, ok := obj.(*types.Var); ok && sortsObj(pkg.Info, body, v) {
			delete(taint, obj)
		}
	}
	return taint
}

// taintAssign propagates taint through one assignment, reporting
// whether anything new was learned.
func taintAssign(pkg *Package, st *ast.AssignStmt, taint map[types.Object]string, table SummaryTable) bool {
	changed := false
	// Multi-value call: x, y := f().
	if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			cs := table.Lookup(calleeFunc(pkg.Info, call))
			if cs != nil {
				for j, why := range cs.OrderedResults {
					if j >= len(st.Lhs) {
						continue
					}
					if obj := assignTarget(pkg.Info, st.Lhs[j]); obj != nil {
						changed = setTaint(taint, obj, chain(calleeFunc(pkg.Info, call), why)) || changed
					}
				}
			}
		}
		return changed
	}
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) {
			break
		}
		why := taintOf(pkg, rhs, taint, table)
		if why == "" {
			continue
		}
		if obj := assignTarget(pkg.Info, st.Lhs[i]); obj != nil {
			changed = setTaint(taint, obj, why) || changed
		}
	}
	return changed
}

// taintOf evaluates the map-order taint of expression e: a tainted
// local, a call returning a map-ordered result, an append extending a
// tainted slice, a slice of a tainted slice, or a string serialized
// from tainted elements (strings.Join, fmt.Sprint*). Empty means clean.
func taintOf(pkg *Package, e ast.Expr, taint map[types.Object]string, table SummaryTable) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[v]; obj != nil {
			return taint[obj]
		}
	case *ast.SliceExpr:
		return taintOf(pkg, v.X, taint, table)
	case *ast.CallExpr:
		if isBuiltinAppend(pkg.Info, v) {
			for _, arg := range v.Args {
				if why := taintOf(pkg, arg, taint, table); why != "" {
					return why
				}
			}
			return ""
		}
		callee := calleeFunc(pkg.Info, v)
		if callee != nil && isSerializeCall(callee) {
			for _, arg := range v.Args {
				if why := taintOf(pkg, arg, taint, table); why != "" {
					return "serialized by " + callee.Pkg().Name() + "." + callee.Name() + ": " + why
				}
			}
			return ""
		}
		if cs := table.Lookup(callee); cs != nil {
			if why, ok := cs.OrderedResults[0]; ok && len(cs.OrderedResults) >= 1 {
				// Single-result use of a call: the first result's taint
				// is what flows here (multi-value handled in taintAssign).
				return chain(callee, why)
			}
		}
	}
	return ""
}

// assignTarget resolves an assignment LHS to the object that receives
// the value when it is a plain identifier (the only shape tracked).
func assignTarget(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func setTaint(taint map[types.Object]string, obj types.Object, why string) bool {
	if _, ok := taint[obj]; ok {
		return false
	}
	taint[obj] = why
	return true
}

// setEffect records an effect in a lazily-allocated index map, keeping
// the first (stable under re-scans) explanation.
func setEffect(m *map[int]string, i int, why string) {
	if *m == nil {
		*m = make(map[int]string)
	}
	if _, ok := (*m)[i]; !ok {
		(*m)[i] = why
	}
}

// chain prefixes a callee's own effect explanation with its name,
// building the "a → b → time.Now" trail shown in diagnostics.
func chain(callee *types.Func, why string) string {
	if callee == nil {
		return why
	}
	name := callee.Name()
	if pkg := callee.Pkg(); pkg != nil {
		name = pkg.Name() + "." + name
	}
	if why == name || strings.HasPrefix(why, name+" → ") {
		return why // the callee IS the leaf effect, or already heads the chain
	}
	if strings.HasPrefix(why, "the ") || strings.HasPrefix(why, "built ") || strings.HasPrefix(why, "filled ") {
		return name + " (" + why + ")"
	}
	return name + " → " + why
}

// pkgPathOf returns the import path of fn's defining package ("" when
// unknown).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// seedFieldSel reports whether lhs selects a raw-seed-carrying field: a
// field whose name ends in "Seed" on a struct defined in an event-loop
// simulation package other than internal/scenario (which owns seed
// derivation and may carry experiment master seeds).
func seedFieldSel(info *types.Info, lhs ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	field, ok := info.Selections[sel]
	if !ok || field.Kind() != types.FieldVal {
		return "", false
	}
	return seedField(field.Obj())
}

// seedFieldKey resolves a composite-literal key to a seed field of a
// sim-package struct.
func seedFieldKey(info *types.Info, lit *ast.CompositeLit, kv *ast.KeyValueExpr) (string, bool) {
	id, ok := kv.Key.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id] // struct literal keys resolve through Uses or Defs depending on form
	}
	if obj == nil {
		return "", false
	}
	return seedField(obj)
}

func seedField(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if !strings.HasSuffix(obj.Name(), "Seed") {
		return "", false
	}
	path := obj.Pkg().Path()
	if !inSimPackage(path) || isSeedOwner(path) {
		return "", false
	}
	return obj.Pkg().Name() + "." + obj.Name(), true
}

// isSerializeCall reports whether fn flattens its arguments' element
// order into a string (so a map-ordered slice passed in produces a
// map-ordered string).
func isSerializeCall(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "strings":
		return fn.Name() == "Join"
	case "fmt":
		switch fn.Name() {
		case "Sprint", "Sprintf", "Sprintln":
			return true
		}
	}
	return false
}

// orderSinkCall reports whether call delivers its arguments to a
// determinism-sensitive sink: printed or written output, or simulator
// event scheduling. The description names the sink for diagnostics.
func orderSinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv == nil {
		if names := printCalls[fn.Pkg().Path()]; names[fn.Name()] {
			return fn.Pkg().Name() + "." + fn.Name() + " output", true
		}
		if fn.Pkg().Path() == ModulePath+"/internal/sim" {
			return "sim." + fn.Name() + " event scheduling", true
		}
		return "", false
	}
	if fn.Pkg().Path() == ModulePath+"/internal/sim" {
		return "sim." + fn.Name() + " event scheduling", true
	}
	if writerMethods[fn.Name()] {
		return "a " + fn.Name() + " output write", true
	}
	return "", false
}

// sortsObj reports whether obj is passed to a recognized sorting
// function anywhere in body.
func sortsObj(info *types.Info, body *ast.BlockStmt, obj *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if names := sortCalls[fn.Pkg().Path()]; !names[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if exprUsesObj(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// enclosingMapRange reports whether pos sits inside a range-over-map
// statement within body.
func enclosingMapRange(pkg *Package, body *ast.BlockStmt, pos token.Pos) bool {
	inside := false
	ast.Inspect(body, func(n ast.Node) bool {
		if inside {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if ok && isMapType(pkg.Info, rs.X) && rs.Pos() <= pos && pos < rs.End() {
			inside = true
			return false
		}
		return true
	})
	return inside
}

// orderSensitiveBody reports whether ranging in nondeterministic order
// with this body does order-sensitive work: emits output, schedules
// events, appends to an escaping slice, or accumulates state from the
// elements. Used both for ranging map-ordered slices (ordertaint) and
// for parameter-sink propagation.
func orderSensitiveBody(pkg *Package, rs *ast.RangeStmt, table SummaryTable) (string, bool) {
	lo, hi := rs.Pos(), rs.End()
	var desc string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if d, ok := orderSinkCall(pkg.Info, st); ok {
				desc = d
				return false
			}
			if cs := table.Lookup(calleeFunc(pkg.Info, st)); cs != nil {
				for j := range cs.SinkParams {
					if j < len(st.Args) {
						desc = cs.SinkParams[j]
						return false
					}
				}
			}
		case *ast.AssignStmt:
			switch st.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if obj := rootObj(pkg.Info, st.Lhs[0]); declaredOutside(obj, lo, hi) {
					desc = "accumulation into " + obj.Name()
					return false
				}
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range st.Rhs {
					if i >= len(st.Lhs) || !isBuiltinAppend(pkg.Info, rhs) {
						continue
					}
					if obj := rootObj(pkg.Info, st.Lhs[i]); declaredOutside(obj, lo, hi) {
						desc = "append to " + obj.Name()
						return false
					}
				}
			}
		}
		return true
	})
	return desc, desc != ""
}

// ConstValue returns the constant value of e when the type checker
// folded it to one, else nil. Used by seedtaint to spot literal seeds.
func ConstValue(info *types.Info, e ast.Expr) constant.Value {
	if tv, ok := info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// inspectSkippingFuncLits walks n, invoking f on every node but not
// descending into function literals (their effects are their own).
func inspectSkippingFuncLits(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}
