package analysis

import (
	"go/ast"
)

// SeedFlow enforces the seed-derivation layering: internal/rng defines
// the generator and internal/scenario owns how seeds are derived and
// salted per experiment cell. Everywhere else, constructing a generator
// from a literal seed — or reaching for math/rand's sources at all —
// creates a stream that is not paired with the scenario's seed schedule,
// so baseline/treatment runs stop sharing randomness and paired deltas
// turn into noise.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "flag literal rng seeds and ad-hoc math/rand sources outside internal/rng and internal/scenario",
	Why: "paired ablations (failures on/off, outages on/off) rely on both runs drawing " +
		"the same per-task randomness from scenario-derived seeds. A literal or ad-hoc " +
		"seed creates an unpaired stream and silently decorrelates the comparison.",
	Scope: func(pkgPath string) bool { return !isSeedOwner(pkgPath) },
	Run:   runSeedFlow,
}

func runSeedFlow(pass *Pass) {
	rngPath := ModulePath + "/internal/rng"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
				if name, ok := isPkgLevelCall(pass.Info, call, randPkg,
					"New", "NewSource", "Seed", "NewPCG", "NewChaCha8", "NewZipf"); ok {
					pass.Reportf(call.Pos(),
						"ad-hoc %s.%s: seed derivation belongs to internal/rng + internal/scenario (scenario-salted splitmix64 streams)", randPkg, name)
				}
			}
			if _, ok := isPkgLevelCall(pass.Info, call, rngPath, "New"); ok && len(call.Args) == 1 {
				if tv, found := pass.Info.Types[call.Args[0]]; found && tv.Value != nil {
					pass.Reportf(call.Pos(),
						"rng.New with a literal seed: constant seeds bypass scenario salting and break seed pairing; derive the seed from the scenario (Spec seeds / rng.Fork)")
				}
			}
			return true
		})
	}
}
