// Package fx is a wfdirective fixture (analyzed as
// ec2wfsim/internal/trace/fx): the suppression comments themselves are
// under test.
package fx

import "time"

// A well-formed directive: known analyzer, non-empty reason.
func valid() time.Time {
	//wfvet:ignore norawrand cosmetic timestamp in a log banner
	return time.Now()
}

//wfvet:ignore // want `malformed wfvet:ignore`

//wfvet:ignore nosuchrule because reasons // want `unknown analyzer "nosuchrule"`

//wfvet:ignore floataccum // want `wfvet:ignore floataccum without a reason`

// Even wfdirective itself can be silenced, e.g. to keep a deliberately
// broken directive around as documentation:
//wfvet:ignore wfdirective the next line is a doc example, not a live directive
//wfvet:ignore nosuchrule kept verbatim from the style guide
