// Package fx is the floataccum clean fixture: reductions in
// deterministic orders only.
package fx

import "sort"

// Sum over sorted keys: the reduction order is pinned, bit-stable.
func Sum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}
