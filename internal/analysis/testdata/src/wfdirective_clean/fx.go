// Package fx is the wfdirective clean fixture: every directive names a
// registered analyzer and justifies itself.
package fx

import "time"

func banner() time.Time {
	//wfvet:ignore norawrand startup banner timestamp, outside any simulated run
	return time.Now()
}

//wfvet:ignore maporder keys are sorted by the sole caller (see Keys in report.go)
var _ = time.Second
