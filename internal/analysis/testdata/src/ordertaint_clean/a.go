// Package fx is the ordertaint clean fixture (analyzed as
// ec2wfsim/internal/units/fx): the sanctioned shapes of the same
// cross-call patterns.
package fx

import (
	"fmt"
	"sort"
)

// sortedKeys sorts before returning, so its result carries no map
// order and callers may print or fold it freely.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func emit(xs []string) {
	fmt.Println(xs)
}

func printKeys(m map[string]int) {
	emit(sortedKeys(m))
}

func sumKeyLens(m map[string]int) int {
	n := 0
	for _, k := range sortedKeys(m) {
		n += len(k)
	}
	return n
}

// Order-insensitive folds over a map need no sort at all.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
