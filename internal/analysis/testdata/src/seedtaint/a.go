// Package fx is a seedtaint fixture (analyzed as
// ec2wfsim/internal/wms/fx — a simulation package that is not a seed
// owner): seed material laundered through call boundaries and struct
// fields. Direct rng.New literals are seedflow's domain, not ours.
package fx

import (
	"time"

	"ec2wfsim/internal/rng"
)

// Options carries a *Seed field of a simulation-package struct.
type Options struct {
	FailureSeed uint64
}

// newStream forwards its argument to rng.New: callers handing it a
// constant are laundering a literal seed through a call boundary.
func newStream(seed uint64) *rng.RNG {
	return rng.New(seed)
}

func nowSeed() uint64 {
	return uint64(time.Now().UnixNano())
}

func fixedStream() *rng.RNG {
	return newStream(1234) // want `literal seed 1234 flows through newStream into rng\.New`
}

func timeStream() *rng.RNG {
	return newStream(nowSeed()) // want `wall-clock-derived seed \(time\.Now\) flows through newStream into rng\.New`
}

// Zero is the module-wide "use the documented default" convention.
func defaultStream() *rng.RNG {
	return newStream(0)
}

// Seeds handed down from the scenario layer arrive as parameters: the
// sanctioned flow.
func derivedStream(seed uint64) *rng.RNG {
	return newStream(seed)
}

func fixedOptions() Options {
	return Options{FailureSeed: 7} // want `constant seed 7 assigned to fx\.FailureSeed`
}

func overrideSeed(o *Options) {
	o.FailureSeed = 99 // want `constant seed 99 assigned to fx\.FailureSeed`
}

// The zero-guarded default is the sanctioned fallback shape.
func fillDefault(o *Options) {
	if o.FailureSeed == 0 {
		o.FailureSeed = 7
	}
}

// An explicit zero in a literal means "use the default" and stays
// silent.
func zeroOptions() Options {
	return Options{FailureSeed: 0}
}

func calibrationStream() *rng.RNG {
	//wfvet:ignore seedtaint fixed calibration stream, never paired with a scenario run
	return newStream(7)
}
