// Package fx is the norawrand clean fixture: the same calls are legal
// outside the simulation packages (analyzed as ec2wfsim/internal/sweep/fx,
// the layer that owns real time and real concurrency).
package fx

import (
	"os"
	"time"
)

func Elapsed(start time.Time) time.Duration { return time.Since(start) }

func Stamp() time.Time { return time.Now() }

func Debug() bool { return os.Getenv("EC2WFSIM_DEBUG") != "" }
