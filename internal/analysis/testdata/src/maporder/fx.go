// Package fx is a maporder fixture (analyzed as ec2wfsim/internal/report/fx).
package fx

import (
	"fmt"
	"sort"
	"strings"

	"ec2wfsim/internal/sim"
)

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map`
	}
	return out
}

// The sanctioned idiom: collect, then sort before use.
func keysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// The sort may follow an enclosing outer loop (the AxisFields shape).
func keysOfAll(groups []map[string]int) []string {
	var out []string
	for _, g := range groups {
		for k := range g {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func fieldAppend(m map[string]int) []string {
	type acc struct{ names []string }
	var a acc
	for k := range m {
		a.names = append(a.names, k) // want `append to a inside range over map`
	}
	return a.names
}

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map`
	}
}

func build(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b\.WriteString inside range over map`
	}
	return b.String()
}

func totals(m map[string]float64) (int, int) {
	n := 0
	sum := 0
	for _, v := range m {
		n++               // counting is a function of len(m) only: fine
		sum += int(v) + 1 // want `integer total sum accumulated from map elements`
	}
	return n, sum
}

func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation into s`
	}
	return s
}

// Map-to-map rewrites commute; nothing observes the iteration order.
func remap(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func schedule(e *sim.Engine, wake map[string]float64) {
	for _, at := range wake {
		e.At(at, func() {}) // want `sim\.At called inside range over map`
	}
}

func suppressedEmit(m map[string]int) {
	for k := range m {
		//wfvet:ignore maporder debug dump on a best-effort path; ordering is cosmetic
		fmt.Println(k)
	}
}
