// Package fx is the maporder clean fixture (analyzed as
// ec2wfsim/internal/units/fx): the blessed shapes only.
package fx

import (
	"fmt"
	"sort"
)

func Keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Ranging over a slice is ordered; printing from it is fine.
func Print(m map[string]float64) {
	for _, k := range Keys(m) {
		fmt.Println(k, m[k])
	}
}

func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
