// Package fx is a walltime fixture (analyzed as
// ec2wfsim/internal/disk/fx, a simulation package): wall-clock and env
// reads reached through module-internal call chains. The direct
// time.Now / os.Getenv calls themselves are norawrand's domain — only
// the calls that reach them across a boundary are flagged here.
package fx

import (
	"os"
	"time"
)

func stampImpl() int64 { return time.Now().UnixNano() }

func hostStamp() int64 {
	return stampImpl() // want `call to stampImpl reaches the wall clock \(time\.Now\)`
}

func recordEvent() int64 {
	return hostStamp() // want `call to hostStamp reaches the wall clock \(fx\.stampImpl → time\.Now\)`
}

func configRoot() string { return os.Getenv("WF_ROOT") }

func mountRoot() string {
	return configRoot() // want `call to configRoot reads the environment \(os\.Getenv\)`
}

func bootBanner() int64 {
	//wfvet:ignore walltime boot-time banner stamp, emitted before the event loop starts
	return hostStamp()
}
