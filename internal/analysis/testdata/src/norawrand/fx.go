// Package fx is a norawrand fixture, analyzed as if it lived inside a
// simulation package (ec2wfsim/internal/wms/fx).
package fx

import (
	"math/rand" // want `import of math/rand in simulation package`
	"os"
	"time"
)

func clock() time.Duration {
	t := time.Now()          // want `call to time\.Now in simulation package`
	u := time.Until(t)       // want `call to time\.Until`
	return time.Since(t) + u // want `call to time\.Since`
}

func entropy() float64 {
	return rand.Float64()
}

func env() (string, bool) {
	_ = os.Getenv("EC2WFSIM_DEBUG") // want `call to os\.Getenv`
	return os.LookupEnv("HOME")     // want `call to os\.LookupEnv`
}

// Durations and time arithmetic that never read the wall clock are fine.
func double(d time.Duration) time.Duration { return 2 * d }

func suppressed() time.Time {
	//wfvet:ignore norawrand one-shot CLI banner timestamp, never feeds simulation state
	return time.Now()
}

func reasonlessIgnoreSuppressesNothing() time.Time {
	//wfvet:ignore norawrand
	return time.Now() // want `call to time\.Now`
}
