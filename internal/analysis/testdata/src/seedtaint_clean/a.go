// Package fx is the seedtaint clean fixture (analyzed as
// ec2wfsim/internal/storage/fx): seed material that always arrives from
// the caller, zero defaults, and the zero-guard fallback idiom.
package fx

import "ec2wfsim/internal/rng"

type Options struct {
	ChurnSeed uint64
}

func newStream(seed uint64) *rng.RNG {
	return rng.New(seed)
}

func derivedStream(seed uint64) *rng.RNG {
	return newStream(seed)
}

func defaultStream() *rng.RNG {
	return newStream(0)
}

func fill(o *Options, seed uint64) {
	o.ChurnSeed = seed
	if o.ChurnSeed == 0 {
		o.ChurnSeed = 7
	}
}

func options(seed uint64) Options {
	return Options{ChurnSeed: seed}
}
