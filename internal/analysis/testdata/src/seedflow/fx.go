// Package fx is a seedflow fixture (analyzed as ec2wfsim/internal/apps/fx,
// which is not a seed owner).
package fx

import (
	"math/rand"

	"ec2wfsim/internal/rng"
)

func adhoc() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `ad-hoc math/rand\.New` `ad-hoc math/rand\.NewSource`
}

func literalSeed() *rng.RNG {
	return rng.New(42) // want `rng\.New with a literal seed`
}

func constExprSeed() *rng.RNG {
	const salt = 40
	return rng.New(salt + 2) // want `rng\.New with a literal seed`
}

// Seeds that arrive from the scenario layer are the sanctioned flow.
func derived(seed uint64) *rng.RNG {
	return rng.New(seed)
}

func forked(r *rng.RNG) *rng.RNG {
	return r.Fork()
}

func suppressedLiteral() *rng.RNG {
	//wfvet:ignore seedflow fixed stream for a self-calibration table, never paired with a scenario
	return rng.New(7)
}
