// Package fx is the seedflow clean fixture, analyzed as
// ec2wfsim/internal/scenario/fx: the scenario layer owns seed
// derivation, so literal base seeds and salting are its prerogative.
package fx

import "ec2wfsim/internal/rng"

const baseSeed = 0x9e3779b97f4a7c15

func CellSeed(cellKey string, replicate uint64) uint64 {
	return rng.HashString(cellKey) ^ baseSeed ^ replicate
}

func CellRNG(cellKey string, replicate uint64) *rng.RNG {
	return rng.New(CellSeed(cellKey, replicate))
}

func Base() *rng.RNG { return rng.New(baseSeed) }
