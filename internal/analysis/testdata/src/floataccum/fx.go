// Package fx is a floataccum fixture (analyzed as ec2wfsim/internal/harness/fx).
package fx

func sumDirect(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation into total`
	}
	return total
}

func sumLonghand(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation into total`
	}
	return total
}

func product(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `floating-point accumulation into p`
	}
	return p
}

// Re-binning floats by a coarser key collides map keys, so the per-slot
// order still varies run to run.
func rebin(m map[string]float64, coarse func(string) string) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range m {
		out[coarse(k)] += v // want `floating-point accumulation into out`
	}
	return out
}

// Slice iteration is ordered: the classic reduction is fine there.
func sumSlice(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// Integer totals are exact under reordering; maporder owns that shape.
func countBig(m map[string]float64) int {
	n := 0
	for _, v := range m {
		if v > 1 {
			n++
		}
	}
	return n
}

// A value scoped to one iteration never observes cross-key order.
func scaleEach(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		scaled := v * 2
		out[k] = scaled
	}
	return out
}

func suppressedSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//wfvet:ignore floataccum diagnostic-only aggregate, compared with a tolerance
		total += v
	}
	return total
}
