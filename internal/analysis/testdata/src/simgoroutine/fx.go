// Package fx is a simgoroutine fixture (analyzed as
// ec2wfsim/internal/flow/fx, an event-loop package).
package fx

import (
	"sync" // want `import of sync in event-loop package`
	"time"
)

func fanOut(done chan struct{}) {
	go close(done) // want `bare goroutine in event-loop package`
}

func napAndLock(mu *sync.Mutex) {
	time.Sleep(time.Millisecond) // want `wall-clock sleep/timer in event-loop package`
	mu.Lock()
	defer mu.Unlock()
}

// Channels on their own are just data structures; the engine decides
// who runs. (The sim engine's own internals use them under a single
// runnable-goroutine discipline.)
func recv(c chan int) int { return <-c }

func suppressedGo(done chan struct{}) {
	//wfvet:ignore simgoroutine fixture stand-in for the engine's own park/resume goroutine handshake
	go close(done)
}
