// Package fx is the simgoroutine clean fixture, analyzed as
// ec2wfsim/internal/sweep/fx: the sweep layer is exactly where real
// goroutines, locks and wall-clock pacing belong.
package fx

import (
	"sync"
	"time"
)

func Fan(n int, work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

func Backoff(d time.Duration) { time.Sleep(d) }
