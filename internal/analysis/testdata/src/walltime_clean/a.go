// Package fx is the walltime clean fixture (analyzed as
// ec2wfsim/internal/disk/fx): call chains with no wall-clock or env
// effects anywhere.
package fx

func cost(n int) int { return n * 3 }

func total(ns []int) int {
	t := 0
	for _, n := range ns {
		t += cost(n)
	}
	return t
}

func doubleTotal(ns []int) int {
	return 2 * total(ns)
}
