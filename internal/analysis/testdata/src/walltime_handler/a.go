// Package fx is the walltime handler fixture (analyzed as
// ec2wfsim/internal/report/fx, outside the simulation packages):
// function values scheduled onto the sim engine whose bodies reach the
// wall clock or the environment. Handlers run under the deterministic
// clock no matter where they were written.
package fx

import (
	"os"
	"time"

	"ec2wfsim/internal/sim"
)

func hostNow() int64 { return time.Now().UnixNano() }

func readRegion() string { return os.Getenv("WF_REGION") }

func tick() { _ = time.Now() }

func safe() {}

func scheduleAll(e *sim.Engine) {
	e.At(5, tick)       // want `handler tick scheduled onto the sim engine reaches the wall clock \(time\.Now\)`
	e.After(1, func() { // want `handler scheduled onto the sim engine reaches the wall clock \(time\.Now\)`
		_ = hostNow()
	})
	e.At(2, func() { // want `handler scheduled onto the sim engine reaches the environment \(os\.Getenv\)`
		_ = readRegion()
	})
	e.At(3, safe)
}
