// Package fx is an ordertaint fixture (analyzed as
// ec2wfsim/internal/report/fx): map-iteration order crossing a call
// boundary before reaching a sink. Every finding here needs two
// functions — single-function shapes are maporder's domain.
package fx

import (
	"fmt"
	"sort"
)

// keys returns the map's keys in iteration order: its result carries
// map order out across the call boundary.
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// emit delivers its argument's order to printed output: its parameter
// is a sink for whatever order the caller hands it.
func emit(xs []string) {
	fmt.Println(xs)
}

func printKeys(m map[string]int) {
	ks := keys(m)
	fmt.Println(ks) // want `map-ordered value \(fx\.keys \(built while ranging a map at line \d+\)\) reaches fmt\.Println output`
}

func sumKeyLens(m map[string]int) int {
	n := 0
	for _, k := range keys(m) { // want `range over map-ordered result of fx\.keys \(built while ranging a map at line \d+\) reaches accumulation into n`
		n += len(k)
	}
	return n
}

func handOff(m map[string]int) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	emit(ks) // want `map-ordered value \(built while ranging a map at line \d+\) flows into fmt\.Println output of emit`
}

// The collect-then-sort idiom neutralizes the taint.
func printSorted(m map[string]int) {
	ks := keys(m)
	sort.Strings(ks)
	fmt.Println(ks)
}

func debugDump(m map[string]int) {
	ks := keys(m)
	//wfvet:ignore ordertaint debug helper, output never compared across runs
	fmt.Println(ks)
}
