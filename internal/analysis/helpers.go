package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// calleeFunc resolves a call expression to the function or method
// object it invokes, or nil when the callee is not a named function
// (function literals, conversions, method values through interfaces
// still resolve — interface methods return the interface's *types.Func).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgLevelCall reports whether call invokes a package-level function
// named one of names from the package with import path pkgPath.
func isPkgLevelCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", false
	}
	for _, n := range names {
		if fn.Name() == n {
			return n, true
		}
	}
	return "", false
}

// methodRecvPkg returns the import path of the package defining the
// method invoked by call, or "" when call is not a method call.
func methodRecvPkg(info *types.Info, call *ast.CallExpr) (pkgPath, method string) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// isMapType reports whether e's type is (or has underlying) map.
func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// basicKind returns the basic-type kind of e after stripping named
// types, or types.Invalid when e's type is not basic.
func basicKind(info *types.Info, e ast.Expr) types.BasicKind {
	t := info.TypeOf(e)
	if t == nil {
		return types.Invalid
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return types.Invalid
	}
	return b.Kind()
}

// isFloat reports whether kind is a floating-point or complex kind
// (complex arithmetic inherits float non-associativity).
func isFloat(k types.BasicKind) bool {
	switch k {
	case types.Float32, types.Float64, types.Complex64, types.Complex128,
		types.UntypedFloat, types.UntypedComplex:
		return true
	}
	return false
}

// isInteger reports whether kind is an integer kind.
func isInteger(k types.BasicKind) bool {
	switch k {
	case types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
		types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64,
		types.Uintptr, types.UntypedInt:
		return true
	}
	return false
}

// rootObj returns the variable at the root of an lvalue expression:
// the x in x, x.F, x.F[i], (*x).F, etc. It returns nil for
// expressions not rooted in a variable (function calls, literals).
func rootObj(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj, _ := info.Uses[v].(*types.Var)
			if obj == nil {
				obj, _ = info.Defs[v].(*types.Var)
			}
			return obj
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj is declared outside the source
// range [lo, hi] — i.e. the loop body does not own it, so whatever the
// loop does to it escapes the iteration.
func declaredOutside(obj *types.Var, lo, hi token.Pos) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() < lo || obj.Pos() > hi
}

// exprUsesObj reports whether any identifier inside e resolves to obj.
func exprUsesObj(info *types.Info, e ast.Expr, obj *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// importsOf returns the import specs of file whose path is in paths.
func importsOf(file *ast.File, paths ...string) []*ast.ImportSpec {
	var out []*ast.ImportSpec
	for _, imp := range file.Imports {
		p := importPath(imp)
		for _, want := range paths {
			if p == want {
				out = append(out, imp)
			}
		}
	}
	return out
}

// importPath returns the unquoted import path of spec.
func importPath(spec *ast.ImportSpec) string {
	p := spec.Path.Value
	if len(p) >= 2 && p[0] == '"' {
		p = p[1 : len(p)-1]
	}
	return p
}
