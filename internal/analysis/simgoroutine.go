package analysis

import (
	"go/ast"
)

// SimGoroutine keeps host-scheduler concurrency out of the event-loop
// simulation packages. Inside the engine, "concurrency" means simulated
// processes multiplexed over the deterministic event queue (sim.Engine.Go,
// Proc.Sleep); a bare goroutine, a wall-clock sleep, or a sync primitive
// makes progress depend on the Go scheduler and the host, which no seed
// controls. Real parallelism lives one layer up, in internal/sweep,
// which runs whole (internally serial) simulations side by side.
var SimGoroutine = &Analyzer{
	Name: "simgoroutine",
	Doc:  "forbid bare goroutines, time.Sleep and sync primitives in event-loop simulation packages",
	Why: "the engine owns all interleaving: every wakeup flows through the event queue " +
		"so that replaying a scenario replays the exact schedule. Bare goroutines and " +
		"locks reintroduce host-scheduler ordering; parallelism belongs to internal/sweep.",
	Scope: inSimPackage,
	Run:   runSimGoroutine,
}

func runSimGoroutine(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range importsOf(f, "sync", "sync/atomic") {
			pass.Reportf(imp.Pos(),
				"import of %s in event-loop package: lock/wakeup order depends on the host scheduler; use the engine's primitives (sim.Engine, Proc) or move concurrency to internal/sweep", importPath(imp))
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(st.Pos(),
					"bare goroutine in event-loop package: host-scheduler interleaving is outside the event queue; use sim.Engine.Go / GoDaemon")
			case *ast.CallExpr:
				if _, ok := isPkgLevelCall(pass.Info, st, "time", "Sleep", "After", "Tick", "NewTimer", "NewTicker"); ok {
					pass.Reportf(st.Pos(),
						"wall-clock sleep/timer in event-loop package: simulated time must advance via Proc.Sleep / Engine.At")
				}
			}
			return true
		})
	}
}
