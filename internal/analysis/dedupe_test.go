package analysis

import (
	"go/token"
	"testing"
)

// TestDedupeIdenticalDiagnostics covers the duplicate-collapse in
// RunPackage: two analyzers (or one analyzer via two code paths)
// reporting the same message at the same position must surface once.
func TestDedupeIdenticalDiagnostics(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("a.go", -1, 100)
	f.SetLines([]int{0, 50})
	pos, other := f.Pos(10), f.Pos(60)

	ds := []Diagnostic{
		{Pos: pos, Message: "dup"},
		{Pos: pos, Message: "dup"},
		{Pos: pos, Message: "different message"},
		{Pos: other, Message: "dup"}, // same message, different position
	}
	out := dedupe(fset, ds)
	if len(out) != 3 {
		t.Fatalf("dedupe kept %d diagnostics, want 3: %+v", len(out), out)
	}
	if out[0].Pos != pos || out[0].Message != "dup" ||
		out[1].Message != "different message" || out[2].Pos != other {
		t.Errorf("dedupe reordered or dropped the wrong entries: %+v", out)
	}
}
