package analysis

import (
	"go/ast"
)

// NoRawRand forbids wall-clock time, raw math/rand and environment
// probing inside the event-loop simulation packages and the
// deterministic-output packages (internal/resultcache): both feed
// byte-compared artifacts, so neither may branch on host state.
//
// The simulator's clock is the engine's event queue and its only
// sanctioned entropy is internal/rng (a splitmix64 stream that is
// stable across Go releases, unlike math/rand's). Wall-clock reads and
// env-dependent branches make two runs of the same scenario diverge,
// which silently breaks golden grids and paired baseline comparisons.
var NoRawRand = &Analyzer{
	Name: "norawrand",
	Doc:  "forbid math/rand, time.Now/Since/Until and os env reads in simulation packages",
	Why: "sim results must be bit-identical for a given (scenario, seed): goldens, " +
		"paired ablation baselines and parallel sweeps all compare runs byte for byte. " +
		"Randomness must flow through internal/rng (stream-stable across Go versions) " +
		"and time through the sim clock (sim.Engine / Proc.Now).",
	Scope: inDeterministicPackage,
	Run:   runNoRawRand,
}

func runNoRawRand(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range importsOf(f, "math/rand", "math/rand/v2") {
			pass.Reportf(imp.Pos(),
				"import of %s in simulation package: its stream is not stable across Go releases; use internal/rng", importPath(imp))
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := isPkgLevelCall(pass.Info, call, "time", "Now", "Since", "Until"); ok {
				pass.Reportf(call.Pos(),
					"call to time.%s in simulation package: wall-clock time is nondeterministic; use the sim clock (Proc.Now / Engine time)", name)
			}
			if name, ok := isPkgLevelCall(pass.Info, call, "os", "Getenv", "LookupEnv", "Environ"); ok {
				pass.Reportf(call.Pos(),
					"call to os.%s in simulation package: environment-dependent behavior breaks run pairing; thread configuration through scenario options", name)
			}
			return true
		})
	}
}
