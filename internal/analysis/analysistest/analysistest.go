// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against `// want "regexp"` annotations, in the
// style of golang.org/x/tools/go/analysis/analysistest but built on the
// repo's own framework and loader.
//
// Fixture layout: testdata/src/<fixture>/*.go relative to the calling
// test's package directory. A line expecting diagnostics carries a
// trailing comment with one double-quoted regexp per expected finding:
//
//	total += v // want `floating-point accumulation`
//	rand.NewSource(1) // want "ad-hoc" "second finding on this line"
//
// Both "..." and `...` quoting are accepted. Fixtures are type-checked
// for real (imports resolved through `go list -export`), so they must
// compile; suppressed findings are filtered exactly as in production,
// letting fixtures exercise //wfvet:ignore behavior.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/callgraph"
	"ec2wfsim/internal/analysis/driver"
)

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run analyzes testdata/src/<fixture> as if it were the package with
// import path asImportPath (scope rules are path-based, so fixtures
// masquerade as real module packages) and asserts its diagnostics match
// the fixture's `// want` annotations exactly.
func Run(t *testing.T, a *analysis.Analyzer, fixture, asImportPath string) {
	t.Helper()
	pkg, err := Load(filepath.Join("testdata", "src", fixture), asImportPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags := analysis.RunPackage(pkg, []*analysis.Analyzer{a})

	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatalf("parsing want annotations in %s: %v", fixture, err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !consume(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// Load parses and type-checks every .go file in dir as one package with
// the given import path, then computes the package's interprocedural
// summaries over its own callgraph — so fixtures exercise the
// cross-function rules exactly as the drivers do. It is exported for
// the callgraph package's own tests, which need the type-checked view
// without running any analyzer.
func Load(dir, asImportPath string) (*analysis.Package, error) {
	pkg, err := loadFixture(dir, asImportPath)
	if err != nil {
		return nil, err
	}
	pkg.Summaries = callgraph.Summarize([]*analysis.Package{pkg}, nil)
	return pkg, nil
}

// loadFixture parses and type-checks every .go file in dir as one
// package with the given import path.
func loadFixture(dir, asImportPath string) (*analysis.Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p != "" && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	exports, err := driver.LoadExports(".", paths)
	if err != nil {
		return nil, err
	}
	imp := driver.ExportImporter(fset, exports)
	pkg, err := driver.TypeCheckFiles(fset, imp, asImportPath, files)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// wantRe matches one quoted regexp in a want comment: "..." or `...`.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWants extracts every `// want` annotation from the fixture.
func parseWants(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := c.Text[idx+len("// want "):]
				quoted := wantRe.FindAllString(rest, -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// consume marks the first unmet expectation matching (file, line,
// message) as met.
func consume(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.met && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}

// FixtureExists reports whether the fixture directory contains Go
// files; used by the rule-catalog completeness test.
func FixtureExists(fixture string) bool {
	names, err := filepath.Glob(filepath.Join("testdata", "src", fixture, "*.go"))
	return err == nil && len(names) > 0
}

// FixtureHasWants reports whether any fixture file carries a `// want`
// annotation.
func FixtureHasWants(fixture string) (bool, error) {
	names, err := filepath.Glob(filepath.Join("testdata", "src", fixture, "*.go"))
	if err != nil {
		return false, err
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return false, err
		}
		if strings.Contains(string(data), "// want ") {
			return true, nil
		}
	}
	return false, nil
}
