package analysis_test

import (
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/analysistest"
)

func TestSeedTaint(t *testing.T) {
	analysistest.Run(t, analysis.SeedTaint, "seedtaint", "ec2wfsim/internal/wms/fx")
}

func TestSeedTaintClean(t *testing.T) {
	analysistest.Run(t, analysis.SeedTaint, "seedtaint_clean", "ec2wfsim/internal/storage/fx")
}
