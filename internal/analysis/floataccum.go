package analysis

import (
	"go/ast"
	"go/token"
)

// FloatAccum flags order-sensitive floating-point reduction over map
// iteration. Float addition and multiplication are commutative but not
// associative: summing the same values in a different order changes the
// rounding of every intermediate result, so a total accumulated in map
// order differs in its low bits from run to run — enough to break
// bit-identical goldens while passing any tolerance eyeballing.
var FloatAccum = &Analyzer{
	Name: "floataccum",
	Doc:  "flag floating-point accumulation in nondeterministic (map) iteration order",
	Why: "float reduction is not associative: accumulating in map order perturbs " +
		"rounding run to run, so makespans/costs summed that way are not bit-stable. " +
		"Iterate sorted keys (or reduce into per-key slots and combine in a fixed order).",
	Run: runFloatAccum,
}

func runFloatAccum(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(pass.Info, rs.X) {
				return true
			}
			checkFloatAccum(pass, rs)
			return true
		})
	}
}

func checkFloatAccum(pass *Pass, rs *ast.RangeStmt) {
	lo, hi := rs.Pos(), rs.End()
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			reportFloatTarget(pass, st, st.Lhs[0], lo, hi)
		case token.ASSIGN:
			// x = x + v (and friends) — a reduction spelled longhand.
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				obj := rootObj(pass.Info, lhs)
				if obj == nil || !exprUsesObj(pass.Info, st.Rhs[i], obj) {
					continue
				}
				reportFloatTarget(pass, st, lhs, lo, hi)
			}
		}
		return true
	})
}

func reportFloatTarget(pass *Pass, st *ast.AssignStmt, lhs ast.Expr, lo, hi token.Pos) {
	if !isFloat(basicKind(pass.Info, lhs)) {
		return
	}
	obj := rootObj(pass.Info, lhs)
	if !declaredOutside(obj, lo, hi) {
		return
	}
	pass.Reportf(st.Pos(),
		"floating-point accumulation into %s in map iteration order: float reduction is not associative, so the total's rounding varies per run; iterate sorted keys", obj.Name())
}
