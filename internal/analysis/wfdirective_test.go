package analysis_test

import (
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/analysistest"
)

func TestWfDirective(t *testing.T) {
	analysistest.Run(t, analysis.WfDirective, "wfdirective", "ec2wfsim/internal/trace/fx")
}

func TestWfDirectiveClean(t *testing.T) {
	analysistest.Run(t, analysis.WfDirective, "wfdirective_clean", "ec2wfsim/internal/trace/fx")
}
