package analysis_test

import (
	"errors"
	"strings"
	"testing"

	"ec2wfsim/internal/analysis"
)

func TestSelectRulesAll(t *testing.T) {
	rules, err := analysis.SelectRules("")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != len(analysis.Rules()) {
		t.Errorf("empty spec selected %d rules, want the full catalog of %d", len(rules), len(analysis.Rules()))
	}
}

func TestSelectRulesSubsetKeepsCatalogOrder(t *testing.T) {
	// Spec order is walltime first, but the catalog orders seedtaint
	// before walltime; selection follows the catalog.
	rules, err := analysis.SelectRules(" walltime , seedtaint ,seedtaint")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Name != "seedtaint" || rules[1].Name != "walltime" {
		names := make([]string, len(rules))
		for i, a := range rules {
			names[i] = a.Name
		}
		t.Errorf("SelectRules = %v, want [seedtaint walltime]", names)
	}
}

func TestSelectRulesUnknownName(t *testing.T) {
	_, err := analysis.SelectRules("walltime,wibble")
	if err == nil {
		t.Fatal("expected an error for an unknown rule name")
	}
	var unknown *analysis.UnknownRuleError
	if !errors.As(err, &unknown) {
		t.Fatalf("error type = %T, want *UnknownRuleError", err)
	}
	if unknown.Name != "wibble" {
		t.Errorf("UnknownRuleError.Name = %q, want wibble", unknown.Name)
	}
	// The message must teach the valid vocabulary, mirroring
	// scenario.UnknownNameError.
	for _, name := range analysis.RuleNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid rule %q", err, name)
		}
	}
}
