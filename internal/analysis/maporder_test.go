package analysis_test

import (
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder", "ec2wfsim/internal/report/fx")
}

func TestMapOrderClean(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder_clean", "ec2wfsim/internal/units/fx")
}
