package analysis_test

import (
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/analysistest"
)

func TestNoRawRand(t *testing.T) {
	analysistest.Run(t, analysis.NoRawRand, "norawrand", "ec2wfsim/internal/wms/fx")
}

func TestNoRawRandClean(t *testing.T) {
	// Outside the sim packages the same constructs are fine.
	analysistest.Run(t, analysis.NoRawRand, "norawrand_clean", "ec2wfsim/internal/sweep/fx")
}
