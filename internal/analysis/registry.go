package analysis

import (
	"fmt"
	"strings"
)

// Rules returns the full determinism-lint suite in catalog order. The
// table is the single registration point: cmd/wfvet runs exactly these
// analyzers, `wfvet -rules` prints them, and TestRuleCatalogComplete
// asserts each one ships docs, fixtures and a suppression path.
func Rules() []*Analyzer {
	return []*Analyzer{
		NoRawRand,
		MapOrder,
		FloatAccum,
		SeedFlow,
		SimGoroutine,
		WfDirective,
		OrderTaint,
		SeedTaint,
		WallTime,
	}
}

// RuleNames returns the registered analyzer names in catalog order.
func RuleNames() []string {
	rules := Rules()
	names := make([]string, len(rules))
	for i, a := range rules {
		names[i] = a.Name
	}
	return names
}

// UnknownRuleError reports a rule name that is not in the catalog. It
// is a typed error (mirroring scenario.UnknownNameError) so cmd/wfvet
// can treat a typo as a usage failure; its message always lists the
// valid names.
type UnknownRuleError struct {
	Name  string   // the unresolvable rule name
	Valid []string // the catalog it was checked against
}

func (e *UnknownRuleError) Error() string {
	return fmt.Sprintf("wfvet: unknown rule %q (valid: %s)",
		e.Name, strings.Join(e.Valid, ", "))
}

// SelectRules resolves a comma-separated rule-name list against the
// catalog, preserving catalog order and ignoring empty elements and
// duplicates. An empty spec selects every rule; an unknown name returns
// an *UnknownRuleError.
func SelectRules(spec string) ([]*Analyzer, error) {
	rules := Rules()
	if strings.TrimSpace(spec) == "" {
		return rules, nil
	}
	byName := make(map[string]*Analyzer, len(rules))
	for _, a := range rules {
		byName[a.Name] = a
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if byName[name] == nil {
			return nil, &UnknownRuleError{Name: name, Valid: RuleNames()}
		}
		want[name] = true
	}
	var out []*Analyzer
	for _, a := range rules {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}
