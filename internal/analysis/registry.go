package analysis

// Rules returns the full determinism-lint suite in catalog order. The
// table is the single registration point: cmd/wfvet runs exactly these
// analyzers, `wfvet -rules` prints them, and TestRuleCatalogComplete
// asserts each one ships docs, fixtures and a suppression path.
func Rules() []*Analyzer {
	return []*Analyzer{
		NoRawRand,
		MapOrder,
		FloatAccum,
		SeedFlow,
		SimGoroutine,
		WfDirective,
	}
}

// RuleNames returns the registered analyzer names in catalog order.
func RuleNames() []string {
	rules := Rules()
	names := make([]string, len(rules))
	for i, a := range rules {
		names[i] = a.Name
	}
	return names
}
