package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SeedTaint is the interprocedural companion of seedflow: it follows
// seed material across call boundaries through the SeedParams entries of
// function summaries. Where seedflow flags `rng.New(0x1234)` at the
// construction site, seedtaint flags the laundered versions — a literal
// passed to a module helper whose parameter (transitively) reaches
// rng.New or a *Seed field, a time-derived value used the same way, and
// direct constant writes to *Seed fields of simulation-package options.
//
// Division of labor: seedflow owns direct rng.New calls; seedtaint only
// fires when the seed travels through at least one module function, or
// is planted in a *Seed struct field. The idiomatic zero-guard default
//
//	if opts.FailureSeed == 0 { opts.FailureSeed = DefaultFailureSeed }
//
// is exempt: it fills a documented fallback only when the scenario did
// not supply a seed, which keeps pairing intact for every configured run.
var SeedTaint = &Analyzer{
	Name: "seedtaint",
	Doc:  "flag literal or wall-clock seeds flowing into rng/sim entry points across calls",
	Why: "seed pairing survives only when every stream derives from the scenario's seed " +
		"schedule. A constant or time-derived seed smuggled through a helper or planted in " +
		"an options struct decorrelates baseline/treatment runs exactly like a literal " +
		"rng.New seed — but no single-function rule can see it.",
	Scope: func(pkgPath string) bool { return !isSeedOwner(pkgPath) },
	Run:   runSeedTaint,
}

func runSeedTaint(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			guards := zeroGuardRanges(pass.Info, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.CallExpr:
					checkSeedTaintCall(pass, st)
				case *ast.AssignStmt:
					checkSeedFieldAssign(pass, st, guards)
				case *ast.CompositeLit:
					checkSeedFieldLit(pass, st)
				}
				return true
			})
		}
	}
}

// checkSeedTaintCall flags constant or wall-clock-derived arguments in
// the seed-parameter positions of module-internal callees. Extern
// callees (rng.New itself) are seedflow's domain and skipped — a
// summary retrieved from the table proper means the callee is in the
// analyzed module, i.e. the seed crossed at least one call boundary.
func checkSeedTaintCall(pass *Pass, call *ast.CallExpr) {
	callee := calleeFunc(pass.Info, call)
	if callee == nil {
		return
	}
	// Handing seed material to the scenario layer is how a run is
	// configured — a literal master seed there is sanctioned, and
	// scenario's own derivation helpers necessarily carry SeedParams.
	if isSeedDeriver(pkgPathOf(callee)) {
		return
	}
	cs := pass.Summaries[FuncSym(callee)]
	if cs == nil || len(cs.SeedParams) == 0 {
		return
	}
	for j, why := range cs.SeedParams {
		if j >= len(call.Args) {
			continue
		}
		arg := call.Args[j]
		if v := ConstValue(pass.Info, arg); v != nil {
			// Zero is the module-wide "use the documented default"
			// convention (mirrored by the zero-guard field exemption).
			if v.ExactString() == "0" {
				continue
			}
			pass.Reportf(arg.Pos(),
				"literal seed %s flows through %s into %s: constant seeds bypass scenario salting and break pairing; derive from the scenario seed schedule",
				v.ExactString(), callee.Name(), why)
			continue
		}
		if wc := wallClockOf(pass, arg); wc != "" {
			pass.Reportf(arg.Pos(),
				"wall-clock-derived seed (%s) flows through %s into %s: time-based seeds make runs irreproducible; derive from the scenario seed schedule",
				wc, callee.Name(), why)
		}
	}
}

// wallClockOf reports the wall-clock chain when e is (rooted in) a call
// whose callee can read the wall clock.
func wallClockOf(pass *Pass, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	cs := pass.Summaries.Lookup(calleeFunc(pass.Info, call))
	if cs == nil || cs.WallClock == "" {
		return ""
	}
	return cs.WallClock
}

// checkSeedFieldAssign flags constant writes to *Seed fields of
// simulation-package structs outside a zero-guard.
func checkSeedFieldAssign(pass *Pass, st *ast.AssignStmt, guards []guardRange) {
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		field, ok := seedFieldSel(pass.Info, lhs)
		if !ok {
			continue
		}
		v := ConstValue(pass.Info, st.Rhs[i])
		if v == nil {
			continue
		}
		if guardedZeroDefault(guards, st.Pos(), field) {
			continue
		}
		pass.Reportf(st.Pos(),
			"constant seed %s assigned to %s: fixed seeds bypass scenario salting; take the seed from scenario options (a zero-guarded default `if x.%s == 0` is the sanctioned fallback shape)",
			v.ExactString(), field, fieldBase(field))
	}
}

// checkSeedFieldLit flags non-zero constant seeds planted in composite
// literals (`wms.Options{FailureSeed: 0x1234}`). An explicit zero is the
// "use the default" convention and stays silent.
func checkSeedFieldLit(pass *Pass, lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		field, ok := seedFieldKey(pass.Info, lit, kv)
		if !ok {
			continue
		}
		v := ConstValue(pass.Info, kv.Value)
		if v == nil || v.ExactString() == "0" {
			continue
		}
		pass.Reportf(kv.Pos(),
			"constant seed %s assigned to %s: fixed seeds bypass scenario salting; take the seed from scenario options",
			v.ExactString(), field)
	}
}

// guardRange records the body span of one `if x.FooSeed == 0 { ... }`
// statement and which field it guards.
type guardRange struct {
	field  string
	lo, hi token.Pos
}

// zeroGuardRanges collects the zero-guard if-statements in body: a
// condition comparing a seed field against a constant (the documented
// default-fallback idiom). Assignments to the same field inside the
// guarded block are exempt from the constant-seed check.
func zeroGuardRanges(info *types.Info, body *ast.BlockStmt) []guardRange {
	var out []guardRange
	ast.Inspect(body, func(n ast.Node) bool {
		ifst, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		be, ok := ast.Unparen(ifst.Cond).(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL {
			return true
		}
		var fieldExpr ast.Expr
		switch {
		case isZeroConst(info, be.Y):
			fieldExpr = be.X
		case isZeroConst(info, be.X):
			fieldExpr = be.Y
		default:
			return true
		}
		if field, ok := seedFieldSel(info, fieldExpr); ok {
			out = append(out, guardRange{field: field, lo: ifst.Body.Pos(), hi: ifst.Body.End()})
		}
		return true
	})
	return out
}

func isZeroConst(info *types.Info, e ast.Expr) bool {
	v := ConstValue(info, e)
	return v != nil && v.ExactString() == "0"
}

// guardedZeroDefault reports whether pos falls inside the guarded block
// of a zero-guard for field.
func guardedZeroDefault(guards []guardRange, pos token.Pos, field string) bool {
	for _, g := range guards {
		if g.field == field && g.lo <= pos && pos < g.hi {
			return true
		}
	}
	return false
}

// fieldBase strips the "pkg." qualifier from a seed-field description
// for use in the suggested guard snippet.
func fieldBase(field string) string {
	for i := 0; i < len(field); i++ {
		if field[i] == '.' {
			return field[i+1:]
		}
	}
	return field
}
