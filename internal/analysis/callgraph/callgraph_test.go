package callgraph_test

import (
	"path/filepath"
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/analysistest"
	"ec2wfsim/internal/analysis/callgraph"
)

const fxPath = "ec2wfsim/internal/disk/fx"

func loadGraphFixture(t *testing.T) (*callgraph.Graph, analysis.SummaryTable) {
	t.Helper()
	pkg, err := analysistest.Load(filepath.Join("testdata", "src", "graph"), fxPath)
	if err != nil {
		t.Fatalf("loading graph fixture: %v", err)
	}
	g := callgraph.Build([]*analysis.Package{pkg})
	return g, callgraph.SummarizeGraph(g, nil)
}

// hasEdge reports whether the graph contains an edge caller→callee of
// the given kind, with symbols matched exactly.
func hasEdge(g *callgraph.Graph, caller, callee string, kind callgraph.EdgeKind) bool {
	n := g.Nodes[caller]
	if n == nil {
		return false
	}
	for _, e := range n.Out {
		if e.Callee.Sym == callee && e.Kind == kind {
			return true
		}
	}
	return false
}

func TestStaticEdges(t *testing.T) {
	g, _ := loadGraphFixture(t)
	for _, tc := range [][2]string{
		{fxPath + ".direct", fxPath + ".helper"},
		{fxPath + ".indirect", fxPath + ".apply"},
		{"(" + fxPath + ".Remote).Fetch", fxPath + ".stamp"},
		{fxPath + ".stamp", "time.Now"},
		// A call through an interface also gets a static edge to the
		// interface method itself (the leaf the fixpoint attaches the
		// merged synthetic summary to).
		{fxPath + ".dispatch", "(" + fxPath + ".Backend).Fetch"},
	} {
		if !hasEdge(g, tc[0], tc[1], callgraph.Static) {
			t.Errorf("missing static edge %s → %s", tc[0], tc[1])
		}
	}
}

func TestInterfaceEdges(t *testing.T) {
	g, _ := loadGraphFixture(t)
	for _, impl := range []string{"(" + fxPath + ".Local).Fetch", "(" + fxPath + ".Remote).Fetch"} {
		if !hasEdge(g, fxPath+".dispatch", impl, callgraph.Interface) {
			t.Errorf("missing interface edge dispatch → %s", impl)
		}
	}
}

func TestFuncValueEdges(t *testing.T) {
	g, _ := loadGraphFixture(t)
	// helper is referenced as a value (apply(helper)), so it is a
	// candidate target of apply's dynamic call f().
	n := g.Nodes[fxPath+".helper"]
	if n == nil || !n.AddrTaken {
		t.Fatalf("helper should be address-taken")
	}
	if !hasEdge(g, fxPath+".apply", fxPath+".helper", callgraph.FuncValue) {
		t.Errorf("missing funcvalue edge apply → helper")
	}
	// stamp is never used as a value: no funcvalue edge may reach it.
	if hasEdge(g, fxPath+".apply", fxPath+".stamp", callgraph.FuncValue) {
		t.Errorf("unexpected funcvalue edge apply → stamp (not address-taken)")
	}
}

func TestSummaryFixpoint(t *testing.T) {
	_, table := loadGraphFixture(t)
	for sym, want := range map[string]string{
		fxPath + ".stamp":               "time.Now",
		"(" + fxPath + ".Remote).Fetch": "fx.stamp → time.Now",
		// The interface method's synthetic entry merges its
		// implementations; dispatch inherits it without repeating the
		// method name in the chain.
		"(" + fxPath + ".Backend).Fetch": "fx.Fetch → fx.stamp → time.Now",
		fxPath + ".dispatch":             "fx.Fetch → fx.stamp → time.Now",
	} {
		s := table[sym]
		if s == nil {
			t.Errorf("%s: no summary", sym)
			continue
		}
		if s.WallClock != want {
			t.Errorf("%s: WallClock = %q, want %q", sym, s.WallClock, want)
		}
	}
	// FuncValue edges carry no effects: apply and its callers stay
	// clean even though helper is reachable through f().
	for _, sym := range []string{fxPath + ".apply", fxPath + ".indirect", fxPath + ".direct"} {
		if s := table[sym]; s == nil || !s.Clean() {
			t.Errorf("%s: expected a clean summary, got %+v", sym, s)
		}
	}
}

func TestSeedParamPropagation(t *testing.T) {
	_, table := loadGraphFixture(t)
	s := table[fxPath+".seeded"]
	if s == nil {
		t.Fatalf("seeded: no summary")
	}
	if got := s.SeedParams[0]; got != "rng.New (the rng.New seed)" {
		t.Errorf("seeded: SeedParams[0] = %q, want the rng.New chain", got)
	}
}

func TestOwnSummariesExcludeClean(t *testing.T) {
	pkg, err := analysistest.Load(filepath.Join("testdata", "src", "graph"), fxPath)
	if err != nil {
		t.Fatal(err)
	}
	table := callgraph.Summarize([]*analysis.Package{pkg}, nil)
	own := callgraph.OwnSummaries(pkg, table)
	if _, ok := own[fxPath+".direct"]; ok {
		t.Errorf("OwnSummaries includes the clean function direct")
	}
	if _, ok := own[fxPath+".stamp"]; !ok {
		t.Errorf("OwnSummaries misses stamp's wall-clock effect")
	}
	// The facts file must carry the interface method's merged summary
	// so downstream packages see dispatch effects without our source.
	if s, ok := own["("+fxPath+".Backend).Fetch"]; !ok || s.WallClock == "" {
		t.Errorf("OwnSummaries misses the synthetic Backend.Fetch entry: %+v", s)
	}
}

func TestStatsAndReachability(t *testing.T) {
	g, _ := loadGraphFixture(t)
	st := g.Stats()
	if st.Functions != 9 {
		t.Errorf("Functions = %d, want 9", st.Functions)
	}
	if st.Interface != 2 {
		t.Errorf("Interface edges = %d, want 2", st.Interface)
	}
	if st.FuncValue != 1 {
		t.Errorf("FuncValue edges = %d, want 1", st.FuncValue)
	}
	// The fixture masquerades as a sim package, so everything it can
	// reach — including external leaves like time.Now — is in the sim
	// blast radius.
	reach := g.SimReachable()
	if !reach[g.Nodes["time.Now"]] {
		t.Errorf("time.Now not sim-reachable")
	}
	if st.SimReached != len(reach) {
		t.Errorf("Stats.SimReached = %d, want %d", st.SimReached, len(reach))
	}
}
