package callgraph

import (
	"go/ast"
	"go/types"
	"sort"

	"ec2wfsim/internal/analysis"
)

// maxRounds bounds the fixpoint against a (theoretically impossible)
// non-converging scan; every effect lattice here is finite and
// monotone, so real convergence takes a handful of rounds.
const maxRounds = 64

// Summarize computes function summaries for every in-view function of
// pkgs, merged over deps (summaries of already-analyzed packages, from
// vetx facts in vettool mode or nil in whole-program mode). The
// returned table contains deps plus every in-view function, plus
// synthetic entries for interface methods dispatched in view (carrying
// the union of their implementations' wall-clock/env effects).
//
// The computation is a fixpoint over the callgraph: each round
// re-scans the functions whose callees changed in the previous round
// (worklist over reverse edges), so mutually recursive functions
// stabilize and a deep chain of helpers converges in rounds
// proportional to its depth. FuncValue edges carry no effects — see
// the package comment.
func Summarize(pkgs []*analysis.Package, deps analysis.SummaryTable) analysis.SummaryTable {
	g := Build(pkgs)
	return SummarizeGraph(g, deps)
}

// SummarizeGraph is Summarize over an already-built graph.
func SummarizeGraph(g *Graph, deps analysis.SummaryTable) analysis.SummaryTable {
	table := make(analysis.SummaryTable, len(deps)+len(g.Nodes))
	for sym, s := range deps {
		table[sym] = s
	}

	// Deterministic initial worklist: every in-view function, sorted.
	var work []*Node
	for _, n := range g.Nodes {
		if !n.External() {
			work = append(work, n)
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i].Sym < work[j].Sym })

	inWork := make(map[*Node]bool, len(work))
	for _, n := range work {
		inWork[n] = true
	}

	for round := 0; len(work) > 0 && round < maxRounds; round++ {
		work = step(work, inWork, g, table)
	}
	return table
}

// step runs one fixpoint round: scan everything on the worklist,
// refresh the synthetic interface-method entries, then return the
// callers of every symbol whose summary changed.
func step(work []*Node, inWork map[*Node]bool, g *Graph, table analysis.SummaryTable) []*Node {
	var changed []*Node
	for _, n := range work {
		inWork[n] = false
		s := analysis.ScanFunc(n.Pkg, n.Decl, table)
		if s == nil {
			continue
		}
		if old, ok := table[n.Sym]; !ok || !summaryEqual(old, s) {
			table[n.Sym] = s
			changed = append(changed, n)
		}
	}

	// Synthetic entries: a call through an interface method inherits
	// the union of the in-view implementations' effects. Updating the
	// entry requeues the interface method's callers like any other
	// summary change.
	var syms []string
	for sym := range g.ifaceImpls {
		syms = append(syms, sym)
	}
	sort.Strings(syms)
	for _, sym := range syms {
		s := mergedIfaceSummary(sym, g.ifaceImpls[sym], table)
		if old, ok := table[sym]; !ok || !summaryEqual(old, s) {
			table[sym] = s
			if n := g.Nodes[sym]; n != nil {
				changed = append(changed, n)
			}
		}
	}

	var out []*Node
	for _, n := range changed {
		for _, e := range n.In {
			c := e.Caller
			if c.External() || inWork[c] {
				continue
			}
			inWork[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sym < out[j].Sym })
	return out
}

// mergedIfaceSummary builds the synthetic summary of an interface
// method from its implementations: the first (by sorted symbol)
// implementation carrying each effect contributes the chain.
func mergedIfaceSummary(sym string, impls []*Node, table analysis.SummaryTable) *analysis.FuncSummary {
	sorted := make([]*Node, len(impls))
	copy(sorted, impls)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Sym < sorted[j].Sym })
	s := &analysis.FuncSummary{Sym: sym}
	for _, impl := range sorted {
		mergeWallEffects(s, impl.Fn, table[impl.Sym])
	}
	return s
}

// mergeWallEffects folds one implementation's wall-clock/env effects
// into a synthetic interface-method summary.
func mergeWallEffects(s *analysis.FuncSummary, fn *types.Func, cs *analysis.FuncSummary) {
	if cs == nil {
		return
	}
	name := fn.Name()
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	if cs.WallClock != "" && s.WallClock == "" {
		s.WallClock = name + " → " + cs.WallClock
	}
	if cs.EnvRead != "" && s.EnvRead == "" {
		s.EnvRead = name + " → " + cs.EnvRead
	}
}

// summaryEqual mirrors FuncSummary.equal without exporting it.
func summaryEqual(a, b *analysis.FuncSummary) bool {
	return a.WallClock == b.WallClock && a.EnvRead == b.EnvRead &&
		intMapEq(a.SeedParams, b.SeedParams) &&
		intMapEq(a.OrderedResults, b.OrderedResults) &&
		intMapEq(a.OrderedParams, b.OrderedParams) &&
		intMapEq(a.SinkParams, b.SinkParams)
}

func intMapEq(a, b map[int]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// OwnSummaries extracts the table entries for functions defined in pkg,
// plus synthetic entries for the methods of interfaces pkg declares
// (merged over same-package implementations). This is the slice the
// vettool mode serializes as the package's facts: downstream packages
// see a dep's transitive effects, including interface dispatch over
// backends that live next to their interface (the storage.System
// layout), without access to its source.
func OwnSummaries(pkg *analysis.Package, table analysis.SummaryTable) map[string]*analysis.FuncSummary {
	own := make(map[string]*analysis.FuncSummary)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				sym := analysis.FuncSym(obj)
				if s, ok := table[sym]; ok && !s.Clean() {
					own[sym] = s
				}
			}
		}
	}
	for sym, s := range InterfaceSummaries(pkg, table) {
		if _, ok := own[sym]; !ok && !s.Clean() {
			own[sym] = s
		}
	}
	return own
}

// InterfaceSummaries computes synthetic summaries for the methods of
// every interface declared in pkg, merging the effects of the concrete
// implementations also declared in pkg. (Cross-package implementations
// are covered in whole-program mode by the graph's interface edges; the
// per-package view is what a facts file can know.)
func InterfaceSummaries(pkg *analysis.Package, table analysis.SummaryTable) map[string]*analysis.FuncSummary {
	scope := pkg.Types.Scope()
	var ifaces []*types.Interface
	var concrete []types.Type
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if it, ok := t.Underlying().(*types.Interface); ok {
			if it.NumMethods() > 0 {
				ifaces = append(ifaces, it)
			}
			continue
		}
		concrete = append(concrete, t)
	}

	out := make(map[string]*analysis.FuncSummary)
	for _, it := range ifaces {
		for _, t := range concrete {
			if !types.Implements(t, it) && !types.Implements(types.NewPointer(t), it) {
				continue
			}
			for j := 0; j < it.NumMethods(); j++ {
				m := it.Method(j)
				obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, pkg.Types, m.Name())
				fn, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				sym := analysis.FuncSym(m)
				s := out[sym]
				if s == nil {
					s = &analysis.FuncSummary{Sym: sym}
					out[sym] = s
				}
				mergeWallEffects(s, fn, table[analysis.FuncSym(fn)])
			}
		}
	}
	return out
}
