// Package fx exercises every callgraph edge kind (analyzed as
// ec2wfsim/internal/disk/fx, a simulation package): static calls,
// interface dispatch, function values, and the effect chains the
// summary fixpoint must carry across them.
package fx

import (
	"time"

	"ec2wfsim/internal/rng"
)

type Backend interface {
	Fetch() int
}

type Local struct{}

func (Local) Fetch() int { return 1 }

type Remote struct{}

func (Remote) Fetch() int { return stamp() }

func stamp() int { return int(time.Now().Unix()) }

func helper() int { return 2 }

func direct() int { return helper() }

func dispatch(b Backend) int { return b.Fetch() }

func apply(f func() int) int { return f() }

func indirect() int { return apply(helper) }

func seeded(seed uint64) *rng.RNG { return rng.New(seed) }
