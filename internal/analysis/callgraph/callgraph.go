// Package callgraph builds a whole-program call graph over the
// type-checked packages the wfvet loader produces, and runs the
// bottom-up summary fixpoint that powers the interprocedural
// determinism rules (ordertaint, seedtaint, walltime).
//
// The graph is an over-approximation in the usual static-analysis
// sense: every call that can happen at runtime has an edge, plus some
// that cannot.
//
//   - Static edges connect a call site to the named function or
//     concrete method it resolves to.
//   - Interface edges connect a call through an interface method to
//     every in-view concrete type that implements the interface — the
//     storage.System backends are the canonical case.
//   - FuncValue edges connect a call through a function-typed value
//     (parameter, field, variable) to every in-view function whose
//     address is taken and whose signature has a compatible arity.
//
// Effect propagation (the summary fixpoint) uses static edges via
// analysis.ScanFunc and additionally merges the boolean wall-clock /
// env effects across interface edges; function-value edges are kept
// for reachability queries but excluded from effect propagation, since
// arity-matched dynamic dispatch would smear taint across unrelated
// callbacks (the walltime rule checks handler arguments at the call
// site instead).
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"

	"ec2wfsim/internal/analysis"
)

// EdgeKind classifies how a call site resolves to its callee.
type EdgeKind int

const (
	// Static is a direct call to a named function or concrete method.
	Static EdgeKind = iota
	// Interface is a call through an interface method, resolved
	// conservatively to every implementing in-view method.
	Interface
	// FuncValue is a call through a function-typed value, resolved
	// conservatively to address-taken functions of compatible arity.
	FuncValue
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case FuncValue:
		return "funcvalue"
	}
	return "unknown"
}

// Node is one function in the graph. In-view functions (defined in an
// analyzed package) carry their declaration and package; external
// functions (stdlib, unanalyzed module packages) are leaves.
type Node struct {
	Fn   *types.Func
	Sym  string
	Decl *ast.FuncDecl     // nil for externals
	Pkg  *analysis.Package // nil for externals
	Out  []*Edge
	In   []*Edge

	// AddrTaken records that the function is used as a value somewhere
	// in view, making it a candidate callee for FuncValue edges.
	AddrTaken bool
}

// External reports whether the node has no analyzed source.
func (n *Node) External() bool { return n.Decl == nil }

// Edge is one call relationship.
type Edge struct {
	Caller, Callee *Node
	Site           ast.Node // the call expression (nil for synthesized edges)
	Kind           EdgeKind
}

// Graph is a whole-program (or, in vettool mode, single-package) call
// graph.
type Graph struct {
	Nodes map[string]*Node // by canonical symbol

	// ifaceImpls maps an interface method's symbol to the in-view
	// concrete methods that can stand behind it at some call site. The
	// summary fixpoint uses it to maintain a synthetic summary entry
	// for the interface method carrying the union of its
	// implementations' wall-clock/env effects.
	ifaceImpls map[string][]*Node
}

// Stats summarizes the graph for audit output.
type Stats struct {
	Functions  int `json:"functions"`
	External   int `json:"external"`
	Static     int `json:"static_edges"`
	Interface  int `json:"interface_edges"`
	FuncValue  int `json:"funcvalue_edges"`
	SimReached int `json:"sim_reachable"`
}

// Build constructs the graph over pkgs. All packages must share one
// FileSet and Info conventions (the wfvet loader guarantees this).
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{Nodes: make(map[string]*Node), ifaceImpls: make(map[string][]*Node)}
	b := &builder{g: g}

	// Pass 1: declare in-view functions and collect concrete methods
	// and address-taken functions for the dynamic over-approximations.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := g.node(obj)
				n.Decl = fd
				n.Pkg = pkg
				if sig := obj.Type().(*types.Signature); sig.Recv() != nil {
					b.methods = append(b.methods, n)
				}
			}
		}
	}

	// Pass 2: edges.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				b.scan(pkg, g.node(obj), fd.Body)
			}
		}
	}

	// Pass 3: resolve recorded dynamic call sites now that the
	// address-taken set is complete.
	b.resolveDynamic()
	return g
}

// node interns the node for fn.
func (g *Graph) node(fn *types.Func) *Node {
	sym := analysis.FuncSym(fn)
	if n, ok := g.Nodes[sym]; ok {
		return n
	}
	n := &Node{Fn: fn, Sym: sym}
	g.Nodes[sym] = n
	return n
}

func (g *Graph) addEdge(caller, callee *Node, site ast.Node, kind EdgeKind) {
	e := &Edge{Caller: caller, Callee: callee, Site: site, Kind: kind}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// builder carries the intermediate state of graph construction.
type builder struct {
	g       *Graph
	methods []*Node // in-view concrete methods (interface resolution)
	dynamic []dynSite
}

type dynSite struct {
	caller *Node
	site   *ast.CallExpr
	sig    *types.Signature
}

// scan walks one function body, adding edges for every call and
// recording address-taken function references. Function literals are
// attributed to the enclosing declaration: a call inside a literal
// still creates an edge from the declaring function, which keeps
// reachability conservative without modeling literals as nodes.
func (b *builder) scan(pkg *analysis.Package, caller *Node, body ast.Node) {
	info := pkg.Info

	// First pass: calls. Record the identifiers standing in callee
	// position so the second pass can tell a call from a reference.
	callees := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callees[fun] = true
		case *ast.SelectorExpr:
			callees[fun.Sel] = true
		}
		b.scanCall(pkg, caller, call)
		return true
	})

	// Second pass: function identifiers outside callee position are
	// address-taken (passed, stored, returned as values) and become
	// candidate targets of FuncValue edges.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callees[id] {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			b.g.node(fn).AddrTaken = true
		}
		return true
	})
}

// scanCall classifies one call site.
func (b *builder) scanCall(pkg *analysis.Package, caller *Node, call *ast.CallExpr) {
	info := pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			b.g.addEdge(caller, b.g.node(obj), call, Static)
		case *types.Builtin, *types.TypeName, nil:
			// builtin call or conversion: no edge
		default:
			// call through a function-typed variable
			if sig := signatureOf(info, fun); sig != nil {
				b.dynamic = append(b.dynamic, dynSite{caller, call, sig})
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			callee := sel.Obj().(*types.Func)
			if types.IsInterface(sel.Recv()) {
				b.interfaceEdges(caller, call, sel.Recv(), callee)
			} else {
				b.g.addEdge(caller, b.g.node(callee), call, Static)
			}
			return
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			// package-qualified function
			b.g.addEdge(caller, b.g.node(fn), call, Static)
			return
		}
		// field of function type
		if sig := signatureOf(info, fun); sig != nil {
			b.dynamic = append(b.dynamic, dynSite{caller, call, sig})
		}
	default:
		if sig := signatureOf(info, call.Fun); sig != nil {
			b.dynamic = append(b.dynamic, dynSite{caller, call, sig})
		}
	}
}

// signatureOf returns e's function signature when e has function type
// (possibly through a named type), else nil.
func signatureOf(info *types.Info, e ast.Expr) *types.Signature {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// interfaceEdges adds one edge per in-view concrete method that can
// satisfy the interface call: the method's receiver type implements the
// interface and the method name matches.
func (b *builder) interfaceEdges(caller *Node, call *ast.CallExpr, iface types.Type, m *types.Func) {
	b.g.addEdge(caller, b.g.node(m), call, Static) // the interface method itself (leaf)
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, impl := range b.methods {
		if impl.Fn.Name() != m.Name() {
			continue
		}
		recv := impl.Fn.Type().(*types.Signature).Recv().Type()
		if types.Implements(recv, it) || types.Implements(types.NewPointer(recv), it) {
			b.g.addEdge(caller, impl, call, Interface)
			b.g.recordIfaceImpl(analysis.FuncSym(m), impl)
		}
	}
}

// recordIfaceImpl registers impl as a possible target of the interface
// method sym, once.
func (g *Graph) recordIfaceImpl(sym string, impl *Node) {
	for _, n := range g.ifaceImpls[sym] {
		if n == impl {
			return
		}
	}
	g.ifaceImpls[sym] = append(g.ifaceImpls[sym], impl)
}

// resolveDynamic adds FuncValue edges from each recorded dynamic call
// site to every address-taken in-view function with a matching
// parameter count.
func (b *builder) resolveDynamic() {
	var candidates []*Node
	for _, n := range b.g.Nodes {
		if n.AddrTaken && !n.External() {
			candidates = append(candidates, n)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Sym < candidates[j].Sym })
	for _, d := range b.dynamic {
		for _, c := range candidates {
			csig, ok := c.Fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			if csig.Params().Len() == d.sig.Params().Len() && csig.Variadic() == d.sig.Variadic() {
				b.g.addEdge(d.caller, c, d.site, FuncValue)
			}
		}
	}
}

// Reachable returns the set of nodes reachable (over all edge kinds)
// from the nodes accepted by seed.
func (g *Graph) Reachable(seed func(*Node) bool) map[*Node]bool {
	visited := make(map[*Node]bool)
	var stack []*Node
	for _, n := range g.Nodes {
		if seed(n) {
			visited[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if !visited[e.Callee] {
				visited[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return visited
}

// SimReachable returns the nodes reachable from any function defined in
// one of the event-loop simulation packages — the blast radius a
// nondeterministic read must stay out of.
func (g *Graph) SimReachable() map[*Node]bool {
	return g.Reachable(func(n *Node) bool {
		return !n.External() && analysis.InSimPackage(n.Pkg.PkgPath)
	})
}

// Stats computes graph statistics for the audit trail.
func (g *Graph) Stats() Stats {
	var s Stats
	for _, n := range g.Nodes {
		if n.External() {
			s.External++
		} else {
			s.Functions++
		}
		for _, e := range n.Out {
			switch e.Kind {
			case Static:
				s.Static++
			case Interface:
				s.Interface++
			case FuncValue:
				s.FuncValue++
			}
		}
	}
	s.SimReached = len(g.SimReachable())
	return s
}
