package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fx.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseIgnores(t *testing.T) {
	fset, f := parseOne(t, `package p

//wfvet:ignore maporder keys sorted by caller
var a int

//wfvet:ignore norawrand
var b int

//wfvet:ignore
var c int
`)
	got := ParseIgnores(fset, f)
	if len(got) != 3 {
		t.Fatalf("got %d directives, want 3", len(got))
	}
	if got[0].Analyzer != "maporder" || got[0].Reason != "keys sorted by caller" || got[0].Line != 3 {
		t.Errorf("directive 0 = %+v", got[0])
	}
	if got[1].Analyzer != "norawrand" || got[1].Reason != "" {
		t.Errorf("directive 1 = %+v", got[1])
	}
	if got[2].Analyzer != "" {
		t.Errorf("directive 2 = %+v", got[2])
	}
}

// fakeAnalyzer reports one diagnostic at every var declaration, which
// gives the suppression tests precise line control without type info.
var fakeAnalyzer = &Analyzer{
	Name: "fake",
	Doc:  "test-only",
	Why:  "test-only",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if vs, ok := n.(*ast.ValueSpec); ok {
					pass.Reportf(vs.Pos(), "var at line %d", pass.Fset.Position(vs.Pos()).Line)
				}
				return true
			})
		}
	},
}

func runFake(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset, f := parseOne(t, src)
	pkg := &Package{PkgPath: ModulePath + "/internal/fx", Fset: fset, Files: []*ast.File{f}}
	return RunPackage(pkg, []*Analyzer{fakeAnalyzer})
}

func TestSuppressionCoversSameAndNextLine(t *testing.T) {
	diags := runFake(t, `package p

//wfvet:ignore fake above-line form
var a int

var b int //wfvet:ignore fake trailing form

var c int
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (only c): %+v", len(diags), diags)
	}
	if diags[0].Message != "var at line 8" {
		t.Errorf("surviving diagnostic = %+v, want the one for c", diags[0])
	}
}

func TestReasonlessDirectiveSuppressesNothing(t *testing.T) {
	diags := runFake(t, `package p

//wfvet:ignore fake
var a int
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (reason-less ignore must not suppress)", len(diags))
	}
}

func TestWrongAnalyzerDirectiveSuppressesNothing(t *testing.T) {
	diags := runFake(t, `package p

//wfvet:ignore maporder not the analyzer that fired
var a int
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (name mismatch must not suppress)", len(diags))
	}
}

func TestScopes(t *testing.T) {
	cases := []struct {
		path                     string
		sim, det, seedOwner, mod bool
	}{
		{ModulePath + "/internal/sim", true, true, false, true},
		{ModulePath + "/internal/flow", true, true, false, true},
		{ModulePath + "/internal/scenario", true, true, true, true},
		{ModulePath + "/internal/rng", false, false, true, true},
		{ModulePath + "/internal/sweep", false, false, false, true},
		{ModulePath + "/internal/resultcache", false, true, false, true},
		{ModulePath + "/internal/storage/sub", true, true, false, true},
		{ModulePath + "/cmd/wfsim", false, false, false, true},
		{ModulePath, false, false, false, true},
		{ModulePath + "/internal/analysis", false, false, false, false},
		{ModulePath + "/internal/analysis/driver", false, false, false, false},
		{ModulePath + "/internal/simulator", false, false, false, true}, // prefix, not a path segment
		{"fmt", false, false, false, false},
	}
	for _, c := range cases {
		if got := inSimPackage(c.path); got != c.sim {
			t.Errorf("inSimPackage(%q) = %v, want %v", c.path, got, c.sim)
		}
		if got := inDeterministicPackage(c.path); got != c.det {
			t.Errorf("inDeterministicPackage(%q) = %v, want %v", c.path, got, c.det)
		}
		if got := isSeedOwner(c.path); got != c.seedOwner {
			t.Errorf("isSeedOwner(%q) = %v, want %v", c.path, got, c.seedOwner)
		}
		if got := inModule(c.path); got != c.mod {
			t.Errorf("inModule(%q) = %v, want %v", c.path, got, c.mod)
		}
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	diags := runFake(t, `package p

var b int
var a int
var c int
`)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Pos > diags[i].Pos {
			t.Errorf("diagnostics out of positional order: %+v", diags)
		}
	}
}
