package analysis_test

import (
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/analysistest"
)

func TestOrderTaint(t *testing.T) {
	analysistest.Run(t, analysis.OrderTaint, "ordertaint", "ec2wfsim/internal/report/fx")
}

func TestOrderTaintClean(t *testing.T) {
	analysistest.Run(t, analysis.OrderTaint, "ordertaint_clean", "ec2wfsim/internal/units/fx")
}
