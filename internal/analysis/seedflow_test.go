package analysis_test

import (
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/analysistest"
)

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, analysis.SeedFlow, "seedflow", "ec2wfsim/internal/apps/fx")
}

func TestSeedFlowCleanInSeedOwner(t *testing.T) {
	// internal/scenario owns seed derivation, so literal seeds are allowed.
	analysistest.Run(t, analysis.SeedFlow, "seedflow_clean", "ec2wfsim/internal/scenario/fx")
}
