package analysis_test

import (
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/analysistest"
)

func TestWallTime(t *testing.T) {
	analysistest.Run(t, analysis.WallTime, "walltime", "ec2wfsim/internal/disk/fx")
}

func TestWallTimeHandlers(t *testing.T) {
	// The handler shape fires from outside the simulation packages.
	analysistest.Run(t, analysis.WallTime, "walltime_handler", "ec2wfsim/internal/report/fx")
}

func TestWallTimeClean(t *testing.T) {
	analysistest.Run(t, analysis.WallTime, "walltime_clean", "ec2wfsim/internal/disk/fx")
}
