package analysis

// WfDirective validates //wfvet:ignore suppression comments themselves:
// a directive must name a registered analyzer and carry a non-empty
// justification. Malformed directives are the worst of both worlds —
// they look like an audit trail but suppress nothing (the framework
// ignores reason-less directives), so they are reported as findings.
var WfDirective = &Analyzer{
	Name: "wfdirective",
	Doc:  "validate //wfvet:ignore directives: known analyzer name and mandatory reason",
	Why: "suppressions are the escape hatch in the determinism gate; each one must say " +
		"which rule it waives and why, so the audit trail stays greppable and honest.",
	Run: runWfDirective,
}

// known is filled by init rather than in runWfDirective so that the
// analyzer's Run function does not reference Rules (which references
// WfDirective — a package-initialization cycle).
var known = make(map[string]bool)

func init() {
	for _, a := range Rules() {
		known[a.Name] = true
	}
}

func runWfDirective(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range ParseIgnores(pass.Fset, f) {
			switch {
			case d.Analyzer == "":
				pass.Reportf(d.Pos, "malformed wfvet:ignore: want `//wfvet:ignore <analyzer> <reason>`")
			case !known[d.Analyzer]:
				pass.Reportf(d.Pos, "wfvet:ignore names unknown analyzer %q (see `wfvet -rules`)", d.Analyzer)
			case d.Reason == "":
				pass.Reportf(d.Pos, "wfvet:ignore %s without a reason: the justification is mandatory (and reason-less directives suppress nothing)", d.Analyzer)
			}
		}
	}
}
