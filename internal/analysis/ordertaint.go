package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// OrderTaint is the interprocedural companion of maporder: it tracks
// map-iteration order across call boundaries through the function
// summaries the callgraph fixpoint computes. Where maporder flags
// order-sensitive work inside the range-over-map loop itself, ordertaint
// flags the hazards that only become visible once a helper is involved —
// a slice returned by a callee that built it in map order and is then
// printed, written, scheduled or folded here; or a locally map-ordered
// slice handed to a callee that feeds it into such a sink.
//
// The division of labor is strict so the two rules never double-report:
// ordertaint only fires when at least one call boundary separates the
// map range from the sink.
var OrderTaint = &Analyzer{
	Name: "ordertaint",
	Doc:  "flag map-iteration order crossing a call boundary into an output/event/accumulation sink",
	Why: "a helper that returns keys collected from a map looks innocent at every " +
		"single-function view, but printing or scheduling from its result replays the " +
		"map's randomized order into golden files and the event queue. Summaries of " +
		"callee effects make the cross-call path visible.",
	Run: runOrderTaint,
}

func runOrderTaint(pass *Pass) {
	pkg := &Package{
		PkgPath: pass.PkgPath, Fset: pass.Fset, Files: pass.Files,
		Types: pass.Pkg, Info: pass.Info, Summaries: pass.Summaries,
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkOrderTaint(pass, pkg, fn)
		}
	}
}

// calleeTainted reports whether the taint chain originated in a callee
// (crossed a call boundary) rather than in a local map range. Local
// origins read "built while ranging a map at line N"; callee-derived
// chains are prefixed with the callee's name by chain().
func calleeTainted(why string) bool {
	return !strings.HasPrefix(why, "built while ranging")
}

func checkOrderTaint(pass *Pass, pkg *Package, fn *ast.FuncDecl) {
	// No early-out on empty local taint: taintOf also derives taint
	// directly from call expressions (fmt.Println(keys(m)), range over
	// keys(m)), which need no tainted local at all.
	taint := localTaint(pkg, fn.Body, pass.Summaries)
	inspectSkippingFuncLits(fn.Body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.CallExpr:
			checkOrderTaintCall(pass, pkg, st, taint)
		case *ast.RangeStmt:
			// Ranging a callee-built map-ordered slice with an
			// order-sensitive body replays the callee's map order.
			if isMapType(pass.Info, st.X) {
				return // the range itself is maporder's domain
			}
			why := taintOf(pkg, st.X, taint, pass.Summaries)
			if why == "" || !calleeTainted(why) {
				return
			}
			if desc, found := orderSensitiveBody(pkg, st, pass.Summaries); found {
				pass.Reportf(st.Pos(),
					"range over map-ordered result of %s reaches %s: element order varies per run; sort before iterating", why, desc)
			}
		}
	})
}

// checkOrderTaintCall reports tainted arguments delivered to an order
// sink at this call: an intrinsic sink (print/write/schedule), or a
// callee whose summary marks the parameter as reaching one.
func checkOrderTaintCall(pass *Pass, pkg *Package, call *ast.CallExpr, taint map[types.Object]string) {
	callee := calleeFunc(pass.Info, call)
	sinkDesc, intrinsic := orderSinkCall(pass.Info, call)
	var cs *FuncSummary
	if !intrinsic {
		cs = pass.Summaries.Lookup(callee)
	}
	for j, arg := range call.Args {
		why := taintOf(pkg, arg, taint, pass.Summaries)
		if why == "" {
			continue
		}
		switch {
		case intrinsic && calleeTainted(why):
			// Local-origin taint into a local sink after the loop is a
			// single-function pattern; only cross-call taint is ours.
			pass.Reportf(arg.Pos(),
				"map-ordered value (%s) reaches %s: order varies per run; sort before emitting", why, sinkDesc)
		case cs != nil && cs.SinkParams[j] != "":
			// The sink lives inside the callee — always a call-boundary
			// crossing, whatever the taint's origin.
			pass.Reportf(arg.Pos(),
				"map-ordered value (%s) flows into %s of %s: order varies per run; sort before the call",
				why, cs.SinkParams[j], callee.Name())
		}
	}
}
