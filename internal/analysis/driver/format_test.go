package driver

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ec2wfsim/internal/analysis"
)

var testReport = &Report{
	Findings: []Finding{
		{Rule: "walltime", File: "internal/disk/a.go", Line: 10, Col: 2, Message: "fresh finding"},
	},
	Baselined: []Finding{
		{Rule: "seedtaint", File: "internal/wms/b.go", Line: 4, Col: 1, Message: "accepted finding"},
	},
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "walltime", File: "a.go", Line: 3, Col: 7, Message: "m"}
	if got, want := f.String(), "a.go:3:7: [walltime] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := testReport.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "internal/disk/a.go:10:2: [walltime] fresh finding") {
		t.Errorf("text output missing the fresh finding:\n%s", out)
	}
	if strings.Contains(out, "accepted finding") {
		t.Errorf("text output includes a baselined finding:\n%s", out)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := testReport.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(back.Findings) != 1 || back.Findings[0] != testReport.Findings[0] {
		t.Errorf("findings did not round-trip: %+v", back.Findings)
	}
	if len(back.Baselined) != 1 || back.Baselined[0] != testReport.Baselined[0] {
		t.Errorf("baselined findings did not round-trip: %+v", back.Baselined)
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := testReport.WriteSARIF(&buf, analysis.Rules()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version %q, %d runs", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "wfvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(analysis.Rules()); got != want {
		t.Errorf("SARIF carries %d rules, want %d", got, want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("SARIF carries %d results, want 2", len(run.Results))
	}
	if run.Results[0].Level != "error" || run.Results[1].Level != "note" {
		t.Errorf("levels = %q/%q, want error for fresh and note for baselined",
			run.Results[0].Level, run.Results[1].Level)
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/disk/a.go" || loc.Region.StartLine != 10 {
		t.Errorf("location = %s:%d, want internal/disk/a.go:10", loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
}
