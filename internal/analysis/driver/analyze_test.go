package driver

import (
	"testing"

	"ec2wfsim/internal/analysis"
)

// TestAnalyzeCleanPackage drives the whole standalone pipeline — go
// list, export-data loading, source type-checking, callgraph build,
// summary fixpoint, rule run — over a real module package, which must
// come out clean (the tree-wide guarantee CI enforces).
func TestAnalyzeCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	res, err := Analyze("../../..", []string{"./internal/rng", "./internal/flow"}, analysis.Rules())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(res.Findings) != 0 {
		for _, f := range res.Findings {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if res.Stats.Functions == 0 {
		t.Errorf("callgraph saw no functions; the loader produced an empty view")
	}
	if res.Stats.Static == 0 {
		t.Errorf("callgraph has no static edges")
	}
}
