package driver

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry is one accepted legacy finding. Line numbers are
// deliberately absent: baselines must survive unrelated edits to the
// file, so entries match on (rule, file, message) only.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
	// Reason documents why the finding is accepted rather than fixed.
	// It is mandatory: an entry without one is a usage error, so every
	// suppression in the committed baseline stays auditable.
	Reason string `json:"reason"`
}

func (e BaselineEntry) key() string { return e.Rule + "\x00" + e.File + "\x00" + e.Message }

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads and validates a baseline file. A missing reason on
// any entry is an error (the caller treats it as a usage failure): the
// baseline's whole point is that every suppression carries its
// justification.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	for i, e := range b.Entries {
		if e.Rule == "" || e.File == "" || e.Message == "" {
			return nil, fmt.Errorf("baseline %s: entry %d is missing rule/file/message", path, i)
		}
		if e.Reason == "" {
			return nil, fmt.Errorf("baseline %s: entry %d (%s in %s) has no reason; every baselined finding must document why it is accepted", path, i, e.Rule, e.File)
		}
	}
	return &b, nil
}

// Apply splits findings against the baseline: fresh findings (not
// baselined — these fail the run), matched findings (accepted), and
// stale entries (baselined but no longer produced — the baseline must
// be pruned so it cannot mask a future regression at the same site).
func (b *Baseline) Apply(findings []Finding) (fresh, matched []Finding, stale []BaselineEntry) {
	used := make(map[string]bool, len(b.Entries))
	known := make(map[string]bool, len(b.Entries))
	for _, e := range b.Entries {
		known[e.key()] = true
	}
	for _, f := range findings {
		k := BaselineEntry{Rule: f.Rule, File: f.File, Message: f.Message}.key()
		if known[k] {
			used[k] = true
			matched = append(matched, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	for _, e := range b.Entries {
		if !used[e.key()] {
			stale = append(stale, e)
		}
	}
	return fresh, matched, stale
}

// WriteBaseline writes findings as a baseline file, with a placeholder
// reason the author must replace — LoadBaseline rejects the file until
// every entry is justified, so a generated baseline cannot be committed
// unreviewed by accident.
func WriteBaseline(path string, findings []Finding) error {
	b := Baseline{Entries: []BaselineEntry{}}
	seen := make(map[string]bool)
	for _, f := range findings {
		e := BaselineEntry{Rule: f.Rule, File: f.File, Message: f.Message, Reason: ""}
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		b.Entries = append(b.Entries, e)
	}
	sort.Slice(b.Entries, func(i, j int) bool { return b.Entries[i].key() < b.Entries[j].key() })
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}
