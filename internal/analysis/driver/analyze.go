package driver

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/callgraph"
)

// Finding is one diagnostic in driver output form: resolved position,
// rule name and message, ready for text/JSON/SARIF rendering and
// baseline matching. File paths are slash-separated and relative to the
// analysis root whenever they fall under it.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the canonical go-vet-style line.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Result is the outcome of one standalone analysis run.
type Result struct {
	Findings []Finding       `json:"findings"`
	Stats    callgraph.Stats `json:"stats"`
}

// Analyze runs the standalone whole-program analysis: it loads every
// module package reachable from patterns, type-checks them in
// dependency order sharing one type universe, computes interprocedural
// summaries over the whole-program callgraph, and then runs the
// analyzers on the packages that matched patterns.
//
// Source-checked module packages shadow their export data during
// type-checking, so a type observed from two packages is one
// *types.Named and interface satisfaction checks work across package
// boundaries — which the callgraph's dynamic-dispatch
// over-approximation relies on.
func Analyze(dir string, patterns []string, analyzers []*analysis.Analyzer) (*Result, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		exports[p.ImportPath] = p.Export
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		src:      make(map[string]*types.Package),
		fallback: exportImporter(fset, exports),
	}

	// `go list -deps` emits dependencies before dependents, so checking
	// in listed order guarantees every module import is already in
	// imp.src when its importer is checked.
	var all []*analysis.Package
	var targets []*analysis.Package
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || p.Module.Path != analysis.ModulePath || skipPath(p.ImportPath) {
			continue
		}
		names := make([]string, len(p.GoFiles))
		for i, n := range p.GoFiles {
			names[i] = filepath.Join(p.Dir, n)
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, names)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		if pkg == nil {
			continue
		}
		imp.src[p.ImportPath] = pkg.Types
		all = append(all, pkg)
		if len(p.Match) > 0 {
			targets = append(targets, pkg)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].PkgPath < targets[j].PkgPath })

	g := callgraph.Build(all)
	table := callgraph.SummarizeGraph(g, nil)

	res := &Result{Findings: []Finding{}, Stats: g.Stats()}
	absDir, _ := filepath.Abs(dir)
	for _, pkg := range targets {
		pkg.Summaries = table
		for _, d := range analysis.RunPackage(pkg, analyzers) {
			pos := fset.Position(d.Pos)
			res.Findings = append(res.Findings, Finding{
				Rule:    d.Analyzer,
				File:    relPath(absDir, pos.Filename),
				Line:    pos.Line,
				Col:     pos.Column,
				Message: d.Message,
			})
		}
	}
	return res, nil
}

// relPath makes file relative to root (slash form) when it lies inside
// it; otherwise the path is returned unchanged.
func relPath(root, file string) string {
	if root == "" {
		return file
	}
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
		return filepath.ToSlash(rel)
	}
	return file
}

func hasDotDotPrefix(p string) bool {
	return len(p) >= 3 && p[0] == '.' && p[1] == '.' && (p[2] == '/' || p[2] == filepath.Separator)
}

// moduleImporter resolves module packages to their source-checked
// *types.Package and everything else through export data, giving the
// whole standalone run one type universe.
type moduleImporter struct {
	src      map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.src[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}
