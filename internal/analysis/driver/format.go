package driver

import (
	"encoding/json"
	"fmt"
	"io"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/callgraph"
)

// Report is the machine-readable output of one wfvet run: the findings
// that fail the run, the findings accepted by the baseline, and the
// callgraph statistics of the analyzed program (the audit trail for how
// much the interprocedural rules actually saw).
type Report struct {
	Findings  []Finding       `json:"findings"`
	Baselined []Finding       `json:"baselined,omitempty"`
	Stats     callgraph.Stats `json:"stats"`
}

// WriteText renders the report as canonical file:line:col lines (fresh
// findings only — baselined ones are accepted by definition).
func (r *Report) WriteText(w io.Writer) error {
	for _, f := range r.Findings {
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as one indented JSON object. A clean
// run emits "findings": [] rather than null so consumers of the CI
// artifact can index unconditionally.
func (r *Report) WriteJSON(w io.Writer) error {
	out := *r
	if out.Findings == nil {
		out.Findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// sarif mirrors the fragment of the SARIF 2.1.0 schema wfvet emits —
// enough for code-scanning UIs to ingest rules, results and positions.
type sarif struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
	FullDescription  sarifText `json:"fullDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the report in SARIF 2.1.0 form. Fresh findings are
// level "error"; baselined ones are included as "note" so scanners show
// the accepted debt without failing on it.
func (r *Report) WriteSARIF(w io.Writer, analyzers []*analysis.Analyzer) error {
	doc := sarif{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "wfvet", Rules: []sarifRule{}}},
			Results: []sarifResult{},
		}},
	}
	for _, a := range analyzers {
		doc.Runs[0].Tool.Driver.Rules = append(doc.Runs[0].Tool.Driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
			FullDescription:  sarifText{Text: a.Why},
		})
	}
	emit := func(fs []Finding, level string) {
		for _, f := range fs {
			doc.Runs[0].Results = append(doc.Runs[0].Results, sarifResult{
				RuleID:  f.Rule,
				Level:   level,
				Message: sarifText{Text: f.Message},
				Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				}}},
			})
		}
	}
	emit(r.Findings, "error")
	emit(r.Baselined, "note")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
