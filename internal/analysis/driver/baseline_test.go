package driver

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBaselineApply(t *testing.T) {
	b := &Baseline{Entries: []BaselineEntry{
		{Rule: "walltime", File: "internal/disk/a.go", Message: "old accepted finding", Reason: "legacy"},
		{Rule: "seedtaint", File: "internal/wms/b.go", Message: "finding that was fixed", Reason: "legacy"},
	}}
	findings := []Finding{
		{Rule: "walltime", File: "internal/disk/a.go", Line: 10, Message: "old accepted finding"},
		{Rule: "ordertaint", File: "internal/report/c.go", Line: 3, Message: "brand new finding"},
	}
	fresh, matched, stale := b.Apply(findings)
	if len(fresh) != 1 || fresh[0].Rule != "ordertaint" {
		t.Errorf("fresh = %+v, want only the ordertaint finding", fresh)
	}
	if len(matched) != 1 || matched[0].Rule != "walltime" {
		t.Errorf("matched = %+v, want only the walltime finding", matched)
	}
	if len(stale) != 1 || stale[0].Rule != "seedtaint" {
		t.Errorf("stale = %+v, want only the fixed seedtaint entry", stale)
	}
}

func TestBaselineMatchIgnoresLine(t *testing.T) {
	b := &Baseline{Entries: []BaselineEntry{
		{Rule: "walltime", File: "a.go", Message: "m", Reason: "r"},
	}}
	fresh, matched, stale := b.Apply([]Finding{{Rule: "walltime", File: "a.go", Line: 999, Col: 7, Message: "m"}})
	if len(fresh) != 0 || len(matched) != 1 || len(stale) != 0 {
		t.Errorf("Apply = (%v, %v, %v), want a line-insensitive match", fresh, matched, stale)
	}
}

func TestWriteBaselineRejectedUntilReasoned(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	findings := []Finding{
		{Rule: "walltime", File: "a.go", Line: 1, Message: "m1"},
		{Rule: "walltime", File: "a.go", Line: 2, Message: "m1"}, // same site signature: deduped
		{Rule: "seedtaint", File: "b.go", Line: 3, Message: "m2"},
	}
	if err := WriteBaseline(path, findings); err != nil {
		t.Fatal(err)
	}

	// A generated baseline has empty reasons and must not load.
	if _, err := LoadBaseline(path); err == nil || !strings.Contains(err.Error(), "no reason") {
		t.Fatalf("LoadBaseline on unreviewed baseline: err = %v, want a missing-reason error", err)
	}

	// Fill in the reasons; now it round-trips, deduped and sorted.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("wrote %d entries, want 2 (deduped)", len(b.Entries))
	}
	for i := range b.Entries {
		b.Entries[i].Reason = "accepted for the test"
	}
	reasoned, _ := json.Marshal(&b)
	if err := os.WriteFile(path, reasoned, 0o666); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entries) != 2 {
		t.Errorf("loaded %d entries, want 2", len(loaded.Entries))
	}
}

func TestLoadBaselineRejectsIncompleteEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"entries":[{"rule":"walltime","message":"m","reason":"r"}]}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil || !strings.Contains(err.Error(), "missing rule/file/message") {
		t.Errorf("LoadBaseline = %v, want a missing-field error", err)
	}
}
