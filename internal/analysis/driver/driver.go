// Package driver loads, type-checks and analyzes packages for wfvet.
//
// It supports two modes sharing one analysis core:
//
//   - Standalone: `wfvet ./...` shells out to `go list -deps -export`
//     to enumerate packages and obtain export data for their imports,
//     then parses and type-checks each target from source. This is the
//     `make lint` entry point and needs nothing but the go toolchain.
//
//   - Vettool: `go vet -vettool=wfvet ./...` hands the tool one
//     vet.cfg JSON per package (see unitchecker.go); the go command has
//     already computed file lists and export data, including for test
//     variants.
//
// Both modes resolve imports from compiler export data via the standard
// library's gc importer — the same reader the compiler itself uses — so
// no third-party loader is required.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"ec2wfsim/internal/analysis"
)

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Match      []string // patterns this package matched (targets only)
	Module     *struct{ Path string }
}

// Load enumerates the packages matching patterns (plus their deps, for
// export data) by invoking `go list` in dir.
func Load(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Standard,Export,GoFiles,Match,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer resolving import paths via
// the given map of package path -> export data file. The importer
// caches packages across calls, so one instance should be shared by all
// type-checks in a run.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typeCheck parses and type-checks one package from source. Test files
// (*_test.go) are excluded: the determinism contract binds simulation
// code; tests legitimately use goroutines, wall clocks and literal
// seeds to exercise it.
func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath string, goFiles []string) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	if typeErr != nil {
		return nil, typeErr
	}
	return &analysis.Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Run analyzes every module package matching patterns and writes
// findings to w as file:line:col lines. It returns the number of
// findings; a non-nil error means the analysis itself could not run.
// It is the plain-text convenience wrapper over Analyze.
func Run(w io.Writer, dir string, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	res, err := Analyze(dir, patterns, analyzers)
	if err != nil {
		return 0, err
	}
	for _, f := range res.Findings {
		fmt.Fprintln(w, f)
	}
	return len(res.Findings), nil
}

// skipPath excludes the lint suite itself and fixture trees from
// analysis: the analyzers and their testdata intentionally spell out
// the very patterns the rules hunt for.
func skipPath(pkgPath string) bool {
	p := strings.TrimPrefix(pkgPath, analysis.ModulePath+"/")
	return p == "internal/analysis" ||
		strings.HasPrefix(p, "internal/analysis/") ||
		strings.Contains(p, "testdata")
}

// report writes diagnostics in the canonical file:line:col form used by
// go vet, returning how many were written.
func report(w io.Writer, fset *token.FileSet, diags []analysis.Diagnostic) int {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	return len(diags)
}

// LoadExports resolves the given import paths (plus all their
// dependencies) to export-data files via `go list -deps -export`,
// returning a package-path -> file map for ExportImporter. It exists
// for the analysistest harness, which type-checks fixture packages
// whose imports (stdlib and module) need real type information.
func LoadExports(dir string, importPaths []string) (map[string]string, error) {
	if len(importPaths) == 0 {
		return map[string]string{}, nil
	}
	pkgs, err := Load(dir, importPaths)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		exports[p.ImportPath] = p.Export
	}
	return exports, nil
}

// ExportImporter exposes the export-data importer for the test harness;
// see exportImporter.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return exportImporter(fset, exports)
}

// TypeCheckFiles type-checks already-parsed files as package pkgPath,
// producing the analysis view of the package. All files must come from
// fset. Unlike the internal path, the caller controls file selection.
func TypeCheckFiles(fset *token.FileSet, imp types.Importer, pkgPath string, files []*ast.File) (*analysis.Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	if typeErr != nil {
		return nil, typeErr
	}
	return &analysis.Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
