package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/callgraph"
)

// vetConfig mirrors the JSON the go command writes for `go vet
// -vettool` tools (cmd/go/internal/work.vetConfig). The go command
// invokes the tool once per package as `wfvet <flags> <dir>/vet.cfg`,
// after two handshake calls: `wfvet -V=full` (version/build ID) and
// `wfvet -flags` (supported-flag catalog, JSON).
type vetConfig struct {
	ID           string   // package ID, e.g. "fmt [fmt.test]"
	Compiler     string   // "gc"
	Dir          string   // package directory
	ImportPath   string   // canonical import path
	GoFiles      []string // absolute paths of Go sources
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string // source import path -> canonical package path
	PackageFile   map[string]string // package path -> export data file
	Standard      map[string]bool
	PackageVetx   map[string]string // package path -> facts file of an analyzed dep
	VetxOnly      bool              // dependency pass: only facts wanted
	VetxOutput    string            // facts file the tool must write (even if empty)
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Version is the string printed for the `-V=full` handshake. The go
// command requires `<tool> version <non-devel-id>` and uses the line
// verbatim as the tool's build ID, so bump the suffix when analyzer
// semantics change to invalidate go vet's action cache.
const Version = "wfvet version go1-wfvet-2"

// RunVettool implements the vet driver protocol for args (os.Args[1:]).
// It reports (handled=false) when args do not look like a vettool
// invocation, so the caller can fall back to standalone mode.
func RunVettool(args []string, analyzers []*analysis.Analyzer) (exitCode int, handled bool) {
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Println(Version)
		return 0, true
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No tool-specific flags: an empty catalog tells the go
		// command to reject any extra vet flags up front.
		fmt.Println("[]")
		return 0, true
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		return 0, false
	}
	code, err := checkConfig(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfvet: %v\n", err)
		return 1, true
	}
	return code, true
}

func checkConfig(cfgPath string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// Facts: module packages publish their function summaries through
	// the vetx channel, so dependents see transitive wall-clock / seed /
	// map-order effects without access to the dep's source. The Go
	// package DAG guarantees dep facts are already on disk (PackageVetx)
	// when this unit runs, and because summaries are flattened, direct
	// deps' facts carry everything transitive.
	var pkg *analysis.Package
	var table analysis.SummaryTable
	fset := token.NewFileSet()
	if moduleUnit(cfg) {
		imp := exportImporter(fset, resolveImports(cfg))
		p, err := typeCheck(fset, imp, cfg.ImportPath, cfg.GoFiles)
		if err != nil {
			if !cfg.SucceedOnTypecheckFailure && !cfg.VetxOnly && analyzable(cfg) {
				writeFacts(cfg, nil) // keep the protocol satisfied even on failure
				return 1, fmt.Errorf("%s: %v", cfg.ImportPath, err)
			}
		} else if p != nil {
			pkg = p
			table = callgraph.Summarize([]*analysis.Package{p}, readDepSummaries(cfg))
		}
	}
	if err := writeFacts(cfg, factsOf(pkg, table)); err != nil {
		return 1, err
	}
	if cfg.VetxOnly || pkg == nil || !analyzable(cfg) {
		return 0, nil
	}

	pkg.Summaries = table
	if n := report(os.Stderr, fset, analysis.RunPackage(pkg, analyzers)); n > 0 {
		// Mirror the standard vet tool: diagnostics exit 2, so the go
		// command fails the build and relays stderr.
		return 2, nil
	}
	return 0, nil
}

// moduleUnit reports whether the unit is a non-test package of this
// module — the ones whose summaries are worth computing and publishing.
// (Unlike analyzable, this includes the lint suite itself: cmd/wfvet
// imports it, so its facts file must exist with real content.)
func moduleUnit(cfg vetConfig) bool {
	return cfg.ModulePath == analysis.ModulePath &&
		!strings.Contains(cfg.ID, " [") &&
		!strings.HasSuffix(cfg.ImportPath, ".test")
}

// factsOf serializes the package's own summaries (nil-safe).
func factsOf(pkg *analysis.Package, table analysis.SummaryTable) map[string]*analysis.FuncSummary {
	if pkg == nil {
		return nil
	}
	return callgraph.OwnSummaries(pkg, table)
}

// writeFacts writes the unit's facts file: a JSON object mapping
// function symbols to summaries (empty for packages with nothing to
// say). The go command caches and content-hashes this file, so it must
// exist and be deterministic.
func writeFacts(cfg vetConfig, facts map[string]*analysis.FuncSummary) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	if facts == nil {
		facts = map[string]*analysis.FuncSummary{}
	}
	data, err := json.Marshal(facts)
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, append(data, '\n'), 0o666)
}

// readDepSummaries merges the facts files of every dependency the go
// command provides. Unreadable or non-JSON files (stale caches from
// older wfvet versions, stdlib stubs) are skipped: a missing summary
// degrades to extern-only resolution, never to an error.
func readDepSummaries(cfg vetConfig) analysis.SummaryTable {
	table := make(analysis.SummaryTable)
	for _, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		var facts map[string]*analysis.FuncSummary
		if err := json.Unmarshal(data, &facts); err != nil {
			continue
		}
		for sym, s := range facts {
			if s != nil {
				table[sym] = s
			}
		}
	}
	return table
}

// analyzable reports whether the package described by cfg is one wfvet
// lints: a non-test package of this module, outside the lint suite
// itself. Test variants ("pkg [pkg.test]", "pkg.test", "pkg_test")
// are exempt from the determinism contract.
func analyzable(cfg vetConfig) bool {
	if strings.Contains(cfg.ID, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return false
	}
	if cfg.ModulePath != analysis.ModulePath {
		return false
	}
	return !skipPath(cfg.ImportPath)
}

// resolveImports flattens cfg's ImportMap/PackageFile pair into one
// source-path -> export-file map for the gc importer.
func resolveImports(cfg vetConfig) map[string]string {
	out := make(map[string]string, len(cfg.ImportMap))
	for src, canonical := range cfg.ImportMap {
		out[src] = cfg.PackageFile[canonical]
	}
	for path, file := range cfg.PackageFile {
		if _, ok := out[path]; !ok {
			out[path] = file
		}
	}
	return out
}
