package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"

	"ec2wfsim/internal/analysis"
)

// vetConfig mirrors the JSON the go command writes for `go vet
// -vettool` tools (cmd/go/internal/work.vetConfig). The go command
// invokes the tool once per package as `wfvet <flags> <dir>/vet.cfg`,
// after two handshake calls: `wfvet -V=full` (version/build ID) and
// `wfvet -flags` (supported-flag catalog, JSON).
type vetConfig struct {
	ID           string   // package ID, e.g. "fmt [fmt.test]"
	Compiler     string   // "gc"
	Dir          string   // package directory
	ImportPath   string   // canonical import path
	GoFiles      []string // absolute paths of Go sources
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string // source import path -> canonical package path
	PackageFile   map[string]string // package path -> export data file
	Standard      map[string]bool
	PackageVetx   map[string]string // unused: wfvet computes no facts
	VetxOnly      bool              // dependency pass: only facts wanted
	VetxOutput    string            // file the tool must write (even if empty)
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Version is the string printed for the `-V=full` handshake. The go
// command requires `<tool> version <non-devel-id>` and uses the line
// verbatim as the tool's build ID, so bump the suffix when analyzer
// semantics change to invalidate go vet's action cache.
const Version = "wfvet version go1-wfvet-1"

// RunVettool implements the vet driver protocol for args (os.Args[1:]).
// It reports (handled=false) when args do not look like a vettool
// invocation, so the caller can fall back to standalone mode.
func RunVettool(args []string, analyzers []*analysis.Analyzer) (exitCode int, handled bool) {
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Println(Version)
		return 0, true
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No tool-specific flags: an empty catalog tells the go
		// command to reject any extra vet flags up front.
		fmt.Println("[]")
		return 0, true
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		return 0, false
	}
	code, err := checkConfig(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfvet: %v\n", err)
		return 1, true
	}
	return code, true
}

func checkConfig(cfgPath string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// The go command caches the vetx file as this package's vet
	// output; it must exist even though wfvet computes no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("wfvet: no facts\n"), 0o666); err != nil {
			return 1, err
		}
	}
	if cfg.VetxOnly || !analyzable(cfg) {
		return 0, nil
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, resolveImports(cfg))
	pkg, err := typeCheck(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, fmt.Errorf("%s: %v", cfg.ImportPath, err)
	}
	if pkg == nil {
		return 0, nil
	}
	if n := report(os.Stderr, fset, analysis.RunPackage(pkg, analyzers)); n > 0 {
		// Mirror the standard vet tool: diagnostics exit 2, so the go
		// command fails the build and relays stderr.
		return 2, nil
	}
	return 0, nil
}

// analyzable reports whether the package described by cfg is one wfvet
// lints: a non-test package of this module, outside the lint suite
// itself. Test variants ("pkg [pkg.test]", "pkg.test", "pkg_test")
// are exempt from the determinism contract.
func analyzable(cfg vetConfig) bool {
	if strings.Contains(cfg.ID, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return false
	}
	if cfg.ModulePath != analysis.ModulePath {
		return false
	}
	return !skipPath(cfg.ImportPath)
}

// resolveImports flattens cfg's ImportMap/PackageFile pair into one
// source-path -> export-file map for the gc importer.
func resolveImports(cfg vetConfig) map[string]string {
	out := make(map[string]string, len(cfg.ImportMap))
	for src, canonical := range cfg.ImportMap {
		out[src] = cfg.PackageFile[canonical]
	}
	for path, file := range cfg.PackageFile {
		if _, ok := out[path]; !ok {
			out[path] = file
		}
	}
	return out
}
