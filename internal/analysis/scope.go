package analysis

import "strings"

// ModulePath is the import-path prefix of this repository's module.
// The analyzers are repo-specific lint (they encode this simulator's
// layering), so hardcoding the module path is deliberate: scope rules
// read as plain package lists.
const ModulePath = "ec2wfsim"

// simPackages are the event-loop simulation packages: everything that
// executes under the deterministic engine clock. Inside them, all
// randomness must flow through internal/rng, all time through the sim
// clock, and all concurrency through the engine (real parallelism
// belongs to internal/sweep, which runs whole simulations side by side).
var simPackages = map[string]bool{
	"internal/sim":      true,
	"internal/flow":     true,
	"internal/wms":      true,
	"internal/storage":  true,
	"internal/disk":     true,
	"internal/cluster":  true,
	"internal/outage":   true,
	"internal/apps":     true,
	"internal/staging":  true,
	"internal/workflow": true,
	"internal/scenario": true,
	"internal/eventlog": true,
	"cmd/wfreplay":      true,
}

// deterministicPackages extends the wall-clock/entropy rules beyond the
// event loop: packages that run on the host (real goroutines, real
// files) but whose outputs feed byte-compared artifacts, so a wall-time
// or environment-dependent decision inside them breaks reproducibility
// just as surely as one under the sim clock. internal/resultcache lists
// and serializes cache entries for cold-vs-warm byte-identity; the
// concurrency rules (simgoroutine) deliberately do NOT extend here —
// host-side stores need their atomics and file locks.
var deterministicPackages = map[string]bool{
	"internal/resultcache": true,
}

// seedOwners are the packages allowed to construct generators from raw
// seed material: internal/rng defines the generator, internal/scenario
// owns seed derivation and per-cell salting.
var seedOwners = map[string]bool{
	"internal/rng":      true,
	"internal/scenario": true,
}

// rel strips the module prefix from a canonical import path, returning
// "" for the module root and the path unchanged when it is outside the
// module (stdlib, etc.).
func rel(pkgPath string) string {
	if pkgPath == ModulePath {
		return ""
	}
	if p, ok := strings.CutPrefix(pkgPath, ModulePath+"/"); ok {
		return p
	}
	return pkgPath
}

// inSimPackage reports whether pkgPath is (inside) one of the
// event-loop simulation packages.
func inSimPackage(pkgPath string) bool {
	p := rel(pkgPath)
	for dir := range simPackages {
		if p == dir || strings.HasPrefix(p, dir+"/") {
			return true
		}
	}
	return false
}

// InSimPackage is the exported form of inSimPackage, for the callgraph
// package's reachability seeds.
func InSimPackage(pkgPath string) bool { return inSimPackage(pkgPath) }

// inDeterministicPackage reports whether pkgPath must keep wall-clock,
// env and raw-rand reads out: the sim packages plus the
// deterministic-output set.
func inDeterministicPackage(pkgPath string) bool {
	if inSimPackage(pkgPath) {
		return true
	}
	p := rel(pkgPath)
	for dir := range deterministicPackages {
		if p == dir || strings.HasPrefix(p, dir+"/") {
			return true
		}
	}
	return false
}

// inModule reports whether pkgPath belongs to this module at all, and
// excludes the lint tooling itself plus test fixtures: the analyzers
// necessarily name the very identifiers they hunt for.
func inModule(pkgPath string) bool {
	if pkgPath != ModulePath && !strings.HasPrefix(pkgPath, ModulePath+"/") {
		return false
	}
	p := rel(pkgPath)
	if p == "internal/analysis" || strings.HasPrefix(p, "internal/analysis/") {
		return false
	}
	if strings.Contains(p, "testdata") {
		return false
	}
	return true
}

// isSeedDeriver reports whether pkgPath is (inside) the scenario layer —
// the sanctioned laundering point for raw seed material. Seed-parameter
// propagation and the seedtaint rule both stop there: handing a seed to
// scenario is how a run is configured, not how one is smuggled.
func isSeedDeriver(pkgPath string) bool {
	p := rel(pkgPath)
	return p == "internal/scenario" || strings.HasPrefix(p, "internal/scenario/")
}

// isSeedOwner reports whether pkgPath is (inside) a package that may
// construct generators from raw seeds.
func isSeedOwner(pkgPath string) bool {
	p := rel(pkgPath)
	for dir := range seedOwners {
		if p == dir || strings.HasPrefix(p, dir+"/") {
			return true
		}
	}
	return false
}
