// Package analysis is a small, dependency-free static-analysis framework
// plus the determinism-lint analyzers ("wfvet") that mechanically enforce
// this repository's bit-identical simulation contract.
//
// Every result the repo produces — golden grids, paired failure/outage
// baselines, 1-vs-N parallel sweeps — relies on runs being byte-identical
// given the same scenario and seed. The analyzers in this package turn
// that contract into a compile-time gate: no wall-clock time or raw
// math/rand in simulation packages, no order-sensitive work inside map
// iteration, no ad-hoc seeds outside the packages that own seed
// derivation, and no host-scheduler concurrency inside the event loop.
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) so the
// analyzers could be ported to a stock multichecker later, but it is
// built on the standard library only: the toolchain image this repo
// builds in has no module proxy access, and the lint must be runnable
// anywhere `go build ./...` is.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one determinism rule: how to find violations and
// why the rule exists. Analyzers are stateless; Run may be called
// concurrently for different passes.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics, in
	// //wfvet:ignore comments, and in the -rules catalog. Lowercase,
	// no spaces.
	Name string

	// Doc is a one-line synopsis of what the analyzer reports.
	Doc string

	// Why explains the determinism rationale — what breaks (goldens,
	// seed pairing, parallel-vs-serial equality) when the rule is
	// violated. Shown by `wfvet -rules`.
	Why string

	// Scope reports whether the rule applies to the package with the
	// given canonical import path. A nil Scope applies everywhere in
	// the module.
	Scope func(pkgPath string) bool

	// Run inspects one package and reports violations via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// PkgPath is the canonical import path used for Scope decisions.
	// It can differ from Pkg.Path() in tests, where fixture packages
	// masquerade as real module packages.
	PkgPath string

	// Summaries carries the interprocedural function summaries
	// (computed by the callgraph fixpoint) covering this package and
	// everything it can reach. Intraprocedural analyzers ignore it; a
	// nil table degrades the interprocedural rules to extern-only
	// resolution rather than failing.
	Summaries SummaryTable

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package is the unit of analysis: a parsed, type-checked package. Info
// must carry Types, Defs, Uses and Selections for the analyzers to
// resolve callees and operand types.
type Package struct {
	PkgPath string // canonical import path (scope decisions)
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// Summaries is the interprocedural summary table in scope for this
	// package (own functions + everything reachable). May be nil.
	Summaries SummaryTable
}

// IgnoreDirective is one parsed //wfvet:ignore comment.
type IgnoreDirective struct {
	Pos      token.Pos
	Line     int
	Analyzer string // rule name being suppressed ("" if malformed)
	Reason   string // justification ("" if missing — malformed)
	Raw      string // comment text after the marker
}

// ignoreMarker introduces a suppression comment:
//
//	//wfvet:ignore <analyzer> <reason...>
//
// The reason is mandatory. A directive suppresses findings of the named
// analyzer on its own line (trailing comment) and on the line
// immediately below (comment-above form).
const ignoreMarker = "//wfvet:ignore"

// ParseIgnores extracts every //wfvet:ignore directive in file,
// including malformed ones (validated by the wfdirective analyzer).
func ParseIgnores(fset *token.FileSet, file *ast.File) []IgnoreDirective {
	var out []IgnoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignoreMarker) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignoreMarker)
			// Cut at an embedded "// want": analysistest fixtures
			// annotate expected findings on the directive's own line.
			if i := strings.Index(rest, "// want"); i >= 0 {
				rest = rest[:i]
			}
			d := IgnoreDirective{
				Pos:  c.Pos(),
				Line: fset.Position(c.Pos()).Line,
				Raw:  strings.TrimSpace(rest),
			}
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				d.Analyzer = fields[0]
			}
			if len(fields) >= 2 {
				d.Reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// suppressed reports whether diagnostic d is covered by an ignore
// directive: same analyzer, positioned on d's line or the line above,
// and carrying a reason (malformed directives suppress nothing).
func suppressed(d Diagnostic, line int, ignores []IgnoreDirective) bool {
	for _, ig := range ignores {
		if ig.Analyzer != d.Analyzer || ig.Reason == "" {
			continue
		}
		if ig.Line == line || ig.Line == line-1 {
			return true
		}
	}
	return false
}

// RunPackage runs every analyzer whose Scope covers pkg and returns the
// surviving diagnostics, sorted by position. Findings silenced by a
// well-formed //wfvet:ignore are dropped here, so every caller — the
// standalone driver, the vettool mode and the tests — gets identical
// suppression semantics.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	ignores := make(map[string][]IgnoreDirective, len(pkg.Files))
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		ignores[name] = append(ignores[name], ParseIgnores(pkg.Fset, f)...)
	}

	var kept []Diagnostic
	for _, a := range analyzers {
		if a.Scope != nil && !a.Scope(pkg.PkgPath) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			PkgPath:   pkg.PkgPath,
			Summaries: pkg.Summaries,
		}
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if suppressed(d, pos.Line, ignores[pos.Filename]) {
				return
			}
			kept = append(kept, d)
		}
		a.Run(pass)
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(kept[i].Pos), pkg.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return dedupe(pkg.Fset, kept)
}

// dedupe drops diagnostics that duplicate an earlier one at the same
// source position with the same message: interprocedural and local
// rules can legitimately converge on one call site, and the user needs
// the finding once. The input must be position-sorted (RunPackage's
// order), so duplicates are adjacent up to the analyzer name.
func dedupe(fset *token.FileSet, ds []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if n := len(out); n > 0 {
			prev := out[n-1]
			if prev.Message == d.Message && fset.Position(prev.Pos) == fset.Position(d.Pos) {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}
