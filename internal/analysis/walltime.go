package analysis

import (
	"go/ast"
	"go/types"
)

// WallTime is the interprocedural companion of norawrand: using the
// wall-clock/env effect bits of function summaries, it flags reads that
// reach simulation code through calls rather than appearing in it.
// Two shapes are covered:
//
//  1. inside a simulation package, a call to a module-internal function
//     that can (transitively) read time.Now / os.Getenv — the read sits
//     in a helper package norawrand's import-level scope never sees;
//  2. anywhere in the module, a function value passed into an
//     internal/sim scheduling call (Engine.At/After/Go, NewReTimer, ...)
//     whose body can reach the wall clock — the handler executes under
//     the engine's deterministic clock no matter where it was written.
//
// Division of labor: direct time/os calls inside simulation packages are
// norawrand's domain (extern callees are skipped here), so each finding
// is reported exactly once.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "flag wall-clock/env reads reachable from simulation code through call chains",
	Why: "norawrand bounds what sim packages may call directly, but a wall-clock read " +
		"two helpers away — or inside a handler closure scheduled onto the engine from " +
		"non-sim code — still makes identical (scenario, seed) runs diverge. Call-graph " +
		"reachability closes that gap.",
	Run: runWallTime,
}

func runWallTime(pass *Pass) {
	inSim := inDeterministicPackage(pass.PkgPath)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if inSim {
				checkSimCall(pass, call)
			} else if isSimSchedulingCall(pass.Info, call) {
				checkHandlerArgs(pass, call)
			}
			return true
		})
	}
}

// checkSimCall flags calls (in simulation packages) to module-internal
// functions whose summary carries a wall-clock or env effect. Extern
// callees are norawrand's domain.
func checkSimCall(pass *Pass, call *ast.CallExpr) {
	callee := calleeFunc(pass.Info, call)
	if callee == nil {
		return
	}
	cs := pass.Summaries[FuncSym(callee)]
	if cs == nil {
		return
	}
	if cs.WallClock != "" {
		pass.Reportf(call.Pos(),
			"call to %s reaches the wall clock (%s) from a simulation package: use the sim clock (Proc.Now / Engine time)",
			callee.Name(), cs.WallClock)
	}
	if cs.EnvRead != "" {
		pass.Reportf(call.Pos(),
			"call to %s reads the environment (%s) from a simulation package: thread configuration through scenario options",
			callee.Name(), cs.EnvRead)
	}
}

// isSimSchedulingCall reports whether call invokes internal/sim API
// (package function or Engine/Proc method) — the points where function
// values become event handlers under the deterministic clock.
func isSimSchedulingCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == ModulePath+"/internal/sim"
}

// checkHandlerArgs flags function-valued arguments of a sim scheduling
// call whose bodies can reach the wall clock or the environment. It
// runs only outside simulation packages: inside them, module-internal
// chains are reported at their own call sites by checkSimCall and
// direct reads by norawrand, so scanning handler arguments there would
// only duplicate findings.
func checkHandlerArgs(pass *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		t := pass.Info.TypeOf(arg)
		if t == nil {
			continue
		}
		if _, ok := t.Underlying().(*types.Signature); !ok {
			continue
		}
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			if desc := funcLitWallEffect(pass, a); desc != "" {
				pass.Reportf(arg.Pos(),
					"handler scheduled onto the sim engine reaches %s: handlers run under the deterministic clock; use the sim clock / scenario options", desc)
			}
		case *ast.Ident, *ast.SelectorExpr:
			fn, _ := pass.Info.Uses[identOf(a)].(*types.Func)
			if fn == nil {
				continue
			}
			cs := pass.Summaries[FuncSym(fn)]
			if cs == nil {
				continue
			}
			if cs.WallClock != "" {
				pass.Reportf(arg.Pos(),
					"handler %s scheduled onto the sim engine reaches the wall clock (%s): handlers run under the deterministic clock; use the sim clock",
					fn.Name(), cs.WallClock)
			}
			if cs.EnvRead != "" {
				pass.Reportf(arg.Pos(),
					"handler %s scheduled onto the sim engine reads the environment (%s): thread configuration through scenario options",
					fn.Name(), cs.EnvRead)
			}
		}
	}
}

// identOf returns the identifier naming e: the ident itself or a
// selector's Sel.
func identOf(e ast.Expr) *ast.Ident {
	switch v := e.(type) {
	case *ast.Ident:
		return v
	case *ast.SelectorExpr:
		return v.Sel
	}
	return nil
}

// funcLitWallEffect scans a function literal's body for wall-clock/env
// reads — direct extern calls or module-internal chains — and returns a
// description of the first one found.
func funcLitWallEffect(pass *Pass, lit *ast.FuncLit) string {
	var desc string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cs := pass.Summaries.Lookup(calleeFunc(pass.Info, call))
		if cs == nil {
			return true
		}
		switch {
		case cs.WallClock != "":
			desc = "the wall clock (" + cs.WallClock + ")"
		case cs.EnvRead != "":
			desc = "the environment (" + cs.EnvRead + ")"
		}
		return desc == ""
	})
	return desc
}
