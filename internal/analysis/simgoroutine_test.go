package analysis_test

import (
	"testing"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/analysistest"
)

func TestSimGoroutine(t *testing.T) {
	analysistest.Run(t, analysis.SimGoroutine, "simgoroutine", "ec2wfsim/internal/flow/fx")
}

func TestSimGoroutineClean(t *testing.T) {
	// The sweep layer owns real concurrency; nothing there should fire.
	analysistest.Run(t, analysis.SimGoroutine, "simgoroutine_clean", "ec2wfsim/internal/sweep/fx")
}
