package sim

// Mailbox is an unbounded FIFO queue connecting simulation processes, the
// simulated analogue of a Go channel. Senders never block; receivers block
// until an item is available. Items are delivered in insertion order and
// blocked receivers are served FIFO.
type Mailbox[T any] struct {
	e       *Engine
	items   []T
	waiters []*Proc
	closed  bool
}

// NewMailbox returns an empty mailbox.
func NewMailbox[T any](e *Engine) *Mailbox[T] {
	return &Mailbox[T]{e: e}
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Put enqueues v, waking one blocked receiver if any.
func (m *Mailbox[T]) Put(v T) {
	if m.closed {
		panic("sim: Put on closed mailbox")
	}
	m.items = append(m.items, v)
	m.wakeOne()
}

// Close marks the mailbox closed. Blocked and future receivers drain the
// remaining items and then receive the zero value with ok == false.
func (m *Mailbox[T]) Close() {
	if m.closed {
		return
	}
	m.closed = true
	for _, p := range m.waiters {
		m.e.wake(p)
	}
	m.waiters = nil
}

func (m *Mailbox[T]) wakeOne() {
	if len(m.waiters) > 0 {
		p := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.e.wake(p)
	}
}

// Get dequeues the next item, blocking p until one is available. It
// returns ok == false when the mailbox is closed and drained.
func (m *Mailbox[T]) Get(p *Proc) (v T, ok bool) {
	for {
		if len(m.items) > 0 {
			v = m.items[0]
			var zero T
			m.items[0] = zero
			m.items = m.items[1:]
			// If items remain and other receivers are parked, hand one on.
			if len(m.items) > 0 {
				m.wakeOne()
			}
			return v, true
		}
		if m.closed {
			return v, false
		}
		m.waiters = append(m.waiters, p)
		p.suspend()
	}
}

// TryGet dequeues an item without blocking, reporting whether one was
// available.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	var zero T
	m.items[0] = zero
	m.items = m.items[1:]
	return v, true
}
