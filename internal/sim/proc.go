package sim

import "fmt"

// Proc is a simulation process: a goroutine that runs sequential simulation
// logic and yields to the engine whenever it sleeps or blocks. A Proc must
// only be used from its own goroutine (the function passed to Engine.Go).
type Proc struct {
	e        *Engine
	name     string
	id       int
	wakeCh   chan struct{}
	finished bool
	daemon   bool
	// resumeFn is the pre-bound resume callback scheduled by Sleep and
	// wake; binding it once keeps the park/resume cycle allocation-free.
	resumeFn func()
}

// Go starts a new process running fn. The process begins executing at the
// current simulation time (as a scheduled event, so the caller continues
// first). The name appears in deadlock and misuse panics.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	e.procSeq++
	p := &Proc{e: e, name: name, id: e.procSeq, wakeCh: make(chan struct{})}
	p.resumeFn = func() { e.resume(p) }
	e.live++
	e.At(e.now, func() { e.start(p, fn) })
	return p
}

// GoDaemon starts a background service process (e.g. a file server's
// write-back flusher). Daemons may stay blocked forever without tripping
// the engine's deadlock detector: when only daemons remain parked and the
// event queue is empty, Run simply returns.
func (e *Engine) GoDaemon(name string, fn func(p *Proc)) *Proc {
	p := e.Go(name, fn)
	p.daemon = true
	e.live--
	return p
}

// start launches the goroutine for p and waits for its first yield.
func (e *Engine) start(p *Proc, fn func(p *Proc)) {
	prev := e.cur
	e.cur = p
	//wfvet:ignore simgoroutine the engine itself is the one sanctioned goroutine owner: each Proc runs on a real goroutine but the yielded/wake handshake keeps exactly one runnable at a time, so the interleaving is the event queue's, not the host scheduler's
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.panicVal = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
			}
			p.finished = true
			if !p.daemon {
				e.live--
			}
			e.yielded <- struct{}{}
		}()
		fn(p)
	}()
	<-e.yielded
	e.cur = prev
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.e.now }

// park yields control to the engine and blocks until resumed.
func (p *Proc) park() {
	if p.e.cur != p {
		panic("sim: " + p.name + " parking while not the running process")
	}
	p.e.yielded <- struct{}{}
	<-p.wakeCh
}

// suspend parks the process with no scheduled wakeup; some other component
// must eventually call Engine.wake (via a synchronization primitive).
func (p *Proc) suspend() { p.park() }

// Suspend parks the process until some other component calls Resume. It is
// the low-level blocking primitive used by custom synchronization (e.g.
// the flow network's transfer completions).
func (p *Proc) Suspend() { p.suspend() }

// Resume schedules a suspended process to continue at the current time.
// The wakeup flows through the event queue, preserving determinism.
func (p *Proc) Resume() { p.e.wake(p) }

// Sleep advances the process by d simulated seconds. Negative durations
// panic; zero sleeps still round-trip through the event queue, which makes
// them a deterministic yield point.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s sleeping for negative duration %g", p.name, d))
	}
	p.e.schedule(p.e.now+d, p.resumeFn)
	p.park()
}

// Yield gives other runnable events at the current time a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }
