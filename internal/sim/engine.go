// Package sim implements a deterministic discrete-event simulation engine
// with goroutine-backed processes.
//
// The engine owns a virtual clock (float64 seconds) and an event heap.
// Simulation logic is written as ordinary sequential Go code inside
// processes (see Proc); a process that sleeps or blocks on a synchronization
// primitive parks its goroutine and hands control back to the engine, which
// advances the clock to the next event. Exactly one goroutine — either the
// engine or a single process — runs at any instant, so simulation state
// needs no locking and runs are bit-for-bit reproducible: events at equal
// times fire in scheduling order (FIFO by sequence number).
package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq int64
	fn  func()
}

// eventHeap is a min-heap ordered by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now      float64
	seq      int64
	events   eventHeap
	yielded  chan struct{} // signaled by a process when it parks or exits
	cur      *Proc
	panicVal interface{}
	procSeq  int
	live     int // number of live (started, unfinished) processes
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{yielded: make(chan struct{})}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a simulation bug.
func (e *Engine) At(t float64, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, e.now))
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{e: e, ev: ev}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	e  *Engine
	ev *event
}

// Stop cancels the timer if it has not fired. A stopped event's slot stays
// in the heap with a nil fn and is skipped when popped.
func (t *Timer) Stop() {
	if t != nil && t.ev != nil {
		t.ev.fn = nil
		t.ev = nil
	}
}

// Pending reports the number of live (non-cancelled) events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if ev.fn != nil {
			n++
		}
	}
	return n
}

// step pops and runs the next event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.fn == nil {
			continue // cancelled
		}
		if ev.at < e.now {
			panic("sim: event heap time went backwards")
		}
		e.now = ev.at
		ev.fn()
		if e.panicVal != nil {
			v := e.panicVal
			e.panicVal = nil
			panic(v)
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty. It panics (with the
// original value) if any process panicked.
func (e *Engine) Run() {
	for e.step() {
	}
	if e.live > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) still blocked with no pending events", e.live))
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
// It returns true if the queue drained before t.
func (e *Engine) RunUntil(t float64) bool {
	for len(e.events) > 0 {
		// Peek at the next live event.
		if e.events[0].fn == nil {
			heap.Pop(&e.events)
			continue
		}
		if e.events[0].at > t {
			e.now = t
			return false
		}
		e.step()
	}
	e.now = t
	return true
}

// wake schedules p to resume at the current time. It is the only way a
// suspended process gets control back, which keeps all wakeups ordered
// through the event queue.
func (e *Engine) wake(p *Proc) {
	if p.finished {
		panic("sim: waking finished process " + p.name)
	}
	e.At(e.now, func() { e.resume(p) })
}

// resume hands control to a parked process and waits for it to park again
// or exit.
func (e *Engine) resume(p *Proc) {
	if p.finished {
		panic("sim: resuming finished process " + p.name)
	}
	prev := e.cur
	e.cur = p
	p.wakeCh <- struct{}{}
	<-e.yielded
	e.cur = prev
}
