// Package sim implements a deterministic discrete-event simulation engine
// with goroutine-backed processes.
//
// The engine owns a virtual clock (float64 seconds) and an event heap.
// Simulation logic is written as ordinary sequential Go code inside
// processes (see Proc); a process that sleeps or blocks on a synchronization
// primitive parks its goroutine and hands control back to the engine, which
// advances the clock to the next event. Exactly one goroutine — either the
// engine or a single process — runs at any instant, so simulation state
// needs no locking and runs are bit-for-bit reproducible: events at equal
// times fire in scheduling order (FIFO by sequence number).
//
// Event records are recycled through a free list: a simulation that
// schedules millions of sleeps and timer re-arms (the flow network's
// steady-state transfer churn) allocates a bounded number of event structs
// rather than one per schedule. Recycling is guarded by a per-event
// generation counter so a stale Timer handle can never cancel an unrelated
// event that happens to reuse the same record.
package sim

import (
	"fmt"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq int64
	fn  func()
	// gen distinguishes successive uses of a recycled event record;
	// Timer/ReTimer handles remember the generation they scheduled and
	// become no-ops once it moves on.
	gen uint64
}

// eventHeap is a min-heap ordered by (time, sequence). The sift
// routines are open-coded (rather than container/heap over an
// interface) because every simulated event pays for one push and one
// pop: the comparisons inline and the boxing disappears. The algorithms
// match container/heap exactly, so the heap layout — and therefore the
// order of equal-time events — is unchanged.
type eventHeap []*event

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) pushEvent(ev *event) {
	h := append(e.events, ev)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !eventLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	e.events = h
}

func (e *Engine) popEvent() *event {
	h := e.events
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && eventLess(h[r], h[j]) {
			j = r
		}
		if !eventLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	e.events = h
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now      float64
	seq      int64
	events   eventHeap
	free     []*event      // recycled event records
	yielded  chan struct{} // signaled by a process when it parks or exits
	cur      *Proc
	panicVal interface{}
	procSeq  int
	live     int // number of live (started, unfinished) processes
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{yielded: make(chan struct{})}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Scheduled returns the total number of events ever scheduled on the
// engine — a deterministic fingerprint of the run's internal activity.
// Run-artifact trailers record it so replay verification cross-checks
// the engine's behaviour beyond the emitted event stream.
func (e *Engine) Scheduled() int64 { return e.seq }

// schedule enqueues fn at absolute time t, reusing a recycled event record
// when one is available. It is the allocation-free core of At/After and the
// process wakeup path.
func (e *Engine) schedule(t float64, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = t, e.seq, fn
	} else {
		ev = &event{at: t, seq: e.seq, fn: fn}
	}
	e.pushEvent(ev)
	return ev
}

// recycle returns a popped event record to the free list for reuse.
// Bumping the generation invalidates any Timer/ReTimer still holding it.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a simulation bug.
func (e *Engine) At(t float64, fn func()) *Timer {
	ev := e.schedule(t, fn)
	return &Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the timer if it has not fired. A stopped event's slot stays
// in the heap with a nil fn and is skipped (and recycled) when popped.
// Stopping a timer whose event already fired is a no-op: the generation
// check keeps a stale handle from cancelling a recycled record.
func (t *Timer) Stop() {
	if t != nil && t.ev != nil {
		if t.ev.gen == t.gen {
			t.ev.fn = nil
		}
		t.ev = nil
	}
}

// ReTimer is a reusable one-shot timer bound to a fixed callback. Arm
// schedules the callback, replacing any previous schedule; after creation,
// arming and stopping never allocate (event records come from the engine's
// free list). It exists for hot paths that re-arm one logical timer on
// every event — the flow network's completion timer.
type ReTimer struct {
	e   *Engine
	fn  func()
	ev  *event
	gen uint64
}

// NewReTimer returns an unarmed reusable timer that runs fn when it fires.
func (e *Engine) NewReTimer(fn func()) *ReTimer {
	return &ReTimer{e: e, fn: fn}
}

// Arm schedules the timer's callback d seconds from now, cancelling any
// previously armed schedule.
func (t *ReTimer) Arm(d float64) {
	t.Stop()
	ev := t.e.schedule(t.e.now+d, t.fn)
	t.ev, t.gen = ev, ev.gen
}

// Stop cancels the armed schedule, if any. Safe after the timer fired.
func (t *ReTimer) Stop() {
	if t.ev != nil {
		if t.ev.gen == t.gen {
			t.ev.fn = nil
		}
		t.ev = nil
	}
}

// Pending reports the number of live (non-cancelled) events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if ev.fn != nil {
			n++
		}
	}
	return n
}

// step pops and runs the next event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := e.popEvent()
		if ev.fn == nil {
			e.recycle(ev) // cancelled
			continue
		}
		if ev.at < e.now {
			panic("sim: event heap time went backwards")
		}
		e.now = ev.at
		fn := ev.fn
		fn()
		e.recycle(ev)
		if e.panicVal != nil {
			v := e.panicVal
			e.panicVal = nil
			panic(v)
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty. It panics (with the
// original value) if any process panicked.
func (e *Engine) Run() {
	for e.step() {
	}
	if e.live > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) still blocked with no pending events", e.live))
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
// It returns true if the queue drained before t.
func (e *Engine) RunUntil(t float64) bool {
	for len(e.events) > 0 {
		// Peek at the next live event.
		if e.events[0].fn == nil {
			e.recycle(e.popEvent())
			continue
		}
		if e.events[0].at > t {
			e.now = t
			return false
		}
		e.step()
	}
	e.now = t
	return true
}

// wake schedules p to resume at the current time. It is the only way a
// suspended process gets control back, which keeps all wakeups ordered
// through the event queue.
func (e *Engine) wake(p *Proc) {
	if p.finished {
		panic("sim: waking finished process " + p.name)
	}
	e.schedule(e.now, p.resumeFn)
}

// resume hands control to a parked process and waits for it to park again
// or exit.
func (e *Engine) resume(p *Proc) {
	if p.finished {
		panic("sim: resuming finished process " + p.name)
	}
	prev := e.cur
	e.cur = p
	p.wakeCh <- struct{}{}
	<-e.yielded
	e.cur = prev
}
