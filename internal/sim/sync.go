package sim

import "fmt"

// Semaphore is a counted resource with FIFO admission. Acquire blocks the
// calling process until the requested units are available; units are
// granted strictly in request order (no barging), which models batch-slot
// and memory admission in the cluster.
type Semaphore struct {
	e        *Engine
	name     string
	capacity int
	avail    int
	waiters  []semWaiter
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with the given capacity.
func NewSemaphore(e *Engine, name string, capacity int) *Semaphore {
	if capacity < 0 {
		panic("sim: negative semaphore capacity")
	}
	return &Semaphore{e: e, name: name, capacity: capacity, avail: capacity}
}

// Capacity returns the total units.
func (s *Semaphore) Capacity() int { return s.capacity }

// Available returns the currently free units.
func (s *Semaphore) Available() int { return s.avail }

// InUse returns capacity minus available.
func (s *Semaphore) InUse() int { return s.capacity - s.avail }

// Waiting returns the number of blocked acquirers.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// Acquire takes n units, blocking p until they are available. Requesting
// more than the total capacity panics (it would deadlock forever).
func (s *Semaphore) Acquire(p *Proc, n int) {
	if n < 0 {
		panic("sim: negative semaphore acquire on " + s.name)
	}
	if n > s.capacity {
		panic(fmt.Sprintf("sim: acquire %d exceeds capacity %d of %s", n, s.capacity, s.name))
	}
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		return
	}
	s.waiters = append(s.waiters, semWaiter{p: p, n: n})
	p.suspend()
}

// TryAcquire takes n units if immediately available, reporting success.
func (s *Semaphore) TryAcquire(n int) bool {
	if n < 0 || n > s.capacity {
		return false
	}
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		return true
	}
	return false
}

// Release returns n units and admits as many FIFO waiters as now fit.
func (s *Semaphore) Release(n int) {
	if n < 0 {
		panic("sim: negative semaphore release on " + s.name)
	}
	s.avail += n
	if s.avail > s.capacity {
		panic(fmt.Sprintf("sim: release overflows capacity of %s (%d > %d)", s.name, s.avail, s.capacity))
	}
	s.admit()
}

// admit wakes queued waiters, in order, while they fit.
func (s *Semaphore) admit() {
	for len(s.waiters) > 0 && s.waiters[0].n <= s.avail {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.avail -= w.n
		s.e.wake(w.p)
	}
}

// WaitGroup counts outstanding work, waking all waiters when the count
// reaches zero.
type WaitGroup struct {
	e       *Engine
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a wait group with count 0.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{e: e} }

// Add adds delta (which may be negative) to the count.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup count")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			w.e.wake(p)
		}
		w.waiters = nil
	}
}

// Done decrements the count by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Count returns the current count.
func (w *WaitGroup) Count() int { return w.count }

// Wait blocks p until the count is zero. A zero count returns immediately.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.suspend()
}

// Signal is a one-shot broadcast event: processes wait until it is
// triggered; waits after the trigger return immediately.
type Signal struct {
	e       *Engine
	fired   bool
	waiters []*Proc
}

// NewSignal returns an untriggered signal.
func NewSignal(e *Engine) *Signal { return &Signal{e: e} }

// Fired reports whether the signal has been triggered.
func (s *Signal) Fired() bool { return s.fired }

// Trigger fires the signal, waking all waiters. Triggering twice is a
// no-op.
func (s *Signal) Trigger() {
	if s.fired {
		return
	}
	s.fired = true
	for _, p := range s.waiters {
		s.e.wake(p)
	}
	s.waiters = nil
}

// Wait blocks p until the signal fires.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.suspend()
}
