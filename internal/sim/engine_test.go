package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(2, func() { got = append(got, 2) })
	e.At(1, func() { got = append(got, 1) })
	e.At(3, func() { got = append(got, 3) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %g, want 3", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(5, func() {})
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(1, func() { fired = true })
	tm.Stop()
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	drained := e.RunUntil(2.5)
	if drained {
		t.Error("RunUntil reported drained queue")
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1,2 only", fired)
	}
	if e.Now() != 2.5 {
		t.Errorf("Now() = %g, want 2.5", e.Now())
	}
	if !e.RunUntil(10) {
		t.Error("second RunUntil should drain")
	}
	if len(fired) != 4 {
		t.Errorf("fired %v, want all 4", fired)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake []float64
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(1.5)
		wake = append(wake, p.Now())
		p.Sleep(2.5)
		wake = append(wake, p.Now())
	})
	e.Run()
	if len(wake) != 2 || wake[0] != 1.5 || wake[1] != 4 {
		t.Errorf("wake times = %v, want [1.5 4]", wake)
	}
}

func TestProcNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	e.Go("bad", func(p *Proc) { p.Sleep(-1) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from negative sleep")
		}
	}()
	e.Run()
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Go("boom", func(p *Proc) { panic("kaboom") })
	defer func() {
		if recover() == nil {
			t.Fatal("process panic did not propagate to Run")
		}
	}()
	e.Run()
}

func TestInterleavedProcsDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(1)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
	// Same sleep times must interleave in spawn order.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("interleaving = %v, want %v", first, want)
		}
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "cores", 2)
	inUse, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Go("worker", func(p *Proc) {
			sem.Acquire(p, 1)
			inUse++
			if inUse > peak {
				peak = inUse
			}
			p.Sleep(10)
			inUse--
			sem.Release(1)
		})
	}
	e.Run()
	if peak != 2 {
		t.Errorf("peak concurrency = %d, want 2", peak)
	}
	if e.Now() != 30 {
		t.Errorf("makespan = %g, want 30 (3 waves of 10s)", e.Now())
	}
	if sem.Available() != 2 {
		t.Errorf("Available() = %d, want 2 after drain", sem.Available())
	}
}

func TestSemaphoreFIFONoBarging(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "mem", 4)
	var order []int
	// First proc takes everything; a big request queues ahead of a small
	// one; the small one must not barge past it.
	e.Go("hog", func(p *Proc) {
		sem.Acquire(p, 4)
		p.Sleep(10)
		sem.Release(4)
	})
	e.Go("big", func(p *Proc) {
		p.Sleep(1)
		sem.Acquire(p, 3)
		order = append(order, 3)
		sem.Release(3)
	})
	e.Go("small", func(p *Proc) {
		p.Sleep(2)
		sem.Acquire(p, 1)
		order = append(order, 1)
		sem.Release(1)
	})
	e.Run()
	if len(order) != 2 || order[0] != 3 {
		t.Errorf("admission order = %v, want big (3) first", order)
	}
}

func TestSemaphoreOverCapacityPanics(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s", 2)
	e.Go("greedy", func(p *Proc) { sem.Acquire(p, 3) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for acquire > capacity")
		}
	}()
	e.Run()
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s", 2)
	if !sem.TryAcquire(2) {
		t.Fatal("TryAcquire(2) on fresh semaphore failed")
	}
	if sem.TryAcquire(1) {
		t.Fatal("TryAcquire(1) succeeded on empty semaphore")
	}
	sem.Release(2)
	if !sem.TryAcquire(1) {
		t.Fatal("TryAcquire(1) after release failed")
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	wg.Add(3)
	doneAt := -1.0
	for i := 1; i <= 3; i++ {
		d := float64(i)
		e.Go("task", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 3 {
		t.Errorf("waiter released at %g, want 3", doneAt)
	}
}

func TestWaitGroupZeroCountNoBlock(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	ran := false
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	e.Run()
	if !ran {
		t.Error("Wait on zero-count group blocked forever")
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	released := 0
	for i := 0; i < 5; i++ {
		e.Go("waiter", func(p *Proc) {
			sig.Wait(p)
			released++
		})
	}
	e.At(7, func() { sig.Trigger() })
	e.Go("late", func(p *Proc) {
		p.Sleep(9)
		sig.Wait(p) // already fired: returns immediately
		released++
	})
	e.Run()
	if released != 6 {
		t.Errorf("released = %d, want 6", released)
	}
	if !sig.Fired() {
		t.Error("signal not marked fired")
	}
}

func TestMailboxFIFO(t *testing.T) {
	e := NewEngine()
	m := NewMailbox[int](e)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			m.Put(i)
		}
		m.Close()
	})
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := m.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("got %v, want 5 items", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestMailboxMultipleConsumers(t *testing.T) {
	e := NewEngine()
	m := NewMailbox[int](e)
	total := 0
	for c := 0; c < 3; c++ {
		e.Go("consumer", func(p *Proc) {
			for {
				v, ok := m.Get(p)
				if !ok {
					return
				}
				total += v
				p.Sleep(1)
			}
		})
	}
	e.Go("producer", func(p *Proc) {
		p.Sleep(0.5)
		for i := 1; i <= 9; i++ {
			m.Put(i)
		}
		m.Close()
	})
	e.Run()
	if total != 45 {
		t.Errorf("total = %d, want 45 (all items consumed once)", total)
	}
}

func TestMailboxTryGet(t *testing.T) {
	e := NewEngine()
	m := NewMailbox[string](e)
	if _, ok := m.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox succeeded")
	}
	m.Put("x")
	v, ok := m.TryGet()
	if !ok || v != "x" {
		t.Fatalf("TryGet = %q, %v; want x, true", v, ok)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s", 1)
	e.Go("a", func(p *Proc) {
		sem.Acquire(p, 1)
		// Never released; second proc blocks forever.
	})
	e.Go("b", func(p *Proc) { sem.Acquire(p, 1) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e.Run()
}

// Property: for any set of (start, duration) jobs on an unbounded engine,
// the final clock equals max(start+duration) and every job observes its own
// wake time exactly.
func TestPropertySleepArithmetic(t *testing.T) {
	f := func(starts []uint16, durs []uint16) bool {
		n := len(starts)
		if len(durs) < n {
			n = len(durs)
		}
		if n == 0 {
			return true
		}
		if n > 50 {
			n = 50
		}
		e := NewEngine()
		maxEnd := 0.0
		ok := true
		for i := 0; i < n; i++ {
			s := float64(starts[i] % 1000)
			d := float64(durs[i] % 1000)
			end := s + d
			if end > maxEnd {
				maxEnd = end
			}
			e.Go("job", func(p *Proc) {
				p.Sleep(s)
				p.Sleep(d)
				if p.Now() != end {
					ok = false
				}
			})
		}
		e.Run()
		return ok && e.Now() == maxEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a semaphore never admits more than its capacity regardless of
// the request pattern.
func TestPropertySemaphoreNeverOversubscribed(t *testing.T) {
	f := func(caps uint8, reqs []uint8) bool {
		capacity := int(caps%8) + 1
		e := NewEngine()
		sem := NewSemaphore(e, "s", capacity)
		inUse, violated := 0, false
		n := len(reqs)
		if n > 40 {
			n = 40
		}
		for i := 0; i < n; i++ {
			need := int(reqs[i])%capacity + 1
			e.Go("w", func(p *Proc) {
				sem.Acquire(p, need)
				inUse += need
				if inUse > capacity {
					violated = true
				}
				p.Sleep(1)
				inUse -= need
				sem.Release(need)
			})
		}
		e.Run()
		return !violated && sem.Available() == capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The event free list must not let a stale Timer handle cancel an
// unrelated event that reuses the same record.
func TestStaleTimerStopDoesNotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	var fired []string
	tm := e.After(1, func() { fired = append(fired, "a") })
	if !e.step() { // fires "a"; its event record is recycled
		t.Fatal("no event to run")
	}
	e.After(1, func() { fired = append(fired, "b") }) // reuses the record
	tm.Stop()                                         // stale handle: must be a no-op
	e.Run()
	if len(fired) != 2 || fired[1] != "b" {
		t.Fatalf("fired = %v, want [a b] (stale Stop cancelled a recycled event)", fired)
	}
}

// ReTimer re-arming must behave like stop+schedule: only the last armed
// schedule fires, and firing order with respect to other events follows
// scheduling order exactly as for plain timers.
func TestReTimerRearmAndStop(t *testing.T) {
	e := NewEngine()
	var fired int
	rt := e.NewReTimer(func() { fired++ })
	rt.Arm(5)
	rt.Arm(2) // replaces the first schedule
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if e.Now() != 2 {
		t.Fatalf("fired at %g, want 2", e.Now())
	}
	rt.Arm(3)
	rt.Stop()
	e.Run()
	if fired != 1 {
		t.Fatalf("stopped ReTimer fired anyway (count %d)", fired)
	}
	// Stop after firing must not disturb a subsequent schedule that
	// reuses the recycled event record.
	rt.Arm(1)
	e.Run()
	rt.Stop()
	other := false
	e.After(1, func() { other = true })
	rt.Stop() // stale again
	e.Run()
	if fired != 2 || !other {
		t.Fatalf("fired=%d other=%v, want 2 true", fired, other)
	}
}

// Steady-state sleep churn must not allocate: event records and the
// process resume closure are reused.
func TestSleepChurnAllocationFree(t *testing.T) {
	e := NewEngine()
	e.GoDaemon("ticker", func(p *Proc) {
		for {
			p.Sleep(1)
		}
	})
	e.RunUntil(10) // warm up the free list
	allocs := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + 5)
	})
	if allocs > 0 {
		t.Errorf("sleep churn allocated %.1f objects per 5 ticks, want 0", allocs)
	}
}
