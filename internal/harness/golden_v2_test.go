package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The v2 golden file pins the paper numbers as computed under the
// coalescing flow solver (scenario flow_version 2). v2 is not
// bit-identical to v1 — deferred same-timestamp solves reorder float
// arithmetic within the solver's tolerance contract — so it gets its
// own pinned file rather than sharing testdata/golden.json, and this
// test is what notices if a v2 refactor drifts a makespan. The file
// regenerates deliberately with:
//
//	go test ./internal/harness -run TestGoldenV2 -update-golden

type goldenV2Data struct {
	MontageGrid []goldenCell        `json:"montage_grid"`
	Failure     []goldenFailureCell `json:"failure_ablation"`
	Outage      []goldenOutageCell  `json:"outage_ablation"`
}

func collectGoldenV2(t *testing.T) goldenV2Data {
	t.Helper()
	var g goldenV2Data
	cfgs := GridConfigs("montage")
	for i := range cfgs {
		cfgs[i].FlowVersion = 2
	}
	results, err := Sweep(cfgs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		g.MontageGrid = append(g.MontageGrid, goldenCell{
			Label:      fmt.Sprintf("%s/%d", cfgs[i].Storage, cfgs[i].Workers),
			Makespan:   r.Makespan,
			CostHour:   r.CostHour.Total(),
			CostSecond: r.CostSecond.Total(),
		})
	}
	// The injection subsystems exercise the solver differently (outage
	// kills detach in-flight transfers mid-stream), so one failure row
	// and one outage row pin those paths under v2 as well.
	for _, rate := range []float64{0, 0.1} {
		r, err := RunCached(RunConfig{
			App: "montage", Storage: "pvfs",
			Workers: DefaultFailureStudyWorkers, FailureRate: rate,
			FlowVersion: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Failure = append(g.Failure, goldenFailureCell{
			Label:      fmt.Sprintf("montage/pvfs r=%g flow=2", rate),
			Makespan:   r.Makespan,
			CostSecond: r.CostSecond.Total(),
			Failures:   r.Failures,
			Retries:    r.Retries,
		})
	}
	for _, rate := range []float64{0, 1} {
		r, err := RunCached(RunConfig{
			App: "montage", Storage: "pvfs",
			Workers: DefaultOutageStudyWorkers, OutageRate: rate,
			CheckpointInterval: DefaultOutageStudyCheckpoint,
			FlowVersion:        2,
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Outage = append(g.Outage, goldenOutageCell{
			Label:       fmt.Sprintf("montage/pvfs out=%g +ckpt flow=2", rate),
			Makespan:    r.Makespan,
			CostSecond:  r.CostSecond.Total(),
			Outages:     r.Outages,
			OutageKills: r.OutageKills,
			Checkpoints: r.Checkpoints,
			LostWork:    r.LostWorkSeconds,
		})
	}
	return g
}

// TestGoldenV2PaperNumbers is the v2 counterpart of
// TestGoldenPaperNumbers: exact float64 comparison against the pinned
// file (the simulator is deterministic under either solver version),
// plus a cross-version sanity bound — v2 makespans must stay within 1%
// of the v1 grid, which catches a v2 bug large enough to change the
// paper's conclusions even when the pinned file is being regenerated.
func TestGoldenV2PaperNumbers(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale grid")
	}
	got := collectGoldenV2(t)

	v1cells, err := Grid("montage", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1cells) != len(got.MontageGrid) {
		t.Fatalf("v1 grid has %d cells, v2 grid %d", len(v1cells), len(got.MontageGrid))
	}
	for i, c := range v1cells {
		v1, v2 := c.Result.Makespan, got.MontageGrid[i].Makespan
		if diff := v2 - v1; diff > 0.01*v1 || diff < -0.01*v1 {
			t.Errorf("cell %s: v2 makespan %.3f diverges from v1 %.3f beyond 1%%",
				got.MontageGrid[i].Label, v2, v1)
		}
	}

	path := filepath.Join("testdata", "golden_v2.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading v2 golden file (run with -update-golden to create): %v", err)
	}
	var want goldenV2Data
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	compareCells(t, "montage grid (v2)", got.MontageGrid, want.MontageGrid)
	if len(got.Failure) != len(want.Failure) {
		t.Errorf("failure ablation: %d cells, golden has %d", len(got.Failure), len(want.Failure))
	} else {
		for i := range want.Failure {
			if got.Failure[i] != want.Failure[i] {
				t.Errorf("failure cell %s drifted:\n got: %+v\nwant: %+v",
					want.Failure[i].Label, got.Failure[i], want.Failure[i])
			}
		}
	}
	if len(got.Outage) != len(want.Outage) {
		t.Errorf("outage ablation: %d cells, golden has %d", len(got.Outage), len(want.Outage))
	} else {
		for i := range want.Outage {
			if got.Outage[i] != want.Outage[i] {
				t.Errorf("outage cell %s drifted:\n got: %+v\nwant: %+v",
					want.Outage[i].Label, got.Outage[i], want.Outage[i])
			}
		}
	}
}
