package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/eventlog"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/workflow"
)

// replayWorkflow builds the scaled-down Montage instance the replay
// tests share. Small enough that recording every backend twice stays
// fast, large enough that the schedule has real contention.
func replayWorkflow(t *testing.T) *workflow.Workflow {
	t.Helper()
	w, err := apps.Montage(apps.MontageConfig{Images: 10})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// replayWorkers picks a worker count the backend supports: its minimum,
// at least 2 so the schedule is genuinely concurrent, except local
// which requires exactly one node.
func replayWorkers(t *testing.T, name string) int {
	t.Helper()
	sys, err := storage.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if name == "local" {
		return 1
	}
	n := sys.MinWorkers()
	if n < 2 {
		n = 2
	}
	return n
}

// TestReplayVerifyAllBackends is the acceptance bar for the replay
// layer: for every storage backend under both flow-solver versions,
// a recorded run replays to a byte-identical event stream.
func TestReplayVerifyAllBackends(t *testing.T) {
	t.Parallel()
	w := replayWorkflow(t)
	for _, name := range storage.Names() {
		for _, version := range []int{0, 2} {
			name, version := name, version
			t.Run(fmt.Sprintf("%s/flow-v%d", name, version), func(t *testing.T) {
				t.Parallel()
				cfg := RunConfig{
					App: "montage", Storage: name,
					Workers: replayWorkers(t, name), Workflow: w, FlowVersion: version,
				}
				var buf bytes.Buffer
				if _, err := RunRecorded(cfg, &buf); err != nil {
					t.Fatal(err)
				}
				_, v, err := ReplayVerify(buf.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				if !v.Match {
					t.Fatalf("replay diverged at seq %d: %s", v.Seq, v.Detail)
				}
				if v.Events == 0 {
					t.Fatal("recorded log has no events")
				}
			})
		}
	}
}

// TestReplayVerifyFailureOutageCheckpoint replays the hard mode: failure
// injection, correlated outages and checkpointing all on, exercising
// the retry, kill and checkpoint event paths.
func TestReplayVerifyFailureOutageCheckpoint(t *testing.T) {
	t.Parallel()
	cfg := RunConfig{
		App: "montage", Storage: "nfs", Workers: 2,
		Workflow:    replayWorkflow(t),
		FailureRate: 0.2, OutageRate: 30, OutageDuration: 5,
		CheckpointInterval: 2,
	}
	var buf bytes.Buffer
	r, err := RunRecorded(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Retries == 0 {
		t.Fatal("test premise broken: no retries were injected")
	}
	_, v, err := ReplayVerify(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Match {
		t.Fatalf("replay diverged at seq %d: %s", v.Seq, v.Detail)
	}
}

// TestRecordedMatchesUnrecorded pins the zero-cost contract from the
// other side: recording must not perturb the simulation, so a recorded
// run's result equals the plain run's bit for bit.
func TestRecordedMatchesUnrecorded(t *testing.T) {
	t.Parallel()
	cfg := RunConfig{
		App: "montage", Storage: "gluster-nufa", Workers: 2,
		Workflow: replayWorkflow(t),
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	recorded, err := RunRecorded(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	pj, _ := json.Marshal(plain.JSONRow())
	rj, _ := json.Marshal(recorded.JSONRow())
	if !bytes.Equal(pj, rj) {
		t.Errorf("recording perturbed the run:\nplain:    %s\nrecorded: %s", pj, rj)
	}
}

// TestReplayVerifyCorruptLog asserts the verifier refuses a damaged log
// with the decoder's typed error instead of replaying garbage.
func TestReplayVerifyCorruptLog(t *testing.T) {
	t.Parallel()
	cfg := RunConfig{
		App: "montage", Storage: "local", Workers: 1,
		Workflow: replayWorkflow(t),
	}
	var buf bytes.Buffer
	if _, err := RunRecorded(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x01
	_, v, err := ReplayVerify(data)
	if err == nil {
		// A flipped bit can land inside a numeric literal and still
		// decode; then the replay must report a divergence instead.
		if v.Match {
			t.Fatal("corrupt log verified clean")
		}
		return
	}
	var ce *eventlog.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt log failed with %T (%v), want *eventlog.CorruptError", err, err)
	}
}

// TestSweepRecordedDeterminism extends the sweep engine's determinism
// bar to event logs: the same recorded cells at -parallel 1 and
// -parallel 8 yield byte-identical streams, in input order.
func TestSweepRecordedDeterminism(t *testing.T) {
	t.Parallel()
	w := replayWorkflow(t)
	cfgs := []RunConfig{
		{App: "montage", Storage: "nfs-sync", Workers: 2, Workflow: w},
		{App: "montage", Storage: "pvfs", Workers: 2, Workflow: w},
		{App: "montage", Storage: "s3", Workers: 2, Workflow: w},
	}
	serial, err := SweepRecorded(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := SweepRecorded(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(concurrent) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(concurrent))
	}
	for i := range serial {
		if !bytes.Equal(serial[i].Log, concurrent[i].Log) {
			t.Errorf("cell %d (%s): logs differ between -parallel 1 and -parallel 8",
				i, cfgs[i].Storage)
		}
	}
}

// TestGoldenEventLog pins the exact byte stream of one small recorded
// cell, so any change to the event schema, the emission order or the
// framing is a deliberate golden update, never silent drift.
//
// Regenerate deliberately with:
//
//	go test ./internal/harness -run TestGoldenEventLog -update-golden
func TestGoldenEventLog(t *testing.T) {
	t.Parallel()
	w, err := apps.Montage(apps.MontageConfig{Images: 6})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{App: "montage", Storage: "nfs-sync", Workers: 2, Workflow: w}
	var buf bytes.Buffer
	if _, err := RunRecorded(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "golden_montage_nfs-sync.wfevt")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden event log (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		// Decode both sides for a readable first divergence.
		_, ge, gt, gerr := eventlog.Decode(got)
		_, we, wt, werr := eventlog.Decode(want)
		if gerr != nil || werr != nil {
			t.Fatalf("event log drifted and decode failed (got: %v, want: %v)", gerr, werr)
		}
		seq, detail := firstDivergence(we, ge, wt, gt)
		t.Fatalf("event log drifted from golden at seq %d: %s", seq, detail)
	}
	// The golden must also replay-verify: the embedded workflow and spec
	// alone reconstruct the run.
	_, v, err := ReplayVerify(want)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Match {
		t.Fatalf("golden log does not replay-verify: seq %d: %s", v.Seq, v.Detail)
	}
}
