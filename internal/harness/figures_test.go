package harness

import (
	"strings"
	"testing"
)

func TestTableIOutput(t *testing.T) {
	t.Parallel()
	tb, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{
		"Montage", "High", "Low",
		"Broadband", "Medium",
		"Epigenome",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestDiskBenchTable(t *testing.T) {
	t.Parallel()
	out := DiskBench().String()
	for _, want := range []string{"20.0 MB/s", "80.0 MB/s", "375.0 MB/s", "41m40"} {
		if !strings.Contains(out, want) {
			t.Errorf("disk table missing %q:\n%s", want, out)
		}
	}
}

func TestRuntimeFigureValidation(t *testing.T) {
	t.Parallel()
	if _, _, err := RuntimeFigure(5); err == nil {
		t.Error("RuntimeFigure(5) should fail (cost figure)")
	}
	if _, _, err := RuntimeFigure(1); err == nil {
		t.Error("RuntimeFigure(1) should fail")
	}
}

func TestCostFigureValidation(t *testing.T) {
	t.Parallel()
	if _, _, err := CostFigure(2, nil); err == nil {
		t.Error("CostFigure(2) should fail (runtime figure)")
	}
}

func TestRuntimeAndCostFiguresRender(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale grids")
	}
	out, cells, err := RuntimeFigure(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 3", "Epigenome", "local n=1", "s3 n=8", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 3 missing %q:\n%s", want, out)
		}
	}
	costOut, _, err := CostFigure(6, cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 6 (top)", "Fig. 6 (bottom)", "per-hour", "per-second"} {
		if !strings.Contains(costOut, want) {
			t.Errorf("figure 6 missing %q:\n%s", want, costOut)
		}
	}
}

func TestAblationRegistry(t *testing.T) {
	t.Parallel()
	if _, _, err := Ablation("bogus"); err == nil {
		t.Error("unknown ablation should fail")
	}
	if len(AblationNames()) != 11 {
		t.Errorf("AblationNames = %v, want 11 entries", AblationNames())
	}
}

func TestNFSSyncAblation(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale runs")
	}
	results, out, err := Ablation("nfssync")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	async, sync := results[0].Result, results[1].Result
	if async.Makespan >= sync.Makespan {
		t.Errorf("async NFS (%.0f s) not faster than sync (%.0f s) for write-heavy Montage",
			async.Makespan, sync.Makespan)
	}
	if !strings.Contains(out, "nfs-sync") {
		t.Error("rendered ablation missing labels")
	}
}

func TestLocalityAblationImproves(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale runs")
	}
	results, _, err := Ablation("locality")
	if err != nil {
		t.Fatal(err)
	}
	blind, aware := results[0].Result, results[1].Result
	if aware.Stats.NetworkBytes >= blind.Stats.NetworkBytes {
		t.Errorf("data-aware scheduler moved %.2e bytes, blind moved %.2e; expected a cut",
			aware.Stats.NetworkBytes, blind.Stats.NetworkBytes)
	}
}

func TestDiskInitAblationNotWorthIt(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale runs")
	}
	results, _, err := Ablation("diskinit")
	if err != nil {
		t.Fatal(err)
	}
	plain, inited := results[0].Result, results[1].Result
	// The paper's §III.C argument: with initialization time charged, the
	// single-workflow case does not come out ahead.
	if inited.Makespan < plain.Makespan {
		t.Errorf("zero-init total %.0f s beat uninitialized %.0f s; the paper's economics argument broke",
			inited.Makespan, plain.Makespan)
	}
}

func TestSupportsWorkersMatrix(t *testing.T) {
	t.Parallel()
	cases := []struct {
		sys     string
		workers int
		want    bool
	}{
		{"local", 1, true},
		{"local", 2, false},
		{"gluster-nufa", 1, false},
		{"gluster-nufa", 2, true},
		{"pvfs", 1, false},
		{"s3", 1, true},
		{"nfs", 1, true},
		{"nope", 4, false},
	}
	for _, c := range cases {
		if got := supportsWorkers(c.sys, c.workers); got != c.want {
			t.Errorf("supportsWorkers(%s, %d) = %v, want %v", c.sys, c.workers, got, c.want)
		}
	}
}

func TestFindHelper(t *testing.T) {
	t.Parallel()
	cells := []Cell{{System: "s3", Workers: 2}, {System: "nfs", Workers: 4}}
	if Find(cells, "nfs", 4) == nil {
		t.Error("Find missed an existing cell")
	}
	if Find(cells, "nfs", 8) != nil {
		t.Error("Find invented a cell")
	}
}

// "In our previous work we found that the c1.xlarge type delivers the
// best overall performance for the applications considered here" (§III.B):
// at an equal hourly budget, c1.xlarge workers beat the alternatives for
// every application.
func TestWorkerTypeAblationC1XLargeBest(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale runs")
	}
	results, _, err := Ablation("workertype")
	if err != nil {
		t.Fatal(err)
	}
	// Results come in groups of 3 per application, c1.xlarge first.
	for i := 0; i+2 < len(results); i += 3 {
		c1 := results[i].Result.Makespan
		for _, alt := range results[i+1 : i+3] {
			if c1 >= alt.Result.Makespan {
				t.Errorf("%s: c1.xlarge (%.0f s) not faster than %s (%.0f s)",
					results[i].Label, c1, alt.Label, alt.Result.Makespan)
			}
		}
	}
}
