package harness

import (
	"fmt"
	"strings"

	"ec2wfsim/internal/report"
	"ec2wfsim/internal/sweep"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/wfprof"
)

// appForFigure maps the paper's runtime figures to applications.
var appForFigure = map[int]string{
	2: "montage",
	3: "epigenome",
	4: "broadband",
	5: "montage",
	6: "epigenome",
	7: "broadband",
}

// TableI regenerates the paper's application resource-usage comparison.
// The three application profiles dispatch through the sweep engine (one
// cell per application) and share the cached paper-scale DAGs with the
// figure grids.
func TableI() (*report.Table, error) {
	eng := &sweep.Engine[string, [4]string]{
		Run: func(name string) ([4]string, error) {
			w, err := paperWorkflow(name)
			if err != nil {
				return [4]string{}, err
			}
			p := wfprof.Analyze(w)
			return [4]string{title(name), p.IOClass.String(), p.MemoryClass.String(), p.CPUClass.String()}, nil
		},
		Parallel: defaultParallel(),
	}
	rows, err := eng.Map([]string{"montage", "broadband", "epigenome"})
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "TABLE I — APPLICATION RESOURCE USAGE COMPARISON",
		Header: []string{"Application", "I/O", "Memory", "CPU"},
	}
	for _, row := range rows {
		t.AddRow(row[0], row[1], row[2], row[3])
	}
	return t, nil
}

// RuntimeFigure regenerates Figure 2, 3 or 4: makespan for the
// application across storage systems and cluster sizes.
func RuntimeFigure(fig int) (string, []Cell, error) {
	return RuntimeFigureSweep(fig, SweepOptions{})
}

// gridReps sweeps an application's grid with opt.Seeds replicates per
// cell. At Seeds <= 1 this degenerates to the paper's single-seed grid
// (replicate 0 is the cell's own seed and stays memoized), so the
// single- and multi-seed figure paths share one implementation.
func gridReps(app string, opt SweepOptions) ([]Replicated, []Cell, error) {
	cfgs := GridConfigs(app)
	reps, err := SweepSeeds(cfgs, opt)
	if err != nil {
		return nil, nil, err
	}
	cells := make([]Cell, len(reps))
	for i, rep := range reps {
		cells[i] = Cell{System: cfgs[i].Storage, Workers: cfgs[i].Workers, Result: rep.Runs[0]}
	}
	return reps, cells, nil
}

// runtimeChart renders a runtime figure from a replicated grid, with
// ±stddev whiskers whenever the sweep carried more than one seed.
func runtimeChart(fig int, app string, reps []Replicated, cells []Cell) string {
	chart := &report.BarChart{
		Title: fmt.Sprintf("Fig. %d. Performance of %s using different storage systems (makespan, seconds)",
			fig, title(app)),
		Unit: "s",
	}
	for i, c := range cells {
		chart.AddErr(fmt.Sprintf("%s n=%d", c.System, c.Workers),
			reps[i].Makespan.Mean, reps[i].Makespan.Stddev)
	}
	return chart.String()
}

// costCharts renders a cost figure (top per-hour, bottom per-second)
// from a replicated grid, with ±stddev whiskers when replicated.
func costCharts(fig int, app string, reps []Replicated, cells []Cell) string {
	var b strings.Builder
	hour := &report.BarChart{
		Title: fmt.Sprintf("Fig. %d (top). %s cost assuming per-hour charges ($)", fig, title(app)),
		Unit:  "$",
	}
	sec := &report.BarChart{
		Title: fmt.Sprintf("Fig. %d (bottom). %s cost assuming per-second charges ($)", fig, title(app)),
		Unit:  "$",
	}
	for i, c := range cells {
		label := fmt.Sprintf("%s n=%d", c.System, c.Workers)
		hour.AddErr(label, reps[i].CostHour.Mean, reps[i].CostHour.Stddev)
		sec.AddErr(label, reps[i].CostSecond.Mean, reps[i].CostSecond.Stddev)
	}
	b.WriteString(hour.String())
	b.WriteByte('\n')
	b.WriteString(sec.String())
	return b.String()
}

// RuntimeFigureSweep is RuntimeFigure with explicit sweep options
// (parallelism, replication, progress callbacks). With opt.Seeds > 1 the
// bars carry mean ± stddev error bands.
func RuntimeFigureSweep(fig int, opt SweepOptions) (string, []Cell, error) {
	app, ok := appForFigure[fig]
	if !ok || fig > 4 {
		return "", nil, fmt.Errorf("harness: runtime figures are 2-4, got %d", fig)
	}
	reps, cells, err := gridReps(app, opt)
	if err != nil {
		return "", nil, err
	}
	return runtimeChart(fig, app, reps, cells), cells, nil
}

// GridFigures renders a runtime figure (2-4) and its cost companion
// (5-7) from one grid sweep, so multi-seed replicates — which are not
// memoized — run once and feed both charts' error bars.
func GridFigures(fig int, opt SweepOptions) (runtime, cost string, cells []Cell, err error) {
	app, ok := appForFigure[fig]
	if !ok || fig > 4 {
		return "", "", nil, fmt.Errorf("harness: runtime figures are 2-4, got %d", fig)
	}
	reps, cells, err := gridReps(app, opt)
	if err != nil {
		return "", "", nil, err
	}
	return runtimeChart(fig, app, reps, cells), costCharts(fig+3, app, reps, cells), cells, nil
}

// CostFigure regenerates Figure 5, 6 or 7: per-hour and per-second cost
// for the application across storage systems and cluster sizes. It reuses
// the runtime grid (the paper's cost figures are derived from the same
// runs).
func CostFigure(fig int, cells []Cell) (string, []Cell, error) {
	return CostFigureSweep(fig, cells, SweepOptions{})
}

// CostFigureSweep is CostFigure with explicit sweep options, used when
// the runtime grid is not being reused. When cells are supplied they are
// rendered as-is (the single-measurement reuse path); otherwise the grid
// is swept with opt, carrying error bars at opt.Seeds > 1.
func CostFigureSweep(fig int, cells []Cell, opt SweepOptions) (string, []Cell, error) {
	app, ok := appForFigure[fig]
	if !ok || fig < 5 {
		return "", nil, fmt.Errorf("harness: cost figures are 5-7, got %d", fig)
	}
	if cells == nil {
		reps, fresh, err := gridReps(app, opt)
		if err != nil {
			return "", nil, err
		}
		return costCharts(fig, app, reps, fresh), fresh, nil
	}
	var b strings.Builder
	hour := &report.BarChart{
		Title: fmt.Sprintf("Fig. %d (top). %s cost assuming per-hour charges ($)", fig, title(app)),
		Unit:  "$",
	}
	sec := &report.BarChart{
		Title: fmt.Sprintf("Fig. %d (bottom). %s cost assuming per-second charges ($)", fig, title(app)),
		Unit:  "$",
	}
	for _, c := range cells {
		label := fmt.Sprintf("%s n=%d", c.System, c.Workers)
		hour.Add(label, c.Result.CostHour.Total())
		sec.Add(label, c.Result.CostSecond.Total())
	}
	b.WriteString(hour.String())
	b.WriteByte('\n')
	b.WriteString(sec.String())
	return b.String(), cells, nil
}

// DiskBench reproduces the Section III.C ephemeral-disk observations as a
// table (experiment E-D1).
func DiskBench() *report.Table {
	t := &report.Table{
		Title:  "Section III.C — ephemeral disk characteristics (model values)",
		Header: []string{"Configuration", "First write", "Subsequent write", "Read", "Zero-init 50 GB"},
	}
	add := func(name string, first, steady, read float64) {
		t.AddRow(name, units.Rate(first), units.Rate(steady), units.Rate(read),
			units.Duration(50*units.GB/first))
	}
	single := diskSingle()
	raid := diskRAID0x4()
	add("1 ephemeral disk", single.FirstWrite, single.SteadyWrite, single.Read)
	add("RAID0 x 4 disks", raid.FirstWrite, raid.SteadyWrite, raid.Read)
	return t
}

// title capitalizes an application name for display.
func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
