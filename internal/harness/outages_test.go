package harness

import (
	"strings"
	"testing"
)

// TestCellKeyOutageUniqueness pins the memoization contract for the
// outage/checkpoint fields: configurations that run differently must key
// differently, and fields wms ignores must normalize away.
func TestCellKeyOutageUniqueness(t *testing.T) {
	t.Parallel()
	base := RunConfig{App: "montage", Storage: "pvfs", Workers: 4}
	distinct := []RunConfig{
		base,
		{App: "montage", Storage: "pvfs", Workers: 4, OutageRate: 0.5},
		{App: "montage", Storage: "pvfs", Workers: 4, OutageRate: 1},
		{App: "montage", Storage: "pvfs", Workers: 4, OutageRate: 1, OutageDuration: 300},
		{App: "montage", Storage: "pvfs", Workers: 4, OutageRate: 1, OutageSeed: 7},
		{App: "montage", Storage: "pvfs", Workers: 4, CheckpointInterval: 120},
		{App: "montage", Storage: "pvfs", Workers: 4, OutageRate: 1, CheckpointInterval: 120},
	}
	seen := make(map[string]int)
	for i, cfg := range distinct {
		key := CellKey(cfg)
		if key == "" {
			t.Fatalf("config %d not memoizable: %+v", i, cfg)
		}
		if j, dup := seen[key]; dup {
			t.Errorf("configs %d and %d collide on key %q", i, j, key)
		}
		seen[key] = i
	}
	// Fields ignored at OutageRate 0 must hit the plain cell's cache.
	ignored := RunConfig{App: "montage", Storage: "pvfs", Workers: 4, OutageDuration: 300, OutageSeed: 7}
	if CellKey(ignored) != CellKey(base) {
		t.Errorf("duration/seed at rate 0 split the cache:\n%q\nvs\n%q", CellKey(ignored), CellKey(base))
	}
	// Explicit wms defaults must hit the default-valued cell's cache.
	explicit := RunConfig{App: "montage", Storage: "pvfs", Workers: 4, OutageRate: 1, OutageDuration: 120, OutageSeed: 0xDEAD}
	implicit := RunConfig{App: "montage", Storage: "pvfs", Workers: 4, OutageRate: 1}
	if CellKey(explicit) != CellKey(implicit) {
		t.Errorf("explicit outage defaults split the cache:\n%q\nvs\n%q", CellKey(explicit), CellKey(implicit))
	}
}

// TestSweepSeedsPairsOutageReplicates pins the paired-baseline design:
// CellSeed ignores the outage and checkpoint fields, so replicate r of
// an outage cell shares its jitter seeds with replicate r of the
// outage-free baseline.
func TestSweepSeedsPairsOutageReplicates(t *testing.T) {
	t.Parallel()
	baseline := RunConfig{App: "epigenome", Storage: "pvfs", Workers: 4}
	broken := baseline
	broken.OutageRate = 1
	broken.CheckpointInterval = 120
	for rep := 1; rep <= 3; rep++ {
		if CellSeed(baseline, rep) != CellSeed(broken, rep) {
			t.Errorf("replicate %d jitter seeds diverge between baseline and outage cell", rep)
		}
	}
	if CellSeed(broken, 1) == CellSeed(broken, 2) {
		t.Error("replicates share a seed")
	}
}

// TestOutageStudySmoke runs the full study pipeline on scaled-down
// instances at a brutal outage rate: outage cells must report kills and
// lost work, the checkpointed arm must report checkpoint bytes, and the
// rendering must include baseline rows and error bars.
func TestOutageStudySmoke(t *testing.T) {
	t.Parallel()
	cells, out, err := OutageStudy(OutageStudyOptions{
		Rates:              []float64{20},
		Duration:           60,
		CheckpointInterval: 15,
		Apps:               []string{"montage", "broadband"},
		Storages:           []string{"gluster-nufa", "s3"},
		Workers:            2,
		Build:              buildSmallApp,
		Sweep:              SweepOptions{Seeds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2*2 { // apps x storages x {ckpt off, on} x {0, 20}
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	sawCkptBytes := false
	for _, c := range cells {
		if c.Config.OutageRate == 0 && !c.Checkpointed() {
			if k := c.Rep.OutageKills.Mean; k != 0 {
				t.Errorf("%s/%s baseline reports %.1f kills", c.Config.App, c.Config.Storage, k)
			}
			continue
		}
		if c.Config.OutageRate > 0 {
			if c.Rep.OutageKills.Mean <= 0 && c.Rep.Makespan.Mean <= c.Baseline.Makespan.Mean {
				t.Errorf("%s/%s at rate 20 shows neither kills nor inflation",
					c.Config.App, c.Config.Storage)
			}
			if c.MakespanInflation() <= 0 {
				t.Errorf("%s/%s at rate 20 shows no inflation (%.1f%%)",
					c.Config.App, c.Config.Storage, c.MakespanInflation()*100)
			}
		}
		if c.Checkpointed() && c.Rep.CheckpointBytes.Mean > 0 {
			sawCkptBytes = true
		}
	}
	if !sawCkptBytes {
		t.Error("no checkpointed cell reported checkpoint bytes")
	}
	for _, want := range []string{"baseline", "±", "overhead vs outage-free baseline", "Lost work"} {
		if !strings.Contains(out, want) {
			t.Errorf("study rendering missing %q:\n%s", want, out)
		}
	}
}

// TestOutageStudyDeterministic is the acceptance bar from the issue: the
// whole pipeline (sweep, pairing, rendering) must be byte-identical at
// -parallel 1 and -parallel 8.
func TestOutageStudyDeterministic(t *testing.T) {
	t.Parallel()
	render := func(parallel int) string {
		_, out, err := OutageStudy(OutageStudyOptions{
			Rates:              []float64{10},
			Duration:           60,
			CheckpointInterval: 20,
			Apps:               []string{"epigenome"},
			Storages:           []string{"gluster-nufa", "pvfs"},
			Workers:            2,
			Build:              buildSmallApp,
			Sweep:              SweepOptions{Seeds: 3, Parallel: parallel, NoMemo: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, concurrent := render(1), render(8)
	if serial != concurrent {
		t.Errorf("outage study differs between -parallel 1 and -parallel 8:\n%s\nvs\n%s", serial, concurrent)
	}
}

// TestOutageStudyDefaults pins the zero-value study configuration.
func TestOutageStudyDefaults(t *testing.T) {
	t.Parallel()
	o := OutageStudyOptions{}
	o.normalize()
	if len(o.Rates) != len(OutageRates()) {
		t.Errorf("zero-value Rates = %v, want the canonical ladder %v", o.Rates, OutageRates())
	}
	if len(o.Apps) != 3 || len(o.Storages) != len(OutageStudyStorages()) {
		t.Errorf("zero-value matrix = %v x %v", o.Apps, o.Storages)
	}
	if o.Workers != DefaultOutageStudyWorkers {
		t.Errorf("zero-value Workers = %d", o.Workers)
	}
	if o.Duration != DefaultOutageStudyDuration || o.CheckpointInterval != DefaultOutageStudyCheckpoint {
		t.Errorf("zero-value duration/interval = %g/%g", o.Duration, o.CheckpointInterval)
	}
}
