package harness

import (
	"fmt"
	"strings"

	"ec2wfsim/internal/report"
	"ec2wfsim/internal/sweep"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// The outage-ablation study quantifies the failure regime the
// i.i.d.-failure study cannot: real EC2 campaigns lose whole nodes at
// once (spot reclamation, hardware retirement), which hits data-owning
// backends very differently than independent task kills — a dead
// GlusterFS NUFA or PVFS node takes its files offline with it, while S3
// only loses a node's local cache. Each application runs on each
// studied storage system at a ladder of outage rates, with and without
// checkpoint/restart, and every cell is compared against the
// outage-free, checkpoint-free baseline at the same jitter seeds, so
// inflation and cost overhead are paired differences.

// OutageRates is the canonical rate ladder (expected outages per node
// per hour), rate 0 — the paper's setting — leading as the baseline.
func OutageRates() []float64 { return []float64{0, 0.5, 1, 2} }

// OutageStudyStorages lists the storage systems the study crosses with
// each application: the same four as the failure study, chosen because
// they span the data-placement spectrum outages stress (central server,
// node-local NUFA placement, striping over every node, external object
// store).
func OutageStudyStorages() []string {
	return []string{"nfs-sync", "gluster-nufa", "pvfs", "s3"}
}

// Default shape of the canonical study: the paper's mid-scale 4-node
// configuration, reboot-scale outages, and a checkpoint cadence short
// enough to matter for the long-running tasks that dominate lost work.
const (
	DefaultOutageStudyWorkers    = 4
	DefaultOutageStudyDuration   = 120.0 // mean outage seconds
	DefaultOutageStudyCheckpoint = 120.0 // checkpointed-arm interval, seconds
)

// OutageStudyOptions configures an outage-ablation study. The zero
// value runs the canonical study: every paper application on
// OutageStudyStorages at OutageRates, each rate with and without
// checkpointing, at 4 workers.
type OutageStudyOptions struct {
	// Rates overrides the outage-rate ladder; a 0 baseline is prepended
	// when missing, and rates are deduplicated and sorted.
	Rates []float64
	// Duration overrides the mean outage length (0 = the study default).
	Duration float64
	// CheckpointInterval overrides the checkpointed arm's cadence
	// (0 = the study default). The no-checkpoint arm always runs at 0.
	CheckpointInterval float64
	// OutageSeed drives the outage schedule of every outage cell
	// (0 = the fixed default). The rate-0 baselines ignore it.
	OutageSeed uint64
	// Apps and Storages override the study matrix.
	Apps     []string
	Storages []string
	// Workers overrides the cluster size (0 = DefaultOutageStudyWorkers).
	Workers int
	// Build, if set, supplies the workflow per application — tests use it
	// to run scaled-down instances. Each cell gets its own instance.
	Build func(app string) (*workflow.Workflow, error)
	// Sweep carries parallelism, seeds and progress through to the sweep
	// engine; Seeds > 1 replicates every cell and puts ±stddev error
	// bars on the rendered figures.
	Sweep SweepOptions
}

func (o *OutageStudyOptions) normalize() {
	if len(o.Rates) == 0 {
		o.Rates = OutageRates()
	}
	o.Rates = normalizeRates(o.Rates)
	if o.Duration <= 0 {
		o.Duration = DefaultOutageStudyDuration
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = DefaultOutageStudyCheckpoint
	}
	if len(o.Apps) == 0 {
		o.Apps = []string{"montage", "epigenome", "broadband"}
	}
	if len(o.Storages) == 0 {
		o.Storages = OutageStudyStorages()
	}
	if o.Workers <= 0 {
		o.Workers = DefaultOutageStudyWorkers
	}
}

// OutageCell is one aggregated (application, storage, checkpoint, rate)
// cell of the study, paired with its outage-free no-checkpoint baseline.
type OutageCell struct {
	Config   RunConfig  // the cell's configuration, outage fields included
	Rep      Replicated // aggregate over Sweep.Seeds replicates
	Baseline Replicated // the rate-0 no-checkpoint aggregate for the same app/storage
}

// Checkpointed reports whether this cell runs the checkpoint/restart arm.
func (c OutageCell) Checkpointed() bool { return c.Config.CheckpointInterval > 0 }

// MakespanInflation is the relative makespan increase over the
// outage-free baseline (0.25 = 25% slower).
func (c OutageCell) MakespanInflation() float64 {
	if c.Baseline.Makespan.Mean <= 0 {
		return 0
	}
	return c.Rep.Makespan.Mean/c.Baseline.Makespan.Mean - 1
}

// MakespanDelta summarizes the per-replicate paired differences between
// this cell and its baseline: replicate j of both cells shares its
// jitter seeds (CellSeed excludes the outage fields), so the stddev
// here is the uncertainty of the overhead itself.
func (c OutageCell) MakespanDelta() sweep.Summary {
	n := len(c.Rep.Runs)
	if len(c.Baseline.Runs) < n {
		n = len(c.Baseline.Runs)
	}
	deltas := make([]float64, n)
	for j := 0; j < n; j++ {
		deltas[j] = c.Rep.Runs[j].Makespan - c.Baseline.Runs[j].Makespan
	}
	return sweep.Summarize(deltas)
}

// CostOverhead is the relative per-second-billing cost increase over
// the outage-free baseline (per-hour billing rounds occupancy up and
// absorbs most of it, as in the failure study).
func (c OutageCell) CostOverhead() float64 {
	if c.Baseline.CostSecond.Mean <= 0 {
		return 0
	}
	return c.Rep.CostSecond.Mean/c.Baseline.CostSecond.Mean - 1
}

// OutageStudy runs the outage-ablation study and renders it: a table
// reporting makespan inflation, outage kills, lost-work seconds,
// checkpoint overhead bytes and cost overhead versus the outage-free
// baseline, plus one per-application delta chart (±stddev whiskers when
// Sweep.Seeds > 1). All cells dispatch through the sweep engine as one
// batch, so the study parallelizes across apps, storages, rates,
// checkpoint arms and seeds at once and is bit-identical at any
// parallelism.
func OutageStudy(o OutageStudyOptions) ([]OutageCell, string, error) {
	o.normalize()
	// Per (app, storage): the no-checkpoint arm across the rate ladder,
	// then the checkpointed arm. The block's first cell (rate 0, no
	// checkpoint) is the shared baseline, so checkpoint overhead at rate
	// 0 is visible as its own row.
	intervals := []float64{0, o.CheckpointInterval}
	var cfgs []RunConfig
	for _, app := range o.Apps {
		for _, sys := range o.Storages {
			for _, interval := range intervals {
				for _, rate := range o.Rates {
					cfg := RunConfig{
						App:                app,
						Storage:            sys,
						Workers:            o.Workers,
						OutageRate:         rate,
						CheckpointInterval: interval,
					}
					if rate > 0 {
						cfg.OutageDuration = o.Duration
						cfg.OutageSeed = o.OutageSeed
					}
					if o.Build != nil {
						w, err := o.Build(app)
						if err != nil {
							return nil, "", err
						}
						cfg.Workflow = w
					}
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}
	reps, err := SweepSeeds(cfgs, o.Sweep)
	if err != nil {
		return nil, "", err
	}
	block := len(o.Rates) * len(intervals)
	cells := make([]OutageCell, len(reps))
	for i, rep := range reps {
		cells[i] = OutageCell{
			Config:   cfgs[i],
			Rep:      rep,
			Baseline: reps[i-i%block],
		}
	}
	return cells, renderOutageStudy(o, cells), nil
}

// renderOutageStudy renders the study table and per-application
// makespan-overhead charts.
func renderOutageStudy(o OutageStudyOptions, cells []OutageCell) string {
	t := &report.Table{
		Title: fmt.Sprintf("Outage-ablation study (%d workers, outages/node-hour, mean outage %s, checkpoint interval %s, %d seed(s))",
			o.Workers, units.Duration(o.Duration), units.Duration(o.CheckpointInterval), seedsOf(o.Sweep)),
		Header: []string{"Application", "Storage", "Ckpt", "Rate", "Makespan (s)", "Inflation", "Kills", "Lost work (s)", "Ckpt bytes", "Cost/s", "Overhead/s"},
	}
	for _, c := range cells {
		inflation, overhead := "baseline", ""
		if c.Config.OutageRate > 0 || c.Checkpointed() {
			inflation = fmtPercent(c.MakespanInflation())
			overhead = fmtPercent(c.CostOverhead())
		}
		ckpt := "off"
		if c.Checkpointed() {
			ckpt = "on"
		}
		t.AddRow(
			c.Config.App,
			c.Config.Storage,
			ckpt,
			fmt.Sprintf("%g", c.Config.OutageRate),
			fmtPM(c.Rep.Makespan, 0),
			inflation,
			fmtPM(c.Rep.OutageKills, 1),
			fmtPM(c.Rep.LostWork, 0),
			units.Bytes(c.Rep.CheckpointBytes.Mean),
			units.USD(c.Rep.CostSecond.Mean),
			overhead,
		)
	}
	var b strings.Builder
	b.WriteString(t.String())
	for _, app := range o.Apps {
		chart := &report.BarChart{
			Title: fmt.Sprintf("%s: makespan overhead vs outage-free baseline (s)", title(app)),
			Unit:  "s",
		}
		for _, c := range cells {
			if c.Config.App != app || c.Config.OutageRate == 0 {
				continue
			}
			label := fmt.Sprintf("%s r=%g", c.Config.Storage, c.Config.OutageRate)
			if c.Checkpointed() {
				label += " +ckpt"
			}
			d := c.MakespanDelta()
			chart.AddErr(label, d.Mean, d.Stddev)
		}
		b.WriteByte('\n')
		b.WriteString(chart.String())
	}
	return b.String()
}
