package harness

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ec2wfsim/internal/resultcache"
	"ec2wfsim/internal/workflow"
)

// cacheTestConfigs is a small grid: big enough to exercise distinct
// entries, small enough to simulate twice per test.
func cacheTestConfigs() []RunConfig {
	return []RunConfig{
		{App: "montage", Storage: "pvfs", Workers: 2},
		{App: "montage", Storage: "pvfs", Workers: 4},
	}
}

func openTestCache(t *testing.T, dir string) *resultcache.Store {
	t.Helper()
	store, err := resultcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// rowsJSON renders sweep results exactly like the streaming JSON export,
// for byte-level comparison of cold and warm runs.
func rowsJSON(t *testing.T, results []*RunResult) []byte {
	t.Helper()
	var out []byte
	for _, r := range results {
		b, err := json.Marshal(r.JSONRow())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b...)
		out = append(out, '\n')
	}
	return out
}

func TestCacheWarmRunRecomputesNothing(t *testing.T) {
	dir := t.TempDir()
	cfgs := cacheTestConfigs()

	cold := openTestCache(t, dir)
	coldResults, err := Sweep(cfgs, SweepOptions{Parallel: 2, NoMemo: true, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := cold.Stats(); hits != 0 || misses != int64(len(cfgs)) {
		t.Fatalf("cold stats = %d/%d, want 0 hits, %d misses", hits, misses, len(cfgs))
	}

	warm := openTestCache(t, dir)
	warmResults, err := Sweep(cfgs, SweepOptions{Parallel: 2, NoMemo: true, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := warm.Stats(); hits != int64(len(cfgs)) || misses != 0 {
		t.Fatalf("warm stats = %d/%d, want every cell served from the store", hits, misses)
	}
	coldJSON, warmJSON := rowsJSON(t, coldResults), rowsJSON(t, warmResults)
	if string(coldJSON) != string(warmJSON) {
		t.Errorf("warm export differs from cold:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
	// Cache-served results carry metrics only: no trace, no cluster.
	for i, r := range warmResults {
		if r.Spans != nil || r.Cluster != nil {
			t.Errorf("warm result %d carries a trace (Spans=%v Cluster=%v); cache rows are metrics-only",
				i, r.Spans != nil, r.Cluster != nil)
		}
		if r.Makespan != coldResults[i].Makespan {
			t.Errorf("warm result %d makespan %v != cold %v", i, r.Makespan, coldResults[i].Makespan)
		}
	}
}

// tamperEntry bit-flips one byte inside a stored entry's payload and
// returns the entry path. The flip keeps the JSON valid, so only the
// integrity checksum can catch it.
func tamperEntry(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no cache entries to tamper with (err=%v)", err)
	}
	path := names[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the makespan value in the embedded row.
	i := indexAfter(data, `"makespan_s":`)
	if i < 0 {
		t.Fatalf("entry %s has no makespan field", path)
	}
	data[i+1] ^= 0x01 // second digit: never a leading zero, still valid JSON
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func indexAfter(data []byte, marker string) int {
	for i := 0; i+len(marker) <= len(data); i++ {
		if string(data[i:i+len(marker)]) == marker {
			return i + len(marker)
		}
	}
	return -1
}

func TestCacheTamperedEntryRecomputesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfgs := cacheTestConfigs()

	cold := openTestCache(t, dir)
	coldResults, err := Sweep(cfgs, SweepOptions{Parallel: 2, NoMemo: true, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	coldJSON := rowsJSON(t, coldResults)

	path := tamperEntry(t, dir)

	// The damage surfaces as the typed integrity error at the store
	// layer...
	probe := openTestCache(t, dir)
	keys, kerr := probe.Keys()
	tampered := resultcache.Key{}
	found := false
	for _, k := range keys {
		if _, gerr := probe.Get(k); gerr != nil {
			tampered, found = k, true
			var ce *resultcache.CorruptError
			if !errors.As(gerr, &ce) {
				t.Fatalf("tampered entry error = %v (%T), want *resultcache.CorruptError", gerr, gerr)
			}
		}
	}
	if kerr != nil {
		// Keys itself may report the corruption instead when the flip
		// broke the envelope; either typed surface is acceptable.
		var ce *resultcache.CorruptError
		if !errors.As(kerr, &ce) {
			t.Fatalf("Keys error = %v, want *resultcache.CorruptError", kerr)
		}
	} else if !found {
		t.Fatalf("no entry failed verification after tampering %s", path)
	}

	// ...and the harness silently recomputes: same rows, byte for byte,
	// as the cold run, with the tampered cell counted as a miss.
	warm := openTestCache(t, dir)
	warmResults, err := Sweep(cfgs, SweepOptions{Parallel: 2, NoMemo: true, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if string(rowsJSON(t, warmResults)) != string(coldJSON) {
		t.Errorf("post-tamper run differs from cold run")
	}
	if hits, misses := warm.Stats(); hits != 1 || misses != 1 {
		t.Errorf("post-tamper stats = %d/%d, want 1 hit (intact entry), 1 miss (tampered)", hits, misses)
	}

	// The recompute overwrote the damaged entry: a fresh store now reads
	// every entry clean.
	if found {
		repaired := openTestCache(t, dir)
		if _, err := repaired.Get(tampered); err != nil {
			t.Errorf("tampered entry not repaired by recompute: %v", err)
		}
	}
}

func TestCacheFutureSchemaEntryInvalidatesCleanly(t *testing.T) {
	dir := t.TempDir()
	cfgs := cacheTestConfigs()[:1]

	cold := openTestCache(t, dir)
	coldResults, err := Sweep(cfgs, SweepOptions{Parallel: 1, NoMemo: true, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite the entry under a bumped schema version — the situation
	// after a format change, when old stores hold entries the new code
	// must refuse rather than misread.
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) != 1 {
		t.Fatalf("want exactly one entry, got %v (err=%v)", names, err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]any
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e["schema"] = resultcache.SchemaVersion + 1
	data, err = json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	probe := openTestCache(t, dir)
	key, ok := CacheKey(cfgs[0])
	if !ok {
		t.Fatal("grid cell not cacheable")
	}
	var se *resultcache.SchemaError
	if _, err := probe.Get(key); !errors.As(err, &se) {
		t.Fatalf("future-schema entry error = %v, want *resultcache.SchemaError", err)
	}

	warm := openTestCache(t, dir)
	warmResults, err := Sweep(cfgs, SweepOptions{Parallel: 1, NoMemo: true, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if string(rowsJSON(t, warmResults)) != string(rowsJSON(t, coldResults)) {
		t.Errorf("recompute after schema mismatch differs from cold run")
	}
	if hits, misses := warm.Stats(); hits != 0 || misses != 1 {
		t.Errorf("stats = %d/%d, want the mismatched entry treated exactly like a miss", hits, misses)
	}
}

func TestCacheKeyExcludesCustomWorkflows(t *testing.T) {
	t.Parallel()
	cfg := RunConfig{Workflow: workflow.New("custom"), Storage: "local", Workers: 1}
	if _, ok := CacheKey(cfg); ok {
		t.Error("CacheKey accepted a custom in-memory workflow; the DAG is not part of the key")
	}
	if _, ok := CacheKey(RunConfig{App: "montage", Storage: "pvfs", Workers: 2}); !ok {
		t.Error("CacheKey rejected a plain grid cell")
	}
}

func TestCacheSweepSeedsReplicateEntries(t *testing.T) {
	dir := t.TempDir()
	cfgs := cacheTestConfigs()[:1]
	const seeds = 3

	cold := openTestCache(t, dir)
	coldReps, err := SweepSeeds(cfgs, SweepOptions{Seeds: seeds, Parallel: 2, NoMemo: true, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	// Every replicate is its own entry: the reseeded spec keys it.
	if n, _ := cold.Len(); n != seeds {
		t.Fatalf("store holds %d entries after a %d-seed cell, want %d", n, seeds, seeds)
	}

	warm := openTestCache(t, dir)
	warmReps, err := SweepSeeds(cfgs, SweepOptions{Seeds: seeds, Parallel: 2, NoMemo: true, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := warm.Stats(); hits != seeds || misses != 0 {
		t.Fatalf("warm stats = %d/%d, want all %d replicates served from the store", hits, misses, seeds)
	}
	coldRow, warmRow := coldReps[0].JSONRow(), warmReps[0].JSONRow()
	if !reflect.DeepEqual(coldRow, warmRow) {
		t.Errorf("warm aggregation differs from cold:\ncold: %+v\nwarm: %+v", coldRow, warmRow)
	}
}
