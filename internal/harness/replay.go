package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ec2wfsim/internal/eventlog"
	"ec2wfsim/internal/scenario"
	"ec2wfsim/internal/sweep"
	"ec2wfsim/internal/workflow"
)

// This file is the replay layer over the event log: recorded runs embed
// everything that determines their outcome (the scenario spec, the
// seeds, and — for custom DAGs — the workflow itself) in the log
// header, so any log can be re-executed from scratch and the fresh
// stream compared byte-for-byte against the recorded one. That
// comparison is the strongest determinism check the simulator has: it
// covers every task pickup, transfer, cache decision and outage, not
// just the headline metrics the goldens pin.

// headerFor builds the self-describing log header for a configuration.
// Configurations with a custom Workflow embed its JSON so the log stays
// replayable; catalog runs are reconstructed from (App, AppSeed) alone.
func headerFor(cfg RunConfig) (eventlog.Header, error) {
	spec := cfg.Spec()
	specJSON, err := spec.CanonicalJSON()
	if err != nil {
		return eventlog.Header{}, fmt.Errorf("harness: encoding spec: %w", err)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	h := eventlog.Header{
		CellKey:     CellKey(cfg),
		Spec:        specJSON,
		Seed:        seed,
		FlowVersion: cfg.FlowVersion,
	}
	if cfg.Workflow != nil {
		var buf bytes.Buffer
		if err := cfg.Workflow.WriteJSON(&buf); err != nil {
			return eventlog.Header{}, fmt.Errorf("harness: encoding workflow: %w", err)
		}
		h.Workflow = buf.Bytes()
	}
	return h, nil
}

// configFromHeader reconstructs the run configuration a log header
// describes: the spec decodes strictly (unknown fields are corruption,
// not extension points), and an embedded workflow overrides the
// catalog application exactly as it did when the log was recorded.
func configFromHeader(h eventlog.Header) (RunConfig, error) {
	var spec scenario.Spec
	dec := json.NewDecoder(bytes.NewReader(h.Spec))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return RunConfig{}, fmt.Errorf("harness: log header spec: %w", err)
	}
	cfg := SpecConfig(spec)
	if len(h.Workflow) > 0 {
		w, err := workflow.ReadJSON(bytes.NewReader(h.Workflow))
		if err != nil {
			return RunConfig{}, fmt.Errorf("harness: log header workflow: %w", err)
		}
		cfg.Workflow = w
	}
	return cfg, nil
}

// RunRecorded is Run with event recording: the cell's full structured
// event stream is written to out as a replayable log. Recording leaves
// the simulation itself untouched — the result is bit-identical to an
// unrecorded Run of the same configuration.
func RunRecorded(cfg RunConfig, out io.Writer) (*RunResult, error) {
	h, err := headerFor(cfg)
	if err != nil {
		return nil, err
	}
	return runRecorded(cfg, h, out)
}

// runRecorded executes cfg with a log writer for the given header. The
// header is written verbatim, which is what lets Replay produce a
// byte-identical stream: it hands the recorded header straight back.
func runRecorded(cfg RunConfig, h eventlog.Header, out io.Writer) (*RunResult, error) {
	lw, err := eventlog.NewWriter(out, h)
	if err != nil {
		return nil, err
	}
	r, simEvents, err := runWith(cfg, lw)
	if err != nil {
		return nil, err
	}
	if err := lw.Close(simEvents); err != nil {
		return nil, err
	}
	return r, nil
}

// Replay re-executes the run a recorded log's header describes,
// writing the fresh event stream to out. The header is copied into the
// new log verbatim, so on a deterministic simulator the replayed log is
// byte-identical to the original.
func Replay(h eventlog.Header, out io.Writer) (*RunResult, error) {
	cfg, err := configFromHeader(h)
	if err != nil {
		return nil, err
	}
	return runRecorded(cfg, h, out)
}

// VerifyResult reports the outcome of one replay verification.
type VerifyResult struct {
	// Match is true when the replayed stream is byte-identical to the
	// recorded log — header, every event, and trailer.
	Match bool
	// Events is the recorded log's event count.
	Events uint64
	// Seq is the stream position of the first diverging event when
	// Match is false (0 when the divergence is structural — an event
	// count or trailer difference before any event differs).
	Seq uint64
	// Detail describes the first divergence in one line.
	Detail string
}

// ReplayVerify decodes a recorded log, re-runs the configuration its
// header describes, and compares the fresh stream byte-for-byte against
// the recording. A corrupt or truncated log fails with the decoder's
// *eventlog.CorruptError before any simulation starts.
func ReplayVerify(logData []byte) (*RunResult, *VerifyResult, error) {
	h, events, tr, err := eventlog.Decode(logData)
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	r, err := Replay(h, &buf)
	if err != nil {
		return nil, nil, err
	}
	v := &VerifyResult{Events: tr.Events}
	fresh := buf.Bytes()
	if bytes.Equal(logData, fresh) {
		v.Match = true
		return r, v, nil
	}
	_, freshEvents, freshTr, err := eventlog.Decode(fresh)
	if err != nil {
		// The stream this process just wrote must decode; anything else
		// is an eventlog bug.
		return nil, nil, fmt.Errorf("harness: replayed stream does not decode: %w", err)
	}
	v.Seq, v.Detail = firstDivergence(events, freshEvents, tr, freshTr)
	return r, v, nil
}

// firstDivergence pinpoints where a recorded and a replayed stream
// part ways: the first event (by stream position) that differs, or the
// structural difference (counts, trailer) when the common prefix is
// identical.
func firstDivergence(rec, rep []eventlog.Event, recTr, repTr eventlog.Trailer) (uint64, string) {
	n := len(rec)
	if len(rep) < n {
		n = len(rep)
	}
	for i := 0; i < n; i++ {
		if rec[i] != rep[i] {
			return rec[i].Seq, fmt.Sprintf("event %d: recorded %s, replayed %s",
				rec[i].Seq, eventJSON(rec[i]), eventJSON(rep[i]))
		}
	}
	if len(rec) != len(rep) {
		return 0, fmt.Sprintf("recorded log has %d events, replay produced %d (first %d identical)",
			len(rec), len(rep), n)
	}
	if recTr != repTr {
		return 0, fmt.Sprintf("trailer differs: recorded %d engine events, replay %d",
			recTr.SimEvents, repTr.SimEvents)
	}
	return 0, "streams decode identically but bytes differ (encoder instability)"
}

// eventJSON renders an event compactly for divergence messages.
func eventJSON(e eventlog.Event) string {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Sprintf("%+v", e)
	}
	return string(b)
}

// RecordedCell pairs one sweep cell's result with its serialized event
// log.
type RecordedCell struct {
	Result *RunResult
	Log    []byte
}

// SweepRecorded runs a batch of cells concurrently, recording each
// cell's event stream. Results and logs come back in input order,
// bit-identical at any parallelism: each cell records into its own
// buffer, so the worker pool's scheduling never interleaves streams.
// Recorded cells bypass the process-wide memo cache — a cached result
// has no event stream to return. parallel <= 0 uses the process
// default (SetParallel, else GOMAXPROCS).
func SweepRecorded(cfgs []RunConfig, parallel int) ([]RecordedCell, error) {
	eng := &sweep.Engine[RunConfig, RecordedCell]{
		Run: func(cfg RunConfig) (RecordedCell, error) {
			// The header reflects the configuration as given: catalog
			// cells stay catalog-keyed even though execution substitutes
			// the shared pre-built DAG below.
			h, err := headerFor(cfg)
			if err != nil {
				return RecordedCell{}, err
			}
			if cfg.Workflow == nil && cfg.App != "" {
				w, err := paperWorkflowSeeded(cfg.App, cfg.AppSeed)
				if err != nil {
					return RecordedCell{}, err
				}
				cfg.Workflow = w
			}
			var buf bytes.Buffer
			r, err := runRecorded(cfg, h, &buf)
			if err != nil {
				return RecordedCell{}, fmt.Errorf("harness: %s on %s with %d workers: %w",
					cfg.App, cfg.Storage, cfg.Workers, err)
			}
			return RecordedCell{Result: r, Log: buf.Bytes()}, nil
		},
		Parallel: SweepOptions{Parallel: parallel}.parallel(),
	}
	return eng.Map(cfgs)
}
