package harness

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden file pins the simulation's paper numbers: Table I, all
// three application grids (Figures 2-7 data), the nfssync ablation, a
// failure-ablation row and an outage-ablation row. Any refactor that
// perturbs a makespan or cost — including changes to the sweep engine,
// the flow network or the RNG — fails here before it can silently drift
// the reproduction away from the paper.
//
// Regenerate deliberately with:
//
//	go test ./internal/harness -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

type goldenCell struct {
	Label      string  `json:"label"`
	Makespan   float64 `json:"makespan_s"`
	CostHour   float64 `json:"cost_per_hour"`
	CostSecond float64 `json:"cost_per_second"`
}

// goldenFailureCell extends a golden cell with the failure counters a
// failure-ablation row pins.
type goldenFailureCell struct {
	Label      string  `json:"label"`
	Makespan   float64 `json:"makespan_s"`
	CostSecond float64 `json:"cost_per_second"`
	Failures   int64   `json:"failures"`
	Retries    int64   `json:"retries"`
}

// goldenOutageCell pins the counters an outage-ablation row adds on top
// of the timing numbers.
type goldenOutageCell struct {
	Label       string  `json:"label"`
	Makespan    float64 `json:"makespan_s"`
	CostSecond  float64 `json:"cost_per_second"`
	Outages     int64   `json:"outages"`
	OutageKills int64   `json:"outage_kills"`
	Checkpoints int64   `json:"checkpoints"`
	LostWork    float64 `json:"lost_work_s"`
}

type goldenData struct {
	TableI        []string            `json:"table1_rows"`
	MontageGrid   []goldenCell        `json:"montage_grid"`
	EpigenomeGrid []goldenCell        `json:"epigenome_grid"`
	BroadbandGrid []goldenCell        `json:"broadband_grid"`
	NFSSync       []goldenCell        `json:"nfssync_ablation"`
	Failure       []goldenFailureCell `json:"failure_ablation"`
	Outage        []goldenOutageCell  `json:"outage_ablation"`
}

func collectGolden(t *testing.T) goldenData {
	t.Helper()
	var g goldenData
	tb, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split([]byte(tb.String()), []byte("\n")) {
		if len(line) > 0 {
			g.TableI = append(g.TableI, string(line))
		}
	}
	grid := func(app string) []goldenCell {
		cells, err := Grid(app, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]goldenCell, 0, len(cells))
		for _, c := range cells {
			out = append(out, goldenCell{
				Label:      fmt.Sprintf("%s/%d", c.System, c.Workers),
				Makespan:   c.Result.Makespan,
				CostHour:   c.Result.CostHour.Total(),
				CostSecond: c.Result.CostSecond.Total(),
			})
		}
		return out
	}
	g.MontageGrid = grid("montage")
	g.EpigenomeGrid = grid("epigenome")
	g.BroadbandGrid = grid("broadband")
	results, _, err := Ablation("nfssync")
	if err != nil {
		t.Fatal(err)
	}
	for _, ar := range results {
		g.NFSSync = append(g.NFSSync, goldenCell{
			Label:      ar.Label,
			Makespan:   ar.Result.Makespan,
			CostHour:   ar.Result.CostHour.Total(),
			CostSecond: ar.Result.CostSecond.Total(),
		})
	}
	// One failure-ablation row (baseline + injected) pins the failure
	// plumbing: rate, default retries and the fixed failure seed all feed
	// the simulation through RunConfig, so any drift in the injection
	// path or its CellKey handling fails here.
	for _, rate := range []float64{0, 0.1} {
		r, err := RunCached(RunConfig{
			App: "montage", Storage: "pvfs",
			Workers: DefaultFailureStudyWorkers, FailureRate: rate,
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Failure = append(g.Failure, goldenFailureCell{
			Label:      fmt.Sprintf("montage/pvfs r=%g", rate),
			Makespan:   r.Makespan,
			CostSecond: r.CostSecond.Total(),
			Failures:   r.Failures,
			Retries:    r.Retries,
		})
	}
	// One outage-ablation pair (baseline + outages with checkpointing)
	// pins the correlated-failure plumbing: the outage schedule, the
	// kill/restart path and the checkpoint traffic all feed the
	// simulation through RunConfig, so any drift in the outage subsystem
	// or its CellKey handling fails here.
	for _, rate := range []float64{0, 1} {
		r, err := RunCached(RunConfig{
			App: "montage", Storage: "pvfs",
			Workers: DefaultOutageStudyWorkers, OutageRate: rate,
			CheckpointInterval: DefaultOutageStudyCheckpoint,
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Outage = append(g.Outage, goldenOutageCell{
			Label:       fmt.Sprintf("montage/pvfs out=%g +ckpt", rate),
			Makespan:    r.Makespan,
			CostSecond:  r.CostSecond.Total(),
			Outages:     r.Outages,
			OutageKills: r.OutageKills,
			Checkpoints: r.Checkpoints,
			LostWork:    r.LostWorkSeconds,
		})
	}
	return g
}

// TestGoldenPaperNumbers compares today's simulation against the pinned
// values exactly: the simulator is deterministic, so float64 equality
// through the JSON round-trip is the correct bar (encoding/json emits
// the shortest representation that round-trips).
func TestGoldenPaperNumbers(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale grid")
	}
	got := collectGolden(t)
	path := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create): %v", err)
	}
	var want goldenData
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for i, row := range want.TableI {
		if i >= len(got.TableI) || got.TableI[i] != row {
			t.Errorf("Table I row %d drifted:\n got: %q\nwant: %q", i, at(got.TableI, i), row)
		}
	}
	compareCells(t, "montage grid", got.MontageGrid, want.MontageGrid)
	compareCells(t, "epigenome grid", got.EpigenomeGrid, want.EpigenomeGrid)
	compareCells(t, "broadband grid", got.BroadbandGrid, want.BroadbandGrid)
	compareCells(t, "nfssync ablation", got.NFSSync, want.NFSSync)
	if len(got.Failure) != len(want.Failure) {
		t.Errorf("failure ablation: %d cells, golden has %d", len(got.Failure), len(want.Failure))
	} else {
		for i := range want.Failure {
			if got.Failure[i] != want.Failure[i] {
				t.Errorf("failure cell %s drifted:\n got: %+v\nwant: %+v",
					want.Failure[i].Label, got.Failure[i], want.Failure[i])
			}
		}
	}
	if len(got.Outage) != len(want.Outage) {
		t.Errorf("outage ablation: %d cells, golden has %d", len(got.Outage), len(want.Outage))
	} else {
		for i := range want.Outage {
			if got.Outage[i] != want.Outage[i] {
				t.Errorf("outage cell %s drifted:\n got: %+v\nwant: %+v",
					want.Outage[i].Label, got.Outage[i], want.Outage[i])
			}
		}
	}
}

func at(rows []string, i int) string {
	if i < len(rows) {
		return rows[i]
	}
	return "<missing>"
}

func compareCells(t *testing.T, what string, got, want []goldenCell) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d cells, golden has %d", what, len(got), len(want))
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s cell %s drifted:\n got: %+v\nwant: %+v", what, want[i].Label, got[i], want[i])
		}
	}
}

// TestGoldenSweepDeterminism asserts the sweep engine's core promise,
// under both flow-solver versions: the same matrix at -parallel 1 and
// -parallel 8 yields byte-identical results. Fresh caches on both sides
// so every cell actually runs twice.
func TestGoldenSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale grid")
	}
	for _, version := range []int{1, 2} {
		version := version
		t.Run(fmt.Sprintf("flow-v%d", version), func(t *testing.T) {
			t.Parallel()
			cfgs := GridConfigs("epigenome")
			for i := range cfgs {
				cfgs[i].FlowVersion = version
			}
			run := func(parallel int) []byte {
				results, err := Sweep(cfgs, SweepOptions{Parallel: parallel, NoMemo: true})
				if err != nil {
					t.Fatal(err)
				}
				rows := make([]ResultJSON, len(results))
				for i, r := range results {
					rows[i] = r.JSONRow()
				}
				data, err := json.Marshal(rows)
				if err != nil {
					t.Fatal(err)
				}
				return data
			}
			serial := run(1)
			concurrent := run(8)
			if !bytes.Equal(serial, concurrent) {
				t.Errorf("epigenome grid (flow v%d) differs between -parallel 1 and -parallel 8:\n%s\nvs\n%s",
					version, serial, concurrent)
			}
		})
	}
}

// TestGoldenMultiSeedDeterminism extends the determinism bar to
// replicated sweeps: per-cell seed derivation and aggregation must not
// depend on scheduling either.
func TestGoldenMultiSeedDeterminism(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale runs")
	}
	cfgs := []RunConfig{
		{App: "broadband", Storage: "gluster-nufa", Workers: 4},
		{App: "epigenome", Storage: "nfs", Workers: 2},
	}
	run := func(parallel int) []byte {
		reps, err := SweepSeeds(cfgs, SweepOptions{Parallel: parallel, Seeds: 3, NoMemo: true})
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]ReplicatedJSON, len(reps))
		for i, r := range reps {
			rows[i] = r.JSONRow()
		}
		data, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := run(1)
	concurrent := run(8)
	if !bytes.Equal(serial, concurrent) {
		t.Errorf("multi-seed sweep differs between -parallel 1 and -parallel 8:\n%s\nvs\n%s", serial, concurrent)
	}
	// Replicate 0 must reproduce the paper's single-seed numbers.
	reps, err := SweepSeeds(cfgs, SweepOptions{Seeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		paper, err := RunCached(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if rep.Runs[0].Makespan != paper.Makespan {
			t.Errorf("%s: replicate 0 makespan %.6f != single-seed %.6f",
				cfgs[i].Storage, rep.Runs[0].Makespan, paper.Makespan)
		}
		if rep.Makespan.N != 3 || rep.Makespan.Min > rep.Makespan.Mean || rep.Makespan.Mean > rep.Makespan.Max {
			t.Errorf("%s: inconsistent summary %+v", cfgs[i].Storage, rep.Makespan)
		}
		// Replicates vary task-runtime jitter, so the spread is real.
		if rep.Makespan.Max <= rep.Makespan.Min {
			t.Errorf("%s: replicates produced zero makespan spread: %+v", cfgs[i].Storage, rep.Makespan)
		}
	}
}
