// Package harness defines and runs the paper's experiments: one runner
// for a single (application x storage x cluster-size) cell, and generators
// for every table and figure in the evaluation (Table I, Figures 2-7) plus
// the ablations called out in DESIGN.md.
package harness

import (
	"fmt"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/cost"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/wms"
	"ec2wfsim/internal/workflow"
)

// RunConfig names one experiment cell.
type RunConfig struct {
	App     string // montage | broadband | epigenome
	Storage string // a storage.Names() entry
	Workers int
	// WorkerType selects the worker instance type by EC2 name; empty
	// means the paper's c1.xlarge.
	WorkerType string
	// DataAware switches to the locality-aware scheduler (ablation A-2).
	DataAware bool
	// Workflow overrides the paper-scale application (used by tests and
	// benchmarks to run scaled-down instances).
	Workflow *workflow.Workflow
	// Seed varies provisioning jitter; 0 means the fixed default.
	Seed uint64
	// InitializeDisks zero-fills ephemeral volumes first (ablation A-6).
	InitializeDisks bool
	InitializeBytes float64
}

// RunResult is one cell's outcome.
type RunResult struct {
	Config        RunConfig
	Makespan      float64
	ProvisionTime float64
	Utilization   float64
	MemoryWaits   int64
	Stats         storage.Stats
	CostHour      cost.Breakdown
	CostSecond    cost.Breakdown
	// Cluster is the provisioned cluster (for follow-up cost analyses
	// such as amortization over successive workflows).
	Cluster *cluster.Cluster
}

// Amortize prices running the same workflow k times in succession on this
// result's cluster versus k separately provisioned runs (Section VI).
func (r *RunResult) Amortize(k int) cost.Amortized {
	return cost.Amortize(r.Cluster, r.Makespan, r.Stats, k)
}

// Run executes one experiment cell at the requested scale.
func Run(cfg RunConfig) (*RunResult, error) {
	w := cfg.Workflow
	if w == nil {
		var err error
		w, err = apps.PaperScale(cfg.App)
		if err != nil {
			return nil, err
		}
	}
	sys, err := storage.ByName(cfg.Storage)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5EED
	}
	workerType, err := cluster.TypeByName(cfg.WorkerType)
	if err != nil {
		return nil, err
	}
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := cluster.New(e, net, rng.New(seed), cluster.Config{
		Workers:         cfg.Workers,
		WorkerType:      workerType,
		Extra:           sys.ExtraNodeTypes(),
		InitializeDisks: cfg.InitializeDisks,
		InitializeBytes: cfg.InitializeBytes,
	})
	if err != nil {
		return nil, err
	}
	env := &storage.Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(seed + 1)}
	if err := sys.Init(env); err != nil {
		return nil, err
	}
	res, err := wms.Run(e, wms.Options{Cluster: c, Storage: sys, DataAware: cfg.DataAware}, w)
	if err != nil {
		return nil, err
	}
	st := sys.Stats()
	return &RunResult{
		Config:        cfg,
		Makespan:      res.Makespan,
		ProvisionTime: c.ProvisionTime,
		Utilization:   res.Utilization(c),
		MemoryWaits:   res.MemoryWaits,
		Stats:         st,
		CostHour:      cost.Compute(c, res.Makespan, st, cost.PerHour),
		CostSecond:    cost.Compute(c, res.Makespan, st, cost.PerSecond),
		Cluster:       c,
	}, nil
}

// NodeCounts is the cluster-size sweep from the paper: "different numbers
// of resources (1-8 nodes corresponding to 8-64 cores)".
func NodeCounts() []int { return []int{1, 2, 4, 8} }

// supportsWorkers reports whether the system runs at that scale (GlusterFS
// and PVFS need two nodes; local disk only one).
func supportsWorkers(sysName string, workers int) bool {
	sys, err := storage.ByName(sysName)
	if err != nil {
		return false
	}
	if workers < sys.MinWorkers() {
		return false
	}
	if sysName == "local" && workers != 1 {
		return false
	}
	return true
}

// Cell labels an (application, storage, workers) result in a figure grid.
type Cell struct {
	System  string
	Workers int
	Result  *RunResult
}

// Grid runs the full sweep of the paper's five systems (plus the local
// baseline at one node) for an application, reusing pre-built workflows
// via build so scaled-down instances stay cheap.
func Grid(app string, build func() (*workflow.Workflow, error)) ([]Cell, error) {
	systems := append([]string{"local"}, storage.PaperSystems()...)
	var cells []Cell
	for _, sysName := range systems {
		for _, n := range NodeCounts() {
			if !supportsWorkers(sysName, n) {
				continue
			}
			var w *workflow.Workflow
			if build != nil {
				var err error
				w, err = build()
				if err != nil {
					return nil, err
				}
			}
			res, err := Run(RunConfig{App: app, Storage: sysName, Workers: n, Workflow: w})
			if err != nil {
				return nil, fmt.Errorf("harness: %s on %s with %d workers: %w", app, sysName, n, err)
			}
			cells = append(cells, Cell{System: sysName, Workers: n, Result: res})
		}
	}
	return cells, nil
}

// Find returns the cell for (system, workers), or nil.
func Find(cells []Cell, system string, workers int) *Cell {
	for i := range cells {
		if cells[i].System == system && cells[i].Workers == workers {
			return &cells[i]
		}
	}
	return nil
}
