// Package harness defines and runs the paper's experiments: one runner
// for a single (application x storage x cluster-size) cell, and generators
// for every table and figure in the evaluation (Table I, Figures 2-7) plus
// the ablations called out in DESIGN.md.
package harness

import (
	"fmt"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/cost"
	"ec2wfsim/internal/eventlog"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/scenario"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/wms"
	"ec2wfsim/internal/workflow"
)

// DefaultSeed is the fixed provisioning-jitter seed used when a
// RunConfig leaves Seed zero — the paper's single-measurement setting.
const DefaultSeed uint64 = scenario.DefaultSeed

// RunConfig names one experiment cell.
type RunConfig struct {
	App     string // montage | broadband | epigenome
	Storage string // a storage.Names() entry
	Workers int
	// WorkerType selects the worker instance type by EC2 name; empty
	// means the paper's c1.xlarge.
	WorkerType string
	// DataAware switches to the locality-aware scheduler (ablation A-2).
	DataAware bool
	// Workflow overrides the paper-scale application (used by tests and
	// benchmarks to run scaled-down instances).
	Workflow *workflow.Workflow
	// Seed varies provisioning jitter; 0 means the fixed default.
	Seed uint64
	// AppSeed varies the generated application's task-runtime jitter
	// (multi-seed replication); 0 keeps the app's fixed paper seed.
	// Ignored when Workflow is set.
	AppSeed uint64
	// InitializeDisks zero-fills ephemeral volumes first (ablation A-6).
	InitializeDisks bool
	InitializeBytes float64

	// FailureRate injects transient task failures with this per-attempt
	// probability (wms.Options.FailureRate). Zero — the paper's setting —
	// disables injection, and the remaining failure fields are ignored.
	FailureRate float64
	// MaxRetries bounds failed attempts per task; 0 means the DAGMan
	// default of 3. Only meaningful when FailureRate > 0.
	MaxRetries int
	// FailureSeed drives the failure-injection RNG independently of the
	// provisioning seed; 0 means wms's fixed default. SweepSeeds varies
	// it per replicate alongside the jitter seeds.
	FailureSeed uint64

	// OutageRate injects correlated node outages (whole nodes offline,
	// in-flight tasks killed, node-resident data unavailable) at this
	// expected rate per node per hour (wms.Options.OutageRate). Zero —
	// the paper's setting — disables outages, and OutageDuration and
	// OutageSeed are ignored.
	OutageRate float64
	// OutageDuration is the mean outage length in seconds; 0 means the
	// wms default. Only meaningful when OutageRate > 0.
	OutageDuration float64
	// OutageSeed drives the outage schedule independently of the other
	// seeds; 0 means wms's fixed default. SweepSeeds varies it per
	// replicate alongside the jitter seeds.
	OutageSeed uint64
	// CheckpointInterval makes tasks checkpoint every interval seconds of
	// computation and resume from the last checkpoint after a failure or
	// outage kill (wms.Options.CheckpointInterval). Zero disables it.
	CheckpointInterval float64

	// FlowVersion selects the flow-solver implementation (see
	// flow.NewNetVersion): 0 or 1 is the default incremental solver, 2
	// the coalescing bottleneck-heap solver.
	FlowVersion int

	// transient marks a derived replicate (SweepSeeds, rep > 0): its
	// hashed seeds are never requested again, so caching the result and
	// its per-seed DAG would only retain memory for the process
	// lifetime. CellKey returns "" for transient cells.
	transient bool
}

// Spec projects the configuration onto its serializable scenario spec —
// everything but the in-memory Workflow override and the transient
// replicate marker.
func (cfg RunConfig) Spec() scenario.Spec {
	return scenario.Spec{
		App:                cfg.App,
		Storage:            cfg.Storage,
		Workers:            cfg.Workers,
		WorkerType:         cfg.WorkerType,
		DataAware:          cfg.DataAware,
		Seed:               cfg.Seed,
		AppSeed:            cfg.AppSeed,
		InitializeDisks:    cfg.InitializeDisks,
		InitializeBytes:    cfg.InitializeBytes,
		FailureRate:        cfg.FailureRate,
		MaxRetries:         cfg.MaxRetries,
		FailureSeed:        cfg.FailureSeed,
		OutageRate:         cfg.OutageRate,
		OutageDuration:     cfg.OutageDuration,
		OutageSeed:         cfg.OutageSeed,
		CheckpointInterval: cfg.CheckpointInterval,
		FlowVersion:        cfg.FlowVersion,
	}
}

// SpecConfig builds the RunConfig for a scenario spec.
func SpecConfig(s scenario.Spec) RunConfig {
	return RunConfig{
		App:                s.App,
		Storage:            s.Storage,
		Workers:            s.Workers,
		WorkerType:         s.WorkerType,
		DataAware:          s.DataAware,
		Seed:               s.Seed,
		AppSeed:            s.AppSeed,
		InitializeDisks:    s.InitializeDisks,
		InitializeBytes:    s.InitializeBytes,
		FailureRate:        s.FailureRate,
		MaxRetries:         s.MaxRetries,
		FailureSeed:        s.FailureSeed,
		OutageRate:         s.OutageRate,
		OutageDuration:     s.OutageDuration,
		OutageSeed:         s.OutageSeed,
		CheckpointInterval: s.CheckpointInterval,
		FlowVersion:        s.FlowVersion,
	}
}

// RunResult is one cell's outcome.
type RunResult struct {
	Config        RunConfig
	Makespan      float64
	ProvisionTime float64
	Utilization   float64
	MemoryWaits   int64
	// Failures counts injected transient failures (zero when FailureRate
	// is 0); Retries counts all re-executions — injected failures plus
	// outage kills.
	Failures int64
	Retries  int64
	// Outages and OutageKills count node outages and the attempts they
	// killed; LostWorkSeconds sums slot time failed attempts burned
	// beyond any checkpointed progress; Checkpoints/CheckpointBytes
	// count checkpoint writes and their staged bytes.
	Outages         int64
	OutageKills     int64
	LostWorkSeconds float64
	Checkpoints     int64
	CheckpointBytes float64
	Stats           storage.Stats
	CostHour        cost.Breakdown
	CostSecond      cost.Breakdown
	// Spans records per-task execution windows for Gantt charts and
	// trace exports.
	Spans []wms.Span
	// Cluster is the provisioned cluster (for follow-up cost analyses
	// such as amortization over successive workflows).
	Cluster *cluster.Cluster
}

// Amortize prices running the same workflow k times in succession on this
// result's cluster versus k separately provisioned runs (Section VI).
func (r *RunResult) Amortize(k int) cost.Amortized {
	return cost.Amortize(r.Cluster, r.Makespan, r.Stats, k)
}

// Completed counts successful task executions — Spans also records
// failed attempts when failures are injected (mirrors
// wms.Result.Completed).
func (r *RunResult) Completed() int {
	n := 0
	for _, s := range r.Spans {
		if !s.Failed {
			n++
		}
	}
	return n
}

// Run executes one experiment cell at the requested scale. Catalog
// names are validated up front, so an unknown application, storage
// system or worker type — a typo in a spec file, say — fails with a
// typed *scenario.UnknownNameError listing the valid names.
func Run(cfg RunConfig) (*RunResult, error) {
	r, _, err := runWith(cfg, nil)
	return r, err
}

// runWith is Run with an optional event recorder threaded through the
// provisioning step, the storage env and the workflow engine. It also
// returns the engine's total scheduled-event count, which recorded runs
// carry in the log trailer as a replay cross-check.
func runWith(cfg RunConfig, rec eventlog.Recorder) (*RunResult, int64, error) {
	w := cfg.Workflow
	if w == nil {
		if err := scenario.ValidateApp(cfg.App); err != nil {
			return nil, 0, err
		}
		var err error
		w, err = apps.PaperScaleSeeded(cfg.App, cfg.AppSeed)
		if err != nil {
			return nil, 0, err
		}
	}
	if err := scenario.ValidateStorage(cfg.Storage); err != nil {
		return nil, 0, err
	}
	if err := scenario.ValidateWorkerType(cfg.WorkerType); err != nil {
		return nil, 0, err
	}
	sys, err := storage.ByName(cfg.Storage)
	if err != nil {
		return nil, 0, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	workerType, err := cluster.TypeByName(cfg.WorkerType)
	if err != nil {
		return nil, 0, err
	}
	if cfg.FlowVersion < 0 || cfg.FlowVersion > 2 {
		return nil, 0, fmt.Errorf("harness: flow version must be 0 (default), 1 or 2 (got %d)", cfg.FlowVersion)
	}
	e := sim.NewEngine()
	net := flow.NewNetVersion(e, cfg.FlowVersion)
	c, err := cluster.New(e, net, rng.New(seed), cluster.Config{
		Workers:         cfg.Workers,
		WorkerType:      workerType,
		Extra:           sys.ExtraNodeTypes(),
		InitializeDisks: cfg.InitializeDisks,
		InitializeBytes: cfg.InitializeBytes,
	})
	if err != nil {
		return nil, 0, err
	}
	if rec != nil {
		// One node-up per provisioned node opens the stream, so replay
		// consumers know the cluster shape without parsing the spec.
		for _, n := range c.Workers {
			rec.Record(eventlog.Event{T: e.Now(), Kind: eventlog.NodeUp, Node: n.Name})
		}
		for _, n := range c.Extra {
			rec.Record(eventlog.Event{T: e.Now(), Kind: eventlog.NodeUp, Node: n.Name})
		}
	}
	env := &storage.Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(seed + 1), Rec: rec}
	if err := sys.Init(env); err != nil {
		return nil, 0, err
	}
	res, err := wms.Run(e, wms.Options{
		Cluster:            c,
		Storage:            sys,
		DataAware:          cfg.DataAware,
		FailureRate:        cfg.FailureRate,
		MaxRetries:         cfg.MaxRetries,
		FailureSeed:        cfg.FailureSeed,
		OutageRate:         cfg.OutageRate,
		OutageDuration:     cfg.OutageDuration,
		OutageSeed:         cfg.OutageSeed,
		CheckpointInterval: cfg.CheckpointInterval,
		Recorder:           rec,
	}, w)
	if err != nil {
		return nil, 0, err
	}
	st := sys.Stats()
	return &RunResult{
		Config:          cfg,
		Makespan:        res.Makespan,
		ProvisionTime:   c.ProvisionTime,
		Utilization:     res.Utilization(c),
		MemoryWaits:     res.MemoryWaits,
		Failures:        res.Failures,
		Retries:         res.Retries,
		Outages:         res.Outages,
		OutageKills:     res.OutageKills,
		LostWorkSeconds: res.LostWorkSeconds,
		Checkpoints:     res.Checkpoints,
		CheckpointBytes: res.CheckpointBytes,
		Stats:           st,
		Spans:           res.Spans,
		CostHour:        cost.Compute(c, res.Makespan, st, cost.PerHour),
		CostSecond:      cost.Compute(c, res.Makespan, st, cost.PerSecond),
		Cluster:         c,
	}, e.Scheduled(), nil
}

// NodeCounts is the cluster-size sweep from the paper: "different numbers
// of resources (1-8 nodes corresponding to 8-64 cores)".
func NodeCounts() []int { return []int{1, 2, 4, 8} }

// supportsWorkers reports whether the system runs at that scale (GlusterFS
// and PVFS need two nodes; local disk only one).
func supportsWorkers(sysName string, workers int) bool {
	sys, err := storage.ByName(sysName)
	if err != nil {
		return false
	}
	if workers < sys.MinWorkers() {
		return false
	}
	if sysName == "local" && workers != 1 {
		return false
	}
	return true
}

// Cell labels an (application, storage, workers) result in a figure grid.
type Cell struct {
	System  string
	Workers int
	Result  *RunResult
}

// GridConfigs enumerates the paper's sweep for an application: the five
// compared systems (plus the local baseline at one node) crossed with
// NodeCounts, minus combinations the system cannot form.
func GridConfigs(app string) []RunConfig {
	systems := append([]string{"local"}, storage.PaperSystems()...)
	var cfgs []RunConfig
	for _, sysName := range systems {
		for _, n := range NodeCounts() {
			if !supportsWorkers(sysName, n) {
				continue
			}
			cfgs = append(cfgs, RunConfig{App: app, Storage: sysName, Workers: n})
		}
	}
	return cfgs
}

// Grid runs the full sweep of the paper's five systems (plus the local
// baseline at one node) for an application, reusing pre-built workflows
// via build so scaled-down instances stay cheap.
func Grid(app string, build func() (*workflow.Workflow, error)) ([]Cell, error) {
	return GridSweep(app, build, SweepOptions{})
}

// GridSweep is Grid with explicit sweep options (parallelism, progress,
// cache bypass). Cells run concurrently through the sweep engine and
// come back in sweep order regardless of scheduling.
func GridSweep(app string, build func() (*workflow.Workflow, error), opt SweepOptions) ([]Cell, error) {
	cfgs := GridConfigs(app)
	if build != nil {
		for i := range cfgs {
			w, err := build()
			if err != nil {
				return nil, err
			}
			cfgs[i].Workflow = w
		}
	}
	results, err := Sweep(cfgs, opt)
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, len(cfgs))
	for i, r := range results {
		cells[i] = Cell{System: cfgs[i].Storage, Workers: cfgs[i].Workers, Result: r}
	}
	return cells, nil
}

// Find returns the cell for (system, workers), or nil.
func Find(cells []Cell, system string, workers int) *Cell {
	for i := range cells {
		if cells[i].System == system && cells[i].Workers == workers {
			return &cells[i]
		}
	}
	return nil
}
