package harness

import (
	"fmt"
	"sort"
	"strings"

	"ec2wfsim/internal/report"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// The large-matrix scale study extends the paper's 1-8 node sweep to the
// cluster sizes the paper never ran: it crosses every application and the
// studied storage systems with {8, 16, 32} workers and reports runtime
// scaling and the cost of the extra nodes. This is the ROADMAP's open
// "larger matrices" item, and it is also the workload that stresses the
// flow solver hardest — at 32 nodes a single PVFS read fans out over 32
// disks, which is exactly the regime the incremental dirty-set solver
// and batched fan-outs were built for. The same matrix is expressible
// through the public API as ec2wfsim.Sweep with VaryWorkers(8, 16, 32).

// ScaleSizes is the canonical cluster-size ladder, the paper's largest
// configuration (8 nodes) leading as the baseline.
func ScaleSizes() []int { return []int{8, 16, 32} }

// ScaleStudyStorages lists the storage systems the study crosses with
// each application: the central NFS server (whose incast collapse is the
// scaling question), the paper's GlusterFS NUFA workhorse, PVFS (fan-out
// grows with the cluster) and S3 (external service, the null hypothesis).
func ScaleStudyStorages() []string {
	return []string{"nfs", "gluster-nufa", "pvfs", "s3"}
}

// ScaleStudyOptions configures a scale study. The zero value runs the
// canonical study: every paper application on ScaleStudyStorages at
// ScaleSizes.
type ScaleStudyOptions struct {
	// Sizes overrides the cluster-size ladder; sizes are deduplicated
	// and sorted, and the smallest size is the speedup baseline.
	Sizes []int
	// Apps and Storages override the study matrix.
	Apps     []string
	Storages []string
	// FlowVersion selects the flow solver for every cell; 0 runs the
	// default (v1). The 1000-node extension sets 2 — at that fan-out the
	// coalescing heap solver is what makes the matrix affordable.
	FlowVersion int
	// Build, if set, supplies the workflow per application — tests use it
	// to run scaled-down instances. Each cell gets its own instance.
	Build func(app string) (*workflow.Workflow, error)
	// Sweep carries parallelism, seeds and progress through to the sweep
	// engine; Seeds > 1 replicates every cell and puts ±stddev error
	// bars on the rendered figures.
	Sweep SweepOptions
}

func (o *ScaleStudyOptions) normalize() {
	sort.Ints(o.Sizes)
	dedup := o.Sizes[:0]
	for _, n := range o.Sizes {
		if n > 0 && (len(dedup) == 0 || n != dedup[len(dedup)-1]) {
			dedup = append(dedup, n)
		}
	}
	o.Sizes = dedup
	if len(o.Sizes) == 0 {
		// Also the fallback when every requested size was non-positive.
		o.Sizes = ScaleSizes()
	}
	if len(o.Apps) == 0 {
		o.Apps = []string{"montage", "epigenome", "broadband"}
	}
	if len(o.Storages) == 0 {
		o.Storages = ScaleStudyStorages()
	}
}

// ScaleCell is one aggregated (application, storage, cluster-size) cell,
// paired with the smallest-size cell for the same application and
// storage system.
type ScaleCell struct {
	Config   RunConfig  // the cell's configuration, Workers included
	Rep      Replicated // aggregate over Sweep.Seeds replicates
	Baseline Replicated // the smallest-size aggregate for the same app/storage
}

// Speedup is the makespan ratio over the smallest-size baseline (2 =
// twice as fast as the baseline cluster).
func (c ScaleCell) Speedup() float64 {
	if c.Rep.Makespan.Mean <= 0 {
		return 0
	}
	return c.Baseline.Makespan.Mean / c.Rep.Makespan.Mean
}

// Efficiency is Speedup divided by the cluster-size ratio (1 = perfect
// linear scaling from the baseline size).
func (c ScaleCell) Efficiency(baselineWorkers int) float64 {
	if c.Config.Workers <= 0 || baselineWorkers <= 0 {
		return 0
	}
	return c.Speedup() / (float64(c.Config.Workers) / float64(baselineWorkers))
}

// CostRatio is the per-second-billing cost ratio over the smallest-size
// baseline: > 1 means the larger cluster finished the workflow at a
// higher total cost.
func (c ScaleCell) CostRatio() float64 {
	if c.Baseline.CostSecond.Mean <= 0 {
		return 0
	}
	return c.Rep.CostSecond.Mean / c.Baseline.CostSecond.Mean
}

// ScaleStudy runs the large-matrix study and renders it: a table of
// makespan, speedup, parallel efficiency and cost versus the
// smallest-size baseline, plus per-application runtime and cost charts
// (±stddev whiskers when Sweep.Seeds > 1). All cells dispatch through
// the sweep engine as one batch and results are bit-identical at any
// parallelism.
func ScaleStudy(o ScaleStudyOptions) ([]ScaleCell, string, error) {
	o.normalize()
	var cfgs []RunConfig
	for _, app := range o.Apps {
		for _, sys := range o.Storages {
			for _, workers := range o.Sizes {
				cfg := RunConfig{App: app, Storage: sys, Workers: workers, FlowVersion: o.FlowVersion}
				if o.Build != nil {
					w, err := o.Build(app)
					if err != nil {
						return nil, "", err
					}
					cfg.Workflow = w
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	reps, err := SweepSeeds(cfgs, o.Sweep)
	if err != nil {
		return nil, "", err
	}
	// cfgs is blocks of len(o.Sizes) sharing (app, storage); the first
	// entry of each block is the smallest-size baseline.
	nSizes := len(o.Sizes)
	cells := make([]ScaleCell, len(reps))
	for i, rep := range reps {
		cells[i] = ScaleCell{
			Config:   cfgs[i],
			Rep:      rep,
			Baseline: reps[i-i%nSizes],
		}
	}
	return cells, renderScaleStudy(o, cells), nil
}

// renderScaleStudy renders the study table and the per-application
// runtime/cost figures.
func renderScaleStudy(o ScaleStudyOptions, cells []ScaleCell) string {
	base := o.Sizes[0]
	t := &report.Table{
		Title: fmt.Sprintf("Scale study: cluster sizes beyond the paper's 8 nodes (baseline %d nodes, %d seed(s))",
			base, seedsOf(o.Sweep)),
		Header: []string{"Application", "Storage", "Nodes", "Makespan (s)", "Speedup", "Efficiency", "Cost/hr", "Cost/s", "Cost ratio"},
	}
	for _, c := range cells {
		speedup, eff, ratio := "baseline", "", ""
		if c.Config.Workers != base {
			speedup = fmt.Sprintf("%.2fx", c.Speedup())
			eff = fmt.Sprintf("%.0f%%", c.Efficiency(base)*100)
			ratio = fmt.Sprintf("%.2fx", c.CostRatio())
		}
		t.AddRow(
			c.Config.App,
			c.Config.Storage,
			fmt.Sprintf("%d", c.Config.Workers),
			fmtPM(c.Rep.Makespan, 0),
			speedup,
			eff,
			units.USD(c.Rep.CostHour.Mean),
			units.USD(c.Rep.CostSecond.Mean),
			ratio,
		)
	}
	var b strings.Builder
	b.WriteString(t.String())
	for _, app := range o.Apps {
		runtime := &report.BarChart{
			Title: fmt.Sprintf("%s: runtime vs cluster size (s)", title(app)),
			Unit:  "s",
		}
		cost := &report.BarChart{
			Title: fmt.Sprintf("%s: per-second-billing cost vs cluster size (USD)", title(app)),
			Unit:  "USD",
		}
		for _, c := range cells {
			if c.Config.App != app {
				continue
			}
			label := fmt.Sprintf("%s n=%d", c.Config.Storage, c.Config.Workers)
			runtime.AddErr(label, c.Rep.Makespan.Mean, c.Rep.Makespan.Stddev)
			cost.AddErr(label, c.Rep.CostSecond.Mean, c.Rep.CostSecond.Stddev)
		}
		b.WriteByte('\n')
		b.WriteString(runtime.String())
		b.WriteByte('\n')
		b.WriteString(cost.String())
	}
	return b.String()
}
