package harness

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/scenario"
	"ec2wfsim/internal/wms"
)

// The scenario redesign replaced the hand-maintained CellKey formatting
// and SweepSeeds salting with per-option-group declarations. The memo
// cache, the golden file and the paired-baseline seeding all depend on
// those encodings staying bit-identical, so this file keeps the
// pre-redesign implementations verbatim as oracles and checks the new
// path against them over the full permutation lattice of every field.

// oldCellKey is the pre-scenario CellKey, kept verbatim.
func oldCellKey(cfg RunConfig) string {
	if cfg.Workflow != nil || cfg.transient {
		return ""
	}
	wt := cfg.WorkerType
	if wt == "" {
		wt = "c1.xlarge"
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	var retries int
	var failSeed uint64
	if cfg.FailureRate > 0 {
		retries = cfg.MaxRetries
		if retries == 0 {
			retries = wms.DefaultMaxRetries
		}
		failSeed = cfg.FailureSeed
		if failSeed == 0 {
			failSeed = wms.DefaultFailureSeed
		}
	}
	var outDur float64
	var outSeed uint64
	if cfg.OutageRate > 0 {
		outDur = cfg.OutageDuration
		if outDur == 0 {
			outDur = wms.DefaultOutageDuration
		}
		outSeed = cfg.OutageSeed
		if outSeed == 0 {
			outSeed = wms.DefaultOutageSeed
		}
	}
	return fmt.Sprintf("%s|%s|n=%d|%s|seed=%d|appseed=%d|aware=%t|init=%t:%g|fail=%g:%d:%d|out=%g:%g:%d|ckpt=%g",
		cfg.App, cfg.Storage, cfg.Workers, wt, seed, cfg.AppSeed, cfg.DataAware,
		cfg.InitializeDisks, cfg.InitializeBytes, cfg.FailureRate, retries, failSeed,
		cfg.OutageRate, outDur, outSeed, cfg.CheckpointInterval)
}

// oldCellSeed is the pre-scenario CellSeed, kept verbatim (salts
// inlined — they moved into the scenario package).
func oldCellSeed(cfg RunConfig, replicate int) uint64 {
	base := cfg.Seed
	if base == 0 {
		base = DefaultSeed
	}
	if replicate == 0 {
		return base
	}
	key := fmt.Sprintf("%s|%s|%d|%s|%t|%t", cfg.App, cfg.Storage, cfg.Workers,
		cfg.WorkerType, cfg.DataAware, cfg.InitializeDisks)
	r := rng.New((rng.HashString(key) ^ base) + uint64(replicate))
	s := r.Uint64()
	if s == 0 {
		s = 1
	}
	return s
}

// oldReseed is the pre-scenario SweepSeeds replicate salting, verbatim.
func oldReseed(c *RunConfig, s uint64) {
	const failureSeedSalt uint64 = 0xFA11AB1E
	const outageSeedSalt uint64 = 0x0D07A6E5
	c.Seed = s
	if c.Workflow == nil {
		c.AppSeed = s
	}
	if c.FailureRate > 0 {
		c.FailureSeed = s ^ failureSeedSalt
	}
	if c.OutageRate > 0 {
		c.OutageSeed = s ^ outageSeedSalt
	}
}

// compatConfigs enumerates the pre-redesign RunConfig permutation
// lattice: every field crossed over representative values, including
// the normalized defaults (0/""), their explicit spellings, and odd
// values.
func compatConfigs() []RunConfig {
	type failCase struct {
		rate float64
		retr int
		seed uint64
	}
	var (
		apps     = []string{"montage", "broadband", "epigenome"}
		storages = []string{"local", "nfs", "nfs-sync", "gluster-nufa", "gluster-dist", "pvfs", "s3", "s3-nocache", "xtreemfs", "nope"}
		workers  = []int{1, 2, 8, 64}
		wts      = []string{"", "c1.xlarge", "m1.large"}
		seeds    = []uint64{0, DefaultSeed, 7, 1<<63 + 5}
		appseeds = []uint64{0, 3}
		bools    = []bool{false, true}
		fails    = []failCase{{0, 0, 0}, {0, 5, 9}, {0.1, 0, 0}, {0.1, 5, 9}}
		outs     = []failCase{{0, 0, 0}, {0, 0, 11}, {1.5, 0, 0}, {1.5, 0, 11}}
		ckpts    = []float64{0, 60.5}
	)
	var cfgs []RunConfig
	for _, app := range apps {
		for _, sys := range storages {
			for _, n := range workers {
				for _, wt := range wts {
					for _, seed := range seeds {
						for _, appseed := range appseeds {
							for _, aware := range bools {
								for _, init := range bools {
									for _, fc := range fails {
										for _, oc := range outs {
											for _, ck := range ckpts {
												cfg := RunConfig{
													App: app, Storage: sys, Workers: n,
													WorkerType: wt, DataAware: aware,
													Seed: seed, AppSeed: appseed,
													InitializeDisks: init,
													FailureRate:     fc.rate, MaxRetries: fc.retr, FailureSeed: fc.seed,
													OutageRate: oc.rate, OutageSeed: oc.seed,
													CheckpointInterval: ck,
												}
												if init {
													cfg.InitializeBytes = 50e9
												}
												if oc.rate > 0 {
													cfg.OutageDuration = 90
												}
												cfgs = append(cfgs, cfg)
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cfgs
}

// TestCellKeyMatchesOracle proves the redesign's hard constraint: every
// pre-redesign configuration hashes to its old CellKey string, so
// memoization keys (and with them the golden file's cache behavior)
// are unchanged.
func TestCellKeyMatchesOracle(t *testing.T) {
	mismatches := 0
	for _, cfg := range compatConfigs() {
		if got, want := CellKey(cfg), oldCellKey(cfg); got != want {
			t.Errorf("CellKey(%+v):\n got %q\nwant %q", cfg, got, want)
			if mismatches++; mismatches > 5 {
				t.Fatal("too many mismatches")
			}
		}
	}
}

// TestCellSeedMatchesOracle pins replicate-seed derivation: paired
// baselines and multi-seed studies reproduce their pre-redesign seeds.
func TestCellSeedMatchesOracle(t *testing.T) {
	mismatches := 0
	for _, cfg := range compatConfigs() {
		for _, rep := range []int{0, 1, 2, 7} {
			if got, want := CellSeed(cfg, rep), oldCellSeed(cfg, rep); got != want {
				t.Errorf("CellSeed(%+v, %d) = %d, want %d", cfg, rep, got, want)
				if mismatches++; mismatches > 5 {
					t.Fatal("too many mismatches")
				}
			}
		}
	}
}

// TestReseedMatchesOracle pins the replicate salting SweepSeeds applies
// on top of the derived seed.
func TestReseedMatchesOracle(t *testing.T) {
	for _, cfg := range compatConfigs() {
		derived := CellSeed(cfg, 3)

		want := cfg
		oldReseed(&want, derived)

		spec := cfg.Spec()
		scenario.Reseed(&spec, derived)
		got := SpecConfig(spec)

		if got != want {
			t.Fatalf("Reseed(%+v, %d):\n got %+v\nwant %+v", cfg, derived, got, want)
		}
	}
}

// TestStudySeedOptions checks the CLI-exposed study seeds reach the
// study cells (and only them — the rate-0 baselines must stay on the
// default stream so CellKey normalization keeps pairing them).
func TestStudySeedOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two scaled-down studies")
	}
	fcells, _, err := FailureStudy(FailureStudyOptions{
		Rates: []float64{0.2}, FailureSeed: 77,
		Apps: []string{"montage"}, Storages: []string{"gluster-nufa"}, Workers: 2,
		Build: buildSmallApp,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fcells {
		if c.Config.FailureRate > 0 && c.Config.FailureSeed != 77 {
			t.Errorf("failure cell lost its seed: %+v", c.Config)
		}
		if c.Config.FailureRate == 0 && c.Config.FailureSeed != 0 {
			t.Errorf("baseline unexpectedly reseeded: %+v", c.Config)
		}
	}
	ocells, _, err := OutageStudy(OutageStudyOptions{
		Rates: []float64{2}, OutageSeed: 88,
		Apps: []string{"montage"}, Storages: []string{"gluster-nufa"}, Workers: 2,
		Build: buildSmallApp,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ocells {
		if c.Config.OutageRate > 0 && c.Config.OutageSeed != 88 {
			t.Errorf("outage cell lost its seed: %+v", c.Config)
		}
		if c.Config.OutageRate == 0 && c.Config.OutageSeed != 0 {
			t.Errorf("baseline unexpectedly reseeded: %+v", c.Config)
		}
	}
}

// TestSpecRoundTripsRunConfig checks the Spec projection is lossless
// for everything serializable, through both the struct conversion and
// its JSON encoding.
func TestSpecRoundTripsRunConfig(t *testing.T) {
	for _, cfg := range compatConfigs() {
		spec := cfg.Spec()
		if back := SpecConfig(spec); back != cfg {
			t.Fatalf("SpecConfig(Spec()) = %+v, want %+v", back, cfg)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var decoded scenario.Spec
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(decoded, spec) {
			t.Fatalf("JSON round trip lost fields:\n got %+v\nwant %+v", decoded, spec)
		}
	}
}
