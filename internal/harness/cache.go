package harness

import (
	"bytes"
	"encoding/json"
	"fmt"

	"ec2wfsim/internal/cost"
	"ec2wfsim/internal/resultcache"
	"ec2wfsim/internal/scenario"
	"ec2wfsim/internal/storage"
)

// The persistent result cache (internal/resultcache) sits under the
// process-wide memo: a cell that misses the in-process cache consults
// the on-disk store before simulating, so repeated cells are free
// across invocations, CI runs and users sharing a store directory.
// Cached entries carry the canonical metric row — everything the JSON
// and CSV exports, the replicate aggregations and the figures consume —
// but not the execution trace: a cache-served RunResult has nil Spans
// and Cluster, which is why trace-rendering paths (wfsim -gantt/-csv,
// event recording, Amortize) never run through the cache.

// cacheRow is the canonical serialized payload of one cached result.
// Field order is fixed by the struct, so the encoding is a pure
// function of the result and cold-vs-warm exports are byte-identical.
type cacheRow struct {
	Spec            scenario.Spec  `json:"spec"`
	Makespan        float64        `json:"makespan_s"`
	ProvisionTime   float64        `json:"provision_s"`
	Utilization     float64        `json:"utilization"`
	MemoryWaits     int64          `json:"memory_waits"`
	Failures        int64          `json:"failures"`
	Retries         int64          `json:"retries"`
	Outages         int64          `json:"outages"`
	OutageKills     int64          `json:"outage_kills"`
	LostWorkSeconds float64        `json:"lost_work_s"`
	Checkpoints     int64          `json:"checkpoints"`
	CheckpointBytes float64        `json:"checkpoint_bytes"`
	Stats           storage.Stats  `json:"stats"`
	CostHour        cost.Breakdown `json:"cost_hour"`
	CostSecond      cost.Breakdown `json:"cost_second"`
}

// CacheKey derives the persistent-store key for a configuration:
// the canonical scenario key of the effective spec (replicates carry
// their reseeded spec, so every replicate is its own entry), the
// effective seed, and the normalized flow-solver version. Custom
// in-memory workflows are not keyable — the DAG is not part of the
// spec — so those configurations never touch the store.
func CacheKey(cfg RunConfig) (resultcache.Key, bool) {
	if cfg.Workflow != nil {
		return resultcache.Key{}, false
	}
	spec := cfg.Spec()
	seed := spec.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	return resultcache.Key{Cell: scenario.Key(&spec), Seed: seed, Flow: spec.FlowVersion}, true
}

// encodeRow renders a result's canonical cached payload.
func encodeRow(r *RunResult) ([]byte, error) {
	spec := r.Config.Spec()
	return json.Marshal(cacheRow{
		Spec:            spec,
		Makespan:        r.Makespan,
		ProvisionTime:   r.ProvisionTime,
		Utilization:     r.Utilization,
		MemoryWaits:     r.MemoryWaits,
		Failures:        r.Failures,
		Retries:         r.Retries,
		Outages:         r.Outages,
		OutageKills:     r.OutageKills,
		LostWorkSeconds: r.LostWorkSeconds,
		Checkpoints:     r.Checkpoints,
		CheckpointBytes: r.CheckpointBytes,
		Stats:           r.Stats,
		CostHour:        r.CostHour,
		CostSecond:      r.CostSecond,
	})
}

// decodeRow rebuilds a RunResult from a cached payload. Decoding is
// strict — unknown fields mean the entry was written by a newer layout
// under the same schema version, and recomputing beats misreading. The
// embedded spec must render the same canonical cell key the entry was
// fetched under, closing the loop between file content and key.
func decodeRow(data []byte, cfg RunConfig, key resultcache.Key) (*RunResult, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var row cacheRow
	if err := dec.Decode(&row); err != nil {
		return nil, fmt.Errorf("harness: cached row undecodable: %w", err)
	}
	if got := scenario.Key(&row.Spec); got != key.Cell {
		return nil, fmt.Errorf("harness: cached row spec renders key %q, want %q", got, key.Cell)
	}
	return &RunResult{
		Config:          cfg,
		Makespan:        row.Makespan,
		ProvisionTime:   row.ProvisionTime,
		Utilization:     row.Utilization,
		MemoryWaits:     row.MemoryWaits,
		Failures:        row.Failures,
		Retries:         row.Retries,
		Outages:         row.Outages,
		OutageKills:     row.OutageKills,
		LostWorkSeconds: row.LostWorkSeconds,
		Checkpoints:     row.Checkpoints,
		CheckpointBytes: row.CheckpointBytes,
		Stats:           row.Stats,
		CostHour:        row.CostHour,
		CostSecond:      row.CostSecond,
	}, nil
}

// cachedRun wraps a cell runner with the persistent store: consult
// before simulating, persist after. Any store trouble — a miss, a
// corrupt or schema-mismatched entry, an undecodable payload — falls
// back to recomputing, and a fresh Put overwrites the bad entry; a
// failed Put is not a run failure (the result is still correct, the
// next run just recomputes it).
func cachedRun(store *resultcache.Store, run func(RunConfig) (*RunResult, error)) func(RunConfig) (*RunResult, error) {
	return func(cfg RunConfig) (*RunResult, error) {
		key, ok := CacheKey(cfg)
		if !ok {
			return run(cfg)
		}
		if data, err := store.Get(key); err == nil {
			if r, derr := decodeRow(data, cfg, key); derr == nil {
				return r, nil
			}
		}
		r, err := run(cfg)
		if err != nil {
			return nil, err
		}
		if data, eerr := encodeRow(r); eerr == nil {
			_ = store.Put(key, data)
		}
		return r, nil
	}
}
