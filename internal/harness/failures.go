package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ec2wfsim/internal/report"
	"ec2wfsim/internal/sweep"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/workflow"
)

// The failure-sensitivity study quantifies what the paper's
// single-measurement, failure-free runs hide: real EC2 campaigns see
// transient task failures (spot hiccups, OOM kills, flaky mounts), and
// their cost depends on the storage system because every retry re-stages
// its inputs. Each application runs on each studied storage system at a
// ladder of injected failure rates; every cell is compared against the
// failure-free baseline at the same seeds, so the reported inflation is
// a paired difference, not two independent measurements.

// FailureRates is the canonical rate ladder for the study, rate 0 (the
// paper's setting) leading as the baseline.
func FailureRates() []float64 { return []float64{0, 0.05, 0.1, 0.2, 0.4} }

// FailureStudyStorages lists the storage systems the study crosses with
// each application: the sync-export NFS worst case, the paper's GlusterFS
// NUFA workhorse, PVFS, and S3 (whose client cache makes retries cheap).
func FailureStudyStorages() []string {
	return []string{"nfs-sync", "gluster-nufa", "pvfs", "s3"}
}

// DefaultFailureStudyWorkers is the cluster size the study runs at — the
// paper's mid-scale 4-node configuration.
const DefaultFailureStudyWorkers = 4

// FailureStudyOptions configures a failure-sensitivity study. The zero
// value runs the canonical study: every paper application on
// FailureStudyStorages at FailureRates with 4 workers.
type FailureStudyOptions struct {
	// Rates overrides the failure-rate ladder; a 0 baseline is prepended
	// when missing, and rates are deduplicated and sorted.
	Rates []float64
	// MaxRetries bounds failed attempts per task (0 = DAGMan's default).
	MaxRetries int
	// FailureSeed drives the injection RNG of every failing cell
	// (0 = the fixed default). The rate-0 baselines ignore it.
	FailureSeed uint64
	// Apps and Storages override the study matrix.
	Apps     []string
	Storages []string
	// Workers overrides the cluster size (0 = DefaultFailureStudyWorkers).
	Workers int
	// Build, if set, supplies the workflow per application — tests use it
	// to run scaled-down instances. Each cell gets its own instance.
	Build func(app string) (*workflow.Workflow, error)
	// Sweep carries parallelism, seeds and progress through to the sweep
	// engine; Seeds > 1 replicates every cell and puts ±stddev error
	// bars on the rendered figures.
	Sweep SweepOptions
}

func (o *FailureStudyOptions) normalize() {
	if len(o.Rates) == 0 {
		o.Rates = FailureRates()
	}
	o.Rates = normalizeRates(o.Rates)
	if len(o.Apps) == 0 {
		o.Apps = []string{"montage", "epigenome", "broadband"}
	}
	if len(o.Storages) == 0 {
		o.Storages = FailureStudyStorages()
	}
	if o.Workers <= 0 {
		o.Workers = DefaultFailureStudyWorkers
	}
}

// normalizeRates sorts, deduplicates and anchors the ladder at rate 0.
func normalizeRates(rates []float64) []float64 {
	out := []float64{0}
	for _, r := range rates {
		if r > 0 {
			out = append(out, r)
		}
	}
	sort.Float64s(out)
	dedup := out[:1]
	for _, r := range out[1:] {
		if r != dedup[len(dedup)-1] {
			dedup = append(dedup, r)
		}
	}
	return dedup
}

// FailureCell is one aggregated (application, storage, rate) cell of the
// study, paired with its failure-free baseline.
type FailureCell struct {
	Config   RunConfig  // the cell's configuration, FailureRate included
	Rep      Replicated // aggregate over Sweep.Seeds replicates
	Baseline Replicated // the rate-0 aggregate for the same app/storage
}

// MakespanInflation is the relative makespan increase over the
// failure-free baseline (0.25 = 25% slower).
func (c FailureCell) MakespanInflation() float64 {
	if c.Baseline.Makespan.Mean <= 0 {
		return 0
	}
	return c.Rep.Makespan.Mean/c.Baseline.Makespan.Mean - 1
}

// MakespanDelta summarizes the per-replicate paired differences between
// this cell and its baseline. Replicate j of both cells shares its
// jitter seeds (see CellSeed), so pairing cancels the provisioning
// spread: the stddev here is the uncertainty of the overhead itself,
// not the raw run-to-run spread.
func (c FailureCell) MakespanDelta() sweep.Summary {
	n := len(c.Rep.Runs)
	if len(c.Baseline.Runs) < n {
		n = len(c.Baseline.Runs)
	}
	deltas := make([]float64, n)
	for j := 0; j < n; j++ {
		deltas[j] = c.Rep.Runs[j].Makespan - c.Baseline.Runs[j].Makespan
	}
	return sweep.Summarize(deltas)
}

// CostOverhead is the relative per-second-billing cost increase over
// the failure-free baseline. Per-second billing is the sensitive metric:
// per-hour charges round occupancy up, absorbing retry inflation until
// it crosses an hour boundary (visible in the rendered table, where the
// per-hour column barely moves).
func (c FailureCell) CostOverhead() float64 {
	if c.Baseline.CostSecond.Mean <= 0 {
		return 0
	}
	return c.Rep.CostSecond.Mean/c.Baseline.CostSecond.Mean - 1
}

// FailureStudy runs the failure-sensitivity study and renders it: a
// table reporting makespan inflation, retry counts and cost overhead
// versus the failure-free baseline, plus one per-application delta chart
// (±stddev whiskers when Sweep.Seeds > 1). All cells dispatch through
// the sweep engine as one batch, so the study parallelizes across apps,
// storages, rates and seeds at once and is bit-identical at any
// parallelism.
func FailureStudy(o FailureStudyOptions) ([]FailureCell, string, error) {
	o.normalize()
	var cfgs []RunConfig
	for _, app := range o.Apps {
		for _, sys := range o.Storages {
			for _, rate := range o.Rates {
				cfg := RunConfig{
					App:         app,
					Storage:     sys,
					Workers:     o.Workers,
					FailureRate: rate,
					MaxRetries:  o.MaxRetries,
				}
				if rate > 0 {
					cfg.FailureSeed = o.FailureSeed
				}
				if o.Build != nil {
					w, err := o.Build(app)
					if err != nil {
						return nil, "", err
					}
					cfg.Workflow = w
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	reps, err := SweepSeeds(cfgs, o.Sweep)
	if err != nil {
		return nil, "", err
	}
	// cfgs is blocks of len(o.Rates) sharing (app, storage); the first
	// entry of each block is the rate-0 baseline.
	nRates := len(o.Rates)
	cells := make([]FailureCell, len(reps))
	for i, rep := range reps {
		cells[i] = FailureCell{
			Config:   cfgs[i],
			Rep:      rep,
			Baseline: reps[i-i%nRates],
		}
	}
	return cells, renderFailureStudy(o, cells), nil
}

// renderFailureStudy renders the study table and per-application
// makespan-overhead charts.
func renderFailureStudy(o FailureStudyOptions, cells []FailureCell) string {
	t := &report.Table{
		Title: fmt.Sprintf("Failure-sensitivity study (%d workers, per-attempt failure rates, %d seed(s))",
			o.Workers, seedsOf(o.Sweep)),
		Header: []string{"Application", "Storage", "Rate", "Makespan (s)", "Inflation", "Failures", "Retries", "Cost/hr", "Cost/s", "Overhead/s"},
	}
	for _, c := range cells {
		inflation, overhead := "baseline", ""
		if c.Config.FailureRate > 0 {
			inflation = fmtPercent(c.MakespanInflation())
			overhead = fmtPercent(c.CostOverhead())
		}
		t.AddRow(
			c.Config.App,
			c.Config.Storage,
			fmt.Sprintf("%g", c.Config.FailureRate),
			fmtPM(c.Rep.Makespan, 0),
			inflation,
			fmtPM(c.Rep.Failures, 1),
			fmtPM(c.Rep.Retries, 1),
			units.USD(c.Rep.CostHour.Mean),
			units.USD(c.Rep.CostSecond.Mean),
			overhead,
		)
	}
	var b strings.Builder
	b.WriteString(t.String())
	for _, app := range o.Apps {
		chart := &report.BarChart{
			Title: fmt.Sprintf("%s: makespan overhead vs failure-free baseline (s)", title(app)),
			Unit:  "s",
		}
		for _, c := range cells {
			if c.Config.App != app || c.Config.FailureRate == 0 {
				continue
			}
			d := c.MakespanDelta()
			chart.AddErr(fmt.Sprintf("%s r=%g", c.Config.Storage, c.Config.FailureRate),
				d.Mean, d.Stddev)
		}
		b.WriteByte('\n')
		b.WriteString(chart.String())
	}
	return b.String()
}

// fmtPM formats a summary as "mean ± stddev", dropping the band when
// there is no spread to report.
func fmtPM(s sweep.Summary, prec int) string {
	if s.N > 1 && s.Stddev > 0 {
		return fmt.Sprintf("%.*f ± %.*f", prec, s.Mean, prec, s.Stddev)
	}
	return fmt.Sprintf("%.*f", prec, s.Mean)
}

// fmtPercent formats a signed relative change.
func fmtPercent(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", v*100)
}

func seedsOf(opt SweepOptions) int {
	if opt.Seeds > 1 {
		return opt.Seeds
	}
	return 1
}
