package harness

import (
	"strings"
	"testing"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/workflow"
)

// smallApp builds a scaled-down application instance, keeping the
// failure tests fast enough for -short CI runs.
func smallApp(t testing.TB, app string) *workflow.Workflow {
	t.Helper()
	w, err := buildSmallApp(app)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func buildSmallApp(app string) (*workflow.Workflow, error) {
	switch app {
	case "montage":
		return apps.Montage(apps.MontageConfig{Images: 24})
	case "broadband":
		return apps.Broadband(apps.BroadbandConfig{Sources: 2, Sites: 2})
	case "epigenome":
		return apps.Epigenome(apps.EpigenomeConfig{Lanes: 1, ChunksPerLane: 6})
	}
	return apps.Montage(apps.MontageConfig{Images: 24})
}

// TestCellKeyFailureUniqueness pins the memoization contract for the new
// failure fields: configurations that run differently must key
// differently, and fields wms ignores must normalize away.
func TestCellKeyFailureUniqueness(t *testing.T) {
	t.Parallel()
	base := RunConfig{App: "montage", Storage: "pvfs", Workers: 4}
	distinct := []RunConfig{
		base,
		{App: "montage", Storage: "pvfs", Workers: 4, FailureRate: 0.05},
		{App: "montage", Storage: "pvfs", Workers: 4, FailureRate: 0.1},
		{App: "montage", Storage: "pvfs", Workers: 4, FailureRate: 0.1, MaxRetries: 5},
		{App: "montage", Storage: "pvfs", Workers: 4, FailureRate: 0.1, FailureSeed: 7},
	}
	seen := make(map[string]int)
	for i, cfg := range distinct {
		key := CellKey(cfg)
		if key == "" {
			t.Fatalf("config %d not memoizable: %+v", i, cfg)
		}
		if j, dup := seen[key]; dup {
			t.Errorf("configs %d and %d collide on key %q", i, j, key)
		}
		seen[key] = i
	}
	// Fields ignored at FailureRate 0 must hit the plain cell's cache.
	ignored := RunConfig{App: "montage", Storage: "pvfs", Workers: 4, MaxRetries: 5, FailureSeed: 7}
	if CellKey(ignored) != CellKey(base) {
		t.Errorf("retries/seed at rate 0 split the cache:\n%q\nvs\n%q", CellKey(ignored), CellKey(base))
	}
	// Explicit DAGMan defaults must hit the default-valued cell's cache.
	explicit := RunConfig{App: "montage", Storage: "pvfs", Workers: 4, FailureRate: 0.1, MaxRetries: 3}
	implicit := RunConfig{App: "montage", Storage: "pvfs", Workers: 4, FailureRate: 0.1}
	if CellKey(explicit) != CellKey(implicit) {
		t.Errorf("explicit MaxRetries=3 split the cache:\n%q\nvs\n%q", CellKey(explicit), CellKey(implicit))
	}
}

// TestFailureReplayDeterministic asserts a fixed FailureSeed replays the
// exact same failure sequence through harness.Run.
func TestFailureReplayDeterministic(t *testing.T) {
	t.Parallel()
	run := func() *RunResult {
		r, err := Run(RunConfig{
			App: "montage", Storage: "gluster-nufa", Workers: 2,
			Workflow:    smallApp(t, "montage"),
			FailureRate: 0.3, FailureSeed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Failures != b.Failures || a.Retries != b.Retries {
		t.Errorf("fixed FailureSeed did not replay: (%g, %d, %d) vs (%g, %d, %d)",
			a.Makespan, a.Failures, a.Retries, b.Makespan, b.Failures, b.Retries)
	}
	if a.Failures == 0 {
		t.Error("30% failure rate injected nothing")
	}
	// A different seed must produce a different failure pattern.
	c, err := Run(RunConfig{
		App: "montage", Storage: "gluster-nufa", Workers: 2,
		Workflow:    smallApp(t, "montage"),
		FailureRate: 0.3, FailureSeed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespan == a.Makespan && c.Failures == a.Failures {
		t.Error("changing FailureSeed changed nothing")
	}
}

// TestSweepSeedsPairsFailureReplicates pins the paired-baseline design:
// replicate r of a failure cell shares its provisioning/app seeds with
// replicate r of the failure-free baseline, while the failure seed
// itself varies per replicate.
func TestSweepSeedsPairsFailureReplicates(t *testing.T) {
	t.Parallel()
	baseline := RunConfig{App: "epigenome", Storage: "pvfs", Workers: 4}
	flaky := baseline
	flaky.FailureRate = 0.2
	for rep := 1; rep <= 3; rep++ {
		if CellSeed(baseline, rep) != CellSeed(flaky, rep) {
			t.Errorf("replicate %d jitter seeds diverge between baseline and failure cell", rep)
		}
	}
	if CellSeed(flaky, 1) == CellSeed(flaky, 2) {
		t.Error("replicates share a seed")
	}
}

// TestFailureStudySmoke runs the full study pipeline on scaled-down
// instances: failure cells must report injected failures, positive
// makespan inflation at a brutal rate, and a rendering with baseline
// rows and error bars.
func TestFailureStudySmoke(t *testing.T) {
	t.Parallel()
	cells, out, err := FailureStudy(FailureStudyOptions{
		Rates:    []float64{0.3},
		Apps:     []string{"montage", "broadband"},
		Storages: []string{"gluster-nufa", "s3"},
		Workers:  2,
		Build:    buildSmallApp,
		Sweep:    SweepOptions{Seeds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2 { // apps x storages x {0, 0.3}
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	for _, c := range cells {
		if c.Config.FailureRate == 0 {
			if f := c.Rep.Failures.Mean; f != 0 {
				t.Errorf("%s/%s baseline reports %.1f failures", c.Config.App, c.Config.Storage, f)
			}
			continue
		}
		if c.Rep.Failures.Mean <= 0 {
			t.Errorf("%s/%s at rate 0.3 injected nothing", c.Config.App, c.Config.Storage)
		}
		if c.MakespanInflation() <= 0 {
			t.Errorf("%s/%s at rate 0.3 shows no inflation (%.1f%%)",
				c.Config.App, c.Config.Storage, c.MakespanInflation()*100)
		}
		// Paired per-replicate deltas: every replicate shares seeds with
		// its baseline, so at a brutal rate each pair is slower.
		if d := c.MakespanDelta(); d.N != 2 || d.Min <= 0 {
			t.Errorf("%s/%s paired delta %+v; want 2 positive pairs",
				c.Config.App, c.Config.Storage, d)
		}
	}
	for _, want := range []string{"baseline", "±", "overhead vs failure-free baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("study rendering missing %q:\n%s", want, out)
		}
	}
}

// TestFailureStudyDeterministic is the study-level determinism bar: the
// whole pipeline (sweep, pairing, rendering) must be byte-identical at
// any parallelism.
func TestFailureStudyDeterministic(t *testing.T) {
	t.Parallel()
	render := func(parallel int) string {
		_, out, err := FailureStudy(FailureStudyOptions{
			Rates:    []float64{0.2},
			Apps:     []string{"epigenome"},
			Storages: []string{"gluster-nufa", "pvfs"},
			Workers:  2,
			Build:    buildSmallApp,
			Sweep:    SweepOptions{Seeds: 3, Parallel: parallel, NoMemo: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, concurrent := render(1), render(8)
	if serial != concurrent {
		t.Errorf("failure study differs between -parallel 1 and -parallel 8:\n%s\nvs\n%s", serial, concurrent)
	}
}

// TestFailureStudyDefaults pins the zero-value study configuration: the
// canonical rate ladder (a regression — an empty Rates once normalized
// to baseline-only), the paper's three applications and the studied
// storage systems.
func TestFailureStudyDefaults(t *testing.T) {
	t.Parallel()
	o := FailureStudyOptions{}
	o.normalize()
	if len(o.Rates) != len(FailureRates()) {
		t.Errorf("zero-value Rates = %v, want the canonical ladder %v", o.Rates, FailureRates())
	}
	if len(o.Apps) != 3 || len(o.Storages) != len(FailureStudyStorages()) {
		t.Errorf("zero-value matrix = %v x %v", o.Apps, o.Storages)
	}
	if o.Workers != DefaultFailureStudyWorkers {
		t.Errorf("zero-value Workers = %d", o.Workers)
	}
}

// TestNormalizeRates pins the ladder normalization: 0 anchors the
// baseline, duplicates collapse, order is ascending.
func TestNormalizeRates(t *testing.T) {
	t.Parallel()
	got := normalizeRates([]float64{0.4, 0.1, 0.1, 0, 0.05})
	want := []float64{0, 0.05, 0.1, 0.4}
	if len(got) != len(want) {
		t.Fatalf("normalizeRates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalizeRates = %v, want %v", got, want)
		}
	}
}
