package harness

import (
	"strings"
	"testing"
)

// TestScaleStudySmall runs a scaled-down scale study end to end: matrix
// construction, baseline pairing, speedup/efficiency math and the
// rendered table and figures.
func TestScaleStudySmall(t *testing.T) {
	t.Parallel()
	o := ScaleStudyOptions{
		Sizes:    []int{2, 4, 8},
		Apps:     []string{"montage"},
		Storages: []string{"gluster-nufa", "pvfs"},
		Build:    buildSmallApp,
	}
	cells, out, err := ScaleStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 * 2 * 3; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for i, c := range cells {
		if c.Rep.Makespan.Mean <= 0 {
			t.Errorf("cell %d (%s n=%d): non-positive makespan", i, c.Config.Storage, c.Config.Workers)
		}
		base := cells[i-i%3]
		if c.Baseline.Makespan.Mean != base.Rep.Makespan.Mean {
			t.Errorf("cell %d paired against the wrong baseline", i)
		}
		if c.Config.Workers == 2 && c.Speedup() != 1 {
			t.Errorf("baseline cell %d: speedup %g, want 1", i, c.Speedup())
		}
		// Parallel efficiency can exceed 1 only through measurement
		// artifacts the small instances don't have; a 4x larger cluster
		// must not be reported as super-linear.
		if eff := c.Efficiency(2); eff < 0 || eff > 1.5 {
			t.Errorf("cell %d: implausible efficiency %g", i, eff)
		}
	}
	for _, want := range []string{"Scale study", "Speedup", "Efficiency", "runtime vs cluster size", "cost vs cluster size", "baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered study missing %q", want)
		}
	}
}

// TestScaleStudyDeterministicAcrossParallelism pins the study's
// bit-identical-at-any-parallelism contract — the same guarantee the
// golden sweeps enforce, for the new matrix.
func TestScaleStudyDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	run := func(parallel int) string {
		_, out, err := ScaleStudy(ScaleStudyOptions{
			Sizes:    []int{2, 4},
			Apps:     []string{"montage"},
			Storages: []string{"gluster-nufa"},
			Build:    buildSmallApp,
			Sweep:    SweepOptions{Parallel: parallel, NoMemo: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("scale study diverged between -parallel 1 and 8:\n%s\nvs\n%s", a, b)
	}
}

// TestScaleAblationRegistered wires the study into the ablation table.
func TestScaleAblationRegistered(t *testing.T) {
	t.Parallel()
	found := false
	for _, name := range AblationNames() {
		if name == "scale" {
			found = true
		}
	}
	if !found {
		t.Fatal("ablation list missing \"scale\"")
	}
}
