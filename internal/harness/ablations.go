package harness

import (
	"fmt"

	"ec2wfsim/internal/disk"
	"ec2wfsim/internal/report"
	"ec2wfsim/internal/units"
)

// diskSingle and diskRAID0x4 expose the disk profiles for reports.
func diskSingle() disk.Profile  { return disk.EphemeralSingle() }
func diskRAID0x4() disk.Profile { return disk.RAID0(disk.EphemeralSingle(), 4) }

// AblationResult pairs a configuration label with its cell.
type AblationResult struct {
	Label  string
	Result *RunResult
}

// Ablation runs one of the named ablation experiments from DESIGN.md.
func Ablation(name string) ([]AblationResult, string, error) {
	switch name {
	case "xtreemfs":
		return ablateXtreemFS()
	case "s3cache":
		return ablateS3Cache()
	case "locality":
		return ablateLocality()
	case "nfssync":
		return ablateNFSSync()
	case "nfsserver":
		return ablateNFSServer()
	case "diskinit":
		return ablateDiskInit()
	case "workertype":
		return ablateWorkerType()
	default:
		return nil, "", fmt.Errorf("harness: unknown ablation %q (want xtreemfs, s3cache, locality, nfssync, nfsserver, diskinit or workertype)", name)
	}
}

// AblationNames lists the available ablation experiments.
func AblationNames() []string {
	return []string{"xtreemfs", "s3cache", "locality", "nfssync", "nfsserver", "diskinit", "workertype"}
}

// ablateWorkerType checks the paper's Section III.B premise: "we found
// that the c1.xlarge type delivers the best overall performance for the
// applications considered here". Same dollar budget, different shapes:
// 4 c1.xlarge ($2.72/h) vs 4 m1.xlarge ($2.72/h) vs 8 m1.large ($2.72/h).
func ablateWorkerType() ([]AblationResult, string, error) {
	configs := []struct {
		label      string
		workerType string
		workers    int
	}{
		{"4 x c1.xlarge (paper)", "c1.xlarge", 4},
		{"4 x m1.xlarge", "m1.xlarge", 4},
		{"8 x m1.large", "m1.large", 8},
	}
	var results []AblationResult
	for _, app := range []string{"montage", "epigenome", "broadband"} {
		for _, cfg := range configs {
			r, err := Run(RunConfig{
				App:        app,
				Storage:    "gluster-nufa",
				Workers:    cfg.workers,
				WorkerType: cfg.workerType,
			})
			if err != nil {
				return nil, "", err
			}
			results = append(results, AblationResult{Label: app + ": " + cfg.label, Result: r})
		}
	}
	return results, renderAblation("§III.B premise: worker instance type at equal hourly budget ($2.72/h of workers, GlusterFS NUFA)", results), nil
}

// ablateXtreemFS reproduces the paper's Section IV note: workflows on
// XtreemFS took more than twice as long as on the systems reported.
func ablateXtreemFS() ([]AblationResult, string, error) {
	results := []AblationResult{}
	for _, sys := range []string{"gluster-nufa", "nfs", "xtreemfs"} {
		r, err := Run(RunConfig{App: "montage", Storage: sys, Workers: 2})
		if err != nil {
			return nil, "", err
		}
		results = append(results, AblationResult{Label: sys, Result: r})
	}
	return results, renderAblation("E-X1: Montage on XtreemFS vs reported systems (2 nodes)", results), nil
}

// ablateS3Cache reproduces the S3 client-cache effect on Broadband
// (Section IV.A / V.C: caching is what makes S3 win for Broadband).
func ablateS3Cache() ([]AblationResult, string, error) {
	results := []AblationResult{}
	for _, sys := range []string{"s3", "s3-nocache"} {
		r, err := Run(RunConfig{App: "broadband", Storage: sys, Workers: 4})
		if err != nil {
			return nil, "", err
		}
		results = append(results, AblationResult{Label: sys, Result: r})
	}
	return results, renderAblation("A-1: Broadband on S3 with and without the client cache (4 nodes)", results), nil
}

// ablateLocality implements the paper's future-work suggestion: a
// data-aware scheduler raising cache hits and cutting transfers.
func ablateLocality() ([]AblationResult, string, error) {
	results := []AblationResult{}
	for _, aware := range []bool{false, true} {
		label := "fifo (paper)"
		if aware {
			label = "data-aware"
		}
		r, err := Run(RunConfig{App: "broadband", Storage: "gluster-nufa", Workers: 4, DataAware: aware})
		if err != nil {
			return nil, "", err
		}
		results = append(results, AblationResult{Label: label, Result: r})
	}
	return results, renderAblation("A-2: Broadband on GlusterFS NUFA, locality-blind vs data-aware scheduling (4 nodes)", results), nil
}

// ablateNFSSync quantifies the async export option (Section IV.B).
func ablateNFSSync() ([]AblationResult, string, error) {
	results := []AblationResult{}
	for _, sys := range []string{"nfs", "nfs-sync"} {
		r, err := Run(RunConfig{App: "montage", Storage: sys, Workers: 2})
		if err != nil {
			return nil, "", err
		}
		results = append(results, AblationResult{Label: sys, Result: r})
	}
	return results, renderAblation("A-4: Montage on NFS, async vs sync exports (2 nodes)", results), nil
}

// ablateNFSServer reproduces the Broadband big-server experiment
// (Section V.C: m2.4xlarge 4368 s vs m1.xlarge 5363 s at 4 nodes).
func ablateNFSServer() ([]AblationResult, string, error) {
	results := []AblationResult{}
	for _, sys := range []string{"nfs", "nfs-m2.4xlarge"} {
		r, err := Run(RunConfig{App: "broadband", Storage: sys, Workers: 4})
		if err != nil {
			return nil, "", err
		}
		results = append(results, AblationResult{Label: sys, Result: r})
	}
	return results, renderAblation("A-3: Broadband NFS server size at 4 nodes (paper: 5363 s vs 4368 s)", results), nil
}

// ablateDiskInit tests Amazon's suggested first-write mitigation: is
// zero-initializing the disks worth it for a single Montage run? (The
// paper argues no: zeroing 50 GB takes as long as the workflow.)
func ablateDiskInit() ([]AblationResult, string, error) {
	results := []AblationResult{}
	for _, init := range []bool{false, true} {
		label := "uninitialized (paper)"
		if init {
			label = "zero-initialized 50 GB"
		}
		r, err := Run(RunConfig{
			App: "montage", Storage: "local", Workers: 1,
			InitializeDisks: init, InitializeBytes: 50 * units.GB,
		})
		if err != nil {
			return nil, "", err
		}
		if init {
			// Charge the initialization time against the run: the paper's
			// economic argument is about total occupancy.
			r.Makespan += r.ProvisionTime
		}
		results = append(results, AblationResult{Label: label, Result: r})
	}
	return results, renderAblation("A-6: Montage local disk with and without zero-initialization (1 node; init time charged)", results), nil
}

func renderAblation(title string, results []AblationResult) string {
	t := &report.Table{
		Title:  title,
		Header: []string{"Configuration", "Makespan", "Cost/hr", "Cost/sec", "Net bytes", "Cache hits"},
	}
	for _, ar := range results {
		r := ar.Result
		t.AddRow(ar.Label,
			units.Duration(r.Makespan),
			units.USD(r.CostHour.Total()),
			units.USD(r.CostSecond.Total()),
			units.Bytes(r.Stats.NetworkBytes),
			fmt.Sprintf("%d", r.Stats.CacheHits),
		)
	}
	return t.String()
}
