package harness

import (
	"fmt"
	"strings"

	"ec2wfsim/internal/disk"
	"ec2wfsim/internal/report"
	"ec2wfsim/internal/units"
)

// diskSingle and diskRAID0x4 expose the disk profiles for reports.
func diskSingle() disk.Profile  { return disk.EphemeralSingle() }
func diskRAID0x4() disk.Profile { return disk.RAID0(disk.EphemeralSingle(), 4) }

// AblationResult pairs a configuration label with its cell.
type AblationResult struct {
	Label  string
	Result *RunResult
}

// Ablation runs one of the named ablation experiments from DESIGN.md.
func Ablation(name string) ([]AblationResult, string, error) {
	return AblationSweep(name, SweepOptions{})
}

// AblationSweep is Ablation with explicit sweep options. Each ablation's
// cells dispatch through the sweep engine as one concurrent batch, and
// cells shared with the figure grids (most ablations reuse grid
// configurations) come from the process-wide cache.
func AblationSweep(name string, opt SweepOptions) ([]AblationResult, string, error) {
	if name == "failures" {
		// The failure-sensitivity study has its own matrix (rates) and
		// renderer (baseline-paired inflation, delta charts); it honours
		// opt.Seeds where the fixed-cell ablations are single-seed.
		cells, out, err := FailureStudy(FailureStudyOptions{Sweep: opt})
		if err != nil {
			return nil, "", err
		}
		results := make([]AblationResult, len(cells))
		for i, c := range cells {
			results[i] = AblationResult{
				Label:  fmt.Sprintf("%s/%s r=%g", c.Config.App, c.Config.Storage, c.Config.FailureRate),
				Result: c.Rep.Runs[0],
			}
		}
		return results, out, nil
	}
	if name == "outages" {
		// Likewise for the correlated-outage study (rate ladder crossed
		// with the checkpoint/restart arm).
		cells, out, err := OutageStudy(OutageStudyOptions{Sweep: opt})
		if err != nil {
			return nil, "", err
		}
		results := make([]AblationResult, len(cells))
		for i, c := range cells {
			ckpt := ""
			if c.Checkpointed() {
				ckpt = " +ckpt"
			}
			results[i] = AblationResult{
				Label:  fmt.Sprintf("%s/%s r=%g%s", c.Config.App, c.Config.Storage, c.Config.OutageRate, ckpt),
				Result: c.Rep.Runs[0],
			}
		}
		return results, out, nil
	}
	if name == "scale" || name == "scale1000" {
		// The large-matrix scale study: cluster sizes beyond the paper's
		// 8 nodes, paired against the 8-node baseline; honours opt.Seeds.
		// The scale1000 variant jumps straight to 1000 nodes and pins the
		// v2 coalescing flow solver — at that fan-out the v1 dirty-set
		// solver is what makes the matrix unaffordable.
		sopt := ScaleStudyOptions{Sweep: opt}
		if name == "scale1000" {
			sopt.Sizes = []int{8, 1000}
			sopt.FlowVersion = 2
		}
		cells, out, err := ScaleStudy(sopt)
		if err != nil {
			return nil, "", err
		}
		results := make([]AblationResult, len(cells))
		for i, c := range cells {
			results[i] = AblationResult{
				Label:  fmt.Sprintf("%s/%s n=%d", c.Config.App, c.Config.Storage, c.Config.Workers),
				Result: c.Rep.Runs[0],
			}
		}
		return results, out, nil
	}
	a, ok := ablations[name]
	if !ok {
		return nil, "", fmt.Errorf("harness: unknown ablation %q (want one of %s)", name, strings.Join(AblationNames(), ", "))
	}
	results, err := runAblation(a, opt)
	if err != nil {
		return nil, "", err
	}
	return results, renderAblation(a.title, results), nil
}

// AblationNames lists the available ablation experiments.
func AblationNames() []string {
	return []string{"xtreemfs", "s3cache", "locality", "nfssync", "nfsserver", "diskinit", "workertype", "failures", "outages", "scale", "scale1000"}
}

// ablation declares one experiment: a labelled list of cells plus an
// optional per-result adjustment applied after the sweep.
type ablation struct {
	title string
	cells []ablationCell
	// post, if set, adjusts each result (which is a private copy) before
	// rendering — e.g. charging initialization time against the run.
	post func(label string, r *RunResult)
}

type ablationCell struct {
	label string
	cfg   RunConfig
}

// runAblation dispatches an ablation's cells through the sweep engine.
func runAblation(a ablation, opt SweepOptions) ([]AblationResult, error) {
	cfgs := make([]RunConfig, len(a.cells))
	for i, c := range a.cells {
		cfgs[i] = c.cfg
	}
	rs, err := Sweep(cfgs, opt)
	if err != nil {
		return nil, err
	}
	results := make([]AblationResult, len(rs))
	for i, r := range rs {
		if a.post != nil {
			a.post(a.cells[i].label, r)
		}
		results[i] = AblationResult{Label: a.cells[i].label, Result: r}
	}
	return results, nil
}

// ablations declares every experiment from DESIGN.md.
var ablations = map[string]ablation{
	// ablateWorkerType checks the paper's Section III.B premise: "we
	// found that the c1.xlarge type delivers the best overall performance
	// for the applications considered here". Same dollar budget,
	// different shapes: 4 c1.xlarge ($2.72/h) vs 4 m1.xlarge ($2.72/h)
	// vs 8 m1.large ($2.72/h).
	"workertype": {
		title: "§III.B premise: worker instance type at equal hourly budget ($2.72/h of workers, GlusterFS NUFA)",
		cells: workerTypeCells(),
	},

	// The paper's Section IV note: workflows on XtreemFS took more than
	// twice as long as on the systems reported.
	"xtreemfs": {
		title: "E-X1: Montage on XtreemFS vs reported systems (2 nodes)",
		cells: []ablationCell{
			{"gluster-nufa", RunConfig{App: "montage", Storage: "gluster-nufa", Workers: 2}},
			{"nfs", RunConfig{App: "montage", Storage: "nfs", Workers: 2}},
			{"xtreemfs", RunConfig{App: "montage", Storage: "xtreemfs", Workers: 2}},
		},
	},

	// The S3 client-cache effect on Broadband (Section IV.A / V.C:
	// caching is what makes S3 win for Broadband).
	"s3cache": {
		title: "A-1: Broadband on S3 with and without the client cache (4 nodes)",
		cells: []ablationCell{
			{"s3", RunConfig{App: "broadband", Storage: "s3", Workers: 4}},
			{"s3-nocache", RunConfig{App: "broadband", Storage: "s3-nocache", Workers: 4}},
		},
	},

	// The paper's future-work suggestion: a data-aware scheduler raising
	// cache hits and cutting transfers.
	"locality": {
		title: "A-2: Broadband on GlusterFS NUFA, locality-blind vs data-aware scheduling (4 nodes)",
		cells: []ablationCell{
			{"fifo (paper)", RunConfig{App: "broadband", Storage: "gluster-nufa", Workers: 4}},
			{"data-aware", RunConfig{App: "broadband", Storage: "gluster-nufa", Workers: 4, DataAware: true}},
		},
	},

	// The async export option quantified (Section IV.B).
	"nfssync": {
		title: "A-4: Montage on NFS, async vs sync exports (2 nodes)",
		cells: []ablationCell{
			{"nfs", RunConfig{App: "montage", Storage: "nfs", Workers: 2}},
			{"nfs-sync", RunConfig{App: "montage", Storage: "nfs-sync", Workers: 2}},
		},
	},

	// The Broadband big-server experiment (Section V.C: m2.4xlarge
	// 4368 s vs m1.xlarge 5363 s at 4 nodes).
	"nfsserver": {
		title: "A-3: Broadband NFS server size at 4 nodes (paper: 5363 s vs 4368 s)",
		cells: []ablationCell{
			{"nfs", RunConfig{App: "broadband", Storage: "nfs", Workers: 4}},
			{"nfs-m2.4xlarge", RunConfig{App: "broadband", Storage: "nfs-m2.4xlarge", Workers: 4}},
		},
	},

	// Amazon's suggested first-write mitigation: is zero-initializing
	// the disks worth it for a single Montage run? (The paper argues no:
	// zeroing 50 GB takes as long as the workflow.)
	"diskinit": {
		title: "A-6: Montage local disk with and without zero-initialization (1 node; init time charged)",
		cells: []ablationCell{
			{"uninitialized (paper)", RunConfig{App: "montage", Storage: "local", Workers: 1}},
			{"zero-initialized 50 GB", RunConfig{
				App: "montage", Storage: "local", Workers: 1,
				InitializeDisks: true, InitializeBytes: 50 * units.GB,
			}},
		},
		post: func(label string, r *RunResult) {
			if r.Config.InitializeDisks {
				// Charge the initialization time against the run: the
				// paper's economic argument is about total occupancy.
				r.Makespan += r.ProvisionTime
			}
		},
	},
}

func workerTypeCells() []ablationCell {
	configs := []struct {
		label      string
		workerType string
		workers    int
	}{
		{"4 x c1.xlarge (paper)", "c1.xlarge", 4},
		{"4 x m1.xlarge", "m1.xlarge", 4},
		{"8 x m1.large", "m1.large", 8},
	}
	var cells []ablationCell
	for _, app := range []string{"montage", "epigenome", "broadband"} {
		for _, cfg := range configs {
			cells = append(cells, ablationCell{
				label: app + ": " + cfg.label,
				cfg: RunConfig{
					App:        app,
					Storage:    "gluster-nufa",
					Workers:    cfg.workers,
					WorkerType: cfg.workerType,
				},
			})
		}
	}
	return cells
}

func renderAblation(title string, results []AblationResult) string {
	t := &report.Table{
		Title:  title,
		Header: []string{"Configuration", "Makespan", "Cost/hr", "Cost/sec", "Net bytes", "Cache hits"},
	}
	for _, ar := range results {
		r := ar.Result
		t.AddRow(ar.Label,
			units.Duration(r.Makespan),
			units.USD(r.CostHour.Total()),
			units.USD(r.CostSecond.Total()),
			units.Bytes(r.Stats.NetworkBytes),
			fmt.Sprintf("%d", r.Stats.CacheHits),
		)
	}
	return t.String()
}
