package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/resultcache"
	"ec2wfsim/internal/scenario"
	"ec2wfsim/internal/sweep"
	"ec2wfsim/internal/workflow"
)

// The harness dispatches every experiment matrix — figure grids,
// ablations, CLI sweeps — through one shared sweep engine. Two caches
// back it:
//
//   - cellMemo holds finished cells keyed by CellKey, so the figures,
//     ablations and tests that revisit the same (app, storage, workers)
//     cell pay for it once per process;
//   - paperApps holds the built paper-scale workflows (Montage alone is
//     10k tasks), shared read-only across concurrent cells — the DAG is
//     immutable during execution, all run state lives in wms.
var (
	cellMemo  = sweep.NewMemo[*RunResult]()
	paperApps = sweep.NewMemo[*workflow.Workflow]()

	// parallelism is the default worker count for sweeps; zero means
	// GOMAXPROCS. CLIs set it from -parallel.
	parallelism atomic.Int64
)

// SetParallel sets the default sweep parallelism; n <= 0 restores the
// GOMAXPROCS default.
func SetParallel(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

func defaultParallel() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SweepOptions configure a batch of experiment cells.
type SweepOptions struct {
	// Parallel bounds concurrent cells; <= 0 uses SetParallel's value
	// (default GOMAXPROCS).
	Parallel int
	// Seeds is the replicate count for SweepSeeds; <= 0 means 1.
	// Replicate 0 always uses the cell's own seed, so paper numbers are
	// the first replicate of any multi-seed study.
	Seeds int
	// NoMemo bypasses the process-wide cell cache, forcing fresh runs
	// (used by determinism tests).
	NoMemo bool
	// Cache, if set, is the persistent cross-run result store: cells
	// that miss the in-process memo consult it before simulating and
	// persist their canonical metric row after. Cache-served results
	// carry no execution trace (nil Spans/Cluster) — see
	// internal/resultcache and the note in cache.go.
	Cache *resultcache.Store
	// Progress, if set, is called per completed cell in completion order.
	Progress func(sweep.Update[RunConfig, *RunResult])
	// OnCell, if set, streams SweepSeeds aggregations while the sweep
	// runs: it is called once per cell whose replicates all finished,
	// in cell (input) order, so aggregated exports can stream rows with
	// byte-identical output at any parallelism. Calls are serialized.
	OnCell func(cell int, rep Replicated)
	// Ctx, if set, cancels the sweep: no new cell starts once it is
	// done, in-flight cells finish and report to Progress, and Sweep
	// returns Ctx.Err(). Nil means never canceled.
	Ctx context.Context
}

func (o SweepOptions) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return defaultParallel()
}

// engine builds the shared sweep engine for these options: the cell
// runner (wrapped with the persistent store when one is configured),
// the canonical memo key, and the worker pool every cell and replicate
// unit is scheduled onto.
func (o SweepOptions) engine() *sweep.Engine[RunConfig, *RunResult] {
	run := runCell
	if o.Cache != nil {
		run = cachedRun(o.Cache, runCell)
	}
	eng := &sweep.Engine[RunConfig, *RunResult]{
		Run:      run,
		Key:      CellKey,
		Parallel: o.parallel(),
		Progress: o.Progress,
	}
	if !o.NoMemo {
		eng.Memo = cellMemo
	}
	return eng
}

func (o SweepOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// CellKey canonically names a configuration for memoization: each
// scenario option group renders its own normalized key segment (see
// scenario.Key), so an explicit c1.xlarge or seed 0x5EED hits the same
// cache entry as the zero value, and fields wms ignores — MaxRetries
// and FailureSeed at FailureRate 0, OutageDuration and OutageSeed at
// OutageRate 0 — are normalized away. Configurations carrying a custom
// Workflow are not memoizable (the DAG isn't part of the key) and
// return "".
func CellKey(cfg RunConfig) string {
	if cfg.Workflow != nil || cfg.transient {
		return ""
	}
	spec := cfg.Spec()
	return scenario.Key(&spec)
}

// CellSeed derives the RNG seed for one replicate of a cell. Replicate 0
// is the cell's own seed (the paper's fixed default when unset), so
// single-seed results are the first replicate of any multi-seed study;
// higher replicates hash the configuration so each cell's seed sequence
// depends only on its config, never on scheduling or position in the
// batch. The hash (scenario.PairKey) deliberately excludes the
// failure-injection, outage and checkpoint fields: replicate r of a
// failure or outage cell shares its jitter seeds with replicate r of
// the failure-free baseline, so overhead comparisons are paired rather
// than confounded by provisioning spread.
func CellSeed(cfg RunConfig, replicate int) uint64 {
	spec := cfg.Spec()
	return scenario.ReplicateSeed(&spec, replicate)
}

// paperWorkflow returns the shared paper-scale DAG for an application
// with its default runtime-jitter seed.
func paperWorkflow(app string) (*workflow.Workflow, error) {
	return paperWorkflowSeeded(app, 0)
}

// paperWorkflowSeeded caches one DAG per (application, jitter seed).
func paperWorkflowSeeded(app string, seed uint64) (*workflow.Workflow, error) {
	key := fmt.Sprintf("%s|%d", app, seed)
	w, err, _ := paperApps.Do(key, func() (*workflow.Workflow, error) {
		return apps.PaperScaleSeeded(app, seed)
	})
	return w, err
}

// runCell executes one cell, substituting the shared paper-scale
// workflow when none is given (Run would otherwise rebuild the DAG per
// cell).
func runCell(cfg RunConfig) (*RunResult, error) {
	if cfg.Workflow == nil && cfg.App != "" && !cfg.transient {
		// Transient replicates skip the DAG cache too: their per-seed
		// workflow is used once, so Run builds (and drops) it instead.
		w, err := paperWorkflowSeeded(cfg.App, cfg.AppSeed)
		if err != nil {
			return nil, err
		}
		cfg.Workflow = w
	}
	r, err := Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %s with %d workers: %w", cfg.App, cfg.Storage, cfg.Workers, err)
	}
	return r, nil
}

// Sweep runs a batch of cells concurrently and returns results in input
// order, bit-for-bit identical at any parallelism. Cells already in the
// process-wide cache are not re-run; every returned result is a private
// copy, safe for the caller to mutate. With opt.Ctx set, cancellation
// stops the sweep promptly: completed cells still reach opt.Progress,
// and Sweep returns the context's error.
func Sweep(cfgs []RunConfig, opt SweepOptions) ([]*RunResult, error) {
	results, err := opt.engine().MapCtx(opt.ctx(), cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]*RunResult, len(results))
	for i, r := range results {
		c := *r // shallow copy: Cluster/Spans/Workflow are shared read-only
		out[i] = &c
	}
	return out, nil
}

// RunCached is the single-cell form of Sweep: like Run, but hitting (and
// filling) the process-wide cell cache.
func RunCached(cfg RunConfig) (*RunResult, error) {
	rs, err := Sweep([]RunConfig{cfg}, SweepOptions{Parallel: 1})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// Replicated aggregates one cell's multi-seed replicates: mean, sample
// stddev and range for the headline metrics, plus the individual runs.
type Replicated struct {
	Config      RunConfig
	Runs        []*RunResult
	Makespan    sweep.Summary
	CostHour    sweep.Summary
	CostSecond  sweep.Summary
	Utilization sweep.Summary
	// Failures and Retries aggregate the injected-failure counters; all
	// zeros when the cell runs with FailureRate 0.
	Failures sweep.Summary
	Retries  sweep.Summary
	// OutageKills, LostWork and CheckpointBytes aggregate the
	// outage/checkpoint counters; all zeros at OutageRate 0 and
	// CheckpointInterval 0.
	OutageKills     sweep.Summary
	LostWork        sweep.Summary
	CheckpointBytes sweep.Summary
}

// ReplicateConfig derives the configuration for one replicate of a
// cell: replicate 0 is the cell itself (the paper's numbers lead every
// replication study), higher replicates reseed every active seed field
// from one derived value (scenario.Reseed) — provisioning and
// task-runtime jitter always vary together, and the failure and outage
// streams replicate with their own salts when their rates are non-zero.
func ReplicateConfig(cfg RunConfig, rep int) RunConfig {
	if rep == 0 {
		return cfg
	}
	spec := cfg.Spec()
	scenario.Reseed(&spec, CellSeed(cfg, rep))
	c := SpecConfig(spec)
	c.Workflow = cfg.Workflow
	if cfg.Workflow != nil {
		// A custom DAG carries its own jitter; AppSeed only
		// replicates for the generated paper apps.
		c.AppSeed = cfg.AppSeed
	}
	c.transient = true
	return c
}

// aggregate reduces one cell's replicate runs — always in seed-index
// order, never completion order — to its Replicated summary.
func aggregate(cfg RunConfig, runs []*RunResult) Replicated {
	metric := func(f func(*RunResult) float64) sweep.Summary {
		xs := make([]float64, len(runs))
		for j, r := range runs {
			xs[j] = f(r)
		}
		return sweep.Summarize(xs)
	}
	return Replicated{
		Config:          cfg,
		Runs:            runs,
		Makespan:        metric(func(r *RunResult) float64 { return r.Makespan }),
		CostHour:        metric(func(r *RunResult) float64 { return r.CostHour.Total() }),
		CostSecond:      metric(func(r *RunResult) float64 { return r.CostSecond.Total() }),
		Utilization:     metric(func(r *RunResult) float64 { return r.Utilization }),
		Failures:        metric(func(r *RunResult) float64 { return float64(r.Failures) }),
		Retries:         metric(func(r *RunResult) float64 { return float64(r.Retries) }),
		OutageKills:     metric(func(r *RunResult) float64 { return float64(r.OutageKills) }),
		LostWork:        metric(func(r *RunResult) float64 { return r.LostWorkSeconds }),
		CheckpointBytes: metric(func(r *RunResult) float64 { return r.CheckpointBytes }),
	}
}

// SweepSeeds runs every cell opt.Seeds times with deterministic
// per-cell seed derivation (see CellSeed) and aggregates per cell
// through the two-level scheduler: each cell fans its replicates onto
// the shared worker pool as independent work items, so a single cell
// with -seeds 32 saturates the pool exactly like 32 cells would, and
// each cell's reduction accumulates in seed-index order regardless of
// which replicate finished first. With opt.OnCell set, aggregations
// stream in cell order while later cells are still running.
func SweepSeeds(cfgs []RunConfig, opt SweepOptions) ([]Replicated, error) {
	seeds := opt.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	out := make([]Replicated, len(cfgs))
	reduce := func(cell int, runs []*RunResult) {
		// Private copies, like Sweep's: callers may mutate results.
		copies := make([]*RunResult, len(runs))
		for j, r := range runs {
			c := *r // shallow copy: Cluster/Spans/Workflow are shared read-only
			copies[j] = &c
		}
		out[cell] = aggregate(cfgs[cell], copies)
		if opt.OnCell != nil {
			opt.OnCell(cell, out[cell])
		}
	}
	if _, err := opt.engine().MapReplicates(opt.ctx(), cfgs, seeds, ReplicateConfig, reduce); err != nil {
		return nil, err
	}
	return out, nil
}

// ResultJSON is the streaming-export row for one cell, shared by the
// wfbench -json dump and wfsim -json output.
type ResultJSON struct {
	App          string  `json:"app"`
	Storage      string  `json:"storage"`
	Workers      int     `json:"workers"`
	Seed         uint64  `json:"seed"`
	MakespanS    float64 `json:"makespan_s"`
	ProvisionS   float64 `json:"provision_s"`
	CostPerHour  float64 `json:"cost_per_hour"`
	CostPerSec   float64 `json:"cost_per_second"`
	Utilization  float64 `json:"utilization"`
	FailureRate  float64 `json:"failure_rate,omitempty"`
	Failures     int64   `json:"failures,omitempty"`
	Retries      int64   `json:"retries,omitempty"`
	OutageRate   float64 `json:"outage_rate,omitempty"`
	Outages      int64   `json:"outages,omitempty"`
	OutageKills  int64   `json:"outage_kills,omitempty"`
	CheckpointS  float64 `json:"checkpoint_interval_s,omitempty"`
	Checkpoints  int64   `json:"checkpoints,omitempty"`
	CheckpointB  float64 `json:"checkpoint_bytes,omitempty"`
	LostWorkS    float64 `json:"lost_work_s,omitempty"`
	NetworkBytes float64 `json:"network_bytes"`
	Gets         int64   `json:"s3_gets"`
	Puts         int64   `json:"s3_puts"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
}

// JSONRow flattens a result for machine-readable export.
func (r *RunResult) JSONRow() ResultJSON {
	seed := r.Config.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	return ResultJSON{
		App:          r.Config.App,
		Storage:      r.Config.Storage,
		Workers:      r.Config.Workers,
		Seed:         seed,
		MakespanS:    r.Makespan,
		ProvisionS:   r.ProvisionTime,
		CostPerHour:  r.CostHour.Total(),
		CostPerSec:   r.CostSecond.Total(),
		Utilization:  r.Utilization,
		FailureRate:  r.Config.FailureRate,
		Failures:     r.Failures,
		Retries:      r.Retries,
		OutageRate:   r.Config.OutageRate,
		Outages:      r.Outages,
		OutageKills:  r.OutageKills,
		CheckpointS:  r.Config.CheckpointInterval,
		Checkpoints:  r.Checkpoints,
		CheckpointB:  r.CheckpointBytes,
		LostWorkS:    r.LostWorkSeconds,
		NetworkBytes: r.Stats.NetworkBytes,
		Gets:         r.Stats.Gets,
		Puts:         r.Stats.Puts,
		CacheHits:    r.Stats.CacheHits,
		CacheMisses:  r.Stats.CacheMisses,
	}
}

// ReplicatedJSON is the aggregated export row for one multi-seed cell.
type ReplicatedJSON struct {
	App         string        `json:"app"`
	Storage     string        `json:"storage"`
	Workers     int           `json:"workers"`
	Seeds       int           `json:"seeds"`
	FailureRate float64       `json:"failure_rate,omitempty"`
	Makespan    sweep.Summary `json:"makespan_s"`
	CostPerHour sweep.Summary `json:"cost_per_hour"`
	CostPerSec  sweep.Summary `json:"cost_per_second"`
	Utilization sweep.Summary `json:"utilization"`
	Failures    sweep.Summary `json:"failures"`
	Retries     sweep.Summary `json:"retries"`
	OutageRate  float64       `json:"outage_rate,omitempty"`
	CheckpointS float64       `json:"checkpoint_interval_s,omitempty"`
	OutageKills sweep.Summary `json:"outage_kills"`
	LostWork    sweep.Summary `json:"lost_work_s"`
	CkptBytes   sweep.Summary `json:"checkpoint_bytes"`
}

// JSONRow flattens an aggregated cell for export.
func (r Replicated) JSONRow() ReplicatedJSON {
	return ReplicatedJSON{
		App:         r.Config.App,
		Storage:     r.Config.Storage,
		Workers:     r.Config.Workers,
		Seeds:       len(r.Runs),
		FailureRate: r.Config.FailureRate,
		Makespan:    r.Makespan,
		CostPerHour: r.CostHour,
		CostPerSec:  r.CostSecond,
		Utilization: r.Utilization,
		Failures:    r.Failures,
		Retries:     r.Retries,
		OutageRate:  r.Config.OutageRate,
		CheckpointS: r.Config.CheckpointInterval,
		OutageKills: r.OutageKills,
		LostWork:    r.LostWork,
		CkptBytes:   r.CheckpointBytes,
	}
}
