package harness

import (
	"testing"

	"ec2wfsim/internal/units"
)

// TestCalibrationGrid prints the full paper-scale grid (makespans and
// costs) so calibration drift is visible in -v output. It is the slowest
// test in the repository; skip it in -short runs.
func TestCalibrationGrid(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale grid is slow; run without -short")
	}
	for _, app := range []string{"montage", "epigenome", "broadband"} {
		cells, err := Grid(app, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("== %s ==", app)
		for _, c := range cells {
			r := c.Result
			t.Logf("%-14s n=%d  makespan=%9.0fs (%s)  $/hr=%.2f $/sec=%.3f  util=%.2f gets=%d puts=%d net=%s",
				c.System, c.Workers, r.Makespan, units.Duration(r.Makespan),
				r.CostHour.Total(), r.CostSecond.Total(), r.Utilization,
				r.Stats.Gets, r.Stats.Puts, units.Bytes(r.Stats.NetworkBytes))
		}
	}
}
