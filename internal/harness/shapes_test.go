package harness

import (
	"math"
	"sync"
	"testing"
)

// Paper-scale grids are a few seconds each; build each application's grid
// once and share it across the shape tests.
var (
	gridOnce sync.Once
	grids    map[string][]Cell
	gridErr  error
)

func paperGrid(t *testing.T, app string) []Cell {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-scale grids are slow; run without -short")
	}
	gridOnce.Do(func() {
		grids = make(map[string][]Cell)
		for _, a := range []string{"montage", "epigenome", "broadband"} {
			cells, err := Grid(a, nil)
			if err != nil {
				gridErr = err
				return
			}
			grids[a] = cells
		}
	})
	if gridErr != nil {
		t.Fatal(gridErr)
	}
	return grids[app]
}

func mkspan(t *testing.T, cells []Cell, system string, workers int) float64 {
	t.Helper()
	c := Find(cells, system, workers)
	if c == nil {
		t.Fatalf("no cell for %s at %d workers", system, workers)
	}
	return c.Result.Makespan
}

// --- Figure 2: Montage ---

// "GlusterFS seems to handle this workload well, with both the NUFA and
// distribute modes producing significantly better performance than the
// other storage systems."
func TestFig2GlusterBestForMontage(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "montage")
	for _, n := range []int{2, 4, 8} {
		for _, mode := range []string{"gluster-nufa", "gluster-dist"} {
			g := mkspan(t, cells, mode, n)
			for _, other := range []string{"s3", "nfs", "pvfs"} {
				o := mkspan(t, cells, other, n)
				if g >= o {
					t.Errorf("n=%d: %s (%.0f s) not faster than %s (%.0f s)", n, mode, g, other, o)
				}
			}
		}
	}
	// "significantly": at 4+ nodes GlusterFS leads the best non-Gluster
	// system by >15%.
	for _, n := range []int{4, 8} {
		g := mkspan(t, cells, "gluster-nufa", n)
		best := math.Inf(1)
		for _, other := range []string{"s3", "nfs", "pvfs"} {
			if o := mkspan(t, cells, other, n); o < best {
				best = o
			}
		}
		if g > best*0.85 {
			t.Errorf("n=%d: GlusterFS lead not significant (%.0f s vs best other %.0f s)", n, g, best)
		}
	}
}

// "NFS does relatively well for Montage, beating even the local disk in
// the single node case." Our calibration renders the 1-node comparison as
// a near-tie (within 5%) — see EXPERIMENTS.md for the discussion — and
// NFS clearly ahead of S3 and PVFS at small scales.
func TestFig2NFSRelativelyGoodForMontage(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "montage")
	nfs1 := mkspan(t, cells, "nfs", 1)
	local := mkspan(t, cells, "local", 1)
	if nfs1 > local*1.05 {
		t.Errorf("NFS at 1 node (%.0f s) more than 5%% behind local (%.0f s)", nfs1, local)
	}
	for _, n := range []int{1, 2, 4} {
		nfs := mkspan(t, cells, "nfs", n)
		if s3 := mkspan(t, cells, "s3", n); nfs >= s3 {
			t.Errorf("n=%d: NFS (%.0f s) not faster than S3 (%.0f s)", n, nfs, s3)
		}
		if n >= 2 {
			if pvfs := mkspan(t, cells, "pvfs", n); nfs >= pvfs {
				t.Errorf("n=%d: NFS (%.0f s) not faster than PVFS (%.0f s)", n, nfs, pvfs)
			}
		}
	}
}

// "The relatively poor performance of S3 and PVFS may be a result of
// Montage accessing a large number of small files."
func TestFig2S3AndPVFSWorstForMontage(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "montage")
	for _, n := range []int{2, 4} {
		worstOfPair := math.Max(mkspan(t, cells, "s3", n), mkspan(t, cells, "pvfs", n))
		for _, good := range []string{"gluster-nufa", "gluster-dist", "nfs"} {
			if g := mkspan(t, cells, good, n); g >= worstOfPair {
				t.Errorf("n=%d: %s (%.0f s) not faster than the S3/PVFS tier (%.0f s)", n, good, g, worstOfPair)
			}
		}
	}
	// S3 at one node notably worse than local.
	if s3, local := mkspan(t, cells, "s3", 1), mkspan(t, cells, "local", 1); s3 < local*1.05 {
		t.Errorf("S3 at 1 node (%.0f s) should clearly trail local (%.0f s)", s3, local)
	}
}

// Runtime falls as nodes are added (Fig 2's downward trend), except NFS
// whose incast collapse flattens it at 8 nodes.
func TestFig2MontageScalesWithNodes(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "montage")
	for _, sys := range []string{"s3", "gluster-nufa", "gluster-dist", "pvfs"} {
		prev := math.Inf(1)
		for _, n := range []int{2, 4, 8} {
			m := mkspan(t, cells, sys, n)
			if m >= prev {
				t.Errorf("%s: makespan did not fall from %d to %d nodes (%.0f -> %.0f)", sys, n/2, n, prev, m)
			}
			prev = m
		}
	}
}

// --- Figure 3: Epigenome ---

// "the choice of storage system has less of an impact on the performance
// of Epigenome ... the performance was almost the same for all storage
// systems, with S3 and PVFS performing slightly worse."
func TestFig3EpigenomeStorageInsensitive(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "epigenome")
	// At 8 nodes the NFS incast drift widens the band somewhat; the
	// paper's "almost the same" reads on the 1-4 node range of Fig 3.
	for _, tc := range []struct {
		n      int
		spread float64
	}{{2, 0.15}, {4, 0.15}, {8, 0.35}} {
		min, max := math.Inf(1), 0.0
		for _, sys := range []string{"s3", "nfs", "gluster-nufa", "gluster-dist", "pvfs"} {
			m := mkspan(t, cells, sys, tc.n)
			min = math.Min(min, m)
			max = math.Max(max, m)
		}
		if spread := max/min - 1; spread > tc.spread {
			t.Errorf("n=%d: storage spread %.0f%% exceeds %.0f%% for the CPU-bound app",
				tc.n, spread*100, tc.spread*100)
		}
	}
	// S3 and PVFS slightly worse than GlusterFS.
	for _, n := range []int{2, 4} {
		g := mkspan(t, cells, "gluster-nufa", n)
		if s3 := mkspan(t, cells, "s3", n); s3 <= g {
			t.Errorf("n=%d: S3 (%.0f s) should trail GlusterFS (%.0f s) slightly", n, s3, g)
		}
		if pv := mkspan(t, cells, "pvfs", n); pv <= g {
			t.Errorf("n=%d: PVFS (%.0f s) should trail GlusterFS (%.0f s) slightly", n, pv, g)
		}
	}
}

// "Unlike Montage ... for Epigenome the local disk was significantly
// faster" (than the shared systems at one node).
func TestFig3LocalFastestAtOneNode(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "epigenome")
	local := mkspan(t, cells, "local", 1)
	for _, sys := range []string{"s3", "nfs"} {
		if m := mkspan(t, cells, sys, 1); m <= local {
			t.Errorf("%s at 1 node (%.0f s) not slower than local (%.0f s)", sys, m, local)
		}
	}
}

// --- Figure 4: Broadband ---

// "the best overall performance for Broadband was achieved using Amazon
// S3 ... likely due to the fact that Broadband reuses many input files."
func TestFig4S3BestForBroadband(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "broadband")
	for _, n := range []int{4, 8} {
		s3 := mkspan(t, cells, "s3", n)
		for _, other := range []string{"nfs", "gluster-nufa", "gluster-dist", "pvfs"} {
			if o := mkspan(t, cells, other, n); s3 >= o {
				t.Errorf("n=%d: S3 (%.0f s) not faster than %s (%.0f s)", n, s3, other, o)
			}
		}
	}
}

// "GlusterFS (NUFA) results in better performance than GlusterFS
// (distribute)" — pipeline locality.
func TestFig4NUFABeatsDistributeForBroadband(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "broadband")
	// At 8 nodes the remote-read probability is 7/8 under either
	// placement, so NUFA's locality edge washes out; the visible gap is
	// at 2-4 nodes.
	for _, n := range []int{2, 4} {
		nufa := mkspan(t, cells, "gluster-nufa", n)
		dist := mkspan(t, cells, "gluster-dist", n)
		if nufa >= dist {
			t.Errorf("n=%d: NUFA (%.0f s) not faster than distribute (%.0f s)", n, nufa, dist)
		}
	}
}

// "The decrease in performance using NFS between 2 and 4 nodes was
// consistent across repeated experiments", with the 4-node NFS makespan
// around 5363 s.
func TestFig4NFSDegradesFrom2To4Nodes(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "broadband")
	two := mkspan(t, cells, "nfs", 2)
	four := mkspan(t, cells, "nfs", 4)
	if four <= two {
		t.Errorf("NFS makespan improved from 2 (%.0f s) to 4 (%.0f s) nodes; paper observed a decrease", two, four)
	}
	if four < 4500 || four > 6200 {
		t.Errorf("NFS at 4 nodes = %.0f s, want in the neighbourhood of the paper's 5363 s", four)
	}
}

// The m2.4xlarge server "was better than the smaller server for the
// 4-node case (4368 seconds vs. 5363 seconds), but was still
// significantly worse than GlusterFS and S3 (<3000 seconds in all cases)."
func TestFig4BigNFSServerAblation(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	small, err := RunCached(RunConfig{App: "broadband", Storage: "nfs", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunCached(RunConfig{App: "broadband", Storage: "nfs-m2.4xlarge", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if big.Makespan >= small.Makespan {
		t.Errorf("m2.4xlarge server (%.0f s) not faster than m1.xlarge (%.0f s)", big.Makespan, small.Makespan)
	}
	if ratio := small.Makespan / big.Makespan; ratio < 1.08 || ratio > 1.5 {
		t.Errorf("server upgrade speedup = %.2fx, paper ratio is 5363/4368 = 1.23x", ratio)
	}
	cells := paperGrid(t, "broadband")
	for _, sys := range []string{"s3", "gluster-nufa", "gluster-dist"} {
		if m := mkspan(t, cells, sys, 4); m >= 3000 {
			t.Errorf("%s at 4 nodes = %.0f s, want <3000 s per the paper", sys, m)
		}
		if m := mkspan(t, cells, sys, 4); m >= big.Makespan {
			t.Errorf("%s at 4 nodes (%.0f s) not faster than the big NFS server (%.0f s)", sys, m, big.Makespan)
		}
	}
}

// "Similar to Montage, Broadband appears to have relatively poor
// performance on PVFS."
func TestFig4PVFSPoorForBroadband(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "broadband")
	for _, n := range []int{2, 4, 8} {
		pv := mkspan(t, cells, "pvfs", n)
		s3 := mkspan(t, cells, "s3", n)
		if pv <= s3 {
			t.Errorf("n=%d: PVFS (%.0f s) not slower than S3 (%.0f s)", n, pv, s3)
		}
	}
}

// --- Figures 5-7: cost ---

// "For Montage the lowest cost solution was GlusterFS on two nodes."
// (Ties allowed: per-hour billing quantizes to $0.68 steps.)
func TestFig5MontageCheapestIsGlusterAtTwoNodes(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "montage")
	g2 := Find(cells, "gluster-nufa", 2).Result.CostHour.Total()
	for _, c := range cells {
		if cost := c.Result.CostHour.Total(); cost < g2-1e-9 {
			t.Errorf("%s at %d nodes costs %.2f < GlusterFS@2 %.2f", c.System, c.Workers, cost, g2)
		}
	}
}

// "For Epigenome the lowest cost solution was a single node using the
// local disk" — strictly, at $0.68.
func TestFig6EpigenomeCheapestIsLocal(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "epigenome")
	local := Find(cells, "local", 1).Result.CostHour.Total()
	if math.Abs(local-0.68) > 1e-9 {
		t.Errorf("Epigenome local cost = $%.2f, want $0.68 (sub-hour single node)", local)
	}
	for _, c := range cells {
		if c.System == "local" {
			continue
		}
		if cost := c.Result.CostHour.Total(); cost <= local {
			t.Errorf("%s at %d nodes costs $%.2f, not above local's $%.2f", c.System, c.Workers, cost, local)
		}
	}
}

// "For Broadband the local disk, GlusterFS and S3 all tied for the lowest
// cost." ($0.02 tolerance: S3 adds request fees.)
func TestFig7BroadbandCostThreeWayTie(t *testing.T) {
	t.Parallel()
	cells := paperGrid(t, "broadband")
	local := Find(cells, "local", 1).Result.CostHour.Total()
	cheapest := func(sys string) float64 {
		best := math.Inf(1)
		for _, c := range cells {
			if c.System == sys {
				if v := c.Result.CostHour.Total(); v < best {
					best = v
				}
			}
		}
		return best
	}
	g := math.Min(cheapest("gluster-nufa"), cheapest("gluster-dist"))
	s3 := cheapest("s3")
	if math.Abs(local-g) > 0.02 || math.Abs(local-s3) > 0.02 {
		t.Errorf("not a three-way tie: local $%.2f, gluster $%.2f, s3 $%.2f", local, g, s3)
	}
	if nfs := cheapest("nfs"); nfs <= local+0.02 {
		t.Errorf("NFS cheapest $%.2f should exceed the tie at $%.2f (extra server node)", nfs, local)
	}
}

// "For all of the applications the per-second cost was less than the
// per-hour cost."
func TestPerSecondAlwaysBelowPerHour(t *testing.T) {
	t.Parallel()
	for _, app := range []string{"montage", "epigenome", "broadband"} {
		for _, c := range paperGrid(t, app) {
			ph := c.Result.CostHour.Total()
			ps := c.Result.CostSecond.Total()
			if ps > ph+1e-9 {
				t.Errorf("%s/%s n=%d: per-second $%.3f > per-hour $%.3f",
					app, c.System, c.Workers, ps, ph)
			}
		}
	}
}

// "In all other cases the cost of the workflows only increased when
// resources were added" — with per-second billing the effect is strict:
// sub-linear speedup means node-seconds only grow.
func TestAddingNodesNeverCutsPerSecondCost(t *testing.T) {
	t.Parallel()
	for _, app := range []string{"montage", "epigenome", "broadband"} {
		cells := paperGrid(t, app)
		for _, sys := range []string{"s3", "gluster-nufa", "gluster-dist", "pvfs", "nfs"} {
			prev := -1.0
			for _, n := range NodeCounts() {
				c := Find(cells, sys, n)
				if c == nil {
					continue
				}
				cur := c.Result.CostSecond.Total()
				// The NFS service node makes cost non-uniform: the paper
				// carves out exactly this exception, so skip NFS's 1->2
				// step.
				if prev >= 0 && cur < prev-1e-9 && !(sys == "nfs" && n == 2) {
					t.Errorf("%s/%s: per-second cost fell when adding nodes (%.3f -> %.3f at n=%d)",
						app, sys, prev, cur, n)
				}
				prev = cur
			}
		}
	}
}

// XtreemFS "taking more than twice as long as they did on the storage
// systems reported here" (Section IV).
func TestXtreemFSMoreThanTwiceGluster(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	x, err := Run(RunConfig{App: "montage", Storage: "xtreemfs", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cells := paperGrid(t, "montage")
	g := mkspan(t, cells, "gluster-nufa", 2)
	if x.Makespan < 2*g {
		t.Errorf("XtreemFS Montage (%.0f s) not >2x GlusterFS (%.0f s)", x.Makespan, g)
	}
}

// The S3 client cache must be what makes S3 competitive for Broadband.
func TestS3CacheAblationMatters(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	with, err := Run(RunConfig{App: "broadband", Storage: "s3", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(RunConfig{App: "broadband", Storage: "s3-nocache", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if without.Makespan < with.Makespan*1.3 {
		t.Errorf("disabling the S3 cache only changed makespan %.0f -> %.0f s; cache should be decisive",
			with.Makespan, without.Makespan)
	}
	if without.Stats.Gets <= with.Stats.Gets {
		t.Error("cache-less S3 should issue more GETs")
	}
}
