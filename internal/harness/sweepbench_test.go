package harness

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"ec2wfsim/internal/resultcache"
)

var sweepBenchOut = flag.String("sweepbench-out", "",
	"write replicate-scheduling and result-cache timings to this JSON file")

// sweepScalingRow is one (seeds, parallel) wall-clock measurement in
// BENCH_sweep.json.
type sweepScalingRow struct {
	Seeds    int     `json:"seeds"`
	Parallel int     `json:"parallel"`
	WallMs   float64 `json:"wall_ms"`
	// SpeedupVsP1 is the parallel=1 wall-clock for the same seed count
	// divided by this row's; on a single-core host it hovers near 1.
	SpeedupVsP1 float64 `json:"speedup_vs_parallel1,omitempty"`
}

// sweepCacheStats is the cold-vs-warm comparison: the same multi-cell
// replicated sweep against an empty and then a populated store.
type sweepCacheStats struct {
	Cells      int     `json:"cells"`
	Seeds      int     `json:"seeds"`
	Entries    int     `json:"entries"`
	ColdMs     float64 `json:"cold_ms"`
	WarmMs     float64 `json:"warm_ms"`
	Speedup    float64 `json:"speedup"`
	ColdHits   int64   `json:"cold_hits"`
	ColdMisses int64   `json:"cold_misses"`
	WarmHits   int64   `json:"warm_hits"`
	WarmMisses int64   `json:"warm_misses"`
}

// medianWallMs times f three times and returns the median, in
// milliseconds. A sandwich of three absorbs a one-off scheduling stall
// without the cost of a full benchmark loop (each f here is a whole
// replicated sweep, not a microbenchmark).
func medianWallMs(f func()) float64 {
	const rounds = 3
	times := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		runtime.GC()
		start := time.Now()
		f()
		times = append(times, float64(time.Since(start).Microseconds())/1000)
	}
	sort.Float64s(times)
	return times[rounds/2]
}

// TestEmitSweepBench measures the replicate-level scheduler and the
// persistent result cache and records both. It only runs when
// -sweepbench-out is set:
//
//	go test ./internal/harness -run TestEmitSweepBench -sweepbench-out ../../BENCH_sweep.json
func TestEmitSweepBench(t *testing.T) {
	if *sweepBenchOut == "" {
		t.Skip("-sweepbench-out not set")
	}
	out := struct {
		Benchmark string            `json:"benchmark"`
		HostCPUs  int               `json:"host_cpus"`
		Note      string            `json:"note"`
		Scaling   []sweepScalingRow `json:"replicate_scaling"`
		Cache     sweepCacheStats   `json:"cache"`
	}{
		Benchmark: "SweepSeeds",
		HostCPUs:  runtime.NumCPU(),
		Note: "replicate-level scheduling: one cell's seeds fan out as independent " +
			"work items, so -parallel bounds (cells x seeds), not cells; wall-clock is " +
			"the median of 3 full sweeps. host_cpus bounds the attainable speedup - on " +
			"a single-core host the parallel ladder measures scheduler overhead, not " +
			"speedup; output bytes are identical at every point. cache: the same " +
			"replicated sweep cold (empty store) then warm (every replicate served " +
			"from disk, zero recomputes); see internal/harness/sweepbench_test.go.",
	}

	// One cell, many seeds: before the replicate-level scheduler this
	// shape serialised entirely regardless of -parallel.
	cell := []RunConfig{{App: "montage", Storage: "gluster-nufa", Workers: 8}}
	const seeds = 8
	var p1 float64
	for _, par := range []int{1, 2, 4, 8} {
		wall := medianWallMs(func() {
			if _, err := SweepSeeds(cell, SweepOptions{Seeds: seeds, Parallel: par, NoMemo: true}); err != nil {
				t.Fatal(err)
			}
		})
		row := sweepScalingRow{Seeds: seeds, Parallel: par, WallMs: wall}
		if par == 1 {
			p1 = wall
		} else {
			row.SpeedupVsP1 = p1 / wall
		}
		out.Scaling = append(out.Scaling, row)
		t.Logf("seeds=%d parallel=%d: %.1f ms", seeds, par, wall)
	}

	// Cold vs warm: a fresh store, then the identical sweep again. Every
	// replicate of every cell must come back a hit on the warm pass.
	cacheCells := []RunConfig{
		{App: "montage", Storage: "gluster-nufa", Workers: 8},
		{App: "epigenome", Storage: "pvfs", Workers: 8},
		{App: "broadband", Storage: "s3", Workers: 8},
	}
	dir := filepath.Join(t.TempDir(), "cache")
	timeWith := func() (float64, int64, int64) {
		store, err := resultcache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := SweepSeeds(cacheCells, SweepOptions{Seeds: seeds, NoMemo: true, Cache: store}); err != nil {
			t.Fatal(err)
		}
		wall := float64(time.Since(start).Microseconds()) / 1000
		hits, misses := store.Stats()
		return wall, hits, misses
	}
	coldMs, coldHits, coldMisses := timeWith()
	warmMs, warmHits, warmMisses := timeWith()
	if warmMisses != 0 || warmHits != int64(len(cacheCells)*seeds) {
		t.Fatalf("warm pass not fully cached: %d hit(s), %d miss(es)", warmHits, warmMisses)
	}
	store, err := resultcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := store.Len()
	if err != nil {
		t.Fatal(err)
	}
	out.Cache = sweepCacheStats{
		Cells:      len(cacheCells),
		Seeds:      seeds,
		Entries:    entries,
		ColdMs:     coldMs,
		WarmMs:     warmMs,
		Speedup:    coldMs / warmMs,
		ColdHits:   coldHits,
		ColdMisses: coldMisses,
		WarmHits:   warmHits,
		WarmMisses: warmMisses,
	}
	t.Logf("cache: cold %.1f ms, warm %.1f ms (%.0fx), %d entries",
		coldMs, warmMs, coldMs/warmMs, entries)

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*sweepBenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *sweepBenchOut)
}
