package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterministicStream(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

// The splitmix64 stream must be stable forever: the calibrated experiment
// results depend on it. Pin the first values for seed 1.
func TestGoldenValues(t *testing.T) {
	r := New(1)
	want := []uint64{
		0x910a2dec89025cc1,
		0xbeeb8da1658eec67,
		0xf893a2eefb32555e,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("value %d = %#x, want %#x (stream changed: recalibrate!)", i, got, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
	}
}

func TestFloat64RoughUniformity(t *testing.T) {
	r := New(9)
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("bucket %d holds %.3f of samples, want ~0.10", i, frac)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestJitterRange(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		j := r.Jitter(0.2)
		if j < 0.8 || j > 1.2 {
			t.Fatalf("Jitter(0.2) = %g outside [0.8, 1.2]", j)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Fork()
	// Child consuming values must not change what the parent produces
	// relative to a twin that forked but ignored the child.
	twin := New(5)
	twinChild := twin.Fork()
	_ = twinChild
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != twin.Uint64() {
			t.Fatal("child consumption perturbed the parent stream")
		}
	}
}

func TestHashStringStableAndSpread(t *testing.T) {
	if HashString("p-0001.fits") != HashString("p-0001.fits") {
		t.Error("hash not stable")
	}
	if HashString("a") == HashString("b") {
		t.Error("trivially colliding hash")
	}
	// Placement spread: hashing many names mod 4 should hit all buckets.
	counts := make(map[uint64]int)
	for i := 0; i < 256; i++ {
		counts[HashString(string(rune('a'+i%26))+string(rune('0'+i/26)))%4]++
	}
	for b, c := range counts {
		if c < 32 {
			t.Errorf("bucket %d got %d of 256 names; placement too skewed", b, c)
		}
	}
}

// Property: Jitter is symmetric in expectation (mean ~1.0).
func TestPropertyJitterCentered(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		sum := 0.0
		const n = 2000
		for i := 0; i < n; i++ {
			sum += r.Jitter(0.2)
		}
		mean := sum / n
		return mean > 0.98 && mean < 1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
