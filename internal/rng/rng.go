// Package rng provides a small, deterministic pseudo-random number
// generator used to derive per-task runtime jitter and hash placements.
//
// The simulator must be bit-for-bit reproducible across runs and Go
// versions, so it does not use math/rand (whose stream is not guaranteed
// stable across releases). splitmix64 is tiny, fast, well distributed and
// trivially stable.
package rng

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Jitter returns a multiplicative factor in [1-frac, 1+frac], used to
// spread task runtimes around their mean without changing totals much.
func (r *RNG) Jitter(frac float64) float64 {
	return 1 + frac*(2*r.Float64()-1)
}

// Fork derives an independent generator from the current one, so that
// subsystems can consume randomness without perturbing each other's
// streams.
func (r *RNG) Fork() *RNG { return New(r.Uint64()) }

// HashString returns a stable 64-bit FNV-1a hash of s. It is used for
// placement decisions (e.g. GlusterFS distribute) that must not depend on
// map iteration order or generator state.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
