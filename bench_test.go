// Benchmarks regenerating every table and figure in the paper's
// evaluation, one benchmark per artifact (run `go test -bench=. -benchmem`):
//
//	BenchmarkTableIProfiler        Table I   application resource usage
//	BenchmarkFig2MontageGrid       Fig. 2    Montage runtime grid
//	BenchmarkFig3EpigenomeGrid     Fig. 3    Epigenome runtime grid
//	BenchmarkFig4BroadbandGrid     Fig. 4    Broadband runtime grid
//	BenchmarkFig5MontageCost       Fig. 5    Montage cost (per-hour + per-second)
//	BenchmarkFig6EpigenomeCost     Fig. 6    Epigenome cost
//	BenchmarkFig7BroadbandCost     Fig. 7    Broadband cost
//	BenchmarkDiskFirstWrite        §III.C    ephemeral first-write penalty
//	BenchmarkDiskZeroInit          §III.C    50 GB zero-initialization
//	BenchmarkXtreemFSAblation      §IV       the abandoned XtreemFS runs
//	BenchmarkS3CacheAblation       §IV.A     S3 client-cache ablation
//	BenchmarkNFSServerAblation     §V.C      m1.xlarge vs m2.4xlarge NFS server
//
// Each iteration executes the full paper-scale experiment; custom metrics
// (reported via b.ReportMetric) carry the headline values so `go test
// -bench` output doubles as a results table.
package ec2wfsim

import (
	"testing"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/disk"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/harness"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/wfprof"
)

// benchGrid runs one application's full figure grid per iteration and
// reports the headline series values as custom metrics.
func benchGrid(b *testing.B, app string, metricCells map[string][2]interface{}) {
	b.Helper()
	var cells []harness.Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = harness.Grid(app, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for name, key := range metricCells {
		sys := key[0].(string)
		n := key[1].(int)
		if c := harness.Find(cells, sys, n); c != nil {
			b.ReportMetric(c.Result.Makespan, name)
		}
	}
}

func BenchmarkTableIProfiler(b *testing.B) {
	var p wfprof.Profile
	for i := 0; i < b.N; i++ {
		for _, name := range apps.Names() {
			w, err := apps.PaperScale(name)
			if err != nil {
				b.Fatal(err)
			}
			p = wfprof.Analyze(w)
		}
	}
	b.ReportMetric(p.IOIntensity/units.MB, "io-MB/cpu-s")
}

func BenchmarkFig2MontageGrid(b *testing.B) {
	benchGrid(b, "montage", map[string][2]interface{}{
		"gluster@8-s": {"gluster-nufa", 8},
		"nfs@8-s":     {"nfs", 8},
		"s3@8-s":      {"s3", 8},
		"pvfs@8-s":    {"pvfs", 8},
	})
}

func BenchmarkFig3EpigenomeGrid(b *testing.B) {
	benchGrid(b, "epigenome", map[string][2]interface{}{
		"local@1-s":   {"local", 1},
		"gluster@8-s": {"gluster-nufa", 8},
		"s3@8-s":      {"s3", 8},
	})
}

func BenchmarkFig4BroadbandGrid(b *testing.B) {
	benchGrid(b, "broadband", map[string][2]interface{}{
		"s3@4-s":   {"s3", 4},
		"nfs@2-s":  {"nfs", 2},
		"nfs@4-s":  {"nfs", 4}, // the paper's 5363 s cell
		"nufa@4-s": {"gluster-nufa", 4},
	})
}

// benchCost reruns an application grid and reports the cheapest per-hour
// deployment, regenerating the corresponding cost figure.
func benchCost(b *testing.B, app string) {
	b.Helper()
	var cells []harness.Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = harness.Grid(app, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	bestHour, bestSec := 1e18, 1e18
	for _, c := range cells {
		if v := c.Result.CostHour.Total(); v < bestHour {
			bestHour = v
		}
		if v := c.Result.CostSecond.Total(); v < bestSec {
			bestSec = v
		}
	}
	b.ReportMetric(bestHour, "cheapest-$/hr")
	b.ReportMetric(bestSec, "cheapest-$/sec")
}

func BenchmarkFig5MontageCost(b *testing.B)   { benchCost(b, "montage") }
func BenchmarkFig6EpigenomeCost(b *testing.B) { benchCost(b, "epigenome") }
func BenchmarkFig7BroadbandCost(b *testing.B) { benchCost(b, "broadband") }

func BenchmarkDiskFirstWrite(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		net := flow.NewNet(e)
		d := disk.New(net, "bench", disk.RAID0(disk.EphemeralSingle(), 4))
		e.Go("w", func(p *sim.Proc) {
			d.Write(p, 8*units.GB)
			rate = 8 * units.GB / p.Now()
		})
		e.Run()
	}
	b.ReportMetric(rate/units.MB, "first-write-MB/s")
}

func BenchmarkDiskZeroInit(b *testing.B) {
	var minutes float64
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		net := flow.NewNet(e)
		d := disk.New(net, "bench", disk.EphemeralSingle())
		e.Go("z", func(p *sim.Proc) {
			d.ZeroInitialize(p, 50*units.GB)
			minutes = p.Now() / units.Minute
		})
		e.Run()
	}
	b.ReportMetric(minutes, "zero-50GB-min")
}

func BenchmarkXtreemFSAblation(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		x, err := harness.Run(harness.RunConfig{App: "montage", Storage: "xtreemfs", Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		g, err := harness.Run(harness.RunConfig{App: "montage", Storage: "gluster-nufa", Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		ratio = x.Makespan / g.Makespan
	}
	b.ReportMetric(ratio, "xtreemfs/gluster")
}

func BenchmarkS3CacheAblation(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		with, err := harness.Run(harness.RunConfig{App: "broadband", Storage: "s3", Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		without, err := harness.Run(harness.RunConfig{App: "broadband", Storage: "s3-nocache", Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		ratio = without.Makespan / with.Makespan
	}
	b.ReportMetric(ratio, "nocache/cache")
}

func BenchmarkNFSServerAblation(b *testing.B) {
	var small, big float64
	for i := 0; i < b.N; i++ {
		s, err := harness.Run(harness.RunConfig{App: "broadband", Storage: "nfs", Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		g, err := harness.Run(harness.RunConfig{App: "broadband", Storage: "nfs-m2.4xlarge", Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		small, big = s.Makespan, g.Makespan
	}
	b.ReportMetric(small, "m1.xlarge-s")
	b.ReportMetric(big, "m2.4xlarge-s")
}

// Micro-benchmarks of the simulation substrate itself.

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	b.ResetTimer()
	e.After(1, tick)
	e.Run()
}

func BenchmarkMaxMinFairness64Flows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		net := flow.NewNet(e)
		r := flow.NewResource("link", units.MBps(100))
		for f := 0; f < 64; f++ {
			e.Go("t", func(p *sim.Proc) { net.Transfer(p, 10*units.MB, r) })
		}
		e.Run()
	}
}

// BenchmarkStripedFanOut32 exercises the batched fan-out path the PVFS
// backend uses at the scale study's largest size: every read registers
// 32 shards under a single reallocation.
func BenchmarkStripedFanOut32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		net := flow.NewNet(e)
		disks := make([]*flow.Resource, 32)
		for j := range disks {
			disks[j] = flow.NewResource("disk", units.MBps(110))
		}
		for c := 0; c < 8; c++ {
			e.Go("reader", func(p *sim.Proc) {
				for k := 0; k < 4; k++ {
					win := net.AcquireCap("win", units.MBps(25))
					batch := net.NewBatch()
					for _, d := range disks {
						batch.Add(2*units.MB, win, d)
					}
					batch.Run(p)
					net.ReleaseCap(win)
				}
			})
		}
		e.Run()
	}
}

func BenchmarkMontageGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := apps.Montage(apps.MontageConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
