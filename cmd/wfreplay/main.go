// Command wfreplay works with recorded run artifacts (.wfevt event
// logs): verifying that a log replays byte-identically, summarizing
// one log, and diffing two logs as a paired cross-scenario report.
//
// Usage:
//
//	wfreplay verify run.wfevt            # re-run and byte-compare
//	wfreplay summary run.wfevt           # header, counters, event census
//	wfreplay diff a.wfevt b.wfevt        # paired cross-scenario report
//	wfreplay diff -tol 1e-9 -top 25 a.wfevt b.wfevt
//
// Exit codes: 0 success (verify: byte-identical; diff: no divergent
// transfer), 1 usage or I/O error, 2 semantic failure (verify: the
// replay diverged or the log is corrupt; diff: the runs diverged).
// The distinct corrupt/diverged code lets CI assert both directions:
// a clean log must verify with 0, a bit-flipped one must fail with 2.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ec2wfsim/internal/eventlog"
	"ec2wfsim/internal/harness"
	"ec2wfsim/internal/report/cross"
	"ec2wfsim/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(1)
	}
	switch os.Args[1] {
	case "verify":
		os.Exit(cmdVerify(os.Args[2:]))
	case "summary":
		os.Exit(cmdSummary(os.Args[2:]))
	case "diff":
		os.Exit(cmdDiff(os.Args[2:]))
	case "help", "-h", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "wfreplay: unknown command %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `wfreplay works with recorded run artifacts (.wfevt event logs).

commands:
  verify <log>        re-run the log's scenario and byte-compare the streams
  summary <log>       print the log's header, counters and event census
  diff [flags] <a> <b>  paired cross-scenario report over two logs
      -tol <seconds>  timing tolerance before a transfer counts as divergent (default 0)
      -top <n>        rows per table (default 15, 0 = all)

exit codes: 0 success, 1 usage/I-O error, 2 replay mismatch, corrupt log or diff divergence
`)
}

// fail prints an error and picks the exit code: corrupt logs are
// semantic failures (2), everything else is operational (1).
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "wfreplay:", err)
	var ce *eventlog.CorruptError
	if errors.As(err, &ce) {
		return 2
	}
	return 1
}

func cmdVerify(args []string) int {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print nothing on success")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "wfreplay: verify takes exactly one log file")
		return 1
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	res, v, err := harness.ReplayVerify(data)
	if err != nil {
		return fail(err)
	}
	if !v.Match {
		fmt.Fprintf(os.Stderr, "wfreplay: %s: replay DIVERGED at seq %d: %s\n",
			fs.Arg(0), v.Seq, v.Detail)
		return 2
	}
	if !*quiet {
		fmt.Printf("%s: verified, %d events byte-identical (makespan %s)\n",
			fs.Arg(0), v.Events, units.Duration(res.Makespan))
	}
	return 0
}

func cmdSummary(args []string) int {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "wfreplay: summary takes exactly one log file")
		return 1
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	h, events, tr, err := eventlog.Decode(data)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("%s: %s v%d, %d events", fs.Arg(0), h.Format, h.Version, tr.Events)
	if tr.SimEvents > 0 {
		fmt.Printf(" (%d engine events)", tr.SimEvents)
	}
	fmt.Println()
	if h.CellKey != "" {
		fmt.Printf("  cell key      %s\n", h.CellKey)
	}
	fmt.Printf("  spec          %s\n", string(h.Spec))
	fmt.Printf("  seed          %#x\n", h.Seed)
	fmt.Printf("  flow version  %d\n", h.FlowVersion)
	if len(h.Workflow) > 0 {
		fmt.Printf("  workflow      embedded (%s)\n", units.Bytes(float64(len(h.Workflow))))
	}
	if len(events) > 0 {
		fmt.Printf("  time span     %.3f .. %.3f s\n", events[0].T, events[len(events)-1].T)
	}
	census := make(map[eventlog.Kind]int)
	for _, e := range events {
		census[e.Kind]++
	}
	for _, k := range eventlog.Kinds() {
		if n := census[k]; n > 0 {
			fmt.Printf("  %-14s %d\n", k, n)
		}
	}
	return 0
}

func cmdDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tol", 0, "timing tolerance in seconds before a transfer counts as divergent")
	top := fs.Int("top", 15, "rows per table (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "wfreplay: diff takes exactly two log files")
		return 1
	}
	aData, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	bData, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return fail(err)
	}
	r, err := cross.Compare(aData, bData, cross.Options{
		ALabel: filepath.Base(fs.Arg(0)),
		BLabel: filepath.Base(fs.Arg(1)),
		Tol:    *tol,
	})
	if err != nil {
		return fail(err)
	}
	fmt.Print(r.Summary())
	fmt.Println()
	fmt.Print(r.TaskTable(*top).String())
	fmt.Println()
	fmt.Print(r.TransferTable(*top).String())
	fmt.Println()
	fmt.Print(r.DeltaChart(*top).String())
	if r.FirstDivergent != nil {
		return 2
	}
	return 0
}
