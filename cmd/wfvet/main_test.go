package main

import (
	"os"
	"path/filepath"
	"testing"
)

// These cover the usage-error surface of the standalone mode: every
// path that must exit 1 before any analysis starts. (Exit 0/2 over real
// packages is covered by CI running wfvet against the tree itself.)
func TestRunUsageErrors(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.json")
	unreasoned := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(unreasoned,
		[]byte(`{"entries":[{"rule":"walltime","file":"a.go","message":"m","reason":""}]}`), 0o666); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown rule", []string{"-rules", "wibble"}},
		{"unknown format", []string{"-format", "yaml"}},
		{"unknown flag", []string{"-frobnicate"}},
		{"missing baseline file", []string{"-baseline", missing}},
		{"baseline without reasons", []string{"-baseline", unreasoned}},
	} {
		if code := run(tc.args); code != 1 {
			t.Errorf("%s: run(%v) = %d, want 1", tc.name, tc.args, code)
		}
	}
}

func TestRunCatalog(t *testing.T) {
	if code := run([]string{"-catalog"}); code != 0 {
		t.Errorf("run(-catalog) = %d, want 0", code)
	}
}
