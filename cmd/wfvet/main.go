// Command wfvet is the determinism-lint suite for this repository: a
// multichecker that mechanically enforces the simulator's bit-identical
// contract (no wall clocks or raw math/rand in sim packages, no
// order-sensitive map iteration, no ad-hoc seeds, no host-scheduler
// concurrency in the event loop), including the interprocedural rules
// that follow map order, seeds and wall-clock reads across calls.
//
// Usage:
//
//	wfvet [flags] [packages]            analyze packages (default ./...)
//	wfvet -catalog                      print the rule catalog
//	go vet -vettool=$(which wfvet) ./...
//
// Flags:
//
//	-rules a,b          run only the named rules (default: all nine)
//	-format text|json|sarif
//	                    findings output form (json/sarif go to stdout)
//	-baseline file      accept findings listed in the baseline; only
//	                    new findings (or stale entries) fail the run
//	-write-baseline file
//	                    write the current findings as a baseline and
//	                    exit; reasons must be filled in before the
//	                    file is usable
//
// As a vettool it speaks the go command's unit-checking protocol, and
// publishes per-function determinism summaries through the vetx facts
// channel so the interprocedural rules see across package boundaries.
// The standalone form shells out to `go list`, type-checks the whole
// module and computes the same summaries over the whole-program
// callgraph; both modes agree on findings.
//
// Exit status: 0 clean, 1 usage or operational error, 2 findings (in
// both standalone and vettool modes; `go vet` relays the 2). Suppress
// a finding with `//wfvet:ignore <analyzer> <reason>` on (or directly
// above) the offending line; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/driver"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Vettool protocol first: `go vet` probes with -V=full / -flags
	// and then passes a single vet.cfg path, none of which should hit
	// the flag package's error handling.
	if code, handled := driver.RunVettool(args, analysis.Rules()); handled {
		return code
	}

	fs := flag.NewFlagSet("wfvet", flag.ContinueOnError)
	rulesSpec := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	catalog := fs.Bool("catalog", false, "print the determinism rule catalog and exit")
	format := fs.String("format", "text", "findings output format: text, json or sarif")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings (JSON; every entry needs a reason)")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(),
			"usage: wfvet [flags] [packages]\n       go vet -vettool=$(which wfvet) [packages]\nexit status: 0 clean, 1 usage/operational error, 2 findings\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1 // the flag package already printed the usage error
	}

	rules, err := analysis.SelectRules(*rulesSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *catalog {
		printCatalog(rules)
		return 0
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "wfvet: unknown format %q (valid: text, json, sarif)\n", *format)
		return 1
	}

	// Load the baseline before the (slow) analysis so a malformed file
	// fails fast as the usage error it is.
	var baseline *driver.Baseline
	if *baselinePath != "" {
		baseline, err = driver.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfvet: %v\n", err)
			return 1
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := driver.Analyze(".", patterns, rules)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfvet: %v\n", err)
		return 1
	}

	if *writeBaseline != "" {
		if err := driver.WriteBaseline(*writeBaseline, res.Findings); err != nil {
			fmt.Fprintf(os.Stderr, "wfvet: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wfvet: wrote %d finding(s) to %s; fill in each entry's reason before committing\n",
			len(res.Findings), *writeBaseline)
		return 0
	}

	report := &driver.Report{Findings: res.Findings, Stats: res.Stats}
	var stale []driver.BaselineEntry
	if baseline != nil {
		report.Findings, report.Baselined, stale = baseline.Apply(res.Findings)
	}

	switch *format {
	case "json":
		err = report.WriteJSON(os.Stdout)
	case "sarif":
		err = report.WriteSARIF(os.Stdout, rules)
	default:
		err = report.WriteText(os.Stderr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfvet: %v\n", err)
		return 1
	}

	failed := false
	if n := len(report.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "wfvet: %d finding(s)\n", n)
		failed = true
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "wfvet: stale baseline entry: [%s] %s: %s (prune it so it cannot mask a regression)\n",
			e.Rule, e.File, e.Message)
		failed = true
	}
	if failed {
		return 2
	}
	return 0
}

func printCatalog(rules []*analysis.Analyzer) {
	fmt.Println("wfvet — determinism rules (suppress with //wfvet:ignore <analyzer> <reason>)")
	for _, a := range rules {
		fmt.Printf("\n%s\n    %s\n    why: %s\n", a.Name, a.Doc, a.Why)
	}
}
