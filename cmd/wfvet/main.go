// Command wfvet is the determinism-lint suite for this repository: a
// multichecker that mechanically enforces the simulator's bit-identical
// contract (no wall clocks or raw math/rand in sim packages, no
// order-sensitive map iteration, no ad-hoc seeds, no host-scheduler
// concurrency in the event loop).
//
// Usage:
//
//	wfvet [packages]              analyze packages (default ./...)
//	wfvet -rules                  print the rule catalog
//	go vet -vettool=$(which wfvet) ./...
//
// As a vettool it speaks the go command's unit-checking protocol, so
// `go vet` drives it with precomputed file lists and export data. The
// standalone form shells out to `go list` and needs only the toolchain.
//
// Exit status: 0 clean, 1 operational error, 2 findings. Suppress a
// finding with `//wfvet:ignore <analyzer> <reason>` on (or directly
// above) the offending line; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"ec2wfsim/internal/analysis"
	"ec2wfsim/internal/analysis/driver"
)

func main() {
	rules := analysis.Rules()

	// Vettool protocol first: `go vet` probes with -V=full / -flags
	// and then passes a single vet.cfg path, none of which should hit
	// the flag package's error handling.
	if code, handled := driver.RunVettool(os.Args[1:], rules); handled {
		os.Exit(code)
	}

	printRules := flag.Bool("rules", false, "print the determinism rule catalog and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: wfvet [-rules] [packages]\n       go vet -vettool=$(which wfvet) [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printRules {
		printCatalog(rules)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := driver.Run(os.Stderr, ".", patterns, rules)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfvet: %v\n", err)
		os.Exit(1)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "wfvet: %d finding(s)\n", findings)
		os.Exit(2)
	}
}

func printCatalog(rules []*analysis.Analyzer) {
	fmt.Println("wfvet — determinism rules (suppress with //wfvet:ignore <analyzer> <reason>)")
	for _, a := range rules {
		fmt.Printf("\n%s\n    %s\n    why: %s\n", a.Name, a.Doc, a.Why)
	}
}
