// Command wfprof profiles the paper's workflow applications the way the
// authors' ptrace-based profiler did, reporting per-transformation and
// per-workflow I/O, memory and CPU figures plus the Table I
// classification.
//
// Usage:
//
//	wfprof                 # all three applications (Table I)
//	wfprof -app broadband  # one application, with the per-transformation breakdown
//	wfprof -app montage -json workflow.json   # dump the DAG as JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/report"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/wfprof"
)

func main() {
	app := flag.String("app", "", "profile one application (default: all)")
	jsonPath := flag.String("json", "", "also write the workflow DAG as JSON to this path")
	flag.Parse()

	if err := run(*app, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "wfprof:", err)
		os.Exit(1)
	}
}

func run(app, jsonPath string) error {
	names := apps.Names()
	if app != "" {
		names = []string{app}
	}
	summary := &report.Table{
		Title:  "TABLE I — APPLICATION RESOURCE USAGE COMPARISON",
		Header: []string{"Application", "I/O", "Memory", "CPU", "Tasks", "Input", "Output", "Footprint", "CPU-hours"},
	}
	for _, name := range names {
		w, err := apps.PaperScale(name)
		if err != nil {
			return err
		}
		p := wfprof.Analyze(w)
		summary.AddRow(name,
			p.IOClass.String(), p.MemoryClass.String(), p.CPUClass.String(),
			fmt.Sprintf("%d", p.Stats.TaskCount),
			units.Bytes(p.Stats.InputBytes),
			units.Bytes(p.Stats.OutputBytes),
			units.Bytes(p.UniqueBytes),
			fmt.Sprintf("%.1f", p.CPUSeconds/units.Hour),
		)
		if app != "" {
			detail := &report.Table{
				Title:  "Per-transformation profile: " + name,
				Header: []string{"Transformation", "Count", "CPU total", "Read", "Written", "Peak RSS"},
			}
			for _, ts := range p.Stats.ByTransformation {
				detail.AddRow(ts.Name,
					fmt.Sprintf("%d", ts.Count),
					units.Duration(ts.Runtime),
					units.Bytes(ts.ReadBytes),
					units.Bytes(ts.WriteBytes),
					units.Bytes(ts.PeakMemory),
				)
			}
			fmt.Print(detail.String())
			fmt.Println()
		}
		if jsonPath != "" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			if err := w.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s DAG to %s\n\n", name, jsonPath)
		}
	}
	fmt.Print(summary.String())
	return nil
}
