// Command wfbench regenerates every table and figure from the paper's
// evaluation: Table I, Figures 2-4 (runtime) and 5-7 (cost), the Section
// III.C disk characteristics, and the ablation experiments from DESIGN.md.
// All experiment matrices dispatch through the concurrent sweep engine;
// results are bit-for-bit identical at any parallelism.
//
// The scenario knobs (-failure-rate, -max-retries, -failure-seed,
// -outage-rate, -outage-duration, -outage-seed, -checkpoint-interval,
// -flow-version) are registered from the shared option table
// (internal/scenario), so wfbench and wfsim stay in automatic parity;
// here they parameterize the failure/outage studies and the grid
// exports (-flow-version 2 exports the grid as computed by the
// coalescing flow solver). -spec runs a whole serialized experiment
// (a wfsim -emit-spec file, or a hand-written grid) instead.
//
// Usage:
//
//	wfbench                      # everything
//	wfbench -fig 4               # one figure (2-7)
//	wfbench -fig 4 -seeds 5      # one figure with ±stddev error bars
//	wfbench -table1              # Table I only
//	wfbench -disk                # Section III.C disk table
//	wfbench -ablation s3cache
//	wfbench -ablation failures   # full failure-sensitivity study (rate ladder)
//	wfbench -failure-rate 0.1 -seeds 5  # failure study at one rate, error-barred
//	wfbench -ablation outages    # correlated-outage study (rate ladder x checkpointing)
//	wfbench -outage-rate 1 -seeds 5     # outage study at one rate, error-barred
//	wfbench -outage-rate 1 -checkpoint-interval 60  # custom checkpoint cadence
//	wfbench -ablation scale      # large-matrix study: cluster sizes {8,16,32}
//	wfbench -parallel 8          # bound concurrent cells (default: all cores)
//	wfbench -csv grid.csv        # full experiment grid as CSV
//	wfbench -json grid.jsonl     # full grid as JSON lines ("-" = stdout)
//	wfbench -flow-version 2 -json grid2.jsonl  # grid under the v2 flow solver
//	wfbench -seeds 5 -csv m.csv  # multi-seed replication with mean/stddev
//	wfbench -progress            # per-cell progress on stderr
//	wfbench -spec exp.json       # run a serialized experiment, JSON rows to stdout
//	wfbench -spec exp.json -events-dir logs/  # also record one .wfevt per cell
//	wfbench -cache-dir ~/.wfcache -json grid.jsonl  # persistent cross-run result cache
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ec2wfsim/internal/harness"
	"ec2wfsim/internal/resultcache"
	"ec2wfsim/internal/scenario"
	"ec2wfsim/internal/sweep"
)

func main() {
	// Scenario knob flags come from the shared option table (identity
	// flags like -app/-storage/-nodes stay wfsim-only: wfbench sweeps
	// those axes itself).
	var spec scenario.Spec
	scenario.RegisterFlags(flag.CommandLine, &spec, false)

	fig := flag.Int("fig", 0, "regenerate one figure (2-7); 0 = all")
	table1 := flag.Bool("table1", false, "regenerate Table I only")
	diskTable := flag.Bool("disk", false, "print the Section III.C disk table only")
	ablation := flag.String("ablation", "", "run one ablation: "+strings.Join(harness.AblationNames(), ", "))
	csvPath := flag.String("csv", "", "write the full experiment grid (all apps) as CSV to this path")
	jsonPath := flag.String("json", "", "write the full experiment grid as JSON lines to this path (\"-\" = stdout)")
	parallel := flag.Int("parallel", 0, "max concurrent experiment cells; 0 = all cores")
	seeds := flag.Int("seeds", 1, "replicates per cell (±stddev error bars on figures, mean/stddev in -csv/-json exports)")
	cacheDir := flag.String("cache-dir", "", "persistent result cache directory shared across runs and users")
	progress := flag.Bool("progress", false, "report per-cell completion on stderr")
	specPath := flag.String("spec", "", "run the serialized experiment in this JSON file and print one JSON row per cell")
	eventsDir := flag.String("events-dir", "", "with -spec: record each cell's event log (.wfevt) into this directory")
	flag.Parse()

	harness.SetParallel(*parallel)
	if err := run(&spec, *specPath, *eventsDir, *cacheDir, *fig, *table1, *diskTable, *ablation, *csvPath, *jsonPath, *seeds, *progress); err != nil {
		fmt.Fprintln(os.Stderr, "wfbench:", err)
		os.Exit(1)
	}
}

func run(spec *scenario.Spec, specPath, eventsDir, cacheDir string, fig int, table1, diskTable bool, ablation, csvPath, jsonPath string, seeds int, progress bool) error {
	opt := harness.SweepOptions{Seeds: seeds}
	if progress {
		opt.Progress = printProgress
	}
	if cacheDir != "" {
		store, err := resultcache.Open(cacheDir)
		if err != nil {
			return err
		}
		opt.Cache = store
		defer func() {
			hits, misses := store.Stats()
			fmt.Fprintf(os.Stderr, "wfbench: result cache %s: %d hit(s), %d miss(es)\n", cacheDir, hits, misses)
		}()
	}
	if specPath != "" {
		// The spec file carries the whole experiment; every other mode
		// or knob flag would fight it.
		allowed := map[string]bool{"spec": true, "parallel": true, "progress": true, "events-dir": true, "cache-dir": true}
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return fmt.Errorf("-spec runs the whole experiment from the file; drop %s", strings.Join(conflicts, ", "))
		}
		return runSpec(specPath, eventsDir, opt)
	}
	if eventsDir != "" {
		return fmt.Errorf("-events-dir records the cells of a serialized experiment; add -spec")
	}
	failureStudy := spec.FailureRate > 0 || ablation == "failures"
	outageStudy := spec.OutageRate > 0 || ablation == "outages"
	if failureStudy && outageStudy {
		return fmt.Errorf("the failure and outage studies run separately; pick one of -failure-rate/-ablation failures and -outage-rate/-ablation outages")
	}
	if (failureStudy || outageStudy) && (csvPath != "" || jsonPath != "" || table1 || diskTable || fig != 0 ||
		((spec.FailureRate > 0 || spec.OutageRate > 0) && ablation != "")) {
		return fmt.Errorf("the failure/outage studies run alone; drop -csv/-json/-table1/-disk/-ablation/-fig")
	}
	if (spec.MaxRetries != 0 || spec.FailureSeed != 0) && !failureStudy {
		return fmt.Errorf("-max-retries and -failure-seed apply to the failure study; add -failure-rate or -ablation failures")
	}
	if spec.OutageRate < 0 || spec.OutageDuration < 0 || spec.CheckpointInterval < 0 {
		return fmt.Errorf("-outage-rate, -outage-duration and -checkpoint-interval must be non-negative")
	}
	if (spec.OutageDuration != 0 || spec.OutageSeed != 0 || spec.CheckpointInterval != 0) && !outageStudy {
		return fmt.Errorf("-outage-duration, -outage-seed and -checkpoint-interval apply to the outage study; add -outage-rate or -ablation outages")
	}
	if spec.FlowVersion != 0 {
		if spec.FlowVersion < 0 || spec.FlowVersion > 2 {
			return fmt.Errorf("-flow-version must be 0 (default), 1 or 2")
		}
		if csvPath == "" && jsonPath == "" {
			// The figures and tables render the paper's pinned numbers,
			// which are defined under the default solver; the raw grid
			// exports are where a cross-solver comparison lives.
			return fmt.Errorf("-flow-version applies to the grid exports; add -csv or -json")
		}
	}
	if seeds > 1 && (table1 || diskTable || (ablation != "" && ablation != "failures" && ablation != "outages" && ablation != "scale")) {
		// Table I, the disk table and the fixed-cell ablations render the
		// paper's single measurements; failing loudly beats silently
		// printing unreplicated numbers under a -seeds flag.
		return fmt.Errorf("-seeds replicates figures, grid exports and the failure/outage studies; this mode renders single-seed numbers")
	}
	switch {
	case failureStudy:
		// The failure-sensitivity study: every app on the studied storage
		// systems, paired against the failure-free baseline, error-barred
		// when -seeds > 1. -failure-rate studies one rate; -ablation
		// failures sweeps the canonical ladder.
		o := harness.FailureStudyOptions{
			MaxRetries:  spec.MaxRetries,
			FailureSeed: spec.FailureSeed,
			Sweep:       opt,
		}
		if spec.FailureRate > 0 {
			o.Rates = []float64{spec.FailureRate}
		}
		_, out, err := harness.FailureStudy(o)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	case outageStudy:
		// The outage-ablation study: correlated node outages crossed with
		// the checkpoint/restart arm, paired against the outage-free
		// baseline. -outage-rate studies one rate; -ablation outages
		// sweeps the canonical ladder.
		o := harness.OutageStudyOptions{
			Duration:           spec.OutageDuration,
			OutageSeed:         spec.OutageSeed,
			CheckpointInterval: spec.CheckpointInterval,
			Sweep:              opt,
		}
		if spec.OutageRate > 0 {
			o.Rates = []float64{spec.OutageRate}
		}
		_, out, err := harness.OutageStudy(o)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	case csvPath != "":
		return writeGrid(csvPath, spec.FlowVersion, opt, writeCSVRows)
	case jsonPath != "":
		return writeGrid(jsonPath, spec.FlowVersion, opt, writeJSONRows)
	case table1:
		return printTableI()
	case diskTable:
		fmt.Print(harness.DiskBench().String())
		return nil
	case ablation != "":
		_, out, err := harness.AblationSweep(ablation, opt)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	case fig != 0:
		return printFigure(fig, nil, opt)
	}
	// Everything, in paper order. One grid sweep feeds each runtime
	// figure and its cost companion (replicates are not memoized, so at
	// -seeds > 1 re-sweeping per figure would double the work).
	if seeds > 1 {
		fmt.Fprintln(os.Stderr, "wfbench: -seeds replicates the figures and the failure study; Table I, the disk table and the fixed-cell ablations remain single-measurement")
	}
	if err := printTableI(); err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(harness.DiskBench().String())
	for f := 2; f <= 4; f++ {
		fmt.Println()
		out, costOut, _, err := harness.GridFigures(f, opt)
		if err != nil {
			return err
		}
		fmt.Print(out)
		fmt.Println()
		fmt.Print(costOut)
	}
	for _, name := range harness.AblationNames() {
		fmt.Println()
		_, out, err := harness.AblationSweep(name, opt)
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	return nil
}

// runSpec runs a serialized experiment — a single cell or a whole grid,
// optionally replicated — and prints one indented JSON row per cell to
// stdout in grid order. Single-measurement specs stream rows while the
// sweep runs; specs with seeds > 1 print their aggregated
// (mean/stddev) rows once every replicate has finished. A single-cell
// spec reproduces the corresponding `wfsim -json` output byte for byte.
// With eventsDir set, each cell's structured event log is additionally
// recorded into that directory as a replayable .wfevt file.
func runSpec(path, eventsDir string, opt harness.SweepOptions) error {
	e, err := scenario.ReadFile(path)
	if err != nil {
		return err
	}
	cells, err := e.Cells()
	if err != nil {
		return err
	}
	cfgs := make([]harness.RunConfig, len(cells))
	for i, s := range cells {
		cfgs[i] = harness.SpecConfig(s)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if eventsDir != "" {
		if e.Seeds > 1 {
			return fmt.Errorf("-events-dir records single executions; drop the spec's seeds")
		}
		return runSpecRecorded(cfgs, eventsDir, enc)
	}
	if e.Seeds > 1 {
		opt.Seeds = e.Seeds
		return streamReps(cfgs, opt, func(r harness.Replicated) error {
			return enc.Encode(r.JSONRow())
		})
	}
	return streamRows(cfgs, opt, func(r *harness.RunResult) error {
		return enc.Encode(r.JSONRow())
	})
}

// runSpecRecorded runs the experiment's cells through the recorded
// sweep, writes one .wfevt per cell into dir, and prints the usual JSON
// rows. File names are cell-ordinal plus the cell's identity, so a
// grid's logs sort in grid order and pair naturally for wfreplay diff.
func runSpecRecorded(cfgs []harness.RunConfig, dir string, enc *json.Encoder) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	recorded, err := harness.SweepRecorded(cfgs, 0)
	if err != nil {
		return err
	}
	for i, cell := range recorded {
		cfg := cfgs[i]
		name := fmt.Sprintf("cell-%03d_%s_%s_w%d.wfevt", i, cfg.App, cfg.Storage, cfg.Workers)
		if err := os.WriteFile(filepath.Join(dir, name), cell.Log, 0o644); err != nil {
			return err
		}
		if err := enc.Encode(cell.Result.JSONRow()); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wfbench: wrote %d event logs to %s\n", len(recorded), dir)
	return nil
}

// printProgress reports one completed cell on stderr.
func printProgress(u sweep.Update[harness.RunConfig, *harness.RunResult]) {
	status := "ran"
	if u.Cached {
		status = "cached"
	}
	if u.Err != nil {
		status = "error: " + u.Err.Error()
	}
	fmt.Fprintf(os.Stderr, "[%d/%d] %s on %s n=%d (%s)\n",
		u.Done, u.Total, u.Config.App, u.Config.Storage, u.Config.Workers, status)
}

// gridWriter emits the export for one fully-swept grid. The emit
// callbacks stream rows in sweep order (the sweep engine re-sequences
// out-of-order completions), so exports are byte-identical at any
// parallelism.
type gridWriter func(w io.Writer, cfgs []harness.RunConfig, opt harness.SweepOptions) error

// writeGrid dumps the full (application x storage x nodes) grid — the
// raw data behind every figure, ready for external analysis — under the
// requested flow-solver version (-flow-version 2 exports the whole grid
// as computed by the coalescing solver, memoized separately from the
// default grid).
func writeGrid(path string, flowVersion int, opt harness.SweepOptions, write gridWriter) error {
	var cfgs []harness.RunConfig
	for _, app := range []string{"montage", "epigenome", "broadband"} {
		cfgs = append(cfgs, harness.GridConfigs(app)...)
	}
	for i := range cfgs {
		cfgs[i].FlowVersion = flowVersion
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	bw := bufio.NewWriter(out)
	if err := write(bw, cfgs, opt); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if path != "-" {
		fmt.Printf("wrote experiment grid to %s\n", path)
	}
	return nil
}

func writeCSVRows(w io.Writer, cfgs []harness.RunConfig, opt harness.SweepOptions) error {
	cw := csv.NewWriter(w)
	if opt.Seeds > 1 {
		header := []string{"app", "storage", "nodes", "seeds",
			"makespan_mean_s", "makespan_stddev_s", "makespan_min_s", "makespan_max_s",
			"cost_per_hour_mean", "cost_per_hour_stddev",
			"cost_per_second_mean", "cost_per_second_stddev",
			"utilization_mean"}
		if err := cw.Write(header); err != nil {
			return err
		}
		err := streamReps(cfgs, opt, func(r harness.Replicated) error {
			row := []string{
				r.Config.App, r.Config.Storage, fmt.Sprint(r.Config.Workers), fmt.Sprint(len(r.Runs)),
				fmt.Sprintf("%.1f", r.Makespan.Mean), fmt.Sprintf("%.2f", r.Makespan.Stddev),
				fmt.Sprintf("%.1f", r.Makespan.Min), fmt.Sprintf("%.1f", r.Makespan.Max),
				fmt.Sprintf("%.2f", r.CostHour.Mean), fmt.Sprintf("%.4f", r.CostHour.Stddev),
				fmt.Sprintf("%.4f", r.CostSecond.Mean), fmt.Sprintf("%.6f", r.CostSecond.Stddev),
				fmt.Sprintf("%.3f", r.Utilization.Mean),
			}
			return cw.Write(row)
		})
		if err != nil {
			return err
		}
		cw.Flush()
		return cw.Error()
	}
	header := []string{"app", "storage", "nodes", "makespan_s", "cost_per_hour", "cost_per_second",
		"utilization", "network_bytes", "s3_gets", "s3_puts", "cache_hits", "cache_misses"}
	if err := cw.Write(header); err != nil {
		return err
	}
	err := streamRows(cfgs, opt, func(r *harness.RunResult) error {
		row := []string{
			r.Config.App, r.Config.Storage, fmt.Sprint(r.Config.Workers),
			fmt.Sprintf("%.1f", r.Makespan),
			fmt.Sprintf("%.2f", r.CostHour.Total()),
			fmt.Sprintf("%.4f", r.CostSecond.Total()),
			fmt.Sprintf("%.3f", r.Utilization),
			fmt.Sprintf("%.0f", r.Stats.NetworkBytes),
			fmt.Sprint(r.Stats.Gets), fmt.Sprint(r.Stats.Puts),
			fmt.Sprint(r.Stats.CacheHits), fmt.Sprint(r.Stats.CacheMisses),
		}
		return cw.Write(row)
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// streamReps sweeps replicated cells and emits each aggregation while
// later cells (and their replicates) are still running. SweepSeeds
// already delivers OnCell in cell order, so the export is byte-identical
// at any parallelism, including replicate-level splits of one cell.
func streamReps(cfgs []harness.RunConfig, opt harness.SweepOptions, emit func(harness.Replicated) error) error {
	var emitErr error
	prev := opt.OnCell
	opt.OnCell = func(cell int, rep harness.Replicated) {
		if prev != nil {
			prev(cell, rep)
		}
		if emitErr == nil {
			emitErr = emit(rep)
		}
	}
	if _, err := harness.SweepSeeds(cfgs, opt); err != nil {
		return err
	}
	return emitErr
}

// streamRows sweeps the cells and emits each result as soon as every
// earlier row is out: rows stream during the sweep, in sweep order, so
// the export is byte-identical at any parallelism.
func streamRows(cfgs []harness.RunConfig, opt harness.SweepOptions, emit func(*harness.RunResult) error) error {
	var emitErr error
	ord := sweep.NewOrdered[*harness.RunResult](func(_ int, r *harness.RunResult) {
		if emitErr == nil && r != nil {
			emitErr = emit(r)
		}
	})
	prev := opt.Progress
	opt.Progress = func(u sweep.Update[harness.RunConfig, *harness.RunResult]) {
		if prev != nil {
			prev(u)
		}
		if u.Err != nil {
			ord.Add(u.Index, nil)
			return
		}
		ord.Add(u.Index, u.Result)
	}
	if _, err := harness.Sweep(cfgs, opt); err != nil {
		return err
	}
	return emitErr
}

func writeJSONRows(w io.Writer, cfgs []harness.RunConfig, opt harness.SweepOptions) error {
	enc := json.NewEncoder(w)
	if opt.Seeds > 1 {
		return streamReps(cfgs, opt, func(r harness.Replicated) error {
			return enc.Encode(r.JSONRow())
		})
	}
	return streamRows(cfgs, opt, func(r *harness.RunResult) error {
		return enc.Encode(r.JSONRow())
	})
}

func printTableI() error {
	t, err := harness.TableI()
	if err != nil {
		return err
	}
	fmt.Print(t.String())
	return nil
}

func printFigure(fig int, cells []harness.Cell, opt harness.SweepOptions) error {
	if fig >= 2 && fig <= 4 {
		out, _, err := harness.RuntimeFigureSweep(fig, opt)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	if fig >= 5 && fig <= 7 {
		out, _, err := harness.CostFigureSweep(fig, cells, opt)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	return fmt.Errorf("figure %d not in the paper (want 2-7)", fig)
}
